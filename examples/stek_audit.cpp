// stek_audit: an operator-facing audit tool. Given a domain in the
// simulated Internet (default: a few famous ones), it probes daily for the
// study window, reports the STEK rotation cadence, honoured resumption
// windows and the resulting vulnerability window, and grades the
// configuration against the paper's §8 recommendations.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "scanner/experiments.h"
#include "simnet/internet.h"

using namespace tlsharm;

namespace {

void Audit(simnet::Internet& net, const std::string& domain, int days) {
  const auto id = net.FindDomain(domain);
  if (!id) {
    std::printf("%-18s not found in simulated population\n", domain.c_str());
    return;
  }
  scanner::Prober prober(net, StableHash64(domain));

  // Daily STEK observations.
  analysis::SpanTracker stek_spans;
  std::set<scanner::SecretId> distinct;
  int days_issuing = 0;
  for (int day = 0; day < days; ++day) {
    const auto probe = prober.Probe(*id, day * kDay + 9 * kHour);
    if (!probe.observation.ticket_issued) continue;
    ++days_issuing;
    distinct.insert(probe.observation.stek_id);
    stek_spans.Observe(*id, probe.observation.stek_id, day);
  }

  // Resumption windows (hourly granularity for speed).
  scanner::ProbeOptions options;
  options.want_full_result = true;
  const auto initial = prober.Probe(*id, 0, options);
  SimTime ticket_window = 0, id_window = 0;
  if (initial.session.valid) {
    for (SimTime delay = kHour; delay <= 30 * kHour; delay += kHour) {
      if (prober.TryResumeTicket(initial.session, *id, delay)) {
        ticket_window = delay;
      }
      if (prober.TryResumeId(initial.session, *id, delay)) {
        id_window = delay;
      }
    }
  }

  const int max_span = stek_spans.MaxSpanDays(*id);
  const SimTime vuln_window =
      std::max<SimTime>(max_span > 1 ? (max_span - 1) * kDay : 0,
                        std::max(ticket_window, id_window));

  std::printf("%-18s tickets on %d/%d days, %zu STEK(s), longest STEK span"
              " %dd\n", domain.c_str(), days_issuing, days, distinct.size(),
              max_span);
  std::printf("%-18s honoured windows: ticket<=%s id<=%s ->"
              " vulnerability window >= %s\n", "",
              FormatDuration(ticket_window).c_str(),
              FormatDuration(id_window).c_str(),
              FormatDuration(vuln_window).c_str());
  if (max_span >= 30) {
    std::printf("%-18s VERDICT: FAIL — rotate STEKs (paper §8: \"rotate"
                " STEKs frequently\")\n\n", "");
  } else if (max_span > 1 || vuln_window > kDay) {
    std::printf("%-18s VERDICT: WARN — window exceeds 24h for part of the"
                " fleet\n\n", "");
  } else {
    std::printf("%-18s VERDICT: OK — daily-or-better rotation\n\n", "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== stek_audit: STEK rotation audit over the simulated"
              " Internet ==\n");
  simnet::Internet net(simnet::PaperPopulationSpec(8000), 20160302);
  const int days = 21;

  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) targets.push_back(argv[i]);
  if (targets.empty()) {
    targets = {"google.com", "yahoo.com", "yandex.ru", "netflix.com",
               "facebook.com", "qq.com"};
  }
  for (const auto& domain : targets) Audit(net, domain, days);
  return 0;
}
