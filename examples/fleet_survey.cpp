// fleet_survey: the paper's measurement pipeline as a reusable tool.
//
// Builds a small simulated Top-N population, runs a one-week daily scan plus
// the service-group probes, and prints a survey report: secret longevity
// distributions, the largest shared-secret groups, and the domains with the
// worst combined vulnerability windows.
//
// With `--campaign <dir>` the week runs as a crash-safe campaign: every
// scanned day is journaled and committed durably into <dir> (RUNLOG,
// store.txt, warehouse/, state files). If the process dies mid-study,
// `--campaign <dir> --resume` restores the committed days from disk and
// scans only the remainder — the report and the on-disk artifacts come out
// byte-identical to an uninterrupted run.
//
// `--record` (campaign mode) additionally streams every tapped connection
// into the day-partitioned capture tape at <dir>/capture — the archive
// `tlsharm-harm` sweeps into record-now-decrypt-later harm curves.
//
// `--progress` prints an opt-in heartbeat to STDERR after each committed
// day — day counter, probes/sec, wall-clock ETA — for long campaigns.
// stdout and every artifact stay byte-identical with or without it.
//
// TLSHARM_POPULATION / TLSHARM_DAYS resize the survey (defaults 6000 / 7);
// TLSHARM_PROF=1 enables the wall-clock performance plane, and
// TLSHARM_PROF_TRACE=<path> additionally writes a Chrome trace-event JSON
// there at exit (load it in Perfetto; one track per worker shard).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "analysis/vuln.h"
#include "campaign/campaign.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "scanner/scan_engine.h"
#include "simnet/internet.h"
#include "util/table.h"

using namespace tlsharm;

namespace {

// Env-sized survey: TLSHARM_POPULATION (>= 100) and TLSHARM_DAYS (1..63)
// override the defaults so a 2-day profiling campaign or a large soak run
// doesn't need a recompile.
std::size_t PopulationFromEnv(std::size_t fallback) {
  if (const char* env = std::getenv("TLSHARM_POPULATION")) {
    const long parsed = std::atol(env);
    if (parsed >= 100) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

int DaysFromEnv(int fallback) {
  if (const char* env = std::getenv("TLSHARM_DAYS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1 && parsed <= 63) return parsed;
  }
  return fallback;
}

// The --progress heartbeat: one stderr line per committed day with a
// wall-clock probes/sec and ETA. Wall time stays on stderr only — nothing
// here may reach stdout or a durable artifact.
class ProgressMeter {
 public:
  ProgressMeter() : start_(std::chrono::steady_clock::now()) {}

  void Report(const scanner::ScanProgress& p) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    const double rate = elapsed > 0.0
                            ? static_cast<double>(p.total_probes) / elapsed
                            : 0.0;
    const int done = p.day + 1;
    const int remaining = p.days - done;
    // Days are near-uniform cost, so a per-day average is a fair ETA.
    const double eta = done > 0 ? elapsed / done * remaining : 0.0;
    std::fprintf(stderr,
                 "progress: day %d/%d  %llu probes  %.0f probes/s  "
                 "eta %.1fs\n",
                 done, p.days,
                 static_cast<unsigned long long>(p.total_probes), rate, eta);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string campaign_dir;
  bool resume = false;
  bool progress = false;
  bool record = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--campaign") == 0 && i + 1 < argc) {
      campaign_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress = true;
    } else if (std::strcmp(argv[i], "--record") == 0) {
      record = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--campaign <dir> [--resume] [--record]] "
                   "[--progress]\n"
                   "  --campaign <dir>  journal the scan into <dir> so a\n"
                   "                    crashed study can be continued\n"
                   "  --resume          continue the campaign in <dir> from\n"
                   "                    its last committed day\n"
                   "  --record          also archive every tapped connection\n"
                   "                    into <dir>/capture for tlsharm-harm\n"
                   "  --progress        per-day heartbeat (day, probes/sec,\n"
                   "                    ETA) on stderr; artifacts unchanged\n",
                   argv[0]);
      return 2;
    }
  }
  if (resume && campaign_dir.empty()) {
    std::fprintf(stderr, "--resume requires --campaign <dir>\n");
    return 2;
  }
  if (record && campaign_dir.empty()) {
    std::fprintf(stderr, "--record requires --campaign <dir>\n");
    return 2;
  }

  std::printf("== fleet_survey: one-week HTTPS crypto-shortcut survey ==\n");
  constexpr std::uint64_t kWorldSeed = 424242;
  const std::size_t kPopulation = PopulationFromEnv(6000);
  simnet::Internet net(simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
  const int days = DaysFromEnv(7);
  std::printf("population: %zu domains, %zu terminators\n",
              net.DomainCount(), net.TerminatorCount());

  // TLSHARM_FAULTS=<scale> injects deterministic network faults (1 = the
  // default ~5% refusal/reset/timeout mix); the scan below then runs with
  // retries plus an end-of-pass requeue, like the real tool-chain had to.
  // The same scale and seeds replay the identical faulty study.
  const simnet::FaultSpec faults = simnet::FaultSpecFromEnv();
  scanner::ScanEngineOptions engine;
  if (faults.enabled) {
    net.SetFaultSpec(faults);
    engine.robustness.retry.max_attempts = 3;
    std::printf("faults: enabled via TLSHARM_FAULTS (retries=3 + requeue)\n");
  }
  // TLSHARM_THREADS shards the daily scan across workers; any value
  // produces byte-identical results (the engine's determinism contract).
  engine.threads = scanner::ScanThreadsFromEnv();
  if (engine.threads > 1) {
    std::printf("scan engine: %d worker threads via TLSHARM_THREADS\n",
                engine.threads);
  }
  // TLSHARM_METRICS=<path> / TLSHARM_TRACE=<path> attach the observability
  // layer (both off by default; the survey's results and stdout are
  // unchanged either way, and the files are byte-identical at any thread
  // count).
  obs::MetricsRegistry metrics;
  const std::string metrics_path = obs::MetricsPathFromEnv();
  const std::string trace_path = obs::TracePathFromEnv();
  if (!metrics_path.empty()) engine.metrics = &metrics;
  std::ofstream trace_file;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_file.open(trace_path, std::ios::binary);
    if (trace_file) {
      trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_file);
      engine.trace = trace_sink.get();
    } else {
      std::fprintf(stderr, "cannot open TLSHARM_TRACE path %s\n",
                   trace_path.c_str());
    }
  }
  ProgressMeter meter;
  if (progress) {
    engine.progress = [&meter](const scanner::ScanProgress& p) {
      meter.Report(p);
    };
  }
  std::printf("\n");

  // --- longevity scan.
  scanner::DailyScanResult scan;
  if (!campaign_dir.empty()) {
    // Campaign mode: the journaled, crash-safe path. Threads, metrics and
    // robustness carry over; the probe trace does not (it is per-process
    // telemetry, not a committed artifact).
    if (engine.trace != nullptr) {
      std::fprintf(stderr,
                   "note: TLSHARM_TRACE is ignored in --campaign mode\n");
      engine.trace = nullptr;
      trace_sink.reset();
    }
    campaign::CampaignSpec spec;
    spec.dir = campaign_dir;
    spec.days = days;
    spec.seed = 1;
    spec.threads = engine.threads;
    spec.robustness = engine.robustness;
    spec.resume = resume;
    spec.record_captures = record;
    // The same world must back a resumed journal; TLSHARM_FAULTS shapes
    // observations, so it is part of the world's identity.
    spec.world_digest = kWorldSeed ^
                        (static_cast<std::uint64_t>(kPopulation) << 20) ^
                        (faults.enabled ? 0x0fau : 0u);
    spec.metrics = engine.metrics;
    spec.progress = engine.progress;
    campaign::CampaignResult result;
    std::string error;
    if (!campaign::RunCampaign(net, spec, &result, &error)) {
      std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
      return 1;
    }
    scan = std::move(result.scan);
    if (result.recovery.resumed) {
      std::printf("campaign: resumed %s — %d committed day(s) restored, "
                  "%d rescanned",
                  campaign_dir.c_str(), result.recovery.days_replayed,
                  days - result.first_scanned_day);
      if (result.recovery.store_tail_truncated > 0 ||
          result.recovery.stale_segments_removed > 0 ||
          result.recovery.tmp_files_removed > 0) {
        std::printf(" (repaired: %llu store bytes cut, %llu stale "
                    "segment(s), %llu temp file(s))",
                    static_cast<unsigned long long>(
                        result.recovery.store_tail_truncated),
                    static_cast<unsigned long long>(
                        result.recovery.stale_segments_removed),
                    static_cast<unsigned long long>(
                        result.recovery.tmp_files_removed));
      }
      std::printf("\n");
    } else {
      std::printf("campaign: journaled %d day(s) into %s\n", days,
                  campaign_dir.c_str());
    }
    if (record) {
      std::printf("capture tape: %s/capture (sweep it with tlsharm-harm "
                  "curve %s %llu)\n",
                  campaign_dir.c_str(), campaign_dir.c_str(),
                  static_cast<unsigned long long>(kWorldSeed));
    }
  } else {
    scan = scanner::RunShardedDailyScans(net, days, 1, engine);
  }
  if (engine.metrics != nullptr) {
    std::ofstream out(metrics_path, std::ios::binary);
    if (out) {
      out << metrics.SnapshotJson() << '\n';
      std::printf("telemetry: wrote metrics snapshot to %s\n",
                  metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open TLSHARM_METRICS path %s\n",
                   metrics_path.c_str());
    }
  }
  if (engine.trace != nullptr) {
    std::printf("telemetry: wrote %zu probe-trace events to %s\n",
                trace_sink->Emitted(), trace_path.c_str());
  }
  if (faults.enabled) {
    std::size_t scheduled = 0, recovered = 0, lost = 0;
    for (const auto& day : scan.loss) {
      scheduled += day.scheduled;
      recovered += day.recovered;
      lost += day.lost;
    }
    std::printf("probe loss over the week: %zu/%zu probes lost "
                "(%zu recovered by the requeue pass)\n",
                lost, scheduled, recovered);
  }
  std::size_t issuers = 0, week_long = 0;
  for (const auto id : scan.core_domains) {
    const int span = scan.stek_spans.MaxSpanDays(id);
    issuers += span > 0;
    week_long += span >= days;
  }
  std::printf("STEK longevity: %zu/%zu core domains issue tickets; %zu kept"
              " one STEK all week\n", issuers, scan.core_domains.size(),
              week_long);

  // --- groups.
  const auto stek_groups = scanner::MeasureStekGroups(net, 0, 2, 4, 2 * kHour);
  const auto cache_groups = scanner::MeasureSessionCacheGroups(net, 0, 3);
  std::printf("\nLargest shared-secret groups:\n");
  TextTable table({"Kind", "Operator", "# domains"});
  for (std::size_t i = 0; i < 3 && i < stek_groups.groups.size(); ++i) {
    if (stek_groups.groups[i].size() < 2) break;
    table.AddRow({"STEK",
                  net.GetDomain(stek_groups.groups[i].front()).operator_name,
                  FormatCount(stek_groups.groups[i].size())});
  }
  for (std::size_t i = 0; i < 3 && i < cache_groups.groups.size(); ++i) {
    if (cache_groups.groups[i].size() < 2) break;
    table.AddRow({"cache",
                  net.GetDomain(cache_groups.groups[i].front()).operator_name,
                  FormatCount(cache_groups.groups[i].size())});
  }
  std::printf("%s", table.Render().c_str());

  // --- worst offenders.
  struct Offender {
    simnet::DomainId id;
    int stek_span;
    int dh_span;
  };
  std::vector<Offender> offenders;
  for (const auto id : scan.core_domains) {
    const int stek = scan.stek_spans.MaxSpanDays(id);
    const int dh = std::max(scan.dhe_spans.MaxSpanDays(id),
                            scan.ecdhe_spans.MaxSpanDays(id));
    if (stek >= days || dh >= days) offenders.push_back({id, stek, dh});
  }
  std::sort(offenders.begin(), offenders.end(),
            [&net](const Offender& a, const Offender& b) {
              return net.GetDomain(a.id).rank < net.GetDomain(b.id).rank;
            });
  std::printf("\nDomains holding a secret the entire week (by rank):\n");
  TextTable worst({"Rank", "Domain", "STEK span", "DH span"});
  for (std::size_t i = 0; i < 12 && i < offenders.size(); ++i) {
    const auto& info = net.GetDomain(offenders[i].id);
    worst.AddRow({std::to_string(info.rank), info.name,
                  std::to_string(offenders[i].stek_span) + "d",
                  std::to_string(offenders[i].dh_span) + "d"});
  }
  std::printf("%s", worst.Render().c_str());
  std::printf("\nEvery row above is a domain whose recorded traffic stays"
              " decryptable for at least a week\nafter the fact — exactly"
              " the exposure the paper quantifies at Internet scale.\n");

  // Performance plane: if TLSHARM_PROF recorded this run and a trace path
  // is set, write the Chrome trace now. stderr only — the survey's stdout
  // is part of the deterministic surface the check gates diff.
  const std::string prof_trace_path = obs::ProfTracePathFromEnv();
  if (obs::ProfilingEnabled() && !prof_trace_path.empty()) {
    std::string error;
    if (!obs::ProfWriteChromeTrace(prof_trace_path, &error)) {
      std::fprintf(stderr, "fleet_survey: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote Chrome trace to %s (load in Perfetto)\n",
                 prof_trace_path.c_str());
  }
  return 0;
}
