// fleet_survey: the paper's measurement pipeline as a reusable tool.
//
// Builds a small simulated Top-N population, runs a one-week daily scan plus
// the service-group probes, and prints a survey report: secret longevity
// distributions, the largest shared-secret groups, and the domains with the
// worst combined vulnerability windows.
//
// With `--campaign <dir>` the week runs as a crash-safe campaign: every
// scanned day is journaled and committed durably into <dir> (RUNLOG,
// store.txt, warehouse/, state files). If the process dies mid-study,
// `--campaign <dir> --resume` restores the committed days from disk and
// scans only the remainder — the report and the on-disk artifacts come out
// byte-identical to an uninterrupted run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "analysis/vuln.h"
#include "campaign/campaign.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/scan_engine.h"
#include "simnet/internet.h"
#include "util/table.h"

using namespace tlsharm;

int main(int argc, char** argv) {
  std::string campaign_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--campaign") == 0 && i + 1 < argc) {
      campaign_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--campaign <dir> [--resume]]\n"
                   "  --campaign <dir>  journal the scan into <dir> so a\n"
                   "                    crashed study can be continued\n"
                   "  --resume          continue the campaign in <dir> from\n"
                   "                    its last committed day\n",
                   argv[0]);
      return 2;
    }
  }
  if (resume && campaign_dir.empty()) {
    std::fprintf(stderr, "--resume requires --campaign <dir>\n");
    return 2;
  }

  std::printf("== fleet_survey: one-week HTTPS crypto-shortcut survey ==\n");
  constexpr std::uint64_t kWorldSeed = 424242;
  constexpr std::size_t kPopulation = 6000;
  simnet::Internet net(simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
  const int days = 7;
  std::printf("population: %zu domains, %zu terminators\n",
              net.DomainCount(), net.TerminatorCount());

  // TLSHARM_FAULTS=<scale> injects deterministic network faults (1 = the
  // default ~5% refusal/reset/timeout mix); the scan below then runs with
  // retries plus an end-of-pass requeue, like the real tool-chain had to.
  // The same scale and seeds replay the identical faulty study.
  const simnet::FaultSpec faults = simnet::FaultSpecFromEnv();
  scanner::ScanEngineOptions engine;
  if (faults.enabled) {
    net.SetFaultSpec(faults);
    engine.robustness.retry.max_attempts = 3;
    std::printf("faults: enabled via TLSHARM_FAULTS (retries=3 + requeue)\n");
  }
  // TLSHARM_THREADS shards the daily scan across workers; any value
  // produces byte-identical results (the engine's determinism contract).
  engine.threads = scanner::ScanThreadsFromEnv();
  if (engine.threads > 1) {
    std::printf("scan engine: %d worker threads via TLSHARM_THREADS\n",
                engine.threads);
  }
  // TLSHARM_METRICS=<path> / TLSHARM_TRACE=<path> attach the observability
  // layer (both off by default; the survey's results and stdout are
  // unchanged either way, and the files are byte-identical at any thread
  // count).
  obs::MetricsRegistry metrics;
  const std::string metrics_path = obs::MetricsPathFromEnv();
  const std::string trace_path = obs::TracePathFromEnv();
  if (!metrics_path.empty()) engine.metrics = &metrics;
  std::ofstream trace_file;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_file.open(trace_path, std::ios::binary);
    if (trace_file) {
      trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_file);
      engine.trace = trace_sink.get();
    } else {
      std::fprintf(stderr, "cannot open TLSHARM_TRACE path %s\n",
                   trace_path.c_str());
    }
  }
  std::printf("\n");

  // --- longevity scan.
  scanner::DailyScanResult scan;
  if (!campaign_dir.empty()) {
    // Campaign mode: the journaled, crash-safe path. Threads, metrics and
    // robustness carry over; the probe trace does not (it is per-process
    // telemetry, not a committed artifact).
    if (engine.trace != nullptr) {
      std::fprintf(stderr,
                   "note: TLSHARM_TRACE is ignored in --campaign mode\n");
      engine.trace = nullptr;
      trace_sink.reset();
    }
    campaign::CampaignSpec spec;
    spec.dir = campaign_dir;
    spec.days = days;
    spec.seed = 1;
    spec.threads = engine.threads;
    spec.robustness = engine.robustness;
    spec.resume = resume;
    // The same world must back a resumed journal; TLSHARM_FAULTS shapes
    // observations, so it is part of the world's identity.
    spec.world_digest = kWorldSeed ^
                        (static_cast<std::uint64_t>(kPopulation) << 20) ^
                        (faults.enabled ? 0x0fau : 0u);
    spec.metrics = engine.metrics;
    campaign::CampaignResult result;
    std::string error;
    if (!campaign::RunCampaign(net, spec, &result, &error)) {
      std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
      return 1;
    }
    scan = std::move(result.scan);
    if (result.recovery.resumed) {
      std::printf("campaign: resumed %s — %d committed day(s) restored, "
                  "%d rescanned",
                  campaign_dir.c_str(), result.recovery.days_replayed,
                  days - result.first_scanned_day);
      if (result.recovery.store_tail_truncated > 0 ||
          result.recovery.stale_segments_removed > 0 ||
          result.recovery.tmp_files_removed > 0) {
        std::printf(" (repaired: %llu store bytes cut, %llu stale "
                    "segment(s), %llu temp file(s))",
                    static_cast<unsigned long long>(
                        result.recovery.store_tail_truncated),
                    static_cast<unsigned long long>(
                        result.recovery.stale_segments_removed),
                    static_cast<unsigned long long>(
                        result.recovery.tmp_files_removed));
      }
      std::printf("\n");
    } else {
      std::printf("campaign: journaled %d day(s) into %s\n", days,
                  campaign_dir.c_str());
    }
  } else {
    scan = scanner::RunShardedDailyScans(net, days, 1, engine);
  }
  if (engine.metrics != nullptr) {
    std::ofstream out(metrics_path, std::ios::binary);
    if (out) {
      out << metrics.SnapshotJson() << '\n';
      std::printf("telemetry: wrote metrics snapshot to %s\n",
                  metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open TLSHARM_METRICS path %s\n",
                   metrics_path.c_str());
    }
  }
  if (engine.trace != nullptr) {
    std::printf("telemetry: wrote %zu probe-trace events to %s\n",
                trace_sink->Emitted(), trace_path.c_str());
  }
  if (faults.enabled) {
    std::size_t scheduled = 0, recovered = 0, lost = 0;
    for (const auto& day : scan.loss) {
      scheduled += day.scheduled;
      recovered += day.recovered;
      lost += day.lost;
    }
    std::printf("probe loss over the week: %zu/%zu probes lost "
                "(%zu recovered by the requeue pass)\n",
                lost, scheduled, recovered);
  }
  std::size_t issuers = 0, week_long = 0;
  for (const auto id : scan.core_domains) {
    const int span = scan.stek_spans.MaxSpanDays(id);
    issuers += span > 0;
    week_long += span >= days;
  }
  std::printf("STEK longevity: %zu/%zu core domains issue tickets; %zu kept"
              " one STEK all week\n", issuers, scan.core_domains.size(),
              week_long);

  // --- groups.
  const auto stek_groups = scanner::MeasureStekGroups(net, 0, 2, 4, 2 * kHour);
  const auto cache_groups = scanner::MeasureSessionCacheGroups(net, 0, 3);
  std::printf("\nLargest shared-secret groups:\n");
  TextTable table({"Kind", "Operator", "# domains"});
  for (std::size_t i = 0; i < 3 && i < stek_groups.groups.size(); ++i) {
    if (stek_groups.groups[i].size() < 2) break;
    table.AddRow({"STEK",
                  net.GetDomain(stek_groups.groups[i].front()).operator_name,
                  FormatCount(stek_groups.groups[i].size())});
  }
  for (std::size_t i = 0; i < 3 && i < cache_groups.groups.size(); ++i) {
    if (cache_groups.groups[i].size() < 2) break;
    table.AddRow({"cache",
                  net.GetDomain(cache_groups.groups[i].front()).operator_name,
                  FormatCount(cache_groups.groups[i].size())});
  }
  std::printf("%s", table.Render().c_str());

  // --- worst offenders.
  struct Offender {
    simnet::DomainId id;
    int stek_span;
    int dh_span;
  };
  std::vector<Offender> offenders;
  for (const auto id : scan.core_domains) {
    const int stek = scan.stek_spans.MaxSpanDays(id);
    const int dh = std::max(scan.dhe_spans.MaxSpanDays(id),
                            scan.ecdhe_spans.MaxSpanDays(id));
    if (stek >= days || dh >= days) offenders.push_back({id, stek, dh});
  }
  std::sort(offenders.begin(), offenders.end(),
            [&net](const Offender& a, const Offender& b) {
              return net.GetDomain(a.id).rank < net.GetDomain(b.id).rank;
            });
  std::printf("\nDomains holding a secret the entire week (by rank):\n");
  TextTable worst({"Rank", "Domain", "STEK span", "DH span"});
  for (std::size_t i = 0; i < 12 && i < offenders.size(); ++i) {
    const auto& info = net.GetDomain(offenders[i].id);
    worst.AddRow({std::to_string(info.rank), info.name,
                  std::to_string(offenders[i].stek_span) + "d",
                  std::to_string(offenders[i].dh_span) + "d"});
  }
  std::printf("%s", worst.Render().c_str());
  std::printf("\nEvery row above is a domain whose recorded traffic stays"
              " decryptable for at least a week\nafter the fact — exactly"
              " the exposure the paper quantifies at Internet scale.\n");
  return 0;
}
