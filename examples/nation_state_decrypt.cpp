// nation_state_decrypt: the paper's §7 threat, end to end.
//
// A passive adversary records TLS connections to a bank that never rotates
// its STEK (and to a well-run site that rotates every 14 hours). Weeks
// later the adversary compromises each server once. The static-STEK site's
// entire recorded history decrypts; the rotating site's does not.
#include <cstdio>

#include "attack/decrypt.h"
#include "crypto/drbg.h"
#include "pki/ca.h"
#include "pki/root_store.h"
#include "server/terminator.h"
#include "tls/client.h"
#include "util/rng.h"

using namespace tlsharm;

namespace {

struct Site {
  std::unique_ptr<server::SslTerminator> terminator;
  std::string domain;
};

Site MakeSite(pki::CertificateAuthority& ca,
              const pki::CertificateChain& chain, crypto::Drbg& drbg,
              const std::string& domain, server::ServerConfig config) {
  Site site;
  site.domain = domain;
  site.terminator =
      std::make_unique<server::SslTerminator>("term-" + domain, config,
                                              StableHash64(domain));
  server::Credential cred = server::MakeCredential(
      ca, {domain}, pki::SignatureScheme::kSchnorrSim61, 0, 365 * kDay, chain,
      drbg);
  site.terminator->MapDomain(domain,
                             site.terminator->AddCredential(std::move(cred)));
  return site;
}

// One recorded browsing session: handshake + request, all captured.
attack::ParsedCapture RecordSession(Site& site, SimTime when,
                                    const std::string& request,
                                    crypto::Drbg& drbg) {
  auto conn = site.terminator->NewConnection(when);
  attack::PassiveCapture capture;
  tls::TappedConnection tapped(*conn, capture);
  tls::ClientConfig config;
  config.server_name = site.domain;
  tls::TlsClient client(config);
  const auto hs = client.Handshake(tapped, when, drbg);
  if (hs.ok) {
    tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
    (void)tls::TlsClient::Roundtrip(tapped, hs, channel, ToBytes(request),
                                    drbg);
  }
  return attack::ParseCapture(capture.Log());
}

}  // namespace

int main() {
  std::printf("== nation_state_decrypt: retrospective decryption after STEK"
              " theft ==\n\n");
  crypto::Drbg drbg(ToBytes("example"));
  pki::CertificateAuthority root("Root", pki::SignatureScheme::kSchnorrSim61,
                                 drbg);
  pki::CertificateAuthority ca("CA", pki::SignatureScheme::kSchnorrSim61,
                               drbg);
  const pki::CertificateChain chain = {
      root.IssueCaCertificate(ca, 0, 365 * kDay, drbg)};

  server::ServerConfig lazy;
  lazy.stek.rotation = server::StekRotation::kStatic;  // never rotated
  Site bank = MakeSite(ca, chain, drbg, "bank.example", lazy);

  server::ServerConfig diligent;
  diligent.stek.rotation = server::StekRotation::kInterval;
  diligent.stek.rotation_interval = 14 * kHour;  // Google-style
  Site mail = MakeSite(ca, chain, drbg, "mail.example", diligent);

  // --- Phase 1: weeks of passive collection.
  crypto::Drbg user_drbg(ToBytes("victim"));
  std::vector<attack::ParsedCapture> bank_tape, mail_tape;
  for (int day = 0; day < 21; ++day) {
    bank_tape.push_back(RecordSession(
        bank, day * kDay + 12 * kHour,
        "POST /transfer to=ACC-" + std::to_string(1000 + day), user_drbg));
    mail_tape.push_back(RecordSession(
        mail, day * kDay + 13 * kHour,
        "GET /inbox/message-" + std::to_string(day), user_drbg));
  }
  std::printf("recorded %zu connections to each site over 21 days"
              " (ciphertext only)\n\n", bank_tape.size());

  // --- Phase 2: one-time compromise on day 21.
  const SimTime theft_time = 21 * kDay;
  const tls::Stek bank_stek = bank.terminator->Steks().StealCurrentKey(theft_time);
  const tls::Stek mail_stek = mail.terminator->Steks().StealCurrentKey(theft_time);
  std::printf("day 21: STEKs exfiltrated from both servers (16-byte keys)\n\n");

  // --- Phase 3: retroactive decryption.
  auto tally = [](const std::vector<attack::ParsedCapture>& tape,
                  const attack::StekDecryptor& decryptor, const char* label) {
    int decrypted = 0;
    std::string sample;
    for (const auto& capture : tape) {
      const auto session = decryptor.Decrypt(capture);
      if (session.ok) {
        ++decrypted;
        if (sample.empty() && !session.client_plaintext.empty()) {
          sample = ToString(session.client_plaintext.front());
        }
      }
    }
    std::printf("%-14s %2d/%zu recorded days decrypted%s%s\n", label,
                decrypted, tape.size(),
                sample.empty() ? "" : " — e.g. \"",
                sample.empty() ? "" : (sample + "\"").c_str());
    return decrypted;
  };

  const attack::StekDecryptor bank_attack(lazy.tickets.codec, bank_stek);
  const attack::StekDecryptor mail_attack(diligent.tickets.codec, mail_stek);
  const int bank_hits = tally(bank_tape, bank_attack, "bank.example");
  const int mail_hits = tally(mail_tape, mail_attack, "mail.example");

  std::printf(
      "\nThe static STEK exposed %d days of history to a single theft;\n"
      "14-hour rotation left %d recorded days decryptable. This asymmetry\n"
      "is the paper's central finding (38%% of Top-1M HTTPS sites kept\n"
      "windows over 24 hours; 10%% over 30 days).\n",
      bank_hits, mail_hits);
  return 0;
}
