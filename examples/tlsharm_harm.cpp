// tlsharm-harm: record-now-decrypt-later harm curves from a capture tape.
//
//   tlsharm-harm curve <dir> [world_seed]
//       Opens the capture tape at <dir> (or <dir>/capture for a campaign
//       directory), folds it through the adversary replay engine against
//       the world metadata (TLSHARM_POPULATION + world_seed, default
//       20160302 — must match the recording run), and prints the canonical
//       harm-curve JSONL to stdout: one line per (profile, vector,
//       compromise time T) with decryptable connections/bytes/domains and
//       the survivor taxonomy.
//
//   tlsharm-harm explain <domain> <day> <dir> [world_seed]
//       Evidence view for one domain-day: every archived connection of
//       that day replayed against ground-truth TakeSnapshot secrets (STEK
//       and DH at the day's main-pass instant) plus the session-cache
//       liveness window, with the per-vector verdict for each record.
//
//   tlsharm-harm --selftest
//       The adversary determinism gate (scripts/check.sh runs this):
//       capture records and harm-curve JSONL must be byte-identical at 1,
//       2 and 8 threads AND identical whether curves are computed live
//       (CaptureBufferSink) or replayed from a round-tripped columnar
//       tape; every curve point's survivors must account for every
//       connection; the archive sweep must agree exactly with a
//       ground-truth snapshot replay at the end-of-study compromise time
//       for a fleet-shared interval-rotation STEK profile and a
//       fleet-shared (EC)DHE-reuse profile; the session-cache sweep must
//       match an independent brute-force recount; and the curves must be
//       consistent with the scan-side vulnerability-window estimate
//       (analysis/spans) for both profiles. Exits non-zero on any
//       violation.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adversary/compromise.h"
#include "adversary/replay.h"
#include "scanner/scan_engine.h"
#include "simnet/internet.h"
#include "warehouse/capture.h"

using namespace tlsharm;

namespace {

constexpr std::size_t kPopulation = 900;
constexpr int kDays = 6;
constexpr std::uint64_t kWorldSeed = 4242;
constexpr std::uint64_t kScanSeed = 777;
constexpr std::uint64_t kDefaultToolSeed = 20160302;  // bench/common.h

std::unique_ptr<simnet::Internet> BuildSelftestWorld() {
  return std::make_unique<simnet::Internet>(
      simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
}

struct ScanRun {
  scanner::DailyScanResult result;
  attack::CaptureBufferSink captures;
};

void RunCaptureScan(int threads, ScanRun& out) {
  const auto net = BuildSelftestWorld();
  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.capture = &out.captures;
  out.result = scanner::RunShardedDailyScans(*net, kDays, kScanSeed, options);
}

void FoldBuffer(adversary::HarmEngine& engine,
                const attack::CaptureBufferSink& sink) {
  for (std::size_t i = 0; i < sink.Records().size(); ++i) {
    engine.Ingest(sink.Days()[i], sink.Records()[i]);
  }
  engine.Seal();
}

const adversary::HarmPoint* PointAt(
    const std::vector<adversary::HarmCurve>& curves,
    const std::string& profile, adversary::CompromiseVector vector,
    SimTime t) {
  for (const adversary::HarmCurve& curve : curves) {
    if (curve.profile != profile || curve.vector != vector) continue;
    for (const adversary::HarmPoint& point : curve.points) {
      if (point.t == t) return &point;
    }
  }
  return nullptr;
}

// Endpoints serving each operator's domains.
std::map<std::string, std::set<simnet::TerminatorId>> FleetsOf(
    const simnet::Internet& net) {
  std::map<std::string, std::set<simnet::TerminatorId>> fleets;
  for (std::size_t d = 0; d < net.DomainCount(); ++d) {
    const simnet::DomainInfo& info =
        net.GetDomain(static_cast<simnet::DomainId>(d));
    fleets[info.operator_name].insert(info.endpoints.begin(),
                                      info.endpoints.end());
  }
  return fleets;
}

const std::string& OperatorOf(const simnet::Internet& net,
                              std::uint32_t domain) {
  // The interned accessor: GetDomain returns a materialized value, so a
  // reference into it would dangle.
  return net.DomainOperator(static_cast<simnet::DomainId>(domain));
}

// The biggest profile whose whole fleet shares ONE interval-rotated STEK
// manager and that has a valid ticketed capture at `t` — the conditions
// under which the archive sweep must equal a ground-truth snapshot replay
// exactly. "Biggest" (most endpoints, ties by name) so a real fleet
// operator is preferred over a single-box domain.
std::string PickStekProfile(simnet::Internet& net,
                            const std::vector<attack::CaptureRecord>& records,
                            SimTime t) {
  std::string best;
  std::size_t best_size = 0;
  for (const auto& [name, endpoints] : FleetsOf(net)) {
    if (endpoints.size() <= best_size) continue;
    bool eligible = !endpoints.empty();
    const void* shared = nullptr;
    for (const simnet::TerminatorId e : endpoints) {
      const server::ServerConfig& config = net.Terminator(e).Config();
      if (!config.tickets.enabled ||
          config.stek.rotation != server::StekRotation::kInterval) {
        eligible = false;
        break;
      }
      const void* manager = &net.Terminator(e).Steks();
      if (shared == nullptr) shared = manager;
      if (manager != shared) eligible = false;
    }
    if (!eligible) continue;
    for (const attack::CaptureRecord& rec : records) {
      if (rec.time == t && rec.valid && !rec.ticket.empty() &&
          OperatorOf(net, rec.domain) == name) {
        best = name;
        best_size = endpoints.size();
        break;
      }
    }
  }
  return best;
}

// Same idea for the DH vector: one shared KEX cache, every endpoint
// reusing its ECDHE value, and a valid captured KEX at `t`.
std::string PickDhProfile(simnet::Internet& net,
                          const std::vector<attack::CaptureRecord>& records,
                          SimTime t, SimTime* reuse_ttl) {
  std::string best;
  std::size_t best_size = 0;
  for (const auto& [name, endpoints] : FleetsOf(net)) {
    if (endpoints.size() <= best_size) continue;
    bool eligible = !endpoints.empty();
    const void* shared = nullptr;
    SimTime ttl = 0;
    for (const simnet::TerminatorId e : endpoints) {
      const server::ServerConfig& config = net.Terminator(e).Config();
      if (!config.ecdhe_reuse.reuse) {
        eligible = false;
        break;
      }
      ttl = config.ecdhe_reuse.ttl;
      const void* cache = &net.Terminator(e).Kex();
      if (shared == nullptr) shared = cache;
      if (cache != shared) eligible = false;
    }
    if (!eligible) continue;
    for (const attack::CaptureRecord& rec : records) {
      if (rec.time == t && rec.valid && !rec.server_kex.empty() &&
          OperatorOf(net, rec.domain) == name) {
        best = name;
        best_size = endpoints.size();
        *reuse_ttl = ttl;
        break;
      }
    }
  }
  return best;
}

// Ground truth: steal the profile's secret at spec.at and replay every one
// of its archived connections through the real decryptors.
std::uint64_t SnapshotDecryptCount(
    simnet::Internet& net, const adversary::CompromiseSpec& spec,
    const std::vector<attack::CaptureRecord>& records) {
  const adversary::CompromisedSecrets secrets =
      adversary::TakeSnapshot(net, spec);
  std::uint64_t count = 0;
  for (const attack::CaptureRecord& rec : records) {
    if (OperatorOf(net, rec.domain) != spec.profile) continue;
    if (adversary::ReplaySnapshot(secrets, rec).ok) ++count;
  }
  return count;
}

// The session-cache liveness window of a record, recomputed from world
// metadata alone (lifetime cut short by the first restart after capture).
// Returns false when a dump can never contain the secret.
bool CacheWindow(simnet::Internet& net, const attack::CaptureRecord& rec,
                 SimTime* end) {
  if (!rec.valid || rec.session_id.empty()) return false;
  const server::ServerConfig& config =
      net.Terminator(static_cast<simnet::TerminatorId>(rec.endpoint)).Config();
  if (!config.session_cache.enabled ||
      config.session_cache.issue_id_without_cache) {
    return false;
  }
  SimTime out = rec.time + config.session_cache.lifetime;
  const simnet::Internet::RestartSchedule restarts =
      net.RestartScheduleOf(static_cast<simnet::TerminatorId>(rec.endpoint));
  if (restarts.every > 0) {
    SimTime next = restarts.first;
    if (next <= rec.time) {
      next = restarts.first +
             ((rec.time - restarts.first) / restarts.every + 1) *
                 restarts.every;
    }
    out = std::min(out, next);
  }
  *end = out;
  return true;
}

std::uint64_t BruteCacheCount(simnet::Internet& net,
                              const std::vector<attack::CaptureRecord>& records,
                              const std::string& profile, SimTime t) {
  std::uint64_t count = 0;
  for (const attack::CaptureRecord& rec : records) {
    if (OperatorOf(net, rec.domain) != profile) continue;
    SimTime end = 0;
    if (!CacheWindow(net, rec, &end)) continue;
    if (rec.time <= t && t < end) ++count;
  }
  return count;
}

int MaxSpanOf(const analysis::SpanTracker& spans, const simnet::Internet& net,
              const std::string& profile) {
  int best = 0;
  for (std::size_t d = 0; d < net.DomainCount(); ++d) {
    if (net.GetDomain(static_cast<simnet::DomainId>(d)).operator_name !=
        profile) {
      continue;
    }
    best = std::max(best,
                    spans.MaxSpanDays(static_cast<scanner::DomainIndex>(d)));
  }
  return best;
}

// Decryptable-age span of a curve point, in whole study days.
int PointSpanDays(const adversary::HarmPoint& point) {
  if (point.oldest_decrypted < 0) return 0;
  return static_cast<int>(point.t / kDay - point.oldest_decrypted / kDay) + 1;
}

int SelfTest() {
  std::printf("== tlsharm-harm --selftest: adversary determinism gate ==\n");
  ScanRun base;
  RunCaptureScan(1, base);
  if (base.captures.Records().empty()) {
    std::printf("FAIL: capture-recording scan produced no records\n");
    return 1;
  }
  const auto meta_net = BuildSelftestWorld();
  adversary::HarmEngine engine(*meta_net);
  FoldBuffer(engine, base.captures);
  const std::vector<adversary::HarmCurve> curves = engine.Sweep();
  const std::string jsonl = adversary::RenderHarmCurvesJsonl(curves);
  if (jsonl.empty()) {
    std::printf("FAIL: empty harm-curve JSONL\n");
    return 1;
  }
  std::printf("  archive: %llu records, %zu candidate times, %zu profiles, "
              "%zu JSONL bytes\n",
              static_cast<unsigned long long>(engine.RowCount()),
              engine.CandidateTimes().size(), engine.Profiles().size(),
              jsonl.size());

  for (const int threads : {2, 8}) {
    ScanRun other;
    RunCaptureScan(threads, other);
    if (other.captures.Records() != base.captures.Records() ||
        other.captures.Days() != base.captures.Days()) {
      std::printf("FAIL: capture records differ at %d threads\n", threads);
      return 1;
    }
    const auto net = BuildSelftestWorld();
    adversary::HarmEngine other_engine(*net);
    FoldBuffer(other_engine, other.captures);
    if (adversary::RenderHarmCurvesJsonl(other_engine.Sweep()) != jsonl) {
      std::printf("FAIL: harm curves differ at %d threads\n", threads);
      return 1;
    }
    std::printf("  %d threads: records and curves byte-identical\n", threads);
  }

  // Every point must account for every connection: decryptable + survivors
  // partition the archive, and times must ascend.
  for (const adversary::HarmCurve& curve : curves) {
    if (curve.points.size() != engine.CandidateTimes().size()) {
      std::printf("FAIL: %s/%s has %zu points for %zu candidate times\n",
                  curve.profile.c_str(), adversary::ToString(curve.vector),
                  curve.points.size(), engine.CandidateTimes().size());
      return 1;
    }
    SimTime prev = std::numeric_limits<SimTime>::min();
    for (const adversary::HarmPoint& point : curve.points) {
      if (point.t <= prev) {
        std::printf("FAIL: %s/%s points not strictly ascending\n",
                    curve.profile.c_str(), adversary::ToString(curve.vector));
        return 1;
      }
      prev = point.t;
      std::uint64_t accounted = point.decryptable;
      for (const std::uint64_t n : point.survivors) accounted += n;
      if (accounted != point.connections) {
        std::printf("FAIL: %s/%s at t=%lld accounts for %llu of %llu "
                    "connections\n",
                    curve.profile.c_str(), adversary::ToString(curve.vector),
                    static_cast<long long>(point.t),
                    static_cast<unsigned long long>(accounted),
                    static_cast<unsigned long long>(point.connections));
        return 1;
      }
    }
  }
  std::printf("  survivor taxonomy partitions every curve point\n");

  // Live-vs-replayed identity: round-trip the archive through the columnar
  // tape and recompute — records and curves must not change by a byte.
  namespace fs = std::filesystem;
  const fs::path tape_dir =
      fs::temp_directory_path() / "tlsharm-harm-selftest-tape";
  std::error_code ec;
  fs::remove_all(tape_dir, ec);
  std::string error;
  auto writer = warehouse::CaptureTapeWriter::Create(tape_dir.string(), &error);
  if (writer == nullptr) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  int current_day = -1;
  for (std::size_t i = 0; i < base.captures.Records().size(); ++i) {
    const int day = base.captures.Days()[i];
    if (current_day >= 0 && day != current_day) writer->EndDay(current_day);
    writer->Append(day, base.captures.Records()[i]);
    current_day = day;
  }
  if (current_day >= 0) writer->EndDay(current_day);
  writer->Finish();
  if (!writer->ok()) {
    std::printf("FAIL: tape write: %s\n", writer->error().c_str());
    return 1;
  }
  const auto tape = warehouse::CaptureTape::Open(tape_dir.string(), &error);
  if (!tape.has_value()) {
    std::printf("FAIL: tape open: %s\n", error.c_str());
    return 1;
  }
  attack::CaptureBufferSink replayed;
  if (!tape->ForEachCapture(
          0, kDays - 1,
          [&replayed](int day, const attack::CaptureRecord& rec) {
            replayed.Append(day, rec);
          },
          &error)) {
    std::printf("FAIL: tape read: %s\n", error.c_str());
    return 1;
  }
  if (replayed.Records() != base.captures.Records() ||
      replayed.Days() != base.captures.Days()) {
    std::printf("FAIL: tape round-trip changed the records\n");
    return 1;
  }
  {
    const auto net = BuildSelftestWorld();
    adversary::HarmEngine replay_engine(*net);
    FoldBuffer(replay_engine, replayed);
    if (adversary::RenderHarmCurvesJsonl(replay_engine.Sweep()) != jsonl) {
      std::printf("FAIL: curves from the replayed tape differ from live\n");
      return 1;
    }
  }
  fs::remove_all(tape_dir, ec);
  std::printf("  live vs tape-replayed: records and curves identical "
              "(%llu rows, %llu tape bytes)\n",
              static_cast<unsigned long long>(writer->RowsWritten()),
              static_cast<unsigned long long>(writer->BytesWritten()));

  // Ground-truth cross-check at the end-of-study compromise time: for a
  // fleet-shared secret captured at T, the archive sweep must equal a
  // TakeSnapshot + ReplaySnapshot pass exactly.
  const SimTime t_end = scanner::ScanDayStart(kDays - 1);
  const std::string stek_profile =
      PickStekProfile(*meta_net, base.captures.Records(), t_end);
  if (stek_profile.empty()) {
    std::printf("FAIL: no shared interval-rotation STEK profile in the "
                "archive\n");
    return 1;
  }
  const std::uint64_t stek_truth = SnapshotDecryptCount(
      *meta_net,
      {adversary::CompromiseVector::kStek, stek_profile, t_end},
      base.captures.Records());
  const adversary::HarmPoint* stek_point = PointAt(
      curves, stek_profile, adversary::CompromiseVector::kStek, t_end);
  if (stek_point == nullptr || stek_point->decryptable != stek_truth ||
      stek_truth == 0) {
    std::printf("FAIL: stek sweep for %s at t=%lld says %llu decryptable, "
                "snapshot replay says %llu\n",
                stek_profile.c_str(), static_cast<long long>(t_end),
                static_cast<unsigned long long>(
                    stek_point == nullptr ? 0 : stek_point->decryptable),
                static_cast<unsigned long long>(stek_truth));
    return 1;
  }
  using attack::DecryptFailureClass;
  if (stek_point->survivors[static_cast<int>(
          DecryptFailureClass::kWrongStek)] == 0) {
    std::printf("FAIL: interval rotation left no wrong_stek survivors for "
                "%s\n", stek_profile.c_str());
    return 1;
  }
  std::printf("  stek %s: sweep == snapshot replay at end of study "
              "(%llu decryptable, wrong_stek survivors present)\n",
              stek_profile.c_str(),
              static_cast<unsigned long long>(stek_truth));

  SimTime dh_ttl = 0;
  const std::string dh_profile =
      PickDhProfile(*meta_net, base.captures.Records(), t_end, &dh_ttl);
  if (dh_profile.empty()) {
    std::printf("FAIL: no shared ECDHE-reuse profile in the archive\n");
    return 1;
  }
  const std::uint64_t dh_truth = SnapshotDecryptCount(
      *meta_net, {adversary::CompromiseVector::kDh, dh_profile, t_end},
      base.captures.Records());
  const adversary::HarmPoint* dh_point =
      PointAt(curves, dh_profile, adversary::CompromiseVector::kDh, t_end);
  if (dh_point == nullptr || dh_point->decryptable != dh_truth ||
      dh_truth == 0) {
    std::printf("FAIL: dh sweep for %s at t=%lld says %llu decryptable, "
                "snapshot replay says %llu\n",
                dh_profile.c_str(), static_cast<long long>(t_end),
                static_cast<unsigned long long>(
                    dh_point == nullptr ? 0 : dh_point->decryptable),
                static_cast<unsigned long long>(dh_truth));
    return 1;
  }
  if (dh_ttl > 0 && dh_ttl < (kDays - 1) * kDay &&
      dh_point->survivors[static_cast<int>(
          DecryptFailureClass::kKexMismatch)] == 0) {
    std::printf("FAIL: %s regenerates its KEX value every %lld s but the "
                "curve shows no kex_mismatch survivors\n",
                dh_profile.c_str(), static_cast<long long>(dh_ttl));
    return 1;
  }
  std::printf("  dh %s: sweep == snapshot replay at end of study "
              "(%llu decryptable)\n",
              dh_profile.c_str(), static_cast<unsigned long long>(dh_truth));

  // Vulnerability-window consistency (the acceptance cross-check): the
  // decryptable-age span of the harm curve must agree with the scan-side
  // secret-lifetime estimate within a day of granularity slack.
  const int stek_obs = MaxSpanOf(base.result.stek_spans, *meta_net,
                                 stek_profile);
  const int stek_curve_span = PointSpanDays(*stek_point);
  if (stek_curve_span < 1 || stek_curve_span > stek_obs + 1) {
    std::printf("FAIL: stek %s curve span %d days vs scan window estimate "
                "%d days\n",
                stek_profile.c_str(), stek_curve_span, stek_obs);
    return 1;
  }
  const int dh_obs = MaxSpanOf(base.result.ecdhe_spans, *meta_net,
                               dh_profile);
  const int dh_curve_span = PointSpanDays(*dh_point);
  if (dh_curve_span < 1 || dh_curve_span > dh_obs + 1) {
    std::printf("FAIL: dh %s curve span %d days vs scan window estimate "
                "%d days\n",
                dh_profile.c_str(), dh_curve_span, dh_obs);
    return 1;
  }
  std::printf("  vuln-window consistency: stek %d days (scan estimate %d), "
              "ecdhe %d days (scan estimate %d)\n",
              stek_curve_span, stek_obs, dh_curve_span, dh_obs);

  // The session-cache sweep against an independent brute-force recount at
  // three sampled compromise times, for every profile.
  const std::vector<SimTime>& times = engine.CandidateTimes();
  const SimTime samples[] = {times.front(), times[times.size() / 2],
                             times.back()};
  std::uint64_t cache_total = 0;
  for (const std::string& profile : engine.Profiles()) {
    for (const SimTime t : samples) {
      const std::uint64_t brute = BruteCacheCount(
          *meta_net, base.captures.Records(), profile, t);
      const adversary::HarmPoint* point = PointAt(
          curves, profile, adversary::CompromiseVector::kSessionCache, t);
      if (point == nullptr || point->decryptable != brute) {
        std::printf("FAIL: cache sweep for %s at t=%lld says %llu, "
                    "brute-force recount says %llu\n",
                    profile.c_str(), static_cast<long long>(t),
                    static_cast<unsigned long long>(
                        point == nullptr ? 0 : point->decryptable),
                    static_cast<unsigned long long>(brute));
        return 1;
      }
      cache_total += brute;
    }
  }
  if (cache_total == 0) {
    std::printf("FAIL: session-cache curves are identically zero\n");
    return 1;
  }
  std::printf("  session-cache sweep matches brute-force recount "
              "(%llu live entries across sampled times)\n",
              static_cast<unsigned long long>(cache_total));

  std::printf("selftest PASSED\n");
  return 0;
}

// --- tooling modes ----------------------------------------------------------

// Resolves <dir> to the tape directory (campaign dirs keep it under
// capture/) and streams it into a fresh engine. Returns nullptr on error.
std::optional<warehouse::CaptureTape> OpenTapeArg(const std::string& dir_arg,
                                                  std::string* error) {
  namespace fs = std::filesystem;
  std::string dir = dir_arg;
  if (fs::exists(fs::path(dir_arg) / "capture" / "MANIFEST")) {
    dir = (fs::path(dir_arg) / "capture").string();
  }
  return warehouse::CaptureTape::Open(dir, error);
}

bool FoldTape(const warehouse::CaptureTape& tape, simnet::Internet& net,
              adversary::HarmEngine& engine, std::string* error) {
  const std::size_t domains = net.DomainCount();
  const std::size_t terminators = net.TerminatorCount();
  bool world_mismatch = false;
  if (!tape.ForEachCapture(
          0, std::numeric_limits<int>::max() / 2,
          [&](int day, const attack::CaptureRecord& rec) {
            if (rec.domain >= domains || rec.endpoint >= terminators) {
              world_mismatch = true;
              return;
            }
            if (!world_mismatch) engine.Ingest(day, rec);
          },
          error)) {
    return false;
  }
  if (world_mismatch) {
    *error = "tape references domains/endpoints outside this world — "
             "TLSHARM_POPULATION and the world seed must match the "
             "recording run";
    return false;
  }
  engine.Seal();
  return true;
}

int RunCurve(const std::string& dir_arg, std::uint64_t world_seed) {
  std::string error;
  const auto tape = OpenTapeArg(dir_arg, &error);
  if (!tape.has_value()) {
    std::fprintf(stderr, "tlsharm-harm: %s\n", error.c_str());
    return 1;
  }
  simnet::Internet net(
      simnet::PaperPopulationSpec(simnet::DefaultPopulationSize()),
      world_seed);
  adversary::HarmEngine engine(net);
  if (!FoldTape(*tape, net, engine, &error)) {
    std::fprintf(stderr, "tlsharm-harm: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "tlsharm-harm: %llu records, %zu candidate times, %zu "
               "profiles\n",
               static_cast<unsigned long long>(engine.RowCount()),
               engine.CandidateTimes().size(), engine.Profiles().size());
  const std::string jsonl =
      adversary::RenderHarmCurvesJsonl(engine.Sweep());
  std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
  return 0;
}

const char* VerdictOf(const adversary::ReplayOutcome& outcome) {
  return outcome.ok ? "DECRYPTABLE" : attack::ToString(outcome.failure);
}

int RunExplain(const std::string& domain_name, int day,
               const std::string& dir_arg, std::uint64_t world_seed) {
  std::string error;
  const auto tape = OpenTapeArg(dir_arg, &error);
  if (!tape.has_value()) {
    std::fprintf(stderr, "tlsharm-harm: %s\n", error.c_str());
    return 1;
  }
  simnet::Internet net(
      simnet::PaperPopulationSpec(simnet::DefaultPopulationSize()),
      world_seed);
  const std::optional<simnet::DomainId> id = net.FindDomain(domain_name);
  if (!id.has_value()) {
    std::fprintf(stderr, "tlsharm-harm: unknown domain %s\n",
                 domain_name.c_str());
    return 1;
  }
  std::vector<attack::CaptureRecord> records;
  if (!tape->ForEachCapture(
          day, day,
          [&](int, const attack::CaptureRecord& rec) {
            if (rec.domain == *id) records.push_back(rec);
          },
          &error)) {
    std::fprintf(stderr, "tlsharm-harm: %s\n", error.c_str());
    return 1;
  }
  const std::string& profile = net.GetDomain(*id).operator_name;
  const SimTime t = scanner::ScanDayStart(day);
  std::printf("== %s day %d (operator %s), compromise at t=%lld ==\n",
              domain_name.c_str(), day, profile.c_str(),
              static_cast<long long>(t));
  if (records.empty()) {
    std::printf("no captures of this domain on day %d\n", day);
    return 0;
  }
  // STEK and reused-DH snapshots replay exactly on a fresh world (both are
  // schedule-derived); the session-cache verdict comes from the liveness
  // window, since historical cache contents are not reconstructable.
  const adversary::CompromisedSecrets stek_secrets = adversary::TakeSnapshot(
      net, {adversary::CompromiseVector::kStek, profile, t});
  const adversary::CompromisedSecrets dh_secrets = adversary::TakeSnapshot(
      net, {adversary::CompromiseVector::kDh, profile, t});
  for (const attack::CaptureRecord& rec : records) {
    std::printf("capture t=%lld endpoint=%u valid=%d suite=0x%04x "
                "wire_bytes=%llu\n",
                static_cast<long long>(rec.time), rec.endpoint,
                rec.valid ? 1 : 0, rec.suite,
                static_cast<unsigned long long>(rec.wire_bytes));
    std::printf("  stek: %s\n",
                VerdictOf(adversary::ReplaySnapshot(stek_secrets, rec)));
    std::printf("  dh:   %s\n",
                VerdictOf(adversary::ReplaySnapshot(dh_secrets, rec)));
    SimTime cache_end = 0;
    if (!CacheWindow(net, rec, &cache_end)) {
      std::printf("  cache: %s\n",
                  !rec.valid ? "capture_invalid"
                  : rec.session_id.empty() ? "no_session_id"
                                           : "cache_miss (never cached)");
    } else if (rec.time <= t && t < cache_end) {
      std::printf("  cache: DECRYPTABLE (entry live [%lld, %lld))\n",
                  static_cast<long long>(rec.time),
                  static_cast<long long>(cache_end));
    } else {
      std::printf("  cache: cache_miss (entry live [%lld, %lld))\n",
                  static_cast<long long>(rec.time),
                  static_cast<long long>(cache_end));
    }
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tlsharm-harm curve <dir> [world_seed]\n"
               "       tlsharm-harm explain <domain> <day> <dir> "
               "[world_seed]\n"
               "       tlsharm-harm --selftest\n"
               "<dir> is a capture tape or a campaign directory recorded "
               "with capture taping on;\nTLSHARM_POPULATION and world_seed "
               "(default %llu) must match the recording run.\n",
               static_cast<unsigned long long>(kDefaultToolSeed));
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }
  if (argc >= 3 && std::strcmp(argv[1], "curve") == 0) {
    const std::uint64_t seed =
        argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : kDefaultToolSeed;
    return RunCurve(argv[2], seed);
  }
  if (argc >= 5 && std::strcmp(argv[1], "explain") == 0) {
    const std::uint64_t seed =
        argc >= 6 ? std::strtoull(argv[5], nullptr, 10) : kDefaultToolSeed;
    return RunExplain(argv[2], std::atoi(argv[3]), argv[4], seed);
  }
  return Usage();
}
