// scanstats: the scan pipeline's telemetry, reported.
//
// Runs a deterministic fault-injected daily-scan study with the full
// observability stack attached — metrics registry, JSONL probe trace,
// observation store — then reports what the telemetry shows: per-day probe
// loss, the failure taxonomy, retry effort, resumption and KEX-reuse rates,
// the STEK epoch timeline, and store-corruption counts.
//
// Environment knobs:
//   TLSHARM_THREADS  worker shards (any value: output is byte-identical)
//   TLSHARM_METRICS  path to also write the metrics snapshot JSON to
//   TLSHARM_TRACE    path to also write the JSONL probe trace to
//
// `scanstats --warehouse <dir>` additionally records the observation
// stream into a columnar warehouse at <dir> and cross-checks it against
// the text path: the warehouse's text export must be byte-identical to the
// live store, and the incremental fold must reproduce the engine's
// aggregates. Any drift is a hard failure, so the report's store numbers
// are certified warehouse-backed.
//
// `scanstats --prof` additionally enables the wall-clock performance
// plane (obs/prof.h) for the run and appends its aggregated report — span
// hotspots with p50/p95/p99, shard utilization, attribution — after the
// deterministic telemetry. The profiling plane never changes a byte of the
// normal report.
//
// `scanstats --selftest` instead verifies the observability contract and
// exits non-zero on any violation: metrics snapshot, trace bytes, and store
// bytes must be identical at 1, 2, and 8 threads; the snapshot must
// round-trip through ParseSnapshot/RenderSnapshot byte-for-byte; and every
// trace line must parse as JSON with the expected schema. scripts/check.sh
// runs this as its observability gate.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/prof_report.h"
#include "obs/trace.h"
#include "scanner/scan_engine.h"
#include "simnet/internet.h"
#include "util/table.h"
#include "warehouse/fold.h"
#include "warehouse/import.h"

using namespace tlsharm;

namespace {

constexpr std::size_t kPopulation = 900;
constexpr int kDays = 4;
constexpr std::uint64_t kWorldSeed = 4242;
constexpr std::uint64_t kScanSeed = 777;

struct RunOutput {
  scanner::DailyScanResult result;
  std::string metrics_json;  // canonical one-line snapshot
  std::string trace;         // JSONL probe trace
  std::string store;         // raw observation lines
  std::size_t store_records = 0;
  std::size_t store_corrupt = 0;
};

// One instrumented study: fresh world, deterministic fault injection,
// retries + requeue, telemetry attached. Everything returned is a pure
// function of the constants above — the thread count must not show. With a
// warehouse dir, the same canonical stream is also recorded columnar.
RunOutput RunInstrumentedScan(int threads,
                              const std::string& warehouse_dir = "") {
  simnet::Internet net(simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));

  std::ostringstream store_stream;
  std::ostringstream trace_stream;
  scanner::ObservationWriter sink(store_stream);
  obs::JsonlTraceSink trace_sink(trace_stream);
  obs::MetricsRegistry metrics;

  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.robustness.retry.max_attempts = 3;
  options.sink = &sink;
  options.trace = &trace_sink;
  options.metrics = &metrics;

  std::unique_ptr<warehouse::WarehouseWriter> warehouse_writer;
  if (!warehouse_dir.empty()) {
    std::string error;
    warehouse_writer = warehouse::WarehouseWriter::Create(warehouse_dir,
                                                          &error);
    if (warehouse_writer == nullptr) {
      std::fprintf(stderr, "scanstats: %s\n", error.c_str());
      std::exit(1);
    }
    options.store = warehouse_writer.get();
  }

  RunOutput out;
  out.result = scanner::RunShardedDailyScans(net, kDays, kScanSeed, options);
  if (warehouse_writer != nullptr && !warehouse_writer->ok()) {
    std::fprintf(stderr, "scanstats: warehouse: %s\n",
                 warehouse_writer->error().c_str());
    std::exit(1);
  }
  out.store = store_stream.str();
  out.trace = trace_stream.str();

  // Reload the store we just wrote, surfacing (not skipping) corruption:
  // malformed lines land in the `store.corrupt` counter and the report.
  const auto reloaded =
      scanner::ParseObservations(out.store, &out.store_corrupt);
  out.store_records = reloaded.size();
  metrics.GetCounter("store.records").Add(out.store_records);
  metrics.GetCounter("store.corrupt").Add(out.store_corrupt);

  out.metrics_json = metrics.SnapshotJson();
  return out;
}

std::uint64_t CounterOf(const obs::MetricsSnapshot& snapshot,
                        const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

std::string Rate(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return buf;
}

// Renders a histogram bucket's range label from its inclusive upper bounds.
std::string BucketLabel(const std::vector<std::int64_t>& bounds,
                        std::size_t i) {
  if (i == 0) return "<= " + std::to_string(bounds[0]) + "s";
  if (i == bounds.size()) {
    return "> " + std::to_string(bounds.back()) + "s";
  }
  return std::to_string(bounds[i - 1] + 1) + "-" +
         std::to_string(bounds[i]) + "s";
}

void PrintReport(const RunOutput& run, const obs::MetricsSnapshot& snapshot,
                 int threads) {
  std::printf("== scanstats: telemetry for a %zu-domain, %d-day faulty "
              "study ==\n", kPopulation, kDays);
  std::printf("threads=%d (byte-identical at any TLSHARM_THREADS)\n\n",
              threads);

  std::printf("Per-day probe loss:\n");
  TextTable loss({"Day", "Scheduled", "Recovered", "Lost", "Loss rate"});
  for (std::size_t day = 0; day < run.result.loss.size(); ++day) {
    const auto& d = run.result.loss[day];
    loss.AddRow({std::to_string(day), std::to_string(d.scheduled),
                 std::to_string(d.recovered), std::to_string(d.lost),
                 Rate(d.lost, d.scheduled)});
  }
  std::printf("%s", loss.Render().c_str());

  const std::uint64_t probes = CounterOf(snapshot, "probe.probes");
  std::printf("\nFailure taxonomy (final probe outcomes):\n");
  TextTable taxonomy({"Class", "Probes", "Share"});
  for (int c = 0; c < scanner::kProbeFailureClasses; ++c) {
    const std::string name(
        ToString(static_cast<scanner::ProbeFailure>(c)));
    const std::uint64_t count =
        CounterOf(snapshot, "probe.failure." + name);
    if (count == 0) continue;
    taxonomy.AddRow({name, std::to_string(count), Rate(count, probes)});
  }
  std::printf("%s", taxonomy.Render().c_str());

  const std::uint64_t attempts = CounterOf(snapshot, "probe.attempts");
  const std::uint64_t retries = CounterOf(snapshot, "probe.retries");
  std::printf("\nRetry effort: %llu connection attempts for %llu probes "
              "(%llu retries)\n",
              static_cast<unsigned long long>(attempts),
              static_cast<unsigned long long>(probes),
              static_cast<unsigned long long>(retries));

  const std::uint64_t kex_reused = CounterOf(snapshot, "fleet.kex.reused");
  const std::uint64_t kex_fresh = CounterOf(snapshot, "fleet.kex.fresh");
  const std::uint64_t lookups = CounterOf(snapshot, "fleet.session.lookups");
  const std::uint64_t hits = CounterOf(snapshot, "fleet.session.hits");
  std::printf("\nResumption / crypto-shortcut rates:\n");
  TextTable rates({"Metric", "Value"});
  rates.AddRow({"KEX pairs served reused",
                std::to_string(kex_reused) + " (" +
                    Rate(kex_reused, kex_reused + kex_fresh) + ")"});
  rates.AddRow({"session-cache hit rate",
                std::to_string(hits) + "/" + std::to_string(lookups) + " (" +
                    Rate(hits, lookups) + ")"});
  std::printf("%s", rates.Render().c_str());

  std::printf("\nSTEK epoch timeline (issuing-epoch age at end of study):\n");
  const auto stek = snapshot.histograms.find("fleet.stek.issuing_age");
  if (stek != snapshot.histograms.end()) {
    TextTable ages({"Age bucket", "Managers"});
    for (std::size_t i = 0; i < stek->second.counts.size(); ++i) {
      if (stek->second.counts[i] == 0) continue;
      ages.AddRow({BucketLabel(stek->second.bounds, i),
                   std::to_string(stek->second.counts[i])});
    }
    std::printf("%s", ages.Render().c_str());
  }
  std::printf("  managers=%llu rotations=%llu live_epochs=%llu\n",
              static_cast<unsigned long long>(
                  CounterOf(snapshot, "fleet.stek.managers")),
              static_cast<unsigned long long>(
                  CounterOf(snapshot, "fleet.stek.rotations")),
              static_cast<unsigned long long>(
                  CounterOf(snapshot, "fleet.stek.live_epochs")));

  std::printf("\nObservation store: %zu records reloaded, %zu corrupt "
              "lines skipped\n", run.store_records, run.store_corrupt);
  std::printf("Probe trace: %zu bytes of JSONL (%llu attempt events)\n",
              run.trace.size(),
              static_cast<unsigned long long>(attempts));
}

// Writes `data` to `path`; returns false (with a message) on failure.
bool WriteFileOrComplain(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "scanstats: cannot write %s\n", path.c_str());
    return false;
  }
  out << data;
  return out.good();
}

// Cross-checks the just-recorded warehouse against the live run and prints
// its footprint. Fails (false) on any divergence from the text path.
bool ReportWarehouse(const std::string& dir, const RunOutput& run) {
  std::string error;
  const auto wh = warehouse::Warehouse::Open(dir, &error);
  if (!wh.has_value()) {
    std::fprintf(stderr, "scanstats: %s\n", error.c_str());
    return false;
  }
  std::ostringstream text_out;
  if (!warehouse::WarehouseToText(*wh, text_out, nullptr, &error)) {
    std::fprintf(stderr, "scanstats: warehouse export: %s\n", error.c_str());
    return false;
  }
  if (text_out.str() != run.store) {
    std::fprintf(stderr, "scanstats: warehouse text export differs from the "
                         "live observation store\n");
    return false;
  }
  simnet::Internet net(simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));
  scanner::DailyScanResult folded;
  if (!warehouse::FoldDailyScans(*wh, net, {}, &folded, &error)) {
    std::fprintf(stderr, "scanstats: warehouse fold: %s\n", error.c_str());
    return false;
  }
  if (folded.core_domains != run.result.core_domains ||
      folded.stek_spans.AllSpans() != run.result.stek_spans.AllSpans() ||
      folded.ecdhe_spans.AllSpans() != run.result.ecdhe_spans.AllSpans() ||
      folded.dhe_spans.AllSpans() != run.result.dhe_spans.AllSpans()) {
    std::fprintf(stderr, "scanstats: warehouse fold does not match the "
                         "engine aggregates\n");
    return false;
  }
  std::printf("wrote warehouse to %s: %llu rows in %zu day segments, "
              "%llu bytes (%.1f%% of the text store); export and fold "
              "verified against the live run\n",
              dir.c_str(),
              static_cast<unsigned long long>(wh->TotalRows()),
              wh->ObservationSegments().size(),
              static_cast<unsigned long long>(wh->TotalBytes()),
              100.0 * static_cast<double>(wh->TotalBytes()) /
                  static_cast<double>(run.store.size()));
  return true;
}

// --- selftest ---------------------------------------------------------------

bool CheckTraceSchema(const std::string& trace, std::string& error) {
  static const char* kRequired[] = {"day",     "seq",     "pass",
                                    "kind",    "domain",  "scheduled",
                                    "attempt", "start",   "dur",
                                    "backoff", "failure", "final"};
  std::istringstream in(trace);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    obs::JsonValue value;
    if (!obs::ParseJson(line, value) ||
        value.kind != obs::JsonValue::Kind::kObject) {
      error = "trace line " + std::to_string(line_no) + " is not JSON";
      return false;
    }
    for (const char* key : kRequired) {
      if (value.Find(key) == nullptr) {
        error = "trace line " + std::to_string(line_no) +
                " is missing key \"" + key + "\"";
        return false;
      }
    }
  }
  return true;
}

int SelfTest() {
  std::printf("== scanstats --selftest: observability determinism gate ==\n");
  obs::SetProfilingEnabled(false);
  const RunOutput base = RunInstrumentedScan(1);
  if (base.store.empty() || base.trace.empty()) {
    std::printf("FAIL: instrumented scan produced no output\n");
    return 1;
  }
  for (const int threads : {2, 8}) {
    const RunOutput other = RunInstrumentedScan(threads);
    if (other.metrics_json != base.metrics_json) {
      std::printf("FAIL: metrics snapshot differs at %d threads\n", threads);
      return 1;
    }
    if (other.trace != base.trace) {
      std::printf("FAIL: probe trace differs at %d threads\n", threads);
      return 1;
    }
    if (other.store != base.store) {
      std::printf("FAIL: observation store differs at %d threads\n", threads);
      return 1;
    }
    std::printf("  %d threads: snapshot, trace and store byte-identical\n",
                threads);
  }

  obs::MetricsSnapshot snapshot;
  if (!obs::ParseSnapshot(base.metrics_json, snapshot)) {
    std::printf("FAIL: metrics snapshot does not parse\n");
    return 1;
  }
  if (obs::RenderSnapshot(snapshot) != base.metrics_json) {
    std::printf("FAIL: snapshot does not round-trip byte-for-byte\n");
    return 1;
  }
  std::printf("  snapshot round-trips byte-for-byte (%zu bytes)\n",
              base.metrics_json.size());

  std::string error;
  if (!CheckTraceSchema(base.trace, error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  const std::uint64_t attempts = CounterOf(snapshot, "probe.attempts");
  std::size_t lines = 0;
  for (const char c : base.trace) lines += c == '\n';
  if (lines != attempts) {
    std::printf("FAIL: %zu trace lines vs %llu recorded attempts\n", lines,
                static_cast<unsigned long long>(attempts));
    return 1;
  }
  std::printf("  trace schema ok: %zu lines == probe.attempts\n", lines);
  if (CounterOf(snapshot, "store.corrupt") != 0) {
    std::printf("FAIL: store reload reported corrupt lines\n");
    return 1;
  }

  // Two-plane isolation: with the wall-clock performance plane recording,
  // every deterministic artifact must still be byte-identical — at the
  // serial baseline and at 8 threads (where prof adds per-shard tracks).
  obs::SetProfilingEnabled(true);
  for (const int threads : {1, 8}) {
    obs::ProfReset();
    const RunOutput prof_run = RunInstrumentedScan(threads);
    if (prof_run.metrics_json != base.metrics_json ||
        prof_run.trace != base.trace || prof_run.store != base.store) {
      std::printf("FAIL: TLSHARM_PROF changed deterministic output at %d "
                  "threads\n", threads);
      obs::SetProfilingEnabled(false);
      return 1;
    }
    const obs::ProfSnapshot snap = obs::ProfSnapshotNow();
    if (snap.spans.empty() || snap.root_total_ns == 0) {
      std::printf("FAIL: profiling enabled but no spans recorded at %d "
                  "threads\n", threads);
      obs::SetProfilingEnabled(false);
      return 1;
    }
    std::printf("  %d threads + prof: artifacts unchanged, %zu span sites "
                "recorded\n", threads, snap.spans.size());
  }
  obs::SetProfilingEnabled(false);

  std::printf("selftest PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }

  std::string warehouse_dir;
  bool prof = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--warehouse") == 0 && i + 1 < argc) {
      warehouse_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--prof") == 0) prof = true;
  }
  if (prof) {
    obs::SetProfilingEnabled(true);
    obs::ProfReset();
  }

  const int threads = scanner::ScanThreadsFromEnv();
  const RunOutput run = RunInstrumentedScan(threads, warehouse_dir);
  obs::MetricsSnapshot snapshot;
  if (!obs::ParseSnapshot(run.metrics_json, snapshot)) {
    std::fprintf(stderr, "scanstats: metrics snapshot failed to parse\n");
    return 1;
  }
  PrintReport(run, snapshot, threads);

  if (!warehouse_dir.empty() && !ReportWarehouse(warehouse_dir, run)) {
    return 1;
  }

  const std::string metrics_path = obs::MetricsPathFromEnv();
  if (!metrics_path.empty()) {
    if (!WriteFileOrComplain(metrics_path, run.metrics_json + "\n")) return 1;
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  const std::string trace_path = obs::TracePathFromEnv();
  if (!trace_path.empty()) {
    if (!WriteFileOrComplain(trace_path, run.trace)) return 1;
    std::printf("wrote probe trace to %s\n", trace_path.c_str());
  }

  if (prof) {
    std::printf("\n%s", obs::RenderProfReport(obs::ProfSnapshotNow()).c_str());
    const std::string prof_trace_path = obs::ProfTracePathFromEnv();
    if (!prof_trace_path.empty()) {
      std::string error;
      if (!obs::ProfWriteChromeTrace(prof_trace_path, &error)) {
        std::fprintf(stderr, "scanstats: %s\n", error.c_str());
        return 1;
      }
      std::printf("wrote Chrome trace to %s (load in Perfetto)\n",
                  prof_trace_path.c_str());
    }
  }
  return 0;
}
