// tlsharm-prof: summarizer for the wall-clock performance plane.
//
// Three modes:
//
//   tlsharm-prof <trace.json>
//     Load a Chrome trace-event file written by the plane
//     (TLSHARM_PROF_TRACE / ProfWriteChromeTrace) and print the aggregated
//     report — per-span totals, self-time hotspots, p50/p95/p99 — after
//     re-nesting each thread's intervals to recover self-time.
//
//   tlsharm-prof --scan [N_DAYS]
//     Run a small instrumented scan (profiling forced on) and print the
//     live report. TLSHARM_POPULATION / TLSHARM_DAYS / TLSHARM_THREADS
//     size it; TLSHARM_PROF_TRACE=<path> also writes the Chrome trace.
//
//   tlsharm-prof --campaign <dir>
//     Same, but through the crash-safe campaign layer into <dir>, so the
//     report includes the commit-barrier spans (campaign.commit.day,
//     durable.fsync, warehouse.segment.*). scripts/check.sh runs this as
//     its prof smoke gate.
//
// The tool never touches the deterministic plane: whatever it profiles
// writes the same artifact bytes it would have written unprofiled.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.h"
#include "obs/prof.h"
#include "obs/prof_report.h"
#include "scanner/scan_engine.h"
#include "simnet/internet.h"

using namespace tlsharm;

namespace {

constexpr std::uint64_t kWorldSeed = 424242;
constexpr std::uint64_t kScanSeed = 1;

std::size_t PopulationFromEnv() {
  if (const char* env = std::getenv("TLSHARM_POPULATION")) {
    const long parsed = std::atol(env);
    if (parsed >= 100) return static_cast<std::size_t>(parsed);
  }
  return 2000;
}

int DaysFromEnv() {
  if (const char* env = std::getenv("TLSHARM_DAYS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1 && parsed <= 63) return parsed;
  }
  return 2;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> | --scan | --campaign <dir>\n"
               "  <trace.json>      summarize a Chrome trace written via\n"
               "                    TLSHARM_PROF_TRACE\n"
               "  --scan            profile a small live scan\n"
               "  --campaign <dir>  profile a small campaign into <dir>\n"
               "sizing env knobs: TLSHARM_POPULATION, TLSHARM_DAYS,\n"
               "TLSHARM_THREADS; TLSHARM_PROF_TRACE=<path> writes the\n"
               "Chrome trace for the run modes\n",
               argv0);
  return 2;
}

void PrintSnapshot() {
  std::printf("%s", obs::RenderProfReport(obs::ProfSnapshotNow()).c_str());
  const std::string trace_path = obs::ProfTracePathFromEnv();
  if (!trace_path.empty()) {
    std::string error;
    if (obs::ProfWriteChromeTrace(trace_path, &error)) {
      std::printf("wrote Chrome trace to %s (load in Perfetto)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "tlsharm-prof: %s\n", error.c_str());
    }
  }
}

int SummarizeTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "tlsharm-prof: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::ProfSnapshot snap;
  std::string error;
  if (!obs::LoadChromeTrace(buf.str(), &snap, &error)) {
    std::fprintf(stderr, "tlsharm-prof: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("== tlsharm-prof: %s ==\n\n", path.c_str());
  std::printf("%s", obs::RenderProfReport(snap).c_str());
  return 0;
}

int RunScan() {
  const std::size_t population = PopulationFromEnv();
  const int days = DaysFromEnv();
  const int threads = scanner::ScanThreadsFromEnv();
  std::printf("== tlsharm-prof --scan: %zu domains, %d day(s), %d "
              "thread(s) ==\n\n", population, days, threads);

  obs::SetProfilingEnabled(true);
  obs::ProfReset();
  simnet::Internet net(simnet::PaperPopulationSpec(population), kWorldSeed);
  scanner::ScanEngineOptions engine;
  engine.threads = threads;
  scanner::RunShardedDailyScans(net, days, kScanSeed, engine);
  PrintSnapshot();
  return 0;
}

int RunCampaignProfile(const std::string& dir) {
  const std::size_t population = PopulationFromEnv();
  const int days = DaysFromEnv();
  const int threads = scanner::ScanThreadsFromEnv();
  std::printf("== tlsharm-prof --campaign: %zu domains, %d day(s), %d "
              "thread(s) into %s ==\n\n", population, days, threads,
              dir.c_str());

  obs::SetProfilingEnabled(true);
  obs::ProfReset();
  simnet::Internet net(simnet::PaperPopulationSpec(population), kWorldSeed);
  campaign::CampaignSpec spec;
  spec.dir = dir;
  spec.days = days;
  spec.seed = kScanSeed;
  spec.threads = threads;
  spec.world_digest = kWorldSeed ^
                      (static_cast<std::uint64_t>(population) << 20);
  campaign::CampaignResult result;
  std::string error;
  if (!campaign::RunCampaign(net, spec, &result, &error)) {
    std::fprintf(stderr, "tlsharm-prof: campaign failed: %s\n",
                 error.c_str());
    return 1;
  }
  PrintSnapshot();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (std::strcmp(argv[1], "--scan") == 0) return RunScan();
  if (std::strcmp(argv[1], "--campaign") == 0) {
    if (argc < 3) return Usage(argv[0]);
    return RunCampaignProfile(argv[2]);
  }
  if (argv[1][0] == '-') return Usage(argv[0]);
  return SummarizeTraceFile(argv[1]);
}
