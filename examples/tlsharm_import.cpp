// tlsharm-import: move observation studies between the legacy text store
// and the columnar warehouse.
//
//   tlsharm-import to-warehouse <store.txt|-> <warehouse-dir>
//   tlsharm-import to-text <warehouse-dir> [out.txt|-]
//   tlsharm-import verify <warehouse-dir>
//   tlsharm-import --selftest
//
// `verify` decodes every segment against the manifest and reports the
// warehouse's shape. `--selftest` is scripts/check.sh's warehouse gate: it
// records a seeded fault-injected study at 1, 2 and 8 threads (warehouse
// bytes must be identical), round-trips the text store through the
// warehouse byte-for-byte, and checks that the incremental fold reproduces
// the live engine's aggregates.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "scanner/scan_engine.h"
#include "warehouse/fold.h"
#include "warehouse/import.h"

using namespace tlsharm;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: tlsharm-import to-warehouse <store.txt|-> <dir>\n"
               "       tlsharm-import to-text <dir> [out.txt|-]\n"
               "       tlsharm-import verify <dir>\n"
               "       tlsharm-import --selftest\n");
  return 2;
}

int ToWarehouse(const std::string& source, const std::string& dir) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (source != "-") {
    file.open(source);
    if (!file) {
      std::fprintf(stderr, "tlsharm-import: cannot open %s\n",
                   source.c_str());
      return 1;
    }
    in = &file;
  }
  warehouse::ImportStats stats;
  std::string error;
  if (!warehouse::TextToWarehouse(*in, dir, &stats, &error)) {
    std::fprintf(stderr, "tlsharm-import: %s\n", error.c_str());
    return 1;
  }
  std::printf("imported %llu observations over %llu days into %s "
              "(%llu warehouse bytes, %llu corrupt lines skipped)\n",
              static_cast<unsigned long long>(stats.rows),
              static_cast<unsigned long long>(stats.days), dir.c_str(),
              static_cast<unsigned long long>(stats.warehouse_bytes),
              static_cast<unsigned long long>(stats.corrupt_lines));
  return 0;
}

int ToText(const std::string& dir, const std::string& target) {
  std::string error;
  const auto wh = warehouse::Warehouse::Open(dir, &error);
  if (!wh.has_value()) {
    std::fprintf(stderr, "tlsharm-import: %s\n", error.c_str());
    return 1;
  }
  std::ofstream file;
  std::ostream* out = &std::cout;
  if (target != "-") {
    file.open(target, std::ios::binary | std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "tlsharm-import: cannot write %s\n",
                   target.c_str());
      return 1;
    }
    out = &file;
  }
  warehouse::ImportStats stats;
  if (!warehouse::WarehouseToText(*wh, *out, &stats, &error)) {
    std::fprintf(stderr, "tlsharm-import: %s\n", error.c_str());
    return 1;
  }
  if (target != "-") {
    std::printf("exported %llu observations over %llu days to %s\n",
                static_cast<unsigned long long>(stats.rows),
                static_cast<unsigned long long>(stats.days), target.c_str());
  }
  return 0;
}

int Verify(const std::string& dir) {
  std::string error;
  const auto wh = warehouse::Warehouse::Open(dir, &error);
  if (!wh.has_value()) {
    std::fprintf(stderr, "tlsharm-import: %s\n", error.c_str());
    return 1;
  }
  std::uint64_t rows = 0;
  if (!wh->ForEachObservation(
          0, 0x7fffffff,
          [&](const scanner::StoredObservation&) { ++rows; }, &error)) {
    std::fprintf(stderr, "tlsharm-import: verify FAILED: %s\n",
                 error.c_str());
    return 1;
  }
  for (const auto& experiment : wh->Experiments()) {
    scanner::ResumptionLifetimeResult result;
    if (!wh->ReadExperiment(experiment.kind, &result, &error)) {
      std::fprintf(stderr, "tlsharm-import: verify FAILED: %s\n",
                   error.c_str());
      return 1;
    }
  }
  std::printf("verify OK: %llu observations across %zu day segments "
              "(%d days), %zu experiment tables, %llu bytes\n",
              static_cast<unsigned long long>(rows),
              wh->ObservationSegments().size(), wh->DayCount(),
              wh->Experiments().size(),
              static_cast<unsigned long long>(wh->TotalBytes()));
  return 0;
}

// --- selftest ---------------------------------------------------------------

constexpr std::size_t kPopulation = 700;
constexpr int kDays = 5;
constexpr std::uint64_t kWorldSeed = 4242;
constexpr std::uint64_t kScanSeed = 777;

struct StudyRun {
  std::string text;                     // text sink bytes
  std::string manifest;                 // warehouse MANIFEST bytes
  std::vector<std::string> segments;    // warehouse segment bytes, in order
  scanner::DailyScanResult result;
};

bool RecordStudy(int threads, const std::string& dir, StudyRun& out) {
  simnet::Internet net(simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));

  std::ostringstream stream;
  scanner::ObservationWriter sink(stream);
  std::string error;
  auto writer = warehouse::WarehouseWriter::Create(dir, &error);
  if (writer == nullptr) {
    std::fprintf(stderr, "selftest: %s\n", error.c_str());
    return false;
  }
  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.robustness.retry.max_attempts = 3;
  options.sink = &sink;
  options.store = writer.get();
  out.result = scanner::RunShardedDailyScans(net, kDays, kScanSeed, options);
  if (!writer->ok()) {
    std::fprintf(stderr, "selftest: warehouse writer: %s\n",
                 writer->error().c_str());
    return false;
  }
  out.text = stream.str();

  Bytes bytes;
  if (!warehouse::ReadWarehouseFile(dir + "/MANIFEST", &bytes, &error)) {
    std::fprintf(stderr, "selftest: %s\n", error.c_str());
    return false;
  }
  out.manifest.assign(bytes.begin(), bytes.end());
  out.segments.clear();
  const auto wh = warehouse::Warehouse::Open(dir, &error);
  if (!wh.has_value()) {
    std::fprintf(stderr, "selftest: %s\n", error.c_str());
    return false;
  }
  for (const auto& info : wh->ObservationSegments()) {
    if (!warehouse::ReadWarehouseFile(dir + "/" + info.file, &bytes,
                                      &error)) {
      std::fprintf(stderr, "selftest: %s\n", error.c_str());
      return false;
    }
    out.segments.emplace_back(bytes.begin(), bytes.end());
  }
  return true;
}

int SelfTest() {
  std::printf("== tlsharm-import --selftest: warehouse determinism gate ==\n");
  const std::string base_dir =
      (std::filesystem::temp_directory_path() / "tlsharm_import_selftest")
          .string();

  StudyRun serial;
  if (!RecordStudy(1, base_dir + "_1", serial)) return 1;
  if (serial.text.empty() || serial.segments.empty()) {
    std::printf("FAIL: study produced no observations\n");
    return 1;
  }
  for (const int threads : {2, 8}) {
    StudyRun parallel;
    if (!RecordStudy(threads, base_dir + "_" + std::to_string(threads),
                     parallel)) {
      return 1;
    }
    if (parallel.manifest != serial.manifest ||
        parallel.segments != serial.segments) {
      std::printf("FAIL: warehouse bytes differ at %d threads\n", threads);
      return 1;
    }
    if (parallel.text != serial.text) {
      std::printf("FAIL: text store differs at %d threads\n", threads);
      return 1;
    }
    std::printf("  %d threads: warehouse and text store byte-identical\n",
                threads);
  }

  // Text -> warehouse -> text identity, against an independently imported
  // copy (not the scan-recorded one).
  const std::string import_dir = base_dir + "_import";
  std::istringstream text_in(serial.text);
  std::string error;
  if (!warehouse::TextToWarehouse(text_in, import_dir, nullptr, &error)) {
    std::printf("FAIL: import: %s\n", error.c_str());
    return 1;
  }
  const auto imported = warehouse::Warehouse::Open(import_dir, &error);
  if (!imported.has_value()) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  std::ostringstream text_out;
  if (!warehouse::WarehouseToText(*imported, text_out, nullptr, &error)) {
    std::printf("FAIL: export: %s\n", error.c_str());
    return 1;
  }
  if (text_out.str() != serial.text) {
    std::printf("FAIL: text -> warehouse -> text is not the identity\n");
    return 1;
  }
  std::printf("  text -> warehouse -> text round-trip byte-identical "
              "(%zu text bytes)\n", serial.text.size());

  // The fold over the imported warehouse must reproduce the live engine.
  simnet::Internet net(simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));
  scanner::DailyScanResult folded;
  if (!warehouse::FoldDailyScans(*imported, net, {}, &folded, &error)) {
    std::printf("FAIL: fold: %s\n", error.c_str());
    return 1;
  }
  if (folded.core_domains != serial.result.core_domains ||
      folded.core_ever_ticket != serial.result.core_ever_ticket ||
      folded.core_ever_ecdhe != serial.result.core_ever_ecdhe ||
      folded.core_ever_dhe_connect != serial.result.core_ever_dhe_connect ||
      folded.core_any_mechanism != serial.result.core_any_mechanism ||
      folded.stek_spans.AllSpans() != serial.result.stek_spans.AllSpans() ||
      folded.ecdhe_spans.AllSpans() !=
          serial.result.ecdhe_spans.AllSpans() ||
      folded.dhe_spans.AllSpans() != serial.result.dhe_spans.AllSpans()) {
    std::printf("FAIL: warehouse fold does not match the live engine\n");
    return 1;
  }
  std::printf("  incremental fold == live engine aggregates "
              "(%zu core domains)\n", folded.core_domains.size());

  std::uint64_t warehouse_bytes = 0;
  for (const std::string& segment : serial.segments) {
    warehouse_bytes += segment.size();
  }
  if (warehouse_bytes >= serial.text.size()) {
    std::printf("FAIL: warehouse (%llu bytes) not smaller than text store "
                "(%zu bytes)\n",
                static_cast<unsigned long long>(warehouse_bytes),
                serial.text.size());
    return 1;
  }
  std::printf("  warehouse %llu bytes vs text %zu bytes (%.1f%%)\n",
              static_cast<unsigned long long>(warehouse_bytes),
              serial.text.size(),
              100.0 * static_cast<double>(warehouse_bytes) /
                  static_cast<double>(serial.text.size()));
  std::printf("selftest PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }
  if (argc >= 2 && std::strcmp(argv[1], "to-warehouse") == 0) {
    if (argc != 4) return Usage();
    return ToWarehouse(argv[2], argv[3]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "to-text") == 0) {
    if (argc != 3 && argc != 4) return Usage();
    return ToText(argv[2], argc == 4 ? argv[3] : "-");
  }
  if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
    if (argc != 3) return Usage();
    return Verify(argv[2]);
  }
  return Usage();
}
