// client_mix: the client side of the ecosystem. Simulates a population of
// browsers over the calibrated Internet and reports the share of TLS
// sessions that are resumptions — the §2.2 Mozilla-telemetry statistic
// ("50% of Firefox TLS sessions are resumptions") — plus how that share
// responds to browsing cadence and to servers' resumption windows.
#include <cstdio>

#include "simnet/clients.h"

using namespace tlsharm;

namespace {

void Report(const char* label, const simnet::TrafficStats& stats) {
  std::printf("%-34s handshakes=%-6zu resumed=%-5zu (%.0f%%; tickets %.0f%%"
              " of resumptions)\n",
              label, stats.handshake_ok, stats.resumed,
              stats.ResumptionRate() * 100.0,
              stats.resumed == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(stats.resumed_via_ticket) /
                        static_cast<double>(stats.resumed));
}

}  // namespace

int main() {
  std::printf("== client_mix: browser-population resumption rates ==\n");
  std::printf("(paper §2.2: Mozilla telemetry saw 50%% of Firefox TLS"
              " sessions as resumptions)\n\n");
  simnet::Internet net(simnet::PaperPopulationSpec(6000), 2016);

  // A typical population: bursts of browsing with ~10-minute think time.
  simnet::BrowserConfig typical;
  simnet::BrowserPool typical_pool(net, typical, /*browsers=*/40, 1);
  Report("typical browsing (10m gaps)", typical_pool.Browse(0, 12 * kHour));

  // Rapid tab-churners: nearly every revisit lands inside the window.
  simnet::BrowserConfig rapid;
  rapid.mean_gap = 2 * kMinute;
  simnet::BrowserPool rapid_pool(net, rapid, 40, 2);
  Report("rapid browsing (2m gaps)", rapid_pool.Browse(0, 4 * kHour));

  // Occasional visitors: most sessions expired server-side by the revisit.
  simnet::BrowserConfig occasional;
  occasional.mean_gap = 6 * kHour;
  simnet::BrowserPool occasional_pool(net, occasional, 40, 3);
  Report("occasional browsing (6h gaps)",
         occasional_pool.Browse(0, 3 * kDay));

  std::printf("\nResumption share tracks how revisit gaps compare with the"
              " servers' honoured windows\n(Figures 1-2): the same population"
              " statistic the paper quotes from telemetry, emerging\nfrom"
              " first principles here.\n");
  return 0;
}
