// obsq: query a columnar observation warehouse from the command line.
//
//   obsq summary <dir>
//   obsq count <dir> [filters]
//   obsq group-by <key> <dir> [filters]     key: day | failure | suite |
//                                                domain | kex_group
//   obsq spans <dir>                        secret-span CDFs via the fold
//   obsq --selftest
//
// Filters (conjunctive): --day-min N  --day-max N  --domain N
//                        --failure <class>  --has-secret stek|kex|session_id
//
// Output is deterministic: group-by rows are sorted by key, shares and
// CDFs are computed from exact counts, and day-range filters prune whole
// segments before any disk read.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "scanner/scan_engine.h"
#include "util/table.h"
#include "warehouse/fold.h"
#include "warehouse/query.h"

using namespace tlsharm;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: obsq summary <dir>\n"
      "       obsq count <dir> [filters]\n"
      "       obsq group-by <key> <dir> [filters]\n"
      "       obsq spans <dir>\n"
      "       obsq --selftest\n"
      "filters: --day-min N --day-max N --domain N --failure <class>\n"
      "         --has-secret stek|kex|session_id\n");
  return 2;
}

bool ParseFailureClass(const std::string& name,
                       scanner::ProbeFailure* failure) {
  for (int c = 0; c < scanner::kProbeFailureClasses; ++c) {
    const auto candidate = static_cast<scanner::ProbeFailure>(c);
    if (name == ToString(candidate)) {
      *failure = candidate;
      return true;
    }
  }
  return false;
}

bool ParseInt(const char* text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text, &end, 10);
  return end != text && *end == '\0';
}

// Parses trailing --flag value pairs into `filter`; false on a bad flag.
bool ParseFilters(int argc, char** argv, int first,
                  warehouse::ObsFilter* filter) {
  for (int i = first; i < argc; i += 2) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "obsq: %s needs a value\n", argv[i]);
      return false;
    }
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    long long number = 0;
    if (flag == "--day-min" && ParseInt(argv[i + 1], &number)) {
      filter->day_min = static_cast<int>(number);
    } else if (flag == "--day-max" && ParseInt(argv[i + 1], &number)) {
      filter->day_max = static_cast<int>(number);
    } else if (flag == "--domain" && ParseInt(argv[i + 1], &number)) {
      filter->domain = static_cast<scanner::DomainIndex>(number);
    } else if (flag == "--failure") {
      scanner::ProbeFailure failure;
      if (!ParseFailureClass(value, &failure)) {
        std::fprintf(stderr, "obsq: unknown failure class \"%s\"\n",
                     value.c_str());
        return false;
      }
      filter->failure = failure;
    } else if (flag == "--has-secret") {
      const auto kind = warehouse::ParseSecretKind(value);
      if (!kind.has_value()) {
        std::fprintf(stderr, "obsq: unknown secret kind \"%s\"\n",
                     value.c_str());
        return false;
      }
      filter->has_secret = *kind;
    } else {
      std::fprintf(stderr, "obsq: bad filter \"%s\"\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::optional<warehouse::Warehouse> OpenOrComplain(const std::string& dir) {
  std::string error;
  auto wh = warehouse::Warehouse::Open(dir, &error);
  if (!wh.has_value()) std::fprintf(stderr, "obsq: %s\n", error.c_str());
  return wh;
}

int Summary(const std::string& dir) {
  const auto wh = OpenOrComplain(dir);
  if (!wh.has_value()) return 1;
  std::printf("warehouse %s\n", dir.c_str());
  std::printf("  days: %d (%zu segments)\n", wh->DayCount(),
              wh->ObservationSegments().size());
  std::printf("  observations: %llu\n",
              static_cast<unsigned long long>(wh->TotalRows()));
  std::printf("  bytes: %llu\n",
              static_cast<unsigned long long>(wh->TotalBytes()));
  TextTable days({"Day", "Rows", "Bytes", "File"});
  for (const auto& info : wh->ObservationSegments()) {
    days.AddRow({std::to_string(info.day), std::to_string(info.rows),
                 std::to_string(info.bytes), info.file});
  }
  std::printf("%s", days.Render().c_str());
  if (!wh->Experiments().empty()) {
    TextTable experiments({"Experiment", "Rows", "Bytes", "File"});
    for (const auto& info : wh->Experiments()) {
      experiments.AddRow({info.kind, std::to_string(info.rows),
                          std::to_string(info.bytes), info.file});
    }
    std::printf("%s", experiments.Render().c_str());
  }
  return 0;
}

int Count(const std::string& dir, const warehouse::ObsFilter& filter) {
  const auto wh = OpenOrComplain(dir);
  if (!wh.has_value()) return 1;
  std::uint64_t count = 0;
  std::string error;
  if (!warehouse::CountObservations(*wh, filter, &count, &error)) {
    std::fprintf(stderr, "obsq: %s\n", error.c_str());
    return 1;
  }
  std::printf("%llu\n", static_cast<unsigned long long>(count));
  return 0;
}

// Renders a group key symbolically where the raw number would be opaque.
std::string RenderKey(warehouse::GroupKey key, std::uint64_t value) {
  if (key == warehouse::GroupKey::kFailure &&
      value < scanner::kProbeFailureClasses) {
    return std::string(
        ToString(static_cast<scanner::ProbeFailure>(value)));
  }
  if (key == warehouse::GroupKey::kSuite) {
    if (tls::IsKnownCipherSuite(static_cast<std::uint16_t>(value))) {
      return std::string(
          tls::ToString(static_cast<tls::CipherSuite>(value)));
    }
    if (value == 0) return "none";
  }
  return std::to_string(value);
}

int GroupBy(const std::string& key_name, const std::string& dir,
            const warehouse::ObsFilter& filter) {
  const auto key = warehouse::ParseGroupKey(key_name);
  if (!key.has_value()) {
    std::fprintf(stderr, "obsq: unknown group key \"%s\"\n",
                 key_name.c_str());
    return 2;
  }
  const auto wh = OpenOrComplain(dir);
  if (!wh.has_value()) return 1;
  std::vector<warehouse::GroupCount> groups;
  std::string error;
  if (!warehouse::GroupCountObservations(*wh, filter, *key, &groups,
                                         &error)) {
    std::fprintf(stderr, "obsq: %s\n", error.c_str());
    return 1;
  }
  std::uint64_t total = 0;
  for (const auto& group : groups) total += group.count;
  TextTable table({std::string(ToString(*key)), "Count", "Share", "CDF"});
  std::uint64_t running = 0;
  for (const auto& group : groups) {
    running += group.count;
    char share[32], cdf[32];
    std::snprintf(share, sizeof(share), "%.2f%%",
                  total == 0 ? 0.0
                             : 100.0 * static_cast<double>(group.count) /
                                   static_cast<double>(total));
    std::snprintf(cdf, sizeof(cdf), "%.2f%%",
                  total == 0 ? 0.0
                             : 100.0 * static_cast<double>(running) /
                                   static_cast<double>(total));
    table.AddRow({RenderKey(*key, group.key), std::to_string(group.count),
                  share, cdf});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("total %llu\n", static_cast<unsigned long long>(total));
  return 0;
}

// Span CDF of one tracker: how many domains kept a secret <= N days.
void PrintSpanCdf(const char* label, const analysis::SpanTracker& tracker,
                  int day_count) {
  const auto spans = tracker.AllSpans();
  std::printf("%s: %zu domains with spans\n", label, spans.size());
  if (spans.empty()) return;
  std::vector<std::uint64_t> by_days(
      static_cast<std::size_t>(day_count) + 1, 0);
  for (const auto& [domain, days] : spans) {
    if (days >= 0 && days <= day_count) {
      ++by_days[static_cast<std::size_t>(days)];
    }
  }
  TextTable table({"Span (days)", "Domains", "CDF"});
  std::uint64_t running = 0;
  for (int days = 0; days <= day_count; ++days) {
    const std::uint64_t count = by_days[static_cast<std::size_t>(days)];
    if (count == 0) continue;
    running += count;
    char cdf[32];
    std::snprintf(cdf, sizeof(cdf), "%.2f%%",
                  100.0 * static_cast<double>(running) /
                      static_cast<double>(spans.size()));
    table.AddRow({std::to_string(days), std::to_string(count), cdf});
  }
  std::printf("%s", table.Render().c_str());
}

int Spans(const std::string& dir) {
  const auto wh = OpenOrComplain(dir);
  if (!wh.has_value()) return 1;
  warehouse::ScanFold fold;
  std::string error;
  for (const auto& info : wh->ObservationSegments()) {
    if (!wh->ForEachObservation(
            info.day, info.day,
            [&](const scanner::StoredObservation& stored) {
              fold.Fold(stored.day, stored.observation);
            },
            &error)) {
      std::fprintf(stderr, "obsq: %s\n", error.c_str());
      return 1;
    }
    fold.CompleteDay(info.day);
  }
  const int days = wh->DayCount();
  PrintSpanCdf("stek", fold.StekSpans(), days);
  PrintSpanCdf("ecdhe", fold.EcdheSpans(), days);
  PrintSpanCdf("dhe", fold.DheSpans(), days);
  return 0;
}

// --- selftest ---------------------------------------------------------------

int SelfTest() {
  std::printf("== obsq --selftest: query determinism gate ==\n");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "obsq_selftest").string();

  // A small seeded faulty study gives the queries something realistic.
  simnet::Internet net(simnet::PaperPopulationSpec(400), 4242);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));
  std::string error;
  auto writer = warehouse::WarehouseWriter::Create(dir, &error);
  if (writer == nullptr) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  scanner::ScanEngineOptions options;
  options.robustness.retry.max_attempts = 3;
  options.store = writer.get();
  scanner::RunShardedDailyScans(net, 3, 777, options);
  if (!writer->ok()) {
    std::printf("FAIL: %s\n", writer->error().c_str());
    return 1;
  }
  const auto wh = warehouse::Warehouse::Open(dir, &error);
  if (!wh.has_value()) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }

  // Unfiltered count must equal the manifest's row total.
  std::uint64_t all = 0;
  if (!warehouse::CountObservations(*wh, {}, &all, &error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  if (all == 0 || all != wh->TotalRows()) {
    std::printf("FAIL: count %llu != manifest rows %llu\n",
                static_cast<unsigned long long>(all),
                static_cast<unsigned long long>(wh->TotalRows()));
    return 1;
  }
  std::printf("  count == manifest rows (%llu)\n",
              static_cast<unsigned long long>(all));

  // Group-by day must match the per-segment row counts, and both failure
  // and day groupings must partition the total.
  std::vector<warehouse::GroupCount> by_day, by_failure;
  if (!warehouse::GroupCountObservations(*wh, {}, warehouse::GroupKey::kDay,
                                         &by_day, &error) ||
      !warehouse::GroupCountObservations(
          *wh, {}, warehouse::GroupKey::kFailure, &by_failure, &error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  if (by_day.size() != wh->ObservationSegments().size()) {
    std::printf("FAIL: group-by day has %zu groups, expected %zu\n",
                by_day.size(), wh->ObservationSegments().size());
    return 1;
  }
  std::uint64_t day_total = 0, failure_total = 0;
  for (std::size_t i = 0; i < by_day.size(); ++i) {
    if (by_day[i].count != wh->ObservationSegments()[i].rows) {
      std::printf("FAIL: day %llu count disagrees with its segment\n",
                  static_cast<unsigned long long>(by_day[i].key));
      return 1;
    }
    day_total += by_day[i].count;
  }
  for (const auto& group : by_failure) failure_total += group.count;
  if (day_total != all || failure_total != all) {
    std::printf("FAIL: groupings do not partition the total\n");
    return 1;
  }
  std::printf("  group-by day and failure both partition %llu rows\n",
              static_cast<unsigned long long>(all));

  // A day-pruned count must equal the sum of the pruned groups.
  warehouse::ObsFilter tail;
  tail.day_min = 1;
  std::uint64_t tail_count = 0;
  if (!warehouse::CountObservations(*wh, tail, &tail_count, &error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  std::uint64_t expected_tail = 0;
  for (const auto& group : by_day) {
    if (group.key >= 1) expected_tail += group.count;
  }
  if (tail_count != expected_tail) {
    std::printf("FAIL: pruned count %llu != unpruned sum %llu\n",
                static_cast<unsigned long long>(tail_count),
                static_cast<unsigned long long>(expected_tail));
    return 1;
  }
  std::printf("  segment pruning preserves counts (days >= 1: %llu)\n",
              static_cast<unsigned long long>(tail_count));

  // Secret filters nest: every stek-bearing row also bears a session
  // ticket flag, and filters are stable across repeated evaluation.
  warehouse::ObsFilter stek;
  stek.has_secret = warehouse::SecretKind::kStek;
  std::uint64_t stek_count = 0, stek_again = 0;
  if (!warehouse::CountObservations(*wh, stek, &stek_count, &error) ||
      !warehouse::CountObservations(*wh, stek, &stek_again, &error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  if (stek_count == 0 || stek_count != stek_again || stek_count > all) {
    std::printf("FAIL: stek filter unstable (%llu vs %llu)\n",
                static_cast<unsigned long long>(stek_count),
                static_cast<unsigned long long>(stek_again));
    return 1;
  }
  std::printf("  filters deterministic (stek-bearing rows: %llu)\n",
              static_cast<unsigned long long>(stek_count));
  std::printf("selftest PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "summary" && argc == 3) return Summary(argv[2]);
  if (command == "count") {
    warehouse::ObsFilter filter;
    if (!ParseFilters(argc, argv, 3, &filter)) return 2;
    return Count(argv[2], filter);
  }
  if (command == "group-by" && argc >= 4) {
    warehouse::ObsFilter filter;
    if (!ParseFilters(argc, argv, 4, &filter)) return 2;
    return GroupBy(argv[2], argv[3], filter);
  }
  if (command == "spans" && argc == 3) return Spans(argv[2]);
  return Usage();
}
