// Quickstart: stand up an SSL terminator, run a full TLS handshake, resume
// the session by ID and by ticket, and inspect what an external scanner can
// observe. This is the five-minute tour of the library's public API.
#include <cstdio>
#include <fstream>
#include <vector>

#include "crypto/drbg.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pki/ca.h"
#include "pki/root_store.h"
#include "server/terminator.h"
#include "simnet/faults.h"
#include "tls/client.h"
#include "tls/ticket.h"
#include "util/hex.h"

using namespace tlsharm;

int main() {
  // --- 1. A miniature PKI: root CA -> intermediate -> server certificate.
  crypto::Drbg drbg(ToBytes("quickstart entropy"));
  pki::CertificateAuthority root("Example Root CA",
                                 pki::SignatureScheme::kSchnorrSim61, drbg);
  pki::CertificateAuthority intermediate(
      "Example Intermediate CA", pki::SignatureScheme::kSchnorrSim61, drbg);
  pki::RootStore browser_store;
  browser_store.AddRoot(root.Name(), root.Scheme(), root.PublicKey());
  const pki::CertificateChain intermediate_chain = {
      root.IssueCaCertificate(intermediate, 0, 365 * kDay, drbg)};

  // --- 2. An SSL terminator hosting www.example.test.
  server::ServerConfig config;
  config.session_cache.lifetime = 5 * kMinute;   // Apache default
  config.tickets.acceptance_window = 10 * kMinute;
  config.tickets.lifetime_hint_seconds = 600;
  server::SslTerminator terminator("example-terminator", config, /*seed=*/7);
  server::Credential credential = server::MakeCredential(
      intermediate, {"www.example.test"}, pki::SignatureScheme::kSchnorrSim61,
      0, 365 * kDay, intermediate_chain, drbg);
  terminator.MapDomain("www.example.test",
                       terminator.AddCredential(std::move(credential)));

  // --- 3. A full handshake.
  crypto::Drbg client_drbg(ToBytes("browser entropy"));
  tls::ClientConfig client_config;
  client_config.server_name = "www.example.test";
  client_config.root_store = &browser_store;

  auto conn = terminator.NewConnection(/*now=*/0);
  tls::TlsClient client(client_config);
  const tls::HandshakeResult hs = client.Handshake(*conn, 0, client_drbg);
  if (!hs.ok) {
    std::printf("handshake failed: %s\n", hs.error.c_str());
    return 1;
  }
  std::printf("full handshake: suite=%s trusted=%s\n",
              std::string(tls::ToString(hs.suite)).c_str(),
              hs.chain_trusted ? "yes" : "no");
  std::printf("  session id:   %s...\n",
              HexEncode(ByteView(hs.session_id.data(), 8)).c_str());
  std::printf("  ticket (%zu bytes), STEK id %s..., hint %us\n",
              hs.ticket.size(),
              HexEncode(ByteView(tls::ExtractStekIdAuto(hs.ticket)->data(), 8))
                  .c_str(),
              hs.ticket_lifetime_hint);

  // --- 4. Application data over the negotiated keys.
  tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
  const auto response = tls::TlsClient::Roundtrip(
      *conn, hs, channel, ToBytes("GET / HTTP/1.1\r\n\r\n"), client_drbg);
  std::printf("  response: %s\n",
              response ? ToString(*response).c_str() : "(none)");

  // --- 5. Resume by session ID two minutes later.
  tls::ClientConfig resume_id = client_config;
  resume_id.resume_session_id = hs.session_id;
  resume_id.resume_master_secret = hs.master_secret;
  auto conn2 = terminator.NewConnection(2 * kMinute);
  tls::TlsClient id_client(resume_id);
  const auto resumed_id = id_client.Handshake(*conn2, 2 * kMinute, client_drbg);
  std::printf("resume by session ID at +2m: %s\n",
              resumed_id.ok && resumed_id.resumed ? "accepted" : "rejected");

  // --- 6. Resume by ticket, then watch the window close.
  tls::ClientConfig resume_ticket = client_config;
  resume_ticket.resume_ticket = hs.ticket;
  resume_ticket.resume_master_secret = hs.master_secret;
  std::vector<bool> ticket_accepted;
  for (const SimTime when : {5 * kMinute, 20 * kMinute}) {
    auto connN = terminator.NewConnection(when);
    tls::TlsClient ticket_client(resume_ticket);
    const auto resumed = ticket_client.Handshake(*connN, when, client_drbg);
    ticket_accepted.push_back(resumed.ok && resumed.resumed);
    std::printf("resume by ticket at +%lldm: %s\n",
                static_cast<long long>(when / kMinute),
                resumed.ok && resumed.resumed
                    ? "accepted"
                    : "rejected (full handshake fallback)");
  }
  // --- 7. A faulty network: the same handshake through a connection that
  // truncates the server's first flight. The client fails closed and
  // reports a classified error — what the scanner's failure taxonomy and
  // retry logic are built on.
  simnet::FaultyConnection faulty(
      terminator.NewConnection(30 * kMinute),
      simnet::FaultDecision{simnet::FaultKind::kTruncate, /*payload_seed=*/41});
  tls::TlsClient faulted_client(client_config);
  const auto broken = faulted_client.Handshake(faulty, 30 * kMinute,
                                               client_drbg);
  std::printf("truncated server flight: ok=%s class=%s (%s)\n",
              broken.ok ? "yes" : "no",
              std::string(tls::ToString(broken.error_class)).c_str(),
              broken.error.c_str());

  // --- 8. Optional telemetry (TLSHARM_METRICS / TLSHARM_TRACE, both off by
  // default — with the knobs unset this tour's output is byte-identical to
  // before the observability layer existed). The metrics snapshot counts
  // what happened above; the trace replays each connection as one event.
  const std::string metrics_path = obs::MetricsPathFromEnv();
  const std::string trace_path = obs::TracePathFromEnv();
  if (!metrics_path.empty()) {
    obs::MetricsRegistry metrics;
    metrics.GetCounter("quickstart.handshakes.full").Add(1);
    metrics.GetCounter("quickstart.handshakes.faulted").Add(1);
    metrics.GetCounter("quickstart.resume.attempts")
        .Add(1 + ticket_accepted.size());
    std::uint64_t accepted = resumed_id.ok && resumed_id.resumed;
    for (const bool ok : ticket_accepted) accepted += ok;
    metrics.GetCounter("quickstart.resume.accepted").Add(accepted);
    metrics.GetGauge("quickstart.stek.acceptance_window")
        .Set(config.tickets.acceptance_window);
    std::ofstream out(metrics_path, std::ios::binary);
    if (out) {
      out << metrics.SnapshotJson() << '\n';
      std::printf("\ntelemetry: wrote metrics snapshot to %s\n",
                  metrics_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    if (out) {
      obs::JsonlTraceSink sink(out);
      const SimTime schedule[] = {0, 2 * kMinute, 5 * kMinute, 20 * kMinute,
                                  30 * kMinute};
      const bool outcomes[] = {hs.ok,
                               resumed_id.ok && resumed_id.resumed,
                               ticket_accepted[0], ticket_accepted[1],
                               broken.ok};
      for (std::uint64_t i = 0; i < 5; ++i) {
        obs::ProbeTraceEvent event;
        event.seq = i;
        event.scheduled = schedule[i];
        event.start = schedule[i];
        event.duration = 1;
        event.failure = outcomes[i] ? "ok" : "malformed";
        if (i >= 1 && i <= 3) event.resumed = outcomes[i] ? 1 : 0;
        sink.Emit(event);
      }
      std::printf("telemetry: wrote %zu trace events to %s\n",
                  sink.Emitted(), trace_path.c_str());
    }
  }

  std::printf("\nThe 10-minute ticket window above IS the vulnerability "
              "window the paper measures:\nuntil the STEK rotates, anyone "
              "who obtains it can decrypt this session retroactively.\n");
  return 0;
}
