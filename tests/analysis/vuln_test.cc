#include "analysis/vuln.h"

#include <gtest/gtest.h>

namespace tlsharm::analysis {
namespace {

TEST(DomainExposureTest, MaxWindowPicksLargest) {
  DomainExposure exposure;
  exposure.stek_window = 7 * kDay;
  exposure.cache_window = 5 * kMinute;
  exposure.ticket_window = 18 * kHour;
  exposure.dh_window = 2 * kDay;
  EXPECT_EQ(exposure.MaxWindow(), 7 * kDay);
}

TEST(DomainExposureTest, AnyMechanismDetectsParticipation) {
  DomainExposure none;
  EXPECT_FALSE(none.AnyMechanism());
  DomainExposure only_cache;
  only_cache.cache_window = kMinute;
  EXPECT_TRUE(only_cache.AnyMechanism());
}

TEST(CombinedWindowTest, ExcludesNonParticipants) {
  std::vector<DomainExposure> exposures(10);
  exposures[0].stek_window = kDay;
  exposures[1].cache_window = kHour;
  const auto dist = CombinedWindowDistribution(exposures);
  EXPECT_EQ(dist.Count(), 2u);
}

TEST(CombinedWindowTest, ReproducesThresholdFractions) {
  // 10 domains: 4 with >24h windows, 2 of those >7d, 1 of those >30d.
  std::vector<DomainExposure> exposures;
  auto add = [&exposures](SimTime window) {
    DomainExposure e;
    e.stek_window = window;
    exposures.push_back(e);
  };
  for (int i = 0; i < 6; ++i) add(5 * kMinute);
  add(2 * kDay);
  add(3 * kDay);
  add(10 * kDay);
  add(40 * kDay);
  const auto dist = CombinedWindowDistribution(exposures);
  EXPECT_DOUBLE_EQ(dist.FractionAtLeast(static_cast<double>(kDay) + 1), 0.4);
  EXPECT_DOUBLE_EQ(dist.FractionAtLeast(static_cast<double>(7 * kDay)), 0.2);
  EXPECT_DOUBLE_EQ(dist.FractionAtLeast(static_cast<double>(30 * kDay)), 0.1);
}

TEST(CombinedWindowTest, MaxOfMechanismsNotSum) {
  std::vector<DomainExposure> exposures(1);
  exposures[0].stek_window = kDay;
  exposures[0].dh_window = kDay;
  const auto dist = CombinedWindowDistribution(exposures);
  EXPECT_DOUBLE_EQ(dist.Max(), static_cast<double>(kDay));
}

}  // namespace
}  // namespace tlsharm::analysis
