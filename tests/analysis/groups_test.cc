#include "analysis/groups.h"

#include <gtest/gtest.h>

namespace tlsharm::analysis {
namespace {

TEST(UnionFindTest, InitiallyDisjoint) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Connected(2, 2));
}

TEST(UnionFindTest, UnionConnects) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
}

TEST(UnionFindTest, TransitivityAcrossManyUnions) {
  UnionFind uf(100);
  for (std::uint32_t i = 0; i + 2 < 100; ++i) uf.Union(i, i + 2);
  EXPECT_TRUE(uf.Connected(0, 98));
  EXPECT_TRUE(uf.Connected(1, 99));
  // Stride-2 unions build two disjoint parity chains.
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(ServiceGroupBuilderTest, SharedSecretGroupsDomains) {
  ServiceGroupBuilder builder(10);
  builder.ObserveSecret(0xaaa, 1);
  builder.ObserveSecret(0xaaa, 2);
  builder.ObserveSecret(0xbbb, 3);
  const auto groups = builder.Groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<scanner::DomainIndex>{1, 2}));
  EXPECT_EQ(groups[1], (std::vector<scanner::DomainIndex>{3}));
}

TEST(ServiceGroupBuilderTest, TransitiveGrowthAcrossSecrets) {
  // a,b share one secret; b,c share another: one group {a,b,c} — the
  // paper's transitive methodology.
  ServiceGroupBuilder builder(10);
  builder.ObserveSecret(0x1, 1);
  builder.ObserveSecret(0x1, 2);
  builder.ObserveSecret(0x2, 2);
  builder.ObserveSecret(0x2, 3);
  const auto groups = builder.Groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<scanner::DomainIndex>{1, 2, 3}));
}

TEST(ServiceGroupBuilderTest, LinksAndSecretsCompose) {
  ServiceGroupBuilder builder(10);
  builder.ObserveSecret(0x1, 1);
  builder.ObserveSecret(0x1, 2);
  builder.ObserveLink(2, 5);
  const auto groups = builder.Groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(ServiceGroupBuilderTest, GroupsSortedBySizeDescending) {
  ServiceGroupBuilder builder(20);
  for (scanner::DomainIndex d : {1u, 2u, 3u, 4u}) {
    builder.ObserveSecret(0x1, d);
  }
  builder.ObserveSecret(0x2, 10);
  builder.ObserveSecret(0x2, 11);
  builder.ObserveMember(15);
  const auto groups = builder.Groups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size(), 4u);
  EXPECT_EQ(groups[1].size(), 2u);
  EXPECT_EQ(groups[2].size(), 1u);
}

TEST(ServiceGroupBuilderTest, MembersCountedOnce) {
  ServiceGroupBuilder builder(10);
  builder.ObserveSecret(0x1, 1);
  builder.ObserveSecret(0x2, 1);
  builder.ObserveMember(1);
  EXPECT_EQ(builder.MemberCount(), 1u);
}

TEST(ServiceGroupBuilderTest, NoSecretIgnored) {
  ServiceGroupBuilder builder(10);
  builder.ObserveSecret(scanner::kNoSecret, 1);
  builder.ObserveSecret(scanner::kNoSecret, 2);
  EXPECT_EQ(builder.MemberCount(), 0u);
  // kNoSecret must never union unrelated domains.
  EXPECT_TRUE(builder.Groups().empty());
}

TEST(ServiceGroupBuilderTest, SingleDomainGroupsDominateRealisticInput) {
  // 86% of session-cache groups were single-domain (§5.1); the builder must
  // represent singletons faithfully.
  ServiceGroupBuilder builder(100);
  for (scanner::DomainIndex d = 0; d < 50; ++d) {
    builder.ObserveSecret(0x1000 + d, d);  // unique secret each
  }
  builder.ObserveSecret(0x9999, 60);
  builder.ObserveSecret(0x9999, 61);
  const auto groups = builder.Groups();
  EXPECT_EQ(groups.size(), 51u);
  EXPECT_EQ(groups[0].size(), 2u);
  std::size_t singles = 0;
  for (const auto& group : groups) singles += group.size() == 1;
  EXPECT_EQ(singles, 50u);
}

}  // namespace
}  // namespace tlsharm::analysis
