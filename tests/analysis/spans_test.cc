#include "analysis/spans.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tlsharm::analysis {
namespace {

TEST(SpanTrackerTest, UnobservedDomainHasZeroSpan) {
  SpanTracker tracker;
  EXPECT_EQ(tracker.MaxSpanDays(7), 0);
  EXPECT_FALSE(tracker.EverObserved(7));
}

TEST(SpanTrackerTest, SingleObservationSpansOneDay) {
  SpanTracker tracker;
  tracker.Observe(1, 0xabc, 5);
  EXPECT_EQ(tracker.MaxSpanDays(1), 1);
  EXPECT_TRUE(tracker.EverObserved(1));
}

TEST(SpanTrackerTest, ContinuousReuseSpans) {
  SpanTracker tracker;
  for (int day = 0; day < 63; ++day) tracker.Observe(1, 0xabc, day);
  EXPECT_EQ(tracker.MaxSpanDays(1), 63);
}

TEST(SpanTrackerTest, DailyRotationSpansOne) {
  SpanTracker tracker;
  for (int day = 0; day < 63; ++day) {
    tracker.Observe(1, 0x1000 + static_cast<SecretId>(day), day);
  }
  EXPECT_EQ(tracker.MaxSpanDays(1), 1);
  EXPECT_EQ(tracker.DaysObserved(1), 63);
}

TEST(SpanTrackerTest, JitterGapsDoNotBreakSpan) {
  // §4.3: intermediate days with a different id (load-balancer flip) must
  // not reset the first/last computation.
  SpanTracker tracker;
  tracker.Observe(1, 0xaaa, 0);
  tracker.Observe(1, 0xbbb, 1);  // other terminator answered
  tracker.Observe(1, 0xaaa, 2);
  tracker.Observe(1, 0xbbb, 3);
  tracker.Observe(1, 0xaaa, 4);
  EXPECT_EQ(tracker.MaxSpanDays(1), 5);  // 0xaaa spans day 0..4
}

TEST(SpanTrackerTest, SpanIsPerSecretNotPerDomain) {
  SpanTracker tracker;
  // Rotation at day 10: two secrets, spans 10 and 5.
  for (int day = 0; day < 10; ++day) tracker.Observe(1, 0x1, day);
  for (int day = 10; day < 15; ++day) tracker.Observe(1, 0x2, day);
  EXPECT_EQ(tracker.MaxSpanDays(1), 10);
}

TEST(SpanTrackerTest, FoldedEntriesStillCountTowardMax) {
  // An id retired long ago (beyond the horizon) must still contribute.
  SpanTracker tracker(/*reappearance_horizon_days=*/3);
  for (int day = 0; day < 20; ++day) tracker.Observe(1, 0x1, day);
  for (int day = 20; day < 63; ++day) {
    tracker.Observe(1, 0x100 + static_cast<SecretId>(day), day);
  }
  EXPECT_EQ(tracker.MaxSpanDays(1), 20);
}

TEST(SpanTrackerTest, ReappearanceWithinHorizonExtends) {
  SpanTracker tracker(/*reappearance_horizon_days=*/8);
  tracker.Observe(1, 0x1, 0);
  tracker.Observe(1, 0x2, 1);
  tracker.Observe(1, 0x2, 2);
  tracker.Observe(1, 0x2, 3);
  tracker.Observe(1, 0x1, 6);  // reappears within 8 days
  EXPECT_EQ(tracker.MaxSpanDays(1), 7);  // 0x1: day 0..6
}

TEST(SpanTrackerTest, DomainsAreIndependent) {
  SpanTracker tracker;
  tracker.Observe(1, 0x1, 0);
  tracker.Observe(1, 0x1, 7);  // within the default 8-day horizon
  tracker.Observe(2, 0x1, 5);
  EXPECT_EQ(tracker.MaxSpanDays(1), 8);
  EXPECT_EQ(tracker.MaxSpanDays(2), 1);
}

TEST(SpanTrackerTest, GapBeyondHorizonStartsNewSpan) {
  // A recurrence after more than the reappearance horizon is treated as a
  // fresh epoch (the scanner's memory-bounding policy; see spans.h).
  SpanTracker tracker;  // default horizon 8
  tracker.Observe(1, 0x1, 0);
  tracker.Observe(1, 0x1, 9);
  EXPECT_EQ(tracker.MaxSpanDays(1), 1);
}

TEST(SpanTrackerTest, NoSecretObservationsIgnored) {
  SpanTracker tracker;
  tracker.Observe(1, scanner::kNoSecret, 0);
  EXPECT_FALSE(tracker.EverObserved(1));
}

TEST(SpanTrackerTest, AllSpansEnumeratesEveryDomain) {
  SpanTracker tracker;
  tracker.Observe(1, 0x1, 0);
  tracker.Observe(2, 0x2, 0);
  tracker.Observe(2, 0x2, 4);
  auto spans = tracker.AllSpans();
  std::sort(spans.begin(), spans.end());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (std::pair<DomainIndex, int>{1, 1}));
  EXPECT_EQ(spans[1], (std::pair<DomainIndex, int>{2, 5}));
}

TEST(SpanTrackerTest, AllSpansIsSortedByDomainIndex) {
  // Regression: the tracker's map is unordered, so AllSpans must sort by
  // domain itself — reports and byte-equality checks built on it depend on
  // a stable order, and insertion order is an adversarial case for
  // hash-map iteration.
  SpanTracker tracker;
  for (const DomainIndex domain : {7, 3, 11, 1, 5, 2}) {
    tracker.Observe(domain, 0x9, 0);
  }
  const auto spans = tracker.AllSpans();
  ASSERT_EQ(spans.size(), 6u);
  EXPECT_TRUE(std::is_sorted(spans.begin(), spans.end()));
  EXPECT_EQ(spans.front().first, 1u);
  EXPECT_EQ(spans.back().first, 11u);
}

// Property sweep: for any rotation period P, measured span == P (except a
// possibly shorter final epoch).
class SpanRotationTest : public ::testing::TestWithParam<int> {};

TEST_P(SpanRotationTest, MeasuredSpanMatchesRotationPeriod) {
  const int period = GetParam();
  SpanTracker tracker;
  for (int day = 0; day < 63; ++day) {
    tracker.Observe(42, 0x9000 + static_cast<SecretId>(day / period), day);
  }
  EXPECT_EQ(tracker.MaxSpanDays(42), std::min(period, 63));
}

INSTANTIATE_TEST_SUITE_P(Periods, SpanRotationTest,
                         ::testing::Values(1, 2, 3, 7, 14, 30, 63, 100));

}  // namespace
}  // namespace tlsharm::analysis
