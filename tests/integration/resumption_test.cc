// Session-ID and session-ticket resumption end to end, including the
// lifetime behaviours the paper measures in §4.1–§4.3.
#include <gtest/gtest.h>

#include "testutil/fixtures.h"

namespace tlsharm {
namespace {

using testutil::ClientFor;
using testutil::Connect;
using testutil::MakeTerminator;
using testutil::TestPki;

class ResumptionTest : public ::testing::Test {
 protected:
  tls::ClientConfig ResumeConfig(const tls::HandshakeResult& prev,
                                 const std::string& domain, bool use_id,
                                 bool use_ticket) {
    tls::ClientConfig config = ClientFor(pki_, domain);
    config.resume_master_secret = prev.master_secret;
    if (use_id) config.resume_session_id = prev.session_id;
    if (use_ticket) config.resume_ticket = prev.ticket;
    return config;
  }

  TestPki pki_;
  crypto::Drbg drbg_{ToBytes("resumption client")};
};

TEST_F(ResumptionTest, SessionIdResumptionWithinLifetime) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok) << first.error;

  const auto second = Connect(
      *term, ResumeConfig(first, "example.com", true, false), 60, drbg_);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.resumed);
  EXPECT_FALSE(second.resumed_via_ticket);
  EXPECT_EQ(second.session_id, first.session_id);
  EXPECT_EQ(second.master_secret, first.master_secret);
  // Fresh randoms mean fresh connection keys despite the shared master.
  EXPECT_NE(second.keys.client_write_key, first.keys.client_write_key);
}

TEST_F(ResumptionTest, SessionIdExpiresAfterLifetime) {
  server::ServerConfig config;
  config.session_cache.lifetime = 5 * kMinute;
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  const auto late = Connect(
      *term, ResumeConfig(first, "example.com", true, false),
      6 * kMinute, drbg_);
  ASSERT_TRUE(late.ok) << late.error;
  EXPECT_FALSE(late.resumed);  // full handshake fallback
  EXPECT_NE(late.session_id, first.session_id);
}

TEST_F(ResumptionTest, TicketResumptionWithinWindow) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(first.ticket_issued);

  const auto second = Connect(
      *term, ResumeConfig(first, "example.com", false, true), 60, drbg_);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.resumed);
  EXPECT_TRUE(second.resumed_via_ticket);
  EXPECT_EQ(second.master_secret, first.master_secret);
  // Default config reissues a ticket on resumption.
  EXPECT_TRUE(second.ticket_issued);
  EXPECT_NE(second.ticket, first.ticket);
}

TEST_F(ResumptionTest, TicketRejectedAfterAcceptanceWindow) {
  server::ServerConfig config;
  config.tickets.acceptance_window = 5 * kMinute;
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  const auto late = Connect(
      *term, ResumeConfig(first, "example.com", false, true),
      6 * kMinute, drbg_);
  ASSERT_TRUE(late.ok) << late.error;
  EXPECT_FALSE(late.resumed);
}

TEST_F(ResumptionTest, TicketSurvivesRestartWhenStekStatic) {
  // Static STEKs (synchronized key files) survive restarts; session caches
  // do not. This asymmetry is central to §4.3.
  server::ServerConfig config;
  config.stek.rotation = server::StekRotation::kStatic;
  config.tickets.acceptance_window = kDay;
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  term->Restart(kHour);

  const auto by_id = Connect(
      *term, ResumeConfig(first, "example.com", true, false),
      kHour + 1, drbg_);
  ASSERT_TRUE(by_id.ok);
  EXPECT_FALSE(by_id.resumed);  // cache flushed on restart

  const auto by_ticket = Connect(
      *term, ResumeConfig(first, "example.com", false, true),
      kHour + 2, drbg_);
  ASSERT_TRUE(by_ticket.ok) << by_ticket.error;
  EXPECT_TRUE(by_ticket.resumed);  // STEK survived
}

TEST_F(ResumptionTest, TicketDiesOnRestartWhenStekPerProcess) {
  server::ServerConfig config;
  config.stek.rotation = server::StekRotation::kPerProcess;
  config.tickets.acceptance_window = kDay;
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  term->Restart(kHour);
  const auto by_ticket = Connect(
      *term, ResumeConfig(first, "example.com", false, true),
      kHour + 1, drbg_);
  ASSERT_TRUE(by_ticket.ok) << by_ticket.error;
  EXPECT_FALSE(by_ticket.resumed);
}

TEST_F(ResumptionTest, IntervalRotationWithOverlapHonoursOldTickets) {
  // Google-style: roll every 14h, accept previous key for another 14h.
  server::ServerConfig config;
  config.stek.rotation = server::StekRotation::kInterval;
  config.stek.rotation_interval = 14 * kHour;
  config.stek.previous_key_acceptance = 14 * kHour;
  config.tickets.acceptance_window = 28 * kHour;
  auto term = MakeTerminator(pki_, {"google.test"}, config);
  const auto first =
      Connect(*term, ClientFor(pki_, "google.test"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  // 20h later: issuing key has rotated, but the old key is still accepted.
  const auto mid = Connect(
      *term, ResumeConfig(first, "google.test", false, true),
      20 * kHour, drbg_);
  ASSERT_TRUE(mid.ok) << mid.error;
  EXPECT_TRUE(mid.resumed);

  // 30h later: past the acceptance overlap; resumption fails.
  const auto late = Connect(
      *term, ResumeConfig(first, "google.test", false, true),
      30 * kHour, drbg_);
  ASSERT_TRUE(late.ok) << late.error;
  EXPECT_FALSE(late.resumed);
}

TEST_F(ResumptionTest, NginxStyleIdWithoutCacheNeverResumes) {
  server::ServerConfig config;
  config.session_cache.enabled = false;
  config.session_cache.issue_id_without_cache = true;
  auto term = MakeTerminator(pki_, {"nginx.test"}, config);
  const auto first =
      Connect(*term, ClientFor(pki_, "nginx.test"), 0, drbg_);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.session_id.empty());  // ID issued...

  const auto second = Connect(
      *term, ResumeConfig(first, "nginx.test", true, false), 1, drbg_);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(second.resumed);  // ...but never honoured
}

TEST_F(ResumptionTest, ForgedTicketRejected) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);
  tls::ClientConfig config = ClientFor(pki_, "example.com");
  config.resume_master_secret = first.master_secret;
  config.resume_ticket = first.ticket;
  config.resume_ticket[20] ^= 0x01;  // corrupt inside the sealed body
  const auto second = Connect(*term, config, 1, drbg_);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_FALSE(second.resumed);  // falls back to a full handshake
}

TEST_F(ResumptionTest, TicketFromAnotherServerRejected) {
  auto term_a = MakeTerminator(pki_, {"a.com"}, server::ServerConfig{}, 1);
  auto term_b = MakeTerminator(pki_, {"b.com"}, server::ServerConfig{}, 2);
  const auto first = Connect(*term_a, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  tls::ClientConfig config = ClientFor(pki_, "b.com");
  config.resume_master_secret = first.master_secret;
  config.resume_ticket = first.ticket;
  const auto cross = Connect(*term_b, config, 1, drbg_);
  ASSERT_TRUE(cross.ok) << cross.error;
  EXPECT_FALSE(cross.resumed);
}

TEST_F(ResumptionTest, ResumedSessionCarriesOriginalSuite) {
  server::ServerConfig config;
  config.suite_preference = {tls::CipherSuite::kDheWithAes128CbcSha256,
                             tls::CipherSuite::kEcdheWithAes128CbcSha256};
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.suite, tls::CipherSuite::kDheWithAes128CbcSha256);

  const auto second = Connect(
      *term, ResumeConfig(first, "example.com", true, false), 10, drbg_);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.suite, tls::CipherSuite::kDheWithAes128CbcSha256);
}

TEST_F(ResumptionTest, ApplicationDataWorksOnResumedSession) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  const auto first =
      Connect(*term, ClientFor(pki_, "example.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  auto conn = term->NewConnection(30);
  tls::TlsClient client(ResumeConfig(first, "example.com", false, true));
  const auto hs = client.Handshake(*conn, 30, drbg_);
  ASSERT_TRUE(hs.ok) << hs.error;
  ASSERT_TRUE(hs.resumed);
  tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
  const auto response = tls::TlsClient::Roundtrip(
      *conn, hs, channel, ToBytes("GET /"), drbg_);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->empty());
}

}  // namespace
}  // namespace tlsharm
