// End-to-end client <-> terminator handshakes across every cipher suite and
// key-exchange group.
#include <gtest/gtest.h>

#include "testutil/fixtures.h"

namespace tlsharm {
namespace {

using testutil::ClientFor;
using testutil::Connect;
using testutil::MakeTerminator;
using testutil::TestPki;

class HandshakeTest : public ::testing::Test {
 protected:
  TestPki pki_;
  crypto::Drbg client_drbg_{ToBytes("client entropy")};
};

TEST_F(HandshakeTest, EcdheFullHandshake) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  const auto result =
      Connect(*term, ClientFor(pki_, "example.com"), 100, client_drbg_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.suite, tls::CipherSuite::kEcdheWithAes128CbcSha256);
  EXPECT_FALSE(result.resumed);
  EXPECT_TRUE(result.chain_trusted);
  EXPECT_FALSE(result.server_kex_public.empty());
  EXPECT_EQ(result.master_secret.size(), tls::kMasterSecretSize);
  EXPECT_TRUE(result.keys.Valid());
  EXPECT_FALSE(result.session_id.empty());
  EXPECT_TRUE(result.ticket_issued);
}

TEST_F(HandshakeTest, DheFullHandshake) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  tls::ClientConfig config = ClientFor(pki_, "example.com");
  config.offered_suites = {tls::CipherSuite::kDheWithAes128CbcSha256};
  const auto result = Connect(*term, config, 100, client_drbg_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.suite, tls::CipherSuite::kDheWithAes128CbcSha256);
  EXPECT_EQ(result.kex_group,
            static_cast<std::uint16_t>(crypto::NamedGroup::kFfdheSim61));
}

TEST_F(HandshakeTest, StaticSuiteHandshake) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  tls::ClientConfig config = ClientFor(pki_, "example.com");
  config.offered_suites = {tls::CipherSuite::kStaticWithAes128CbcSha256};
  const auto result = Connect(*term, config, 100, client_drbg_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.suite, tls::CipherSuite::kStaticWithAes128CbcSha256);
  EXPECT_TRUE(result.server_kex_public.empty());  // no ServerKeyExchange
}

TEST_F(HandshakeTest, FullStrengthGroups) {
  server::ServerConfig config;
  config.ecdhe_group = crypto::NamedGroup::kX25519;
  config.dhe_group = crypto::NamedGroup::kFfdheSim256;
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  for (tls::CipherSuite suite :
       {tls::CipherSuite::kEcdheWithAes128CbcSha256,
        tls::CipherSuite::kDheWithAes128CbcSha256}) {
    tls::ClientConfig client_config = ClientFor(pki_, "example.com");
    client_config.offered_suites = {suite};
    const auto result = Connect(*term, client_config, 100, client_drbg_);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.suite, suite);
  }
}

TEST_F(HandshakeTest, ServerPreferenceWins) {
  server::ServerConfig config;
  config.suite_preference = {tls::CipherSuite::kDheWithAes128CbcSha256,
                             tls::CipherSuite::kEcdheWithAes128CbcSha256};
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto result =
      Connect(*term, ClientFor(pki_, "example.com"), 100, client_drbg_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.suite, tls::CipherSuite::kDheWithAes128CbcSha256);
}

TEST_F(HandshakeTest, NoCommonSuiteFails) {
  server::ServerConfig config;
  config.suite_preference = {tls::CipherSuite::kDheWithAes128CbcSha256};
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  tls::ClientConfig client_config = ClientFor(pki_, "example.com");
  client_config.offered_suites = {tls::CipherSuite::kEcdheWithAes128CbcSha256};
  const auto result = Connect(*term, client_config, 100, client_drbg_);
  EXPECT_FALSE(result.ok);
}

TEST_F(HandshakeTest, UntrustedChainDetected) {
  // A terminator with its own private PKI: handshake succeeds but the chain
  // is flagged untrusted (the scanner must see those sites too).
  TestPki rogue_pki;
  rogue_pki.store = pki::RootStore();  // empty store view irrelevant here
  auto term = MakeTerminator(rogue_pki, {"selfsigned.net"},
                             server::ServerConfig{});
  const auto result =
      Connect(*term, ClientFor(pki_, "selfsigned.net"), 100, client_drbg_);
  // Note: rogue root differs from pki_'s store (different drbg stream)...
  // TestPki is deterministic, so both PKIs are identical; instead validate
  // against an empty store.
  tls::ClientConfig config;
  config.server_name = "selfsigned.net";
  pki::RootStore empty_store;
  config.root_store = &empty_store;
  const auto result2 = Connect(*term, config, 100, client_drbg_);
  ASSERT_TRUE(result2.ok) << result2.error;
  EXPECT_FALSE(result2.chain_trusted);
  EXPECT_EQ(result2.chain_status, pki::VerifyStatus::kUntrustedRoot);
  (void)result;
}

TEST_F(HandshakeTest, RequireTrustedAbortsOnUntrusted) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  tls::ClientConfig config;
  config.server_name = "example.com";
  pki::RootStore empty_store;
  config.root_store = &empty_store;
  config.require_trusted = true;
  const auto result = Connect(*term, config, 100, client_drbg_);
  EXPECT_FALSE(result.ok);
}

TEST_F(HandshakeTest, SniSelectsCredential) {
  server::ServerConfig config;
  auto term = std::make_unique<server::SslTerminator>("multi", config, 7);
  server::Credential cred_a = server::MakeCredential(
      pki_.intermediate, {"alpha.com"}, pki::SignatureScheme::kSchnorrSim61,
      0, 365 * kDay, pki_.intermediate_chain, pki_.drbg);
  server::Credential cred_b = server::MakeCredential(
      pki_.intermediate, {"beta.com"}, pki::SignatureScheme::kSchnorrSim61, 0,
      365 * kDay, pki_.intermediate_chain, pki_.drbg);
  term->MapDomain("alpha.com", term->AddCredential(std::move(cred_a)));
  term->MapDomain("beta.com", term->AddCredential(std::move(cred_b)));

  const auto result_a =
      Connect(*term, ClientFor(pki_, "alpha.com"), 100, client_drbg_);
  ASSERT_TRUE(result_a.ok) << result_a.error;
  EXPECT_EQ(result_a.chain.front().data.subject_cn, "alpha.com");
  EXPECT_TRUE(result_a.chain_trusted);

  const auto result_b =
      Connect(*term, ClientFor(pki_, "beta.com"), 100, client_drbg_);
  ASSERT_TRUE(result_b.ok) << result_b.error;
  EXPECT_EQ(result_b.chain.front().data.subject_cn, "beta.com");
  EXPECT_TRUE(result_b.chain_trusted);
}

TEST_F(HandshakeTest, ApplicationDataRoundTrip) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  term->SetResponseBody("HTTP/1.1 200 OK\r\n\r\nwelcome to example.com");
  auto conn = term->NewConnection(100);
  tls::TlsClient client(ClientFor(pki_, "example.com"));
  const auto hs = client.Handshake(*conn, 100, client_drbg_);
  ASSERT_TRUE(hs.ok) << hs.error;
  tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
  const auto response = tls::TlsClient::Roundtrip(
      *conn, hs, channel, ToBytes("GET / HTTP/1.1\r\n\r\n"), client_drbg_);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(ToString(*response), "HTTP/1.1 200 OK\r\n\r\nwelcome to example.com");
}

TEST_F(HandshakeTest, GarbageFlightAborts) {
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  auto conn = term->NewConnection(100);
  const Bytes garbage = ToBytes("not a tls flight at all");
  const Bytes response = conn->OnClientFlight(garbage);
  EXPECT_TRUE(response.empty());
  EXPECT_TRUE(conn->Failed());
}

TEST_F(HandshakeTest, EcdheServerValueFreshByDefault) {
  // Post-CVE-2016-0701 behaviour: no reuse unless configured.
  auto term = MakeTerminator(pki_, {"example.com"}, server::ServerConfig{});
  const auto r1 =
      Connect(*term, ClientFor(pki_, "example.com"), 100, client_drbg_);
  const auto r2 =
      Connect(*term, ClientFor(pki_, "example.com"), 101, client_drbg_);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_NE(r1.server_kex_public, r2.server_kex_public);
}

TEST_F(HandshakeTest, EcdheServerValueReusedWhenConfigured) {
  server::ServerConfig config;
  config.ecdhe_reuse = {.reuse = true, .ttl = 0};
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto r1 =
      Connect(*term, ClientFor(pki_, "example.com"), 100, client_drbg_);
  const auto r2 =
      Connect(*term, ClientFor(pki_, "example.com"), 5000, client_drbg_);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.server_kex_public, r2.server_kex_public);
  // Distinct sessions still derive distinct keys (client randoms differ).
  EXPECT_NE(r1.master_secret, r2.master_secret);
}

TEST_F(HandshakeTest, KexReuseTtlExpires) {
  server::ServerConfig config;
  config.ecdhe_reuse = {.reuse = true, .ttl = kHour};
  auto term = MakeTerminator(pki_, {"example.com"}, config);
  const auto r1 =
      Connect(*term, ClientFor(pki_, "example.com"), 0, client_drbg_);
  const auto r2 = Connect(*term, ClientFor(pki_, "example.com"),
                          30 * kMinute, client_drbg_);
  const auto r3 = Connect(*term, ClientFor(pki_, "example.com"),
                          2 * kHour, client_drbg_);
  ASSERT_TRUE(r1.ok && r2.ok && r3.ok);
  EXPECT_EQ(r1.server_kex_public, r2.server_kex_public);
  EXPECT_NE(r1.server_kex_public, r3.server_kex_public);
}

}  // namespace
}  // namespace tlsharm
