// Subprocess body for the crash-recovery ladder (crash_recovery_test.cc):
// runs one deterministic scan campaign in a directory, optionally resuming,
// and prints a parseable summary. The test forks this binary with
// TLSHARM_CRASH_AFTER=<n> to kill it at the n-th durability barrier, then
// reruns it with --resume and compares the campaign directory byte for
// byte against a crash-free golden run.
//
// Usage: crash_campaign_runner <dir> <days> <population> <seed> <threads>
//                              <resume 0|1>
// Exit codes: 0 success, 2 usage/campaign error (message on stderr);
// crash injection terminates with _exit(137) before any output.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/campaign.h"
#include "simnet/internet.h"

using namespace tlsharm;

int main(int argc, char** argv) {
  if (argc != 7) {
    std::fprintf(stderr,
                 "usage: %s <dir> <days> <population> <seed> <threads> "
                 "<resume 0|1>\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  const int days = std::atoi(argv[2]);
  const int population = std::atoi(argv[3]);
  const std::uint64_t seed = std::strtoull(argv[4], nullptr, 10);
  const int threads = std::atoi(argv[5]);
  const bool resume = std::atoi(argv[6]) != 0;
  if (days <= 0 || population <= 0 || threads <= 0) {
    std::fprintf(stderr, "bad arguments\n");
    return 2;
  }

  // A faulty world exercises retries, the requeue pass, and the loss
  // ledger — the state the resume path must restore exactly.
  constexpr std::uint64_t kWorldSeed = 424242;
  simnet::Internet net(simnet::PaperPopulationSpec(population), kWorldSeed);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));

  campaign::CampaignSpec spec;
  spec.dir = dir;
  spec.days = days;
  spec.seed = seed;
  spec.threads = threads;
  spec.resume = resume;
  spec.robustness.retry.max_attempts = 3;
  spec.world_digest = kWorldSeed ^ (static_cast<std::uint64_t>(population)
                                    << 20);

  campaign::CampaignResult result;
  std::string error;
  if (!campaign::RunCampaign(net, spec, &result, &error)) {
    std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
    return 2;
  }
  std::size_t lost = 0;
  for (const auto& day : result.scan.loss) lost += day.lost;
  std::printf("barriers=%" PRIu64 " first_day=%d replayed=%d store_tail=%"
              PRIu64 " tmp=%" PRIu64 " stale_seg=%" PRIu64 " stale_ckpt=%"
              PRIu64 " stale_state=%" PRIu64 " core=%zu lost=%zu\n",
              result.barriers_passed, result.first_scanned_day,
              result.recovery.days_replayed,
              result.recovery.store_tail_truncated,
              result.recovery.tmp_files_removed,
              result.recovery.stale_segments_removed,
              result.recovery.stale_checkpoints_removed,
              result.recovery.stale_states_removed,
              result.scan.core_domains.size(), lost);
  return 0;
}
