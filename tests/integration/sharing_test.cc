// Cross-domain secret sharing (§5): shared session caches, shared STEKs and
// shared (EC)DHE values across terminators and domains.
#include <gtest/gtest.h>

#include "testutil/fixtures.h"

namespace tlsharm {
namespace {

using testutil::ClientFor;
using testutil::Connect;
using testutil::MakeTerminator;
using testutil::TestPki;

class SharingTest : public ::testing::Test {
 protected:
  TestPki pki_;
  crypto::Drbg drbg_{ToBytes("sharing client")};
};

TEST_F(SharingTest, SameTerminatorSharesSessionCacheAcrossDomains) {
  // Two domains on one terminator (separate certs): a session from a.com
  // resumes on b.com — the §5.1 cross-domain probe.
  server::ServerConfig config;
  auto term = std::make_unique<server::SslTerminator>("shared", config, 3);
  for (const std::string domain : {"a.com", "b.com"}) {
    server::Credential cred = server::MakeCredential(
        pki_.intermediate, {domain}, pki::SignatureScheme::kSchnorrSim61, 0,
        365 * kDay, pki_.intermediate_chain, pki_.drbg);
    term->MapDomain(domain, term->AddCredential(std::move(cred)));
  }
  const auto on_a = Connect(*term, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(on_a.ok);

  tls::ClientConfig cross = ClientFor(pki_, "b.com");
  cross.resume_session_id = on_a.session_id;
  cross.resume_master_secret = on_a.master_secret;
  const auto on_b = Connect(*term, cross, 10, drbg_);
  ASSERT_TRUE(on_b.ok) << on_b.error;
  EXPECT_TRUE(on_b.resumed);
  EXPECT_FALSE(on_b.resumed_via_ticket);
}

TEST_F(SharingTest, SharedCacheAcrossTerminators) {
  auto term_a = MakeTerminator(pki_, {"a.com"}, server::ServerConfig{}, 1);
  auto term_b = MakeTerminator(pki_, {"b.com"}, server::ServerConfig{}, 2);
  term_b->SetSessionCache(term_a->SharedCache());

  const auto on_a = Connect(*term_a, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(on_a.ok);

  tls::ClientConfig cross = ClientFor(pki_, "b.com");
  cross.resume_session_id = on_a.session_id;
  cross.resume_master_secret = on_a.master_secret;
  const auto on_b = Connect(*term_b, cross, 10, drbg_);
  ASSERT_TRUE(on_b.ok) << on_b.error;
  EXPECT_TRUE(on_b.resumed);
}

TEST_F(SharingTest, UnsharedCachesDoNotResume) {
  auto term_a = MakeTerminator(pki_, {"a.com"}, server::ServerConfig{}, 1);
  auto term_b = MakeTerminator(pki_, {"b.com"}, server::ServerConfig{}, 2);
  const auto on_a = Connect(*term_a, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(on_a.ok);
  tls::ClientConfig cross = ClientFor(pki_, "b.com");
  cross.resume_session_id = on_a.session_id;
  cross.resume_master_secret = on_a.master_secret;
  const auto on_b = Connect(*term_b, cross, 10, drbg_);
  ASSERT_TRUE(on_b.ok);
  EXPECT_FALSE(on_b.resumed);
}

TEST_F(SharingTest, SharedStekAcrossTerminatorsHonoursForeignTickets) {
  // The synchronized-key-file deployment: one StekManager behind many
  // terminators in different "data centers".
  auto term_a = MakeTerminator(pki_, {"a.com"}, server::ServerConfig{}, 1);
  auto term_b = MakeTerminator(pki_, {"b.com"}, server::ServerConfig{}, 2);
  term_b->SetStekManager(term_a->SharedSteks());

  const auto on_a = Connect(*term_a, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(on_a.ok);
  ASSERT_TRUE(on_a.ticket_issued);

  tls::ClientConfig cross = ClientFor(pki_, "b.com");
  cross.resume_ticket = on_a.ticket;
  cross.resume_master_secret = on_a.master_secret;
  const auto on_b = Connect(*term_b, cross, 10, drbg_);
  ASSERT_TRUE(on_b.ok) << on_b.error;
  EXPECT_TRUE(on_b.resumed);
  EXPECT_TRUE(on_b.resumed_via_ticket);
}

TEST_F(SharingTest, SharedStekProducesSameStekId) {
  auto term_a = MakeTerminator(pki_, {"a.com"}, server::ServerConfig{}, 1);
  auto term_b = MakeTerminator(pki_, {"b.com"}, server::ServerConfig{}, 2);
  term_b->SetStekManager(term_a->SharedSteks());

  const auto on_a = Connect(*term_a, ClientFor(pki_, "a.com"), 0, drbg_);
  const auto on_b = Connect(*term_b, ClientFor(pki_, "b.com"), 0, drbg_);
  ASSERT_TRUE(on_a.ok && on_b.ok);
  const auto id_a = tls::ExtractStekIdAuto(on_a.ticket);
  const auto id_b = tls::ExtractStekIdAuto(on_b.ticket);
  ASSERT_TRUE(id_a && id_b);
  EXPECT_EQ(*id_a, *id_b);  // externally observable sharing
}

TEST_F(SharingTest, SharedKexCacheServesOneValueToAllDomains) {
  server::ServerConfig config;
  config.ecdhe_reuse = {.reuse = true, .ttl = 0};
  auto term_a = MakeTerminator(pki_, {"a.com"}, config, 1);
  auto term_b = MakeTerminator(pki_, {"b.com"}, config, 2);
  term_b->SetKexCache(term_a->SharedKex());

  const auto on_a = Connect(*term_a, ClientFor(pki_, "a.com"), 0, drbg_);
  const auto on_b = Connect(*term_b, ClientFor(pki_, "b.com"), 10, drbg_);
  ASSERT_TRUE(on_a.ok && on_b.ok);
  EXPECT_EQ(on_a.server_kex_public, on_b.server_kex_public);
}

TEST_F(SharingTest, DistinctStekManagersProduceDistinctIds) {
  auto term_a = MakeTerminator(pki_, {"a.com"}, server::ServerConfig{}, 1);
  auto term_b = MakeTerminator(pki_, {"b.com"}, server::ServerConfig{}, 2);
  const auto on_a = Connect(*term_a, ClientFor(pki_, "a.com"), 0, drbg_);
  const auto on_b = Connect(*term_b, ClientFor(pki_, "b.com"), 0, drbg_);
  ASSERT_TRUE(on_a.ok && on_b.ok);
  EXPECT_NE(*tls::ExtractStekIdAuto(on_a.ticket),
            *tls::ExtractStekIdAuto(on_b.ticket));
}

}  // namespace
}  // namespace tlsharm
