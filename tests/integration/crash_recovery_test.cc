// The crash-injection ladder: kill a scan campaign at every class of
// durability barrier, resume it, and require the campaign directory to be
// BYTE-IDENTICAL to a crash-free golden run — at several thread counts,
// and through a double crash. This is the end-to-end proof of the
// journal's claim: a fail-stop crash at any instant loses at most the
// in-flight day, and a resume reconstructs exactly the run that would
// have been.
//
// The ladder drives crash_campaign_runner (same build directory) via
// TLSHARM_CRASH_AFTER=<n>, which _exit(137)s the process at the n-th
// durability barrier (util/durable.h). All barriers run on the engine's
// merge thread, so barrier n is the same program state at any thread
// count. Barrier layout per study day (engine + campaign commit order):
//
//   +1..3   journal day-started       (DurableWriteFile: fsync/rename/dir)
//   +4      text store day block      (fsync barrier in EndDay)
//   +5..7   warehouse segment write
//   +8..10  warehouse MANIFEST update
//   +11..13 fold checkpoint write
//   +14..16 campaign state write
//   +17..19 metrics.json write
//   +20..22 journal day-committed
//
// preceded by 3 barriers for the initial journal write and followed by 3
// for the final manifest rewrite in Finish().
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;

constexpr int kDays = 3;
constexpr int kPopulation = 300;
constexpr std::uint64_t kSeed = 7;

struct RunOutcome {
  int exit_code = -1;
  std::string output;
};

std::string RunnerPath() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(n, 0);
  buf[n] = '\0';
  return fs::path(buf).parent_path() / "crash_campaign_runner";
}

// Runs the campaign runner; `crash_after` > 0 arms the injection knob.
RunOutcome RunCampaign(const std::string& dir, int threads, bool resume,
                       long crash_after) {
  std::string cmd;
  if (crash_after > 0) {
    cmd += "TLSHARM_CRASH_AFTER=" + std::to_string(crash_after) + " ";
  }
  cmd += RunnerPath() + " " + dir + " " + std::to_string(kDays) + " " +
         std::to_string(kPopulation) + " " + std::to_string(kSeed) + " " +
         std::to_string(threads) + " " + (resume ? "1" : "0") + " 2>&1";
  RunOutcome outcome;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return outcome;
  char chunk[512];
  while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) {
    outcome.output += chunk;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    outcome.exit_code = 128 + WTERMSIG(status);
  }
  return outcome;
}

std::uint64_t ParseField(const std::string& output, const std::string& key) {
  const std::size_t at = output.find(key + "=");
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << output;
  if (at == std::string::npos) return 0;
  return std::strtoull(output.c_str() + at + key.size() + 1, nullptr, 10);
}

// Every regular file under `dir`, relative path -> exact bytes.
std::map<std::string, std::string> SnapshotTree(const std::string& dir) {
  std::map<std::string, std::string> tree;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    tree[fs::relative(entry.path(), dir).string()] = bytes.str();
  }
  return tree;
}

void ExpectTreesEqual(const std::map<std::string, std::string>& golden,
                      const std::map<std::string, std::string>& resumed,
                      const std::string& label) {
  for (const auto& [name, bytes] : golden) {
    const auto it = resumed.find(name);
    ASSERT_NE(it, resumed.end()) << label << ": missing file " << name;
    EXPECT_EQ(it->second, bytes) << label << ": " << name << " differs";
  }
  for (const auto& [name, bytes] : resumed) {
    EXPECT_TRUE(golden.count(name)) << label << ": extra file " << name;
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("tlsharm-crash-" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);

    const std::string golden_dir = Dir("golden");
    const RunOutcome golden = RunCampaign(golden_dir, 1, false, 0);
    ASSERT_EQ(golden.exit_code, 0) << golden.output;
    golden_barriers_ = ParseField(golden.output, "barriers");
    ASSERT_GT(golden_barriers_, 20u);
    golden_tree_ = SnapshotTree(golden_dir);
    ASSERT_TRUE(golden_tree_.count("RUNLOG"));
    ASSERT_TRUE(golden_tree_.count("store.txt"));
    ASSERT_TRUE(golden_tree_.count("warehouse/MANIFEST"));
  }

  void TearDown() override { fs::remove_all(root_); }

  std::string Dir(const std::string& name) { return root_ / name; }

  // Crash at barrier `n` (any thread count), resume, compare to golden.
  void CrashResumeCompare(const std::string& name, long n, int crash_threads,
                          int resume_threads) {
    const std::string dir = Dir(name);
    const RunOutcome crashed = RunCampaign(dir, crash_threads, false, n);
    ASSERT_EQ(crashed.exit_code, 137)
        << name << " at barrier " << n << ": " << crashed.output;
    const RunOutcome resumed = RunCampaign(dir, resume_threads, true, 0);
    ASSERT_EQ(resumed.exit_code, 0)
        << name << " resume after barrier " << n << ": " << resumed.output;
    ExpectTreesEqual(golden_tree_, SnapshotTree(dir),
                     name + "@" + std::to_string(n));
  }

  fs::path root_;
  std::uint64_t golden_barriers_ = 0;
  std::map<std::string, std::string> golden_tree_;
};

TEST_F(CrashRecoveryTest, LadderCoversEveryCommitClassByteIdentically) {
  // One kill inside each barrier class of a mid-study day (see the layout
  // table above), plus the first barrier (initial journal write), a
  // mid-study point, and the very last barrier (final manifest rewrite).
  const std::uint64_t per_day = (golden_barriers_ - 6) / kDays;
  ASSERT_EQ(golden_barriers_, 6 + per_day * kDays)
      << "barrier layout changed; update the ladder offsets";
  const std::uint64_t day1 = 3 + per_day;  // base of study day 1
  std::set<long> ladder = {1, static_cast<long>(golden_barriers_ / 2),
                           static_cast<long>(golden_barriers_)};
  for (const std::uint64_t offset : {1u, 4u, 5u, 8u, 11u, 14u, 17u, 20u}) {
    ASSERT_LT(offset, per_day);
    ladder.insert(static_cast<long>(day1 + offset));
  }
  ASSERT_GE(ladder.size(), 8u);
  int i = 0;
  for (const long n : ladder) {
    CrashResumeCompare("ladder" + std::to_string(i++), n, 1, 1);
  }
}

TEST_F(CrashRecoveryTest, ResumeIsByteIdenticalAcrossThreadCounts) {
  // Crash an 8-thread run, resume with 2 threads: still byte-identical to
  // the single-threaded golden run.
  const long mid = static_cast<long>(golden_barriers_ / 2);
  CrashResumeCompare("threads", mid, 8, 2);
}

TEST_F(CrashRecoveryTest, SurvivesADoubleCrash) {
  const std::string dir = Dir("double");
  const long first = static_cast<long>(golden_barriers_ / 2);
  const RunOutcome crashed = RunCampaign(dir, 2, false, first);
  ASSERT_EQ(crashed.exit_code, 137) << crashed.output;
  // The second crash hits during recovery/rescan of the in-flight day.
  const RunOutcome crashed_again = RunCampaign(dir, 2, true, 5);
  ASSERT_EQ(crashed_again.exit_code, 137) << crashed_again.output;
  const RunOutcome resumed = RunCampaign(dir, 2, true, 0);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  ExpectTreesEqual(golden_tree_, SnapshotTree(dir), "double-crash");
}

TEST_F(CrashRecoveryTest, ResumingACompletedCampaignChangesNothing) {
  const std::string dir = Dir("complete");
  const RunOutcome full = RunCampaign(dir, 2, false, 0);
  ASSERT_EQ(full.exit_code, 0) << full.output;
  const RunOutcome again = RunCampaign(dir, 2, true, 0);
  ASSERT_EQ(again.exit_code, 0) << again.output;
  EXPECT_EQ(ParseField(again.output, "replayed"),
            static_cast<std::uint64_t>(kDays));
  ExpectTreesEqual(golden_tree_, SnapshotTree(dir), "re-resume");
}

TEST_F(CrashRecoveryTest, ResumeRepairsCrashDebrisAndReportsIt) {
  // Kill inside the day-1 warehouse MANIFEST update: the day's store block
  // and segment are durable but the day never committed, so resume must
  // truncate the store tail and drop the partial segment.
  const std::uint64_t per_day = (golden_barriers_ - 6) / kDays;
  const long n = static_cast<long>(3 + per_day + 9);
  const std::string dir = Dir("debris");
  const RunOutcome crashed = RunCampaign(dir, 1, false, n);
  ASSERT_EQ(crashed.exit_code, 137) << crashed.output;
  const RunOutcome resumed = RunCampaign(dir, 1, true, 0);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_EQ(ParseField(resumed.output, "replayed"), 1u);   // day 0 restored
  EXPECT_GT(ParseField(resumed.output, "store_tail"), 0u); // day 1 block cut
  EXPECT_GT(ParseField(resumed.output, "stale_seg"), 0u);  // day 1 segment
  ExpectTreesEqual(golden_tree_, SnapshotTree(dir), "debris");
}

}  // namespace
