// Lazy-vs-materialized fleet equivalence — the tentpole contract of the
// memory-bounded scan engine: a lazily derived, budget-evicted fleet must
// produce BYTE-identical study artifacts to the fully materialized fleet,
// at any thread count and any main-pass batch size, with fault injection
// exercising the outage/requeue paths.
//
// Artifacts compared against the materialized 1-thread baseline:
//   * the canonical text observation stream (every byte),
//   * the columnar warehouse (manifest CRC + row/byte counts — the
//     manifest indexes every segment's size and CRC-32),
//   * the adversary capture tape (same manifest-level identity),
//   * the merged metrics snapshot JSON,
//   * the DailyScanResult aggregates and loss ledger.
#include "scanner/scan_engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "warehouse/capture.h"
#include "warehouse/warehouse.h"

namespace tlsharm::scanner {
namespace {

constexpr std::size_t kPopulation = 2000;
constexpr int kDays = 3;
constexpr std::uint64_t kWorldSeed = 20160302;
constexpr std::uint64_t kScanSeed = 777;

struct StudyArtifacts {
  std::string observations;
  std::uint32_t warehouse_manifest_crc = 0;
  std::uint64_t warehouse_rows = 0;
  std::uint64_t warehouse_bytes = 0;
  std::uint32_t capture_manifest_crc = 0;
  std::uint64_t capture_rows = 0;
  std::uint64_t capture_bytes = 0;
  std::string metrics_json;
  DailyScanResult result;
};

// One fully instrumented study run. `budget_mb` only applies to kLazy; a
// deliberately tiny budget forces constant eviction so the test proves
// rebuild-after-evict purity, not just build-once purity.
StudyArtifacts RunStudy(simnet::FleetMode mode, int threads,
                        std::size_t batch_size, const std::string& tag) {
  simnet::PopulationSpec spec = simnet::PaperPopulationSpec(kPopulation);
  spec.fleet_mode = mode;
  spec.fleet_budget_mb = 8;
  simnet::Internet net(spec, kWorldSeed);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));

  const std::string base =
      ::testing::TempDir() + "fleet_equivalence_" + tag;
  const std::string warehouse_dir = base + "_wh";
  const std::string capture_dir = base + "_cap";
  std::filesystem::remove_all(warehouse_dir);
  std::filesystem::remove_all(capture_dir);

  std::string error;
  auto warehouse = warehouse::WarehouseWriter::Create(warehouse_dir, &error);
  EXPECT_NE(warehouse, nullptr) << error;
  auto capture = warehouse::CaptureTapeWriter::Create(capture_dir, &error);
  EXPECT_NE(capture, nullptr) << error;

  std::ostringstream stream;
  ObservationWriter sink(stream);
  obs::MetricsRegistry metrics;

  ScanEngineOptions options;
  options.threads = threads;
  options.batch_size = batch_size;
  options.robustness.retry.max_attempts = 2;
  options.sink = &sink;
  options.store = warehouse.get();
  options.capture = capture.get();
  options.metrics = &metrics;

  StudyArtifacts out;
  out.result = RunShardedDailyScans(net, kDays, kScanSeed, options);
  out.observations = stream.str();
  EXPECT_TRUE(warehouse->ok()) << warehouse->error();
  EXPECT_TRUE(capture->ok()) << capture->error();
  out.warehouse_manifest_crc = warehouse->ManifestCrc();
  out.warehouse_rows = warehouse->RowsWritten();
  out.warehouse_bytes = warehouse->BytesWritten();
  out.capture_manifest_crc = capture->ManifestCrc();
  out.capture_rows = capture->RowsWritten();
  out.capture_bytes = capture->BytesWritten();
  out.metrics_json = metrics.SnapshotJson();

  std::filesystem::remove_all(warehouse_dir);
  std::filesystem::remove_all(capture_dir);
  return out;
}

void ExpectSameArtifacts(const StudyArtifacts& got,
                         const StudyArtifacts& want,
                         const std::string& label) {
  EXPECT_EQ(got.observations, want.observations)
      << label << ": text observation stream diverged";
  EXPECT_EQ(got.warehouse_manifest_crc, want.warehouse_manifest_crc)
      << label << ": warehouse manifest CRC diverged";
  EXPECT_EQ(got.warehouse_rows, want.warehouse_rows) << label;
  EXPECT_EQ(got.warehouse_bytes, want.warehouse_bytes) << label;
  EXPECT_EQ(got.capture_manifest_crc, want.capture_manifest_crc)
      << label << ": capture tape manifest CRC diverged";
  EXPECT_EQ(got.capture_rows, want.capture_rows) << label;
  EXPECT_EQ(got.capture_bytes, want.capture_bytes) << label;
  EXPECT_EQ(got.metrics_json, want.metrics_json)
      << label << ": metrics snapshot diverged";

  const DailyScanResult& a = got.result;
  const DailyScanResult& b = want.result;
  EXPECT_EQ(a.core_domains, b.core_domains) << label;
  EXPECT_EQ(a.core_ever_ticket, b.core_ever_ticket) << label;
  EXPECT_EQ(a.core_ever_ecdhe, b.core_ever_ecdhe) << label;
  EXPECT_EQ(a.core_ever_dhe_connect, b.core_ever_dhe_connect) << label;
  EXPECT_EQ(a.core_any_mechanism, b.core_any_mechanism) << label;
  ASSERT_EQ(a.loss.size(), b.loss.size()) << label;
  for (std::size_t day = 0; day < a.loss.size(); ++day) {
    EXPECT_EQ(a.loss[day].scheduled, b.loss[day].scheduled)
        << label << " day " << day;
    EXPECT_EQ(a.loss[day].recovered, b.loss[day].recovered)
        << label << " day " << day;
    EXPECT_EQ(a.loss[day].lost, b.loss[day].lost) << label << " day " << day;
    EXPECT_EQ(a.loss[day].lost_by_class, b.loss[day].lost_by_class)
        << label << " day " << day;
  }
  for (const DomainIndex id : b.core_domains) {
    EXPECT_EQ(a.stek_spans.MaxSpanDays(id), b.stek_spans.MaxSpanDays(id));
    EXPECT_EQ(a.ecdhe_spans.MaxSpanDays(id), b.ecdhe_spans.MaxSpanDays(id));
    EXPECT_EQ(a.dhe_spans.MaxSpanDays(id), b.dhe_spans.MaxSpanDays(id));
  }
}

TEST(FleetEquivalenceTest, LazyFleetMatchesMaterializedByteForByte) {
  const StudyArtifacts baseline =
      RunStudy(simnet::FleetMode::kMaterialized, 1, 0, "mat_t1");

  // The study must actually exercise the interesting paths.
  ASSERT_FALSE(baseline.observations.empty());
  ASSERT_EQ(baseline.result.loss.size(), static_cast<std::size_t>(kDays));
  ASSERT_GT(baseline.result.loss[0].recovered + baseline.result.loss[0].lost,
            0u)
      << "fault injection produced no transport failures; the requeue "
         "path went untested";
  ASSERT_FALSE(baseline.result.core_domains.empty());
  ASSERT_GT(baseline.capture_rows, 0u);
  ASSERT_GT(baseline.warehouse_rows, 0u);

  for (const int threads : {1, 2, 8}) {
    const std::string tag = "lazy_t" + std::to_string(threads);
    ExpectSameArtifacts(
        RunStudy(simnet::FleetMode::kLazy, threads, 0, tag), baseline,
        "lazy/" + std::to_string(threads) + " threads");
  }
  // Materialized parallel too: isolates fleet-mode effects from sharding.
  ExpectSameArtifacts(
      RunStudy(simnet::FleetMode::kMaterialized, 8, 0, "mat_t8"), baseline,
      "materialized/8 threads");
}

TEST(FleetEquivalenceTest, BatchSizeNeverChangesArtifacts) {
  const StudyArtifacts baseline =
      RunStudy(simnet::FleetMode::kLazy, 2, 0, "batch_default");
  // A prime far smaller than the population: every day spans many ragged
  // batches, so flush boundaries land mid-shard everywhere.
  ExpectSameArtifacts(RunStudy(simnet::FleetMode::kLazy, 2, 97, "batch_97"),
                      baseline, "batch=97");
  ExpectSameArtifacts(RunStudy(simnet::FleetMode::kLazy, 2, 1, "batch_1"),
                      baseline, "batch=1");
}

}  // namespace
}  // namespace tlsharm::scanner
