#include "scanner/schedule.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace tlsharm::scanner {
namespace {

TEST(RandomPermutationTest, IsABijection) {
  for (const std::uint64_t n : {1ull, 2ull, 7ull, 64ull, 1000ull, 4097ull}) {
    RandomPermutation perm(n, 42);
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = perm.At(i);
      EXPECT_LT(v, n);
      EXPECT_TRUE(seen.insert(v).second) << "duplicate at n=" << n;
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(RandomPermutationTest, EverySmallSizeIsABijection) {
  // n = 0 and n = 1 used to hang the cycle walk in release builds; every
  // size in [0, 64] must construct and permute cleanly.
  for (std::uint64_t n = 0; n <= 64; ++n) {
    RandomPermutation perm(n, 20160302 + n);
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = perm.At(i);
      ASSERT_LT(v, n) << "out of range at n=" << n;
      ASSERT_TRUE(seen.insert(v).second) << "duplicate at n=" << n;
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(RandomPermutationTest, SeedChangesOrder) {
  RandomPermutation a(1000, 1), b(1000, 2);
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) same += a.At(i) == b.At(i);
  EXPECT_LT(same, 50);  // essentially independent permutations
}

TEST(RandomPermutationTest, DeterministicPerSeed) {
  RandomPermutation a(1000, 7), b(1000, 7);
  for (std::uint64_t i = 0; i < 1000; i += 13) {
    EXPECT_EQ(a.At(i), b.At(i));
  }
}

TEST(RandomPermutationTest, OrderLooksShuffled) {
  RandomPermutation perm(10000, 3);
  // Average |perm(i) - i| for a random permutation is ~n/3; a sorted one
  // is 0. Use a loose threshold.
  double total = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    total += std::abs(static_cast<double>(perm.At(i)) -
                      static_cast<double>(i));
  }
  EXPECT_GT(total / 10000, 1500);
}

TEST(BlacklistTest, ExcludesByDomainAndAs) {
  Blacklist blacklist;
  blacklist.ExcludeDomain("donotscan.mil");
  blacklist.ExcludeAs(1234);
  simnet::DomainInfo by_name;
  by_name.name = "donotscan.mil";
  by_name.as_number = 99;
  simnet::DomainInfo by_as;
  by_as.name = "fine.com";
  by_as.as_number = 1234;
  simnet::DomainInfo neither;
  neither.name = "fine.com";
  neither.as_number = 99;
  EXPECT_TRUE(blacklist.Excluded(by_name));
  EXPECT_TRUE(blacklist.Excluded(by_as));
  EXPECT_FALSE(blacklist.Excluded(neither));
  EXPECT_EQ(blacklist.RuleCount(), 2u);
}

TEST(ScanTargetTest, VisitsEveryListedDomainOnce) {
  simnet::Internet net(simnet::PaperPopulationSpec(2000), 5);
  Blacklist blacklist;
  std::set<simnet::DomainId> visited;
  ForEachScanTarget(net, 0, 99, blacklist,
                    [&](simnet::DomainId id) { visited.insert(id); });
  std::size_t expected = 0;
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    expected += net.InTopListOnDay(id, 0);
  }
  EXPECT_EQ(visited.size(), expected);
}

TEST(ScanTargetTest, BlacklistHonoured) {
  simnet::Internet net(simnet::PaperPopulationSpec(2000), 5);
  const auto google = net.FindDomain("google.com");
  ASSERT_TRUE(google.has_value());
  Blacklist blacklist;
  blacklist.ExcludeDomain("google.com");
  bool saw_google = false;
  ForEachScanTarget(net, 0, 99, blacklist, [&](simnet::DomainId id) {
    saw_google |= id == *google;
  });
  EXPECT_FALSE(saw_google);
}

TEST(ScanTargetTest, OrderDiffersAcrossDays) {
  simnet::Internet net(simnet::PaperPopulationSpec(2000), 5);
  Blacklist blacklist;
  std::vector<simnet::DomainId> day0, day1;
  ForEachScanTarget(net, 0, 99, blacklist,
                    [&](simnet::DomainId id) { day0.push_back(id); });
  ForEachScanTarget(net, 1, 99, blacklist,
                    [&](simnet::DomainId id) { day1.push_back(id); });
  ASSERT_GT(day0.size(), 100u);
  // First hundred targets should differ substantially between days.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += day0[i] == day1[i];
  EXPECT_LT(same, 20);
}

}  // namespace
}  // namespace tlsharm::scanner
