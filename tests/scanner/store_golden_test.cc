// Golden-file coverage for the observation store: a checked-in fixture
// mixing legacy nine-field lines, current ten-field lines, and malformed
// garbage must parse into exactly the checked-in canonical serialization —
// and the canonical form must be a fixpoint of parse -> re-serialize, so
// stored studies keep round-tripping as the format evolves.
//
// Also exercises ShardedObservationBuffer, the staging structure the
// parallel scan engine drains into the store in canonical shard order.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scanner/store.h"

namespace tlsharm::scanner {
namespace {

std::string ReadTestdata(const std::string& name) {
  const std::string path = std::string(TLSHARM_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(ObservationStoreGoldenTest, MixedFixtureParsesToCanonicalForm) {
  const std::string mixed = ReadTestdata("observations_mixed.txt");
  ASSERT_FALSE(mixed.empty());

  std::istringstream in(mixed);
  ObservationReader reader(in);
  std::vector<StoredObservation> parsed;
  while (auto next = reader.Next()) parsed.push_back(*next);

  // The fixture carries four deliberately malformed lines (non-numeric,
  // too few fields, too many fields, out-of-range failure class).
  EXPECT_EQ(reader.Corrupt(), 4u);
  EXPECT_EQ(parsed.size(), 7u);
  EXPECT_EQ(SerializeObservations(parsed),
            ReadTestdata("observations_canonical.txt"));
}

TEST(ObservationStoreGoldenTest, LegacyLinesDeriveFailureFromFlags) {
  const auto parsed = ParseObservations(ReadTestdata("observations_mixed.txt"));
  ASSERT_EQ(parsed.size(), 7u);
  // flags 31: full success.   flags 0: never connected.
  EXPECT_EQ(parsed[0].observation.failure, ProbeFailure::kNone);
  EXPECT_EQ(parsed[1].observation.failure, ProbeFailure::kNoHttps);
  // flags 1: connected, handshake failed -> closest class is kAlert.
  EXPECT_EQ(parsed[2].observation.failure, ProbeFailure::kAlert);
  // flags 3: handshake ok, chain untrusted.
  EXPECT_EQ(parsed[3].observation.failure, ProbeFailure::kUntrusted);
  // Ten-field lines carry their class verbatim.
  EXPECT_EQ(parsed[4].observation.failure, ProbeFailure::kTimeout);
}

TEST(ObservationStoreGoldenTest, CanonicalFormIsAFixpoint) {
  const std::string canonical = ReadTestdata("observations_canonical.txt");
  ASSERT_FALSE(canonical.empty());
  const std::string once = SerializeObservations(ParseObservations(canonical));
  EXPECT_EQ(once, canonical);
  EXPECT_EQ(SerializeObservations(ParseObservations(once)), once);
}

TEST(ShardedObservationBufferTest, FlushDrainsInShardOrder) {
  ShardedObservationBuffer buffer(3);
  ASSERT_EQ(buffer.ShardCount(), 3u);
  auto make = [](DomainIndex domain) {
    HandshakeObservation obs;
    obs.domain = domain;
    obs.connected = true;
    return obs;
  };
  // Append out of shard order — arrival order must not matter.
  buffer.Append(2, 0, make(20));
  buffer.Append(0, 0, make(1));
  buffer.Append(1, 0, make(10));
  buffer.Append(0, 0, make(2));
  buffer.Append(2, 0, make(21));
  EXPECT_EQ(buffer.Buffered(), 5u);

  std::ostringstream stream;
  ObservationWriter writer(stream);
  EXPECT_EQ(buffer.Flush(writer), 5u);
  EXPECT_EQ(buffer.Buffered(), 0u);

  const auto drained = ParseObservations(stream.str());
  ASSERT_EQ(drained.size(), 5u);
  const DomainIndex expected[] = {1, 2, 10, 20, 21};
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].observation.domain, expected[i]) << "position " << i;
  }
}

TEST(ShardedObservationBufferTest, FlushedBufferIsReusable) {
  ShardedObservationBuffer buffer(2);
  HandshakeObservation obs;
  obs.domain = 7;
  buffer.Append(1, 3, obs);

  std::ostringstream first;
  ObservationWriter first_writer(first);
  buffer.Flush(first_writer);

  buffer.Append(0, 4, obs);
  std::ostringstream second;
  ObservationWriter second_writer(second);
  EXPECT_EQ(buffer.Flush(second_writer), 1u);
  const auto drained = ParseObservations(second.str());
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].day, 4);
}

}  // namespace
}  // namespace tlsharm::scanner
