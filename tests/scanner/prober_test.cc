#include "scanner/prober.h"

#include <gtest/gtest.h>

namespace tlsharm::scanner {
namespace {

simnet::Internet& World() {
  static auto* net = new simnet::Internet(
      simnet::PaperPopulationSpec(3000), 99);
  return *net;
}

simnet::DomainId TrustedDomain() {
  simnet::Internet& net = World();
  const auto id = net.FindDomain("yahoo.com");
  EXPECT_TRUE(id.has_value());
  return *id;
}

TEST(ProberTest, ProbeRecordsObservables) {
  Prober prober(World(), 1);
  const auto result = prober.Probe(TrustedDomain(), kHour);
  const auto& obs = result.observation;
  EXPECT_TRUE(obs.connected);
  EXPECT_TRUE(obs.handshake_ok);
  EXPECT_TRUE(obs.trusted);
  EXPECT_NE(obs.kex_value, kNoSecret);
  EXPECT_TRUE(obs.ticket_issued);
  EXPECT_NE(obs.stek_id, kNoSecret);
}

TEST(ProberTest, FingerprintSecretStableAndDistinct) {
  EXPECT_EQ(FingerprintSecret(ToBytes("abc")), FingerprintSecret(ToBytes("abc")));
  EXPECT_NE(FingerprintSecret(ToBytes("abc")), FingerprintSecret(ToBytes("abd")));
  EXPECT_EQ(FingerprintSecret({}), kNoSecret);
  EXPECT_NE(FingerprintSecret(ToBytes("x")), kNoSecret);
}

TEST(ProberTest, DheOnlyProbeReportsDheOrFails) {
  Prober prober(World(), 2);
  ProbeOptions options;
  options.ciphers = CipherSelection::kDheOnly;
  std::size_t ok = 0, failed = 0;
  simnet::Internet& net = World();
  for (simnet::DomainId id = 0; id < net.DomainCount() && ok + failed < 60;
       ++id) {
    const auto& info = net.GetDomain(id);
    if (!info.https || !info.trusted_cert) continue;
    const auto result = prober.Probe(id, kHour, options);
    if (!result.observation.connected) continue;
    if (result.observation.handshake_ok) {
      EXPECT_EQ(result.observation.suite,
                tls::CipherSuite::kDheWithAes128CbcSha256);
      ++ok;
    } else {
      ++failed;  // server without DHE support
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(failed, 0u);  // the ~43% of servers without DHE exist
}

TEST(ProberTest, SelfResumptionWorks) {
  Prober prober(World(), 3);
  ProbeOptions options;
  options.want_full_result = true;
  const auto result = prober.Probe(TrustedDomain(), kHour, options);
  ASSERT_TRUE(result.session.valid);
  EXPECT_TRUE(prober.TryResume(result.session, TrustedDomain(),
                               kHour + kSecond));
  EXPECT_TRUE(prober.TryResumeTicket(result.session, TrustedDomain(),
                                     kHour + 2));
  EXPECT_TRUE(prober.TryResumeId(result.session, TrustedDomain(),
                                 kHour + 3));
}

TEST(ProberTest, ResumptionFailsOnUnrelatedDomain) {
  Prober prober(World(), 4);
  ProbeOptions options;
  options.want_full_result = true;
  const auto result = prober.Probe(TrustedDomain(), kHour, options);
  ASSERT_TRUE(result.session.valid);
  const auto other = World().FindDomain("netflix.com");
  ASSERT_TRUE(other.has_value());
  EXPECT_FALSE(prober.TryResume(result.session, *other, kHour + kSecond));
}

TEST(ProberTest, InvalidSessionNeverResumes) {
  Prober prober(World(), 5);
  StoredSession empty;
  EXPECT_FALSE(prober.TryResume(empty, TrustedDomain(), kHour));
}

TEST(ProberTest, NonHttpsDomainNotConnected) {
  simnet::Internet& net = World();
  Prober prober(net, 6);
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (net.GetDomain(id).https) continue;
    const auto result = prober.Probe(id, kHour);
    EXPECT_FALSE(result.observation.connected);
    EXPECT_FALSE(result.observation.handshake_ok);
    return;
  }
  FAIL() << "no plain-http domain";
}

}  // namespace
}  // namespace tlsharm::scanner
