#include "scanner/prober.h"

#include <gtest/gtest.h>

#include <array>

namespace tlsharm::scanner {
namespace {

simnet::Internet& World() {
  static auto* net = new simnet::Internet(
      simnet::PaperPopulationSpec(3000), 99);
  return *net;
}

simnet::DomainId TrustedDomain() {
  simnet::Internet& net = World();
  const auto id = net.FindDomain("yahoo.com");
  EXPECT_TRUE(id.has_value());
  return *id;
}

TEST(ProberTest, ProbeRecordsObservables) {
  Prober prober(World(), 1);
  const auto result = prober.Probe(TrustedDomain(), kHour);
  const auto& obs = result.observation;
  EXPECT_TRUE(obs.connected);
  EXPECT_TRUE(obs.handshake_ok);
  EXPECT_TRUE(obs.trusted);
  EXPECT_NE(obs.kex_value, kNoSecret);
  EXPECT_TRUE(obs.ticket_issued);
  EXPECT_NE(obs.stek_id, kNoSecret);
}

TEST(ProberTest, FingerprintSecretStableAndDistinct) {
  EXPECT_EQ(FingerprintSecret(ToBytes("abc")), FingerprintSecret(ToBytes("abc")));
  EXPECT_NE(FingerprintSecret(ToBytes("abc")), FingerprintSecret(ToBytes("abd")));
  EXPECT_EQ(FingerprintSecret({}), kNoSecret);
  EXPECT_NE(FingerprintSecret(ToBytes("x")), kNoSecret);
}

TEST(ProberTest, DheOnlyProbeReportsDheOrFails) {
  Prober prober(World(), 2);
  ProbeOptions options;
  options.ciphers = CipherSelection::kDheOnly;
  std::size_t ok = 0, failed = 0;
  simnet::Internet& net = World();
  for (simnet::DomainId id = 0; id < net.DomainCount() && ok + failed < 60;
       ++id) {
    const auto& info = net.GetDomain(id);
    if (!info.https || !info.trusted_cert) continue;
    const auto result = prober.Probe(id, kHour, options);
    if (!result.observation.connected) continue;
    if (result.observation.handshake_ok) {
      EXPECT_EQ(result.observation.suite,
                tls::CipherSuite::kDheWithAes128CbcSha256);
      ++ok;
    } else {
      ++failed;  // server without DHE support
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(failed, 0u);  // the ~43% of servers without DHE exist
}

TEST(ProberTest, SelfResumptionWorks) {
  Prober prober(World(), 3);
  ProbeOptions options;
  options.want_full_result = true;
  const auto result = prober.Probe(TrustedDomain(), kHour, options);
  ASSERT_TRUE(result.session.valid);
  EXPECT_TRUE(prober.TryResume(result.session, TrustedDomain(),
                               kHour + kSecond));
  EXPECT_TRUE(prober.TryResumeTicket(result.session, TrustedDomain(),
                                     kHour + 2));
  EXPECT_TRUE(prober.TryResumeId(result.session, TrustedDomain(),
                                 kHour + 3));
}

TEST(ProberTest, ResumptionFailsOnUnrelatedDomain) {
  Prober prober(World(), 4);
  ProbeOptions options;
  options.want_full_result = true;
  const auto result = prober.Probe(TrustedDomain(), kHour, options);
  ASSERT_TRUE(result.session.valid);
  const auto other = World().FindDomain("netflix.com");
  ASSERT_TRUE(other.has_value());
  EXPECT_FALSE(prober.TryResume(result.session, *other, kHour + kSecond));
}

TEST(ProberTest, InvalidSessionNeverResumes) {
  Prober prober(World(), 5);
  StoredSession empty;
  EXPECT_FALSE(prober.TryResume(empty, TrustedDomain(), kHour));
}

TEST(ProberTest, NonHttpsDomainNotConnected) {
  simnet::Internet& net = World();
  Prober prober(net, 6);
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    if (net.GetDomain(id).https) continue;
    const auto result = prober.Probe(id, kHour);
    EXPECT_FALSE(result.observation.connected);
    EXPECT_FALSE(result.observation.handshake_ok);
    EXPECT_EQ(result.observation.failure, ProbeFailure::kNoHttps);
    return;
  }
  FAIL() << "no plain-http domain";
}

TEST(ProberTest, EveryOutcomeMapsToExactlyOneFailureClass) {
  // On a faulty network every probe lands in exactly one taxonomy class,
  // and the class agrees with the legacy booleans.
  simnet::Internet net(simnet::PaperPopulationSpec(1500), 17);
  net.SetFaultSpec(simnet::DefaultFaultSpec(3.0));
  Prober prober(net, 7);
  std::array<std::size_t, kProbeFailureClasses> counts{};
  for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
    const auto obs = prober.Probe(id, kHour).observation;
    ASSERT_LT(static_cast<std::size_t>(obs.failure), counts.size());
    ++counts[static_cast<std::size_t>(obs.failure)];
    EXPECT_EQ(obs.failure == ProbeFailure::kNone,
              obs.handshake_ok && obs.trusted);
    if (obs.failure == ProbeFailure::kNoHttps ||
        obs.failure == ProbeFailure::kRefused ||
        obs.failure == ProbeFailure::kTimeout) {
      EXPECT_FALSE(obs.connected) << ToString(obs.failure);
    }
    if (obs.failure == ProbeFailure::kUntrusted ||
        obs.failure == ProbeFailure::kAlert ||
        obs.failure == ProbeFailure::kMalformed ||
        obs.failure == ProbeFailure::kReset) {
      EXPECT_TRUE(obs.connected) << ToString(obs.failure);
    }
    EXPECT_GE(obs.attempts, 1);
  }
  // The inflated fault mix must exercise the transport classes.
  EXPECT_GT(counts[static_cast<std::size_t>(ProbeFailure::kNone)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(ProbeFailure::kRefused)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(ProbeFailure::kTimeout)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(ProbeFailure::kReset)], 0u);
}

TEST(ProberTest, RetriesRecoverTransientFaults) {
  // The same world and domains, probed with and without retries: retries
  // must strictly reduce transport loss, and never retry deliberate
  // answers (attempts stays 1 for non-transport outcomes).
  const auto spec = simnet::PaperPopulationSpec(1500);
  simnet::Internet flaky(spec, 31), flaky_retry(spec, 31);
  flaky.SetFaultSpec(simnet::DefaultFaultSpec(3.0));
  flaky_retry.SetFaultSpec(simnet::DefaultFaultSpec(3.0));

  Prober plain(flaky, 8), retrying(flaky_retry, 8);
  RetryPolicy policy;
  policy.max_attempts = 4;
  retrying.SetRetryPolicy(policy);

  std::size_t lost_plain = 0, lost_retry = 0;
  for (simnet::DomainId id = 0; id < flaky.DomainCount(); ++id) {
    const auto a = plain.Probe(id, kHour).observation;
    const auto b = retrying.Probe(id, kHour).observation;
    lost_plain += IsTransportFailure(a.failure);
    lost_retry += IsTransportFailure(b.failure);
    if (!IsTransportFailure(b.failure) && b.attempts > 1) {
      // A non-transport outcome is either first-try or a recovery; it is
      // never the product of retrying a deliberate answer.
      EXPECT_TRUE(IsTransportFailure(a.failure));
    }
  }
  EXPECT_GT(lost_plain, 0u);
  EXPECT_LT(lost_retry, lost_plain / 2);
}

TEST(ProberTest, RetryBackoffIsDeterministic) {
  const auto spec = simnet::PaperPopulationSpec(1000);
  simnet::Internet a(spec, 55), b(spec, 55);
  a.SetFaultSpec(simnet::DefaultFaultSpec(3.0));
  b.SetFaultSpec(simnet::DefaultFaultSpec(3.0));
  Prober pa(a, 9), pb(b, 9);
  RetryPolicy policy;
  policy.max_attempts = 3;
  pa.SetRetryPolicy(policy);
  pb.SetRetryPolicy(policy);
  for (simnet::DomainId id = 0; id < a.DomainCount(); ++id) {
    const auto oa = pa.Probe(id, kHour).observation;
    const auto ob = pb.Probe(id, kHour).observation;
    EXPECT_EQ(oa.failure, ob.failure) << "domain " << id;
    EXPECT_EQ(oa.attempts, ob.attempts) << "domain " << id;
    EXPECT_EQ(oa.kex_value, ob.kex_value) << "domain " << id;
  }
}

TEST(ProberTest, ResumptionRetriesThroughTransientFaults) {
  const auto spec = simnet::PaperPopulationSpec(1500);
  simnet::Internet net(spec, 77);
  Prober prober(net, 10);
  ProbeOptions options;
  options.want_full_result = true;
  const auto id = net.FindDomain("yahoo.com");
  ASSERT_TRUE(id.has_value());
  const auto result = prober.Probe(*id, kHour, options);
  ASSERT_TRUE(result.session.valid);

  net.SetFaultSpec(simnet::DefaultFaultSpec(3.0));
  RetryPolicy policy;
  policy.max_attempts = 6;
  prober.SetRetryPolicy(policy);
  // With generous retries the resumption must get through the fault mix.
  std::size_t ok = 0;
  for (int i = 0; i < 20; ++i) {
    ok += prober.TryResume(result.session, *id, kHour + 2 + i);
  }
  EXPECT_GT(ok, 15u);
}

}  // namespace
}  // namespace tlsharm::scanner
