// The sharded scan engine's output contract: for a fixed (world spec,
// seed, days, robustness), the serialized observation stream and every
// aggregate are byte-identical for ANY thread count. Run under TSan (see
// scripts/check.sh) this doubles as the race detector for the purity
// refactor — eight workers hammer the shared terminators concurrently.
#include "scanner/scan_engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

namespace tlsharm::scanner {
namespace {

struct StudyOutput {
  std::string observations;   // everything the sink received, in order
  DailyScanResult result;
};

// A fresh fault-injected world each run: scanning mutates server state, so
// thread counts may only be compared across identically constructed worlds.
StudyOutput RunStudy(int threads) {
  simnet::Internet net(simnet::PaperPopulationSpec(700), 4242);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));

  std::ostringstream stream;
  ObservationWriter sink(stream);
  ScanEngineOptions options;
  options.threads = threads;
  options.robustness.retry.max_attempts = 3;
  options.sink = &sink;

  StudyOutput out;
  out.result = RunShardedDailyScans(net, /*days=*/3, /*seed=*/777, options);
  out.observations = stream.str();
  return out;
}

void ExpectSameLoss(const DailyScanResult& a, const DailyScanResult& b) {
  ASSERT_EQ(a.loss.size(), b.loss.size());
  for (std::size_t day = 0; day < a.loss.size(); ++day) {
    EXPECT_EQ(a.loss[day].scheduled, b.loss[day].scheduled) << "day " << day;
    EXPECT_EQ(a.loss[day].recovered, b.loss[day].recovered) << "day " << day;
    EXPECT_EQ(a.loss[day].lost, b.loss[day].lost) << "day " << day;
    EXPECT_EQ(a.loss[day].lost_by_class, b.loss[day].lost_by_class)
        << "day " << day;
  }
}

void ExpectSameAggregates(const DailyScanResult& a, const DailyScanResult& b) {
  EXPECT_EQ(a.core_domains, b.core_domains);
  EXPECT_EQ(a.core_ever_ticket, b.core_ever_ticket);
  EXPECT_EQ(a.core_ever_ecdhe, b.core_ever_ecdhe);
  EXPECT_EQ(a.core_ever_dhe_connect, b.core_ever_dhe_connect);
  EXPECT_EQ(a.core_any_mechanism, b.core_any_mechanism);
  for (const DomainIndex id : a.core_domains) {
    EXPECT_EQ(a.stek_spans.MaxSpanDays(id), b.stek_spans.MaxSpanDays(id));
    EXPECT_EQ(a.ecdhe_spans.MaxSpanDays(id), b.ecdhe_spans.MaxSpanDays(id));
    EXPECT_EQ(a.dhe_spans.MaxSpanDays(id), b.dhe_spans.MaxSpanDays(id));
  }
}

TEST(ParallelDeterminismTest, ThreadCountNeverChangesOutput) {
  const StudyOutput serial = RunStudy(1);

  // The study must actually exercise the interesting paths.
  ASSERT_FALSE(serial.observations.empty());
  ASSERT_EQ(serial.result.loss.size(), 3u);
  ASSERT_GT(serial.result.loss[0].scheduled, 0u);
  ASSERT_GT(serial.result.loss[0].recovered + serial.result.loss[0].lost, 0u)
      << "fault injection produced no transport failures; the requeue "
         "path went untested";
  ASSERT_FALSE(serial.result.core_domains.empty());

  for (const int threads : {2, 8}) {
    const StudyOutput parallel = RunStudy(threads);
    EXPECT_EQ(parallel.observations, serial.observations)
        << "observation stream diverged at " << threads << " threads";
    ExpectSameLoss(parallel.result, serial.result);
    ExpectSameAggregates(parallel.result, serial.result);
  }
}

TEST(ParallelDeterminismTest, SerialWrapperMatchesEngine) {
  // RunDailyScans is the one-thread engine; spot-check the delegation.
  simnet::Internet net_a(simnet::PaperPopulationSpec(400), 99);
  simnet::Internet net_b(simnet::PaperPopulationSpec(400), 99);
  const DailyScanResult via_wrapper = RunDailyScans(net_a, 2, 5);
  ScanEngineOptions options;
  const DailyScanResult via_engine = RunShardedDailyScans(net_b, 2, 5, options);
  ExpectSameLoss(via_wrapper, via_engine);
  ExpectSameAggregates(via_wrapper, via_engine);
}

TEST(ParallelDeterminismTest, BlacklistedTargetsAreNeverProbed) {
  simnet::Internet net(simnet::PaperPopulationSpec(300), 7);
  Blacklist blacklist;
  const std::string excluded = net.GetDomain(0).name;
  blacklist.ExcludeDomain(excluded);

  std::ostringstream stream;
  ObservationWriter sink(stream);
  ScanEngineOptions options;
  options.threads = 4;
  options.blacklist = &blacklist;
  options.sink = &sink;
  RunShardedDailyScans(net, 1, 13, options);

  const auto observations = ParseObservations(stream.str());
  ASSERT_FALSE(observations.empty());
  for (const StoredObservation& stored : observations) {
    EXPECT_NE(net.GetDomain(stored.observation.domain).name, excluded);
  }
}

TEST(ParallelDeterminismTest, ThreadsFromEnvParsesAndClamps) {
  ASSERT_EQ(setenv("TLSHARM_THREADS", "8", 1), 0);
  EXPECT_EQ(ScanThreadsFromEnv(), 8);
  ASSERT_EQ(setenv("TLSHARM_THREADS", "0", 1), 0);
  EXPECT_EQ(ScanThreadsFromEnv(), 1);  // out of range -> default
  ASSERT_EQ(setenv("TLSHARM_THREADS", "not a number", 1), 0);
  EXPECT_EQ(ScanThreadsFromEnv(), 1);
  ASSERT_EQ(unsetenv("TLSHARM_THREADS"), 0);
  EXPECT_EQ(ScanThreadsFromEnv(), 1);
}

}  // namespace
}  // namespace tlsharm::scanner
