#include "scanner/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace tlsharm::scanner {
namespace {

StoredObservation Sample(int day, DomainIndex domain) {
  StoredObservation stored;
  stored.day = day;
  stored.observation.domain = domain;
  stored.observation.connected = true;
  stored.observation.handshake_ok = true;
  stored.observation.trusted = true;
  stored.observation.suite = tls::CipherSuite::kEcdheWithAes128CbcSha256;
  stored.observation.kex_group = 0x01f2;
  stored.observation.kex_value = 0x1122334455667788ull;
  stored.observation.session_id_set = true;
  stored.observation.session_id = 0xaabbccdd11223344ull;
  stored.observation.ticket_issued = true;
  stored.observation.stek_id = 0x99aa77bb55cc33ddull;
  stored.observation.ticket_lifetime_hint = 100800;
  return stored;
}

TEST(ObservationStoreTest, RoundTripPreservesEverything) {
  std::vector<StoredObservation> in = {Sample(0, 7), Sample(62, 123456)};
  in[1].observation.ticket_issued = false;
  in[1].observation.stek_id = kNoSecret;
  const std::string data = SerializeObservations(in);
  const auto out = ParseObservations(data);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].day, 0);
  EXPECT_EQ(out[0].observation.domain, 7u);
  EXPECT_EQ(out[0].observation.kex_value, 0x1122334455667788ull);
  EXPECT_EQ(out[0].observation.stek_id, 0x99aa77bb55cc33ddull);
  EXPECT_EQ(out[0].observation.ticket_lifetime_hint, 100800u);
  EXPECT_TRUE(out[0].observation.trusted);
  EXPECT_EQ(out[1].day, 62);
  EXPECT_FALSE(out[1].observation.ticket_issued);
  EXPECT_EQ(out[1].observation.stek_id, kNoSecret);
}

TEST(ObservationStoreTest, FlagsRoundTripIndividually) {
  StoredObservation stored;
  stored.day = 1;
  stored.observation.domain = 1;
  stored.observation.connected = true;  // only one flag set
  const auto out = ParseObservations(SerializeObservations({stored}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].observation.connected);
  EXPECT_FALSE(out[0].observation.handshake_ok);
  EXPECT_FALSE(out[0].observation.trusted);
  EXPECT_FALSE(out[0].observation.session_id_set);
  EXPECT_FALSE(out[0].observation.ticket_issued);
}

TEST(ObservationStoreTest, SkipsCorruptLines) {
  const std::string data =
      SerializeObservations({Sample(1, 2)}) +
      "garbage line\n" +
      "1|2|3\n" +  // too few fields
      SerializeObservations({Sample(3, 4)}) +
      "1|2|3|4|5|6|7|8|9extra\n";
  std::istringstream in(data);
  ObservationReader reader(in);
  std::size_t good = 0;
  while (reader.Next()) ++good;
  EXPECT_EQ(good, 2u);
  EXPECT_EQ(reader.Corrupt(), 3u);
}

TEST(ObservationStoreTest, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  ObservationReader reader(in);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_EQ(reader.Corrupt(), 0u);
}

TEST(ObservationStoreTest, WriterCounts) {
  std::ostringstream out;
  ObservationWriter writer(out);
  writer.Write(0, Sample(0, 1).observation);
  writer.Write(1, Sample(1, 2).observation);
  EXPECT_EQ(writer.Written(), 2u);
  const std::string data = out.str();
  EXPECT_EQ(std::count(data.begin(), data.end(), '\n'), 2);
}

TEST(ObservationStoreTest, FailureClassRoundTrips) {
  for (int i = 0; i < kProbeFailureClasses; ++i) {
    StoredObservation stored = Sample(1, 2);
    stored.observation.failure = static_cast<ProbeFailure>(i);
    const auto out = ParseObservations(SerializeObservations({stored}));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].observation.failure, stored.observation.failure);
  }
}

TEST(ObservationStoreTest, LegacyNineFieldLinesDeriveFailure) {
  // Lines written before the failure column existed still load; the class
  // is reconstructed from the flags.
  const std::string legacy =
      "3|7|7|49|498|11|22|33|100800\n"   // connected+ok+trusted -> ok
      "3|8|3|49|498|11|22|33|100800\n"   // connected+ok, untrusted
      "3|9|1|0|0|0|0|0|0\n"              // connected only -> alert
      "3|10|0|0|0|0|0|0|0\n";            // nothing -> no_https
  const auto out = ParseObservations(legacy);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].observation.failure, ProbeFailure::kNone);
  EXPECT_EQ(out[1].observation.failure, ProbeFailure::kUntrusted);
  EXPECT_EQ(out[2].observation.failure, ProbeFailure::kAlert);
  EXPECT_EQ(out[3].observation.failure, ProbeFailure::kNoHttps);
}

TEST(ObservationStoreTest, OutOfRangeFailureIsCorrupt) {
  std::istringstream in("1|2|7|49|498|11|22|33|100800|99\n");
  ObservationReader reader(in);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_EQ(reader.Corrupt(), 1u);
}

TEST(ObservationStoreTest, LargeBatchRoundTrip) {
  std::vector<StoredObservation> in;
  for (int i = 0; i < 1000; ++i) {
    StoredObservation stored = Sample(i % 63, static_cast<DomainIndex>(i));
    stored.observation.stek_id = static_cast<SecretId>(i * 77 + 1);
    in.push_back(stored);
  }
  const auto out = ParseObservations(SerializeObservations(in));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].observation.stek_id, in[i].observation.stek_id);
    EXPECT_EQ(out[i].day, in[i].day);
  }
}

class TextStoreFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("store-test-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "store.txt").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string FileBytes() {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(TextStoreFileTest, CommitsDayBlocksWithStableDigests) {
  TextStoreFile store;
  std::string error;
  ASSERT_TRUE(store.Create(path_, &error)) << error;
  EXPECT_EQ(store.CommittedBytes(), 0u);
  store.Append(0, Sample(0, 1).observation);
  store.Append(0, Sample(0, 2).observation);
  EXPECT_EQ(store.CommittedBytes(), 0u);  // buffered until EndDay
  store.EndDay(0);
  ASSERT_TRUE(store.Ok()) << store.Error();
  const std::uint64_t day0_bytes = store.CommittedBytes();
  const std::uint32_t day0_crc = store.CommittedCrc();
  EXPECT_GT(day0_bytes, 0u);
  store.Append(1, Sample(1, 1).observation);
  store.EndDay(1);
  store.Finish();
  EXPECT_GT(store.CommittedBytes(), day0_bytes);

  // Resume at the day-0 digests: the day-1 block is cut, the prefix kept.
  TextStoreFile resumed;
  std::uint64_t truncated = 0;
  ASSERT_TRUE(resumed.Resume(path_, day0_bytes, day0_crc, &truncated,
                             &error)) << error;
  EXPECT_GT(truncated, 0u);
  EXPECT_EQ(resumed.CommittedBytes(), day0_bytes);
  EXPECT_EQ(resumed.CommittedCrc(), day0_crc);
  EXPECT_EQ(FileBytes().size(), day0_bytes);
}

TEST_F(TextStoreFileTest, ResumeRejectsWrongCrcAndShortFile) {
  TextStoreFile store;
  std::string error;
  ASSERT_TRUE(store.Create(path_, &error)) << error;
  store.Append(0, Sample(0, 1).observation);
  store.EndDay(0);
  const std::uint64_t bytes = store.CommittedBytes();
  const std::uint32_t crc = store.CommittedCrc();
  store.Finish();

  TextStoreFile resumed;
  EXPECT_FALSE(resumed.Resume(path_, bytes, crc ^ 1u, nullptr, &error));
  EXPECT_FALSE(error.empty());
  // File shorter than the journal claims: committed data is gone, which
  // is unrecoverable and must be an error, not a silent restart.
  error.clear();
  EXPECT_FALSE(resumed.Resume(path_, bytes + 100, crc, nullptr, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(TextStoreFileTest, ReopenTruncatesATornFinalLine) {
  TextStoreFile store;
  std::string error;
  ASSERT_TRUE(store.Create(path_, &error)) << error;
  store.Append(0, Sample(0, 1).observation);
  store.Append(0, Sample(0, 2).observation);
  store.EndDay(0);
  store.Finish();
  const std::string intact = FileBytes();

  // Tear the final line mid-record, as a crash mid-write would.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(intact.data(),
              static_cast<std::streamsize>(intact.size() - 5));
  }
  TextStoreFile reopened;
  std::size_t torn = 0;
  ASSERT_TRUE(reopened.Reopen(path_, &torn, &error)) << error;
  EXPECT_EQ(torn, 1u);
  const std::string repaired = FileBytes();
  EXPECT_LT(repaired.size(), intact.size() - 5);
  EXPECT_TRUE(repaired.empty() || repaired.back() == '\n');
  EXPECT_EQ(intact.compare(0, repaired.size(), repaired), 0);

  // An intact file reopens unchanged.
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << intact;
  TextStoreFile again;
  torn = 99;
  ASSERT_TRUE(again.Reopen(path_, &torn, &error)) << error;
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(FileBytes(), intact);
}

}  // namespace
}  // namespace tlsharm::scanner
