#include "scanner/store.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tlsharm::scanner {
namespace {

StoredObservation Sample(int day, DomainIndex domain) {
  StoredObservation stored;
  stored.day = day;
  stored.observation.domain = domain;
  stored.observation.connected = true;
  stored.observation.handshake_ok = true;
  stored.observation.trusted = true;
  stored.observation.suite = tls::CipherSuite::kEcdheWithAes128CbcSha256;
  stored.observation.kex_group = 0x01f2;
  stored.observation.kex_value = 0x1122334455667788ull;
  stored.observation.session_id_set = true;
  stored.observation.session_id = 0xaabbccdd11223344ull;
  stored.observation.ticket_issued = true;
  stored.observation.stek_id = 0x99aa77bb55cc33ddull;
  stored.observation.ticket_lifetime_hint = 100800;
  return stored;
}

TEST(ObservationStoreTest, RoundTripPreservesEverything) {
  std::vector<StoredObservation> in = {Sample(0, 7), Sample(62, 123456)};
  in[1].observation.ticket_issued = false;
  in[1].observation.stek_id = kNoSecret;
  const std::string data = SerializeObservations(in);
  const auto out = ParseObservations(data);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].day, 0);
  EXPECT_EQ(out[0].observation.domain, 7u);
  EXPECT_EQ(out[0].observation.kex_value, 0x1122334455667788ull);
  EXPECT_EQ(out[0].observation.stek_id, 0x99aa77bb55cc33ddull);
  EXPECT_EQ(out[0].observation.ticket_lifetime_hint, 100800u);
  EXPECT_TRUE(out[0].observation.trusted);
  EXPECT_EQ(out[1].day, 62);
  EXPECT_FALSE(out[1].observation.ticket_issued);
  EXPECT_EQ(out[1].observation.stek_id, kNoSecret);
}

TEST(ObservationStoreTest, FlagsRoundTripIndividually) {
  StoredObservation stored;
  stored.day = 1;
  stored.observation.domain = 1;
  stored.observation.connected = true;  // only one flag set
  const auto out = ParseObservations(SerializeObservations({stored}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].observation.connected);
  EXPECT_FALSE(out[0].observation.handshake_ok);
  EXPECT_FALSE(out[0].observation.trusted);
  EXPECT_FALSE(out[0].observation.session_id_set);
  EXPECT_FALSE(out[0].observation.ticket_issued);
}

TEST(ObservationStoreTest, SkipsCorruptLines) {
  const std::string data =
      SerializeObservations({Sample(1, 2)}) +
      "garbage line\n" +
      "1|2|3\n" +  // too few fields
      SerializeObservations({Sample(3, 4)}) +
      "1|2|3|4|5|6|7|8|9extra\n";
  std::istringstream in(data);
  ObservationReader reader(in);
  std::size_t good = 0;
  while (reader.Next()) ++good;
  EXPECT_EQ(good, 2u);
  EXPECT_EQ(reader.Corrupt(), 3u);
}

TEST(ObservationStoreTest, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  ObservationReader reader(in);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_EQ(reader.Corrupt(), 0u);
}

TEST(ObservationStoreTest, WriterCounts) {
  std::ostringstream out;
  ObservationWriter writer(out);
  writer.Write(0, Sample(0, 1).observation);
  writer.Write(1, Sample(1, 2).observation);
  EXPECT_EQ(writer.Written(), 2u);
  const std::string data = out.str();
  EXPECT_EQ(std::count(data.begin(), data.end(), '\n'), 2);
}

TEST(ObservationStoreTest, FailureClassRoundTrips) {
  for (int i = 0; i < kProbeFailureClasses; ++i) {
    StoredObservation stored = Sample(1, 2);
    stored.observation.failure = static_cast<ProbeFailure>(i);
    const auto out = ParseObservations(SerializeObservations({stored}));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].observation.failure, stored.observation.failure);
  }
}

TEST(ObservationStoreTest, LegacyNineFieldLinesDeriveFailure) {
  // Lines written before the failure column existed still load; the class
  // is reconstructed from the flags.
  const std::string legacy =
      "3|7|7|49|498|11|22|33|100800\n"   // connected+ok+trusted -> ok
      "3|8|3|49|498|11|22|33|100800\n"   // connected+ok, untrusted
      "3|9|1|0|0|0|0|0|0\n"              // connected only -> alert
      "3|10|0|0|0|0|0|0|0\n";            // nothing -> no_https
  const auto out = ParseObservations(legacy);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].observation.failure, ProbeFailure::kNone);
  EXPECT_EQ(out[1].observation.failure, ProbeFailure::kUntrusted);
  EXPECT_EQ(out[2].observation.failure, ProbeFailure::kAlert);
  EXPECT_EQ(out[3].observation.failure, ProbeFailure::kNoHttps);
}

TEST(ObservationStoreTest, OutOfRangeFailureIsCorrupt) {
  std::istringstream in("1|2|7|49|498|11|22|33|100800|99\n");
  ObservationReader reader(in);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_EQ(reader.Corrupt(), 1u);
}

TEST(ObservationStoreTest, LargeBatchRoundTrip) {
  std::vector<StoredObservation> in;
  for (int i = 0; i < 1000; ++i) {
    StoredObservation stored = Sample(i % 63, static_cast<DomainIndex>(i));
    stored.observation.stek_id = static_cast<SecretId>(i * 77 + 1);
    in.push_back(stored);
  }
  const auto out = ParseObservations(SerializeObservations(in));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].observation.stek_id, in[i].observation.stek_id);
    EXPECT_EQ(out[i].day, in[i].day);
  }
}

}  // namespace
}  // namespace tlsharm::scanner
