// Decoder-robustness battery for the campaign journal and the shared fold
// checkpoints — the two binary artifacts a resumed campaign trusts its
// history to. Mirrors the warehouse segment battery: every truncation
// length and every single-bit flip must be rejected cleanly (or, for the
// journal, degrade to a shorter valid prefix), never crash, and never
// yield state that disagrees with what was committed.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "scanner/aggregates.h"
#include "scanner/observation.h"
#include "scanner/runlog.h"
#include "tls/constants.h"

namespace tlsharm::scanner {
namespace {

namespace fs = std::filesystem;

RunLogContents SampleContents() {
  RunLogContents contents;
  contents.config_digest = 0x1122334455667788ull;
  contents.days = 9;
  for (int day = 0; day < 3; ++day) {
    RunLogDay rec;
    rec.day = day;
    rec.digests.store_bytes = 1000u * static_cast<unsigned>(day + 1);
    rec.digests.store_crc = 0xa0a0a0a0u + static_cast<unsigned>(day);
    rec.digests.warehouse_rows = 50u * static_cast<unsigned>(day + 1);
    rec.digests.warehouse_segments = static_cast<unsigned>(day + 1);
    rec.digests.manifest_crc = 0xb0b0b0b0u - static_cast<unsigned>(day);
    rec.digests.state_bytes = 77u + static_cast<unsigned>(day);
    rec.digests.state_crc = 0xc0c0c0c0u ^ static_cast<unsigned>(day);
    contents.committed.push_back(rec);
  }
  return contents;
}

TEST(RunLogCodecTest, RoundTripsIncludingTrailingDayStarted) {
  RunLogContents contents = SampleContents();
  contents.started = 3;
  RunLogContents decoded;
  std::string error;
  ASSERT_TRUE(DecodeRunLog(EncodeRunLog(contents), &decoded, &error)) << error;
  EXPECT_EQ(decoded.config_digest, contents.config_digest);
  EXPECT_EQ(decoded.days, contents.days);
  EXPECT_EQ(decoded.started, 3);
  EXPECT_FALSE(decoded.truncated_tail);
  ASSERT_EQ(decoded.committed.size(), contents.committed.size());
  for (std::size_t i = 0; i < decoded.committed.size(); ++i) {
    EXPECT_EQ(decoded.committed[i].day, contents.committed[i].day);
    EXPECT_TRUE(decoded.committed[i].digests ==
                contents.committed[i].digests);
  }
}

TEST(RunLogCodecTest, EveryTruncationKeepsOnlyAValidPrefix) {
  const RunLogContents contents = SampleContents();
  const Bytes bytes = EncodeRunLog(contents);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const ByteView prefix(bytes.data(), len);
    RunLogContents decoded;
    std::string error;
    if (!DecodeRunLog(prefix, &decoded, &error)) {
      EXPECT_FALSE(error.empty()) << "len " << len;
      continue;  // header or config record gone: rejected outright
    }
    // Whatever survived must be a true prefix of the committed history,
    // contiguous from day 0. A cut that lands exactly on a record boundary
    // reads as a clean shorter journal (truncated_tail false); a cut
    // mid-record must be flagged.
    if (len < bytes.size() && !decoded.truncated_tail) {
      EXPECT_LT(decoded.committed.size(), contents.committed.size())
          << "len " << len;
    }
    EXPECT_EQ(decoded.config_digest, contents.config_digest);
    ASSERT_LE(decoded.committed.size(), contents.committed.size());
    for (std::size_t i = 0; i < decoded.committed.size(); ++i) {
      EXPECT_EQ(decoded.committed[i].day, static_cast<int>(i));
      EXPECT_TRUE(decoded.committed[i].digests ==
                  contents.committed[i].digests);
    }
  }
}

TEST(RunLogCodecTest, EverySingleBitFlipIsCaught) {
  const RunLogContents contents = SampleContents();
  const Bytes golden = EncodeRunLog(contents);
  for (std::size_t byte = 0; byte < golden.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = golden;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      RunLogContents decoded;
      std::string error;
      if (!DecodeRunLog(flipped, &decoded, &error)) continue;  // rejected
      // Accepted despite the flip: the CRCs must have cut the journal
      // back to an undamaged prefix — never silently altered data.
      EXPECT_TRUE(decoded.truncated_tail)
          << "byte " << byte << " bit " << bit;
      EXPECT_EQ(decoded.config_digest, contents.config_digest);
      ASSERT_LT(decoded.committed.size(), contents.committed.size());
      for (std::size_t i = 0; i < decoded.committed.size(); ++i) {
        EXPECT_TRUE(decoded.committed[i].digests ==
                    contents.committed[i].digests);
      }
    }
  }
}

TEST(RunLogCodecTest, RejectsStructuralViolations) {
  RunLogContents decoded;
  std::string error;
  // Committed day without its day-started predecessor.
  RunLogContents gap = SampleContents();
  gap.committed[2].day = 5;  // encoder emits started(5) after committed(1)
  EXPECT_FALSE(DecodeRunLog(EncodeRunLog(gap), &decoded, &error));
  // Empty input and bad magic.
  EXPECT_FALSE(DecodeRunLog(Bytes{}, &decoded, &error));
  Bytes wrong = EncodeRunLog(SampleContents());
  wrong[0] = 'X';
  EXPECT_FALSE(DecodeRunLog(wrong, &decoded, &error));
}

TEST(RunLogWriterTest, EnforcesDayOrderingAndPersistsDurably) {
  const std::string dir = fs::temp_directory_path() /
                          ("runlog-test-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = dir + "/RUNLOG";
  RunLog log;
  std::string error;
  ASSERT_TRUE(log.Start(path, 42, 5, &error)) << error;
  EXPECT_FALSE(log.DayStarted(1, &error));   // must start at 0
  ASSERT_TRUE(log.DayStarted(0, &error)) << error;
  EXPECT_FALSE(log.DayStarted(0, &error));   // already in flight
  EXPECT_FALSE(log.DayCommitted(1, {}, &error));
  ASSERT_TRUE(log.DayCommitted(0, {}, &error)) << error;

  RunLogContents reloaded;
  ASSERT_TRUE(RunLog::Load(path, &reloaded, &error)) << error;
  EXPECT_EQ(reloaded.LastCommitted(), 0);
  EXPECT_EQ(reloaded.started, -1);

  // Reopen drops an uncommitted in-flight day from the rewritten file.
  ASSERT_TRUE(log.DayStarted(1, &error)) << error;
  ASSERT_TRUE(RunLog::Load(path, &reloaded, &error)) << error;
  EXPECT_EQ(reloaded.started, 1);
  RunLog resumed;
  ASSERT_TRUE(resumed.Reopen(path, reloaded, &error)) << error;
  ASSERT_TRUE(RunLog::Load(path, &reloaded, &error)) << error;
  EXPECT_EQ(reloaded.started, -1);
  EXPECT_EQ(reloaded.LastCommitted(), 0);
  fs::remove_all(dir);
}

// --- fold-checkpoint battery ----------------------------------------------

class CheckpointHostileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ckpt-test-" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    HandshakeObservation obs;
    obs.domain = 3;
    obs.connected = obs.handshake_ok = obs.trusted = true;
    obs.ticket_issued = true;
    obs.stek_id = 9001;
    obs.suite = tls::CipherSuite::kEcdheWithAes128CbcSha256;
    obs.kex_value = 77;
    golden_.Fold(0, obs);
    golden_.CompleteDay(0);
    std::string error;
    ASSERT_TRUE(WriteCheckpoint(dir_, 0, golden_, &error)) << error;
    const std::string path = dir_ + "/" + CheckpointFileName(0);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }

  void TearDown() override { fs::remove_all(dir_); }

  void WriteRaw(ByteView bytes) {
    std::ofstream out(dir_ + "/" + CheckpointFileName(0), std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
  ScanAggregates golden_;
  Bytes bytes_;
};

TEST_F(CheckpointHostileTest, EveryTruncationIsRejected) {
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    WriteRaw(ByteView(bytes_.data(), len));
    ScanAggregates decoded;
    std::string error;
    EXPECT_FALSE(ReadCheckpoint(dir_, 0, &decoded, &error))
        << "accepted a " << len << "-byte truncation";
    EXPECT_FALSE(error.empty());
  }
  // Restoring the original bytes restores readability — the failure mode
  // is rejection, not destruction, so a caller falls back cleanly.
  WriteRaw(bytes_);
  ScanAggregates decoded;
  std::string error;
  ASSERT_TRUE(ReadCheckpoint(dir_, 0, &decoded, &error)) << error;
  EXPECT_EQ(decoded.NextDay(), golden_.NextDay());
}

TEST_F(CheckpointHostileTest, EverySingleBitFlipIsRejected) {
  for (std::size_t byte = 0; byte < bytes_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = bytes_;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      WriteRaw(flipped);
      ScanAggregates decoded;
      std::string error;
      EXPECT_FALSE(ReadCheckpoint(dir_, 0, &decoded, &error))
          << "accepted flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST_F(CheckpointHostileTest, MissingFileFallsBackNotCrashes) {
  ScanAggregates decoded;
  std::string error;
  EXPECT_FALSE(ReadCheckpoint(dir_, 7, &decoded, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tlsharm::scanner
