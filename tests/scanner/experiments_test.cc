// Experiment drivers on a small world: shapes and invariants rather than
// exact paper numbers (the benches check calibration at full scale).
#include "scanner/experiments.h"

#include <gtest/gtest.h>

namespace tlsharm::scanner {
namespace {

simnet::Internet& World() {
  static auto* net = new simnet::Internet(
      simnet::PaperPopulationSpec(2500), 1234);
  return *net;
}

TEST(SupportExperimentTest, TicketSupportCountsAreConsistent) {
  const SupportCounts counts = MeasureTicketSupport(World(), 0, 10, 1);
  EXPECT_GT(counts.list_size, 0u);
  EXPECT_LE(counts.trusted, counts.list_size);
  EXPECT_LE(counts.supported, counts.trusted);
  EXPECT_LE(counts.reuse_all, counts.reuse_twice);
  EXPECT_LE(counts.reuse_twice, counts.supported);
  // Ticket-issuing servers overwhelmingly keep one STEK across ten rapid
  // connections (Table 1's 353,124 / 354,697).
  EXPECT_GT(counts.reuse_twice,
            static_cast<std::size_t>(0.9 * counts.supported));
}

TEST(SupportExperimentTest, EcdheReuseMinorityOfSupporters) {
  const SupportCounts counts =
      MeasureKexSupport(World(), 0, CipherSelection::kEcdheOnly, 10, 2);
  EXPECT_GT(counts.supported, 0u);
  EXPECT_LT(counts.reuse_twice, counts.supported / 2);
  EXPECT_GT(counts.reuse_twice, 0u);
}

TEST(SupportExperimentTest, DheSupportIsPartial) {
  const SupportCounts counts =
      MeasureKexSupport(World(), 0, CipherSelection::kDheOnly, 10, 3);
  EXPECT_GT(counts.supported, 0u);
  EXPECT_LT(counts.supported, counts.trusted);  // some servers lack DHE
}

TEST(LifetimeExperimentTest, SessionIdLifetimesMatchConfigBuckets) {
  // 2-minute step, 30-minute cap keeps the test fast.
  const auto result = MeasureSessionIdLifetime(
      World(), 0, 4, /*max_delay=*/30 * kMinute, /*step=*/2 * kMinute,
      /*sample_fraction=*/0.4);
  EXPECT_GT(result.indicated, 0u);
  EXPECT_GT(result.resumed_1s, 0u);
  EXPECT_LE(result.resumed_1s, result.indicated);
  // Apache's 5-minute default dominates: most lifetimes land in [4,6] min.
  std::size_t five_min = 0;
  for (const auto& m : result.lifetimes) {
    EXPECT_GE(m.max_delay, kSecond);
    five_min += m.max_delay >= 4 * kMinute && m.max_delay <= 6 * kMinute;
  }
  EXPECT_GT(five_min, result.lifetimes.size() / 3);
}

TEST(LifetimeExperimentTest, NginxIndicatesButNeverResumes) {
  const auto result = MeasureSessionIdLifetime(
      World(), 0, 5, 10 * kMinute, 5 * kMinute, 0.5);
  // The paper's 97% indicated vs 83% resumed gap.
  EXPECT_LT(result.resumed_1s, result.indicated);
}

TEST(LifetimeExperimentTest, TicketLifetimesIncludeHints) {
  const auto result = MeasureTicketLifetime(
      World(), 0, 6, 30 * kMinute, 2 * kMinute, 0.3);
  EXPECT_GT(result.resumed_1s, 0u);
  bool any_hint = false;
  for (const auto& m : result.lifetimes) any_hint |= m.lifetime_hint > 0;
  EXPECT_TRUE(any_hint);
}

TEST(DailyScanTest, SpansReflectConfiguredRotations) {
  simnet::Internet& net = World();
  // A 10-day window keeps this fast while exercising rotation logic.
  const DailyScanResult result = RunDailyScans(net, 10, 7);
  EXPECT_GT(result.core_domains.size(), 0u);
  EXPECT_GT(result.core_ever_ticket, 0u);
  EXPECT_GT(result.core_ever_ecdhe, 0u);
  EXPECT_LE(result.core_any_mechanism, result.core_domains.size());

  // yahoo.com never rotates: span == window length.
  const auto yahoo = net.FindDomain("yahoo.com");
  ASSERT_TRUE(yahoo.has_value());
  EXPECT_EQ(result.stek_spans.MaxSpanDays(*yahoo), 10);

  // google.com rotates every 14h: span <= 2 days.
  const auto google = net.FindDomain("google.com");
  ASSERT_TRUE(google.has_value());
  EXPECT_LE(result.stek_spans.MaxSpanDays(*google), 2);
  EXPECT_GE(result.stek_spans.MaxSpanDays(*google), 1);

  // netflix.com reuses its ECDHE value throughout the window.
  const auto netflix = net.FindDomain("netflix.com");
  ASSERT_TRUE(netflix.has_value());
  EXPECT_EQ(result.ecdhe_spans.MaxSpanDays(*netflix), 10);
  EXPECT_EQ(result.dhe_spans.MaxSpanDays(*netflix), 10);
}

TEST(GroupExperimentTest, CacheGroupsFindCloudflare) {
  const GroupsResult result = MeasureSessionCacheGroups(World(), 0, 8);
  ASSERT_FALSE(result.groups.empty());
  EXPECT_GT(result.participants, 0u);
  // The largest group must be a genuine multi-domain group.
  EXPECT_GT(result.groups.front().size(), 10u);
  // Most groups are singletons (§5.1: 86%).
  std::size_t singles = 0;
  for (const auto& group : result.groups) singles += group.size() == 1;
  EXPECT_GT(singles, result.groups.size() / 2);
}

TEST(GroupExperimentTest, StekGroupsFindSharedKeyFiles) {
  const GroupsResult result = MeasureStekGroups(World(), 0, 9, 4, 2 * kHour);
  ASSERT_FALSE(result.groups.empty());
  EXPECT_GT(result.groups.front().size(), 10u);
}

TEST(GroupExperimentTest, KexGroupsSmallerThanStekGroups) {
  const GroupsResult kex = MeasureKexGroups(World(), 0, 10, 4, 2 * kHour);
  const GroupsResult stek = MeasureStekGroups(World(), 0, 10, 4, 2 * kHour);
  ASSERT_FALSE(kex.groups.empty());
  ASSERT_FALSE(stek.groups.empty());
  // §5.3: DH values shared in fewer instances and smaller groups.
  EXPECT_LT(kex.groups.front().size(), stek.groups.front().size());
}

TEST(ChurnTest, StatsShapeMatchesModel) {
  const ChurnStats stats = MeasureChurn(World(), 20);
  EXPECT_GT(stats.unique_domains, stats.always_listed);
  EXPECT_GT(stats.always_listed, 0u);
  EXPECT_GT(stats.few_polls, 0u);
  EXPECT_GT(stats.mean_daily_list, 0.0);
  EXPECT_GE(stats.always_https, stats.always_trusted);
}

}  // namespace
}  // namespace tlsharm::scanner
