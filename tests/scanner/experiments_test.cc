// Experiment drivers on a small world: shapes and invariants rather than
// exact paper numbers (the benches check calibration at full scale).
#include "scanner/experiments.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tlsharm::scanner {
namespace {

simnet::Internet& World() {
  static auto* net = new simnet::Internet(
      simnet::PaperPopulationSpec(2500), 1234);
  return *net;
}

TEST(SupportExperimentTest, TicketSupportCountsAreConsistent) {
  const SupportCounts counts = MeasureTicketSupport(World(), 0, 10, 1);
  EXPECT_GT(counts.list_size, 0u);
  EXPECT_LE(counts.trusted, counts.list_size);
  EXPECT_LE(counts.supported, counts.trusted);
  EXPECT_LE(counts.reuse_all, counts.reuse_twice);
  EXPECT_LE(counts.reuse_twice, counts.supported);
  // Ticket-issuing servers overwhelmingly keep one STEK across ten rapid
  // connections (Table 1's 353,124 / 354,697).
  EXPECT_GT(counts.reuse_twice,
            static_cast<std::size_t>(0.9 * counts.supported));
}

TEST(SupportExperimentTest, EcdheReuseMinorityOfSupporters) {
  const SupportCounts counts =
      MeasureKexSupport(World(), 0, CipherSelection::kEcdheOnly, 10, 2);
  EXPECT_GT(counts.supported, 0u);
  EXPECT_LT(counts.reuse_twice, counts.supported / 2);
  EXPECT_GT(counts.reuse_twice, 0u);
}

TEST(SupportExperimentTest, DheSupportIsPartial) {
  const SupportCounts counts =
      MeasureKexSupport(World(), 0, CipherSelection::kDheOnly, 10, 3);
  EXPECT_GT(counts.supported, 0u);
  EXPECT_LT(counts.supported, counts.trusted);  // some servers lack DHE
}

TEST(LifetimeExperimentTest, SessionIdLifetimesMatchConfigBuckets) {
  // 2-minute step, 30-minute cap keeps the test fast.
  const auto result = MeasureSessionIdLifetime(
      World(), 0, 4, /*max_delay=*/30 * kMinute, /*step=*/2 * kMinute,
      /*sample_fraction=*/0.4);
  EXPECT_GT(result.indicated, 0u);
  EXPECT_GT(result.resumed_1s, 0u);
  EXPECT_LE(result.resumed_1s, result.indicated);
  // Apache's 5-minute default dominates: most lifetimes land in [4,6] min.
  std::size_t five_min = 0;
  for (const auto& m : result.lifetimes) {
    EXPECT_GE(m.max_delay, kSecond);
    five_min += m.max_delay >= 4 * kMinute && m.max_delay <= 6 * kMinute;
  }
  EXPECT_GT(five_min, result.lifetimes.size() / 3);
}

TEST(LifetimeExperimentTest, NginxIndicatesButNeverResumes) {
  const auto result = MeasureSessionIdLifetime(
      World(), 0, 5, 10 * kMinute, 5 * kMinute, 0.5);
  // The paper's 97% indicated vs 83% resumed gap.
  EXPECT_LT(result.resumed_1s, result.indicated);
}

TEST(LifetimeExperimentTest, TicketLifetimesIncludeHints) {
  const auto result = MeasureTicketLifetime(
      World(), 0, 6, 30 * kMinute, 2 * kMinute, 0.3);
  EXPECT_GT(result.resumed_1s, 0u);
  bool any_hint = false;
  for (const auto& m : result.lifetimes) any_hint |= m.lifetime_hint > 0;
  EXPECT_TRUE(any_hint);
}

TEST(DailyScanTest, SpansReflectConfiguredRotations) {
  simnet::Internet& net = World();
  // A 10-day window keeps this fast while exercising rotation logic.
  const DailyScanResult result = RunDailyScans(net, 10, 7);
  EXPECT_GT(result.core_domains.size(), 0u);
  EXPECT_GT(result.core_ever_ticket, 0u);
  EXPECT_GT(result.core_ever_ecdhe, 0u);
  EXPECT_LE(result.core_any_mechanism, result.core_domains.size());

  // yahoo.com never rotates: span == window length.
  const auto yahoo = net.FindDomain("yahoo.com");
  ASSERT_TRUE(yahoo.has_value());
  EXPECT_EQ(result.stek_spans.MaxSpanDays(*yahoo), 10);

  // google.com rotates every 14h: span <= 2 days.
  const auto google = net.FindDomain("google.com");
  ASSERT_TRUE(google.has_value());
  EXPECT_LE(result.stek_spans.MaxSpanDays(*google), 2);
  EXPECT_GE(result.stek_spans.MaxSpanDays(*google), 1);

  // netflix.com reuses its ECDHE value throughout the window.
  const auto netflix = net.FindDomain("netflix.com");
  ASSERT_TRUE(netflix.has_value());
  EXPECT_EQ(result.ecdhe_spans.MaxSpanDays(*netflix), 10);
  EXPECT_EQ(result.dhe_spans.MaxSpanDays(*netflix), 10);
}

TEST(GroupExperimentTest, CacheGroupsFindCloudflare) {
  const GroupsResult result = MeasureSessionCacheGroups(World(), 0, 8);
  ASSERT_FALSE(result.groups.empty());
  EXPECT_GT(result.participants, 0u);
  // The largest group must be a genuine multi-domain group.
  EXPECT_GT(result.groups.front().size(), 10u);
  // Most groups are singletons (§5.1: 86%).
  std::size_t singles = 0;
  for (const auto& group : result.groups) singles += group.size() == 1;
  EXPECT_GT(singles, result.groups.size() / 2);
}

TEST(GroupExperimentTest, StekGroupsFindSharedKeyFiles) {
  const GroupsResult result = MeasureStekGroups(World(), 0, 9, 4, 2 * kHour);
  ASSERT_FALSE(result.groups.empty());
  EXPECT_GT(result.groups.front().size(), 10u);
}

TEST(GroupExperimentTest, KexGroupsSmallerThanStekGroups) {
  const GroupsResult kex = MeasureKexGroups(World(), 0, 10, 4, 2 * kHour);
  const GroupsResult stek = MeasureStekGroups(World(), 0, 10, 4, 2 * kHour);
  ASSERT_FALSE(kex.groups.empty());
  ASSERT_FALSE(stek.groups.empty());
  // §5.3: DH values shared in fewer instances and smaller groups.
  EXPECT_LT(kex.groups.front().size(), stek.groups.front().size());
}

TEST(DailyScanRobustnessTest, CleanNetworkHasNoLoss) {
  const DailyScanResult result = RunDailyScans(World(), 3, 11);
  ASSERT_EQ(result.loss.size(), 3u);
  for (const DayLoss& day : result.loss) {
    EXPECT_GT(day.scheduled, 0u);
    EXPECT_EQ(day.lost, 0u);
    EXPECT_EQ(day.recovered, 0u);
    EXPECT_DOUBLE_EQ(day.LossRate(), 0.0);
  }
}

TEST(DailyScanRobustnessTest, RetriesKeepCoreCountsWithinOnePercent) {
  // The acceptance bar: under the default ~5% fault mix, retries plus the
  // end-of-pass requeue keep the §3 core-domain numbers within 1% of a
  // fault-free baseline.
  const auto spec = simnet::PaperPopulationSpec(1500);
  simnet::Internet clean(spec, 42);
  const DailyScanResult baseline = RunDailyScans(clean, 4, 7);

  simnet::Internet faulty(spec, 42);
  faulty.SetFaultSpec(simnet::DefaultFaultSpec());
  ScanRobustness robustness;
  robustness.retry.max_attempts = 4;
  const DailyScanResult resilient = RunDailyScans(faulty, 4, 7, robustness);

  const auto within_1pct = [](std::size_t a, std::size_t b) {
    const double hi = std::max<double>(a, b), lo = std::min<double>(a, b);
    return hi - lo <= 0.01 * hi;
  };
  EXPECT_TRUE(within_1pct(baseline.core_domains.size(),
                          resilient.core_domains.size()))
      << baseline.core_domains.size() << " vs "
      << resilient.core_domains.size();
  EXPECT_TRUE(within_1pct(baseline.core_ever_ticket,
                          resilient.core_ever_ticket))
      << baseline.core_ever_ticket << " vs " << resilient.core_ever_ticket;
  EXPECT_TRUE(within_1pct(baseline.core_ever_ecdhe,
                          resilient.core_ever_ecdhe))
      << baseline.core_ever_ecdhe << " vs " << resilient.core_ever_ecdhe;
  EXPECT_TRUE(within_1pct(baseline.core_any_mechanism,
                          resilient.core_any_mechanism))
      << baseline.core_any_mechanism << " vs "
      << resilient.core_any_mechanism;
  // Residual per-day loss is well under a percent.
  for (const DayLoss& day : resilient.loss) {
    EXPECT_LT(day.LossRate(), 0.01);
  }
}

TEST(DailyScanRobustnessTest, WithoutRetriesLossIsVisible) {
  const auto spec = simnet::PaperPopulationSpec(1500);
  simnet::Internet faulty(spec, 42);
  faulty.SetFaultSpec(simnet::DefaultFaultSpec());
  ScanRobustness fragile;
  fragile.retry.max_attempts = 1;
  fragile.requeue_failures = false;
  const DailyScanResult result = RunDailyScans(faulty, 3, 7, fragile);
  ASSERT_EQ(result.loss.size(), 3u);
  for (const DayLoss& day : result.loss) {
    EXPECT_GT(day.lost, 0u);
    EXPECT_GT(day.LossRate(), 0.01);  // the ~5% mix shows up undamped
    EXPECT_LT(day.LossRate(), 0.20);
    // The per-class histogram accounts for every lost probe, in transport
    // classes only.
    std::size_t classed = 0;
    for (int c = 0; c < kProbeFailureClasses; ++c) {
      const auto count = day.lost_by_class[c];
      if (count > 0) {
        EXPECT_TRUE(IsTransportFailure(static_cast<ProbeFailure>(c)))
            << ToString(static_cast<ProbeFailure>(c));
      }
      classed += count;
    }
    EXPECT_EQ(classed, day.lost);
  }
}

TEST(DailyScanRobustnessTest, FaultyScanReplaysBitForBit) {
  // Identically-seeded worlds with the same fault spec and robustness
  // settings must produce identical studies — the replay property.
  const auto spec = simnet::PaperPopulationSpec(1200);
  ScanRobustness robustness;
  robustness.retry.max_attempts = 3;

  const auto run = [&] {
    simnet::Internet net(spec, 1337);
    net.SetFaultSpec(simnet::DefaultFaultSpec(2.0));
    return RunDailyScans(net, 3, 21, robustness);
  };
  const DailyScanResult a = run();
  const DailyScanResult b = run();

  EXPECT_EQ(a.core_domains, b.core_domains);
  EXPECT_EQ(a.core_ever_ticket, b.core_ever_ticket);
  EXPECT_EQ(a.core_ever_ecdhe, b.core_ever_ecdhe);
  EXPECT_EQ(a.core_ever_dhe_connect, b.core_ever_dhe_connect);
  ASSERT_EQ(a.loss.size(), b.loss.size());
  for (std::size_t day = 0; day < a.loss.size(); ++day) {
    EXPECT_EQ(a.loss[day].scheduled, b.loss[day].scheduled);
    EXPECT_EQ(a.loss[day].recovered, b.loss[day].recovered);
    EXPECT_EQ(a.loss[day].lost, b.loss[day].lost);
    EXPECT_EQ(a.loss[day].lost_by_class, b.loss[day].lost_by_class);
  }
}

TEST(ChurnTest, StatsShapeMatchesModel) {
  const ChurnStats stats = MeasureChurn(World(), 20);
  EXPECT_GT(stats.unique_domains, stats.always_listed);
  EXPECT_GT(stats.always_listed, 0u);
  EXPECT_GT(stats.few_polls, 0u);
  EXPECT_GT(stats.mean_daily_list, 0.0);
  EXPECT_GE(stats.always_https, stats.always_trusted);
}

}  // namespace
}  // namespace tlsharm::scanner
