#include "tls/messages.h"

#include <gtest/gtest.h>

namespace tlsharm::tls {
namespace {

ClientHello SampleClientHello() {
  ClientHello ch;
  ch.random = Bytes(32, 0xab);
  ch.session_id = Bytes(32, 0x11);
  ch.cipher_suites = {0xc027, 0x0067};
  ch.server_name = "example.com";
  ch.offer_session_ticket = true;
  ch.session_ticket = ToBytes("opaque-ticket");
  return ch;
}

TEST(ClientHelloTest, RoundTrip) {
  const ClientHello ch = SampleClientHello();
  const auto parsed = ClientHello::Parse(ch.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->random, ch.random);
  EXPECT_EQ(parsed->session_id, ch.session_id);
  EXPECT_EQ(parsed->cipher_suites, ch.cipher_suites);
  EXPECT_EQ(parsed->server_name, "example.com");
  EXPECT_TRUE(parsed->offer_session_ticket);
  EXPECT_EQ(parsed->session_ticket, ToBytes("opaque-ticket"));
}

TEST(ClientHelloTest, EmptyOptionalsRoundTrip) {
  ClientHello ch;
  ch.random = Bytes(32, 0x01);
  ch.cipher_suites = {0x003c};
  const auto parsed = ClientHello::Parse(ch.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->session_id.empty());
  EXPECT_TRUE(parsed->server_name.empty());
  EXPECT_FALSE(parsed->offer_session_ticket);
  EXPECT_TRUE(parsed->session_ticket.empty());
}

TEST(ClientHelloTest, EmptyTicketExtensionIsDistinctFromAbsent) {
  ClientHello ch;
  ch.random = Bytes(32, 0x01);
  ch.cipher_suites = {0x003c};
  ch.offer_session_ticket = true;  // empty extension
  const auto parsed = ClientHello::Parse(ch.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->offer_session_ticket);
  EXPECT_TRUE(parsed->session_ticket.empty());
}

TEST(ClientHelloTest, ParseRejectsTruncation) {
  const Bytes wire = SampleClientHello().Serialize();
  for (std::size_t len = 0; len < wire.size(); len += 5) {
    EXPECT_FALSE(ClientHello::Parse(ByteView(wire.data(), len)).has_value());
  }
}

TEST(ClientHelloTest, ParseRejectsOversizedSessionId) {
  // Hand-build a hello with a 33-byte session id.
  Bytes wire = SampleClientHello().Serialize();
  // Can't easily patch; instead check parser contract via valid max.
  ClientHello ch = SampleClientHello();
  ch.session_id = Bytes(32, 0x01);
  EXPECT_TRUE(ClientHello::Parse(ch.Serialize()).has_value());
}

TEST(ServerHelloTest, RoundTrip) {
  ServerHello sh;
  sh.random = Bytes(32, 0xcd);
  sh.session_id = Bytes(16, 0x22);
  sh.cipher_suite = 0xc027;
  sh.session_ticket_ack = true;
  const auto parsed = ServerHello::Parse(sh.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->random, sh.random);
  EXPECT_EQ(parsed->session_id, sh.session_id);
  EXPECT_EQ(parsed->cipher_suite, 0xc027);
  EXPECT_TRUE(parsed->session_ticket_ack);
}

TEST(ServerHelloTest, NoAckRoundTrip) {
  ServerHello sh;
  sh.random = Bytes(32, 0xcd);
  sh.cipher_suite = 0x0067;
  const auto parsed = ServerHello::Parse(sh.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->session_ticket_ack);
  EXPECT_TRUE(parsed->session_id.empty());
}

TEST(ServerKeyExchangeTest, RoundTripAndSignedParams) {
  ServerKeyExchange ske;
  ske.group = 0x01f2;
  ske.public_value = ToBytes("pubvalue");
  ske.signature = ToBytes("sig");
  const auto parsed = ServerKeyExchange::Parse(ske.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->group, 0x01f2);
  EXPECT_EQ(parsed->public_value, ToBytes("pubvalue"));
  EXPECT_EQ(parsed->signature, ToBytes("sig"));
  // SignedParams excludes the signature itself.
  EXPECT_EQ(parsed->SignedParams(), ske.SignedParams());
  EXPECT_LT(ske.SignedParams().size(), ske.Serialize().size());
}

TEST(ClientKeyExchangeTest, RoundTrip) {
  ClientKeyExchange cke;
  cke.public_value = ToBytes("client-pub");
  const auto parsed = ClientKeyExchange::Parse(cke.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->public_value, ToBytes("client-pub"));
}

TEST(NewSessionTicketTest, RoundTrip) {
  NewSessionTicket nst;
  nst.lifetime_hint_seconds = 100800;  // Google's 28 hours
  nst.ticket = ToBytes("sealed-ticket-bytes");
  const auto parsed = NewSessionTicket::Parse(nst.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lifetime_hint_seconds, 100800u);
  EXPECT_EQ(parsed->ticket, ToBytes("sealed-ticket-bytes"));
}

TEST(FinishedTest, ParseRequiresExactSize) {
  EXPECT_TRUE(Finished::Parse(Bytes(12, 0x01)).has_value());
  EXPECT_FALSE(Finished::Parse(Bytes(11, 0x01)).has_value());
  EXPECT_FALSE(Finished::Parse(Bytes(13, 0x01)).has_value());
}

TEST(FlightTest, MultiMessageRoundTrip) {
  Bytes flight;
  AppendHandshake(flight, HandshakeType::kClientHello, ToBytes("aaa"));
  AppendHandshake(flight, HandshakeType::kFinished, ToBytes("bbbb"));
  const auto msgs = ParseFlight(flight);
  ASSERT_TRUE(msgs.has_value());
  ASSERT_EQ(msgs->size(), 2u);
  EXPECT_EQ((*msgs)[0].type, HandshakeType::kClientHello);
  EXPECT_EQ((*msgs)[0].body, ToBytes("aaa"));
  EXPECT_EQ((*msgs)[1].type, HandshakeType::kFinished);
  EXPECT_EQ((*msgs)[1].body, ToBytes("bbbb"));
}

TEST(FlightTest, EmptyFlightIsEmptyList) {
  const auto msgs = ParseFlight({});
  ASSERT_TRUE(msgs.has_value());
  EXPECT_TRUE(msgs->empty());
}

TEST(FlightTest, TruncatedFramingRejected) {
  Bytes flight;
  AppendHandshake(flight, HandshakeType::kClientHello, ToBytes("abcdef"));
  flight.pop_back();
  EXPECT_FALSE(ParseFlight(flight).has_value());
}

TEST(ConstantsTest, ForwardSecrecyClassification) {
  EXPECT_FALSE(IsForwardSecret(CipherSuite::kStaticWithAes128CbcSha256));
  EXPECT_TRUE(IsForwardSecret(CipherSuite::kDheWithAes128CbcSha256));
  EXPECT_TRUE(IsForwardSecret(CipherSuite::kEcdheWithAes128CbcSha256));
}

TEST(ConstantsTest, SuiteNames) {
  EXPECT_EQ(ToString(CipherSuite::kEcdheWithAes128CbcSha256),
            "TLS_ECDHE_WITH_AES_128_CBC_SHA256");
  EXPECT_TRUE(IsKnownCipherSuite(0x003c));
  EXPECT_FALSE(IsKnownCipherSuite(0xffff));
}

}  // namespace
}  // namespace tlsharm::tls
