#include "tls/wire.h"

#include <gtest/gtest.h>

namespace tlsharm::tls {
namespace {

TEST(WriterTest, UintWidths) {
  Writer w;
  w.WriteUint(0x01, 1);
  w.WriteUint(0x0203, 2);
  w.WriteUint(0x040506, 3);
  EXPECT_EQ(w.Result(), (Bytes{0x01, 0x02, 0x03, 0x04, 0x05, 0x06}));
}

TEST(WriterTest, VectorPrefixesLength) {
  Writer w;
  w.WriteVector(ToBytes("abc"), 2);
  EXPECT_EQ(w.Result(), (Bytes{0x00, 0x03, 'a', 'b', 'c'}));
}

TEST(ReaderTest, ReadBackWhatWasWritten) {
  Writer w;
  w.WriteUint(0xbeef, 2);
  w.WriteVector(ToBytes("hello"), 1);
  w.WriteString("world", 3);
  Reader r(w.Result());
  EXPECT_EQ(r.ReadUint(2), 0xbeefu);
  EXPECT_EQ(r.ReadVector(1), ToBytes("hello"));
  EXPECT_EQ(r.ReadString(3), "world");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.Failed());
}

TEST(ReaderTest, FailureLatches) {
  const Bytes data{0x01};
  Reader r(data);
  EXPECT_EQ(r.ReadUint(2), 0u);
  EXPECT_TRUE(r.Failed());
  // Subsequent reads stay failed and return zero values.
  EXPECT_EQ(r.ReadUint(1), 0u);
  EXPECT_EQ(r.ReadVector(1).size(), 0u);
  EXPECT_TRUE(r.Failed());
}

TEST(ReaderTest, VectorTruncationFails) {
  const Bytes data{0x00, 0x05, 'a', 'b'};  // claims 5, has 2
  Reader r(data);
  (void)r.ReadVector(2);
  EXPECT_TRUE(r.Failed());
}

TEST(ReaderTest, SubReaderScopesBytes) {
  Writer inner;
  inner.WriteUint(0xaa, 1);
  inner.WriteUint(0xbb, 1);
  Writer w;
  w.WriteVector(inner.Result(), 2);
  w.WriteUint(0xcc, 1);

  Reader r(w.Result());
  Reader sub = r.ReadSubReader(2);
  EXPECT_EQ(sub.ReadUint(1), 0xaau);
  EXPECT_EQ(sub.ReadUint(1), 0xbbu);
  EXPECT_TRUE(sub.AtEnd());
  EXPECT_EQ(r.ReadUint(1), 0xccu);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ReaderTest, SubReaderTruncationFailsOuter) {
  const Bytes data{0x00, 0x09, 0x01};
  Reader r(data);
  Reader sub = r.ReadSubReader(2);
  EXPECT_TRUE(r.Failed());
  EXPECT_TRUE(sub.AtEnd());
}

TEST(ReaderTest, RemainingCounts) {
  const Bytes data{1, 2, 3, 4};
  Reader r(data);
  EXPECT_EQ(r.Remaining(), 4u);
  (void)r.ReadUint(1);
  EXPECT_EQ(r.Remaining(), 3u);
  r.MarkFailed();
  EXPECT_EQ(r.Remaining(), 0u);
}

}  // namespace
}  // namespace tlsharm::tls
