// Adversarial server behaviour: the client state machine must reject
// malformed, downgraded, or forged server flights. The ScriptedServer
// replays attacker-controlled bytes.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "pki/ca.h"
#include "tls/client.h"
#include "tls/messages.h"

namespace tlsharm::tls {
namespace {

// Returns fixed flights regardless of what the client sends.
class ScriptedServer final : public ServerConnection {
 public:
  explicit ScriptedServer(std::vector<Bytes> flights)
      : flights_(std::move(flights)) {}

  Bytes OnClientFlight(ByteView) override {
    if (next_ >= flights_.size()) return {};
    return flights_[next_++];
  }
  Bytes OnApplicationRecord(ByteView) override { return {}; }
  bool Failed() const override { return false; }
  std::string_view ErrorDetail() const override { return "scripted"; }

 private:
  std::vector<Bytes> flights_;
  std::size_t next_ = 0;
};

ClientConfig BasicConfig() {
  ClientConfig config;
  config.server_name = "victim.test";
  return config;
}

HandshakeResult RunAgainst(std::vector<Bytes> flights,
                           ClientConfig config = BasicConfig()) {
  ScriptedServer server(std::move(flights));
  crypto::Drbg drbg(ToBytes("client"));
  TlsClient client(std::move(config));
  return client.Handshake(server, /*now=*/0, drbg);
}

Bytes Frame(HandshakeType type, ByteView body) {
  Bytes flight;
  AppendHandshake(flight, type, body);
  return flight;
}

TEST(ClientNegativeTest, EmptyServerFlightFails) {
  const auto result = RunAgainst({Bytes{}});
  EXPECT_FALSE(result.ok);
}

TEST(ClientNegativeTest, GarbageFlightFails) {
  const auto result = RunAgainst({ToBytes("complete nonsense bytes here")});
  EXPECT_FALSE(result.ok);
}

TEST(ClientNegativeTest, NonServerHelloFirstMessageFails) {
  const auto result =
      RunAgainst({Frame(HandshakeType::kFinished, Bytes(12, 0))});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ServerHello"), std::string::npos);
}

TEST(ClientNegativeTest, UnofferedSuiteRejected) {
  // Downgrade attempt: client offers ECDHE only, server "chooses" static.
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kStaticWithAes128CbcSha256);
  ClientConfig config = BasicConfig();
  config.offered_suites = {CipherSuite::kEcdheWithAes128CbcSha256};
  const auto result =
      RunAgainst({Frame(HandshakeType::kServerHello, sh.Serialize())},
                 config);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unoffered"), std::string::npos);
}

TEST(ClientNegativeTest, UnknownSuiteRejected) {
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite = 0x1337;
  const auto result =
      RunAgainst({Frame(HandshakeType::kServerHello, sh.Serialize())});
  EXPECT_FALSE(result.ok);
}

TEST(ClientNegativeTest, WrongVersionRejected) {
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.version = 0x0301;  // TLS 1.0
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kEcdheWithAes128CbcSha256);
  const auto result =
      RunAgainst({Frame(HandshakeType::kServerHello, sh.Serialize())});
  EXPECT_FALSE(result.ok);
}

TEST(ClientNegativeTest, UnsolicitedResumptionRejected) {
  // Server claims an abbreviated handshake, but the client never offered
  // any session state — it must not accept.
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kEcdheWithAes128CbcSha256);
  Bytes flight = Frame(HandshakeType::kServerHello, sh.Serialize());
  AppendHandshake(flight, HandshakeType::kFinished, Bytes(12, 0xaa));
  const auto result = RunAgainst({flight});
  EXPECT_FALSE(result.ok);
}

TEST(ClientNegativeTest, ForgedServerFinishedOnResumptionRejected) {
  // Client offers resumption; attacker echoes the session ID but cannot
  // compute verify_data without the master secret.
  ClientConfig config = BasicConfig();
  config.resume_session_id = Bytes(32, 0x55);
  config.resume_master_secret = Bytes(48, 0x66);

  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.session_id = config.resume_session_id;  // "accept" the resumption
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kEcdheWithAes128CbcSha256);
  Bytes flight = Frame(HandshakeType::kServerHello, sh.Serialize());
  AppendHandshake(flight, HandshakeType::kFinished, Bytes(12, 0xaa));
  const auto result = RunAgainst({flight}, config);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("Finished"), std::string::npos);
}

TEST(ClientNegativeTest, ForgedCertificateChainDetected) {
  // A full-looking flight whose SKE signature cannot verify against the
  // presented certificate.
  crypto::Drbg drbg(ToBytes("forger"));
  pki::CertificateAuthority ca("Fake CA", pki::SignatureScheme::kSchnorrSim61,
                               drbg);
  const auto key = crypto::SchnorrSim61().GenerateKeyPair(drbg);
  const pki::Certificate leaf =
      ca.IssueLeaf("victim.test", {}, key.public_key, 0, 365 * kDay, drbg);

  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kEcdheWithAes128CbcSha256);
  CertificateMsg cert_msg;
  cert_msg.chain = {leaf};
  ServerKeyExchange ske;
  ske.group = static_cast<std::uint16_t>(crypto::NamedGroup::kSimEc61);
  ske.public_value = Bytes(8, 0x42);
  ske.signature = Bytes(2 * crypto::SchnorrSim61().ScalarSize(), 0x13);

  Bytes flight = Frame(HandshakeType::kServerHello, sh.Serialize());
  AppendHandshake(flight, HandshakeType::kCertificate, cert_msg.Serialize());
  AppendHandshake(flight, HandshakeType::kServerKeyExchange, ske.Serialize());
  AppendHandshake(flight, HandshakeType::kServerHelloDone, {});
  const auto result = RunAgainst({flight});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("signature"), std::string::npos);
}

TEST(ClientNegativeTest, UnknownKexGroupRejected) {
  crypto::Drbg drbg(ToBytes("forger"));
  pki::CertificateAuthority ca("Fake CA", pki::SignatureScheme::kSchnorrSim61,
                               drbg);
  const auto key = crypto::SchnorrSim61().GenerateKeyPair(drbg);
  const pki::Certificate leaf =
      ca.IssueLeaf("victim.test", {}, key.public_key, 0, 365 * kDay, drbg);
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kEcdheWithAes128CbcSha256);
  CertificateMsg cert_msg;
  cert_msg.chain = {leaf};
  ServerKeyExchange ske;
  ske.group = 0xdead;
  ske.public_value = Bytes(8, 0x42);
  ske.signature = Bytes(32, 0x13);
  Bytes flight = Frame(HandshakeType::kServerHello, sh.Serialize());
  AppendHandshake(flight, HandshakeType::kCertificate, cert_msg.Serialize());
  AppendHandshake(flight, HandshakeType::kServerKeyExchange, ske.Serialize());
  AppendHandshake(flight, HandshakeType::kServerHelloDone, {});
  const auto result = RunAgainst({flight});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("group"), std::string::npos);
}

TEST(ClientNegativeTest, GroupSuiteFamilyMismatchRejected) {
  // ECDHE suite negotiated but a finite-field group in the SKE.
  crypto::Drbg drbg(ToBytes("signer"));
  pki::CertificateAuthority ca("CA", pki::SignatureScheme::kSchnorrSim61,
                               drbg);
  const auto key = crypto::SchnorrSim61().GenerateKeyPair(drbg);
  const pki::Certificate leaf =
      ca.IssueLeaf("victim.test", {}, key.public_key, 0, 365 * kDay, drbg);
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kEcdheWithAes128CbcSha256);
  CertificateMsg cert_msg;
  cert_msg.chain = {leaf};
  ServerKeyExchange ske;
  ske.group = static_cast<std::uint16_t>(crypto::NamedGroup::kFfdheSim61);
  ske.public_value = Bytes(8, 0x42);
  ske.signature = Bytes(32, 0x13);
  Bytes flight = Frame(HandshakeType::kServerHello, sh.Serialize());
  AppendHandshake(flight, HandshakeType::kCertificate, cert_msg.Serialize());
  AppendHandshake(flight, HandshakeType::kServerKeyExchange, ske.Serialize());
  AppendHandshake(flight, HandshakeType::kServerHelloDone, {});
  const auto result = RunAgainst({flight});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("mismatch"), std::string::npos);
}

TEST(ClientNegativeTest, MissingServerHelloDoneRejected) {
  crypto::Drbg drbg(ToBytes("signer"));
  pki::CertificateAuthority ca("CA", pki::SignatureScheme::kSchnorrSim61,
                               drbg);
  const auto key = crypto::SchnorrSim61().GenerateKeyPair(drbg);
  const pki::Certificate leaf =
      ca.IssueLeaf("victim.test", {}, key.public_key, 0, 365 * kDay, drbg);
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kStaticWithAes128CbcSha256);
  CertificateMsg cert_msg;
  cert_msg.chain = {leaf};
  Bytes flight = Frame(HandshakeType::kServerHello, sh.Serialize());
  AppendHandshake(flight, HandshakeType::kCertificate, cert_msg.Serialize());
  const auto result = RunAgainst({flight});
  EXPECT_FALSE(result.ok);
}

TEST(ClientNegativeTest, EmptyCertificateChainRejected) {
  ServerHello sh;
  sh.random = Bytes(32, 0x01);
  sh.cipher_suite =
      static_cast<std::uint16_t>(CipherSuite::kEcdheWithAes128CbcSha256);
  CertificateMsg cert_msg;  // empty chain
  Bytes flight = Frame(HandshakeType::kServerHello, sh.Serialize());
  AppendHandshake(flight, HandshakeType::kCertificate, cert_msg.Serialize());
  AppendHandshake(flight, HandshakeType::kServerHelloDone, {});
  const auto result = RunAgainst({flight});
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace tlsharm::tls
