// Corpus-style robustness test: take a genuine server flight produced by a
// real simulated terminator, then feed the client every prefix of it plus
// hundreds of seeded random corruptions. The client must fail closed with a
// classified error every time — never crash, never accept the handshake.
// (scripts/check.sh reruns this under ASan+UBSan, where any parser
// over-read in these paths becomes a hard failure.)
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "simnet/internet.h"
#include "tls/client.h"
#include "util/rng.h"

namespace tlsharm::tls {
namespace {

// Forwards to a live terminator connection, capturing the first non-empty
// server flight on the way through.
class Tap final : public ServerConnection {
 public:
  Tap(std::unique_ptr<ServerConnection> inner, Bytes& first_flight)
      : inner_(std::move(inner)), first_flight_(first_flight) {}

  Bytes OnClientFlight(ByteView flight) override {
    Bytes response = inner_->OnClientFlight(flight);
    if (first_flight_.empty() && !response.empty()) first_flight_ = response;
    return response;
  }
  Bytes OnApplicationRecord(ByteView record) override {
    return inner_->OnApplicationRecord(record);
  }
  bool Failed() const override { return inner_->Failed(); }
  std::string_view ErrorDetail() const override {
    return inner_->ErrorDetail();
  }

 private:
  std::unique_ptr<ServerConnection> inner_;
  Bytes& first_flight_;
};

// Replays one fixed server flight, then goes silent.
class ScriptedServer final : public ServerConnection {
 public:
  explicit ScriptedServer(Bytes flight) : flight_(std::move(flight)) {}
  Bytes OnClientFlight(ByteView) override {
    if (sent_) return {};
    sent_ = true;
    return flight_;
  }
  Bytes OnApplicationRecord(ByteView) override { return {}; }
  bool Failed() const override { return false; }
  std::string_view ErrorDetail() const override { return "scripted"; }

 private:
  Bytes flight_;
  bool sent_ = false;
};

// One real server flight (ServerHello..ServerHelloDone) captured from a
// live handshake against the simulated world.
const Bytes& ValidServerFlight() {
  static const Bytes* flight = [] {
    auto* captured = new Bytes;
    simnet::Internet net(simnet::PaperPopulationSpec(500), 11);
    for (simnet::DomainId id = 0; id < net.DomainCount(); ++id) {
      const auto& info = net.GetDomain(id);
      if (!info.https || !info.trusted_cert) continue;
      auto conn = net.Connect(id, kHour);
      if (conn == nullptr) continue;
      Tap tap(std::move(conn), *captured);
      ClientConfig config;
      config.server_name = info.name;
      crypto::Drbg drbg(ToBytes("capture"));
      TlsClient client(config);
      const HandshakeResult hs = client.Handshake(tap, kHour, drbg);
      if (hs.ok && !captured->empty()) break;
      captured->clear();
    }
    return captured;
  }();
  return *flight;
}

// Runs a fresh client against the (possibly mangled) flight.
HandshakeResult RunAgainst(Bytes flight, std::uint64_t case_seed) {
  ScriptedServer server(std::move(flight));
  Bytes drbg_seed = ToBytes("corruption");
  AppendUint(drbg_seed, case_seed, 8);
  crypto::Drbg drbg(drbg_seed);
  ClientConfig config;
  config.server_name = "victim.test";
  TlsClient client(config);
  return client.Handshake(server, /*now=*/kHour, drbg);
}

TEST(FlightCorruptionTest, CapturedFlightIsSubstantial) {
  // Sanity: the corpus seed exists and looks like a full first flight.
  ASSERT_GT(ValidServerFlight().size(), 64u);
}

TEST(FlightCorruptionTest, EveryPrefixFailsClosedWithAClass) {
  const Bytes& flight = ValidServerFlight();
  for (std::size_t len = 0; len < flight.size(); ++len) {
    const HandshakeResult result =
        RunAgainst(Bytes(flight.begin(), flight.begin() + len), len);
    ASSERT_FALSE(result.ok) << "prefix of " << len << " bytes accepted";
    ASSERT_NE(result.error_class, HandshakeErrorClass::kNone)
        << "prefix of " << len << " bytes left unclassified";
    ASSERT_FALSE(result.error.empty());
  }
}

TEST(FlightCorruptionTest, SeededRandomCorruptionsNeverCrashOrSucceed) {
  const Bytes& flight = ValidServerFlight();
  std::uint64_t state = 0x5eed;
  for (int trial = 0; trial < 400; ++trial) {
    Bytes mangled = flight;
    const int flips = 1 + static_cast<int>(SplitMix64(state) % 32);
    for (int i = 0; i < flips; ++i) {
      const std::uint64_t r = SplitMix64(state);
      mangled[r % mangled.size()] ^=
          static_cast<std::uint8_t>(1u << ((r >> 32) % 8));
    }
    if (mangled == flight) continue;  // flips cancelled out
    const HandshakeResult result = RunAgainst(std::move(mangled), state);
    ASSERT_FALSE(result.ok) << "corrupted flight accepted, trial " << trial;
    ASSERT_NE(result.error_class, HandshakeErrorClass::kNone);
  }
}

TEST(FlightCorruptionTest, RandomTruncationPlusCorruptionFailsClosed) {
  // The combined fault: cut the flight short AND flip bits in the stump —
  // what a FaultyConnection's worst day looks like.
  const Bytes& flight = ValidServerFlight();
  std::uint64_t state = 0xdead5eed;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = SplitMix64(state) % flight.size();
    Bytes mangled(flight.begin(), flight.begin() + len);
    if (!mangled.empty()) {
      const std::uint64_t r = SplitMix64(state);
      mangled[r % mangled.size()] ^=
          static_cast<std::uint8_t>(1u << ((r >> 32) % 8));
    }
    const HandshakeResult result = RunAgainst(std::move(mangled), state);
    ASSERT_FALSE(result.ok);
    ASSERT_NE(result.error_class, HandshakeErrorClass::kNone);
  }
}

}  // namespace
}  // namespace tlsharm::tls
