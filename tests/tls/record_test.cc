#include "tls/record.h"

#include <gtest/gtest.h>

namespace tlsharm::tls {
namespace {

SessionKeys TestKeys() {
  return DeriveSessionKeys(Bytes(kMasterSecretSize, 0x33), Bytes(32, 0x01),
                           Bytes(32, 0x02));
}

TEST(RecordTest, ProtectUnprotectRoundTrip) {
  crypto::Drbg drbg(ToBytes("record"));
  const SessionKeys keys = TestKeys();
  const Bytes pt = ToBytes("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n");
  const Bytes record =
      ProtectRecord(keys, Direction::kClientToServer, 0, pt, drbg);
  const auto back = UnprotectRecord(keys, Direction::kClientToServer, 0,
                                    record);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
}

TEST(RecordTest, WrongDirectionFails) {
  crypto::Drbg drbg(ToBytes("record"));
  const SessionKeys keys = TestKeys();
  const Bytes record = ProtectRecord(keys, Direction::kClientToServer, 0,
                                     ToBytes("data"), drbg);
  EXPECT_FALSE(
      UnprotectRecord(keys, Direction::kServerToClient, 0, record)
          .has_value());
}

TEST(RecordTest, WrongSequenceFails) {
  crypto::Drbg drbg(ToBytes("record"));
  const SessionKeys keys = TestKeys();
  const Bytes record = ProtectRecord(keys, Direction::kClientToServer, 5,
                                     ToBytes("data"), drbg);
  EXPECT_FALSE(
      UnprotectRecord(keys, Direction::kClientToServer, 6, record)
          .has_value());
  EXPECT_TRUE(
      UnprotectRecord(keys, Direction::kClientToServer, 5, record)
          .has_value());
}

TEST(RecordTest, TamperDetected) {
  crypto::Drbg drbg(ToBytes("record"));
  const SessionKeys keys = TestKeys();
  Bytes record = ProtectRecord(keys, Direction::kClientToServer, 0,
                               ToBytes("payload"), drbg);
  for (std::size_t i = 0; i < record.size(); i += 17) {
    Bytes tampered = record;
    tampered[i] ^= 0x80;
    EXPECT_FALSE(UnprotectRecord(keys, Direction::kClientToServer, 0,
                                 tampered)
                     .has_value());
  }
}

TEST(RecordTest, TooShortRejected) {
  const SessionKeys keys = TestKeys();
  EXPECT_FALSE(UnprotectRecord(keys, Direction::kClientToServer, 0,
                               Bytes(40, 0x00))
                   .has_value());
}

TEST(RecordChannelTest, SequencesAdvance) {
  crypto::Drbg client_drbg(ToBytes("c")), server_drbg(ToBytes("s"));
  const SessionKeys keys = TestKeys();
  RecordChannel client(keys, Direction::kClientToServer);
  RecordChannel server(keys, Direction::kServerToClient);
  for (int i = 0; i < 5; ++i) {
    const Bytes req = client.Send(ToBytes("ping"), client_drbg);
    const auto got = server.Receive(req);
    ASSERT_TRUE(got.has_value()) << "round " << i;
    EXPECT_EQ(*got, ToBytes("ping"));
    const Bytes resp = server.Send(ToBytes("pong"), server_drbg);
    const auto got2 = client.Receive(resp);
    ASSERT_TRUE(got2.has_value());
    EXPECT_EQ(*got2, ToBytes("pong"));
  }
}

TEST(RecordChannelTest, ReplayRejected) {
  crypto::Drbg drbg(ToBytes("c"));
  const SessionKeys keys = TestKeys();
  RecordChannel client(keys, Direction::kClientToServer);
  RecordChannel server(keys, Direction::kServerToClient);
  const Bytes req = client.Send(ToBytes("once"), drbg);
  EXPECT_TRUE(server.Receive(req).has_value());
  EXPECT_FALSE(server.Receive(req).has_value());  // replay
}

TEST(RecordTest, PassiveObserverWithKeysDecrypts) {
  // The attack model: anyone holding the session keys (e.g. derived from a
  // stolen STEK + captured randoms) can decrypt recorded records.
  crypto::Drbg drbg(ToBytes("record"));
  const SessionKeys keys = TestKeys();
  const Bytes record = ProtectRecord(keys, Direction::kServerToClient, 0,
                                     ToBytes("secret page"), drbg);
  // "Attacker" re-derives the same keys independently.
  const SessionKeys rederived = TestKeys();
  const auto pt = UnprotectRecord(rederived, Direction::kServerToClient, 0,
                                  record);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, ToBytes("secret page"));
}

}  // namespace
}  // namespace tlsharm::tls
