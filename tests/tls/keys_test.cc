#include "tls/keys.h"

#include <gtest/gtest.h>

namespace tlsharm::tls {
namespace {

TEST(KeysTest, DerivedKeysHaveCorrectSizes) {
  const Bytes master(kMasterSecretSize, 0x11);
  const Bytes cr(kRandomSize, 0x01), sr(kRandomSize, 0x02);
  const SessionKeys keys = DeriveSessionKeys(master, cr, sr);
  EXPECT_TRUE(keys.Valid());
}

TEST(KeysTest, Deterministic) {
  const Bytes master(kMasterSecretSize, 0x11);
  const Bytes cr(kRandomSize, 0x01), sr(kRandomSize, 0x02);
  const SessionKeys a = DeriveSessionKeys(master, cr, sr);
  const SessionKeys b = DeriveSessionKeys(master, cr, sr);
  EXPECT_EQ(a.client_write_key, b.client_write_key);
  EXPECT_EQ(a.server_mac_key, b.server_mac_key);
}

TEST(KeysTest, FreshRandomsFreshKeys) {
  // Resumption's security property: same master secret + new randoms gives
  // new connection keys.
  const Bytes master(kMasterSecretSize, 0x11);
  const SessionKeys a = DeriveSessionKeys(master, Bytes(32, 0x01),
                                          Bytes(32, 0x02));
  const SessionKeys b = DeriveSessionKeys(master, Bytes(32, 0x03),
                                          Bytes(32, 0x04));
  EXPECT_NE(a.client_write_key, b.client_write_key);
  EXPECT_NE(a.server_write_key, b.server_write_key);
}

TEST(KeysTest, DirectionalKeysDiffer) {
  const SessionKeys keys = DeriveSessionKeys(
      Bytes(kMasterSecretSize, 0x11), Bytes(32, 0x01), Bytes(32, 0x02));
  EXPECT_NE(keys.client_write_key, keys.server_write_key);
  EXPECT_NE(keys.client_mac_key, keys.server_mac_key);
}

TEST(KeysTest, InvalidWhenEmpty) {
  EXPECT_FALSE(SessionKeys{}.Valid());
}

}  // namespace
}  // namespace tlsharm::tls
