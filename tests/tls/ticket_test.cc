#include "tls/ticket.h"

#include <gtest/gtest.h>

namespace tlsharm::tls {
namespace {

TicketState SampleState() {
  TicketState state;
  state.cipher_suite = 0xc027;
  state.master_secret = Bytes(kMasterSecretSize, 0x42);
  state.issue_time = 5 * kDay + 3 * kHour;
  return state;
}

class TicketCodecTest : public ::testing::TestWithParam<TicketCodecKind> {
 protected:
  const TicketCodec& Codec() const { return GetTicketCodec(GetParam()); }
};

TEST_P(TicketCodecTest, SealOpenRoundTrip) {
  crypto::Drbg drbg(ToBytes("ticket test"));
  const Stek stek = Stek::Generate(drbg, Codec().KeyNameSize());
  const Bytes ticket = Codec().Seal(stek, SampleState(), drbg);
  const auto opened = Codec().Open(stek, ticket);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->cipher_suite, 0xc027);
  EXPECT_EQ(opened->master_secret, Bytes(kMasterSecretSize, 0x42));
  EXPECT_EQ(opened->issue_time, 5 * kDay + 3 * kHour);
}

TEST_P(TicketCodecTest, WrongStekRejected) {
  crypto::Drbg drbg(ToBytes("ticket test"));
  const Stek stek = Stek::Generate(drbg, Codec().KeyNameSize());
  const Stek other = Stek::Generate(drbg, Codec().KeyNameSize());
  const Bytes ticket = Codec().Seal(stek, SampleState(), drbg);
  EXPECT_FALSE(Codec().Open(other, ticket).has_value());
}

TEST_P(TicketCodecTest, TamperedTicketRejected) {
  crypto::Drbg drbg(ToBytes("ticket test"));
  const Stek stek = Stek::Generate(drbg, Codec().KeyNameSize());
  Bytes ticket = Codec().Seal(stek, SampleState(), drbg);
  for (std::size_t i = 0; i < ticket.size(); i += 11) {
    Bytes tampered = ticket;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(Codec().Open(stek, tampered).has_value())
        << "flip at " << i;
  }
}

TEST_P(TicketCodecTest, TruncatedTicketRejected) {
  crypto::Drbg drbg(ToBytes("ticket test"));
  const Stek stek = Stek::Generate(drbg, Codec().KeyNameSize());
  const Bytes ticket = Codec().Seal(stek, SampleState(), drbg);
  for (std::size_t len = 0; len < ticket.size(); len += 13) {
    EXPECT_FALSE(Codec().Open(stek, ByteView(ticket.data(), len)).has_value());
  }
}

TEST_P(TicketCodecTest, StekIdStableAcrossTicketsFromSameKey) {
  crypto::Drbg drbg(ToBytes("ticket test"));
  const Stek stek = Stek::Generate(drbg, Codec().KeyNameSize());
  const Bytes t1 = Codec().Seal(stek, SampleState(), drbg);
  const Bytes t2 = Codec().Seal(stek, SampleState(), drbg);
  EXPECT_NE(t1, t2);  // fresh IV every time
  const auto id1 = Codec().ExtractStekId(t1);
  const auto id2 = Codec().ExtractStekId(t2);
  ASSERT_TRUE(id1 && id2);
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(id1->size(), Codec().KeyNameSize());
}

TEST_P(TicketCodecTest, StekIdChangesAfterRotation) {
  crypto::Drbg drbg(ToBytes("ticket test"));
  const Stek s1 = Stek::Generate(drbg, Codec().KeyNameSize());
  const Stek s2 = Stek::Generate(drbg, Codec().KeyNameSize());
  const auto id1 = Codec().ExtractStekId(Codec().Seal(s1, SampleState(), drbg));
  const auto id2 = Codec().ExtractStekId(Codec().Seal(s2, SampleState(), drbg));
  ASSERT_TRUE(id1 && id2);
  EXPECT_NE(*id1, *id2);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, TicketCodecTest,
                         ::testing::Values(TicketCodecKind::kRfc5077,
                                           TicketCodecKind::kMbedTls,
                                           TicketCodecKind::kSChannel));

TEST(TicketStateTest, SerializeParseRoundTrip) {
  const TicketState state = SampleState();
  const auto parsed = TicketState::Parse(state.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cipher_suite, state.cipher_suite);
  EXPECT_EQ(parsed->master_secret, state.master_secret);
  EXPECT_EQ(parsed->issue_time, state.issue_time);
}

TEST(TicketStateTest, RejectsWrongMasterSecretSize) {
  TicketState state = SampleState();
  state.master_secret.pop_back();
  EXPECT_FALSE(TicketState::Parse(state.Serialize()).has_value());
}

TEST(StekTest, GenerateSizes) {
  crypto::Drbg drbg(ToBytes("stek"));
  const Stek stek = Stek::Generate(drbg);
  EXPECT_EQ(stek.key_name.size(), 16u);
  EXPECT_EQ(stek.aes_key.size(), 16u);
  EXPECT_EQ(stek.mac_key.size(), 32u);
  const Stek mbed = Stek::Generate(drbg, 4);
  EXPECT_EQ(mbed.key_name.size(), 4u);
  EXPECT_NE(stek.aes_key, mbed.aes_key);
}

TEST(ExtractStekIdAutoTest, IdentifiesAllThreeLayouts) {
  crypto::Drbg drbg(ToBytes("auto"));
  const TicketState state = SampleState();

  const Stek rfc_stek = Stek::Generate(drbg, 16);
  const Bytes rfc_ticket = Rfc5077Codec().Seal(rfc_stek, state, drbg);
  const auto rfc_id = ExtractStekIdAuto(rfc_ticket);
  ASSERT_TRUE(rfc_id.has_value());
  EXPECT_EQ(*rfc_id, rfc_stek.key_name);

  const Stek mbed_stek = Stek::Generate(drbg, 4);
  const Bytes mbed_ticket = MbedTlsCodec().Seal(mbed_stek, state, drbg);
  const auto mbed_id = ExtractStekIdAuto(mbed_ticket);
  ASSERT_TRUE(mbed_id.has_value());
  EXPECT_EQ(*mbed_id, mbed_stek.key_name);

  const Stek sch_stek = Stek::Generate(drbg, 16);
  const Bytes sch_ticket = SChannelCodec().Seal(sch_stek, state, drbg);
  const auto sch_id = ExtractStekIdAuto(sch_ticket);
  ASSERT_TRUE(sch_id.has_value());
  EXPECT_EQ(*sch_id, sch_stek.key_name);
}

TEST(ExtractStekIdAutoTest, RfcTicketsNeverMatchMbedLayout) {
  // RFC 5077 tickets have 64 + 16k total size; the mbedTLS check requires
  // the ciphertext length implied by a 54-byte overhead to be divisible by
  // 16, which is impossible for such sizes — so the auto extractor cannot
  // misclassify. Verify over many random tickets.
  crypto::Drbg drbg(ToBytes("no-confusion"));
  const Stek stek = Stek::Generate(drbg, 16);
  for (int i = 0; i < 100; ++i) {
    TicketState state = SampleState();
    state.issue_time = i;
    const Bytes ticket = Rfc5077Codec().Seal(stek, state, drbg);
    const auto id = ExtractStekIdAuto(ticket);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, stek.key_name) << "iteration " << i;
  }
}

}  // namespace
}  // namespace tlsharm::tls
