// The compromise model: snapshots steal each fleet secret exactly once,
// cache dumps honour liveness, and ReplaySnapshot reproduces the real
// decryptors' verdicts with the closed failure taxonomy.
#include "adversary/compromise.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "scanner/scan_engine.h"
#include "simnet/internet.h"

namespace tlsharm::adversary {
namespace {

constexpr std::size_t kPopulation = 150;
constexpr int kDays = 3;
constexpr std::uint64_t kWorldSeed = 91;
constexpr std::uint64_t kScanSeed = 17;

// One capture-recording scan, shared across the tests in this file.
struct ScanFixture {
  std::unique_ptr<simnet::Internet> net;
  attack::CaptureBufferSink captures;

  ScanFixture() {
    net = std::make_unique<simnet::Internet>(
        simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
    scanner::ScanEngineOptions options;
    options.threads = 2;
    options.capture = &captures;
    scanner::RunShardedDailyScans(*net, kDays, kScanSeed, options);
  }
};

ScanFixture& Fixture() {
  static ScanFixture* fixture = new ScanFixture;
  return *fixture;
}

const std::string& OperatorOf(const simnet::Internet& net,
                              std::uint32_t domain) {
  // The interned accessor: GetDomain returns a materialized value, so a
  // reference into it would dangle.
  return net.DomainOperator(static_cast<simnet::DomainId>(domain));
}

// A profile whose terminators all share one STEK manager, or "".
std::string SharedStekProfile(simnet::Internet& net) {
  std::map<std::string, std::set<simnet::TerminatorId>> fleets;
  for (std::size_t d = 0; d < net.DomainCount(); ++d) {
    const simnet::DomainInfo& info =
        net.GetDomain(static_cast<simnet::DomainId>(d));
    fleets[info.operator_name].insert(info.endpoints.begin(),
                                      info.endpoints.end());
  }
  for (const auto& [name, endpoints] : fleets) {
    if (endpoints.size() < 2) continue;
    std::set<const void*> managers;
    bool ticketed = true;
    for (const simnet::TerminatorId e : endpoints) {
      managers.insert(&net.Terminator(e).Steks());
      ticketed = ticketed && net.Terminator(e).Config().tickets.enabled;
    }
    if (ticketed && managers.size() == 1) return name;
  }
  return "";
}

TEST(CompromiseTest, SharedFleetStekIsStolenOnce) {
  ScanFixture& fx = Fixture();
  const std::string profile = SharedStekProfile(*fx.net);
  ASSERT_FALSE(profile.empty()) << "population has no shared-STEK fleet";
  const CompromisedSecrets secrets = TakeSnapshot(
      *fx.net, {CompromiseVector::kStek, profile,
                scanner::ScanDayStart(kDays - 1)});
  EXPECT_EQ(secrets.steks.size(), 1u)
      << "a fleet-shared key must be one theft";
  EXPECT_FALSE(secrets.steks[0].stek.key_name.empty());
}

TEST(CompromiseTest, GlobalCompromiseCoversEveryProfile) {
  ScanFixture& fx = Fixture();
  const SimTime t = scanner::ScanDayStart(kDays - 1);
  const CompromisedSecrets everyone =
      TakeSnapshot(*fx.net, {CompromiseVector::kStek, "", t});
  const std::string profile = SharedStekProfile(*fx.net);
  ASSERT_FALSE(profile.empty());
  const CompromisedSecrets one =
      TakeSnapshot(*fx.net, {CompromiseVector::kStek, profile, t});
  EXPECT_GE(everyone.steks.size(), one.steks.size());
  EXPECT_GT(everyone.steks.size(), 1u);
}

TEST(CompromiseTest, CacheDumpOnlyHoldsLiveEntries) {
  ScanFixture& fx = Fixture();
  const SimTime t = scanner::ScanDayStart(kDays - 1);
  const CompromisedSecrets secrets =
      TakeSnapshot(*fx.net, {CompromiseVector::kSessionCache, "", t});
  ASSERT_FALSE(secrets.cache_dump.empty())
      << "the scan just populated session caches at t";
  for (const auto& [id, session] : secrets.cache_dump) {
    EXPECT_LE(session.created, t);
    EXPECT_FALSE(id.empty());
    EXPECT_FALSE(session.master_secret.empty());
  }
  // Long after every lifetime expired, the same vector steals nothing.
  const CompromisedSecrets stale = TakeSnapshot(
      *fx.net, {CompromiseVector::kSessionCache, "", t + 365 * kDay});
  EXPECT_TRUE(stale.cache_dump.empty());
}

TEST(CompromiseTest, ReplayClassifiesWithClosedTaxonomy) {
  using attack::DecryptFailureClass;
  ScanFixture& fx = Fixture();
  const SimTime t = scanner::ScanDayStart(kDays - 1);

  const attack::CaptureRecord* invalid = nullptr;
  const attack::CaptureRecord* unticketed = nullptr;
  for (const attack::CaptureRecord& rec : fx.captures.Records()) {
    if (!rec.valid && invalid == nullptr) invalid = &rec;
    if (rec.valid && rec.ticket.empty() && unticketed == nullptr) {
      unticketed = &rec;
    }
  }
  ASSERT_NE(invalid, nullptr);

  const CompromisedSecrets stek =
      TakeSnapshot(*fx.net, {CompromiseVector::kStek, "", t});
  const ReplayOutcome broken = ReplaySnapshot(stek, *invalid);
  EXPECT_FALSE(broken.ok);
  EXPECT_EQ(broken.failure, DecryptFailureClass::kCaptureInvalid);
  if (unticketed != nullptr) {
    const ReplayOutcome bare = ReplaySnapshot(stek, *unticketed);
    EXPECT_FALSE(bare.ok);
    EXPECT_EQ(bare.failure, DecryptFailureClass::kNoTicket);
  }
}

TEST(CompromiseTest, EndOfStudySnapshotsDecryptRecordedTraffic) {
  using attack::DecryptFailureClass;
  ScanFixture& fx = Fixture();
  const SimTime t = scanner::ScanDayStart(kDays - 1);

  // A fleet-wide STEK theft at the end of the study must open at least the
  // tickets issued that day, and every success must recover a real master
  // secret; survivors must carry a STEK-vector failure class.
  const CompromisedSecrets stek =
      TakeSnapshot(*fx.net, {CompromiseVector::kStek, "", t});
  std::size_t opened = 0;
  for (const attack::CaptureRecord& rec : fx.captures.Records()) {
    const ReplayOutcome outcome = ReplaySnapshot(stek, rec);
    if (outcome.ok) {
      ++opened;
      EXPECT_FALSE(outcome.master_secret.empty());
      EXPECT_EQ(outcome.failure, DecryptFailureClass::kNone);
    } else {
      EXPECT_TRUE(outcome.failure == DecryptFailureClass::kCaptureInvalid ||
                  outcome.failure == DecryptFailureClass::kNoTicket ||
                  outcome.failure == DecryptFailureClass::kWrongStek)
          << attack::ToString(outcome.failure);
    }
  }
  EXPECT_GT(opened, 0u);

  // The cache dump decrypts a same-instant connection of its profile.
  std::size_t cache_opened = 0;
  for (const attack::CaptureRecord& rec : fx.captures.Records()) {
    if (!rec.valid || rec.session_id.empty() || rec.time != t) continue;
    const CompromisedSecrets cache = TakeSnapshot(
        *fx.net,
        {CompromiseVector::kSessionCache, OperatorOf(*fx.net, rec.domain), t});
    if (ReplaySnapshot(cache, rec).ok) {
      ++cache_opened;
      break;
    }
  }
  EXPECT_GT(cache_opened, 0u);
}

TEST(CompromiseTest, VectorNamesAreStable) {
  EXPECT_STREQ(ToString(CompromiseVector::kStek), "stek");
  EXPECT_STREQ(ToString(CompromiseVector::kSessionCache), "session_cache");
  EXPECT_STREQ(ToString(CompromiseVector::kDh), "dh");
}

}  // namespace
}  // namespace tlsharm::adversary
