// The harm-curve sweep: partition invariants, canonical JSONL, segment
// round-trip identity, an independent brute-force recount of the cache
// sweep, and the end-of-study snapshot cross-check.
#include "adversary/replay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/compromise.h"
#include "obs/json.h"
#include "scanner/scan_engine.h"
#include "simnet/internet.h"
#include "warehouse/capture.h"

namespace tlsharm::adversary {
namespace {

constexpr std::size_t kPopulation = 150;
constexpr int kDays = 3;
constexpr std::uint64_t kWorldSeed = 91;
constexpr std::uint64_t kScanSeed = 17;

struct SweepFixture {
  std::unique_ptr<simnet::Internet> net;
  attack::CaptureBufferSink captures;
  std::unique_ptr<HarmEngine> engine;
  std::vector<HarmCurve> curves;

  SweepFixture() {
    net = std::make_unique<simnet::Internet>(
        simnet::PaperPopulationSpec(kPopulation), kWorldSeed);
    scanner::ScanEngineOptions options;
    options.threads = 2;
    options.capture = &captures;
    scanner::RunShardedDailyScans(*net, kDays, kScanSeed, options);
    engine = std::make_unique<HarmEngine>(*net);
    for (std::size_t i = 0; i < captures.Records().size(); ++i) {
      engine->Ingest(captures.Days()[i], captures.Records()[i]);
    }
    engine->Seal();
    curves = engine->Sweep();
  }
};

SweepFixture& Fixture() {
  static SweepFixture* fixture = new SweepFixture;
  return *fixture;
}

std::uint64_t SurvivorTotal(const HarmPoint& point) {
  std::uint64_t total = 0;
  for (const std::uint64_t n : point.survivors) total += n;
  return total;
}

TEST(HarmEngineTest, EveryPointPartitionsTheArchive) {
  SweepFixture& fx = Fixture();
  ASSERT_FALSE(fx.curves.empty());
  ASSERT_GT(fx.engine->RowCount(), 0u);
  for (const HarmCurve& curve : fx.curves) {
    ASSERT_EQ(curve.points.size(), fx.engine->CandidateTimes().size());
    SimTime prev = -1;
    for (const HarmPoint& point : curve.points) {
      EXPECT_GT(point.t, prev);
      prev = point.t;
      EXPECT_EQ(point.decryptable + SurvivorTotal(point), point.connections)
          << curve.profile << "/" << ToString(curve.vector);
      EXPECT_LE(point.decryptable_bytes, point.wire_bytes);
      EXPECT_LE(point.decryptable_domains, point.decryptable);
      EXPECT_EQ(point.survivors[0], 0u) << "kNone slot must stay empty";
      if (point.decryptable == 0) {
        EXPECT_EQ(point.oldest_decrypted, -1);
      } else {
        EXPECT_GE(point.oldest_decrypted, 0);
        EXPECT_LE(point.oldest_decrypted, point.t + kDay * kDays);
      }
    }
  }
}

TEST(HarmEngineTest, CurvesCoverEveryProfileAndVectorInOrder) {
  SweepFixture& fx = Fixture();
  const std::vector<std::string> profiles = fx.engine->Profiles();
  ASSERT_EQ(fx.curves.size(), profiles.size() * kCompromiseVectorCount);
  std::size_t i = 0;
  for (const std::string& profile : profiles) {
    for (int v = 0; v < kCompromiseVectorCount; ++v, ++i) {
      EXPECT_EQ(fx.curves[i].profile, profile);
      EXPECT_EQ(static_cast<int>(fx.curves[i].vector), v);
    }
  }
  EXPECT_TRUE(std::is_sorted(profiles.begin(), profiles.end()));
}

TEST(HarmEngineTest, JsonlIsCanonicalIntegerOnlyAndParses) {
  SweepFixture& fx = Fixture();
  const std::string jsonl = RenderHarmCurvesJsonl(fx.curves);
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  std::size_t curve_index = 0;
  std::size_t point_index = 0;
  while (std::getline(lines, line)) {
    ++count;
    obs::JsonValue value;
    ASSERT_TRUE(obs::ParseJson(line, value)) << line;
    const HarmCurve& curve = fx.curves[curve_index];
    const HarmPoint& point = curve.points[point_index];
    ASSERT_NE(value.Find("profile"), nullptr);
    EXPECT_EQ(value.Find("profile")->string, curve.profile);
    EXPECT_EQ(value.Find("vector")->string, ToString(curve.vector));
    EXPECT_EQ(value.Find("t")->integer, point.t);
    EXPECT_EQ(value.Find("connections")->integer,
              static_cast<std::int64_t>(point.connections));
    EXPECT_EQ(value.Find("decryptable")->integer,
              static_cast<std::int64_t>(point.decryptable));
    const obs::JsonValue* ppm = value.Find("decryptable_ppm");
    ASSERT_NE(ppm, nullptr);
    if (point.connections > 0) {
      EXPECT_EQ(ppm->integer,
                static_cast<std::int64_t>(point.decryptable * 1000000 /
                                          point.connections));
    }
    const obs::JsonValue* survivors = value.Find("survivors");
    ASSERT_NE(survivors, nullptr);
    std::uint64_t rendered = 0;
    for (const auto& [name, n] : survivors->object) {
      EXPECT_NE(name, "none");
      rendered += static_cast<std::uint64_t>(n.integer);
      EXPECT_GT(n.integer, 0) << "zero classes must be omitted";
    }
    EXPECT_EQ(rendered, SurvivorTotal(point));
    if (++point_index == curve.points.size()) {
      point_index = 0;
      ++curve_index;
    }
  }
  EXPECT_EQ(curve_index, fx.curves.size());
  std::size_t expected = 0;
  for (const HarmCurve& curve : fx.curves) expected += curve.points.size();
  EXPECT_EQ(count, expected);
  EXPECT_EQ(RenderHarmCurvesJsonl({}), "");
}

TEST(HarmEngineTest, UnknownProfileYieldsEmptyCurve) {
  SweepFixture& fx = Fixture();
  const HarmCurve curve = fx.engine->SweepProfileVector(
      "no-such-operator", CompromiseVector::kDh);
  EXPECT_EQ(curve.profile, "no-such-operator");
  EXPECT_EQ(curve.vector, CompromiseVector::kDh);
  EXPECT_TRUE(curve.points.empty());
}

TEST(HarmEngineTest, SegmentRoundTripFoldsToIdenticalCurves) {
  SweepFixture& fx = Fixture();
  // Re-encode the archive through the columnar capture codec day by day,
  // decode it back, and fold the decoded rows: byte-for-byte the same
  // curves as the live fold.
  std::map<int, std::vector<attack::CaptureRecord>> by_day;
  for (std::size_t i = 0; i < fx.captures.Records().size(); ++i) {
    by_day[fx.captures.Days()[i]].push_back(fx.captures.Records()[i]);
  }
  HarmEngine replayed(*fx.net);
  for (const auto& [day, rows] : by_day) {
    const Bytes segment = warehouse::EncodeCaptureSegment(day, rows);
    int decoded_day = -1;
    std::vector<attack::CaptureRecord> decoded;
    std::string error;
    ASSERT_TRUE(
        warehouse::DecodeCaptureSegment(segment, &decoded_day, &decoded,
                                        &error))
        << error;
    ASSERT_EQ(decoded_day, day);
    ASSERT_EQ(decoded, rows);
    for (const attack::CaptureRecord& rec : decoded) {
      replayed.Ingest(decoded_day, rec);
    }
  }
  replayed.Seal();
  EXPECT_EQ(replayed.Sweep(), fx.curves);
  EXPECT_EQ(RenderHarmCurvesJsonl(replayed.Sweep()),
            RenderHarmCurvesJsonl(fx.curves));
}

TEST(HarmEngineTest, CacheSweepMatchesBruteForceRecount) {
  SweepFixture& fx = Fixture();
  // Recompute every cache liveness window independently from world
  // metadata (lifetime + restart schedule) and recount at each sampled T
  // with a plain O(rows) pass per profile — the two-pointer sweep must
  // agree everywhere.
  struct Window {
    std::string profile;
    SimTime time = 0;
    SimTime end = 0;
  };
  std::vector<Window> windows;
  for (const attack::CaptureRecord& rec : fx.captures.Records()) {
    if (!rec.valid || rec.session_id.empty()) continue;
    const auto id = static_cast<simnet::TerminatorId>(rec.endpoint);
    const server::SessionCacheConfig& cache =
        fx.net->Terminator(id).Config().session_cache;
    if (!cache.enabled || cache.issue_id_without_cache) continue;
    SimTime end = rec.time + cache.lifetime;
    const simnet::Internet::RestartSchedule restarts =
        fx.net->RestartScheduleOf(id);
    if (restarts.every > 0) {
      SimTime next = restarts.first;
      if (next <= rec.time) {
        next = restarts.first +
               ((rec.time - restarts.first) / restarts.every + 1) *
                   restarts.every;
      }
      end = std::min(end, next);
    }
    windows.push_back(
        {fx.net->GetDomain(static_cast<simnet::DomainId>(rec.domain))
             .operator_name,
         rec.time, end});
  }
  ASSERT_FALSE(windows.empty());

  const std::vector<SimTime>& times = fx.engine->CandidateTimes();
  const std::vector<SimTime> sampled = {times.front(),
                                        times[times.size() / 2],
                                        times.back()};
  std::uint64_t live_total = 0;
  for (const HarmCurve& curve : fx.curves) {
    if (curve.vector != CompromiseVector::kSessionCache) continue;
    for (const SimTime t : sampled) {
      const auto it = std::find_if(
          curve.points.begin(), curve.points.end(),
          [t](const HarmPoint& p) { return p.t == t; });
      ASSERT_NE(it, curve.points.end());
      std::uint64_t brute = 0;
      for (const Window& w : windows) {
        if (w.profile == curve.profile && w.time <= t && t < w.end) ++brute;
      }
      EXPECT_EQ(it->decryptable, brute)
          << curve.profile << " at t=" << t;
      live_total += brute;
    }
  }
  EXPECT_GT(live_total, 0u);
}

TEST(HarmEngineTest, StekSweepMatchesEndOfStudySnapshot) {
  SweepFixture& fx = Fixture();
  const SimTime t_end = scanner::ScanDayStart(kDays - 1);
  // The archive-derived sweep and a ground-truth TakeSnapshot +
  // ReplaySnapshot pass must agree exactly at the end of the study for
  // every fleet whose issuing key is observable at T: a single shared
  // STEK manager with a ticketed capture at exactly t_end. (A fleet whose
  // endpoint was last seen before an unobserved rotation legitimately
  // diverges — the adversary cannot know a key it never saw evidence of.)
  std::set<std::string> eligible;
  {
    std::map<std::string, std::set<const void*>> managers;
    std::map<std::string, bool> ticketed_at_end;
    for (std::size_t d = 0; d < fx.net->DomainCount(); ++d) {
      const simnet::DomainInfo& info =
          fx.net->GetDomain(static_cast<simnet::DomainId>(d));
      for (const simnet::TerminatorId e : info.endpoints) {
        managers[info.operator_name].insert(&fx.net->Terminator(e).Steks());
      }
    }
    for (const attack::CaptureRecord& rec : fx.captures.Records()) {
      if (rec.valid && !rec.ticket.empty() && rec.time == t_end) {
        ticketed_at_end
            [fx.net->GetDomain(static_cast<simnet::DomainId>(rec.domain))
                 .operator_name] = true;
      }
    }
    for (const auto& [name, set] : managers) {
      if (set.size() == 1 && ticketed_at_end[name]) eligible.insert(name);
    }
  }
  ASSERT_FALSE(eligible.empty());
  std::size_t checked = 0;
  for (const std::string& profile : eligible) {
    const HarmCurve curve =
        fx.engine->SweepProfileVector(profile, CompromiseVector::kStek);
    const auto it = std::find_if(
        curve.points.begin(), curve.points.end(),
        [t_end](const HarmPoint& p) { return p.t == t_end; });
    ASSERT_NE(it, curve.points.end());
    const CompromisedSecrets secrets =
        TakeSnapshot(*fx.net, {CompromiseVector::kStek, profile, t_end});
    std::uint64_t replayed = 0;
    for (const attack::CaptureRecord& rec : fx.captures.Records()) {
      if (fx.net->GetDomain(static_cast<simnet::DomainId>(rec.domain))
              .operator_name != profile) {
        continue;
      }
      if (ReplaySnapshot(secrets, rec).ok) ++replayed;
    }
    EXPECT_EQ(it->decryptable, replayed) << profile;
    if (replayed > 0) ++checked;
  }
  EXPECT_GT(checked, 0u) << "no profile decrypted anything at end of study";
}

}  // namespace
}  // namespace tlsharm::adversary
