#include "crypto/simec61.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tlsharm::crypto {
namespace {

TEST(SimEc61Test, LadderScalarOneIsIdentityOnX) {
  // 1 * P has the same x-coordinate as P.
  EXPECT_EQ(SimEc61Group::Ladder(1, 9), 9u);
  EXPECT_EQ(SimEc61Group::Ladder(1, 123456789), 123456789u);
}

TEST(SimEc61Test, LadderIsCommutativeInScalars) {
  // x(a * (b * P)) == x(b * (a * P)) — the Diffie-Hellman property.
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = (rng.NextU64() & ((1ULL << 61) - 1)) | 2;
    const std::uint64_t b = (rng.NextU64() & ((1ULL << 61) - 1)) | 2;
    const std::uint64_t ap = SimEc61Group::Ladder(a, 9);
    const std::uint64_t bp = SimEc61Group::Ladder(b, 9);
    EXPECT_EQ(SimEc61Group::Ladder(a, bp), SimEc61Group::Ladder(b, ap))
        << "a=" << a << " b=" << b;
  }
}

TEST(SimEc61Test, LadderScalarMultiplicationComposes) {
  // x((a*b) * P) == x(a * (b * P)) when a*b fits in the scalar range.
  const std::uint64_t a = 12345, b = 6789;
  const std::uint64_t bp = SimEc61Group::Ladder(b, 9);
  EXPECT_EQ(SimEc61Group::Ladder(a * b, 9), SimEc61Group::Ladder(a, bp));
}

TEST(SimEc61Test, KeyAgreement) {
  const SimEc61Group group;
  Drbg d1(ToBytes("a")), d2(ToBytes("b"));
  const KexKeyPair a = group.GenerateKeyPair(d1);
  const KexKeyPair b = group.GenerateKeyPair(d2);
  const auto s1 = group.SharedSecret(a.private_key, b.public_value);
  const auto s2 = group.SharedSecret(b.private_key, a.public_value);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(s1->size(), 8u);
}

TEST(SimEc61Test, DistinctSeedsDistinctKeys) {
  const SimEc61Group group;
  Drbg d1(ToBytes("a")), d2(ToBytes("b"));
  const KexKeyPair a = group.GenerateKeyPair(d1);
  const KexKeyPair b = group.GenerateKeyPair(d2);
  EXPECT_NE(a.public_value, b.public_value);
}

TEST(SimEc61Test, RejectsDegenerateInputs) {
  const SimEc61Group group;
  Bytes zero(8, 0);
  Bytes priv(8, 0);
  priv[7] = 5;
  EXPECT_FALSE(group.SharedSecret(priv, zero).has_value());
  EXPECT_FALSE(group.SharedSecret(priv, Bytes(7, 1)).has_value());
  // Peer value >= p rejected.
  Bytes too_big;
  AppendUint(too_big, (1ULL << 61) - 1, 8);
  EXPECT_FALSE(group.SharedSecret(priv, too_big).has_value());
}

TEST(SimEc61Test, DeterministicFromSeed) {
  const SimEc61Group group;
  Drbg d1(ToBytes("same")), d2(ToBytes("same"));
  EXPECT_EQ(group.GenerateKeyPair(d1).public_value,
            group.GenerateKeyPair(d2).public_value);
}

}  // namespace
}  // namespace tlsharm::crypto
