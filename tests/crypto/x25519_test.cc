// X25519 against RFC 7748 §5.2 and §6.1 test vectors.
#include "crypto/x25519.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace tlsharm::crypto {
namespace {

TEST(X25519Test, Rfc7748Vector1) {
  const Bytes scalar = MustHexDecode(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes u = MustHexDecode(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(HexEncode(X25519ScalarMult(scalar, u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748Vector2) {
  const Bytes scalar = MustHexDecode(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const Bytes u = MustHexDecode(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(HexEncode(X25519ScalarMult(scalar, u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Test, Rfc7748DiffieHellman) {
  // §6.1: Alice/Bob key agreement.
  const Bytes alice_priv = MustHexDecode(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes bob_priv = MustHexDecode(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  Bytes base(32, 0);
  base[0] = 9;
  const Bytes alice_pub = X25519ScalarMult(alice_priv, base);
  const Bytes bob_pub = X25519ScalarMult(bob_priv, base);
  EXPECT_EQ(HexEncode(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(HexEncode(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  const Bytes k1 = X25519ScalarMult(alice_priv, bob_pub);
  const Bytes k2 = X25519ScalarMult(bob_priv, alice_pub);
  EXPECT_EQ(HexEncode(k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
  EXPECT_EQ(k1, k2);
}

TEST(X25519Test, GroupInterface) {
  const X25519Group group;
  Drbg d1(ToBytes("client entropy")), d2(ToBytes("server entropy"));
  const KexKeyPair a = group.GenerateKeyPair(d1);
  const KexKeyPair b = group.GenerateKeyPair(d2);
  EXPECT_EQ(a.public_value.size(), group.PublicValueSize());
  const auto s1 = group.SharedSecret(a.private_key, b.public_value);
  const auto s2 = group.SharedSecret(b.private_key, a.public_value);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s1, *s2);
}

TEST(X25519Test, RejectsWrongSizeInputs) {
  const X25519Group group;
  EXPECT_FALSE(group.SharedSecret(Bytes(31, 1), Bytes(32, 2)).has_value());
  EXPECT_FALSE(group.SharedSecret(Bytes(32, 1), Bytes(33, 2)).has_value());
}

TEST(X25519Test, RejectsAllZeroSharedSecret) {
  const X25519Group group;
  // u = 0 is a low-order point whose shared secret is all zeros.
  const Bytes zero_u(32, 0);
  EXPECT_FALSE(group.SharedSecret(Bytes(32, 0x42), zero_u).has_value());
}

}  // namespace
}  // namespace tlsharm::crypto
