#include "crypto/biguint.h"

#include <gtest/gtest.h>

#include "util/hex.h"
#include "util/rng.h"

namespace tlsharm::crypto {
namespace {

TEST(BigUIntTest, HexRoundTrip) {
  const char* hex = "fbb557b1a3b5cdd3ef0adacabd9ae4fddaf1cae7f02e4e3b5bd727d58524cfe7";
  EXPECT_EQ(BigUInt::FromHex(hex).ToHex(), hex);
  EXPECT_EQ(BigUInt::FromHex("0").ToHex(), "0");
  EXPECT_EQ(BigUInt::FromHex("1").ToHex(), "1");
  EXPECT_EQ(BigUInt::FromHex("0x10").ToHex(), "10");
}

TEST(BigUIntTest, BytesRoundTrip) {
  const Bytes b = MustHexDecode("0123456789abcdef0011");
  const BigUInt v = BigUInt::FromBytes(b);
  EXPECT_EQ(v.ToBytes(10), b);
  EXPECT_EQ(HexEncode(v.ToBytes()), "0123456789abcdef0011");
}

TEST(BigUIntTest, LeadingZeroBytesNormalize) {
  const BigUInt v = BigUInt::FromBytes(MustHexDecode("0000000005"));
  EXPECT_EQ(v, BigUInt::FromU64(5));
  EXPECT_EQ(v.ToBytes(4), MustHexDecode("00000005"));
}

TEST(BigUIntTest, AddCarriesAcrossLimbs) {
  const BigUInt a = BigUInt::FromHex("ffffffffffffffffffffffffffffffff");
  const BigUInt sum = BigUInt::Add(a, BigUInt::FromU64(1));
  EXPECT_EQ(sum.ToHex(), "100000000000000000000000000000000");
}

TEST(BigUIntTest, SubBorrowsAcrossLimbs) {
  const BigUInt a = BigUInt::FromHex("100000000000000000000000000000000");
  const BigUInt diff = BigUInt::Sub(a, BigUInt::FromU64(1));
  EXPECT_EQ(diff.ToHex(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigUIntTest, MulMatchesKnownProduct) {
  const BigUInt a = BigUInt::FromHex("ffffffffffffffff");
  const BigUInt b = BigUInt::FromHex("ffffffffffffffff");
  EXPECT_EQ(BigUInt::Mul(a, b).ToHex(), "fffffffffffffffe0000000000000001");
}

TEST(BigUIntTest, ShiftLeftRightInverse) {
  const BigUInt a = BigUInt::FromHex("deadbeefcafebabe1234");
  EXPECT_EQ(a.ShiftLeft1().ShiftRight1(), a);
}

TEST(BigUIntTest, CompareOrdering) {
  const BigUInt small = BigUInt::FromU64(5);
  const BigUInt big = BigUInt::FromHex("10000000000000000");
  EXPECT_LT(BigUInt::Compare(small, big), 0);
  EXPECT_GT(BigUInt::Compare(big, small), 0);
  EXPECT_EQ(BigUInt::Compare(big, big), 0);
}

TEST(BigUIntTest, BitLength) {
  EXPECT_EQ(BigUInt().BitLength(), 0u);
  EXPECT_EQ(BigUInt::FromU64(1).BitLength(), 1u);
  EXPECT_EQ(BigUInt::FromU64(255).BitLength(), 8u);
  EXPECT_EQ(BigUInt::FromHex("10000000000000000").BitLength(), 65u);
}

TEST(MontgomeryTest, MulModSmallNumbers) {
  const Montgomery m(BigUInt::FromU64(97));
  EXPECT_EQ(m.MulMod(BigUInt::FromU64(13), BigUInt::FromU64(20)),
            BigUInt::FromU64(260 % 97));
  EXPECT_EQ(m.AddMod(BigUInt::FromU64(90), BigUInt::FromU64(20)),
            BigUInt::FromU64(13));
  EXPECT_EQ(m.SubMod(BigUInt::FromU64(5), BigUInt::FromU64(20)),
            BigUInt::FromU64(82));
}

TEST(MontgomeryTest, PowModFermat) {
  // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
  const BigUInt p = BigUInt::FromHex("11c575d30bfa78ff");  // sim61 prime
  const Montgomery m(p);
  const BigUInt exp = BigUInt::Sub(p, BigUInt::FromU64(1));
  for (std::uint64_t base : {2ull, 3ull, 12345ull, 987654321ull}) {
    EXPECT_EQ(m.PowMod(BigUInt::FromU64(base), exp), BigUInt::FromU64(1))
        << "base " << base;
  }
}

TEST(MontgomeryTest, PowModKnownValue) {
  // 3^20 = 3486784401; mod 1000003 (odd prime) = computed independently.
  const Montgomery m(BigUInt::FromU64(1000003));
  EXPECT_EQ(m.PowMod(BigUInt::FromU64(3), BigUInt::FromU64(20)),
            BigUInt::FromU64(3486784401ULL % 1000003));
}

TEST(MontgomeryTest, ReduceBytesMatchesReduce) {
  const Montgomery m(BigUInt::FromHex("8e2bae985fd3c7f"));
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Bytes b = rng.RandomBytes(32);
    EXPECT_EQ(m.ReduceBytes(b), m.Reduce(BigUInt::FromBytes(b)));
  }
}

TEST(MontgomeryTest, ReduceLargeValue) {
  const BigUInt p = BigUInt::FromU64(97);
  const Montgomery m(p);
  // 10^20 mod 97: compute via PowMod for cross-check.
  const BigUInt big = BigUInt::Mul(BigUInt::FromHex("ffffffffffffffff"),
                                   BigUInt::FromHex("123456789"));
  const BigUInt reduced = m.Reduce(big);
  EXPECT_LT(BigUInt::Compare(reduced, p), 0);
  // Verify by reconstructing with MulMod-consistency: (big mod p) should
  // satisfy big ≡ reduced, so big - reduced divisible by 97. Check via
  // repeated: (big mod p) == ((big mod p) + p) mod p trivially; instead test
  // homomorphism: Reduce(a*b) == MulMod(Reduce(a), Reduce(b)).
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const BigUInt a = BigUInt::FromBytes(rng.RandomBytes(16));
    const BigUInt b = BigUInt::FromBytes(rng.RandomBytes(16));
    EXPECT_EQ(m.Reduce(BigUInt::Mul(a, b)), m.MulMod(m.Reduce(a), m.Reduce(b)));
  }
}

TEST(MontgomeryTest, MulModAgreesWithSchoolbookFor128Bit) {
  // Cross-check MulMod against Mul+Reduce on random inputs.
  const Montgomery m(BigUInt::FromHex(
      "fbb557b1a3b5cdd3ef0adacabd9ae4fddaf1cae7f02e4e3b5bd727d58524cfe7"));
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const BigUInt a = m.Reduce(BigUInt::FromBytes(rng.RandomBytes(40)));
    const BigUInt b = m.Reduce(BigUInt::FromBytes(rng.RandomBytes(40)));
    EXPECT_EQ(m.MulMod(a, b), m.Reduce(BigUInt::Mul(a, b)));
  }
}

TEST(PrimalityTest, KnownPrimesAndComposites) {
  EXPECT_TRUE(ProbablyPrime(BigUInt::FromU64(2)));
  EXPECT_TRUE(ProbablyPrime(BigUInt::FromU64(3)));
  EXPECT_TRUE(ProbablyPrime(BigUInt::FromU64(97)));
  EXPECT_TRUE(ProbablyPrime(BigUInt::FromU64((1ULL << 61) - 1)));  // Mersenne
  EXPECT_FALSE(ProbablyPrime(BigUInt::FromU64(1)));
  EXPECT_FALSE(ProbablyPrime(BigUInt::FromU64(0)));
  EXPECT_FALSE(ProbablyPrime(BigUInt::FromU64(100)));
  EXPECT_FALSE(ProbablyPrime(BigUInt::FromU64(561)));   // Carmichael
  EXPECT_FALSE(ProbablyPrime(BigUInt::FromU64(6601)));  // Carmichael
}

TEST(PrimalityTest, EmbeddedGroupParametersAreSafePrimes) {
  const BigUInt p61 = BigUInt::FromHex("11c575d30bfa78ff");
  const BigUInt q61 = BigUInt::FromHex("8e2bae985fd3c7f");
  EXPECT_TRUE(ProbablyPrime(p61));
  EXPECT_TRUE(ProbablyPrime(q61));
  EXPECT_EQ(BigUInt::Add(q61.ShiftLeft1(), BigUInt::FromU64(1)), p61);

  const BigUInt p256 = BigUInt::FromHex(
      "fbb557b1a3b5cdd3ef0adacabd9ae4fddaf1cae7f02e4e3b5bd727d58524cfe7");
  const BigUInt q256 = BigUInt::FromHex(
      "7ddaabd8d1dae6e9f7856d655ecd727eed78e573f817271dadeb93eac29267f3");
  EXPECT_TRUE(ProbablyPrime(p256));
  EXPECT_TRUE(ProbablyPrime(q256));
  EXPECT_EQ(BigUInt::Add(q256.ShiftLeft1(), BigUInt::FromU64(1)), p256);
}

}  // namespace
}  // namespace tlsharm::crypto
