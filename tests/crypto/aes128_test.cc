// AES-128 against FIPS 197 / NIST SP 800-38A vectors, plus CBC/PKCS#7
// round-trip and tamper properties.
#include "crypto/aes128.h"

#include <gtest/gtest.h>

#include "util/hex.h"
#include "util/rng.h"

namespace tlsharm::crypto {
namespace {

TEST(Aes128Test, Fips197Appendix) {
  // FIPS 197 Appendix B example.
  const Bytes key = MustHexDecode("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = MustHexDecode("3243f6a8885a308d313198a2e0370734");
  const Aes128 cipher(ToAesKey(key));
  std::uint8_t out[16];
  cipher.EncryptBlock(pt.data(), out);
  EXPECT_EQ(HexEncode(ByteView(out, 16)), "3925841d02dc09fbdc118597196a0b32");
  std::uint8_t back[16];
  cipher.DecryptBlock(out, back);
  EXPECT_EQ(HexEncode(ByteView(back, 16)), HexEncode(pt));
}

TEST(Aes128Test, Sp80038aEcbVectors) {
  const Bytes key = MustHexDecode("2b7e151628aed2a6abf7158809cf4f3c");
  const Aes128 cipher(ToAesKey(key));
  const struct {
    const char* pt;
    const char* ct;
  } cases[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
  };
  for (const auto& c : cases) {
    const Bytes pt = MustHexDecode(c.pt);
    std::uint8_t out[16];
    cipher.EncryptBlock(pt.data(), out);
    EXPECT_EQ(HexEncode(ByteView(out, 16)), c.ct);
  }
}

TEST(Aes128Test, Sp80038aCbcFirstBlock) {
  // SP 800-38A F.2.1 CBC-AES128.Encrypt, first block only (our CBC appends
  // PKCS#7 padding, so compare the leading 16 bytes).
  const Bytes key = MustHexDecode("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = MustHexDecode("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = MustHexDecode("6bc1bee22e409f96e93d7e117393172a");
  const Bytes ct = Aes128CbcEncrypt(ToAesKey(key), ToAesBlock(iv), pt);
  ASSERT_GE(ct.size(), 16u);
  EXPECT_EQ(HexEncode(ByteView(ct.data(), 16)),
            "7649abac8119b246cee98e9b12e9197d");
}

TEST(Aes128Test, CbcRoundTripVariousLengths) {
  Rng rng(7);
  const Aes128Key key = ToAesKey(rng.RandomBytes(16));
  const AesBlock iv = ToAesBlock(rng.RandomBytes(16));
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 1000u}) {
    const Bytes pt = rng.RandomBytes(len);
    const Bytes ct = Aes128CbcEncrypt(key, iv, pt);
    EXPECT_EQ(ct.size() % kAesBlockSize, 0u);
    EXPECT_GT(ct.size(), pt.size());  // padding always added
    const auto back = Aes128CbcDecrypt(key, iv, ct);
    ASSERT_TRUE(back.has_value()) << "len " << len;
    EXPECT_EQ(*back, pt);
  }
}

TEST(Aes128Test, CbcDecryptRejectsWrongKey) {
  Rng rng(8);
  const Aes128Key key = ToAesKey(rng.RandomBytes(16));
  const Aes128Key wrong = ToAesKey(rng.RandomBytes(16));
  const AesBlock iv = ToAesBlock(rng.RandomBytes(16));
  const Bytes pt = ToBytes("session state that must stay secret");
  const Bytes ct = Aes128CbcEncrypt(key, iv, pt);
  const auto back = Aes128CbcDecrypt(wrong, iv, ct);
  // Wrong key either fails padding or yields different plaintext.
  if (back.has_value()) EXPECT_NE(*back, pt);
}

TEST(Aes128Test, CbcDecryptRejectsBadLength) {
  Rng rng(9);
  const Aes128Key key = ToAesKey(rng.RandomBytes(16));
  const AesBlock iv = ToAesBlock(rng.RandomBytes(16));
  const Bytes short_ct = rng.RandomBytes(15);
  EXPECT_FALSE(Aes128CbcDecrypt(key, iv, short_ct).has_value());
  EXPECT_FALSE(Aes128CbcDecrypt(key, iv, Bytes{}).has_value());
}

TEST(Aes128Test, CbcDifferentIvDifferentCiphertext) {
  Rng rng(10);
  const Aes128Key key = ToAesKey(rng.RandomBytes(16));
  const Bytes pt = ToBytes("identical plaintext");
  const Bytes ct1 = Aes128CbcEncrypt(key, ToAesBlock(rng.RandomBytes(16)), pt);
  const Bytes ct2 = Aes128CbcEncrypt(key, ToAesBlock(rng.RandomBytes(16)), pt);
  EXPECT_NE(ct1, ct2);
}

// Property sweep: round-trip for every padding remainder.
class AesCbcPaddingTest : public ::testing::TestWithParam<int> {};

TEST_P(AesCbcPaddingTest, RoundTrip) {
  Rng rng(100 + GetParam());
  const Aes128Key key = ToAesKey(rng.RandomBytes(16));
  const AesBlock iv = ToAesBlock(rng.RandomBytes(16));
  const Bytes pt = rng.RandomBytes(static_cast<std::size_t>(GetParam()));
  const auto back = Aes128CbcDecrypt(key, iv, Aes128CbcEncrypt(key, iv, pt));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
}

INSTANTIATE_TEST_SUITE_P(AllRemainders, AesCbcPaddingTest,
                         ::testing::Range(0, 33));

}  // namespace
}  // namespace tlsharm::crypto
