// HMAC-SHA-256 against RFC 4231 test cases.
#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace tlsharm::crypto {
namespace {

std::string MacHex(ByteView key, ByteView data) {
  const Sha256Digest d = HmacSha256Mac(key, data);
  return HexEncode(ByteView(d.data(), d.size()));
}

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(MacHex(key, ToBytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(
      MacHex(ToBytes("Jefe"), ToBytes("what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(MacHex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case4) {
  const Bytes key = MustHexDecode("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const Bytes data(50, 0xcd);
  EXPECT_EQ(MacHex(key, data),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(MacHex(key, ToBytes("Test Using Larger Than Block-Size Key - "
                                "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case7LongKeyAndData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      MacHex(key,
             ToBytes("This is a test using a larger than block-size key and a "
                     "larger than block-size data. The key needs to be hashed "
                     "before being used by the HMAC algorithm.")),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacTest, IncrementalMatchesOneShot) {
  const Bytes key = ToBytes("key-material");
  const Bytes data = ToBytes("message to authenticate in pieces");
  HmacSha256 ctx(key);
  ctx.Update(ByteView(data.data(), 10));
  ctx.Update(ByteView(data.data() + 10, data.size() - 10));
  const Sha256Digest inc = ctx.Finish();
  const Sha256Digest one = HmacSha256Mac(key, data);
  EXPECT_EQ(HexEncode(ByteView(inc.data(), inc.size())),
            HexEncode(ByteView(one.data(), one.size())));
}

TEST(HmacTest, ResetRestartsWithSameKey) {
  const Bytes key = ToBytes("k");
  HmacSha256 ctx(key);
  ctx.Update(ToBytes("first"));
  (void)ctx.Finish();
  ctx.Reset();
  ctx.Update(ToBytes("second"));
  const Sha256Digest again = ctx.Finish();
  const Sha256Digest fresh = HmacSha256Mac(key, ToBytes("second"));
  EXPECT_EQ(HexEncode(ByteView(again.data(), again.size())),
            HexEncode(ByteView(fresh.data(), fresh.size())));
}

TEST(HmacTest, DifferentKeysDiffer) {
  const Bytes data = ToBytes("same data");
  EXPECT_NE(MacHex(ToBytes("key1"), data), MacHex(ToBytes("key2"), data));
}

}  // namespace
}  // namespace tlsharm::crypto
