// Differential known-answer tests: every optimized crypto path against its
// naive reference counterpart, over random inputs and the adversarial edge
// cases (exponents 0, 1, powers of two, group order +/- 1; messages that
// straddle the SHA-256 padding boundary). These are the correctness gate
// for the windowed Montgomery exponentiation, the midstate-cached HMAC,
// the single-pass SHA-256 padding and the PRF memo: all must be
// byte-identical to the originals for every input.
#include <gtest/gtest.h>

#include "crypto/biguint.h"
#include "crypto/drbg.h"
#include "crypto/ffdh.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/tuning.h"
#include "util/hex.h"

namespace tlsharm::crypto {
namespace {

// Restores the global reference-crypto flag on scope exit, so a failing
// assertion can't leak reference mode into later tests.
class ReferenceGuard {
 public:
  ReferenceGuard() : saved_(ReferenceCryptoEnabled()) {}
  ~ReferenceGuard() { SetReferenceCrypto(saved_); }

 private:
  bool saved_;
};

std::vector<BigUInt> EdgeExponents(const BigUInt& q) {
  std::vector<BigUInt> exps;
  exps.push_back(BigUInt());  // zero
  exps.push_back(BigUInt::FromU64(1));
  exps.push_back(BigUInt::FromU64(2));
  // Powers of two: a single set bit at every interesting alignment —
  // window boundaries, limb boundaries.
  for (const std::size_t bit : {1u, 3u, 4u, 7u, 31u, 63u, 64u, 127u}) {
    if (bit + 1 >= q.BitLength()) continue;
    BigUInt e = BigUInt::FromU64(1);
    for (std::size_t i = 0; i < bit; ++i) e = e.ShiftLeft1();
    exps.push_back(e);
  }
  // Group order and its neighbours: maximal runs of set/clear low bits.
  exps.push_back(BigUInt::Sub(q, BigUInt::FromU64(1)));
  exps.push_back(q);
  exps.push_back(BigUInt::Add(q, BigUInt::FromU64(1)));
  return exps;
}

void CheckGroup(const FfdhParams& params) {
  ReferenceGuard guard;
  SetReferenceCrypto(false);

  const BigUInt p = BigUInt::FromHex(params.p_hex);
  const BigUInt q = BigUInt::FromHex(params.q_hex);
  const BigUInt g = BigUInt::FromU64(params.g);
  const Montgomery mont(p);
  const Montgomery::FixedBaseTable g_table =
      mont.PrecomputeFixedBase(g, q.BitLength());

  Drbg drbg(ToBytes("differential-modexp"));
  std::vector<BigUInt> bases = {BigUInt(), BigUInt::FromU64(1), g,
                                BigUInt::Sub(p, BigUInt::FromU64(1))};
  const Montgomery mont_q(q);
  for (int i = 0; i < 8; ++i) {
    bases.push_back(mont.ReduceBytes(drbg.Generate(p.ToBytes().size() + 8)));
  }
  std::vector<BigUInt> exps = EdgeExponents(q);
  for (int i = 0; i < 8; ++i) {
    exps.push_back(mont_q.ReduceBytes(drbg.Generate(q.ToBytes().size() + 8)));
  }

  for (const BigUInt& base : bases) {
    const Montgomery::OddPowers odd = mont.PrecomputeOddPowers(base);
    const Montgomery::WindowTable win = mont.PrecomputeWindowTable(base);
    for (const BigUInt& e : exps) {
      const BigUInt want = mont.PowModReference(base, e);
      // Dispatching entry point, optimized mode (covers the single-limb
      // sliding-window path for sim61 and the multi-limb path for sim256).
      EXPECT_EQ(mont.PowMod(base, e), want)
          << base.ToHex() << "^" << e.ToHex();
      EXPECT_EQ(mont.PowModWindowed(odd, e), want)
          << base.ToHex() << "^" << e.ToHex();
      // Shamir double exponentiation against two independent references.
      const BigUInt eb = exps[(&e - exps.data() + 1) % exps.size()];
      const Montgomery::WindowTable wg = mont.PrecomputeWindowTable(g);
      EXPECT_EQ(mont.PowModDouble(win, e, wg, eb),
                mont.MulMod(want, mont.PowModReference(g, eb)))
          << base.ToHex() << "^" << e.ToHex() << " * g^" << eb.ToHex();
    }
  }
  // Fixed-base: exponents must fit the table width.
  for (const BigUInt& e : exps) {
    if (e.BitLength() > g_table.MaxExpBits()) continue;
    EXPECT_EQ(mont.PowModFixedBase(g_table, e), mont.PowModReference(g, e))
        << "g^" << e.ToHex();
  }
  // And the dispatching entry point in reference mode is the reference.
  SetReferenceCrypto(true);
  EXPECT_EQ(mont.PowMod(g, exps.back()),
            mont.PowModReference(g, exps.back()));
}

TEST(DifferentialModexp, Sim61GroupAllPathsMatchReference) {
  CheckGroup(FfdhSim61Params());
}

TEST(DifferentialModexp, Sim256GroupAllPathsMatchReference) {
  CheckGroup(FfdhSim256Params());
}

// --- HMAC midstate caching vs the naive construction -----------------------

struct Rfc4231Case {
  Bytes key;
  Bytes data;
  const char* mac_hex;
};

std::vector<Rfc4231Case> Rfc4231Cases() {
  return {
      {Bytes(20, 0x0b), ToBytes("Hi There"),
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
      {ToBytes("Jefe"), ToBytes("what do ya want for nothing?"),
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
      {Bytes(20, 0xaa), Bytes(50, 0xdd),
       "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
      {MustHexDecode("0102030405060708090a0b0c0d0e0f10111213141516171819"),
       Bytes(50, 0xcd),
       "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"},
      {Bytes(131, 0xaa),
       ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"),
       "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
      {Bytes(131, 0xaa),
       ToBytes("This is a test using a larger than block-size key and a "
               "larger than block-size data. The key needs to be hashed "
               "before being used by the HMAC algorithm."),
       "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"},
  };
}

TEST(DifferentialHmac, MidstateMatchesReferenceOnRfc4231Vectors) {
  ReferenceGuard guard;
  SetReferenceCrypto(false);
  for (const Rfc4231Case& c : Rfc4231Cases()) {
    const Sha256Digest ref = ReferenceHmacSha256Mac(c.key, c.data);
    EXPECT_EQ(HexEncode(ByteView(ref.data(), ref.size())), c.mac_hex);
    // Midstate-cached context, first use and after Reset.
    HmacSha256 ctx(c.key);
    ctx.Update(c.data);
    const Sha256Digest first = ctx.Finish();
    ctx.Reset();
    ctx.Update(c.data);
    const Sha256Digest again = ctx.Finish();
    EXPECT_EQ(first, ref);
    EXPECT_EQ(again, ref);
    EXPECT_EQ(HmacSha256Mac(c.key, c.data), ref);
  }
}

TEST(DifferentialHmac, MidstateMatchesReferenceOnRandomLengths) {
  ReferenceGuard guard;
  SetReferenceCrypto(false);
  Drbg drbg(ToBytes("differential-hmac"));
  for (std::size_t key_len : {0u, 1u, 31u, 32u, 63u, 64u, 65u, 131u}) {
    const Bytes key = drbg.Generate(key_len);
    for (std::size_t msg_len = 0; msg_len < 130; msg_len += 7) {
      const Bytes msg = drbg.Generate(msg_len);
      EXPECT_EQ(HmacSha256Mac(key, msg), ReferenceHmacSha256Mac(key, msg))
          << "key " << key_len << "B, msg " << msg_len << "B";
    }
  }
}

// --- SHA-256 single-pass padding vs the byte-at-a-time original -------------

TEST(DifferentialSha256, OptimizedPaddingMatchesReferenceAllLengths) {
  ReferenceGuard guard;
  Drbg drbg(ToBytes("differential-sha"));
  // 0..130 covers both padding branches (one and two tail blocks) and
  // every buffer fill level on both sides of the 56-byte threshold.
  for (std::size_t len = 0; len <= 130; ++len) {
    const Bytes msg = drbg.Generate(len == 0 ? 1 : len);
    const ByteView view(msg.data(), len);
    SetReferenceCrypto(true);
    const Sha256Digest ref = Sha256Hash(view);
    SetReferenceCrypto(false);
    const Sha256Digest opt = Sha256Hash(view);
    EXPECT_EQ(opt, ref) << "length " << len;
  }
}

// --- TLS 1.2 PRF: midstate chain + memo vs the naive P_SHA256 ---------------

TEST(DifferentialPrf, OptimizedMatchesReferenceIncludingMemoHits) {
  ReferenceGuard guard;
  Drbg drbg(ToBytes("differential-prf"));
  for (std::size_t out_len : {1u, 12u, 32u, 48u, 104u, 200u}) {
    const Bytes secret = drbg.Generate(48);
    const Bytes seed = drbg.Generate(64);
    SetReferenceCrypto(true);
    const Bytes ref = Tls12Prf(secret, "key expansion", seed, out_len);
    SetReferenceCrypto(false);
    // First call computes and memoizes; second call is a memo hit. Both
    // must equal the reference.
    EXPECT_EQ(Tls12Prf(secret, "key expansion", seed, out_len), ref);
    EXPECT_EQ(Tls12Prf(secret, "key expansion", seed, out_len), ref);
  }
}

}  // namespace
}  // namespace tlsharm::crypto
