// SHA-256 against FIPS 180-4 / NIST CAVP vectors.
#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace tlsharm::crypto {
namespace {

std::string HashHex(ByteView data) {
  const Sha256Digest d = Sha256Hash(data);
  return HexEncode(ByteView(d.data(), d.size()));
}

TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(HashHex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const Bytes msg = ToBytes("abc");
  EXPECT_EQ(HashHex(msg),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const Bytes msg =
      ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(HashHex(msg),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  const Sha256Digest d = ctx.Finish();
  EXPECT_EQ(HexEncode(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes msg = ToBytes("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.Update(ByteView(msg.data(), split));
    ctx.Update(ByteView(msg.data() + split, msg.size() - split));
    const Sha256Digest d = ctx.Finish();
    EXPECT_EQ(HexEncode(ByteView(d.data(), d.size())),
              "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592")
        << "split at " << split;
  }
}

TEST(Sha256Test, ResetReusesContext) {
  Sha256 ctx;
  ctx.Update(ToBytes("garbage"));
  ctx.Reset();
  ctx.Update(ToBytes("abc"));
  const Sha256Digest d = ctx.Finish();
  EXPECT_EQ(HexEncode(ByteView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Exact block-boundary lengths (55/56/64 bytes) exercise the padding logic.
struct PaddingCase {
  std::size_t len;
};
class Sha256PaddingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256PaddingTest, IncrementalEqualsOneShotAroundBlockBoundary) {
  const std::size_t len = GetParam();
  Bytes msg(len);
  for (std::size_t i = 0; i < len; ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const Sha256Digest one_shot = Sha256Hash(msg);
  Sha256 ctx;
  for (std::size_t i = 0; i < len; ++i) ctx.Update(ByteView(&msg[i], 1));
  const Sha256Digest bytewise = ctx.Finish();
  EXPECT_EQ(HexEncode(ByteView(one_shot.data(), one_shot.size())),
            HexEncode(ByteView(bytewise.data(), bytewise.size())));
}

INSTANTIATE_TEST_SUITE_P(BoundaryLengths, Sha256PaddingTest,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 121, 127, 128, 129, 255,
                                           256));

}  // namespace
}  // namespace tlsharm::crypto
