#include "crypto/drbg.h"

#include <gtest/gtest.h>

#include <set>

namespace tlsharm::crypto {
namespace {

TEST(DrbgTest, DeterministicFromSeed) {
  Drbg a(ToBytes("seed")), b(ToBytes("seed"));
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(DrbgTest, DifferentSeedsDiverge) {
  Drbg a(ToBytes("seed-1")), b(ToBytes("seed-2"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, SequentialOutputsDiffer) {
  Drbg d(ToBytes("seed"));
  EXPECT_NE(d.Generate(32), d.Generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  Drbg a(ToBytes("seed")), b(ToBytes("seed"));
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed(ToBytes("extra entropy"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, GenerateExactLengths) {
  Drbg d(ToBytes("seed"));
  for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 100u}) {
    EXPECT_EQ(d.Generate(n).size(), n);
  }
}

TEST(DrbgTest, UniformIntInRange) {
  Drbg d(ToBytes("seed"));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = d.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  // All residues should appear over 200 draws.
  EXPECT_EQ(seen.size(), 10u);
}

TEST(DrbgTest, NoObviousByteBias) {
  Drbg d(ToBytes("bias test"));
  const Bytes sample = d.Generate(100000);
  std::size_t ones = 0;
  for (std::uint8_t b : sample) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double frac = static_cast<double>(ones) / (sample.size() * 8);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace tlsharm::crypto
