// HKDF against RFC 5869 Appendix A test vectors (SHA-256 cases).
#include "crypto/hkdf.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace tlsharm::crypto {
namespace {

TEST(HkdfTest, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = MustHexDecode("000102030405060708090a0b0c");
  const Bytes info = MustHexDecode("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexEncode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case2LongInputs) {
  Bytes ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));
  const Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexEncode(prk),
            "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244");
  const Bytes okm = HkdfExpand(prk, info, 82);
  EXPECT_EQ(HexEncode(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes prk = HkdfExtract({}, ikm);
  EXPECT_EQ(HexEncode(prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  const Bytes okm = HkdfExpand(prk, {}, 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, ExpandLabelShape) {
  const Bytes secret(32, 0x11);
  const Bytes out = HkdfExpandLabel(secret, "key", {}, 16);
  EXPECT_EQ(out.size(), 16u);
  // Labels separate outputs.
  EXPECT_NE(HkdfExpandLabel(secret, "key", {}, 16),
            HkdfExpandLabel(secret, "iv", {}, 16));
  // Context separates outputs.
  EXPECT_NE(HkdfExpandLabel(secret, "key", Bytes(32, 1), 16),
            HkdfExpandLabel(secret, "key", Bytes(32, 2), 16));
}

TEST(HkdfTest, DeriveSecretIs32Bytes) {
  EXPECT_EQ(DeriveSecret(Bytes(32, 0x22), "c e traffic", Bytes(32, 3)).size(),
            32u);
}

}  // namespace
}  // namespace tlsharm::crypto
