#include "crypto/ffdh.h"

#include <gtest/gtest.h>

namespace tlsharm::crypto {
namespace {

class FfdhGroupTest : public ::testing::TestWithParam<const FfdhParams*> {};

TEST_P(FfdhGroupTest, KeyAgreement) {
  const FfdhGroup group(*GetParam());
  Drbg d1(ToBytes("alice")), d2(ToBytes("bob"));
  const KexKeyPair a = group.GenerateKeyPair(d1);
  const KexKeyPair b = group.GenerateKeyPair(d2);
  EXPECT_EQ(a.public_value.size(), group.PublicValueSize());
  const auto s1 = group.SharedSecret(a.private_key, b.public_value);
  const auto s2 = group.SharedSecret(b.private_key, a.public_value);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s1, *s2);
}

TEST_P(FfdhGroupTest, RejectsDegeneratePeerValues) {
  const FfdhGroup group(*GetParam());
  Drbg d(ToBytes("x"));
  const KexKeyPair kp = group.GenerateKeyPair(d);
  const std::size_t w = group.PublicValueSize();
  // 0, 1, p-1, p are all rejected.
  EXPECT_FALSE(group.SharedSecret(kp.private_key, Bytes(w, 0)).has_value());
  Bytes one(w, 0);
  one.back() = 1;
  EXPECT_FALSE(group.SharedSecret(kp.private_key, one).has_value());
  const Bytes p_minus_1 =
      BigUInt::Sub(group.Prime(), BigUInt::FromU64(1)).ToBytes(w);
  EXPECT_FALSE(group.SharedSecret(kp.private_key, p_minus_1).has_value());
  const Bytes p = group.Prime().ToBytes(w);
  EXPECT_FALSE(group.SharedSecret(kp.private_key, p).has_value());
  EXPECT_FALSE(group.SharedSecret(kp.private_key, Bytes(w + 1, 2)).has_value());
}

TEST_P(FfdhGroupTest, ReusedServerValueGivesDifferentSharedSecrets) {
  // The paper's §2.3 scenario: server reuses (a, g^a); two clients with
  // fresh values still derive distinct session keys, but anyone who learns
  // the server's `a` can recompute both.
  const FfdhGroup group(*GetParam());
  Drbg ds(ToBytes("server")), dc1(ToBytes("client1")), dc2(ToBytes("client2"));
  const KexKeyPair server = group.GenerateKeyPair(ds);
  const KexKeyPair c1 = group.GenerateKeyPair(dc1);
  const KexKeyPair c2 = group.GenerateKeyPair(dc2);
  const auto s1 = group.SharedSecret(c1.private_key, server.public_value);
  const auto s2 = group.SharedSecret(c2.private_key, server.public_value);
  ASSERT_TRUE(s1 && s2);
  EXPECT_NE(*s1, *s2);
  // Attacker holding the server private value recomputes both.
  EXPECT_EQ(*group.SharedSecret(server.private_key, c1.public_value), *s1);
  EXPECT_EQ(*group.SharedSecret(server.private_key, c2.public_value), *s2);
}

INSTANTIATE_TEST_SUITE_P(Groups, FfdhGroupTest,
                         ::testing::Values(&FfdhSim61Params(),
                                           &FfdhSim256Params()));

TEST(FfdhParamsTest, GeneratorProducesSubgroupOfOrderQ) {
  // g = 2 in a safe-prime group: g^q = ±1 mod p. h = g² has order exactly q.
  for (const FfdhParams* params :
       {&FfdhSim61Params(), &FfdhSim256Params()}) {
    const BigUInt p = BigUInt::FromHex(params->p_hex);
    const BigUInt q = BigUInt::FromHex(params->q_hex);
    const Montgomery m(p);
    const BigUInt h = BigUInt::FromU64(params->g * params->g);
    EXPECT_EQ(m.PowMod(h, q), BigUInt::FromU64(1)) << params->name;
  }
}

}  // namespace
}  // namespace tlsharm::crypto
