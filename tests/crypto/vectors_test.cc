// Official known-answer tests for every from-scratch primitive the
// handshake depends on, collected in one battery so a single ctest filter
// (-R CryptoVectors) revalidates the crypto layer under any build config
// (plain, ASan+UBSan, TSan — see scripts/check.sh).
//
// Sources:
//   SHA-256       — FIPS 180-4 / NIST CAVP short-message examples
//   HMAC-SHA-256  — RFC 4231 test cases 1-4, 6, 7
//   AES-128       — FIPS 197 app. C.1; CBC mode from NIST SP 800-38A F.2.1
//   X25519        — RFC 7748 §5.2 (incl. the 1,000-iteration ladder) & §6.1
//   TLS 1.2 PRF   — P_SHA256 recomputed from the RFC 4231-verified HMAC
#include <gtest/gtest.h>

#include <string>

#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "util/hex.h"

namespace tlsharm::crypto {
namespace {

std::string HexOf(const Sha256Digest& digest) {
  return HexEncode(Bytes(digest.begin(), digest.end()));
}

// --- SHA-256 (FIPS 180-4) ---------------------------------------------------

TEST(CryptoVectorsTest, Sha256EmptyMessage) {
  EXPECT_EQ(HexOf(Sha256Hash(ByteView{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b8"
            "55");
}

TEST(CryptoVectorsTest, Sha256Abc) {
  EXPECT_EQ(HexOf(Sha256Hash(ToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015"
            "ad");
}

TEST(CryptoVectorsTest, Sha256TwoBlockMessage) {
  EXPECT_EQ(
      HexOf(Sha256Hash(ToBytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(CryptoVectorsTest, Sha256FourBlockMessage) {
  EXPECT_EQ(
      HexOf(Sha256Hash(ToBytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmn"
          "oijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(CryptoVectorsTest, Sha256MillionAs) {
  Sha256 hash;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hash.Update(chunk);
  EXPECT_EQ(HexOf(hash.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112c"
            "d0");
}

// Incremental hashing must agree with one-shot hashing at every split.
TEST(CryptoVectorsTest, Sha256IncrementalMatchesOneShot) {
  const Bytes msg = ToBytes("The quick brown fox jumps over the lazy dog");
  const Sha256Digest expected = Sha256Hash(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 hash;
    hash.Update(ByteView(msg).subspan(0, split));
    hash.Update(ByteView(msg).subspan(split));
    EXPECT_EQ(hash.Finish(), expected) << "split at " << split;
  }
}

// --- HMAC-SHA-256 (RFC 4231) ------------------------------------------------

void ExpectHmac(const Bytes& key, const Bytes& data, std::string_view mac) {
  EXPECT_EQ(HexOf(HmacSha256Mac(key, data)), mac);
}

TEST(CryptoVectorsTest, HmacRfc4231Case1) {
  ExpectHmac(Bytes(20, 0x0b), ToBytes("Hi There"),
             "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32c"
             "ff7");
}

TEST(CryptoVectorsTest, HmacRfc4231Case2) {
  ExpectHmac(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"),
             "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3"
             "843");
}

TEST(CryptoVectorsTest, HmacRfc4231Case3) {
  ExpectHmac(Bytes(20, 0xaa), Bytes(50, 0xdd),
             "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced56"
             "5fe");
}

TEST(CryptoVectorsTest, HmacRfc4231Case4) {
  Bytes key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);
  }
  ExpectHmac(key, Bytes(50, 0xcd),
             "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729"
             "665b");
}

TEST(CryptoVectorsTest, HmacRfc4231Case6LargerThanBlockSizeKey) {
  ExpectHmac(
      Bytes(131, 0xaa),
      ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(CryptoVectorsTest, HmacRfc4231Case7LargerThanBlockSizeKeyAndData) {
  ExpectHmac(
      Bytes(131, 0xaa),
      ToBytes("This is a test using a larger than block-size key and a "
              "larger than block-size data. The key needs to be hashed "
              "before being used by the HMAC algorithm."),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// --- AES-128 (FIPS 197 / NIST SP 800-38A) -----------------------------------

TEST(CryptoVectorsTest, AesFips197BlockCipher) {
  const Aes128Key key =
      ToAesKey(MustHexDecode("000102030405060708090a0b0c0d0e0f"));
  const Bytes plain = MustHexDecode("00112233445566778899aabbccddeeff");
  const Aes128 aes(key);
  Bytes cipher(kAesBlockSize);
  aes.EncryptBlock(plain.data(), cipher.data());
  EXPECT_EQ(HexEncode(cipher), "69c4e0d86a7b0430d8cdb78070b4c55a");
  Bytes round_trip(kAesBlockSize);
  aes.DecryptBlock(cipher.data(), round_trip.data());
  EXPECT_EQ(round_trip, plain);
}

// NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt). Our CBC helper appends PKCS#7
// padding that the NIST vector (raw block mode) does not have, so the first
// four ciphertext blocks must match the vector exactly and the fifth is the
// encrypted padding block.
TEST(CryptoVectorsTest, AesCbcNistSp80038aEncrypt) {
  const Aes128Key key =
      ToAesKey(MustHexDecode("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock iv =
      ToAesBlock(MustHexDecode("000102030405060708090a0b0c0d0e0f"));
  const Bytes plaintext = MustHexDecode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes ciphertext = Aes128CbcEncrypt(key, iv, plaintext);
  ASSERT_EQ(ciphertext.size(), 5 * kAesBlockSize);  // 4 data + 1 padding
  EXPECT_EQ(HexEncode(Bytes(ciphertext.begin(),
                            ciphertext.begin() + 4 * kAesBlockSize)),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7");

  const auto round_trip = Aes128CbcDecrypt(key, iv, ciphertext);
  ASSERT_TRUE(round_trip.has_value());
  EXPECT_EQ(*round_trip, plaintext);
}

// F.2.2 (CBC-AES128.Decrypt), checked at the block level: CBC decryption of
// ciphertext block i is DecryptBlock(c_i) XOR c_{i-1} (IV for the first).
TEST(CryptoVectorsTest, AesCbcNistSp80038aDecryptBlocks) {
  const Aes128Key key =
      ToAesKey(MustHexDecode("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes iv = MustHexDecode("000102030405060708090a0b0c0d0e0f");
  const Bytes ciphertext = MustHexDecode(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  const Bytes expected_plain = MustHexDecode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Aes128 aes(key);
  Bytes plain(ciphertext.size());
  for (std::size_t block = 0; block < ciphertext.size() / kAesBlockSize;
       ++block) {
    const std::size_t off = block * kAesBlockSize;
    aes.DecryptBlock(ciphertext.data() + off, plain.data() + off);
    const std::uint8_t* chain =
        block == 0 ? iv.data() : ciphertext.data() + off - kAesBlockSize;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) plain[off + i] ^= chain[i];
  }
  EXPECT_EQ(plain, expected_plain);
}

TEST(CryptoVectorsTest, AesCbcRejectsCorruptedPadding) {
  const Aes128Key key =
      ToAesKey(MustHexDecode("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock iv =
      ToAesBlock(MustHexDecode("000102030405060708090a0b0c0d0e0f"));
  Bytes ciphertext = Aes128CbcEncrypt(key, iv, ToBytes("attack at dawn"));
  ciphertext.back() ^= 0x01;  // breaks the padding check
  EXPECT_FALSE(Aes128CbcDecrypt(key, iv, ciphertext).has_value());
  EXPECT_FALSE(  // truncated to a non-block length
      Aes128CbcDecrypt(key, iv,
                       ByteView(ciphertext).subspan(0, ciphertext.size() - 1))
          .has_value());
}

// --- X25519 (RFC 7748 §5.2) -------------------------------------------------

TEST(CryptoVectorsTest, X25519Rfc7748Vector1) {
  EXPECT_EQ(
      HexEncode(X25519ScalarMult(
          MustHexDecode("a546e36bf0527c9d3b16154b82465edd"
                        "62144c0ac1fc5a18506a2244ba449ac4"),
          MustHexDecode("e6db6867583030db3594c1a424b15f7c"
                        "726624ec26b3353b10a903a6d0ab1c4c"))),
      "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(CryptoVectorsTest, X25519Rfc7748Vector2) {
  EXPECT_EQ(
      HexEncode(X25519ScalarMult(
          MustHexDecode("4b66e9d4d1b4673c5ad22691957d6af5"
                        "c11b6421e0ea01d42ca4169e7918ba0d"),
          MustHexDecode("e5210f12786811d3f4b7959d0538ae2c"
                        "31dbe7106fc03c3efc4cd549c715a493"))),
      "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// §5.2's iterated ladder: k = u = 0900..00; each round computes
// new = X25519(k, u), then u <- k, k <- new.
TEST(CryptoVectorsTest, X25519Rfc7748IteratedLadder) {
  Bytes k(kX25519KeySize, 0);
  k[0] = 9;
  Bytes u = k;
  for (int i = 1; i <= 1000; ++i) {
    Bytes next = X25519ScalarMult(k, u);
    u = k;
    k = std::move(next);
    if (i == 1) {
      EXPECT_EQ(HexEncode(k),
                "422c8e7a6227d7bca1350b3e2bb7279f"
                "7897b87bb6854b783c60e80311ae3079");
    }
  }
  EXPECT_EQ(HexEncode(k),
            "684cf59ba83309552800ef566f2f4d3c"
            "1c3887c49360e3875f2eb94d99532c51");
}

TEST(CryptoVectorsTest, X25519Rfc7748DiffieHellman) {
  Bytes base(kX25519KeySize, 0);
  base[0] = 9;
  const Bytes alice = MustHexDecode(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes bob = MustHexDecode(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const Bytes alice_pub = X25519ScalarMult(alice, base);
  const Bytes bob_pub = X25519ScalarMult(bob, base);
  const Bytes shared = X25519ScalarMult(alice, bob_pub);
  EXPECT_EQ(
      HexEncode(shared),
      "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
  EXPECT_EQ(X25519ScalarMult(bob, alice_pub), shared);
}

// --- TLS 1.2 PRF (RFC 5246 §5) ----------------------------------------------

// P_SHA256 rebuilt here from the RFC 4231-verified HMAC: A(i) chaining with
// HMAC(secret, A(i) + label + seed). Tls12Prf must reproduce it byte for
// byte at lengths that exercise partial final blocks.
TEST(CryptoVectorsTest, Tls12PrfMatchesPSha256Construction) {
  const Bytes secret = MustHexDecode("9bbe436ba940f017b17652849a71db35");
  const std::string label = "test label";
  const Bytes seed = MustHexDecode("a0ba9f936cda311827a6f796ffd5198c");

  Bytes label_seed = ToBytes(label);
  Append(label_seed, seed);

  for (const std::size_t out_len : {1u, 31u, 32u, 33u, 100u}) {
    Bytes expected;
    Bytes a = label_seed;  // A(0)
    while (expected.size() < out_len) {
      a = HmacSha256Bytes(secret, a);  // A(i)
      Bytes block = a;
      Append(block, label_seed);
      const Bytes chunk = HmacSha256Bytes(secret, block);
      expected.insert(expected.end(), chunk.begin(), chunk.end());
    }
    expected.resize(out_len);
    EXPECT_EQ(Tls12Prf(secret, label, seed, out_len), expected)
        << "out_len " << out_len;
  }
}

// Master-secret derivation is PRF(premaster, "master secret",
// client_random + server_random)[0..48).
TEST(CryptoVectorsTest, Tls12MasterSecretDerivation) {
  const Bytes premaster(48, 0x0b);
  const Bytes client_random(32, 0x01);
  const Bytes server_random(32, 0x02);
  const Bytes master =
      DeriveMasterSecret(premaster, client_random, server_random);
  ASSERT_EQ(master.size(), 48u);
  Bytes seed = client_random;
  Append(seed, server_random);
  EXPECT_EQ(master, Tls12Prf(premaster, "master secret", seed, 48));
}

}  // namespace
}  // namespace tlsharm::crypto
