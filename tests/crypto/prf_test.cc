// TLS 1.2 PRF (P_SHA256) against a widely used community test vector,
// plus derivation-shape checks.
#include "crypto/prf.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace tlsharm::crypto {
namespace {

TEST(PrfTest, KnownVectorP_Sha256) {
  // Public P_SHA256 vector (from the IETF TLS mailing list, widely used to
  // validate TLS 1.2 PRF implementations).
  const Bytes secret = MustHexDecode("9bbe436ba940f017b17652849a71db35");
  const Bytes seed = MustHexDecode("a0ba9f936cda311827a6f796ffd5198c");
  const Bytes out = Tls12Prf(secret, "test label", seed, 100);
  EXPECT_EQ(HexEncode(out),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a"
            "6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab"
            "4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701"
            "87347b66");
}

TEST(PrfTest, OutputLengthExact) {
  const Bytes secret = ToBytes("secret");
  const Bytes seed = ToBytes("seed");
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 48u, 104u, 200u}) {
    EXPECT_EQ(Tls12Prf(secret, "label", seed, len).size(), len);
  }
}

TEST(PrfTest, PrefixConsistency) {
  // PRF output is a stream: shorter requests are prefixes of longer ones.
  const Bytes secret = ToBytes("secret");
  const Bytes seed = ToBytes("seed");
  const Bytes long_out = Tls12Prf(secret, "label", seed, 100);
  const Bytes short_out = Tls12Prf(secret, "label", seed, 37);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(),
                         long_out.begin()));
}

TEST(PrfTest, LabelSeparatesOutputs) {
  const Bytes secret = ToBytes("secret");
  const Bytes seed = ToBytes("seed");
  EXPECT_NE(Tls12Prf(secret, "master secret", seed, 48),
            Tls12Prf(secret, "key expansion", seed, 48));
}

TEST(PrfTest, MasterSecretIs48Bytes) {
  const Bytes pm = ToBytes("premaster");
  const Bytes cr(32, 0x01), sr(32, 0x02);
  const Bytes ms = DeriveMasterSecret(pm, cr, sr);
  EXPECT_EQ(ms.size(), 48u);
  // Randoms are order-sensitive.
  EXPECT_NE(ms, DeriveMasterSecret(pm, sr, cr));
}

TEST(PrfTest, KeyBlockDeterministicAndSeedOrderMatters) {
  const Bytes ms(48, 0x11);
  const Bytes cr(32, 0x01), sr(32, 0x02);
  const Bytes kb1 = DeriveKeyBlock(ms, sr, cr, 104);
  const Bytes kb2 = DeriveKeyBlock(ms, sr, cr, 104);
  EXPECT_EQ(kb1, kb2);
  EXPECT_NE(kb1, DeriveKeyBlock(ms, cr, sr, 104));
}

TEST(PrfTest, VerifyDataIs12Bytes) {
  const Bytes ms(48, 0x11);
  const Bytes hash(32, 0x22);
  EXPECT_EQ(ComputeVerifyData(ms, "client finished", hash).size(), 12u);
  EXPECT_NE(ComputeVerifyData(ms, "client finished", hash),
            ComputeVerifyData(ms, "server finished", hash));
}

}  // namespace
}  // namespace tlsharm::crypto
