#include "crypto/kex.h"

#include <gtest/gtest.h>

namespace tlsharm::crypto {
namespace {

class KexGroupTest : public ::testing::TestWithParam<NamedGroup> {};

TEST_P(KexGroupTest, RegistryRoundTrip) {
  const KexGroup& group = GetKexGroup(GetParam());
  EXPECT_EQ(group.Id(), GetParam());
  EXPECT_TRUE(IsKnownGroup(static_cast<std::uint16_t>(GetParam())));
}

TEST_P(KexGroupTest, AgreementThroughRegistry) {
  const KexGroup& group = GetKexGroup(GetParam());
  Drbg d1(ToBytes("one")), d2(ToBytes("two"));
  const KexKeyPair a = group.GenerateKeyPair(d1);
  const KexKeyPair b = group.GenerateKeyPair(d2);
  const auto s1 = group.SharedSecret(a.private_key, b.public_value);
  const auto s2 = group.SharedSecret(b.private_key, a.public_value);
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(*s1, *s2);
}

TEST_P(KexGroupTest, KindMatchesFamily) {
  const KexGroup& group = GetKexGroup(GetParam());
  switch (GetParam()) {
    case NamedGroup::kFfdheSim61:
    case NamedGroup::kFfdheSim256:
      EXPECT_EQ(group.Kind(), KexKind::kDhe);
      break;
    case NamedGroup::kSimEc61:
    case NamedGroup::kX25519:
      EXPECT_EQ(group.Kind(), KexKind::kEcdhe);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGroups, KexGroupTest,
                         ::testing::Values(NamedGroup::kFfdheSim61,
                                           NamedGroup::kFfdheSim256,
                                           NamedGroup::kSimEc61,
                                           NamedGroup::kX25519));

TEST(KexRegistryTest, UnknownIdIsNotKnown) {
  EXPECT_FALSE(IsKnownGroup(0xdead));
  EXPECT_FALSE(IsKnownGroup(0x0000));
}

}  // namespace
}  // namespace tlsharm::crypto
