#include "crypto/schnorr.h"

#include <gtest/gtest.h>

namespace tlsharm::crypto {
namespace {

class SchnorrTest : public ::testing::TestWithParam<const SchnorrScheme*> {};

TEST_P(SchnorrTest, SignVerifyRoundTrip) {
  const SchnorrScheme& scheme = *GetParam();
  Drbg d(ToBytes("keygen"));
  const SchnorrKeyPair kp = scheme.GenerateKeyPair(d);
  const Bytes msg = ToBytes("certificate to-be-signed bytes");
  const SchnorrSignature sig = scheme.Sign(kp.private_key, msg, d);
  EXPECT_TRUE(scheme.Verify(kp.public_key, msg, sig));
}

TEST_P(SchnorrTest, RejectsWrongMessage) {
  const SchnorrScheme& scheme = *GetParam();
  Drbg d(ToBytes("keygen"));
  const SchnorrKeyPair kp = scheme.GenerateKeyPair(d);
  const SchnorrSignature sig = scheme.Sign(kp.private_key, ToBytes("msg"), d);
  EXPECT_FALSE(scheme.Verify(kp.public_key, ToBytes("other"), sig));
}

TEST_P(SchnorrTest, RejectsWrongKey) {
  const SchnorrScheme& scheme = *GetParam();
  Drbg d(ToBytes("keygen"));
  const SchnorrKeyPair kp1 = scheme.GenerateKeyPair(d);
  const SchnorrKeyPair kp2 = scheme.GenerateKeyPair(d);
  const Bytes msg = ToBytes("msg");
  const SchnorrSignature sig = scheme.Sign(kp1.private_key, msg, d);
  EXPECT_FALSE(scheme.Verify(kp2.public_key, msg, sig));
}

TEST_P(SchnorrTest, RejectsTamperedSignature) {
  const SchnorrScheme& scheme = *GetParam();
  Drbg d(ToBytes("keygen"));
  const SchnorrKeyPair kp = scheme.GenerateKeyPair(d);
  const Bytes msg = ToBytes("msg");
  SchnorrSignature sig = scheme.Sign(kp.private_key, msg, d);
  sig.s[0] ^= 0x01;
  EXPECT_FALSE(scheme.Verify(kp.public_key, msg, sig));
  sig.s[0] ^= 0x01;
  sig.e[0] ^= 0x01;
  EXPECT_FALSE(scheme.Verify(kp.public_key, msg, sig));
}

TEST_P(SchnorrTest, SerializationRoundTrip) {
  const SchnorrScheme& scheme = *GetParam();
  Drbg d(ToBytes("keygen"));
  const SchnorrKeyPair kp = scheme.GenerateKeyPair(d);
  const Bytes msg = ToBytes("msg");
  const SchnorrSignature sig = scheme.Sign(kp.private_key, msg, d);
  const Bytes wire = scheme.SerializeSignature(sig);
  const auto parsed = scheme.ParseSignature(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(scheme.Verify(kp.public_key, msg, *parsed));
  EXPECT_FALSE(scheme.ParseSignature(Bytes(wire.size() + 1, 0)).has_value());
}

TEST_P(SchnorrTest, RejectsDegeneratePublicKey) {
  const SchnorrScheme& scheme = *GetParam();
  Drbg d(ToBytes("keygen"));
  const SchnorrKeyPair kp = scheme.GenerateKeyPair(d);
  const Bytes msg = ToBytes("msg");
  const SchnorrSignature sig = scheme.Sign(kp.private_key, msg, d);
  Bytes bad_key(kp.public_key.size(), 0);
  EXPECT_FALSE(scheme.Verify(bad_key, msg, sig));   // y = 0
  bad_key.back() = 1;
  EXPECT_FALSE(scheme.Verify(bad_key, msg, sig));   // y = 1
  EXPECT_FALSE(scheme.Verify(Bytes(3, 7), msg, sig));  // wrong width
}

TEST_P(SchnorrTest, SignaturesAreRandomized) {
  const SchnorrScheme& scheme = *GetParam();
  Drbg d(ToBytes("keygen"));
  const SchnorrKeyPair kp = scheme.GenerateKeyPair(d);
  const Bytes msg = ToBytes("msg");
  const SchnorrSignature s1 = scheme.Sign(kp.private_key, msg, d);
  const SchnorrSignature s2 = scheme.Sign(kp.private_key, msg, d);
  EXPECT_NE(s1.e, s2.e);  // fresh nonce each time
  EXPECT_TRUE(scheme.Verify(kp.public_key, msg, s1));
  EXPECT_TRUE(scheme.Verify(kp.public_key, msg, s2));
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchnorrTest,
                         ::testing::Values(&SchnorrSim61(), &SchnorrSim256()));

}  // namespace
}  // namespace tlsharm::crypto
