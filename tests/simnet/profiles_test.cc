#include "simnet/spec.h"

#include <gtest/gtest.h>

namespace tlsharm::simnet {
namespace {

TEST(ProfilesTest, SpecHasAllArchetypes) {
  const PopulationSpec spec = PaperPopulationSpec(10000);
  EXPECT_EQ(spec.top_list_size, 10000u);
  std::set<std::string> names;
  for (const auto& op : spec.operators) names.insert(op.name);
  for (const char* expected :
       {"cloudflare", "googleplex", "blogspot", "automattic", "shopify",
        "apache-daily", "nginx-daily", "iis-monthly", "smallhost-never"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(ProfilesTest, TrustedSharesRoughlyNormalized) {
  const PopulationSpec spec = PaperPopulationSpec(10000);
  double total = 0;
  for (const auto& op : spec.operators) total += op.trusted_share;
  EXPECT_GT(total, 0.8);
  EXPECT_LT(total, 1.1);
}

TEST(ProfilesTest, GoogleStekPoolShared) {
  const PopulationSpec spec = PaperPopulationSpec(10000);
  int pool_members = 0;
  for (const auto& op : spec.operators) {
    if (op.stek_pool == "google") ++pool_members;
  }
  EXPECT_EQ(pool_members, 2);  // googleplex + blogspot
}

TEST(ProfilesTest, NamedDomainsCoverPaperTables) {
  const PopulationSpec spec = PaperPopulationSpec(10000);
  std::set<std::string> names;
  for (const auto& named : spec.named_domains) names.insert(named.domain);
  // Table 2 rows.
  for (const char* domain :
       {"yahoo.com", "qq.com", "taobao.com", "pinterest.com", "yandex.ru",
        "netflix.com", "imgur.com", "tmall.com", "fc2.com", "pornhub.com"}) {
    EXPECT_TRUE(names.count(domain)) << domain;
  }
  // Table 3 rows.
  for (const char* domain :
       {"ebay.in", "ebay.it", "bleacherreport.com", "kayak.com",
        "cbssports.com", "gamefaqs.com", "overstock.com", "cookpad.com"}) {
    EXPECT_TRUE(names.count(domain)) << domain;
  }
  // Table 4 rows.
  for (const char* domain :
       {"whatsapp.com", "vice.com", "9gag.com", "liputan6.com", "paytm.com",
        "playstation.com", "woot.com", "leagueoflegends.com"}) {
    EXPECT_TRUE(names.count(domain)) << domain;
  }
}

TEST(ProfilesTest, NamedGroupsCoverPaperOperators) {
  const PopulationSpec spec = PaperPopulationSpec(10000);
  std::set<std::string> names;
  for (const auto& group : spec.named_groups) {
    names.insert(group.operator_name);
  }
  for (const char* expected :
       {"fastly", "tmall", "jackhenry", "hostway", "affinity"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(ProfilesTest, JackHenryRotatesOnDay59) {
  const PopulationSpec spec = PaperPopulationSpec(10000);
  for (const auto& group : spec.named_groups) {
    if (group.operator_name == "jackhenry") {
      ASSERT_EQ(group.stek_rotation_days.size(), 1u);
      EXPECT_EQ(group.stek_rotation_days[0], 59);
      return;
    }
  }
  FAIL() << "jackhenry group missing";
}

TEST(ProfilesTest, DefaultPopulationSizeRespectsEnv) {
  // Only checks the default path (env mutation is process-global; the
  // parsing branch is covered by setting and restoring).
  const std::size_t before = DefaultPopulationSize();
  EXPECT_GE(before, 2000u);
  setenv("TLSHARM_POPULATION", "5000", 1);
  EXPECT_EQ(DefaultPopulationSize(), 5000u);
  setenv("TLSHARM_POPULATION", "10", 1);  // below floor: ignored
  EXPECT_NE(DefaultPopulationSize(), 10u);
  unsetenv("TLSHARM_POPULATION");
}

TEST(ProfilesTest, ReuseMixesAreWellFormed) {
  const PopulationSpec spec = PaperPopulationSpec(10000);
  for (const auto& op : spec.operators) {
    for (const auto* mix : {&op.dhe_reuse, &op.ecdhe_reuse}) {
      EXPECT_GE(mix->reuse_fraction, 0.0);
      EXPECT_LE(mix->reuse_fraction, 1.0);
      double weight_total = 0;
      for (const auto& [weight, ttl] : mix->ttl_mix) {
        EXPECT_GT(weight, 0.0);
        EXPECT_GE(ttl, 0);
        weight_total += weight;
      }
      if (mix->reuse_fraction > 0) EXPECT_GT(weight_total, 0.0);
    }
  }
}

}  // namespace
}  // namespace tlsharm::simnet
