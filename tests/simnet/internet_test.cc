#include "simnet/internet.h"

#include <gtest/gtest.h>

#include "tls/client.h"

namespace tlsharm::simnet {
namespace {

// One small world shared by the suite (construction is the expensive part).
Internet& SmallWorld() {
  static Internet* net = new Internet(PaperPopulationSpec(4000), 42);
  return *net;
}

TEST(InternetTest, PopulationHasExpectedShape) {
  Internet& net = SmallWorld();
  // stable + transients; transient pool factor 1.4 → roughly 2.5x stable.
  EXPECT_GT(net.DomainCount(), 5000u);
  EXPECT_LT(net.DomainCount(), 12000u);

  std::size_t https = 0, trusted = 0, stable = 0;
  for (DomainId id = 0; id < net.DomainCount(); ++id) {
    const auto& info = net.GetDomain(id);
    https += info.https;
    trusted += info.https && info.trusted_cert;
    stable += info.stable;
  }
  EXPECT_GT(https, 0u);
  EXPECT_GT(trusted, 0u);
  EXPECT_GT(stable, 2000u);
}

TEST(InternetTest, DeterministicAcrossBuilds) {
  Internet a(PaperPopulationSpec(2000), 7);
  Internet b(PaperPopulationSpec(2000), 7);
  ASSERT_EQ(a.DomainCount(), b.DomainCount());
  for (DomainId id = 0; id < a.DomainCount(); id += 37) {
    EXPECT_EQ(a.GetDomain(id).name, b.GetDomain(id).name);
    EXPECT_EQ(a.GetDomain(id).rank, b.GetDomain(id).rank);
  }
}

TEST(InternetTest, NamedDomainsExist) {
  Internet& net = SmallWorld();
  for (const char* name :
       {"google.com", "yahoo.com", "netflix.com", "whatsapp.com",
        "yandex.ru", "qq.com"}) {
    const auto id = net.FindDomain(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_TRUE(net.GetDomain(*id).https);
    EXPECT_TRUE(net.GetDomain(*id).trusted_cert);
    EXPECT_TRUE(net.GetDomain(*id).stable);
  }
  EXPECT_EQ(net.GetDomain(*net.FindDomain("google.com")).rank, 1);
  EXPECT_EQ(net.GetDomain(*net.FindDomain("yahoo.com")).rank, 5);
}

TEST(InternetTest, HandshakesSucceedAgainstTrustedDomains) {
  Internet& net = SmallWorld();
  crypto::Drbg drbg(ToBytes("test client"));
  int tried = 0, ok = 0, trusted_ok = 0;
  for (DomainId id = 0; id < net.DomainCount() && tried < 50; ++id) {
    const auto& info = net.GetDomain(id);
    if (!info.https || !info.trusted_cert || !info.stable) continue;
    ++tried;
    auto conn = net.Connect(id, kHour);
    ASSERT_NE(conn, nullptr) << info.name;
    tls::ClientConfig config;
    config.server_name = info.name;
    config.root_store = &net.NssRootStore();
    tls::TlsClient client(config);
    const auto hs = client.Handshake(*conn, kHour, drbg);
    ok += hs.ok;
    trusted_ok += hs.ok && hs.chain_trusted;
    EXPECT_TRUE(hs.ok) << info.name << ": " << hs.error;
  }
  EXPECT_EQ(ok, tried);
  EXPECT_EQ(trusted_ok, tried);
}

TEST(InternetTest, UntrustedDomainsFailChainValidation) {
  Internet& net = SmallWorld();
  crypto::Drbg drbg(ToBytes("test client"));
  int checked = 0;
  for (DomainId id = 0; id < net.DomainCount() && checked < 10; ++id) {
    const auto& info = net.GetDomain(id);
    if (!info.https || info.trusted_cert) continue;
    auto conn = net.Connect(id, kHour);
    if (conn == nullptr) continue;
    tls::ClientConfig config;
    config.server_name = info.name;
    config.root_store = &net.NssRootStore();
    tls::TlsClient client(config);
    const auto hs = client.Handshake(*conn, kHour, drbg);
    if (!hs.ok) continue;
    EXPECT_FALSE(hs.chain_trusted) << info.name;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(InternetTest, NonHttpsDomainsRefuseConnections) {
  Internet& net = SmallWorld();
  int checked = 0;
  for (DomainId id = 0; id < net.DomainCount() && checked < 10; ++id) {
    if (net.GetDomain(id).https) continue;
    EXPECT_EQ(net.Connect(id, kHour), nullptr);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(InternetTest, StableDomainsAlwaysListed) {
  Internet& net = SmallWorld();
  const auto id = net.FindDomain("google.com");
  ASSERT_TRUE(id.has_value());
  for (int day = 0; day < 63; ++day) {
    EXPECT_TRUE(net.InTopListOnDay(*id, day));
  }
}

TEST(InternetTest, TransientDomainsChurn) {
  Internet& net = SmallWorld();
  std::size_t sometimes = 0, always = 0, transients = 0;
  for (DomainId id = 0; id < net.DomainCount(); ++id) {
    if (net.GetDomain(id).stable) continue;
    ++transients;
    int listed = 0;
    for (int day = 0; day < 63; ++day) listed += net.InTopListOnDay(id, day);
    if (listed > 0 && listed < 63) ++sometimes;
    if (listed == 63) ++always;
  }
  EXPECT_GT(transients, 0u);
  EXPECT_GT(sometimes, transients / 4);
}

TEST(InternetTest, EndpointSelectionIsStableWithinDay) {
  Internet& net = SmallWorld();
  // Find a multi-endpoint domain.
  for (DomainId id = 0; id < net.DomainCount(); ++id) {
    if (net.GetDomain(id).endpoints.size() < 2) continue;
    const TerminatorId at_9am = net.EndpointFor(id, 9 * kHour);
    // Affinity is per-day deterministic (5% off-affinity tolerance: check
    // the modal endpoint is the 9am one).
    int same = 0;
    for (int i = 0; i < 20; ++i) {
      same += net.EndpointFor(id, 9 * kHour + i * 7) == at_9am;
    }
    EXPECT_GE(same, 15);
    return;
  }
  GTEST_SKIP() << "no multi-endpoint domain in small world";
}

TEST(InternetTest, MxRecordsPointAtGoogleForSomeDomains) {
  Internet& net = SmallWorld();
  std::size_t mx_google = 0, stable = 0;
  for (DomainId id = 0; id < net.DomainCount(); ++id) {
    if (!net.GetDomain(id).stable) continue;
    ++stable;
    mx_google += net.MxPointsAtGoogle(id);
  }
  // ~9% of Top-N domains (§7.2); generous tolerance at small scale.
  const double fraction = static_cast<double>(mx_google) / stable;
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 0.20);
}

TEST(InternetTest, CoLocatedDomainsShareIps) {
  Internet& net = SmallWorld();
  for (DomainId id = 0; id < net.DomainCount(); ++id) {
    const auto& info = net.GetDomain(id);
    if (info.operator_name.find("cloudflare") == std::string::npos) continue;
    const auto ip = net.IpOf(info.endpoints.front());
    EXPECT_GT(net.DomainsOnIp(ip).size(), 1u);
    EXPECT_GT(net.DomainsInAs(info.as_number).size(), 10u);
    return;
  }
  FAIL() << "no cloudflare domain found";
}

}  // namespace
}  // namespace tlsharm::simnet
