#include "simnet/faults.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "simnet/internet.h"

namespace tlsharm::simnet {
namespace {

DomainInfo MakeDomain(const std::string& name, const std::string& op = "",
                      std::uint32_t as_number = 0) {
  DomainInfo info;
  info.name = name;
  info.operator_name = op;
  info.as_number = as_number;
  return info;
}

FaultSpec FlatSpec(double refuse, double timeout, double reset,
                   double truncate = 0, double corrupt = 0,
                   double outage = 0) {
  FaultSpec spec;
  spec.enabled = true;
  spec.base.refuse_rate = refuse;
  spec.base.timeout_rate = timeout;
  spec.base.reset_rate = reset;
  spec.base.truncate_rate = truncate;
  spec.base.corrupt_rate = corrupt;
  spec.base.outage_rate = outage;
  return spec;
}

TEST(FaultSpecTest, DefaultMixSumsToRoughlyFivePercentTransport) {
  const FaultSpec spec = DefaultFaultSpec();
  EXPECT_TRUE(spec.enabled);
  const double transport = spec.base.refuse_rate + spec.base.timeout_rate +
                           spec.base.reset_rate;
  EXPECT_GT(transport, 0.03);
  EXPECT_LT(transport, 0.08);
  EXPECT_FALSE(spec.operator_overrides.empty());
}

TEST(FaultSpecTest, ScaleMultipliesAndClamps) {
  const FaultSpec half = DefaultFaultSpec(0.5);
  const FaultSpec full = DefaultFaultSpec(1.0);
  EXPECT_NEAR(half.base.refuse_rate, full.base.refuse_rate / 2, 1e-12);
  const FaultSpec huge = DefaultFaultSpec(1e9);
  EXPECT_LE(huge.base.refuse_rate, 1.0);
}

TEST(FaultSpecTest, EnvKnobControlsSpec) {
  ::unsetenv("TLSHARM_FAULTS");
  EXPECT_FALSE(FaultSpecFromEnv().enabled);
  ::setenv("TLSHARM_FAULTS", "0", 1);
  EXPECT_FALSE(FaultSpecFromEnv().enabled);
  ::setenv("TLSHARM_FAULTS", "1", 1);
  const FaultSpec on = FaultSpecFromEnv();
  EXPECT_TRUE(on.enabled);
  EXPECT_NEAR(on.base.refuse_rate, DefaultFaultSpec().base.refuse_rate,
              1e-12);
  ::setenv("TLSHARM_FAULTS", "2", 1);
  EXPECT_NEAR(FaultSpecFromEnv().base.refuse_rate,
              2 * DefaultFaultSpec().base.refuse_rate, 1e-12);
  ::unsetenv("TLSHARM_FAULTS");
}

TEST(FaultInjectorTest, DecisionsAreDeterministicInSeedDomainTime) {
  const FaultSpec spec = FlatSpec(0.1, 0.1, 0.1, 0.05, 0.05, 0.1);
  const FaultInjector a(spec, 99), b(spec, 99), other(spec, 100);
  const DomainInfo domain = MakeDomain("example.com");
  int differs = 0;
  for (SimTime t = 0; t < 1000 * kMinute; t += kMinute) {
    const FaultDecision da = a.Decide(domain, t);
    const FaultDecision db = b.Decide(domain, t);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.payload_seed, db.payload_seed);
    differs += da.kind != other.Decide(domain, t).kind;
  }
  EXPECT_GT(differs, 0);  // a different seed draws different fates
}

TEST(FaultInjectorTest, RatesComeOutRoughlyAsConfigured) {
  const FaultSpec spec = FlatSpec(0.10, 0.05, 0.05);
  const FaultInjector injector(spec, 7);
  std::map<FaultKind, int> counts;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const DomainInfo domain = MakeDomain("host" + std::to_string(i) + ".com");
    ++counts[injector.Decide(domain, kHour).kind];
  }
  EXPECT_NEAR(counts[FaultKind::kRefused] / double(trials), 0.10, 0.01);
  EXPECT_NEAR(counts[FaultKind::kTimeout] / double(trials), 0.05, 0.01);
  EXPECT_NEAR(counts[FaultKind::kReset] / double(trials), 0.05, 0.01);
  EXPECT_NEAR(counts[FaultKind::kNone] / double(trials), 0.80, 0.02);
}

TEST(FaultInjectorTest, ProfileResolutionPrefersOperatorThenAs) {
  FaultSpec spec = FlatSpec(0.01, 0, 0);
  spec.operator_overrides["flaky-op"].refuse_rate = 0.5;
  spec.as_overrides[77].refuse_rate = 0.25;
  const FaultInjector injector(spec, 1);
  EXPECT_DOUBLE_EQ(
      injector.ProfileFor(MakeDomain("a.com", "flaky-op", 77)).refuse_rate,
      0.5);
  EXPECT_DOUBLE_EQ(
      injector.ProfileFor(MakeDomain("b.com", "other-op", 77)).refuse_rate,
      0.25);
  EXPECT_DOUBLE_EQ(
      injector.ProfileFor(MakeDomain("c.com", "other-op", 1)).refuse_rate,
      0.01);
}

TEST(FaultInjectorTest, OutageIsAContiguousWindowPerPeriod) {
  FaultSpec spec = FlatSpec(0, 0, 0);
  spec.base.outage_rate = 1.0;  // every period contains a dark window
  spec.base.outage_period = 7 * kDay;
  spec.base.outage_duration = 6 * kHour;
  const FaultInjector injector(spec, 13);
  const DomainInfo domain = MakeDomain("dark.com");

  // Sample one period at minute granularity: the dark minutes must form
  // one contiguous run of outage_duration.
  int dark = 0, transitions = 0;
  bool prev = injector.InOutage(domain, 0);
  for (SimTime t = 0; t < spec.base.outage_period; t += kMinute) {
    const bool now_dark = injector.InOutage(domain, t);
    dark += now_dark;
    transitions += now_dark != prev;
    prev = now_dark;
  }
  EXPECT_EQ(dark, spec.base.outage_duration / kMinute);
  EXPECT_LE(transitions, 2);

  // Decide() reports the outage for the whole window.
  for (SimTime t = 0; t < spec.base.outage_period; t += kMinute) {
    const bool now_dark = injector.InOutage(domain, t);
    EXPECT_EQ(injector.Decide(domain, t).kind == FaultKind::kOutage,
              now_dark);
  }
}

TEST(FaultInjectorTest, ZeroRatesNeverFault) {
  const FaultSpec spec = FlatSpec(0, 0, 0);
  const FaultInjector injector(spec, 3);
  for (int i = 0; i < 1000; ++i) {
    const DomainInfo domain = MakeDomain("h" + std::to_string(i) + ".com");
    EXPECT_EQ(injector.Decide(domain, i * kMinute).kind, FaultKind::kNone);
  }
}

// Minimal inner connection: answers every flight with a fixed payload.
class FixedConnection final : public tls::ServerConnection {
 public:
  explicit FixedConnection(Bytes response)
      : response_(std::move(response)) {}
  Bytes OnClientFlight(ByteView) override { return response_; }
  Bytes OnApplicationRecord(ByteView) override { return response_; }
  bool Failed() const override { return false; }
  std::string_view ErrorDetail() const override { return {}; }

 private:
  Bytes response_;
};

Bytes SamplePayload() {
  Bytes payload;
  for (int i = 0; i < 64; ++i) payload.push_back(static_cast<uint8_t>(i));
  return payload;
}

TEST(FaultyConnectionTest, ResetConsumesFlightAndFails) {
  FaultyConnection conn(std::make_unique<FixedConnection>(SamplePayload()),
                        FaultDecision{FaultKind::kReset, 1});
  EXPECT_TRUE(conn.OnClientFlight(SamplePayload()).empty());
  EXPECT_TRUE(conn.Failed());
  EXPECT_EQ(conn.ErrorDetail(), tls::kResetErrorDetail);
}

TEST(FaultyConnectionTest, TruncateShortensFirstFlightOnly) {
  FaultyConnection conn(std::make_unique<FixedConnection>(SamplePayload()),
                        FaultDecision{FaultKind::kTruncate, 0x1234});
  const Bytes first = conn.OnClientFlight(SamplePayload());
  EXPECT_LT(first.size(), SamplePayload().size());
  // The fault is spent: later flights pass through untouched.
  EXPECT_EQ(conn.OnClientFlight(SamplePayload()), SamplePayload());
}

TEST(FaultyConnectionTest, CorruptFlipsBitsButKeepsLength) {
  FaultyConnection conn(std::make_unique<FixedConnection>(SamplePayload()),
                        FaultDecision{FaultKind::kCorrupt, 0x5678});
  const Bytes first = conn.OnClientFlight(SamplePayload());
  ASSERT_EQ(first.size(), SamplePayload().size());
  EXPECT_NE(first, SamplePayload());
}

TEST(FaultyConnectionTest, NoFaultPassesThrough) {
  FaultyConnection conn(std::make_unique<FixedConnection>(SamplePayload()),
                        FaultDecision{});
  EXPECT_EQ(conn.OnClientFlight(SamplePayload()), SamplePayload());
  EXPECT_EQ(conn.OnApplicationRecord(SamplePayload()), SamplePayload());
  EXPECT_FALSE(conn.Failed());
}

TEST(InternetFaultsTest, ConnectDetailedSurfacesStatusesDeterministically) {
  const PopulationSpec spec = PaperPopulationSpec(1000);
  Internet a(spec, 21), b(spec, 21);
  a.SetFaultSpec(DefaultFaultSpec(2.0));
  b.SetFaultSpec(DefaultFaultSpec(2.0));

  std::map<Internet::ConnectStatus, int> statuses;
  for (DomainId id = 0; id < a.DomainCount(); ++id) {
    const auto oa = a.ConnectDetailed(id, kHour);
    const auto ob = b.ConnectDetailed(id, kHour);
    EXPECT_EQ(oa.status, ob.status) << "domain " << id;
    EXPECT_EQ(oa.connection != nullptr, ob.connection != nullptr);
    EXPECT_EQ(oa.connection != nullptr,
              oa.status == Internet::ConnectStatus::kOk);
    ++statuses[oa.status];
  }
  EXPECT_GT(statuses[Internet::ConnectStatus::kOk], 0);
  EXPECT_GT(statuses[Internet::ConnectStatus::kRefused], 0);
  EXPECT_GT(statuses[Internet::ConnectStatus::kTimeout], 0);
}

TEST(InternetFaultsTest, DisabledSpecRestoresCleanNetwork) {
  Internet net(PaperPopulationSpec(500), 9);
  net.SetFaultSpec(DefaultFaultSpec());
  EXPECT_TRUE(net.FaultsEnabled());
  net.SetFaultSpec(FaultSpec{});  // disabled
  EXPECT_FALSE(net.FaultsEnabled());
  for (DomainId id = 0; id < net.DomainCount(); ++id) {
    const auto outcome = net.ConnectDetailed(id, kHour);
    EXPECT_TRUE(outcome.status == Internet::ConnectStatus::kOk ||
                outcome.status == Internet::ConnectStatus::kNoHttps);
  }
}

}  // namespace
}  // namespace tlsharm::simnet
