#include "simnet/clients.h"

#include <gtest/gtest.h>

namespace tlsharm::simnet {
namespace {

Internet& World() {
  static auto* net = new Internet(PaperPopulationSpec(2500), 77);
  return *net;
}

TEST(BrowserPoolTest, GeneratesTraffic) {
  BrowserPool pool(World(), BrowserConfig{}, /*browsers=*/10, 1);
  const TrafficStats stats = pool.Browse(0, 6 * kHour);
  EXPECT_GT(stats.connections, 50u);
  EXPECT_GT(stats.handshake_ok, 0u);
  EXPECT_LE(stats.handshake_ok, stats.connections);
  EXPECT_LE(stats.resumed, stats.handshake_ok);
}

TEST(BrowserPoolTest, ResumptionRateNearFirefoxTelemetry) {
  // §2.2: "50% of Mozilla Firefox TLS sessions are resumptions". The exact
  // value depends on visit cadence vs server windows; we assert the model
  // lands in a broad band around it.
  BrowserPool pool(World(), BrowserConfig{}, /*browsers=*/30, 2);
  const TrafficStats stats = pool.Browse(0, 12 * kHour);
  ASSERT_GT(stats.handshake_ok, 300u);
  EXPECT_GT(stats.ResumptionRate(), 0.25);
  EXPECT_LT(stats.ResumptionRate(), 0.85);
}

TEST(BrowserPoolTest, TicketsCarryMostResumptions) {
  BrowserPool pool(World(), BrowserConfig{}, 20, 3);
  const TrafficStats stats = pool.Browse(0, 8 * kHour);
  ASSERT_GT(stats.resumed, 0u);
  // Most servers prefer tickets when the client offers both.
  EXPECT_GT(stats.resumed_via_ticket, stats.resumed / 2);
}

TEST(BrowserPoolTest, LongerGapsLowerResumptionRate) {
  // Visits spaced beyond typical server windows resume less.
  BrowserConfig fast;
  fast.mean_gap = 90;  // seconds: well inside 3-5 minute windows
  BrowserConfig slow;
  slow.mean_gap = 4 * kHour;  // beyond almost every window
  BrowserPool fast_pool(World(), fast, 10, 4);
  BrowserPool slow_pool(World(), slow, 10, 4);
  const TrafficStats fast_stats = fast_pool.Browse(0, 4 * kHour);
  const TrafficStats slow_stats = slow_pool.Browse(0, 48 * kHour);
  ASSERT_GT(fast_stats.handshake_ok, 100u);
  ASSERT_GT(slow_stats.handshake_ok, 20u);
  EXPECT_GT(fast_stats.ResumptionRate(),
            slow_stats.ResumptionRate() + 0.15);
}

TEST(BrowserPoolTest, DeterministicAcrossRuns) {
  BrowserPool a(World(), BrowserConfig{}, 5, 9);
  BrowserPool b(World(), BrowserConfig{}, 5, 9);
  // Same seed, same world -> same visit pattern counts. (Server state
  // mutates between the two Browse calls, so resumption results can differ;
  // connection counts must not.)
  const TrafficStats sa = a.Browse(0, 2 * kHour);
  const TrafficStats sb = b.Browse(0, 2 * kHour);
  EXPECT_EQ(sa.connections, sb.connections);
}

}  // namespace
}  // namespace tlsharm::simnet
