// The retrospective-decryption attacks end to end: capture a connection,
// compromise a server secret, decrypt recorded traffic.
#include "attack/decrypt.h"

#include <gtest/gtest.h>

#include "testutil/fixtures.h"

namespace tlsharm::attack {
namespace {

using testutil::ClientFor;
using testutil::MakeTerminator;
using testutil::TestPki;

class DecryptTest : public ::testing::Test {
 protected:
  // Runs one tapped connection with an app-data exchange.
  ParsedCapture CaptureConnection(server::SslTerminator& term,
                                  const tls::ClientConfig& config,
                                  SimTime now, tls::HandshakeResult* hs_out) {
    auto conn = term.NewConnection(now);
    PassiveCapture capture;
    tls::TappedConnection tapped(*conn, capture);
    tls::TlsClient client(config);
    const auto hs = client.Handshake(tapped, now, drbg_);
    EXPECT_TRUE(hs.ok) << hs.error;
    if (hs.ok) {
      tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
      EXPECT_TRUE(tls::TlsClient::Roundtrip(
                      tapped, hs, channel,
                      ToBytes("POST /login user=alice&pw=hunter2"), drbg_)
                      .has_value());
    }
    if (hs_out != nullptr) *hs_out = hs;
    return ParseCapture(capture.Log());
  }

  TestPki pki_;
  crypto::Drbg drbg_{ToBytes("decrypt client")};
};

TEST_F(DecryptTest, StolenStekDecryptsRecordedConnection) {
  server::ServerConfig config;
  config.stek.rotation = server::StekRotation::kStatic;
  auto term = MakeTerminator(pki_, {"bank.com"}, config);
  term->SetResponseBody("HTTP/1.1 200 OK\r\n\r\naccount balance: $12,345");

  tls::HandshakeResult hs;
  const ParsedCapture capture =
      CaptureConnection(*term, ClientFor(pki_, "bank.com"), 100, &hs);
  ASSERT_TRUE(capture.valid);

  // Weeks later the attacker exfiltrates the STEK.
  const tls::Stek stolen = term->Steks().StealCurrentKey(30 * kDay);
  const StekDecryptor decryptor(term->Config().tickets.codec, stolen);
  const DecryptedSession session = decryptor.Decrypt(capture);
  ASSERT_TRUE(session.ok) << ToString(session.failure);
  EXPECT_EQ(session.master_secret, hs.master_secret);
  ASSERT_EQ(session.client_plaintext.size(), 1u);
  EXPECT_EQ(tlsharm::ToString(session.client_plaintext[0]),
            "POST /login user=alice&pw=hunter2");
  ASSERT_EQ(session.server_plaintext.size(), 1u);
  EXPECT_EQ(tlsharm::ToString(session.server_plaintext[0]),
            "HTTP/1.1 200 OK\r\n\r\naccount balance: $12,345");
}

TEST_F(DecryptTest, RotatedStekNoLongerDecrypts) {
  // Forward secrecy restored: after rotation + erasure the old traffic is
  // safe even if the NEW key leaks.
  server::ServerConfig config;
  config.stek.rotation = server::StekRotation::kInterval;
  config.stek.rotation_interval = kDay;
  auto term = MakeTerminator(pki_, {"bank.com"}, config);
  const ParsedCapture capture =
      CaptureConnection(*term, ClientFor(pki_, "bank.com"), 100, nullptr);
  ASSERT_TRUE(capture.valid);

  const tls::Stek later_key = term->Steks().StealCurrentKey(10 * kDay);
  const StekDecryptor decryptor(term->Config().tickets.codec, later_key);
  const DecryptedSession session = decryptor.Decrypt(capture);
  EXPECT_FALSE(session.ok);
}

TEST_F(DecryptTest, StekAlsoOpensTicketResumedConnections) {
  server::ServerConfig config;
  config.stek.rotation = server::StekRotation::kStatic;
  config.tickets.acceptance_window = kDay;
  auto term = MakeTerminator(pki_, {"bank.com"}, config);

  tls::HandshakeResult first;
  (void)CaptureConnection(*term, ClientFor(pki_, "bank.com"), 0, &first);

  tls::ClientConfig resume_config = ClientFor(pki_, "bank.com");
  resume_config.resume_ticket = first.ticket;
  resume_config.resume_master_secret = first.master_secret;
  tls::HandshakeResult second;
  const ParsedCapture capture =
      CaptureConnection(*term, resume_config, kHour, &second);
  ASSERT_TRUE(capture.valid);
  ASSERT_TRUE(capture.abbreviated);

  const tls::Stek stolen = term->Steks().StealCurrentKey(30 * kDay);
  const StekDecryptor decryptor(term->Config().tickets.codec, stolen);
  const DecryptedSession session = decryptor.Decrypt(capture);
  ASSERT_TRUE(session.ok) << ToString(session.failure);
  EXPECT_EQ(session.client_plaintext.size(), 1u);
}

TEST_F(DecryptTest, DumpedSessionCacheDecryptsWhileEntryLives) {
  server::ServerConfig config;
  config.session_cache.lifetime = kDay;
  auto term = MakeTerminator(pki_, {"shop.com"}, config);
  tls::HandshakeResult hs;
  const ParsedCapture capture =
      CaptureConnection(*term, ClientFor(pki_, "shop.com"), 100, &hs);
  ASSERT_TRUE(capture.valid);

  // Attacker dumps the cache within the lifetime window.
  const CacheDecryptor decryptor(term->Cache().Dump());
  const DecryptedSession session = decryptor.Decrypt(capture);
  ASSERT_TRUE(session.ok) << ToString(session.failure);
  EXPECT_EQ(session.master_secret, hs.master_secret);
  EXPECT_EQ(session.client_plaintext.size(), 1u);
}

TEST_F(DecryptTest, ExpiredCacheDumpCannotDecrypt) {
  server::ServerConfig config;
  config.session_cache.lifetime = 5 * kMinute;
  auto term = MakeTerminator(pki_, {"shop.com"}, config);
  const ParsedCapture capture =
      CaptureConnection(*term, ClientFor(pki_, "shop.com"), 100, nullptr);
  ASSERT_TRUE(capture.valid);

  // Force expiry by touching the cache afterwards.
  (void)term->Cache().Lookup(ToBytes("anything"), 100 + kHour);
  const CacheDecryptor decryptor(term->Cache().Dump());
  EXPECT_FALSE(decryptor.Decrypt(capture).ok);
}

TEST_F(DecryptTest, StolenReusedEcdheValueDecrypts) {
  server::ServerConfig config;
  config.ecdhe_reuse = {.reuse = true, .ttl = 0};
  auto term = MakeTerminator(pki_, {"api.com"}, config);
  tls::HandshakeResult hs;
  const ParsedCapture capture =
      CaptureConnection(*term, ClientFor(pki_, "api.com"), 100, &hs);
  ASSERT_TRUE(capture.valid);

  // The attacker obtains the cached server key pair.
  crypto::Drbg scratch(ToBytes("scratch"));
  const auto& pair = term->Kex().GetKeyPair(
      config.ecdhe_group, config.ecdhe_reuse, 200, scratch);
  const DhDecryptor decryptor(config.ecdhe_group, pair.private_key,
                              pair.public_value);
  const DecryptedSession session = decryptor.Decrypt(capture);
  ASSERT_TRUE(session.ok) << ToString(session.failure);
  EXPECT_EQ(session.master_secret, hs.master_secret);
  EXPECT_EQ(session.client_plaintext.size(), 1u);
}

TEST_F(DecryptTest, FreshEphemeralValueDefeatsDhTheft) {
  // No reuse: by the time the attacker steals a value, the recorded
  // connection used a different one.
  server::ServerConfig config;  // defaults: fresh values
  auto term = MakeTerminator(pki_, {"api.com"}, config);
  const ParsedCapture capture =
      CaptureConnection(*term, ClientFor(pki_, "api.com"), 100, nullptr);
  ASSERT_TRUE(capture.valid);

  crypto::Drbg scratch(ToBytes("scratch"));
  const auto& pair = term->Kex().GetKeyPair(
      config.ecdhe_group, config.ecdhe_reuse, 200, scratch);
  const DhDecryptor decryptor(config.ecdhe_group, pair.private_key,
                              pair.public_value);
  EXPECT_FALSE(decryptor.Decrypt(capture).ok);
}

TEST_F(DecryptTest, WrongStekFailsCleanly) {
  server::ServerConfig config;
  auto term = MakeTerminator(pki_, {"bank.com"}, config);
  const ParsedCapture capture =
      CaptureConnection(*term, ClientFor(pki_, "bank.com"), 100, nullptr);
  crypto::Drbg other(ToBytes("other"));
  const StekDecryptor decryptor(tls::TicketCodecKind::kRfc5077,
                                tls::Stek::Generate(other));
  const DecryptedSession session = decryptor.Decrypt(capture);
  EXPECT_FALSE(session.ok);
  EXPECT_EQ(session.failure, DecryptFailureClass::kWrongStek);
}

TEST_F(DecryptTest, StaticSuiteConnectionHasNoDhToAttackButNoPfsEither) {
  // Context check for the static (RSA-stand-in) suite: no SKE on the wire.
  server::ServerConfig config;
  auto term = MakeTerminator(pki_, {"legacy.com"}, config);
  tls::ClientConfig client_config = ClientFor(pki_, "legacy.com");
  client_config.offered_suites = {tls::CipherSuite::kStaticWithAes128CbcSha256};
  const ParsedCapture capture =
      CaptureConnection(*term, client_config, 100, nullptr);
  ASSERT_TRUE(capture.valid);
  EXPECT_FALSE(capture.server_kex.has_value());
}

}  // namespace
}  // namespace tlsharm::attack
