#include "attack/capture.h"

#include <gtest/gtest.h>

#include "testutil/fixtures.h"

namespace tlsharm::attack {
namespace {

using testutil::ClientFor;
using testutil::MakeTerminator;
using testutil::TestPki;

class CaptureTest : public ::testing::Test {
 protected:
  TestPki pki_;
  crypto::Drbg drbg_{ToBytes("capture client")};
};

TEST_F(CaptureTest, FullHandshakeCaptureParses) {
  auto term = MakeTerminator(pki_, {"victim.com"}, server::ServerConfig{});
  auto conn = term->NewConnection(100);
  PassiveCapture capture;
  tls::TappedConnection tapped(*conn, capture);
  tls::TlsClient client(ClientFor(pki_, "victim.com"));
  const auto hs = client.Handshake(tapped, 100, drbg_);
  ASSERT_TRUE(hs.ok) << hs.error;

  const ParsedCapture parsed = ParseCapture(capture.Log());
  ASSERT_TRUE(parsed.valid);
  EXPECT_FALSE(parsed.abbreviated);
  EXPECT_EQ(parsed.client_hello.random, hs.client_random);
  EXPECT_EQ(parsed.server_hello.random, hs.server_random);
  ASSERT_TRUE(parsed.server_kex.has_value());
  ASSERT_TRUE(parsed.client_kex.has_value());
  ASSERT_TRUE(parsed.new_session_ticket.has_value());
  EXPECT_EQ(parsed.new_session_ticket->ticket, hs.ticket);
  EXPECT_EQ(parsed.RelevantTicket(), hs.ticket);
}

TEST_F(CaptureTest, ApplicationRecordsAreCaptured) {
  auto term = MakeTerminator(pki_, {"victim.com"}, server::ServerConfig{});
  auto conn = term->NewConnection(100);
  PassiveCapture capture;
  tls::TappedConnection tapped(*conn, capture);
  tls::TlsClient client(ClientFor(pki_, "victim.com"));
  const auto hs = client.Handshake(tapped, 100, drbg_);
  ASSERT_TRUE(hs.ok);
  tls::RecordChannel channel(hs.keys, tls::Direction::kClientToServer);
  ASSERT_TRUE(tls::TlsClient::Roundtrip(tapped, hs, channel,
                                        ToBytes("GET /secret"), drbg_)
                  .has_value());

  const ParsedCapture parsed = ParseCapture(capture.Log());
  ASSERT_TRUE(parsed.valid);
  EXPECT_EQ(parsed.client_records.size(), 1u);
  EXPECT_EQ(parsed.server_records.size(), 1u);
  // Captured records are ciphertext, not the plaintext request.
  EXPECT_EQ(std::search(parsed.client_records[0].begin(),
                        parsed.client_records[0].end(),
                        ToBytes("GET /secret").begin(),
                        ToBytes("GET /secret").end()),
            parsed.client_records[0].end());
}

TEST_F(CaptureTest, AbbreviatedHandshakeDetected) {
  auto term = MakeTerminator(pki_, {"victim.com"}, server::ServerConfig{});
  tls::TlsClient first_client(ClientFor(pki_, "victim.com"));
  auto conn1 = term->NewConnection(0);
  const auto first = first_client.Handshake(*conn1, 0, drbg_);
  ASSERT_TRUE(first.ok);

  tls::ClientConfig resume_config = ClientFor(pki_, "victim.com");
  resume_config.resume_ticket = first.ticket;
  resume_config.resume_master_secret = first.master_secret;
  auto conn2 = term->NewConnection(30);
  PassiveCapture capture;
  tls::TappedConnection tapped(*conn2, capture);
  tls::TlsClient second_client(resume_config);
  const auto second = second_client.Handshake(tapped, 30, drbg_);
  ASSERT_TRUE(second.ok);
  ASSERT_TRUE(second.resumed);

  const ParsedCapture parsed = ParseCapture(capture.Log());
  ASSERT_TRUE(parsed.valid);
  EXPECT_TRUE(parsed.abbreviated);
  // The client-presented ticket is the relevant one for STEK attacks.
  EXPECT_EQ(parsed.RelevantTicket(), first.ticket);
  EXPECT_FALSE(parsed.server_kex.has_value());
}

TEST_F(CaptureTest, EmptyLogIsInvalid) {
  const ParsedCapture parsed = ParseCapture({});
  EXPECT_FALSE(parsed.valid);
  EXPECT_EQ(parsed.parse_fail, CaptureParseFail::kEmptyLog);
}

TEST_F(CaptureTest, ValidCaptureReportsNoParseFail) {
  auto term = MakeTerminator(pki_, {"victim.com"}, server::ServerConfig{});
  auto conn = term->NewConnection(100);
  PassiveCapture capture;
  tls::TappedConnection tapped(*conn, capture);
  tls::TlsClient client(ClientFor(pki_, "victim.com"));
  ASSERT_TRUE(client.Handshake(tapped, 100, drbg_).ok);
  const ParsedCapture parsed = ParseCapture(capture.Log());
  ASSERT_TRUE(parsed.valid);
  EXPECT_EQ(parsed.parse_fail, CaptureParseFail::kNone);
}

// Corpus-style corruption battery: every truncation of every handshake
// flight and a single-bit flip at every bit position must yield either a
// still-valid parse (flips can land in don't-care bytes like the ticket
// blob or a random) or valid=false with a non-kNone taxonomy reason —
// never a crash, never a "valid" capture with parse_fail set.
TEST_F(CaptureTest, CorruptionCorpusClassifiesEveryMutation) {
  auto term = MakeTerminator(pki_, {"victim.com"}, server::ServerConfig{});
  auto conn = term->NewConnection(100);
  PassiveCapture capture;
  tls::TappedConnection tapped(*conn, capture);
  tls::TlsClient client(ClientFor(pki_, "victim.com"));
  ASSERT_TRUE(client.Handshake(tapped, 100, drbg_).ok);
  const std::vector<CapturedExchange> log = capture.Log();
  ASSERT_GE(log.size(), 2u);

  auto check = [](const ParsedCapture& parsed) {
    if (parsed.valid) {
      EXPECT_EQ(parsed.parse_fail, CaptureParseFail::kNone);
    } else {
      EXPECT_NE(parsed.parse_fail, CaptureParseFail::kNone);
    }
  };

  for (std::size_t e = 0; e < log.size(); ++e) {
    // Every truncation of this exchange's bytes.
    for (std::size_t keep = 0; keep < log[e].bytes.size(); ++keep) {
      std::vector<CapturedExchange> mutated = log;
      mutated[e].bytes.resize(keep);
      if (keep == 0) mutated.erase(mutated.begin() + e);
      check(ParseCapture(mutated));
    }
    // Every single-bit flip.
    for (std::size_t bit = 0; bit < log[e].bytes.size() * 8; ++bit) {
      std::vector<CapturedExchange> mutated = log;
      mutated[e].bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      check(ParseCapture(mutated));
    }
  }
}

TEST_F(CaptureTest, TruncatedHandshakeIsInvalid) {
  auto term = MakeTerminator(pki_, {"victim.com"}, server::ServerConfig{});
  auto conn = term->NewConnection(100);
  PassiveCapture capture;
  tls::TappedConnection tapped(*conn, capture);
  // Only the ClientHello flight, then stop.
  tls::ClientHello ch;
  ch.random = drbg_.Generate(32);
  ch.cipher_suites = {
      static_cast<std::uint16_t>(tls::CipherSuite::kEcdheWithAes128CbcSha256)};
  Bytes flight;
  tls::AppendHandshake(flight, tls::HandshakeType::kClientHello,
                       ch.Serialize());
  (void)tapped.OnClientFlight(flight);
  EXPECT_FALSE(ParseCapture(capture.Log()).valid);
}

}  // namespace
}  // namespace tlsharm::attack
