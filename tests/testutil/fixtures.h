// Shared test fixtures: a miniature PKI plus helpers to stand up an SSL
// terminator hosting arbitrary domains.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "pki/ca.h"
#include "pki/root_store.h"
#include "server/terminator.h"
#include "tls/client.h"

namespace tlsharm::testutil {

// A root CA + intermediate + root store, built deterministically.
struct TestPki {
  TestPki()
      : drbg(ToBytes("test pki")),
        root("Test Root CA", pki::SignatureScheme::kSchnorrSim61, drbg),
        intermediate("Test Intermediate CA",
                     pki::SignatureScheme::kSchnorrSim61, drbg) {
    store.AddRoot(root.Name(), root.Scheme(), root.PublicKey());
    intermediate_chain.push_back(
        root.IssueCaCertificate(intermediate, 0, 365 * kDay, drbg));
  }

  crypto::Drbg drbg;
  pki::CertificateAuthority root;
  pki::CertificateAuthority intermediate;
  pki::CertificateChain intermediate_chain;
  pki::RootStore store;
};

// Builds a terminator hosting `domains` (single SAN cert) with `config`.
inline std::unique_ptr<server::SslTerminator> MakeTerminator(
    TestPki& pki, const std::vector<std::string>& domains,
    server::ServerConfig config, std::uint64_t seed = 1) {
  auto terminator = std::make_unique<server::SslTerminator>(
      "term-" + domains.front(), std::move(config), seed);
  server::Credential credential = server::MakeCredential(
      pki.intermediate, domains, pki::SignatureScheme::kSchnorrSim61, 0,
      365 * kDay, pki.intermediate_chain, pki.drbg);
  const std::size_t idx = terminator->AddCredential(std::move(credential));
  for (const auto& domain : domains) terminator->MapDomain(domain, idx);
  return terminator;
}

// Convenience client config for `domain` validated against the PKI.
inline tls::ClientConfig ClientFor(const TestPki& pki,
                                   const std::string& domain) {
  tls::ClientConfig config;
  config.server_name = domain;
  config.root_store = &pki.store;
  return config;
}

// Runs one handshake at time `now`; returns the result.
inline tls::HandshakeResult Connect(server::SslTerminator& terminator,
                                    const tls::ClientConfig& config,
                                    SimTime now, crypto::Drbg& drbg) {
  auto conn = terminator.NewConnection(now);
  tls::TlsClient client(config);
  return client.Handshake(*conn, now, drbg);
}

}  // namespace tlsharm::testutil
