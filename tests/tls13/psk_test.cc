// TLS 1.3 PSK resumption (§2.4) — windows, modes and the 0-RTT caveat.
#include "tls13/psk.h"

#include <gtest/gtest.h>

namespace tlsharm::tls13 {
namespace {

Bytes TestMaster() { return Bytes(48, 0x42); }
Bytes TestTranscript() { return Bytes(32, 0x17); }
Bytes TestChHash() { return Bytes(32, 0x29); }

class Tls13PskTest : public ::testing::Test {
 protected:
  Tls13Server MakeServer(Tls13ServerConfig config) {
    return Tls13Server(config, ToBytes("test server"));
  }
  crypto::Drbg drbg_{ToBytes("tls13 client")};
};

TEST_F(Tls13PskTest, KeyScheduleDeterministic) {
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  EXPECT_EQ(rm.size(), 32u);
  const Bytes psk = DerivePsk(rm, ToBytes("nonce123"));
  EXPECT_EQ(psk, DerivePsk(rm, ToBytes("nonce123")));
  EXPECT_NE(psk, DerivePsk(rm, ToBytes("nonce456")));
}

TEST_F(Tls13PskTest, PskKeResumptionRoundTrip) {
  Tls13Server server = MakeServer({});
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);
  EXPECT_LE(ticket.lifetime, kDraft15MaxLifetime);

  const auto outcome = server.Resume(ticket, PskMode::kPskKe, TestChHash(),
                                     {}, {}, kHour, drbg_);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.mode, PskMode::kPskKe);
  // Client derives the same traffic secret from its own copy of the PSK.
  const Bytes psk = DerivePsk(rm, ticket.ticket_nonce);
  EXPECT_EQ(outcome.traffic_secret,
            DeriveResumedTrafficSecret(psk, {}, TestChHash()));
}

TEST_F(Tls13PskTest, PskDheKeMixesFreshShare) {
  Tls13Server server = MakeServer({});
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);

  const auto& group = crypto::GetKexGroup(crypto::NamedGroup::kSimEc61);
  const auto client_kex = group.GenerateKeyPair(drbg_);
  const auto outcome =
      server.Resume(ticket, PskMode::kPskDheKe, TestChHash(),
                    client_kex.public_value, {}, kHour, drbg_);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.mode, PskMode::kPskDheKe);
  ASSERT_FALSE(outcome.server_kex_public.empty());

  const auto shared =
      group.SharedSecret(client_kex.private_key, outcome.server_kex_public);
  ASSERT_TRUE(shared.has_value());
  const Bytes psk = DerivePsk(rm, ticket.ticket_nonce);
  EXPECT_EQ(outcome.traffic_secret,
            DeriveResumedTrafficSecret(psk, *shared, TestChHash()));
  // And it differs from what psk_ke would have derived.
  EXPECT_NE(outcome.traffic_secret,
            DeriveResumedTrafficSecret(psk, {}, TestChHash()));
}

TEST_F(Tls13PskTest, LifetimeEnforced) {
  Tls13ServerConfig config;
  config.psk_lifetime = kDraft15MaxLifetime;  // 7 days
  Tls13Server server = MakeServer(config);
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);

  EXPECT_TRUE(server.Resume(ticket, PskMode::kPskKe, TestChHash(), {}, {},
                            7 * kDay - 1, drbg_).accepted);
  EXPECT_FALSE(server.Resume(ticket, PskMode::kPskKe, TestChHash(), {}, {},
                             7 * kDay, drbg_).accepted);
}

TEST_F(Tls13PskTest, PskKeRefusedWhenDisallowed) {
  Tls13ServerConfig config;
  config.allow_psk_ke = false;
  Tls13Server server = MakeServer(config);
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);
  EXPECT_FALSE(server.Resume(ticket, PskMode::kPskKe, TestChHash(), {}, {},
                             kHour, drbg_).accepted);
}

TEST_F(Tls13PskTest, DatabaseIdentitiesWork) {
  Tls13ServerConfig config;
  config.identity_kind = IdentityKind::kDatabaseLookup;
  Tls13Server server = MakeServer(config);
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);
  EXPECT_TRUE(server.Resume(ticket, PskMode::kPskKe, TestChHash(), {}, {},
                            kHour, drbg_).accepted);
  // An unknown identity is refused.
  Tls13Ticket bogus = ticket;
  bogus.identity = Bytes(16, 0xee);
  EXPECT_FALSE(server.Resume(bogus, PskMode::kPskKe, TestChHash(), {}, {},
                             kHour, drbg_).accepted);
}

TEST_F(Tls13PskTest, EarlyDataRoundTrip) {
  Tls13Server server = MakeServer({});
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);
  const Bytes psk = DerivePsk(rm, ticket.ticket_nonce);
  const Bytes early_traffic = DeriveClientEarlyTrafficSecret(
      DeriveEarlySecret(psk), TestChHash());
  const Bytes record =
      ProtectEarlyData(early_traffic, ToBytes("GET /0rtt"), drbg_);

  const auto outcome = server.Resume(ticket, PskMode::kPskDheKe,
                                     TestChHash(), {}, record, kHour, drbg_);
  ASSERT_TRUE(outcome.early_data_plaintext.has_value());
  EXPECT_EQ(ToString(*outcome.early_data_plaintext), "GET /0rtt");
}

TEST_F(Tls13PskTest, StolenSealingKeyDecryptsEarlyDataEvenWithDheKe) {
  // The §8.1 warning, executable: a STEK-style compromise of the identity
  // sealing key exposes 0-RTT data for the full 7-day window, regardless
  // of psk_dhe_ke protecting the rest of the connection.
  Tls13Server server = MakeServer({});
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);
  const Bytes psk = DerivePsk(rm, ticket.ticket_nonce);
  const Bytes early_traffic = DeriveClientEarlyTrafficSecret(
      DeriveEarlySecret(psk), TestChHash());
  const Bytes captured_0rtt =
      ProtectEarlyData(early_traffic, ToBytes("secret cookie"), drbg_);

  // Attacker steals the sealing key days later, opens the captured
  // identity, re-derives the PSK and the early-data keys.
  const tls::Stek stolen = server.StealSealingKey(6 * kDay);
  const auto opened = OpenPskState(stolen, ticket.identity);
  ASSERT_TRUE(opened.has_value());
  const Bytes attacker_psk =
      DerivePsk(opened->resumption_master, opened->ticket_nonce);
  EXPECT_EQ(attacker_psk, psk);
  const Bytes attacker_early = DeriveClientEarlyTrafficSecret(
      DeriveEarlySecret(attacker_psk), TestChHash());
  const auto plaintext = UnprotectEarlyData(attacker_early, captured_0rtt);
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(ToString(*plaintext), "secret cookie");

  // But a psk_dhe_ke connection's traffic secret is NOT recoverable from
  // the PSK alone (the attacker lacks the fresh DH shared secret).
  const auto& group = crypto::GetKexGroup(crypto::NamedGroup::kSimEc61);
  const auto client_kex = group.GenerateKeyPair(drbg_);
  const auto outcome =
      server.Resume(ticket, PskMode::kPskDheKe, TestChHash(),
                    client_kex.public_value, {}, 6 * kDay + kHour, drbg_);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_NE(outcome.traffic_secret,
            DeriveResumedTrafficSecret(attacker_psk, {}, TestChHash()));
}

TEST_F(Tls13PskTest, SealingKeyRotationClosesWindow) {
  Tls13ServerConfig config;
  config.stek.rotation = server::StekRotation::kInterval;
  config.stek.rotation_interval = kDay;
  Tls13Server server = MakeServer(config);
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  const Tls13Ticket ticket = server.IssueTicket(rm, 0);

  const tls::Stek later = server.StealSealingKey(5 * kDay);
  EXPECT_FALSE(OpenPskState(later, ticket.identity).has_value());
}

TEST_F(Tls13PskTest, TamperedIdentityRejected) {
  Tls13Server server = MakeServer({});
  const Bytes rm =
      DeriveResumptionMasterSecret(TestMaster(), TestTranscript());
  Tls13Ticket ticket = server.IssueTicket(rm, 0);
  ticket.identity[ticket.identity.size() / 2] ^= 0x01;
  EXPECT_FALSE(server.Resume(ticket, PskMode::kPskKe, TestChHash(), {}, {},
                             kHour, drbg_).accepted);
}

TEST_F(Tls13PskTest, EarlyDataTamperRejected) {
  const Bytes secret(32, 0x55);
  Bytes record = ProtectEarlyData(secret, ToBytes("data"), drbg_);
  record[20] ^= 0x01;
  EXPECT_FALSE(UnprotectEarlyData(secret, record).has_value());
  EXPECT_FALSE(UnprotectEarlyData(Bytes(32, 0x56),
                                  ProtectEarlyData(secret, ToBytes("x"),
                                                   drbg_))
                   .has_value());
}

}  // namespace
}  // namespace tlsharm::tls13
