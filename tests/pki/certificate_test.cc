#include "pki/certificate.h"

#include <gtest/gtest.h>

namespace tlsharm::pki {
namespace {

CertificateData SampleData() {
  CertificateData data;
  data.subject_cn = "example.com";
  data.sans = {"www.example.com", "*.cdn.example.com"};
  data.issuer = "Sim Intermediate CA";
  data.serial = 42;
  data.not_before = 0;
  data.not_after = 90 * kDay;
  data.scheme = SignatureScheme::kSchnorrSim61;
  data.public_key = ToBytes("public-key-bytes");
  return data;
}

TEST(CertificateTest, TbsSerializationIsDeterministic) {
  EXPECT_EQ(SerializeTbs(SampleData()), SerializeTbs(SampleData()));
}

TEST(CertificateTest, TbsChangesWithEveryField) {
  const Bytes base = SerializeTbs(SampleData());
  CertificateData d = SampleData();
  d.subject_cn = "other.com";
  EXPECT_NE(SerializeTbs(d), base);
  d = SampleData();
  d.serial = 43;
  EXPECT_NE(SerializeTbs(d), base);
  d = SampleData();
  d.not_after += 1;
  EXPECT_NE(SerializeTbs(d), base);
  d = SampleData();
  d.is_ca = true;
  EXPECT_NE(SerializeTbs(d), base);
  d = SampleData();
  d.sans.pop_back();
  EXPECT_NE(SerializeTbs(d), base);
}

TEST(CertificateTest, ParseRoundTrip) {
  Certificate cert;
  cert.data = SampleData();
  cert.signature = ToBytes("signature-bytes");
  const Bytes wire = SerializeCertificate(cert);
  const auto parsed = ParseCertificate(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->data.subject_cn, "example.com");
  EXPECT_EQ(parsed->data.sans.size(), 2u);
  EXPECT_EQ(parsed->data.serial, 42u);
  EXPECT_EQ(parsed->signature, ToBytes("signature-bytes"));
  EXPECT_EQ(SerializeCertificate(*parsed), wire);
}

TEST(CertificateTest, ParseRejectsTruncation) {
  Certificate cert;
  cert.data = SampleData();
  cert.signature = ToBytes("sig");
  Bytes wire = SerializeCertificate(cert);
  for (std::size_t len = 0; len < wire.size(); len += 7) {
    EXPECT_FALSE(ParseCertificate(ByteView(wire.data(), len)).has_value())
        << "truncated to " << len;
  }
  wire.push_back(0);  // trailing garbage
  EXPECT_FALSE(ParseCertificate(wire).has_value());
}

TEST(CertificateTest, FingerprintDistinguishesCertificates) {
  Certificate a, b;
  a.data = SampleData();
  b.data = SampleData();
  b.data.serial = 43;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), a.Fingerprint());
  EXPECT_EQ(a.Fingerprint().size(), 32u);
}

TEST(NameMatchTest, ExactMatch) {
  EXPECT_TRUE(NameMatches("example.com", "example.com"));
  EXPECT_FALSE(NameMatches("example.com", "www.example.com"));
  EXPECT_FALSE(NameMatches("example.com", "example.org"));
}

TEST(NameMatchTest, WildcardOneLabel) {
  EXPECT_TRUE(NameMatches("*.example.com", "www.example.com"));
  EXPECT_TRUE(NameMatches("*.example.com", "a.example.com"));
  EXPECT_FALSE(NameMatches("*.example.com", "example.com"));
  EXPECT_FALSE(NameMatches("*.example.com", "a.b.example.com"));
  EXPECT_FALSE(NameMatches("*.example.com", ".example.com"));
}

TEST(NameMatchTest, WildcardSuffixMustAlign) {
  EXPECT_FALSE(NameMatches("*.example.com", "evilexample.com"));
  EXPECT_FALSE(NameMatches("*.le.com", "examp.le.com.evil"));
}

TEST(CertificateCoversHostTest, ChecksCnAndSans) {
  Certificate cert;
  cert.data = SampleData();
  EXPECT_TRUE(CertificateCoversHost(cert, "example.com"));
  EXPECT_TRUE(CertificateCoversHost(cert, "www.example.com"));
  EXPECT_TRUE(CertificateCoversHost(cert, "img.cdn.example.com"));
  EXPECT_FALSE(CertificateCoversHost(cert, "cdn.example.com"));
  EXPECT_FALSE(CertificateCoversHost(cert, "other.com"));
}

}  // namespace
}  // namespace tlsharm::pki
