#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "pki/ca.h"
#include "pki/root_store.h"

namespace tlsharm::pki {
namespace {

class ChainTest : public ::testing::Test {
 protected:
  ChainTest()
      : drbg_(ToBytes("chain test")),
        root_("Sim Root CA", SignatureScheme::kSchnorrSim61, drbg_),
        intermediate_("Sim Intermediate CA", SignatureScheme::kSchnorrSim61,
                      drbg_),
        server_key_(crypto::SchnorrSim61().GenerateKeyPair(drbg_)) {
    store_.AddRoot(root_.Name(), root_.Scheme(), root_.PublicKey());
    intermediate_cert_ =
        root_.IssueCaCertificate(intermediate_, 0, 365 * kDay, drbg_);
  }

  CertificateChain MakeChain(const std::string& domain,
                             SimTime not_before = 0,
                             SimTime not_after = 90 * kDay) {
    const Certificate leaf = intermediate_.IssueLeaf(
        domain, {}, server_key_.public_key, not_before, not_after, drbg_);
    return {leaf, intermediate_cert_};
  }

  crypto::Drbg drbg_;
  CertificateAuthority root_;
  CertificateAuthority intermediate_;
  crypto::SchnorrKeyPair server_key_;
  Certificate intermediate_cert_;
  RootStore store_;
};

TEST_F(ChainTest, ValidChainVerifies) {
  EXPECT_EQ(store_.Verify(MakeChain("example.com"), "example.com", kDay),
            VerifyStatus::kOk);
}

TEST_F(ChainTest, EmptyChainRejected) {
  EXPECT_EQ(store_.Verify({}, "example.com", kDay),
            VerifyStatus::kEmptyChain);
}

TEST_F(ChainTest, WrongHostRejected) {
  EXPECT_EQ(store_.Verify(MakeChain("example.com"), "other.com", kDay),
            VerifyStatus::kNameMismatch);
}

TEST_F(ChainTest, ExpiredLeafRejected) {
  const auto chain = MakeChain("example.com", 0, 10 * kDay);
  EXPECT_EQ(store_.Verify(chain, "example.com", 11 * kDay),
            VerifyStatus::kExpired);
}

TEST_F(ChainTest, NotYetValidLeafRejected) {
  const auto chain = MakeChain("example.com", 5 * kDay, 90 * kDay);
  EXPECT_EQ(store_.Verify(chain, "example.com", kDay),
            VerifyStatus::kNotYetValid);
}

TEST_F(ChainTest, TamperedLeafSignatureRejected) {
  auto chain = MakeChain("example.com");
  chain[0].signature[0] ^= 0x01;
  EXPECT_EQ(store_.Verify(chain, "example.com", kDay),
            VerifyStatus::kBadSignature);
}

TEST_F(ChainTest, TamperedLeafContentRejected) {
  auto chain = MakeChain("example.com");
  chain[0].data.subject_cn = "victim.com";  // re-point the cert
  EXPECT_EQ(store_.Verify(chain, "victim.com", kDay),
            VerifyStatus::kBadSignature);
}

TEST_F(ChainTest, UntrustedRootRejected) {
  crypto::Drbg other_drbg(ToBytes("rogue"));
  CertificateAuthority rogue_root("Rogue Root", SignatureScheme::kSchnorrSim61,
                                  other_drbg);
  CertificateAuthority rogue_int("Rogue Intermediate",
                                 SignatureScheme::kSchnorrSim61, other_drbg);
  const Certificate rogue_int_cert =
      rogue_root.IssueCaCertificate(rogue_int, 0, 365 * kDay, other_drbg);
  const Certificate leaf = rogue_int.IssueLeaf(
      "example.com", {}, server_key_.public_key, 0, 90 * kDay, other_drbg);
  EXPECT_EQ(store_.Verify({leaf, rogue_int_cert}, "example.com", kDay),
            VerifyStatus::kUntrustedRoot);
}

TEST_F(ChainTest, LeafDirectlySignedByRootVerifies) {
  const Certificate leaf = root_.IssueLeaf("direct.com", {},
                                           server_key_.public_key, 0,
                                           90 * kDay, drbg_);
  EXPECT_EQ(store_.Verify({leaf}, "direct.com", kDay), VerifyStatus::kOk);
}

TEST_F(ChainTest, NonCaIntermediateRejected) {
  // A leaf pretending to be an intermediate must be rejected.
  const Certificate fake_intermediate = root_.IssueLeaf(
      "Sim Intermediate CA", {}, intermediate_.PublicKey(), 0, 365 * kDay,
      drbg_);
  const Certificate leaf = intermediate_.IssueLeaf(
      "example.com", {}, server_key_.public_key, 0, 90 * kDay, drbg_);
  EXPECT_EQ(store_.Verify({leaf, fake_intermediate}, "example.com", kDay),
            VerifyStatus::kNotCa);
}

TEST_F(ChainTest, WildcardLeafCoversSubdomains) {
  const Certificate leaf = intermediate_.IssueLeaf(
      "*.shops.example", {}, server_key_.public_key, 0, 90 * kDay, drbg_);
  const CertificateChain chain = {leaf, intermediate_cert_};
  EXPECT_EQ(store_.Verify(chain, "a.shops.example", kDay), VerifyStatus::kOk);
  EXPECT_EQ(store_.Verify(chain, "shops.example", kDay),
            VerifyStatus::kNameMismatch);
}

TEST_F(ChainTest, RootStoreMembership) {
  EXPECT_TRUE(store_.IsTrustedRoot(root_.Name(), root_.PublicKey()));
  EXPECT_FALSE(store_.IsTrustedRoot("Nobody", root_.PublicKey()));
  EXPECT_FALSE(store_.IsTrustedRoot(root_.Name(), ToBytes("wrong-key")));
  EXPECT_EQ(store_.Size(), 1u);
}

}  // namespace
}  // namespace tlsharm::pki
