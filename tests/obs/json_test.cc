// The observability layer's JSON subset: escaping for the JSONL trace and
// the recursive-descent parser the snapshot/schema gates rely on.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

namespace tlsharm::obs {
namespace {

TEST(JsonEscapeTest, PassesPlainAsciiThrough) {
  EXPECT_EQ(JsonEscape("probe.failure.ok"), "probe.failure.ok");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("nul\x01", 4)), "nul\\u0001");
}

TEST(JsonEscapeTest, EscapesEveryControlByteAndRoundTrips) {
  // The JSONL trace may carry any byte an SNI or probe error string picked
  // up; the full control range 0x00..0x1f must come out as an escape (the
  // short forms or \u00XX) and survive a parse round-trip, NUL included.
  for (int c = 0; c < 0x20; ++c) {
    std::string raw = "a";
    raw.push_back(static_cast<char>(c));
    raw += "b";
    const std::string escaped = JsonEscape(raw);
    EXPECT_EQ(escaped[1], '\\') << "byte 0x" << std::hex << c;
    std::string doc;
    AppendJsonString(doc, raw);
    JsonValue value;
    ASSERT_TRUE(ParseJson(doc, value)) << "byte 0x" << std::hex << c;
    EXPECT_EQ(value.string, raw) << "byte 0x" << std::hex << c;
  }
}

TEST(JsonEscapeTest, PassesInvalidUtf8BytesThrough) {
  // The trace treats strings as bytes: lone continuation bytes, overlong
  // starts and 0xff are not escaped (they are not controls) and must
  // round-trip unmodified rather than be "repaired".
  const std::string raw = "\x80\xbf\xc0\xfe\xff" "tail";
  EXPECT_EQ(JsonEscape(raw), raw);
  std::string doc;
  AppendJsonString(doc, raw);
  JsonValue value;
  ASSERT_TRUE(ParseJson(doc, value));
  EXPECT_EQ(value.string, raw);
}

TEST(JsonEscapeTest, AppendJsonStringWrapsInQuotes) {
  std::string out = "x:";
  AppendJsonString(out, "a\"b");
  EXPECT_EQ(out, "x:\"a\\\"b\"");
}

TEST(JsonParseTest, ParsesIntegersStringsArraysObjects) {
  JsonValue value;
  ASSERT_TRUE(ParseJson(R"({"a":-42,"b":"hi","c":[1,2,3],"d":{"e":0}})",
                        value));
  ASSERT_EQ(value.kind, JsonValue::Kind::kObject);
  ASSERT_NE(value.Find("a"), nullptr);
  EXPECT_EQ(value.Find("a")->integer, -42);
  EXPECT_EQ(value.Find("b")->string, "hi");
  ASSERT_EQ(value.Find("c")->array.size(), 3u);
  EXPECT_EQ(value.Find("c")->array[2].integer, 3);
  ASSERT_NE(value.Find("d")->Find("e"), nullptr);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  JsonValue value;
  ASSERT_TRUE(ParseJson(R"(["a\"b","c\\d","e\nf","\u0041"])", value));
  EXPECT_EQ(value.array[0].string, "a\"b");
  EXPECT_EQ(value.array[1].string, "c\\d");
  EXPECT_EQ(value.array[2].string, "e\nf");
  EXPECT_EQ(value.array[3].string, "A");
}

TEST(JsonParseTest, RejectsOutsideTheSubset) {
  JsonValue value;
  EXPECT_FALSE(ParseJson("1.5", value)) << "floats are outside the subset";
  EXPECT_FALSE(ParseJson("true", value));
  EXPECT_FALSE(ParseJson("null", value));
  EXPECT_FALSE(ParseJson(R"({"a":1,"a":2})", value)) << "duplicate key";
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", value));
  EXPECT_FALSE(ParseJson("{", value));
  EXPECT_FALSE(ParseJson("", value));
}

TEST(JsonParseTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += '[';
  for (int i = 0; i < 64; ++i) deep += ']';
  JsonValue value;
  EXPECT_FALSE(ParseJson(deep, value));
}

}  // namespace
}  // namespace tlsharm::obs
