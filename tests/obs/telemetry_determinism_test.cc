// The observability layer's end-to-end contract against the sharded scan
// engine: for a fixed fault-injected world, the merged metrics snapshot and
// the probe-trace byte stream are identical at any thread count — and
// attaching telemetry never changes a byte of the scan's own output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scanner/scan_engine.h"

namespace tlsharm::scanner {
namespace {

struct TelemetryOutput {
  std::string observations;
  std::string metrics_json;
  std::string trace;
};

// Identically constructed fault-injected worlds per run, same spec as
// ParallelDeterminismTest but with the telemetry attached.
TelemetryOutput RunInstrumentedStudy(int threads, bool telemetry) {
  simnet::Internet net(simnet::PaperPopulationSpec(500), 4242);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));

  std::ostringstream stream;
  std::ostringstream trace_stream;
  ObservationWriter sink(stream);
  obs::JsonlTraceSink trace_sink(trace_stream);
  obs::MetricsRegistry metrics;

  ScanEngineOptions options;
  options.threads = threads;
  options.robustness.retry.max_attempts = 3;
  options.sink = &sink;
  if (telemetry) {
    options.metrics = &metrics;
    options.trace = &trace_sink;
  }

  RunShardedDailyScans(net, /*days=*/2, /*seed=*/777, options);
  TelemetryOutput out;
  out.observations = stream.str();
  out.metrics_json = metrics.SnapshotJson();
  out.trace = trace_stream.str();
  return out;
}

TEST(TelemetryDeterminismTest, SnapshotAndTraceIdenticalAtAnyThreadCount) {
  const TelemetryOutput serial = RunInstrumentedStudy(1, true);
  ASSERT_FALSE(serial.trace.empty());

  obs::MetricsSnapshot snapshot;
  ASSERT_TRUE(obs::ParseSnapshot(serial.metrics_json, snapshot));
  ASSERT_GT(snapshot.counters.at("probe.probes"), 0u);

  for (const int threads : {2, 8}) {
    const TelemetryOutput parallel = RunInstrumentedStudy(threads, true);
    EXPECT_EQ(parallel.metrics_json, serial.metrics_json)
        << "metrics snapshot diverged at " << threads << " threads";
    EXPECT_EQ(parallel.trace, serial.trace)
        << "probe trace diverged at " << threads << " threads";
    EXPECT_EQ(parallel.observations, serial.observations);
  }
}

TEST(TelemetryDeterminismTest, TelemetryNeverChangesScanOutput) {
  const TelemetryOutput with = RunInstrumentedStudy(4, true);
  const TelemetryOutput without = RunInstrumentedStudy(4, false);
  EXPECT_EQ(with.observations, without.observations);
  EXPECT_TRUE(without.trace.empty());
  // A detached registry stays empty (renders the empty snapshot).
  obs::MetricsSnapshot snapshot;
  ASSERT_TRUE(obs::ParseSnapshot(without.metrics_json, snapshot));
  EXPECT_TRUE(snapshot.counters.empty());
}

TEST(TelemetryDeterminismTest, EngineCountersReconcileWithScanResults) {
  simnet::Internet net(simnet::PaperPopulationSpec(400), 11);
  obs::MetricsRegistry metrics;
  ScanEngineOptions options;
  options.threads = 3;
  options.metrics = &metrics;
  const DailyScanResult result =
      RunShardedDailyScans(net, /*days=*/2, /*seed=*/5, options);

  std::size_t scheduled = 0;
  for (const DayLoss& day : result.loss) scheduled += day.scheduled;
  EXPECT_EQ(metrics.GetCounter("scan.days").Value(), 2u);
  EXPECT_EQ(metrics.GetCounter("scan.probes.scheduled").Value(), scheduled);
  // Every scheduled probe ran exactly once in the main pass; the requeue
  // pass adds probe.probes beyond scheduled only when faults are injected.
  EXPECT_GE(metrics.GetCounter("probe.probes").Value(), scheduled);
  // Each probe lands in exactly one failure class.
  std::uint64_t by_class = 0;
  for (int c = 0; c < kProbeFailureClasses; ++c) {
    by_class += metrics
                    .GetCounter("probe.failure." +
                                std::string(ToString(
                                    static_cast<ProbeFailure>(c))))
                    .Value();
  }
  EXPECT_EQ(by_class, metrics.GetCounter("probe.probes").Value());
  // The fleet sweep ran: terminators exist and every terminator's stores
  // were visited (deduplicated, so counts are <= the terminator count).
  EXPECT_GT(metrics.GetGauge("fleet.terminators").Value(), 0);
  EXPECT_GT(metrics.GetCounter("fleet.stek.managers").Value(), 0u);
  EXPECT_LE(metrics.GetCounter("fleet.stek.managers").Value(),
            static_cast<std::uint64_t>(
                metrics.GetGauge("fleet.terminators").Value()));
}

TEST(TelemetryDeterminismTest, ProberRecordsAttemptLogAndResumeCounters) {
  simnet::Internet net(simnet::PaperPopulationSpec(300), 7);
  obs::MetricsRegistry metrics;
  Prober prober(net, 1);
  prober.SetMetrics(&metrics);

  // Attempt logging is off by default: the hot path stays allocation-free.
  ProbeOptions options;
  options.want_full_result = true;
  ProbeResult result = prober.Probe(0, kHour, options);
  EXPECT_TRUE(result.attempt_log.empty());

  prober.SetAttemptLogging(true);
  result = prober.Probe(0, kHour, options);
  ASSERT_FALSE(result.attempt_log.empty());
  EXPECT_EQ(result.attempt_log.front().start, kHour);
  EXPECT_EQ(result.attempt_log.back().backoff, 0)
      << "the final attempt has no next-attempt backoff";
  EXPECT_EQ(result.attempt_log.size(), result.observation.attempts);

  EXPECT_EQ(metrics.GetCounter("probe.probes").Value(), 2u);
  EXPECT_GE(metrics.GetCounter("probe.attempts").Value(), 2u);

  if (result.session.valid) {
    prober.TryResume(result.session, 0, kHour + kMinute);
    EXPECT_GE(metrics.GetCounter("resume.attempts").Value(), 1u);
    EXPECT_EQ(metrics.GetCounter("resume.accepted").Value() +
                  metrics.GetCounter("resume.rejected").Value(),
              1u);
  }
}

TEST(TelemetryDeterminismTest, CorruptStoreLinesAreCounted) {
  simnet::Internet net(simnet::PaperPopulationSpec(300), 7);
  std::ostringstream stream;
  ObservationWriter sink(stream);
  ScanEngineOptions options;
  options.sink = &sink;
  RunShardedDailyScans(net, 1, 13, options);

  std::string data = stream.str();
  ASSERT_FALSE(data.empty());
  data += "not|a|valid|line\n";
  data += "garbage\n";

  std::size_t corrupt = 0;
  const auto parsed = ParseObservations(data, &corrupt);
  EXPECT_EQ(corrupt, 2u);
  EXPECT_FALSE(parsed.empty());
  // The clean prefix still parses to exactly the records written.
  std::size_t clean = 0;
  EXPECT_EQ(ParseObservations(stream.str(), &clean).size(), parsed.size());
  EXPECT_EQ(clean, 0u);
}

}  // namespace
}  // namespace tlsharm::scanner
