// MetricsRegistry semantics the determinism contract leans on: fixed
// histogram bucketing, commutative merges, and a byte-exact snapshot
// round-trip.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tlsharm::obs {
namespace {

TEST(HistogramTest, BucketsAreInclusiveUpperBounds) {
  Histogram h({10, 20});
  for (const std::int64_t v : {-5, 0, 10}) h.Observe(v);  // first bucket
  for (const std::int64_t v : {11, 20}) h.Observe(v);     // second bucket
  h.Observe(21);                                          // overflow
  ASSERT_EQ(h.Counts().size(), 3u);
  EXPECT_EQ(h.Counts()[0], 3u);
  EXPECT_EQ(h.Counts()[1], 2u);
  EXPECT_EQ(h.Counts()[2], 1u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_EQ(h.Sum(), -5 + 0 + 10 + 11 + 20 + 21);
}

TEST(HistogramTest, ObserveNWeightsOneValue) {
  Histogram h({100});
  h.ObserveN(7, 5);
  EXPECT_EQ(h.Counts()[0], 5u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 35);
}

TEST(HistogramTest, MergeAddsBucketwise) {
  Histogram a({10});
  Histogram b({10});
  a.Observe(5);
  b.Observe(6);
  b.Observe(50);
  a.MergeFrom(b);
  EXPECT_EQ(a.Counts()[0], 2u);
  EXPECT_EQ(a.Counts()[1], 1u);
  EXPECT_EQ(a.Sum(), 61);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(RegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("a");
  c.Add(2);
  reg.GetCounter("b").Add(1);  // later creation must not move `c`
  EXPECT_EQ(&reg.GetCounter("a"), &c);
  EXPECT_EQ(reg.GetCounter("a").Value(), 2u);
}

TEST(RegistryTest, HistogramBoundsFixedAtFirstCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("h", {1, 2});
  Histogram& again = reg.GetHistogram("h", {99});  // bounds ignored
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.Bounds(), (std::vector<std::int64_t>{1, 2}));
}

TEST(RegistryTest, MergeIsCommutativePerKind) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("c").Add(3);
  b.GetCounter("c").Add(4);
  b.GetCounter("only_b").Add(1);
  a.GetGauge("g").Set(7);
  b.GetGauge("g").Set(5);  // merge takes the max
  a.GetHistogram("h", {10}).Observe(3);
  b.GetHistogram("h", {10}).Observe(30);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("c").Value(), 7u);
  EXPECT_EQ(a.GetCounter("only_b").Value(), 1u);
  EXPECT_EQ(a.GetGauge("g").Value(), 7);
  EXPECT_EQ(a.GetHistogram("h", {10}).Counts()[0], 1u);
  EXPECT_EQ(a.GetHistogram("h", {10}).Counts()[1], 1u);

  // The opposite merge order lands on the same snapshot.
  MetricsRegistry a2;
  MetricsRegistry b2;
  a2.GetCounter("c").Add(4);
  a2.GetCounter("only_b").Add(1);
  b2.GetCounter("c").Add(3);
  a2.GetGauge("g").Set(5);
  b2.GetGauge("g").Set(7);
  a2.GetHistogram("h", {10}).Observe(30);
  b2.GetHistogram("h", {10}).Observe(3);
  a2.MergeFrom(b2);
  EXPECT_EQ(a.SnapshotJson(), a2.SnapshotJson());
}

TEST(SnapshotTest, RendersCanonicallyAndRoundTrips) {
  MetricsRegistry reg;
  reg.GetCounter("zeta").Add(1);
  reg.GetCounter("alpha").Add(2);
  reg.GetGauge("level").Set(-3);
  reg.GetHistogram("lat", {5, 10}).Observe(7);
  reg.GetCounter("needs \"escaping\"\n").Add(9);

  const std::string json = reg.SnapshotJson();
  // Keys render sorted, so equal registries render equal bytes.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));

  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseSnapshot(json, parsed));
  EXPECT_EQ(RenderSnapshot(parsed), json);
  EXPECT_EQ(parsed.counters.at("alpha"), 2u);
  EXPECT_EQ(parsed.counters.at("needs \"escaping\"\n"), 9u);
  EXPECT_EQ(parsed.gauges.at("level"), -3);
  ASSERT_EQ(parsed.histograms.at("lat").counts.size(), 3u);
  EXPECT_EQ(parsed.histograms.at("lat").counts[1], 1u);
  EXPECT_EQ(parsed.histograms.at("lat").sum, 7);
}

TEST(SnapshotTest, EmptyRegistryRoundTrips) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.Empty());
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseSnapshot(reg.SnapshotJson(), parsed));
  EXPECT_EQ(RenderSnapshot(parsed), reg.SnapshotJson());
}

TEST(SnapshotTest, ParseRejectsSchemaDrift) {
  MetricsSnapshot out;
  EXPECT_FALSE(ParseSnapshot("{}", out)) << "sections are mandatory";
  EXPECT_FALSE(ParseSnapshot(R"({"counters":{},"gauges":{}})", out));
  EXPECT_FALSE(ParseSnapshot(
      R"({"counters":{"c":-1},"gauges":{},"histograms":{}})", out))
      << "negative counter";
  EXPECT_FALSE(ParseSnapshot(
      R"({"counters":{},"gauges":{},"histograms":)"
      R"({"h":{"bounds":[1],"counts":[1],"sum":0,"count":1}}})",
      out))
      << "counts must have bounds+1 entries";
  EXPECT_FALSE(ParseSnapshot("not json", out));
}

TEST(EnvKnobTest, MetricsPathFromEnv) {
  ASSERT_EQ(unsetenv("TLSHARM_METRICS"), 0);
  EXPECT_EQ(MetricsPathFromEnv(), "");
  ASSERT_EQ(setenv("TLSHARM_METRICS", "/tmp/m.json", 1), 0);
  EXPECT_EQ(MetricsPathFromEnv(), "/tmp/m.json");
  ASSERT_EQ(unsetenv("TLSHARM_METRICS"), 0);
}

}  // namespace
}  // namespace tlsharm::obs
