// Probe-trace formatting and the sharded staging buffer: fixed key order,
// JSON-escaped strings, integer-only values, canonical flush order.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "obs/json.h"

namespace tlsharm::obs {
namespace {

ProbeTraceEvent SampleEvent() {
  ProbeTraceEvent event;
  event.day = 2;
  event.seq = 41;
  event.pass = "requeue";
  event.kind = "dhe";
  event.domain = 7;
  event.scheduled = 187200;
  event.attempt = 3;
  event.start = 187215;
  event.duration = 10;
  event.backoff = 4;
  event.failure = "timeout";
  event.final_attempt = false;
  return event;
}

TEST(TraceFormatTest, GoldenLineLocksSchemaAndKeyOrder) {
  // Any change to this string is a trace-schema change; update the docs and
  // the scanstats schema gate along with it.
  EXPECT_EQ(FormatTraceEvent(SampleEvent()),
            "{\"day\":2,\"seq\":41,\"pass\":\"requeue\",\"kind\":\"dhe\","
            "\"domain\":7,\"scheduled\":187200,\"attempt\":3,"
            "\"start\":187215,\"dur\":10,\"backoff\":4,"
            "\"failure\":\"timeout\",\"final\":0}");
}

TEST(TraceFormatTest, ResumedFieldOnlyWhenMeaningful) {
  ProbeTraceEvent event;  // resumed defaults to -1: not a resumption probe
  EXPECT_EQ(FormatTraceEvent(event).find("resumed"), std::string::npos);
  event.resumed = 1;
  EXPECT_NE(FormatTraceEvent(event).find("\"resumed\":1"), std::string::npos);
  event.resumed = 0;
  EXPECT_NE(FormatTraceEvent(event).find("\"resumed\":0"), std::string::npos);
}

TEST(TraceFormatTest, EveryLineParsesWithinTheJsonSubset) {
  ProbeTraceEvent event = SampleEvent();
  event.resumed = 1;
  JsonValue value;
  ASSERT_TRUE(ParseJson(FormatTraceEvent(event), value));
  EXPECT_EQ(value.Find("seq")->integer, 41);
  EXPECT_EQ(value.Find("failure")->string, "timeout");
  EXPECT_EQ(value.Find("final")->integer, 0);
  EXPECT_EQ(value.Find("resumed")->integer, 1);
}

TEST(TraceFormatTest, StringFieldsAreJsonEscaped) {
  ProbeTraceEvent event;
  event.failure = "we\"ird\n";
  const std::string line = FormatTraceEvent(event);
  JsonValue value;
  ASSERT_TRUE(ParseJson(line, value));
  EXPECT_EQ(value.Find("failure")->string, "we\"ird\n");
}

TEST(JsonlSinkTest, EmitsOneLinePerEventAndCounts) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.Emit(SampleEvent());
  sink.Emit(SampleEvent());
  EXPECT_EQ(sink.Emitted(), 2u);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_EQ(text.front(), '{');
}

TEST(ShardedTraceBufferTest, FlushDrainsInShardOrderAndClears) {
  ShardedTraceBuffer buffer(3);
  ProbeTraceEvent a = SampleEvent();
  a.seq = 100;
  ProbeTraceEvent b = SampleEvent();
  b.seq = 200;
  ProbeTraceEvent c = SampleEvent();
  c.seq = 300;
  // Append out of shard order: flush must still emit shard 0 first.
  buffer.Append(2, c);
  buffer.Append(0, a);
  buffer.Append(1, b);

  std::ostringstream out;
  JsonlTraceSink sink(out);
  EXPECT_EQ(buffer.Flush(sink), 3u);
  const std::string text = out.str();
  EXPECT_LT(text.find("\"seq\":100"), text.find("\"seq\":200"));
  EXPECT_LT(text.find("\"seq\":200"), text.find("\"seq\":300"));

  // Flushed buffers are empty; a second flush emits nothing.
  EXPECT_EQ(buffer.Flush(sink), 0u);
  EXPECT_EQ(sink.Emitted(), 3u);
}

TEST(EnvKnobTest, TracePathFromEnv) {
  ASSERT_EQ(unsetenv("TLSHARM_TRACE"), 0);
  EXPECT_EQ(TracePathFromEnv(), "");
  ASSERT_EQ(setenv("TLSHARM_TRACE", "/tmp/t.jsonl", 1), 0);
  EXPECT_EQ(TracePathFromEnv(), "/tmp/t.jsonl");
  ASSERT_EQ(unsetenv("TLSHARM_TRACE"), 0);
}

}  // namespace
}  // namespace tlsharm::obs
