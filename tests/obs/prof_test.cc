// The wall-clock performance plane (obs/prof.h, obs/prof_report.h).
//
// Wall time itself is untestable, so every test here injects explicit
// timestamps through the prof_internal seam — the same recording code the
// monotonic clock feeds in production, but with durations, self-times,
// histogram buckets and Chrome trace bytes that are exactly predictable.
//
// The plane's global state (thread buffers, track names) is process-wide
// and survives ProfReset by design, so GoldenChromeTrace must run before
// any test that registers extra thread tracks; tests in this file are
// ordered accordingly (gtest runs them in registration order).
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/prof_report.h"

namespace tlsharm::obs {
namespace {

using prof_internal::BeginSpanAt;
using prof_internal::EndSpanAt;

// Fresh sites for this file; the library's own sites (scan.*, crypto.*)
// stay at count zero because profiling is only enabled inside these tests.
const ProfSite kOuter("proftest.outer");
const ProfSite kInner("proftest.inner");
const ProfSite kQuiet("proftest.quiet", kProfNoTrace);
const ProfSite kBuckets("proftest.buckets");

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetProfilingEnabled(true);
    SetProfTraceEnabled(false);
    ProfReset();
  }
  void TearDown() override {
    SetProfilingEnabled(false);
    SetProfTraceEnabled(false);
    ProfReset();
  }
};

const ProfSpanStats* FindSpan(const ProfSnapshot& snap,
                              const std::string& name) {
  for (const ProfSpanStats& s : snap.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// The exported Chrome trace is a documented schema (fixed field order,
// pid/tid/ts/dur in microseconds with nanosecond precision); tools and the
// LoadChromeTrace round-trip depend on these exact bytes.
TEST_F(ProfTest, GoldenChromeTrace) {
  SetProfTraceEnabled(true);
  ProfSetThreadTrack(0, "main");
  BeginSpanAt(kOuter, 1000);
  BeginSpanAt(kInner, 2000);
  EndSpanAt(3000);
  EndSpanAt(5000);

  EXPECT_EQ(ProfTraceEventCount(), 2u);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"main\"}}"
      ",\n{\"name\":\"proftest.outer\",\"cat\":\"proftest\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":4.000}"
      ",\n{\"name\":\"proftest.inner\",\"cat\":\"proftest\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":0,\"ts\":1.000,\"dur\":1.000}"
      "\n]}\n";
  EXPECT_EQ(ProfChromeTraceJson(), expected);
}

TEST_F(ProfTest, NestedSpansSplitSelfTime) {
  BeginSpanAt(kOuter, 1000);
  BeginSpanAt(kInner, 2000);
  EndSpanAt(3000);
  EndSpanAt(5000);

  const ProfSnapshot snap = ProfSnapshotNow();
  const ProfSpanStats* outer = FindSpan(snap, "proftest.outer");
  const ProfSpanStats* inner = FindSpan(snap, "proftest.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->total_ns, 4000u);
  EXPECT_EQ(outer->self_ns, 3000u);  // minus the 1000 ns child
  EXPECT_EQ(inner->total_ns, 1000u);
  EXPECT_EQ(inner->self_ns, 1000u);
  // Depth-0 spans feed the attribution partition: root total is the
  // outer span's wall time, root self the slice no child claimed.
  EXPECT_EQ(snap.root_total_ns, 4000u);
  EXPECT_EQ(snap.root_self_ns, 3000u);
  EXPECT_DOUBLE_EQ(ProfAttributedPct(snap), 25.0);
}

TEST_F(ProfTest, DisabledScopeRecordsNothing) {
  SetProfilingEnabled(false);
  { ProfScope span(kOuter); }
  SetProfilingEnabled(true);
  const ProfSnapshot snap = ProfSnapshotNow();
  EXPECT_EQ(FindSpan(snap, "proftest.outer"), nullptr);
}

TEST_F(ProfTest, NoTraceFlagSkipsEventBufferButAggregates) {
  SetProfTraceEnabled(true);
  BeginSpanAt(kQuiet, 100);
  EndSpanAt(200);
  EXPECT_EQ(ProfTraceEventCount(), 0u);
  const ProfSnapshot snap = ProfSnapshotNow();
  const ProfSpanStats* quiet = FindSpan(snap, "proftest.quiet");
  ASSERT_NE(quiet, nullptr);
  EXPECT_EQ(quiet->count, 1u);
  EXPECT_EQ(quiet->total_ns, 100u);
  EXPECT_EQ(quiet->flags, kProfNoTrace);
}

TEST_F(ProfTest, HistogramBucketsAndQuantiles) {
  // Durations 4..7 ns all land in bucket 2 ([4, 8)); 1024 ns in bucket 10.
  for (std::uint64_t dur = 4; dur <= 7; ++dur) {
    BeginSpanAt(kBuckets, 10'000);
    EndSpanAt(10'000 + dur);
  }
  BeginSpanAt(kBuckets, 20'000);
  EndSpanAt(20'000 + 1024);

  const ProfSnapshot snap = ProfSnapshotNow();
  const ProfSpanStats* s = FindSpan(snap, "proftest.buckets");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 5u);
  EXPECT_EQ(s->min_ns, 4u);
  EXPECT_EQ(s->max_ns, 1024u);
  EXPECT_EQ(s->buckets[2], 4u);
  EXPECT_EQ(s->buckets[10], 1u);

  // Quantiles: exact min/max at the extremes, interpolation inside a
  // bucket in between, and monotone in q.
  EXPECT_DOUBLE_EQ(ProfQuantileNs(*s, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(ProfQuantileNs(*s, 1.0), 1024.0);
  const double p50 = ProfQuantileNs(*s, 0.5);
  EXPECT_GE(p50, 4.0);
  EXPECT_LT(p50, 8.0);
  EXPECT_LE(ProfQuantileNs(*s, 0.5), ProfQuantileNs(*s, 0.95));
  EXPECT_LE(ProfQuantileNs(*s, 0.95), ProfQuantileNs(*s, 0.99));
}

// Worker threads write to their own buffers; after join (the production
// contract — the scan engine merges only after joining its shards) the
// snapshot merges every thread's aggregates.
TEST_F(ProfTest, MergesThreadLocalBuffers) {
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < 3; ++i) {
        const std::uint64_t base = 1000u * static_cast<std::uint64_t>(t + 1);
        BeginSpanAt(kInner, base);
        EndSpanAt(base + 10);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  BeginSpanAt(kInner, 50);
  EndSpanAt(70);

  const ProfSnapshot snap = ProfSnapshotNow();
  const ProfSpanStats* s = FindSpan(snap, "proftest.inner");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 13u);  // 4 threads x 3 + 1 on this thread
  EXPECT_EQ(s->total_ns, 4u * 3u * 10u + 20u);
  EXPECT_EQ(s->min_ns, 10u);
  EXPECT_EQ(s->max_ns, 20u);
}

TEST_F(ProfTest, ShardStallAccounting) {
  ProfSetThreadTrack(1, "shard-0");
  ProfRecordShardStall(1, 900, 100);
  ProfRecordShardStall(1, 800, 200);
  const ProfSnapshot snap = ProfSnapshotNow();
  ASSERT_EQ(snap.tracks.size(), 1u);
  EXPECT_EQ(snap.tracks[0].track, 1);
  EXPECT_EQ(snap.tracks[0].name, "shard-0");
  EXPECT_EQ(snap.tracks[0].days, 2u);
  EXPECT_EQ(snap.tracks[0].busy_ns, 1700u);
  EXPECT_EQ(snap.tracks[0].stall_ns, 300u);
}

// tlsharm-prof's offline mode: the Chrome trace file folds back into the
// same aggregates the live snapshot held, self-time reconstructed by
// re-nesting each tid's intervals.
TEST_F(ProfTest, LoadChromeTraceRoundTrips) {
  SetProfTraceEnabled(true);
  BeginSpanAt(kOuter, 1000);
  BeginSpanAt(kInner, 2000);
  EndSpanAt(3000);
  EndSpanAt(5000);
  const std::string json = ProfChromeTraceJson();

  ProfSnapshot loaded;
  std::string error;
  ASSERT_TRUE(LoadChromeTrace(json, &loaded, &error)) << error;
  const ProfSpanStats* outer = FindSpan(loaded, "proftest.outer");
  const ProfSpanStats* inner = FindSpan(loaded, "proftest.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->total_ns, 4000u);
  EXPECT_EQ(outer->self_ns, 3000u);
  EXPECT_EQ(inner->total_ns, 1000u);
  EXPECT_EQ(inner->self_ns, 1000u);

  ProfSnapshot bad;
  EXPECT_FALSE(LoadChromeTrace("not json", &bad, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(ProfTest, ReportRendersHotspotsAndAttribution) {
  BeginSpanAt(kOuter, 1000);
  BeginSpanAt(kInner, 2000);
  EndSpanAt(3000);
  EndSpanAt(5000);
  const ProfSnapshot snap = ProfSnapshotNow();

  const std::string report = RenderProfReport(snap);
  EXPECT_NE(report.find("proftest.outer"), std::string::npos);
  EXPECT_NE(report.find("attributed to named spans"), std::string::npos);

  // Hotspot JSON is integer-ns only, so the deterministic plane's own
  // parser (obs/json.h) can read what lands in BENCH_prof.json.
  const std::string hotspots = RenderHotspotJson(snap, 8);
  EXPECT_NE(hotspots.find("\"span\": \"proftest.outer\""),
            std::string::npos);
}

}  // namespace
}  // namespace tlsharm::obs
