// Columnar segment codec round-trips: every stored field survives
// encode -> decode for observation and lifetime segments, encoding is a
// pure function of the rows, and the envelope peek agrees with the kind.
#include "warehouse/segment.h"

#include <gtest/gtest.h>

#include "tls/constants.h"
#include "warehouse/format.h"

namespace tlsharm::warehouse {
namespace {

using scanner::HandshakeObservation;

HandshakeObservation MakeObservation(scanner::DomainIndex domain,
                                     std::uint64_t salt) {
  HandshakeObservation obs;
  obs.domain = domain;
  obs.connected = true;
  obs.handshake_ok = (salt % 3) != 0;
  obs.trusted = obs.handshake_ok && (salt % 5) != 0;
  obs.failure = obs.handshake_ok ? scanner::ProbeFailure::kNone
                                 : scanner::ProbeFailure::kTimeout;
  obs.suite = (salt % 2) == 0 ? tls::CipherSuite::kEcdheWithAes128CbcSha256
                              : tls::CipherSuite::kDheWithAes128CbcSha256;
  obs.kex_group = static_cast<std::uint16_t>(salt * 7 % 0xffff);
  obs.kex_value = salt * 0x9e3779b97f4a7c15ull + 1;
  obs.session_id_set = (salt % 2) == 0;
  obs.session_id = obs.session_id_set ? salt + 100 : scanner::kNoSecret;
  obs.ticket_issued = (salt % 4) == 0;
  obs.ticket_lifetime_hint = obs.ticket_issued ? 7200 : 0;
  obs.stek_id = obs.ticket_issued ? salt + 999 : scanner::kNoSecret;
  return obs;
}

void ExpectSameObservation(const HandshakeObservation& a,
                           const HandshakeObservation& b) {
  EXPECT_EQ(a.domain, b.domain);
  EXPECT_EQ(a.connected, b.connected);
  EXPECT_EQ(a.handshake_ok, b.handshake_ok);
  EXPECT_EQ(a.trusted, b.trusted);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.suite, b.suite);
  EXPECT_EQ(a.kex_group, b.kex_group);
  EXPECT_EQ(a.kex_value, b.kex_value);
  EXPECT_EQ(a.session_id_set, b.session_id_set);
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.ticket_issued, b.ticket_issued);
  EXPECT_EQ(a.ticket_lifetime_hint, b.ticket_lifetime_hint);
  EXPECT_EQ(a.stek_id, b.stek_id);
}

TEST(SegmentCodecTest, ObservationSegmentRoundTrips) {
  std::vector<HandshakeObservation> rows;
  // Repeated domains (dictionary must intern), out-of-order domains
  // (canonical scan order is by permutation, not index), extreme values.
  for (std::uint64_t i = 0; i < 50; ++i) {
    rows.push_back(MakeObservation(static_cast<scanner::DomainIndex>(
                                       (i * 37) % 13),
                                   i));
  }
  rows.push_back(MakeObservation(0xffffffffu, 3));
  rows.back().kex_value = ~0ull;
  rows.back().session_id = ~0ull;
  rows.back().stek_id = ~0ull;
  rows.back().ticket_lifetime_hint = 0xffffffffu;

  const Bytes segment = EncodeObservationSegment(12, rows);
  ASSERT_FALSE(segment.empty());

  int day = -1;
  std::vector<HandshakeObservation> decoded;
  std::string error;
  ASSERT_TRUE(DecodeObservationSegment(segment, &day, &decoded, &error))
      << error;
  EXPECT_EQ(day, 12);
  ASSERT_EQ(decoded.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ExpectSameObservation(rows[i], decoded[i]);
  }
}

TEST(SegmentCodecTest, EmptySegmentRoundTrips) {
  const Bytes segment = EncodeObservationSegment(3, {});
  int day = -1;
  std::vector<HandshakeObservation> decoded{MakeObservation(1, 1)};
  std::string error;
  ASSERT_TRUE(DecodeObservationSegment(segment, &day, &decoded, &error))
      << error;
  EXPECT_EQ(day, 3);
  EXPECT_TRUE(decoded.empty());
}

TEST(SegmentCodecTest, EncodingIsDeterministic) {
  std::vector<HandshakeObservation> rows;
  for (std::uint64_t i = 0; i < 20; ++i) {
    rows.push_back(MakeObservation(static_cast<scanner::DomainIndex>(i % 7),
                                   i));
  }
  EXPECT_EQ(EncodeObservationSegment(5, rows),
            EncodeObservationSegment(5, rows));
}

TEST(SegmentCodecTest, LifetimeSegmentRoundTrips) {
  scanner::ResumptionLifetimeResult result;
  result.trusted_https = 420;
  result.indicated = 300;
  result.resumed_1s = 250;
  for (scanner::DomainIndex d = 3; d < 100; d += 7) {
    scanner::LifetimeMeasurement m;
    m.domain = d;
    m.max_delay = static_cast<SimTime>(d) * kMinute;
    m.lifetime_hint = d * 60;
    result.lifetimes.push_back(m);
  }

  const Bytes segment = EncodeLifetimeSegment(kExperimentTicket, result);
  std::uint8_t experiment = 0xff;
  scanner::ResumptionLifetimeResult decoded;
  std::string error;
  ASSERT_TRUE(DecodeLifetimeSegment(segment, &experiment, &decoded, &error))
      << error;
  EXPECT_EQ(experiment, kExperimentTicket);
  EXPECT_EQ(decoded.trusted_https, result.trusted_https);
  EXPECT_EQ(decoded.indicated, result.indicated);
  EXPECT_EQ(decoded.resumed_1s, result.resumed_1s);
  ASSERT_EQ(decoded.lifetimes.size(), result.lifetimes.size());
  for (std::size_t i = 0; i < result.lifetimes.size(); ++i) {
    EXPECT_EQ(decoded.lifetimes[i].domain, result.lifetimes[i].domain);
    EXPECT_EQ(decoded.lifetimes[i].max_delay, result.lifetimes[i].max_delay);
    EXPECT_EQ(decoded.lifetimes[i].lifetime_hint,
              result.lifetimes[i].lifetime_hint);
  }
}

TEST(SegmentCodecTest, PeekReportsTheKind) {
  std::uint8_t kind = 0xff;
  std::string error;
  ASSERT_TRUE(
      PeekSegmentKind(EncodeObservationSegment(0, {}), &kind, &error))
      << error;
  EXPECT_EQ(kind, kKindObservations);
  ASSERT_TRUE(PeekSegmentKind(
      EncodeLifetimeSegment(kExperimentSessionId, {}), &kind, &error))
      << error;
  EXPECT_EQ(kind, kKindLifetime);
}

TEST(SegmentCodecTest, KindMismatchIsRejected) {
  int day = 0;
  std::vector<HandshakeObservation> rows;
  std::string error;
  EXPECT_FALSE(DecodeObservationSegment(
      EncodeLifetimeSegment(kExperimentTicket, {}), &day, &rows, &error));
  EXPECT_NE(error.find("not an observation segment"), std::string::npos)
      << error;

  std::uint8_t experiment = 0;
  scanner::ResumptionLifetimeResult result;
  EXPECT_FALSE(DecodeLifetimeSegment(EncodeObservationSegment(0, {}),
                                     &experiment, &result, &error));
  EXPECT_NE(error.find("not a lifetime segment"), std::string::npos) << error;
}

}  // namespace
}  // namespace tlsharm::warehouse
