// The incremental fold's core claim: folding a warehouse recorded by the
// scan engine reproduces the engine's own aggregates exactly — spans,
// core-domain accounting, everything except the (non-reconstructible)
// loss ledger — and resuming from a checkpoint changes nothing but the
// number of days re-read.
#include "warehouse/fold.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "scanner/scan_engine.h"

namespace tlsharm::warehouse {
namespace {

constexpr int kDays = 4;
constexpr std::uint64_t kWorldSeed = 4242;
constexpr std::uint64_t kScanSeed = 777;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "warehouse_fold_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Records a seeded faulty study into `dir` and returns the engine's own
// result for comparison.
scanner::DailyScanResult RecordStudy(simnet::Internet& net,
                                     const std::string& dir) {
  std::string error;
  auto writer = WarehouseWriter::Create(dir, &error);
  EXPECT_NE(writer, nullptr) << error;
  scanner::ScanEngineOptions options;
  options.robustness.retry.max_attempts = 3;
  options.store = writer.get();
  const auto result =
      scanner::RunShardedDailyScans(net, kDays, kScanSeed, options);
  EXPECT_TRUE(writer->ok()) << writer->error();
  return result;
}

#define MAKE_WORLD(net)                                            \
  simnet::Internet net(simnet::PaperPopulationSpec(500), kWorldSeed); \
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0))

void ExpectFoldMatchesEngine(const scanner::DailyScanResult& engine,
                             const scanner::DailyScanResult& folded) {
  EXPECT_EQ(folded.core_domains, engine.core_domains);
  EXPECT_EQ(folded.core_ever_ticket, engine.core_ever_ticket);
  EXPECT_EQ(folded.core_ever_ecdhe, engine.core_ever_ecdhe);
  EXPECT_EQ(folded.core_ever_dhe_connect, engine.core_ever_dhe_connect);
  EXPECT_EQ(folded.core_any_mechanism, engine.core_any_mechanism);
  EXPECT_EQ(folded.stek_spans.AllSpans(), engine.stek_spans.AllSpans());
  EXPECT_EQ(folded.ecdhe_spans.AllSpans(), engine.ecdhe_spans.AllSpans());
  EXPECT_EQ(folded.dhe_spans.AllSpans(), engine.dhe_spans.AllSpans());
  EXPECT_TRUE(folded.loss.empty());  // not reconstructible from the store
}

TEST(ScanFoldTest, FoldReproducesEngineAggregates) {
  MAKE_WORLD(net);
  const std::string dir = FreshDir("parity");
  const auto engine = RecordStudy(net, dir);
  ASSERT_FALSE(engine.core_domains.empty());

  std::string error;
  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;
  ASSERT_EQ(wh->DayCount(), kDays);

  scanner::DailyScanResult folded;
  FoldStats stats;
  ASSERT_TRUE(FoldDailyScans(*wh, net, {}, &folded, &error, &stats)) << error;
  EXPECT_EQ(stats.days_folded, kDays);
  EXPECT_EQ(stats.resumed_from, 0);
  ExpectFoldMatchesEngine(engine, folded);
}

TEST(ScanFoldTest, CheckpointResumeFoldsOnlyNewDays) {
  MAKE_WORLD(net);
  const std::string dir = FreshDir("resume");
  const auto engine = RecordStudy(net, dir);

  std::string error;
  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;

  // First fold writes a checkpoint per day...
  scanner::DailyScanResult cold;
  FoldOptions write_options;
  write_options.use_checkpoints = false;
  write_options.write_checkpoints = true;
  ASSERT_TRUE(FoldDailyScans(*wh, net, write_options, &cold, &error))
      << error;
  for (int day = 0; day < kDays; ++day) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + CheckpointFileName(day)))
        << "missing checkpoint for day " << day;
  }

  // ...so the next fold reads zero segments and still agrees.
  scanner::DailyScanResult warm;
  FoldStats stats;
  ASSERT_TRUE(FoldDailyScans(*wh, net, {}, &warm, &error, &stats)) << error;
  EXPECT_EQ(stats.days_folded, 0);
  EXPECT_EQ(stats.resumed_from, kDays);
  ExpectFoldMatchesEngine(engine, warm);

  // With the last checkpoint gone, exactly one day is re-read.
  std::filesystem::remove(dir + "/" + CheckpointFileName(kDays - 1));
  scanner::DailyScanResult partial;
  ASSERT_TRUE(FoldDailyScans(*wh, net, {}, &partial, &error, &stats))
      << error;
  EXPECT_EQ(stats.days_folded, 1);
  EXPECT_EQ(stats.resumed_from, kDays - 1);
  ExpectFoldMatchesEngine(engine, partial);
}

TEST(ScanFoldTest, CorruptCheckpointTriggersColdRefoldNotFailure) {
  MAKE_WORLD(net);
  const std::string dir = FreshDir("corrupt");
  const auto engine = RecordStudy(net, dir);

  std::string error;
  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;
  scanner::DailyScanResult cold;
  FoldOptions write_options;
  write_options.use_checkpoints = false;
  write_options.write_checkpoints = true;
  ASSERT_TRUE(FoldDailyScans(*wh, net, write_options, &cold, &error))
      << error;

  // Flip a byte in every checkpoint: all must be rejected, the fold must
  // fall back to day 0 and still match.
  for (int day = 0; day < kDays; ++day) {
    const std::string path = dir + "/" + CheckpointFileName(day);
    Bytes bytes;
    ASSERT_TRUE(ReadWarehouseFile(path, &bytes, &error)) << error;
    bytes[bytes.size() / 2] ^= 0x10;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  scanner::DailyScanResult refolded;
  FoldStats stats;
  ASSERT_TRUE(FoldDailyScans(*wh, net, {}, &refolded, &error, &stats))
      << error;
  EXPECT_EQ(stats.resumed_from, 0);
  EXPECT_EQ(stats.days_folded, kDays);
  ExpectFoldMatchesEngine(engine, refolded);
}

TEST(ScanFoldTest, StateRoundTripsThroughEncodeDecode) {
  ScanFold fold;
  scanner::HandshakeObservation obs;
  obs.domain = 17;
  obs.connected = true;
  obs.handshake_ok = true;
  obs.trusted = true;
  obs.failure = scanner::ProbeFailure::kNone;
  obs.suite = tls::CipherSuite::kEcdheWithAes128CbcSha256;
  obs.kex_value = 0xfeed;
  fold.Fold(0, obs);
  fold.CompleteDay(0);
  obs.domain = 4;
  obs.suite = tls::CipherSuite::kDheWithAes128CbcSha256;
  obs.kex_value = 0xbeef;
  fold.Fold(1, obs);
  fold.CompleteDay(1);

  Bytes encoded;
  fold.EncodeState(encoded);
  ScanFold decoded;
  std::size_t off = 0;
  ASSERT_TRUE(decoded.DecodeState(encoded, off));
  EXPECT_EQ(off, encoded.size());
  EXPECT_EQ(decoded.NextDay(), 2);

  Bytes re_encoded;
  decoded.EncodeState(re_encoded);
  EXPECT_EQ(re_encoded, encoded);

  // Truncated state never quietly decodes to a full-length parse.
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    ScanFold partial;
    std::size_t pos = 0;
    if (partial.DecodeState(ByteView(encoded.data(), len), pos)) {
      // A prefix can only "decode" by consuming less than the real state;
      // ReadCheckpoint rejects that via its full-consumption check.
      EXPECT_LT(pos, encoded.size());
    }
  }
}

}  // namespace
}  // namespace tlsharm::warehouse
