// Decoder robustness: a warehouse segment mangled in ANY way — truncated
// at every prefix length, any single bit flipped, or re-stamped with a
// future format version — must be rejected cleanly with a diagnostic,
// never crash or return garbage. Run under ASan/UBSan by scripts/check.sh,
// this is the fuzz-shaped gate for the binary format.
#include <gtest/gtest.h>

#include "util/crc32.h"
#include "warehouse/format.h"
#include "warehouse/segment.h"

namespace tlsharm::warehouse {
namespace {

using scanner::HandshakeObservation;

Bytes SampleSegment() {
  std::vector<HandshakeObservation> rows;
  for (std::uint64_t i = 0; i < 12; ++i) {
    HandshakeObservation obs;
    obs.domain = static_cast<scanner::DomainIndex>((i * 5) % 9);
    obs.connected = true;
    obs.handshake_ok = true;
    obs.trusted = true;
    obs.failure = scanner::ProbeFailure::kNone;
    obs.suite = tls::CipherSuite::kEcdheWithAes128CbcSha256;
    obs.kex_group = 23;
    obs.kex_value = i * 31 + 1;
    obs.session_id_set = true;
    obs.session_id = i + 7;
    obs.ticket_issued = (i % 2) == 0;
    obs.ticket_lifetime_hint = obs.ticket_issued ? 600 : 0;
    obs.stek_id = obs.ticket_issued ? i + 40 : scanner::kNoSecret;
    rows.push_back(obs);
  }
  return EncodeObservationSegment(7, rows);
}

bool Decodes(ByteView segment, std::string* error) {
  int day = 0;
  std::vector<HandshakeObservation> rows;
  return DecodeObservationSegment(segment, &day, &rows, error);
}

TEST(SegmentRobustnessTest, EveryTruncationIsRejected) {
  const Bytes segment = SampleSegment();
  std::string error;
  ASSERT_TRUE(Decodes(segment, &error)) << error;
  for (std::size_t len = 0; len < segment.size(); ++len) {
    error.clear();
    EXPECT_FALSE(Decodes(ByteView(segment.data(), len), &error))
        << "decoded a " << len << "-byte prefix of a " << segment.size()
        << "-byte segment";
    EXPECT_FALSE(error.empty()) << "no diagnostic at prefix " << len;
  }
}

TEST(SegmentRobustnessTest, EveryBitFlipIsRejected) {
  const Bytes segment = SampleSegment();
  for (std::size_t byte = 0; byte < segment.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mangled = segment;
      mangled[byte] ^= static_cast<std::uint8_t>(1u << bit);
      std::string error;
      EXPECT_FALSE(Decodes(mangled, &error))
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(SegmentRobustnessTest, VersionBumpIsRejectedExplicitly) {
  // A well-formed segment from a hypothetical future format: version byte
  // bumped AND the segment CRC recomputed, so only the version check can
  // catch it.
  Bytes future = SampleSegment();
  future[4] = kFormatVersion + 1;
  const std::size_t body = future.size() - 4;
  const std::uint32_t crc = Crc32(ByteView(future.data(), body));
  for (int i = 0; i < 4; ++i) {
    future[body + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }
  std::string error;
  EXPECT_FALSE(Decodes(future, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SegmentRobustnessTest, LifetimeTruncationAndFlipsAreRejected) {
  scanner::ResumptionLifetimeResult result;
  result.trusted_https = 10;
  result.indicated = 8;
  result.resumed_1s = 6;
  for (scanner::DomainIndex d = 0; d < 6; ++d) {
    result.lifetimes.push_back({d * 3, (d + 1) * kMinute, d * 60});
  }
  const Bytes segment = EncodeLifetimeSegment(kExperimentSessionId, result);

  std::uint8_t experiment = 0;
  scanner::ResumptionLifetimeResult decoded;
  std::string error;
  ASSERT_TRUE(DecodeLifetimeSegment(segment, &experiment, &decoded, &error))
      << error;

  for (std::size_t len = 0; len < segment.size(); ++len) {
    EXPECT_FALSE(DecodeLifetimeSegment(ByteView(segment.data(), len),
                                       &experiment, &decoded, &error))
        << "decoded a truncated lifetime segment at " << len;
  }
  for (std::size_t byte = 0; byte < segment.size(); ++byte) {
    Bytes mangled = segment;
    mangled[byte] ^= 0x40;
    EXPECT_FALSE(
        DecodeLifetimeSegment(mangled, &experiment, &decoded, &error))
        << "byte " << byte << " corrupted undetected";
  }
}

}  // namespace
}  // namespace tlsharm::warehouse
