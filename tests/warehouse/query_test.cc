// Query-layer semantics over a small hand-built warehouse: conjunctive
// filters, secret-presence predicates, and sorted deterministic group-by
// output.
#include "warehouse/query.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

namespace tlsharm::warehouse {
namespace {

using scanner::HandshakeObservation;

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest runs each TEST as its own process in
    // parallel, and a shared fixture path races against the other cases.
    dir_ = ::testing::TempDir() + "warehouse_query_test_" +
           std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::string error;
    auto writer = WarehouseWriter::Create(dir_, &error);
    ASSERT_NE(writer, nullptr) << error;

    // Day 0: two successes (one with a ticket), one timeout.
    writer->Append(0, Success(1, /*ticket=*/true));
    writer->Append(0, Success(2, /*ticket=*/false));
    writer->Append(0, Failure(3, scanner::ProbeFailure::kTimeout));
    writer->EndDay(0);
    // Day 1: domain 1 again (ticket), domain 3 now refused.
    writer->Append(1, Success(1, /*ticket=*/true));
    writer->Append(1, Failure(3, scanner::ProbeFailure::kRefused));
    writer->EndDay(1);
    // Day 2: only a DHE-pass style observation.
    writer->Append(2, Dhe(2));
    writer->EndDay(2);
    writer->Finish();
    ASSERT_TRUE(writer->ok()) << writer->error();

    auto wh = Warehouse::Open(dir_, &error);
    ASSERT_TRUE(wh.has_value()) << error;
    warehouse_.emplace(std::move(*wh));
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  static HandshakeObservation Success(scanner::DomainIndex domain,
                                      bool ticket) {
    HandshakeObservation obs;
    obs.domain = domain;
    obs.connected = true;
    obs.handshake_ok = true;
    obs.trusted = true;
    obs.failure = scanner::ProbeFailure::kNone;
    obs.suite = tls::CipherSuite::kEcdheWithAes128CbcSha256;
    obs.kex_group = 23;
    obs.kex_value = domain * 11 + 1;
    obs.session_id_set = true;
    obs.session_id = domain + 500;
    obs.ticket_issued = ticket;
    obs.stek_id = ticket ? domain + 900 : scanner::kNoSecret;
    obs.ticket_lifetime_hint = ticket ? 7200 : 0;
    return obs;
  }

  static HandshakeObservation Failure(scanner::DomainIndex domain,
                                      scanner::ProbeFailure failure) {
    HandshakeObservation obs;
    obs.domain = domain;
    obs.connected = failure != scanner::ProbeFailure::kNoHttps;
    obs.failure = failure;
    return obs;
  }

  static HandshakeObservation Dhe(scanner::DomainIndex domain) {
    HandshakeObservation obs;
    obs.domain = domain;
    obs.connected = true;
    obs.handshake_ok = true;
    obs.failure = scanner::ProbeFailure::kNone;
    obs.suite = tls::CipherSuite::kDheWithAes128CbcSha256;
    obs.kex_group = 14;
    obs.kex_value = domain * 13 + 7;
    return obs;
  }

  std::string dir_;
  std::optional<Warehouse> warehouse_;
};

TEST_F(QueryTest, UnfilteredCountSeesEverything) {
  std::uint64_t count = 0;
  std::string error;
  ASSERT_TRUE(CountObservations(*warehouse_, {}, &count, &error)) << error;
  EXPECT_EQ(count, 6u);
}

TEST_F(QueryTest, FiltersCompose) {
  std::string error;
  std::uint64_t count = 0;

  ObsFilter by_domain;
  by_domain.domain = 1;
  ASSERT_TRUE(CountObservations(*warehouse_, by_domain, &count, &error));
  EXPECT_EQ(count, 2u);

  ObsFilter by_day_and_domain = by_domain;
  by_day_and_domain.day_min = 1;
  ASSERT_TRUE(
      CountObservations(*warehouse_, by_day_and_domain, &count, &error));
  EXPECT_EQ(count, 1u);

  ObsFilter by_failure;
  by_failure.failure = scanner::ProbeFailure::kTimeout;
  ASSERT_TRUE(CountObservations(*warehouse_, by_failure, &count, &error));
  EXPECT_EQ(count, 1u);

  ObsFilter by_stek;
  by_stek.has_secret = SecretKind::kStek;
  ASSERT_TRUE(CountObservations(*warehouse_, by_stek, &count, &error));
  EXPECT_EQ(count, 2u);  // domain 1, days 0 and 1

  ObsFilter by_kex;
  by_kex.has_secret = SecretKind::kKex;
  ASSERT_TRUE(CountObservations(*warehouse_, by_kex, &count, &error));
  EXPECT_EQ(count, 4u);

  ObsFilter by_session;
  by_session.has_secret = SecretKind::kSessionId;
  by_session.day_max = 0;
  ASSERT_TRUE(CountObservations(*warehouse_, by_session, &count, &error));
  EXPECT_EQ(count, 2u);
}

TEST_F(QueryTest, GroupByDayIsSortedAndComplete) {
  std::vector<GroupCount> groups;
  std::string error;
  ASSERT_TRUE(GroupCountObservations(*warehouse_, {}, GroupKey::kDay,
                                     &groups, &error))
      << error;
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].key, 0u);
  EXPECT_EQ(groups[0].count, 3u);
  EXPECT_EQ(groups[1].key, 1u);
  EXPECT_EQ(groups[1].count, 2u);
  EXPECT_EQ(groups[2].key, 2u);
  EXPECT_EQ(groups[2].count, 1u);
}

TEST_F(QueryTest, GroupByFailureCountsClasses) {
  std::vector<GroupCount> groups;
  std::string error;
  ASSERT_TRUE(GroupCountObservations(*warehouse_, {}, GroupKey::kFailure,
                                     &groups, &error))
      << error;
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].key,
            static_cast<std::uint64_t>(scanner::ProbeFailure::kNone));
  EXPECT_EQ(groups[0].count, 4u);
  EXPECT_EQ(groups[1].key,
            static_cast<std::uint64_t>(scanner::ProbeFailure::kRefused));
  EXPECT_EQ(groups[1].count, 1u);
  EXPECT_EQ(groups[2].key,
            static_cast<std::uint64_t>(scanner::ProbeFailure::kTimeout));
  EXPECT_EQ(groups[2].count, 1u);
}

TEST_F(QueryTest, GroupBySuiteWithFilter) {
  ObsFilter ok_only;
  ok_only.failure = scanner::ProbeFailure::kNone;
  std::vector<GroupCount> groups;
  std::string error;
  ASSERT_TRUE(GroupCountObservations(*warehouse_, ok_only, GroupKey::kSuite,
                                     &groups, &error))
      << error;
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key, 0x0067u);  // DHE
  EXPECT_EQ(groups[0].count, 1u);
  EXPECT_EQ(groups[1].key, 0xc027u);  // ECDHE
  EXPECT_EQ(groups[1].count, 3u);
}

TEST_F(QueryTest, NameParsersRoundTrip) {
  for (const char* name : {"stek", "kex", "session_id"}) {
    const auto kind = ParseSecretKind(name);
    ASSERT_TRUE(kind.has_value()) << name;
    EXPECT_STREQ(ToString(*kind), name);
  }
  EXPECT_FALSE(ParseSecretKind("bogus").has_value());
  for (const char* name : {"day", "failure", "suite", "domain", "kex_group"}) {
    const auto key = ParseGroupKey(name);
    ASSERT_TRUE(key.has_value()) << name;
    EXPECT_STREQ(ToString(*key), name);
  }
  EXPECT_FALSE(ParseGroupKey("bogus").has_value());
}

}  // namespace
}  // namespace tlsharm::warehouse
