// Thread-count independence of warehouse recording: the sharded scan
// engine streaming into a WarehouseWriter must produce byte-identical
// segment files and MANIFEST at 1, 2 and 8 threads, while a text sink
// attached to the same run stays identical too. The fixture name keeps it
// inside the TSan gate's filter (scripts/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "scanner/scan_engine.h"
#include "warehouse/warehouse.h"

namespace tlsharm::warehouse {
namespace {

struct Recording {
  std::string text;                       // the parallel text sink
  std::vector<std::string> files;         // manifest + segments, sorted
  std::vector<Bytes> contents;            // matching files
};

Recording Record(int threads) {
  const std::string dir = ::testing::TempDir() + "warehouse_sharded_" +
                          std::to_string(threads);
  std::filesystem::remove_all(dir);

  simnet::Internet net(simnet::PaperPopulationSpec(600), 4242);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));

  std::ostringstream stream;
  scanner::ObservationWriter sink(stream);
  std::string error;
  auto writer = WarehouseWriter::Create(dir, &error);
  EXPECT_NE(writer, nullptr) << error;

  scanner::ScanEngineOptions options;
  options.threads = threads;
  options.robustness.retry.max_attempts = 3;
  options.sink = &sink;
  options.store = writer.get();
  scanner::RunShardedDailyScans(net, 3, 777, options);
  EXPECT_TRUE(writer->ok()) << writer->error();

  Recording rec;
  rec.text = stream.str();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    rec.files.push_back(entry.path().filename().string());
  }
  std::sort(rec.files.begin(), rec.files.end());
  for (const std::string& file : rec.files) {
    Bytes bytes;
    EXPECT_TRUE(ReadWarehouseFile(dir + "/" + file, &bytes, &error)) << error;
    rec.contents.push_back(std::move(bytes));
  }
  return rec;
}

TEST(ShardedWarehouseTest, WarehouseBytesAreThreadCountIndependent) {
  const Recording serial = Record(1);
  ASSERT_FALSE(serial.text.empty());
  ASSERT_FALSE(serial.files.empty());

  for (const int threads : {2, 8}) {
    const Recording parallel = Record(threads);
    EXPECT_EQ(parallel.text, serial.text)
        << "text sink diverged at " << threads << " threads";
    ASSERT_EQ(parallel.files, serial.files)
        << "file set diverged at " << threads << " threads";
    for (std::size_t i = 0; i < serial.files.size(); ++i) {
      EXPECT_EQ(parallel.contents[i], serial.contents[i])
          << serial.files[i] << " diverged at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace tlsharm::warehouse
