// WarehouseWriter / Warehouse directory-level behavior: the StoreWriter
// contract (day segments close on EndDay, days non-decreasing), manifest
// integrity, day-range pruning, experiment tables, and directory reset on
// Create.
#include "warehouse/warehouse.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "warehouse/format.h"

namespace tlsharm::warehouse {
namespace {

using scanner::HandshakeObservation;

HandshakeObservation Obs(scanner::DomainIndex domain) {
  HandshakeObservation obs;
  obs.domain = domain;
  obs.connected = true;
  obs.handshake_ok = true;
  obs.failure = scanner::ProbeFailure::kUntrusted;
  return obs;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "warehouse_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(WarehouseWriterTest, WritesOneSegmentPerDayAndReadsBack) {
  const std::string dir = FreshDir("roundtrip");
  std::string error;
  auto writer = WarehouseWriter::Create(dir, &error);
  ASSERT_NE(writer, nullptr) << error;

  writer->Append(0, Obs(5));
  writer->Append(0, Obs(3));
  writer->EndDay(0);
  writer->EndDay(1);  // scanned day with zero observations
  writer->Append(2, Obs(8));
  writer->EndDay(2);
  writer->Finish();
  ASSERT_TRUE(writer->ok()) << writer->error();
  EXPECT_EQ(writer->RowsWritten(), 3u);

  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;
  EXPECT_EQ(wh->DayCount(), 3);
  EXPECT_EQ(wh->TotalRows(), 3u);
  ASSERT_EQ(wh->ObservationSegments().size(), 3u);
  EXPECT_EQ(wh->ObservationSegments()[1].rows, 0u);

  std::vector<std::pair<int, scanner::DomainIndex>> seen;
  ASSERT_TRUE(wh->ForEachObservation(
      0, 100,
      [&](const scanner::StoredObservation& stored) {
        seen.push_back({stored.day, stored.observation.domain});
      },
      &error))
      << error;
  const std::vector<std::pair<int, scanner::DomainIndex>> expected = {
      {0, 5}, {0, 3}, {2, 8}};
  EXPECT_EQ(seen, expected);
}

TEST(WarehouseWriterTest, DayRangePrunesSegments) {
  const std::string dir = FreshDir("prune");
  std::string error;
  auto writer = WarehouseWriter::Create(dir, &error);
  ASSERT_NE(writer, nullptr) << error;
  for (int day = 0; day < 5; ++day) {
    writer->Append(day, Obs(static_cast<scanner::DomainIndex>(day)));
    writer->EndDay(day);
  }
  writer->Finish();
  ASSERT_TRUE(writer->ok()) << writer->error();

  auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;

  // Delete the out-of-range segment files: if pruning works, the read
  // below never notices.
  std::filesystem::remove(dir + "/obs-00000.seg");
  std::filesystem::remove(dir + "/obs-00004.seg");

  std::vector<int> days;
  ASSERT_TRUE(wh->ForEachObservation(
      1, 3,
      [&](const scanner::StoredObservation& stored) {
        days.push_back(stored.day);
      },
      &error))
      << error;
  EXPECT_EQ(days, (std::vector<int>{1, 2, 3}));

  // Touching the full range must now fail loudly on the missing file.
  EXPECT_FALSE(wh->ForEachObservation(
      0, 4, [](const scanner::StoredObservation&) {}, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WarehouseWriterTest, NonMonotonicDaysLatchAnError) {
  const std::string dir = FreshDir("order");
  std::string error;
  auto writer = WarehouseWriter::Create(dir, &error);
  ASSERT_NE(writer, nullptr) << error;
  writer->Append(3, Obs(1));
  writer->EndDay(3);
  writer->Append(2, Obs(1));  // day went backwards
  EXPECT_FALSE(writer->ok());
  EXPECT_FALSE(writer->error().empty());
}

TEST(WarehouseWriterTest, AutoFlushOnDayChangeMatchesExplicitEndDay) {
  // The text importer never calls EndDay between days; a day change in
  // Append must close the previous day's segment identically.
  const std::string explicit_dir = FreshDir("explicit");
  const std::string implicit_dir = FreshDir("implicit");
  std::string error;
  auto explicit_writer = WarehouseWriter::Create(explicit_dir, &error);
  ASSERT_NE(explicit_writer, nullptr) << error;
  auto implicit_writer = WarehouseWriter::Create(implicit_dir, &error);
  ASSERT_NE(implicit_writer, nullptr) << error;

  for (auto* writer : {explicit_writer.get(), implicit_writer.get()}) {
    writer->Append(0, Obs(1));
    writer->Append(0, Obs(2));
    if (writer == explicit_writer.get()) writer->EndDay(0);
    writer->Append(1, Obs(3));
    if (writer == explicit_writer.get()) writer->EndDay(1);
    writer->Finish();
    ASSERT_TRUE(writer->ok()) << writer->error();
  }

  for (const char* file : {"obs-00000.seg", "obs-00001.seg", "MANIFEST"}) {
    Bytes a, b;
    ASSERT_TRUE(
        ReadWarehouseFile(explicit_dir + "/" + file, &a, &error))
        << error;
    ASSERT_TRUE(
        ReadWarehouseFile(implicit_dir + "/" + file, &b, &error))
        << error;
    EXPECT_EQ(a, b) << file << " differs";
  }
}

TEST(WarehouseWriterTest, CreateResetsStaleFiles) {
  const std::string dir = FreshDir("reset");
  std::string error;
  {
    auto writer = WarehouseWriter::Create(dir, &error);
    ASSERT_NE(writer, nullptr) << error;
    for (int day = 0; day < 3; ++day) {
      writer->Append(day, Obs(1));
      writer->EndDay(day);
    }
    writer->Finish();
    ASSERT_TRUE(writer->ok()) << writer->error();
  }
  {
    // A shorter re-recording must not leave day-2 leftovers behind.
    auto writer = WarehouseWriter::Create(dir, &error);
    ASSERT_NE(writer, nullptr) << error;
    writer->Append(0, Obs(2));
    writer->EndDay(0);
    writer->Finish();
    ASSERT_TRUE(writer->ok()) << writer->error();
  }
  EXPECT_FALSE(std::filesystem::exists(dir + "/obs-00002.seg"));
  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;
  EXPECT_EQ(wh->DayCount(), 1);
  EXPECT_EQ(wh->TotalRows(), 1u);
}

TEST(WarehouseTest, ManifestTamperingIsDetected) {
  const std::string dir = FreshDir("tamper");
  std::string error;
  auto writer = WarehouseWriter::Create(dir, &error);
  ASSERT_NE(writer, nullptr) << error;
  writer->Append(0, Obs(1));
  writer->EndDay(0);
  writer->Finish();
  ASSERT_TRUE(writer->ok()) << writer->error();

  // Rewrite the segment with one corrupt byte; the manifest CRC must veto
  // it before the segment decoder even runs.
  Bytes segment;
  ASSERT_TRUE(ReadWarehouseFile(dir + "/obs-00000.seg", &segment, &error));
  segment[segment.size() / 2] ^= 0x01;
  std::ofstream out(dir + "/obs-00000.seg",
                    std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(segment.data()),
            static_cast<std::streamsize>(segment.size()));
  out.close();

  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;
  EXPECT_FALSE(wh->ForEachObservation(
      0, 0, [](const scanner::StoredObservation&) {}, &error));
  EXPECT_NE(error.find("manifest"), std::string::npos) << error;
}

TEST(WarehouseTest, UnsupportedManifestHeaderIsRejected) {
  const std::string dir = FreshDir("header");
  std::filesystem::create_directories(dir);
  std::ofstream out(dir + "/MANIFEST");
  out << "tlsharm-warehouse 999\n";
  out.close();
  std::string error;
  EXPECT_FALSE(Warehouse::Open(dir, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(WarehouseTest, LifetimeTablesRoundTrip) {
  const std::string dir = FreshDir("lifetime");
  std::string error;
  auto writer = WarehouseWriter::Create(dir, &error);
  ASSERT_NE(writer, nullptr) << error;

  scanner::ResumptionLifetimeResult result;
  result.trusted_https = 100;
  result.indicated = 80;
  result.resumed_1s = 60;
  result.lifetimes.push_back({2, 30 * kMinute, 0});
  result.lifetimes.push_back({9, 6 * kHour, 21600});
  ASSERT_TRUE(writer->WriteLifetime("ticket", result)) << writer->error();
  writer->Finish();
  ASSERT_TRUE(writer->ok()) << writer->error();

  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;
  EXPECT_TRUE(wh->HasExperiment("ticket"));
  EXPECT_FALSE(wh->HasExperiment("session_id"));

  scanner::ResumptionLifetimeResult loaded;
  ASSERT_TRUE(wh->ReadExperiment("ticket", &loaded, &error)) << error;
  EXPECT_EQ(loaded.trusted_https, 100u);
  ASSERT_EQ(loaded.lifetimes.size(), 2u);
  EXPECT_EQ(loaded.lifetimes[1].domain, 9u);
  EXPECT_EQ(loaded.lifetimes[1].max_delay, 6 * kHour);

  EXPECT_FALSE(wh->ReadExperiment("session_id", &loaded, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tlsharm::warehouse
