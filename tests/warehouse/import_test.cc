// Text store <-> warehouse conversion: for a canonical text store the
// round trip text -> warehouse -> text is byte-identical, malformed lines
// are counted not imported, and the columnar form is smaller than the text
// it came from on a realistic store.
#include "warehouse/import.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "scanner/scan_engine.h"

namespace tlsharm::warehouse {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "warehouse_import_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A realistic canonical text store: a seeded faulty 3-day study.
std::string RecordTextStudy() {
  simnet::Internet net(simnet::PaperPopulationSpec(400), 11);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));
  std::ostringstream stream;
  scanner::ObservationWriter sink(stream);
  scanner::ScanEngineOptions options;
  options.robustness.retry.max_attempts = 3;
  options.sink = &sink;
  scanner::RunShardedDailyScans(net, 3, 99, options);
  return stream.str();
}

TEST(ImportTest, TextWarehouseTextIsByteIdentical) {
  const std::string text = RecordTextStudy();
  ASSERT_FALSE(text.empty());

  const std::string dir = FreshDir("roundtrip");
  std::istringstream in(text);
  ImportStats to_stats;
  std::string error;
  ASSERT_TRUE(TextToWarehouse(in, dir, &to_stats, &error)) << error;
  EXPECT_EQ(to_stats.corrupt_lines, 0u);
  EXPECT_EQ(to_stats.days, 3u);
  EXPECT_GT(to_stats.rows, 0u);

  const auto wh = Warehouse::Open(dir, &error);
  ASSERT_TRUE(wh.has_value()) << error;
  std::ostringstream out;
  ImportStats from_stats;
  ASSERT_TRUE(WarehouseToText(*wh, out, &from_stats, &error)) << error;
  EXPECT_EQ(from_stats.rows, to_stats.rows);
  EXPECT_EQ(out.str(), text) << "text -> warehouse -> text is not identity";
}

TEST(ImportTest, WarehouseIsSmallerThanTheTextStore) {
  const std::string text = RecordTextStudy();
  const std::string dir = FreshDir("size");
  std::istringstream in(text);
  ImportStats stats;
  std::string error;
  ASSERT_TRUE(TextToWarehouse(in, dir, &stats, &error)) << error;
  EXPECT_LT(stats.warehouse_bytes, text.size())
      << "columnar form (" << stats.warehouse_bytes
      << " bytes) did not beat the text store (" << text.size() << " bytes)";
}

TEST(ImportTest, ImportedWarehouseMatchesDirectlyRecordedOne) {
  // Scanning straight into a WarehouseWriter and importing the text sink's
  // output must produce byte-identical segments — one canonical stream,
  // two routes.
  const std::string direct_dir = FreshDir("direct");
  std::ostringstream stream;
  scanner::ObservationWriter sink(stream);
  std::string error;
  auto writer = WarehouseWriter::Create(direct_dir, &error);
  ASSERT_NE(writer, nullptr) << error;

  simnet::Internet net(simnet::PaperPopulationSpec(400), 11);
  net.SetFaultSpec(simnet::DefaultFaultSpec(1.0));
  scanner::ScanEngineOptions options;
  options.robustness.retry.max_attempts = 3;
  options.sink = &sink;
  options.store = writer.get();
  scanner::RunShardedDailyScans(net, 3, 99, options);
  ASSERT_TRUE(writer->ok()) << writer->error();

  const std::string imported_dir = FreshDir("imported");
  std::istringstream in(stream.str());
  ASSERT_TRUE(TextToWarehouse(in, imported_dir, nullptr, &error)) << error;

  for (const char* file :
       {"MANIFEST", "obs-00000.seg", "obs-00001.seg", "obs-00002.seg"}) {
    Bytes a, b;
    ASSERT_TRUE(ReadWarehouseFile(direct_dir + std::string("/") + file, &a,
                                  &error))
        << error;
    ASSERT_TRUE(ReadWarehouseFile(imported_dir + std::string("/") + file, &b,
                                  &error))
        << error;
    EXPECT_EQ(a, b) << file << " differs between scan-recorded and "
                    << "text-imported warehouses";
  }
}

TEST(ImportTest, MalformedLinesAreCountedNotImported) {
  const std::string dir = FreshDir("corrupt");
  std::istringstream in(
      "0|1|7|49191|23|5|6|0|0|0\n"
      "not an observation\n"
      "0|2|7|49191|23|5|6|0|0|0\n"
      "1|2|3\n"
      "1|1|7|49191|23|5|6|0|0|0\n");
  ImportStats stats;
  std::string error;
  ASSERT_TRUE(TextToWarehouse(in, dir, &stats, &error)) << error;
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_EQ(stats.corrupt_lines, 2u);
  EXPECT_EQ(stats.days, 2u);
}

TEST(ImportTest, OutOfOrderDaysFailTheImport) {
  const std::string dir = FreshDir("order");
  std::istringstream in(
      "1|1|7|49191|23|5|6|0|0|0\n"
      "0|1|7|49191|23|5|6|0|0|0\n");
  std::string error;
  EXPECT_FALSE(TextToWarehouse(in, dir, nullptr, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tlsharm::warehouse
