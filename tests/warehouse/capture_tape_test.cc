// The capture tape's columnar codec under the same three gates as the
// observation warehouse: golden bytes (any drift is a format change and
// needs a version bump + TLSHARM_UPDATE_GOLDENS=1 regen), a decoder
// robustness battery (every truncation, every bit flip, future version),
// and a writer→reader round trip through a real tape directory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/hex.h"
#include "warehouse/capture.h"
#include "warehouse/format.h"

namespace tlsharm::warehouse {
namespace {

using attack::CaptureRecord;

std::string FixturePath(const std::string& name) {
  return std::string(TLSHARM_TESTDATA_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

std::string HexDump(const Bytes& bytes) {
  const std::string hex = HexEncode(bytes);
  std::string out;
  for (std::size_t i = 0; i < hex.size(); i += 64) {
    out += hex.substr(i, 64);
    out += '\n';
  }
  return out;
}

void CheckGolden(const std::string& name, const Bytes& bytes) {
  const std::string dump = HexDump(bytes);
  if (std::getenv("TLSHARM_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(FixturePath(name), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot update " << name;
    out << dump;
    return;
  }
  EXPECT_EQ(dump, ReadFixture(name))
      << name << " drifted: the capture segment format changed without a "
      << "version bump";
}

// Fixed rows exercising every column: repeated domains and endpoints (the
// dictionaries), a full resumable handshake, a ticketless session-ID one,
// an abbreviated resumption, and an invalid fault-injected capture with
// every byte column empty.
std::vector<CaptureRecord> GoldenRows() {
  std::vector<CaptureRecord> rows;

  CaptureRecord full;
  full.domain = 11;
  full.time = 3 * kDay + 6 * kHour;
  full.endpoint = 5;
  full.valid = true;
  full.abbreviated = false;
  full.suite = 0xc027;
  full.client_random = ToBytes("client-random-aaaaaaaaaaaaaaaaaa");
  full.server_random = ToBytes("server-random-bbbbbbbbbbbbbbbbbb");
  full.session_id = ToBytes("session-id-01");
  full.ticket = ToBytes("stek-name-0123456789abcdef-sealed-ticket-body");
  full.ticket_lifetime_hint = 86400;
  full.kex_group = 61;
  full.server_kex = ToBytes("server-kex-public-value");
  full.client_kex = ToBytes("client-kex-public-value");
  full.wire_bytes = 4096;
  full.client_records = 3;
  full.server_records = 7;
  full.client_record_bytes = 900;
  full.server_record_bytes = 2800;
  rows.push_back(full);

  CaptureRecord bare = full;  // same domain+endpoint: dictionary repeat
  bare.time = full.time + kHour;
  bare.ticket.clear();
  bare.ticket_lifetime_hint = 0;
  bare.session_id = ToBytes("session-id-02");
  bare.wire_bytes = 1500;
  rows.push_back(bare);

  CaptureRecord resumed;
  resumed.domain = 2;
  resumed.time = 4 * kDay + 6 * kHour;
  resumed.endpoint = 9;
  resumed.valid = true;
  resumed.abbreviated = true;
  resumed.suite = 0x009e;
  resumed.client_random = ToBytes("client-random-cccccccccccccccccc");
  resumed.server_random = ToBytes("server-random-dddddddddddddddddd");
  resumed.ticket = ToBytes("presented-ticket");
  resumed.kex_group = 0;
  resumed.wire_bytes = 800;
  rows.push_back(resumed);

  CaptureRecord broken;
  broken.domain = 11;  // dictionary repeat without the same endpoint
  broken.time = 4 * kDay + 6 * kHour + kMinute;
  broken.endpoint = 6;
  broken.valid = false;
  broken.parse_fail = attack::CaptureParseFail::kIncomplete;
  broken.wire_bytes = 120;
  rows.push_back(broken);
  return rows;
}

bool Decodes(ByteView segment, std::string* error) {
  int day = 0;
  std::vector<CaptureRecord> rows;
  return DecodeCaptureSegment(segment, &day, &rows, error);
}

TEST(CaptureGoldenTest, CaptureSegmentMatchesGoldenBytes) {
  CheckGolden("cap_segment.hex", EncodeCaptureSegment(3, GoldenRows()));
}

TEST(CaptureGoldenTest, EmptyCaptureSegmentMatchesGoldenBytes) {
  CheckGolden("cap_segment_empty.hex", EncodeCaptureSegment(0, {}));
}

TEST(CaptureGoldenTest, GoldenCaptureSegmentDecodes) {
  std::string hex = ReadFixture("cap_segment.hex");
  hex.erase(std::remove(hex.begin(), hex.end(), '\n'), hex.end());
  const auto bytes = HexDecode(hex);
  ASSERT_TRUE(bytes.has_value()) << "fixture is not valid hex";

  int day = -1;
  std::vector<CaptureRecord> rows;
  std::string error;
  ASSERT_TRUE(DecodeCaptureSegment(*bytes, &day, &rows, &error)) << error;
  EXPECT_EQ(day, 3);
  EXPECT_EQ(rows, GoldenRows());
}

TEST(CaptureRobustnessTest, EveryTruncationIsRejected) {
  const Bytes segment = EncodeCaptureSegment(7, GoldenRows());
  std::string error;
  ASSERT_TRUE(Decodes(segment, &error)) << error;
  for (std::size_t len = 0; len < segment.size(); ++len) {
    error.clear();
    EXPECT_FALSE(Decodes(ByteView(segment.data(), len), &error))
        << "decoded a " << len << "-byte prefix of a " << segment.size()
        << "-byte capture segment";
    EXPECT_FALSE(error.empty()) << "no diagnostic at prefix " << len;
  }
}

TEST(CaptureRobustnessTest, EveryBitFlipIsRejected) {
  const Bytes segment = EncodeCaptureSegment(7, GoldenRows());
  for (std::size_t byte = 0; byte < segment.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mangled = segment;
      mangled[byte] ^= static_cast<std::uint8_t>(1u << bit);
      std::string error;
      EXPECT_FALSE(Decodes(mangled, &error))
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(CaptureRobustnessTest, VersionBumpIsRejectedExplicitly) {
  Bytes future = EncodeCaptureSegment(7, GoldenRows());
  future[4] = kFormatVersion + 1;
  const std::size_t body = future.size() - 4;
  const std::uint32_t crc = Crc32(ByteView(future.data(), body));
  for (int i = 0; i < 4; ++i) {
    future[body + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }
  std::string error;
  EXPECT_FALSE(Decodes(future, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CaptureTapeTest, WriterReaderRoundTripPreservesEveryRecord) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tlsharm-capture-tape-test";
  std::filesystem::remove_all(dir);

  const std::vector<CaptureRecord> rows = GoldenRows();
  std::string error;
  auto writer = CaptureTapeWriter::Create(dir.string(), &error);
  ASSERT_NE(writer, nullptr) << error;
  // Day 3: first two rows; day 4 (after an empty-but-ended day boundary
  // handled by the engine) the rest.
  writer->Append(3, rows[0]);
  writer->Append(3, rows[1]);
  writer->EndDay(3);
  writer->Append(4, rows[2]);
  writer->Append(4, rows[3]);
  writer->EndDay(4);
  writer->Finish();
  ASSERT_TRUE(writer->ok()) << writer->error();
  EXPECT_EQ(writer->RowsWritten(), rows.size());

  auto tape = CaptureTape::Open(dir.string(), &error);
  ASSERT_TRUE(tape.has_value()) << error;
  EXPECT_EQ(tape->TotalRows(), rows.size());
  std::vector<CaptureRecord> replayed;
  std::vector<int> days;
  ASSERT_TRUE(tape->ForEachCapture(
      0, 10,
      [&](int day, const CaptureRecord& rec) {
        days.push_back(day);
        replayed.push_back(rec);
      },
      &error))
      << error;
  EXPECT_EQ(replayed, rows);
  EXPECT_EQ(days, (std::vector<int>{3, 3, 4, 4}));

  // Partition pruning: a one-day window only surfaces that day.
  replayed.clear();
  ASSERT_TRUE(tape->ForEachCapture(
      4, 4,
      [&](int, const CaptureRecord& rec) { replayed.push_back(rec); },
      &error))
      << error;
  EXPECT_EQ(replayed,
            (std::vector<CaptureRecord>{rows[2], rows[3]}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tlsharm::warehouse
