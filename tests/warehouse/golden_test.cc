// Golden coverage for the warehouse binary format: fixed inputs must
// encode to the exact checked-in hex dumps, and the dumps must decode back
// to the inputs. If either fails, the on-disk format changed — bump
// kFormatVersion and regenerate (run this binary with
// TLSHARM_UPDATE_GOLDENS=1) instead of silently shifting bytes under
// existing warehouses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/hex.h"
#include "warehouse/format.h"
#include "warehouse/segment.h"

namespace tlsharm::warehouse {
namespace {

using scanner::HandshakeObservation;

std::string FixturePath(const std::string& name) {
  return std::string(TLSHARM_TESTDATA_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

// Hex dump, 32 byte-pairs per line — diffable, greppable, committed.
std::string HexDump(const Bytes& bytes) {
  const std::string hex = HexEncode(bytes);
  std::string out;
  for (std::size_t i = 0; i < hex.size(); i += 64) {
    out += hex.substr(i, 64);
    out += '\n';
  }
  return out;
}

void CheckGolden(const std::string& name, const Bytes& bytes) {
  const std::string dump = HexDump(bytes);
  if (std::getenv("TLSHARM_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(FixturePath(name), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot update " << name;
    out << dump;
    return;
  }
  EXPECT_EQ(dump, ReadFixture(name))
      << name << " drifted: the serialized warehouse format changed without "
      << "a version bump";
}

std::vector<HandshakeObservation> GoldenRows() {
  std::vector<HandshakeObservation> rows;
  HandshakeObservation ok;
  ok.domain = 4;
  ok.connected = true;
  ok.handshake_ok = true;
  ok.trusted = true;
  ok.failure = scanner::ProbeFailure::kNone;
  ok.suite = tls::CipherSuite::kEcdheWithAes128CbcSha256;
  ok.kex_group = 23;
  ok.kex_value = 0x1122334455667788ull;
  ok.session_id_set = true;
  ok.session_id = 0xabcdef01ull;
  ok.ticket_issued = true;
  ok.ticket_lifetime_hint = 7200;
  ok.stek_id = 0x0123456789abcdefull;
  rows.push_back(ok);

  HandshakeObservation dhe = ok;
  dhe.domain = 2;
  dhe.suite = tls::CipherSuite::kDheWithAes128CbcSha256;
  dhe.kex_group = 14;
  dhe.kex_value = 0x99;
  dhe.session_id_set = false;
  dhe.session_id = scanner::kNoSecret;
  dhe.ticket_issued = false;
  dhe.ticket_lifetime_hint = 0;
  dhe.stek_id = scanner::kNoSecret;
  rows.push_back(dhe);

  HandshakeObservation failed;
  failed.domain = 4;  // repeat: exercises the dictionary
  failed.connected = true;
  failed.handshake_ok = false;
  failed.failure = scanner::ProbeFailure::kReset;
  rows.push_back(failed);

  HandshakeObservation dark;
  dark.domain = 9;
  dark.failure = scanner::ProbeFailure::kNoHttps;
  rows.push_back(dark);
  return rows;
}

TEST(WarehouseGoldenTest, ObservationSegmentMatchesGoldenBytes) {
  CheckGolden("obs_segment.hex", EncodeObservationSegment(2, GoldenRows()));
}

TEST(WarehouseGoldenTest, EmptyObservationSegmentMatchesGoldenBytes) {
  CheckGolden("obs_segment_empty.hex", EncodeObservationSegment(0, {}));
}

TEST(WarehouseGoldenTest, LifetimeSegmentMatchesGoldenBytes) {
  scanner::ResumptionLifetimeResult result;
  result.trusted_https = 12;
  result.indicated = 9;
  result.resumed_1s = 7;
  result.lifetimes.push_back({1, 5 * kMinute, 0});
  result.lifetimes.push_back({6, 2 * kHour, 7200});
  result.lifetimes.push_back({7, 24 * kHour, 86400});
  CheckGolden("exp_segment.hex",
              EncodeLifetimeSegment(kExperimentTicket, result));
}

TEST(WarehouseGoldenTest, GoldenObservationSegmentDecodes) {
  std::string hex = ReadFixture("obs_segment.hex");
  hex.erase(std::remove(hex.begin(), hex.end(), '\n'), hex.end());
  const auto bytes = HexDecode(hex);
  ASSERT_TRUE(bytes.has_value()) << "fixture is not valid hex";

  int day = -1;
  std::vector<HandshakeObservation> rows;
  std::string error;
  ASSERT_TRUE(DecodeObservationSegment(*bytes, &day, &rows, &error)) << error;
  EXPECT_EQ(day, 2);
  const auto expected = GoldenRows();
  ASSERT_EQ(rows.size(), expected.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].domain, expected[i].domain) << "row " << i;
    EXPECT_EQ(rows[i].failure, expected[i].failure) << "row " << i;
    EXPECT_EQ(rows[i].kex_value, expected[i].kex_value) << "row " << i;
    EXPECT_EQ(rows[i].stek_id, expected[i].stek_id) << "row " << i;
  }
}

}  // namespace
}  // namespace tlsharm::warehouse
