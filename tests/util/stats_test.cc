#include "util/stats.h"

#include <gtest/gtest.h>

namespace tlsharm {
namespace {

TEST(EmpiricalDistributionTest, CdfBasics) {
  EmpiricalDistribution d;
  for (double v : {1.0, 2.0, 3.0, 4.0}) d.Add(v);
  EXPECT_DOUBLE_EQ(d.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.CdfAt(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.CdfAt(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(100.0), 1.0);
}

TEST(EmpiricalDistributionTest, EmptyCdfIsZero) {
  EmpiricalDistribution d;
  EXPECT_DOUBLE_EQ(d.CdfAt(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.FractionAtLeast(1.0), 0.0);
  EXPECT_TRUE(d.Empty());
}

TEST(EmpiricalDistributionTest, FractionAtLeast) {
  EmpiricalDistribution d;
  for (double v : {1.0, 2.0, 3.0, 4.0}) d.Add(v);
  EXPECT_DOUBLE_EQ(d.FractionAtLeast(3.0), 0.5);
  EXPECT_DOUBLE_EQ(d.FractionAtLeast(4.1), 0.0);
  EXPECT_DOUBLE_EQ(d.FractionAtLeast(0.0), 1.0);
}

TEST(EmpiricalDistributionTest, CdfPlusFractionAtLeastIsOne) {
  EmpiricalDistribution d;
  for (int i = 0; i < 100; ++i) d.Add(static_cast<double>(i % 13));
  for (double x : {0.5, 3.0, 7.7, 12.0}) {
    // CdfAt uses <= x, FractionAtLeast uses >= x; they overlap at exactly x,
    // so the sum is 1 + P(v == x).
    EXPECT_GE(d.CdfAt(x) + d.FractionAtLeast(x), 1.0 - 1e-12);
  }
}

TEST(EmpiricalDistributionTest, QuantilesAndMedian) {
  EmpiricalDistribution d;
  for (int i = 1; i <= 100; ++i) d.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.Median(), 50.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.25), 25.0);
}

TEST(EmpiricalDistributionTest, MinMaxMean) {
  EmpiricalDistribution d;
  for (double v : {5.0, 1.0, 3.0}) d.Add(v);
  EXPECT_DOUBLE_EQ(d.Min(), 1.0);
  EXPECT_DOUBLE_EQ(d.Max(), 5.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
}

TEST(EmpiricalDistributionTest, AddNWeightsSamples) {
  EmpiricalDistribution d;
  d.AddN(1.0, 3);
  d.Add(10.0);
  EXPECT_EQ(d.Count(), 4u);
  EXPECT_DOUBLE_EQ(d.CdfAt(1.0), 0.75);
}

TEST(EmpiricalDistributionTest, CdfPointsMonotonic) {
  EmpiricalDistribution d;
  for (int i = 0; i < 57; ++i) d.Add(static_cast<double>((i * 37) % 101));
  const auto pts = d.CdfPoints(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(FormatPercentTest, Formatting) {
  EXPECT_EQ(FormatPercent(0.382), "38.2%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
  EXPECT_EQ(FormatPercent(0.005, 2), "0.50%");
}

}  // namespace
}  // namespace tlsharm
