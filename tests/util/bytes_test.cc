#include "util/bytes.h"

#include <gtest/gtest.h>

namespace tlsharm {
namespace {

TEST(BytesTest, ToBytesAndBack) {
  const Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(ToString(b), "hello");
}

TEST(BytesTest, AppendUintBigEndian) {
  Bytes b;
  AppendUint(b, 0x0102, 2);
  AppendUint(b, 0xaabbccdd, 4);
  EXPECT_EQ(b, (Bytes{0x01, 0x02, 0xaa, 0xbb, 0xcc, 0xdd}));
}

TEST(BytesTest, ReadUintRoundTrip) {
  Bytes b;
  AppendUint(b, 0x123456789abcdef0ULL, 8);
  EXPECT_EQ(ReadUint(b, 0, 8), 0x123456789abcdef0ULL);
  EXPECT_EQ(ReadUint(b, 0, 3), 0x123456ULL);
  EXPECT_EQ(ReadUint(b, 5, 2), 0xbcdeULL);
}

TEST(BytesTest, ConcatPreservesOrder) {
  const Bytes a = ToBytes("ab"), b = ToBytes("cd"), c = ToBytes("e");
  EXPECT_EQ(ToString(Concat({a, b, c})), "abcde");
  EXPECT_EQ(Concat({}).size(), 0u);
}

TEST(BytesTest, XorIntoSelfInverse) {
  Bytes a = ToBytes("secret!!"), mask = ToBytes("maskmask");
  const Bytes orig = a;
  XorInto(a, mask);
  EXPECT_NE(a, orig);
  XorInto(a, mask);
  EXPECT_EQ(a, orig);
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abc")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abd")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abcd")));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(BytesTest, CompareOrdering) {
  EXPECT_EQ(Compare(ToBytes("abc"), ToBytes("abc")), 0);
  EXPECT_LT(Compare(ToBytes("abb"), ToBytes("abc")), 0);
  EXPECT_GT(Compare(ToBytes("abd"), ToBytes("abc")), 0);
  EXPECT_LT(Compare(ToBytes("ab"), ToBytes("abc")), 0);
  EXPECT_GT(Compare(ToBytes("abc"), ToBytes("ab")), 0);
}

}  // namespace
}  // namespace tlsharm
