#include "util/bytes.h"

#include <gtest/gtest.h>

namespace tlsharm {
namespace {

TEST(BytesTest, ToBytesAndBack) {
  const Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(ToString(b), "hello");
}

TEST(BytesTest, AppendUintBigEndian) {
  Bytes b;
  AppendUint(b, 0x0102, 2);
  AppendUint(b, 0xaabbccdd, 4);
  EXPECT_EQ(b, (Bytes{0x01, 0x02, 0xaa, 0xbb, 0xcc, 0xdd}));
}

TEST(BytesTest, ReadUintRoundTrip) {
  Bytes b;
  AppendUint(b, 0x123456789abcdef0ULL, 8);
  EXPECT_EQ(ReadUint(b, 0, 8), 0x123456789abcdef0ULL);
  EXPECT_EQ(ReadUint(b, 0, 3), 0x123456ULL);
  EXPECT_EQ(ReadUint(b, 5, 2), 0xbcdeULL);
}

TEST(BytesTest, ConcatPreservesOrder) {
  const Bytes a = ToBytes("ab"), b = ToBytes("cd"), c = ToBytes("e");
  EXPECT_EQ(ToString(Concat({a, b, c})), "abcde");
  EXPECT_EQ(Concat({}).size(), 0u);
}

TEST(BytesTest, XorIntoSelfInverse) {
  Bytes a = ToBytes("secret!!"), mask = ToBytes("maskmask");
  const Bytes orig = a;
  XorInto(a, mask);
  EXPECT_NE(a, orig);
  XorInto(a, mask);
  EXPECT_EQ(a, orig);
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abc")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abd")));
  EXPECT_FALSE(ConstantTimeEqual(ToBytes("abc"), ToBytes("abcd")));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(BytesTest, CompareOrdering) {
  EXPECT_EQ(Compare(ToBytes("abc"), ToBytes("abc")), 0);
  EXPECT_LT(Compare(ToBytes("abb"), ToBytes("abc")), 0);
  EXPECT_GT(Compare(ToBytes("abd"), ToBytes("abc")), 0);
  EXPECT_LT(Compare(ToBytes("ab"), ToBytes("abc")), 0);
  EXPECT_GT(Compare(ToBytes("abc"), ToBytes("ab")), 0);
}

TEST(VarintTest, KnownEncodings) {
  const struct {
    std::uint64_t value;
    Bytes encoded;
  } cases[] = {
      {0, {0x00}},
      {1, {0x01}},
      {127, {0x7f}},
      {128, {0x80, 0x01}},
      {300, {0xac, 0x02}},
      {0xffffffffffffffffULL,
       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
  };
  for (const auto& c : cases) {
    Bytes out;
    AppendVarint(out, c.value);
    EXPECT_EQ(out, c.encoded) << c.value;
    std::size_t off = 0;
    std::uint64_t decoded = 0;
    ASSERT_TRUE(ReadVarint(out, off, decoded)) << c.value;
    EXPECT_EQ(decoded, c.value);
    EXPECT_EQ(off, out.size());
  }
}

TEST(VarintTest, RoundTripsAcrossTheRange) {
  Bytes out;
  std::vector<std::uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ULL << shift);
    values.push_back((1ULL << shift) - 1);
  }
  for (const std::uint64_t v : values) AppendVarint(out, v);
  std::size_t off = 0;
  for (const std::uint64_t v : values) {
    std::uint64_t decoded = 0;
    ASSERT_TRUE(ReadVarint(out, off, decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(off, out.size());
}

TEST(VarintTest, TruncationIsRejected) {
  Bytes out;
  AppendVarint(out, 0x123456789abcdefULL);
  for (std::size_t len = 0; len < out.size(); ++len) {
    std::size_t off = 0;
    std::uint64_t decoded = 0;
    EXPECT_FALSE(ReadVarint(ByteView(out.data(), len), off, decoded)) << len;
  }
}

TEST(VarintTest, OverlongAndOverflowingEncodingsAreRejected) {
  // Eleven continuation bytes: more than a 64-bit varint can ever need.
  const Bytes too_long(11, 0x80);
  std::size_t off = 0;
  std::uint64_t decoded = 0;
  EXPECT_FALSE(ReadVarint(too_long, off, decoded));
  // Ten bytes whose final group would push past 64 bits.
  const Bytes overflow = {0xff, 0xff, 0xff, 0xff, 0xff,
                          0xff, 0xff, 0xff, 0xff, 0x02};
  off = 0;
  EXPECT_FALSE(ReadVarint(overflow, off, decoded));
}

}  // namespace
}  // namespace tlsharm
