#include "util/crc32.h"

#include <gtest/gtest.h>

namespace tlsharm {
namespace {

TEST(Crc32Test, KnownAnswerVectors) {
  // The standard IEEE 802.3 check value plus a few fixed points.
  EXPECT_EQ(Crc32(ToBytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(Crc32(ToBytes("")), 0x00000000u);
  EXPECT_EQ(Crc32(ToBytes("a")), 0xe8b7be43u);
  EXPECT_EQ(Crc32(ToBytes("abc")), 0x352441c2u);
  EXPECT_EQ(Crc32(Bytes(32, 0x00)), 0x190a55adu);
  EXPECT_EQ(Crc32(Bytes(32, 0xff)), 0xff6cab0bu);
}

TEST(Crc32Test, StreamingMatchesWholeBuffer) {
  const Bytes data = ToBytes("the quick brown fox jumps over the lazy dog");
  const std::uint32_t whole = Crc32(data);
  // Any chunking must produce the same digest.
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t state = Crc32Init();
    state = Crc32Update(state, ByteView(data.data(), split));
    state = Crc32Update(
        state, ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(Crc32Final(state), whole) << "split at " << split;
  }
}

TEST(Crc32Test, EveryBitFlipChangesTheDigest) {
  const Bytes data = ToBytes("segment payload bytes");
  const std::uint32_t clean = Crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = data;
      flipped[i] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(Crc32(flipped), clean) << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace tlsharm
