#include "util/hex.h"

#include <gtest/gtest.h>

namespace tlsharm {
namespace {

TEST(HexTest, EncodeBasic) {
  EXPECT_EQ(HexEncode(Bytes{0x00, 0xff, 0x1a}), "00ff1a");
  EXPECT_EQ(HexEncode({}), "");
}

TEST(HexTest, DecodeBasic) {
  const auto d = HexDecode("00ff1a");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, (Bytes{0x00, 0xff, 0x1a}));
}

TEST(HexTest, DecodeCaseInsensitive) {
  EXPECT_EQ(*HexDecode("DeadBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").has_value());
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").has_value());
  EXPECT_FALSE(HexDecode("0g").has_value());
}

TEST(HexTest, RoundTrip) {
  Bytes all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(*HexDecode(HexEncode(all)), all);
}

}  // namespace
}  // namespace tlsharm
