#include "util/sim_clock.h"

#include <gtest/gtest.h>

namespace tlsharm {
namespace {

TEST(SimClockTest, StartsAtZeroOrGivenTime) {
  EXPECT_EQ(SimClock().Now(), 0);
  EXPECT_EQ(SimClock(100).Now(), 100);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(10);
  clock.Advance(5);
  EXPECT_EQ(clock.Now(), 15);
}

TEST(SimClockTest, AdvanceToJumps) {
  SimClock clock;
  clock.AdvanceTo(3 * kDay);
  EXPECT_EQ(clock.Now(), 3 * kDay);
  EXPECT_EQ(clock.DayIndex(), 3);
}

TEST(SimClockTest, DayIndexBoundaries) {
  SimClock clock;
  EXPECT_EQ(clock.DayIndex(), 0);
  clock.AdvanceTo(kDay - 1);
  EXPECT_EQ(clock.DayIndex(), 0);
  clock.Advance(1);
  EXPECT_EQ(clock.DayIndex(), 1);
}

TEST(SimClockTest, DurationConstants) {
  EXPECT_EQ(kMinute, 60);
  EXPECT_EQ(kHour, 3600);
  EXPECT_EQ(kDay, 86400);
}

TEST(FormatDurationTest, HumanReadable) {
  EXPECT_EQ(FormatDuration(30), "30s");
  EXPECT_EQ(FormatDuration(5 * kMinute), "5m0s");
  EXPECT_EQ(FormatDuration(18 * kHour), "18h0m");
  EXPECT_EQ(FormatDuration(63 * kDay + 4 * kHour), "63d4h");
  EXPECT_EQ(FormatDuration(-60), "-1m0s");
}

TEST(FormatInstantTest, DayAndTime) {
  EXPECT_EQ(FormatInstant(0), "day 0 +00:00:00");
  EXPECT_EQ(FormatInstant(kDay + kHour + kMinute + 1), "day 1 +01:01:01");
}

}  // namespace
}  // namespace tlsharm
