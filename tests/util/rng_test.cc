#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace tlsharm {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(12);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, RandomBytesLength) {
  Rng rng(13);
  EXPECT_EQ(rng.RandomBytes(0).size(), 0u);
  EXPECT_EQ(rng.RandomBytes(7).size(), 7u);
  EXPECT_EQ(rng.RandomBytes(32).size(), 32u);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng base(100);
  Rng f1 = base.Fork("stream-a");
  Rng f2 = base.Fork("stream-a");
  Rng f3 = base.Fork("stream-b");
  EXPECT_EQ(f1.NextU64(), f2.NextU64());   // same label, same stream
  Rng f1b = base.Fork("stream-a");
  EXPECT_NE(f1b.NextU64() + 1, 0u);        // usable
  EXPECT_NE(f3.NextU64(), Rng(100).Fork("stream-a").NextU64());
}

TEST(StableHashTest, StableAcrossCalls) {
  EXPECT_EQ(StableHash64("example.com"), StableHash64("example.com"));
  EXPECT_NE(StableHash64("example.com"), StableHash64("example.org"));
  EXPECT_NE(StableHash64(""), StableHash64("a"));
}

}  // namespace
}  // namespace tlsharm
