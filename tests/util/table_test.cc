#include "util/table.h"

#include <gtest/gtest.h>

namespace tlsharm {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"Domain", "Days"});
  t.AddRow({"yahoo.com", "63"});
  t.AddRow({"qq.com", "56"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Domain"), std::string::npos);
  EXPECT_NE(out.find("yahoo.com"), std::string::npos);
  EXPECT_NE(out.find("56"), std::string::npos);
  // header, underline, two rows
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t({"A", "B", "C"});
  t.AddRow({"only-one"});
  EXPECT_NO_THROW({ (void)t.Render(); });
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace tlsharm
