// Direct terminator behaviour tests (negotiation corners not covered by
// the client-driven integration suite).
#include "server/terminator.h"

#include <gtest/gtest.h>

#include "testutil/fixtures.h"
#include "tls/messages.h"

namespace tlsharm::server {
namespace {

using testutil::ClientFor;
using testutil::Connect;
using testutil::MakeTerminator;
using testutil::TestPki;

class TerminatorTest : public ::testing::Test {
 protected:
  TestPki pki_;
  crypto::Drbg drbg_{ToBytes("terminator test")};
};

TEST_F(TerminatorTest, UnknownSniServesDefaultCredential) {
  auto term = MakeTerminator(pki_, {"known.com"}, ServerConfig{});
  tls::ClientConfig config;
  config.server_name = "unknown.com";
  const auto result = Connect(*term, config, 0, drbg_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.front().data.subject_cn, "known.com");
}

TEST_F(TerminatorTest, EmptySniServesDefaultCredential) {
  auto term = MakeTerminator(pki_, {"known.com"}, ServerConfig{});
  tls::ClientConfig config;  // no SNI
  const auto result = Connect(*term, config, 0, drbg_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.chain.front().data.subject_cn, "known.com");
}

TEST_F(TerminatorTest, WildcardCredentialCoversSubdomainSni) {
  auto term = std::make_unique<SslTerminator>("wild", ServerConfig{}, 1);
  Credential cred = MakeCredential(
      pki_.intermediate, {"*.pages.example"},
      pki::SignatureScheme::kSchnorrSim61, 0, 365 * kDay,
      pki_.intermediate_chain, pki_.drbg);
  term->AddCredential(std::move(cred));
  term->MapDomain("*.pages.example", 0);
  tls::ClientConfig config = ClientFor(pki_, "blog.pages.example");
  const auto result = Connect(*term, config, 0, drbg_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.chain_trusted);
}

TEST_F(TerminatorTest, NoTicketWhenClientDoesNotOffer) {
  auto term = MakeTerminator(pki_, {"a.com"}, ServerConfig{});
  tls::ClientConfig config = ClientFor(pki_, "a.com");
  config.offer_session_ticket = false;
  const auto result = Connect(*term, config, 0, drbg_);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.ticket_issued);
}

TEST_F(TerminatorTest, NoTicketWhenDisabledServerSide) {
  ServerConfig config;
  config.tickets.enabled = false;
  auto term = MakeTerminator(pki_, {"a.com"}, config);
  const auto result = Connect(*term, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.ticket_issued);
  EXPECT_FALSE(result.session_id.empty());  // cache still on
}

TEST_F(TerminatorTest, NoSessionIdWhenCacheAndIssuanceDisabled) {
  ServerConfig config;
  config.session_cache.enabled = false;
  config.session_cache.issue_id_without_cache = false;
  auto term = MakeTerminator(pki_, {"a.com"}, config);
  const auto result = Connect(*term, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.session_id.empty());
}

TEST_F(TerminatorTest, ReissueDisabledKeepsQuietOnResumption) {
  ServerConfig config;
  config.tickets.reissue_on_resumption = false;
  auto term = MakeTerminator(pki_, {"a.com"}, config);
  const auto first = Connect(*term, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);
  tls::ClientConfig resume = ClientFor(pki_, "a.com");
  resume.resume_ticket = first.ticket;
  resume.resume_master_secret = first.master_secret;
  const auto second = Connect(*term, resume, 60, drbg_);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.resumed);
  EXPECT_FALSE(second.ticket_issued);  // no NewSessionTicket reissued
}

TEST_F(TerminatorTest, ResumptionWithUnofferedOriginalSuiteFallsBack) {
  // Session created under DHE; later client only offers ECDHE: the cached
  // suite can't be used, so the server must run a full handshake.
  ServerConfig config;
  config.suite_preference = {tls::CipherSuite::kDheWithAes128CbcSha256,
                             tls::CipherSuite::kEcdheWithAes128CbcSha256};
  auto term = MakeTerminator(pki_, {"a.com"}, config);
  const auto first = Connect(*term, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);
  ASSERT_EQ(first.suite, tls::CipherSuite::kDheWithAes128CbcSha256);

  tls::ClientConfig resume = ClientFor(pki_, "a.com");
  resume.offered_suites = {tls::CipherSuite::kEcdheWithAes128CbcSha256};
  resume.resume_session_id = first.session_id;
  resume.resume_ticket = first.ticket;
  resume.resume_master_secret = first.master_secret;
  const auto second = Connect(*term, resume, 30, drbg_);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_FALSE(second.resumed);
  EXPECT_EQ(second.suite, tls::CipherSuite::kEcdheWithAes128CbcSha256);
}

TEST_F(TerminatorTest, SecondClientHelloOnEstablishedConnectionFails) {
  auto term = MakeTerminator(pki_, {"a.com"}, ServerConfig{});
  auto conn = term->NewConnection(0);
  tls::TlsClient client(ClientFor(pki_, "a.com"));
  ASSERT_TRUE(client.Handshake(*conn, 0, drbg_).ok);
  tls::ClientHello ch;
  ch.random = drbg_.Generate(32);
  ch.cipher_suites = {
      static_cast<std::uint16_t>(tls::CipherSuite::kEcdheWithAes128CbcSha256)};
  Bytes flight;
  tls::AppendHandshake(flight, tls::HandshakeType::kClientHello,
                       ch.Serialize());
  (void)conn->OnClientFlight(flight);
  EXPECT_TRUE(conn->Failed());
}

TEST_F(TerminatorTest, ApplicationDataBeforeHandshakeFails) {
  auto term = MakeTerminator(pki_, {"a.com"}, ServerConfig{});
  auto conn = term->NewConnection(0);
  (void)conn->OnApplicationRecord(Bytes(80, 0x01));
  EXPECT_TRUE(conn->Failed());
}

TEST_F(TerminatorTest, RestartFlushesCacheAndKexButConnectionsStillWork) {
  ServerConfig config;
  config.ecdhe_reuse = {.reuse = true, .ttl = 0};
  auto term = MakeTerminator(pki_, {"a.com"}, config);
  const auto before = Connect(*term, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(before.ok);
  term->Restart(kHour);
  const auto after = Connect(*term, ClientFor(pki_, "a.com"),
                             kHour + 1, drbg_);
  ASSERT_TRUE(after.ok);
  EXPECT_NE(after.server_kex_public, before.server_kex_public);
}

TEST_F(TerminatorTest, TicketFromCurrentAndPreviousStekBothHonoured) {
  ServerConfig config;
  config.stek.rotation = StekRotation::kInterval;
  config.stek.rotation_interval = kDay;
  config.stek.previous_key_acceptance = kDay;
  config.tickets.acceptance_window = 2 * kDay;
  auto term = MakeTerminator(pki_, {"a.com"}, config);
  const auto first = Connect(*term, ClientFor(pki_, "a.com"), 0, drbg_);
  ASSERT_TRUE(first.ok);

  tls::ClientConfig resume = ClientFor(pki_, "a.com");
  resume.resume_ticket = first.ticket;
  resume.resume_master_secret = first.master_secret;
  // After one rotation (old key accepted), resumption works...
  const auto mid = Connect(*term, resume, kDay + kHour, drbg_);
  ASSERT_TRUE(mid.ok);
  EXPECT_TRUE(mid.resumed);
  // ...after the acceptance overlap lapses, it does not.
  const auto late = Connect(*term, resume, 3 * kDay, drbg_);
  ASSERT_TRUE(late.ok);
  EXPECT_FALSE(late.resumed);
}

TEST_F(TerminatorTest, ConcurrentConnectionsAreIndependent) {
  auto term = MakeTerminator(pki_, {"a.com"}, ServerConfig{});
  auto conn1 = term->NewConnection(0);
  auto conn2 = term->NewConnection(0);
  tls::TlsClient c1(ClientFor(pki_, "a.com"));
  tls::TlsClient c2(ClientFor(pki_, "a.com"));
  const auto r1 = c1.Handshake(*conn1, 0, drbg_);
  const auto r2 = c2.Handshake(*conn2, 0, drbg_);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_NE(r1.master_secret, r2.master_secret);
  EXPECT_NE(r1.session_id, r2.session_id);
}

}  // namespace
}  // namespace tlsharm::server
