#include "server/stek_manager.h"

#include <gtest/gtest.h>

namespace tlsharm::server {
namespace {

StekPolicy Interval(SimTime interval, SimTime overlap = 0) {
  return StekPolicy{.rotation = StekRotation::kInterval,
                    .rotation_interval = interval,
                    .previous_key_acceptance = overlap};
}

TEST(StekManagerTest, StaticKeyNeverChanges) {
  StekManager mgr({.rotation = StekRotation::kStatic},
                  tls::TicketCodecKind::kRfc5077, ToBytes("seed"));
  const Bytes name = mgr.IssuingStek(0).key_name;
  EXPECT_EQ(mgr.IssuingStek(63 * kDay).key_name, name);
  mgr.OnProcessRestart(10 * kDay);
  EXPECT_EQ(mgr.IssuingStek(64 * kDay).key_name, name);
}

TEST(StekManagerTest, PerProcessKeyChangesOnRestart) {
  StekManager mgr({.rotation = StekRotation::kPerProcess},
                  tls::TicketCodecKind::kRfc5077, ToBytes("seed"));
  const Bytes name = mgr.IssuingStek(0).key_name;
  EXPECT_EQ(mgr.IssuingStek(kDay).key_name, name);
  mgr.OnProcessRestart(2 * kDay);
  EXPECT_NE(mgr.IssuingStek(2 * kDay).key_name, name);
}

TEST(StekManagerTest, IntervalRotationRollsOnSchedule) {
  StekManager mgr(Interval(kDay), tls::TicketCodecKind::kRfc5077,
                  ToBytes("seed"));
  const Bytes day0 = mgr.IssuingStek(kHour).key_name;
  EXPECT_EQ(mgr.IssuingStek(23 * kHour).key_name, day0);
  const Bytes day1 = mgr.IssuingStek(kDay + kHour).key_name;
  EXPECT_NE(day1, day0);
}

TEST(StekManagerTest, IntervalRotationCatchesUpAcrossGaps) {
  StekManager mgr(Interval(kDay), tls::TicketCodecKind::kRfc5077,
                  ToBytes("seed"));
  const Bytes day0 = mgr.IssuingStek(0).key_name;
  // Jump a week; key must have rotated (possibly several times).
  const Bytes day7 = mgr.IssuingStek(7 * kDay + 1).key_name;
  EXPECT_NE(day7, day0);
  // And be stable within the day.
  EXPECT_EQ(mgr.IssuingStek(7 * kDay + kHour).key_name, day7);
}

TEST(StekManagerTest, AcceptanceOverlapKeepsPreviousKey) {
  StekManager mgr(Interval(14 * kHour, 14 * kHour),
                  tls::TicketCodecKind::kRfc5077, ToBytes("seed"));
  const Bytes epoch0 = mgr.IssuingStek(0).key_name;
  // After one rotation, both keys are acceptable.
  const auto accepted = mgr.AcceptableSteks(15 * kHour);
  ASSERT_EQ(accepted.size(), 2u);
  EXPECT_NE(accepted[0]->key_name, accepted[1]->key_name);
  bool found_old = false;
  for (const auto* stek : accepted) found_old |= stek->key_name == epoch0;
  EXPECT_TRUE(found_old);
  // After the overlap lapses, only the current key remains.
  const auto later = mgr.AcceptableSteks(30 * kHour);
  for (const auto* stek : later) EXPECT_NE(stek->key_name, epoch0);
}

TEST(StekManagerTest, NoOverlapMeansSingleAcceptableKey) {
  StekManager mgr(Interval(kDay, 0), tls::TicketCodecKind::kRfc5077,
                  ToBytes("seed"));
  (void)mgr.IssuingStek(0);
  EXPECT_EQ(mgr.AcceptableSteks(3 * kDay + kHour).size(), 1u);
}

TEST(StekManagerTest, ForceRotateChangesKey) {
  StekManager mgr({.rotation = StekRotation::kStatic},
                  tls::TicketCodecKind::kRfc5077, ToBytes("seed"));
  const Bytes before = mgr.IssuingStek(0).key_name;
  mgr.ForceRotate(59 * kDay);  // the Jack Henry cluster's manual switch
  EXPECT_NE(mgr.IssuingStek(59 * kDay).key_name, before);
}

TEST(StekManagerTest, CodecDeterminesKeyNameSize) {
  StekManager rfc({.rotation = StekRotation::kStatic},
                  tls::TicketCodecKind::kRfc5077, ToBytes("a"));
  StekManager mbed({.rotation = StekRotation::kStatic},
                   tls::TicketCodecKind::kMbedTls, ToBytes("b"));
  EXPECT_EQ(rfc.IssuingStek(0).key_name.size(), 16u);
  EXPECT_EQ(mbed.IssuingStek(0).key_name.size(), 4u);
}

TEST(StekManagerTest, DistinctSeedsDistinctKeys) {
  StekManager a({.rotation = StekRotation::kStatic},
                tls::TicketCodecKind::kRfc5077, ToBytes("seed-a"));
  StekManager b({.rotation = StekRotation::kStatic},
                tls::TicketCodecKind::kRfc5077, ToBytes("seed-b"));
  EXPECT_NE(a.IssuingStek(0).key_name, b.IssuingStek(0).key_name);
}

}  // namespace
}  // namespace tlsharm::server
