#include "server/kex_cache.h"

#include <gtest/gtest.h>

namespace tlsharm::server {
namespace {

constexpr auto kGroup = crypto::NamedGroup::kSimEc61;

TEST(KexCacheTest, NoReuseGeneratesFreshValues) {
  KexCache cache(ToBytes("test kex"));
  crypto::Drbg drbg(ToBytes("kex"));
  const KexReusePolicy policy{.reuse = false};
  const Bytes pub1 = cache.GetKeyPair(kGroup, policy, 0, drbg).public_value;
  const Bytes pub2 = cache.GetKeyPair(kGroup, policy, 0, drbg).public_value;
  EXPECT_NE(pub1, pub2);
}

TEST(KexCacheTest, ReuseWithoutTtlPersistsForever) {
  KexCache cache(ToBytes("test kex"));
  crypto::Drbg drbg(ToBytes("kex"));
  const KexReusePolicy policy{.reuse = true, .ttl = 0};
  const Bytes pub1 = cache.GetKeyPair(kGroup, policy, 0, drbg).public_value;
  const Bytes pub2 =
      cache.GetKeyPair(kGroup, policy, 63 * kDay, drbg).public_value;
  EXPECT_EQ(pub1, pub2);
}

TEST(KexCacheTest, TtlRegeneratesAfterExpiry) {
  KexCache cache(ToBytes("test kex"));
  crypto::Drbg drbg(ToBytes("kex"));
  const KexReusePolicy policy{.reuse = true, .ttl = kHour};
  const Bytes pub1 = cache.GetKeyPair(kGroup, policy, 0, drbg).public_value;
  EXPECT_EQ(cache.GetKeyPair(kGroup, policy, kHour - 1, drbg).public_value,
            pub1);
  const Bytes pub2 =
      cache.GetKeyPair(kGroup, policy, kHour, drbg).public_value;
  EXPECT_NE(pub2, pub1);
}

TEST(KexCacheTest, GroupsAreIndependent) {
  KexCache cache(ToBytes("test kex"));
  crypto::Drbg drbg(ToBytes("kex"));
  const KexReusePolicy policy{.reuse = true, .ttl = 0};
  const Bytes ec = cache.GetKeyPair(kGroup, policy, 0, drbg).public_value;
  const Bytes dh =
      cache.GetKeyPair(crypto::NamedGroup::kFfdheSim61, policy, 0, drbg)
          .public_value;
  EXPECT_NE(ec, dh);
  EXPECT_EQ(cache.GetKeyPair(kGroup, policy, 10, drbg).public_value, ec);
}

TEST(KexCacheTest, ClearDropsCachedValues) {
  KexCache cache(ToBytes("test kex"));
  crypto::Drbg drbg(ToBytes("kex"));
  const KexReusePolicy policy{.reuse = true, .ttl = 0};
  const Bytes pub1 = cache.GetKeyPair(kGroup, policy, 0, drbg).public_value;
  cache.Clear();
  const Bytes pub2 = cache.GetKeyPair(kGroup, policy, 1, drbg).public_value;
  EXPECT_NE(pub1, pub2);
}

TEST(KexCacheTest, GeneratedPairsAreConsistent) {
  // The cached pair must be a valid keypair: shared secrets derived against
  // it agree from both sides.
  KexCache cache(ToBytes("test kex"));
  crypto::Drbg drbg(ToBytes("kex"));
  const KexReusePolicy policy{.reuse = true, .ttl = 0};
  const auto& pair = cache.GetKeyPair(kGroup, policy, 0, drbg);
  const auto& group = crypto::GetKexGroup(kGroup);
  const auto client = group.GenerateKeyPair(drbg);
  const auto s1 = group.SharedSecret(pair.private_key, client.public_value);
  const auto s2 = group.SharedSecret(client.private_key, pair.public_value);
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(*s1, *s2);
}

}  // namespace
}  // namespace tlsharm::server
