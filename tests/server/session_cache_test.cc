#include "server/session_cache.h"

#include <gtest/gtest.h>

namespace tlsharm::server {
namespace {

CachedSession Session(std::uint8_t tag, SimTime created) {
  return CachedSession{.cipher_suite = 0xc027,
                       .master_secret = Bytes(48, tag),
                       .created = created};
}

TEST(SessionCacheTest, InsertLookupRoundTrip) {
  SessionCache cache(5 * kMinute, 100);
  cache.Insert(ToBytes("id-1"), Session(1, 0), 0);
  const auto hit = cache.Lookup(ToBytes("id-1"), 60);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->master_secret, Bytes(48, 1));
}

TEST(SessionCacheTest, MissOnUnknownId) {
  SessionCache cache(5 * kMinute, 100);
  EXPECT_FALSE(cache.Lookup(ToBytes("nope"), 0).has_value());
}

TEST(SessionCacheTest, ExpiresAfterLifetime) {
  SessionCache cache(5 * kMinute, 100);
  cache.Insert(ToBytes("id-1"), Session(1, 0), 0);
  EXPECT_TRUE(cache.Lookup(ToBytes("id-1"), 5 * kMinute - 1).has_value());
  EXPECT_FALSE(cache.Lookup(ToBytes("id-1"), 5 * kMinute).has_value());
}

TEST(SessionCacheTest, ExpiredEntriesEvictedOnAccess) {
  SessionCache cache(kMinute, 100);
  cache.Insert(ToBytes("old"), Session(1, 0), 0);
  cache.Insert(ToBytes("new"), Session(2, 2 * kMinute), 2 * kMinute);
  EXPECT_EQ(cache.Size(), 1u);  // "old" evicted during the second insert
}

TEST(SessionCacheTest, CapacityEvictsOldestFirst) {
  SessionCache cache(kDay, 3);
  cache.Insert(ToBytes("a"), Session(1, 0), 0);
  cache.Insert(ToBytes("b"), Session(2, 1), 1);
  cache.Insert(ToBytes("c"), Session(3, 2), 2);
  cache.Insert(ToBytes("d"), Session(4, 3), 3);
  EXPECT_FALSE(cache.Lookup(ToBytes("a"), 4).has_value());
  EXPECT_TRUE(cache.Lookup(ToBytes("b"), 4).has_value());
  EXPECT_TRUE(cache.Lookup(ToBytes("d"), 4).has_value());
  EXPECT_EQ(cache.Size(), 3u);
}

TEST(SessionCacheTest, ClearFlushesEverything) {
  SessionCache cache(kDay, 100);
  cache.Insert(ToBytes("a"), Session(1, 0), 0);
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_FALSE(cache.Lookup(ToBytes("a"), 1).has_value());
}

TEST(SessionCacheTest, DumpExposesAllMasterSecrets) {
  // The attacker's view after compromising the cache.
  SessionCache cache(kDay, 100);
  cache.Insert(ToBytes("a"), Session(1, 0), 0);
  cache.Insert(ToBytes("b"), Session(2, 0), 0);
  EXPECT_EQ(cache.Dump().size(), 2u);
  EXPECT_EQ(cache.Dump().at(ToBytes("a")).master_secret, Bytes(48, 1));
}

TEST(SessionCacheTest, LifetimeBoundaryIsExclusive) {
  SessionCache cache(10, 100);
  cache.Insert(ToBytes("x"), Session(1, 100), 100);
  EXPECT_TRUE(cache.Lookup(ToBytes("x"), 109).has_value());
  EXPECT_FALSE(cache.Lookup(ToBytes("x"), 110).has_value());
}

TEST(SessionCacheTest, OverwriteSameIdKeepsLatest) {
  SessionCache cache(kDay, 100);
  cache.Insert(ToBytes("a"), Session(1, 0), 0);
  cache.Insert(ToBytes("a"), Session(2, 5), 5);
  const auto hit = cache.Lookup(ToBytes("a"), 6);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->master_secret, Bytes(48, 2));
}

}  // namespace
}  // namespace tlsharm::server
