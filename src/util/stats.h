// Small statistics helpers used by the analysis layer and benches:
// empirical CDFs, percentiles, medians, and fraction-at-threshold queries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tlsharm {

// An empirical distribution over doubles (typically durations in seconds or
// days). Samples are stored and sorted lazily on first query.
class EmpiricalDistribution {
 public:
  void Add(double v);
  void AddN(double v, std::size_t n);

  std::size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  // Fraction of samples <= x (the CDF evaluated at x). Returns 0 for an
  // empty distribution.
  double CdfAt(double x) const;

  // Fraction of samples >= x.
  double FractionAtLeast(double x) const;

  // Smallest sample v such that CdfAt(v) >= q, q in [0,1].
  // Precondition: non-empty.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double Min() const;
  double Max() const;
  double Mean() const;

  // Evenly spaced CDF points for plotting: pairs of (x, CDF(x)).
  std::vector<std::pair<double, double>> CdfPoints(std::size_t n_points) const;

  // All samples, sorted ascending.
  const std::vector<double>& Sorted() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

// Renders "38.2%" style percentages for reports.
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace tlsharm
