#include "util/crc32.h"

#include <array>

namespace tlsharm {
namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320.
constexpr std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = BuildTable();

}  // namespace

std::uint32_t Crc32Init() { return 0xFFFFFFFFu; }

std::uint32_t Crc32Update(std::uint32_t state, ByteView data) {
  for (const std::uint8_t byte : data) {
    state = (state >> 8) ^ kTable[(state ^ byte) & 0xffu];
  }
  return state;
}

std::uint32_t Crc32Final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t Crc32(ByteView data) {
  return Crc32Final(Crc32Update(Crc32Init(), data));
}

}  // namespace tlsharm
