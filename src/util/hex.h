// Hex encoding/decoding, used for test vectors, STEK identifiers in reports
// and diagnostic output.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace tlsharm {

// Lower-case hex encoding of `b`.
std::string HexEncode(ByteView b);

// Decodes a hex string (case-insensitive). Returns nullopt on odd length or
// non-hex characters.
std::optional<Bytes> HexDecode(std::string_view s);

// Decodes a hex string that is known-valid (test vectors); aborts otherwise.
Bytes MustHexDecode(std::string_view s);

}  // namespace tlsharm
