// Durable file commits and deterministic crash injection — the shared
// foundation of the crash-safe campaign layer (scanner/runlog.h,
// campaign/campaign.h).
//
// Every persistent artifact the campaign relies on (warehouse segments and
// MANIFEST, fold checkpoints, campaign state, the run journal) is committed
// with the same discipline: write the full contents to `<path>.tmp`, fsync
// the temp file, rename it over `path`, then fsync the containing
// directory. A fail-stop crash at any instant therefore leaves `path`
// holding either the previous complete contents or the new complete
// contents — never a torn mixture — plus at worst one orphaned `*.tmp`
// file, which recovery sweeps.
//
// Crash injection: TLSHARM_CRASH_AFTER=<n> makes the process _exit(137) at
// the n-th durability barrier it passes (1-based). Barriers are placed
// inside DurableWriteFile (after the temp fsync, after the rename, and
// after the directory fsync) and at the other commit points the campaign
// layer marks explicitly via CrashPoint(). All barriers execute on the
// scan engine's merge thread, so for a fixed workload the n-th barrier is
// the same program state at any thread count — the property the
// crash-recovery ladder test relies on.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace tlsharm {

// Passes one durability barrier: bumps the process-wide barrier counter
// and, when TLSHARM_CRASH_AFTER is set and the counter reaches it,
// terminates the process immediately with _exit(137) — no stream flushing,
// no destructors, like a kill -9 at that instant.
void CrashPoint();

// Barriers passed so far in this process (0 when crash injection is off —
// the counter always runs, so harnesses can size their kill ladder).
std::uint64_t CrashPointsPassed();

// Atomically replaces `path` with `bytes` using the temp+fsync+rename+
// dir-fsync discipline above. False + `error` on I/O failure; `path` then
// still holds its previous contents.
bool DurableWriteFile(const std::string& path, ByteView bytes,
                      std::string* error);

// fsyncs the directory containing `path` so a completed rename survives a
// power cut. False + `error` when the directory cannot be opened/synced.
bool FsyncParentDir(const std::string& path, std::string* error);

// fsyncs one open descriptor; false on failure (errno in `error`).
bool FsyncFd(int fd, std::string* error);

}  // namespace tlsharm
