// Deterministic random number generation.
//
// Every stochastic choice in the simulation (population synthesis, churn,
// load-balancer selection, probe sampling) flows through `Rng` so a whole
// nine-week study replays bit-for-bit from one seed. The core generator is
// xoshiro256** seeded via splitmix64, which is statistically strong enough
// for simulation work and trivially portable.
//
// Cryptographic randomness for the TLS stack is produced by `crypto::Drbg`
// (an HMAC-DRBG), which itself is seeded from an Rng in simulation runs.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace tlsharm {

// splitmix64 step; exposed for seeding and for hashing small keys.
std::uint64_t SplitMix64(std::uint64_t& state);

// Stable 64-bit hash of a string (FNV-1a finished with splitmix64). Used to
// derive per-domain substream seeds so adding a domain never perturbs the
// random choices of another.
std::uint64_t StableHash64(std::string_view s);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform in [0, 2^64).
  std::uint64_t NextU64();

  // Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t UniformRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Picks an index in [0, weights.size()) proportional to weights.
  // Precondition: at least one weight > 0.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Fills a buffer of n random bytes.
  Bytes RandomBytes(std::size_t n);

  // Derives an independent child generator; `label` keeps substreams stable
  // across code reorderings.
  Rng Fork(std::string_view label) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace tlsharm
