// CRC-32 (IEEE 802.3, the zlib/gzip polynomial), used by the observation
// warehouse to detect corrupted columns, segments and checkpoints before a
// decoder ever touches the bytes. Table-driven, one table shared
// process-wide; streaming via the running-state overload.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace tlsharm {

// CRC-32 of `data` (initial value 0, final XOR applied — the usual
// whole-buffer convention: Crc32("123456789") == 0xcbf43926).
std::uint32_t Crc32(ByteView data);

// Streaming form: feed successive chunks through `state`, starting from
// Crc32Init() and finishing with Crc32Final(state).
std::uint32_t Crc32Init();
std::uint32_t Crc32Update(std::uint32_t state, ByteView data);
std::uint32_t Crc32Final(std::uint32_t state);

}  // namespace tlsharm
