#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace tlsharm {
namespace {

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t StableHash64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = h;
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = SplitMix64(state);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::UniformRange(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w > 0 ? w : 0;
  assert(total > 0);
  double x = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

Bytes Rng::RandomBytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t word = NextU64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(word & 0xff));
      word >>= 8;
    }
  }
  return out;
}

Rng Rng::Fork(std::string_view label) const {
  return Rng(seed_ ^ StableHash64(label) ^ 0xa5a5a5a5a5a5a5a5ULL);
}

}  // namespace tlsharm
