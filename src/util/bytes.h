// Byte-buffer utilities shared by every module.
//
// `Bytes` is the project-wide owning byte container. Helpers here cover the
// operations the TLS wire format and crypto code need constantly: big-endian
// integer packing, constant-time comparison for MAC checks, concatenation and
// XOR for CBC.
#pragma once

#include <cstdint>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tlsharm {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

// Builds a Bytes from a string's raw characters (no encoding applied).
Bytes ToBytes(std::string_view s);

// Interprets a byte buffer as text. Only used for diagnostics.
std::string ToString(ByteView b);

// Appends `src` to `dst`.
void Append(Bytes& dst, ByteView src);

// Appends `n` in big-endian order using `width` bytes (1..8).
void AppendUint(Bytes& dst, std::uint64_t n, int width);

// Reads a big-endian integer of `width` bytes (1..8) starting at `b[off]`.
// Precondition: off + width <= b.size().
std::uint64_t ReadUint(ByteView b, std::size_t off, int width);

// Concatenates any number of buffers.
Bytes Concat(std::initializer_list<ByteView> parts);

// XORs `b` into `a` elementwise. Precondition: equal sizes.
void XorInto(Bytes& a, ByteView b);

// Constant-time equality; used for MAC and finished-message verification so
// the simulated stack keeps the idioms of a production one.
bool ConstantTimeEqual(ByteView a, ByteView b);

// Lexicographic ordering helper so Bytes can key std::map deterministically.
int Compare(ByteView a, ByteView b);

// LEB128-style unsigned varint, the integer encoding of the columnar
// observation warehouse (src/warehouse): 7 value bits per byte, high bit =
// continuation, least-significant group first. 0 encodes in one byte; a
// full 64-bit value takes ten.
void AppendVarint(Bytes& dst, std::uint64_t n);

// Decodes a varint starting at `b[off]`, advancing `off` past it. Returns
// false (leaving `off` unspecified) on truncation, on more than ten bytes,
// or on a non-minimal final byte that would overflow 64 bits.
bool ReadVarint(ByteView b, std::size_t& off, std::uint64_t& out);

}  // namespace tlsharm
