#include "util/sim_clock.h"

#include <cassert>
#include <cstdio>

namespace tlsharm {

void SimClock::Advance(SimTime delta) {
  assert(delta >= 0);
  now_ += delta;
}

void SimClock::AdvanceTo(SimTime t) {
  assert(t >= now_);
  now_ = t;
}

std::string FormatDuration(SimTime seconds) {
  if (seconds < 0) return "-" + FormatDuration(-seconds);
  char buf[64];
  if (seconds < kMinute) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(seconds));
  } else if (seconds < kHour) {
    std::snprintf(buf, sizeof(buf), "%lldm%llds",
                  static_cast<long long>(seconds / kMinute),
                  static_cast<long long>(seconds % kMinute));
  } else if (seconds < kDay) {
    std::snprintf(buf, sizeof(buf), "%lldh%lldm",
                  static_cast<long long>(seconds / kHour),
                  static_cast<long long>((seconds % kHour) / kMinute));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldd%lldh",
                  static_cast<long long>(seconds / kDay),
                  static_cast<long long>((seconds % kDay) / kHour));
  }
  return buf;
}

std::string FormatInstant(SimTime t) {
  const SimTime day = t / kDay;
  const SimTime rem = t % kDay;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "day %lld +%02lld:%02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(rem / kHour),
                static_cast<long long>((rem % kHour) / kMinute),
                static_cast<long long>(rem % kMinute));
  return buf;
}

}  // namespace tlsharm
