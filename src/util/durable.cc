#include "util/durable.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/prof.h"

namespace tlsharm {
namespace {

// Performance-plane sites: "durable.fsync" wraps every fsync this file
// issues (file and directory alike), so the prof plane's commit-latency
// totals cover the text store's day blocks, the campaign's state writes
// and the journal. Wall-clock only — see obs/prof.h.
const obs::ProfSite kProfFsync("durable.fsync", obs::kProfNoTrace);
const obs::ProfSite kProfDurableWrite("durable.write");

std::atomic<std::uint64_t> g_barriers{0};

// TLSHARM_CRASH_AFTER, parsed once. 0 = crash injection off.
std::uint64_t CrashAfter() {
  static const std::uint64_t target = [] {
    const char* env = std::getenv("TLSHARM_CRASH_AFTER");
    if (env == nullptr || *env == '\0') return std::uint64_t{0};
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    return (end != nullptr && *end == '\0') ? static_cast<std::uint64_t>(value)
                                            : std::uint64_t{0};
  }();
  return target;
}

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

void CrashPoint() {
  const std::uint64_t n = g_barriers.fetch_add(1) + 1;
  const std::uint64_t target = CrashAfter();
  if (target != 0 && n == target) {
    // Fail-stop: no atexit handlers, no buffered-stream flushes. Everything
    // not yet write()n to the kernel is lost, exactly like kill -9.
    _exit(137);
  }
}

std::uint64_t CrashPointsPassed() { return g_barriers.load(); }

bool FsyncFd(int fd, std::string* error) {
  obs::ProfScope prof_span(kProfFsync);
  if (::fsync(fd) == 0) return true;
  if (error != nullptr) *error = Errno("fsync fd for", "descriptor");
  return false;
}

bool FsyncParentDir(const std::string& path, std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("cannot open directory", dir);
    return false;
  }
  bool ok;
  {
    obs::ProfScope prof_span(kProfFsync);
    ok = ::fsync(fd) == 0;
  }
  if (!ok && error != nullptr) *error = Errno("cannot fsync directory", dir);
  ::close(fd);
  return ok;
}

bool DurableWriteFile(const std::string& path, ByteView bytes,
                      std::string* error) {
  obs::ProfScope prof_span(kProfDurableWrite);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("cannot create", tmp);
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("cannot write", tmp);
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  {
    obs::ProfScope fsync_span(kProfFsync);
    if (::fsync(fd) != 0) {
      if (error != nullptr) *error = Errno("cannot fsync", tmp);
      ::close(fd);
      return false;
    }
  }
  ::close(fd);
  CrashPoint();  // temp durable, target untouched -> orphaned *.tmp
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = Errno("cannot rename over", path);
    return false;
  }
  CrashPoint();  // renamed, directory entry not yet synced
  if (!FsyncParentDir(path, error)) return false;
  CrashPoint();  // fully durable
  return true;
}

}  // namespace tlsharm
