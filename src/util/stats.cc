#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace tlsharm {

void EmpiricalDistribution::Add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void EmpiricalDistribution::AddN(double v, std::size_t n) {
  values_.insert(values_.end(), n, v);
  sorted_ = false;
}

void EmpiricalDistribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::CdfAt(double x) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double EmpiricalDistribution::FractionAtLeast(double x) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::lower_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(values_.end() - it) /
         static_cast<double>(values_.size());
}

double EmpiricalDistribution::Quantile(double q) const {
  assert(!values_.empty());
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t idx = std::min(
      values_.size() - 1,
      static_cast<std::size_t>(std::ceil(q * values_.size())) == 0
          ? 0
          : static_cast<std::size_t>(std::ceil(q * values_.size())) - 1);
  return values_[idx];
}

double EmpiricalDistribution::Min() const {
  assert(!values_.empty());
  EnsureSorted();
  return values_.front();
}

double EmpiricalDistribution::Max() const {
  assert(!values_.empty());
  EnsureSorted();
  return values_.back();
}

double EmpiricalDistribution::Mean() const {
  assert(!values_.empty());
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> EmpiricalDistribution::CdfPoints(
    std::size_t n_points) const {
  std::vector<std::pair<double, double>> pts;
  if (values_.empty() || n_points == 0) return pts;
  EnsureSorted();
  const double lo = values_.front();
  const double hi = values_.back();
  pts.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const double x =
        n_points == 1 ? hi
                      : lo + (hi - lo) * static_cast<double>(i) /
                                 static_cast<double>(n_points - 1);
    pts.emplace_back(x, CdfAt(x));
  }
  return pts;
}

const std::vector<double>& EmpiricalDistribution::Sorted() const {
  EnsureSorted();
  return values_;
}

std::string FormatPercent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace tlsharm
