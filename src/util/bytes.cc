#include "util/bytes.h"

#include <algorithm>
#include <cassert>

namespace tlsharm {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(ByteView b) {
  return std::string(b.begin(), b.end());
}

void Append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void AppendUint(Bytes& dst, std::uint64_t n, int width) {
  assert(width >= 1 && width <= 8);
  for (int i = width - 1; i >= 0; --i) {
    dst.push_back(static_cast<std::uint8_t>((n >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadUint(ByteView b, std::size_t off, int width) {
  assert(width >= 1 && width <= 8);
  assert(off + static_cast<std::size_t>(width) <= b.size());
  std::uint64_t n = 0;
  for (int i = 0; i < width; ++i) {
    n = (n << 8) | b[off + static_cast<std::size_t>(i)];
  }
  return n;
}

Bytes Concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) Append(out, p);
  return out;
}

void XorInto(Bytes& a, ByteView b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

bool ConstantTimeEqual(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void AppendVarint(Bytes& dst, std::uint64_t n) {
  while (n >= 0x80) {
    dst.push_back(static_cast<std::uint8_t>(n) | 0x80);
    n >>= 7;
  }
  dst.push_back(static_cast<std::uint8_t>(n));
}

bool ReadVarint(ByteView b, std::size_t& off, std::uint64_t& out) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (off >= b.size()) return false;
    const std::uint8_t byte = b[off++];
    // The tenth byte holds the single remaining bit; anything else would
    // push past 64 bits.
    if (shift == 63 && (byte & 0xfe) != 0) return false;
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      out = value;
      return true;
    }
  }
  return false;
}

int Compare(ByteView a, ByteView b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace tlsharm
