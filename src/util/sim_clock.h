// Virtual time.
//
// The nine-week study is replayed over simulated time: every component that
// cares about "now" (session caches, STEK rotators, churn, scan schedulers)
// reads a SimClock. Time is a count of seconds since the simulation epoch
// (chosen to be 2016-03-02 00:00:00 UTC, the paper's first scan day).
#pragma once

#include <cstdint>
#include <string>

namespace tlsharm {

// Simulated instant, seconds since the study epoch.
using SimTime = std::int64_t;

// Durations, also in seconds.
constexpr SimTime kSecond = 1;
constexpr SimTime kMinute = 60;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;

class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime Now() const { return now_; }

  // Advances the clock. Time never goes backwards.
  void Advance(SimTime delta);
  void AdvanceTo(SimTime t);

  // Day index of the current instant (0 = first study day).
  int DayIndex() const { return static_cast<int>(now_ / kDay); }

 private:
  SimTime now_ = 0;
};

// Renders a duration like "5m", "18h", "63d 4h" for reports.
std::string FormatDuration(SimTime seconds);

// Renders an instant as "day N +HH:MM:SS".
std::string FormatInstant(SimTime t);

}  // namespace tlsharm
