// Plain-text table rendering for the experiment benches. Every bench prints
// its reproduction of a paper table/figure through this so the output format
// is uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace tlsharm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and an underline after the header.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience numeric formatting for table cells.
std::string FormatCount(std::uint64_t n);      // 1,234,567
std::string FormatDouble(double v, int prec);  // fixed precision

}  // namespace tlsharm
