#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace tlsharm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatCount(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatDouble(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace tlsharm
