// The observation warehouse: a directory of day-partitioned columnar
// segments plus an index MANIFEST (format.h documents the layout). This is
// the canonical substrate between the scanner and all analysis — scan
// once, store compactly, re-query cheaply and incrementally.
//
// WarehouseWriter is a scanner::StoreWriter: attach it to the scan engines
// via ScanEngineOptions::store and each virtual day's observations become
// one columnar segment the moment the day completes (EndDay). Since the
// engines deliver the canonical observation stream, warehouse bytes are
// identical for any thread count. Lifetime-experiment results (Figures
// 1-2) are stored alongside as experiment tables.
//
// Warehouse (the reader) streams observations back in canonical order,
// optionally restricted to a day range — the partition pruning that makes
// "re-query day k..n" cheap. Every read validates the manifest CRC of the
// file and the per-column / per-segment checksums before decoding.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scanner/experiments.h"
#include "scanner/store.h"

namespace tlsharm::warehouse {

struct SegmentInfo {
  int day = 0;             // observation segments
  std::string kind;        // experiment tables: "session_id" | "ticket"
  std::string file;        // name within the warehouse directory
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;   // CRC-32 of the whole file
};

// Experiment-kind names <-> segment experiment ids (format.h).
const char* ExperimentKindName(std::uint8_t experiment);
std::optional<std::uint8_t> ExperimentKindId(const std::string& kind);

// What a writer swept while preparing its directory — orphaned temp files
// from interrupted atomic commits, plus (on resume) segments and fold
// checkpoints beyond the last committed day. Surfaced as the
// campaign.recovery.* counters so operators can see a crash left debris.
struct RecoverySweep {
  std::uint64_t tmp_files_removed = 0;
  std::uint64_t stale_segments_removed = 0;
  std::uint64_t stale_checkpoints_removed = 0;
};

class WarehouseWriter : public scanner::StoreWriter {
 public:
  // Creates (or resets) the warehouse directory: a stale MANIFEST, any
  // previous segment/checkpoint files, and orphaned `*.tmp` files from an
  // interrupted commit are removed so a recording never mixes studies.
  // Returns nullptr with `error` set when the directory cannot be
  // prepared. `sweep` (optional) reports what was cleaned.
  static std::unique_ptr<WarehouseWriter> Create(const std::string& dir,
                                                 std::string* error,
                                                 RecoverySweep* sweep =
                                                     nullptr);

  // Reopens an existing warehouse for a resumed campaign, reconciling the
  // directory with the journal's last committed day: observation segments
  // beyond `last_day` (a partially recorded day the journal never
  // committed), every experiment table (rewritten deterministically when
  // the study finishes), stale fold checkpoints, and orphaned `*.tmp`
  // files are deleted, and the MANIFEST is rewritten durably to index
  // exactly the committed prefix. Appending then continues at
  // `last_day + 1`. Kept segment files are verified against their
  // manifest size/CRC before anything is deleted.
  static std::unique_ptr<WarehouseWriter> Resume(const std::string& dir,
                                                 int last_day,
                                                 RecoverySweep* sweep,
                                                 std::string* error);

  // scanner::StoreWriter: buffers the current day's rows, writes one
  // segment per completed day. Append days must be non-decreasing.
  void Append(int day, const scanner::HandshakeObservation& obs) override;
  void EndDay(int day) override;
  void Finish() override;  // flushes a pending day; idempotent

  // Stores a lifetime-experiment table (kind "session_id" or "ticket"),
  // replacing any previous table of the same kind.
  bool WriteLifetime(const std::string& kind,
                     const scanner::ResumptionLifetimeResult& result);

  // I/O or contract violations latch: once ok() is false, the warehouse on
  // disk must not be trusted and error() says why.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::uint64_t RowsWritten() const { return rows_written_; }
  std::uint64_t BytesWritten() const { return bytes_written_; }
  // Committed observation segments so far (one per ended day).
  std::uint64_t SegmentsWritten() const { return obs_segments_.size(); }
  // CRC-32 of the MANIFEST bytes last written — the digest the campaign
  // journal records at each day commit and re-verifies on resume.
  std::uint32_t ManifestCrc() const { return manifest_crc_; }

  ~WarehouseWriter() override;

 private:
  explicit WarehouseWriter(std::string dir);

  void FlushDay();
  // Writes the segment and fills info->bytes / info->crc from the bytes.
  bool WriteSegmentFile(const std::string& name, const Bytes& bytes,
                        SegmentInfo* info);
  bool WriteManifest();
  void Latch(const std::string& message);

  std::string dir_;
  int current_day_ = -1;  // day being buffered; -1 = none yet
  std::vector<scanner::HandshakeObservation> pending_;
  std::vector<SegmentInfo> obs_segments_;
  std::vector<SegmentInfo> experiments_;
  std::uint64_t rows_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint32_t manifest_crc_ = 0;
  bool ok_ = true;
  std::string error_;
};

class Warehouse {
 public:
  // Opens an existing warehouse by parsing its MANIFEST (segment files are
  // validated lazily, on read). nullopt with `error` set on failure.
  static std::optional<Warehouse> Open(const std::string& dir,
                                       std::string* error);

  const std::string& Directory() const { return dir_; }
  const std::vector<SegmentInfo>& ObservationSegments() const {
    return obs_segments_;
  }
  const std::vector<SegmentInfo>& Experiments() const {
    return experiments_;
  }

  // Days covered: observation segments are day-ordered; DayCount is
  // last day + 1 (0 when empty).
  int DayCount() const;
  std::uint64_t TotalRows() const;
  std::uint64_t TotalBytes() const;  // segment files, manifest excluded

  // Streams every stored observation with day in [day_min, day_max], in
  // canonical order (day-ascending, scan order within a day). Segments
  // outside the range are never read from disk. False + `error` on any
  // corruption; the visit stops at the first bad segment.
  bool ForEachObservation(
      int day_min, int day_max,
      const std::function<void(const scanner::StoredObservation&)>& visit,
      std::string* error) const;

  bool HasExperiment(const std::string& kind) const;
  bool ReadExperiment(const std::string& kind,
                      scanner::ResumptionLifetimeResult* result,
                      std::string* error) const;

 private:
  Warehouse() = default;

  std::string dir_;
  std::vector<SegmentInfo> obs_segments_;
  std::vector<SegmentInfo> experiments_;
};

// Reads a whole file into `out`; false + `error` when unreadable.
bool ReadWarehouseFile(const std::string& path, Bytes* out,
                       std::string* error);

}  // namespace tlsharm::warehouse
