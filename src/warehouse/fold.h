// Incremental aggregation over the warehouse: folds stored observations
// day by day into the exact aggregate state the scan engine maintains
// while scanning live, so every daily-scan figure (Figs 3-5, 8; Tables
// 2-4) can be computed from the warehouse in one streaming pass — and,
// with checkpoints, from only the days recorded since the last fold.
//
// The fold state IS the engine's aggregate state: both are
// scanner::ScanAggregates (scanner/aggregates.h), which documents why the
// suite-dispatch replay reproduces the engine's two probe passes bit for
// bit. The only engine output that is NOT reconstructible from stored
// observations is the per-day loss ledger (requeue recovery is invisible
// once merged), so FoldDailyScans leaves DailyScanResult::loss empty — no
// figure consumes it from a stored study; the campaign journal
// (scanner/runlog.h) carries it for resumed scans instead.
#pragma once

#include <string>

#include "scanner/aggregates.h"
#include "warehouse/warehouse.h"

namespace tlsharm::warehouse {

// The fold state and checkpoint codec now live in the scanner layer so the
// engine, the fold, and the campaign resume path share one implementation;
// these aliases keep the warehouse-side API stable.
using ScanFold = scanner::ScanAggregates;
using scanner::CheckpointFileName;
using scanner::ReadCheckpoint;
using scanner::WriteCheckpoint;

struct FoldOptions {
  // Resume from the newest valid checkpoint instead of refolding day 0.
  bool use_checkpoints = true;
  // Write/refresh a checkpoint after each folded day.
  bool write_checkpoints = false;
};

// Statistics of one FoldDailyScans call, for tooling and benches.
struct FoldStats {
  int days_total = 0;     // observation segments in the warehouse
  int days_folded = 0;    // segments actually read this call
  int resumed_from = 0;   // first day folded (0 = cold fold)
  std::uint64_t rows_folded = 0;
};

// Folds the warehouse's observation segments into `out` (engine-equivalent
// except `loss`). With checkpoints enabled, only days newer than the best
// checkpoint are read. False + `error` on corrupt segments; checkpoints
// that fail to load are ignored (cold refold), never an error.
bool FoldDailyScans(const Warehouse& warehouse, const simnet::Internet& net,
                    const FoldOptions& options,
                    scanner::DailyScanResult* out, std::string* error,
                    FoldStats* stats = nullptr);

}  // namespace tlsharm::warehouse
