// Incremental aggregation over the warehouse: folds stored observations
// day by day into the exact aggregate state RunDailyScans maintains while
// scanning live, so every daily-scan figure (Figs 3-5, 8; Tables 2-4) can
// be computed from the warehouse in one streaming pass — and, with
// checkpoints, from only the days recorded since the last fold.
//
// Why the fold reproduces the engine bit for bit: the engine's two probe
// passes are distinguishable from the stored suite alone. The main pass
// offers kEcdheAndStatic and can never negotiate the DHE suite; the DHE
// pass negotiates exactly kDheWithAes128CbcSha256 when it succeeds. Failed
// probes (handshake_ok == false) aggregate to nothing in either pass. So
// dispatching each stored observation on its suite replays the engine's
// aggregate_main / aggregate_dhe exactly, in the same canonical order the
// store preserved. The only engine output that is NOT reconstructible is
// the per-day loss ledger (requeue recovery is invisible once merged), so
// FoldDailyScans leaves DailyScanResult::loss empty — no figure consumes
// it from a stored study.
#pragma once

#include <string>

#include "analysis/spans.h"
#include "scanner/experiments.h"
#include "warehouse/warehouse.h"

namespace tlsharm::warehouse {

class ScanFold {
 public:
  // Replays one stored observation of `day`. Days must be non-decreasing
  // across calls and >= NextDay()'s predecessor; callers fold whole days
  // and then CompleteDay().
  void Fold(int day, const scanner::HandshakeObservation& obs);

  // Marks `day` fully folded; NextDay() becomes day + 1.
  void CompleteDay(int day);

  // First day this fold still needs (0 for a fresh fold).
  int NextDay() const { return next_day_; }

  // Materializes the engine-equivalent result (loss left empty). Core
  // domain accounting needs the simulated Internet's domain roster, same
  // as the live engine's final pass.
  scanner::DailyScanResult Finish(const simnet::Internet& net) const;

  // Checkpoint codec: EncodeState is deterministic (domains in index
  // order); DecodeState restores an equivalent fold or returns false on
  // malformed input.
  void EncodeState(Bytes& out) const;
  bool DecodeState(ByteView in, std::size_t& off);

  // Direct access to the folded span trackers, for reports that need the
  // distributions without the core-domain accounting (obsq spans).
  const analysis::SpanTracker& StekSpans() const { return stek_spans_; }
  const analysis::SpanTracker& EcdheSpans() const { return ecdhe_spans_; }
  const analysis::SpanTracker& DheSpans() const { return dhe_spans_; }

 private:
  int next_day_ = 0;
  analysis::SpanTracker stek_spans_{8};
  analysis::SpanTracker ecdhe_spans_{8};
  analysis::SpanTracker dhe_spans_{8};
  // Grow-on-demand, indexed by DomainIndex (same flags the engine keeps).
  std::vector<std::uint8_t> ever_ticket_;
  std::vector<std::uint8_t> ever_ecdhe_;
  std::vector<std::uint8_t> ever_dhe_;
  std::vector<std::uint8_t> ever_trusted_;

  void Mark(std::vector<std::uint8_t>& flags, scanner::DomainIndex domain);
};

// Checkpoint files: <dir>/ckpt-<day>.bin holds the fold state after day
// `day` completed ("TLWC" | version | state | CRC-32 trailer).
std::string CheckpointFileName(int day);
bool WriteCheckpoint(const std::string& dir, int day, const ScanFold& fold,
                     std::string* error);
// False when the file is missing or malformed (fold unspecified then).
bool ReadCheckpoint(const std::string& dir, int day, ScanFold* fold,
                    std::string* error);

struct FoldOptions {
  // Resume from the newest valid checkpoint instead of refolding day 0.
  bool use_checkpoints = true;
  // Write/refresh a checkpoint after each folded day.
  bool write_checkpoints = false;
};

// Statistics of one FoldDailyScans call, for tooling and benches.
struct FoldStats {
  int days_total = 0;     // observation segments in the warehouse
  int days_folded = 0;    // segments actually read this call
  int resumed_from = 0;   // first day folded (0 = cold fold)
  std::uint64_t rows_folded = 0;
};

// Folds the warehouse's observation segments into `out` (engine-equivalent
// except `loss`). With checkpoints enabled, only days newer than the best
// checkpoint are read. False + `error` on corrupt segments; checkpoints
// that fail to load are ignored (cold refold), never an error.
bool FoldDailyScans(const Warehouse& warehouse, const simnet::Internet& net,
                    const FoldOptions& options,
                    scanner::DailyScanResult* out, std::string* error,
                    FoldStats* stats = nullptr);

}  // namespace tlsharm::warehouse
