// The capture tape: the adversary's day-partitioned archive of recorded
// connections (attack::CaptureRecord), stored as columnar segments with
// the same envelope, dictionary and checksum machinery as the observation
// warehouse (format.h kind 2).
//
// CaptureTapeWriter is an attack::CaptureSink: attach it to the scan
// engine via ScanEngineOptions::capture and each virtual day's records
// become one "capture-<day>.seg" the moment the day ends. The engine
// delivers records in canonical order, so tape bytes are identical at any
// TLSHARM_THREADS. The tape directory carries its own MANIFEST (header
// "tlsharm-capture-tape 1", `cap day=...` lines) and the same durable
// commit discipline as the warehouse: atomic temp+fsync+rename, orphaned
// *.tmp swept on Create, Resume verifying kept segments before dropping
// anything past the last committed day.
//
// CaptureTape (the reader) streams records back in canonical order with
// day-range partition pruning, validating manifest size/CRC and every
// per-column/per-segment checksum before a record is surfaced.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/record.h"
#include "warehouse/warehouse.h"

namespace tlsharm::warehouse {

// Columnar codec for one day's records (format.h documents the layout).
Bytes EncodeCaptureSegment(int day,
                           const std::vector<attack::CaptureRecord>& rows);
bool DecodeCaptureSegment(ByteView segment, int* day,
                          std::vector<attack::CaptureRecord>* rows,
                          std::string* error);

class CaptureTapeWriter final : public attack::CaptureSink {
 public:
  // Creates (or resets) the tape directory; sweeps previous segments and
  // orphaned temp files. nullptr + `error` when the directory cannot be
  // prepared.
  static std::unique_ptr<CaptureTapeWriter> Create(const std::string& dir,
                                                   std::string* error,
                                                   RecoverySweep* sweep =
                                                       nullptr);

  // Reopens a tape for a resumed campaign: verifies kept segments against
  // the manifest, drops everything past `last_day`, rewrites the MANIFEST
  // durably, then appends continue at `last_day + 1`.
  static std::unique_ptr<CaptureTapeWriter> Resume(const std::string& dir,
                                                   int last_day,
                                                   RecoverySweep* sweep,
                                                   std::string* error);

  // attack::CaptureSink (Append days non-decreasing, canonical order).
  void Append(int day, const attack::CaptureRecord& record) override;
  void EndDay(int day) override;
  void Finish() override;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::uint64_t RowsWritten() const { return rows_written_; }
  std::uint64_t BytesWritten() const { return bytes_written_; }
  std::uint32_t ManifestCrc() const { return manifest_crc_; }

 private:
  explicit CaptureTapeWriter(std::string dir);

  void FlushDay();
  bool WriteManifest();
  void Latch(const std::string& message);

  std::string dir_;
  int current_day_ = -1;  // day being buffered; -1 = none yet
  std::vector<attack::CaptureRecord> pending_;
  std::vector<SegmentInfo> segments_;
  std::uint64_t rows_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint32_t manifest_crc_ = 0;
  bool ok_ = true;
  std::string error_;
};

class CaptureTape {
 public:
  static std::optional<CaptureTape> Open(const std::string& dir,
                                         std::string* error);

  const std::string& Directory() const { return dir_; }
  const std::vector<SegmentInfo>& Segments() const { return segments_; }
  int DayCount() const;
  std::uint64_t TotalRows() const;

  // Streams every record with day in [day_min, day_max] in canonical
  // order; segments outside the range are never read from disk. False +
  // `error` on corruption (stops at the first bad segment).
  bool ForEachCapture(
      int day_min, int day_max,
      const std::function<void(int day, const attack::CaptureRecord&)>& visit,
      std::string* error) const;

 private:
  CaptureTape() = default;

  std::string dir_;
  std::vector<SegmentInfo> segments_;
};

}  // namespace tlsharm::warehouse
