#include "warehouse/import.h"

#include <istream>
#include <ostream>

namespace tlsharm::warehouse {

bool TextToWarehouse(std::istream& text, const std::string& dir,
                     ImportStats* stats, std::string* error) {
  auto writer = WarehouseWriter::Create(dir, error);
  if (writer == nullptr) return false;

  scanner::ObservationReader reader(text);
  while (auto stored = reader.Next()) {
    writer->Append(stored->day, stored->observation);
    if (!writer->ok()) {
      if (error != nullptr) *error = writer->error();
      return false;
    }
  }
  writer->Finish();
  if (!writer->ok()) {
    if (error != nullptr) *error = writer->error();
    return false;
  }
  if (stats != nullptr) {
    stats->rows = writer->RowsWritten();
    stats->corrupt_lines = reader.Corrupt();
    stats->warehouse_bytes = writer->BytesWritten();
    std::string open_error;
    if (const auto wh = Warehouse::Open(dir, &open_error)) {
      stats->days = wh->ObservationSegments().size();
    }
  }
  return true;
}

bool WarehouseToText(const Warehouse& warehouse, std::ostream& text,
                     ImportStats* stats, std::string* error) {
  scanner::ObservationWriter writer(text);
  if (!warehouse.ForEachObservation(
          0, 0x7fffffff,
          [&](const scanner::StoredObservation& stored) {
            writer.Write(stored.day, stored.observation);
          },
          error)) {
    return false;
  }
  if (!text) {
    if (error != nullptr) *error = "text output stream failed";
    return false;
  }
  if (stats != nullptr) {
    stats->rows = writer.Written();
    stats->days = warehouse.ObservationSegments().size();
    stats->warehouse_bytes = warehouse.TotalBytes();
  }
  return true;
}

}  // namespace tlsharm::warehouse
