// Shared low-level helpers of the segment codecs (segment.cc, capture.cc):
// the envelope (magic | version | kind ... CRC-32 trailer) and the
// per-column framing (id | varint length | CRC-32 | payload). Kept header-
// only so every segment kind validates bytes in exactly the same order:
// size, magic, version, segment CRC, then structure — a flipped bit always
// surfaces as a checksum mismatch before any length field is trusted.
#pragma once

#include <cstring>
#include <string>

#include "util/bytes.h"
#include "util/crc32.h"
#include "warehouse/format.h"

namespace tlsharm::warehouse::codec {

inline void Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// Appends one column: id, payload length, payload CRC, payload.
inline void EmitColumn(Bytes& out, std::uint8_t id, const Bytes& payload) {
  out.push_back(id);
  AppendVarint(out, payload.size());
  AppendUint(out, Crc32(payload), 4);
  Append(out, payload);
}

inline void EmitPrefix(Bytes& out, std::uint8_t kind) {
  for (const char c : kSegmentMagic) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  out.push_back(kFormatVersion);
  out.push_back(kind);
}

inline void EmitTrailer(Bytes& out) { AppendUint(out, Crc32(out), 4); }

// Validates size, magic, version and the trailing segment CRC; on success
// returns the body (everything between the kind byte and the trailer) and
// the kind byte. This runs BEFORE any structural parsing, so a flipped bit
// anywhere in the file surfaces as a checksum mismatch, not as whatever
// the corrupted length fields would make a parser do.
inline bool CheckEnvelope(ByteView segment, std::uint8_t* kind,
                          ByteView* body, std::string* error) {
  constexpr std::size_t kMinSize = 4 + 1 + 1 + 4;  // magic+version+kind+crc
  if (segment.size() < kMinSize) {
    Fail(error, "segment truncated (" + std::to_string(segment.size()) +
                    " bytes)");
    return false;
  }
  if (std::memcmp(segment.data(), kSegmentMagic, 4) != 0) {
    Fail(error, "bad segment magic");
    return false;
  }
  if (segment[4] != kFormatVersion) {
    Fail(error, "unsupported warehouse format version " +
                    std::to_string(segment[4]) + " (expected " +
                    std::to_string(kFormatVersion) + ")");
    return false;
  }
  const std::size_t body_end = segment.size() - 4;
  const std::uint32_t stored =
      static_cast<std::uint32_t>(ReadUint(segment, body_end, 4));
  if (Crc32(segment.subspan(0, body_end)) != stored) {
    Fail(error, "segment checksum mismatch");
    return false;
  }
  *kind = segment[5];
  *body = segment.subspan(6, body_end - 6);
  return true;
}

// Reads one column header + payload out of `body` at `off`, enforcing the
// expected id and the per-column CRC.
inline bool ReadColumn(ByteView body, std::size_t& off,
                       std::uint8_t expected_id, ByteView* payload,
                       std::string* error) {
  const std::string label = "column " + std::to_string(expected_id);
  if (off >= body.size()) {
    Fail(error, label + " missing");
    return false;
  }
  if (body[off] != expected_id) {
    Fail(error, label + " has unexpected id " + std::to_string(body[off]));
    return false;
  }
  ++off;
  std::uint64_t length = 0;
  if (!ReadVarint(body, off, length) || off + 4 > body.size() ||
      length > body.size() - off - 4) {
    Fail(error, label + " length out of bounds");
    return false;
  }
  const std::uint32_t stored =
      static_cast<std::uint32_t>(ReadUint(body, off, 4));
  off += 4;
  *payload = body.subspan(off, static_cast<std::size_t>(length));
  off += static_cast<std::size_t>(length);
  if (Crc32(*payload) != stored) {
    Fail(error, label + " checksum mismatch");
    return false;
  }
  return true;
}

inline bool ColumnConsumed(ByteView payload, std::size_t off, std::uint8_t id,
                           std::string* error) {
  if (off != payload.size()) {
    Fail(error, "column " + std::to_string(id) + " has trailing bytes");
    return false;
  }
  return true;
}

}  // namespace tlsharm::warehouse::codec
