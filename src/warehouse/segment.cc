#include "warehouse/segment.h"

#include <algorithm>
#include <functional>

#include "scanner/store.h"
#include "util/crc32.h"
#include "warehouse/codec_util.h"
#include "warehouse/format.h"

namespace tlsharm::warehouse {
namespace {

using scanner::HandshakeObservation;

// The envelope and column framing helpers are shared with the capture
// codec (codec_util.h).
using codec::CheckEnvelope;
using codec::ColumnConsumed;
using codec::EmitColumn;
using codec::EmitPrefix;
using codec::EmitTrailer;
using codec::Fail;
using codec::ReadColumn;

}  // namespace

Bytes EncodeObservationSegment(int day,
                               const std::vector<HandshakeObservation>& rows) {
  Bytes out;
  EmitPrefix(out, kKindObservations);
  AppendVarint(out, static_cast<std::uint64_t>(day));
  AppendVarint(out, rows.size());
  AppendVarint(out, kObsColumnCount);

  // Domain dictionary: the sorted unique domain ids, delta-encoded (first
  // absolute, then gaps); each row then stores its dictionary index. Daily
  // scans hit the same domains twice or more (main + DHE + requeue), so
  // interning pays even before the delta encoding does.
  std::vector<scanner::DomainIndex> dict;
  dict.reserve(rows.size());
  for (const auto& row : rows) dict.push_back(row.domain);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const auto dict_index = [&dict](scanner::DomainIndex domain) {
    return static_cast<std::uint64_t>(
        std::lower_bound(dict.begin(), dict.end(), domain) - dict.begin());
  };

  Bytes col;
  col.reserve(rows.size() * 2);

  AppendVarint(col, dict.size());
  scanner::DomainIndex prev = 0;
  for (std::size_t i = 0; i < dict.size(); ++i) {
    AppendVarint(col, i == 0 ? dict[i] : dict[i] - prev);
    prev = dict[i];
  }
  for (const auto& row : rows) AppendVarint(col, dict_index(row.domain));
  EmitColumn(out, kColDomain, col);

  col.clear();
  for (const auto& row : rows) {
    col.push_back(
        static_cast<std::uint8_t>(scanner::PackObservationFlags(row)));
  }
  EmitColumn(out, kColFlags, col);

  col.clear();
  for (const auto& row : rows) {
    col.push_back(static_cast<std::uint8_t>(row.failure));
  }
  EmitColumn(out, kColFailure, col);

  col.clear();
  for (const auto& row : rows) {
    AppendVarint(col, static_cast<std::uint16_t>(row.suite));
  }
  EmitColumn(out, kColSuite, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.kex_group);
  EmitColumn(out, kColKexGroup, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.kex_value);
  EmitColumn(out, kColKexValue, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.session_id);
  EmitColumn(out, kColSessionId, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.stek_id);
  EmitColumn(out, kColStekId, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.ticket_lifetime_hint);
  EmitColumn(out, kColHint, col);

  EmitTrailer(out);
  return out;
}

bool DecodeObservationSegment(ByteView segment, int* day,
                              std::vector<HandshakeObservation>* rows,
                              std::string* error) {
  std::uint8_t kind = 0;
  ByteView body;
  if (!CheckEnvelope(segment, &kind, &body, error)) return false;
  if (kind != kKindObservations) {
    Fail(error, "not an observation segment (kind " + std::to_string(kind) +
                    ")");
    return false;
  }

  std::size_t off = 0;
  std::uint64_t day64 = 0, row_count = 0, column_count = 0;
  if (!ReadVarint(body, off, day64) || !ReadVarint(body, off, row_count) ||
      !ReadVarint(body, off, column_count)) {
    Fail(error, "segment header truncated");
    return false;
  }
  if (day64 > 0xffff) {
    Fail(error, "implausible day " + std::to_string(day64));
    return false;
  }
  if (column_count != kObsColumnCount) {
    Fail(error, "expected " + std::to_string(kObsColumnCount) +
                    " columns, found " + std::to_string(column_count));
    return false;
  }
  // Each row occupies at least one byte in the flags column alone.
  if (row_count > body.size()) {
    Fail(error, "row count exceeds segment size");
    return false;
  }
  const std::size_t n = static_cast<std::size_t>(row_count);

  ByteView cols[kObsColumnCount];
  for (int c = 0; c < kObsColumnCount; ++c) {
    if (!ReadColumn(body, off, static_cast<std::uint8_t>(c), &cols[c],
                    error)) {
      return false;
    }
  }
  if (off != body.size()) {
    Fail(error, "trailing bytes after last column");
    return false;
  }

  rows->assign(n, HandshakeObservation{});

  // Domain dictionary + per-row indices.
  {
    ByteView col = cols[kColDomain];
    std::size_t pos = 0;
    std::uint64_t dict_count = 0;
    if (!ReadVarint(col, pos, dict_count) || dict_count > col.size()) {
      Fail(error, "domain dictionary truncated");
      return false;
    }
    std::vector<scanner::DomainIndex> dict;
    dict.reserve(static_cast<std::size_t>(dict_count));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < dict_count; ++i) {
      std::uint64_t value = 0;
      if (!ReadVarint(col, pos, value)) {
        Fail(error, "domain dictionary truncated");
        return false;
      }
      const std::uint64_t domain = i == 0 ? value : prev + value;
      if (domain > 0xffffffffull || (i != 0 && value == 0)) {
        Fail(error, "domain dictionary not strictly increasing");
        return false;
      }
      dict.push_back(static_cast<scanner::DomainIndex>(domain));
      prev = domain;
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t index = 0;
      if (!ReadVarint(col, pos, index) || index >= dict.size()) {
        Fail(error, "domain index out of dictionary range");
        return false;
      }
      (*rows)[i].domain = dict[static_cast<std::size_t>(index)];
    }
    if (!ColumnConsumed(col, pos, kColDomain, error)) return false;
  }

  if (cols[kColFlags].size() != n) {
    Fail(error, "flags column row mismatch");
    return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t flags = cols[kColFlags][i];
    if (flags > scanner::kObservationFlagsMax) {
      Fail(error, "flags value out of range");
      return false;
    }
    scanner::UnpackObservationFlags(flags, (*rows)[i]);
  }

  if (cols[kColFailure].size() != n) {
    Fail(error, "failure column row mismatch");
    return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t failure = cols[kColFailure][i];
    if (failure >= scanner::kProbeFailureClasses) {
      Fail(error, "failure class out of range");
      return false;
    }
    (*rows)[i].failure = static_cast<scanner::ProbeFailure>(failure);
  }

  // The varint-coded numeric columns.
  const auto read_u64_column =
      [&](ObsColumn id, std::uint64_t max,
          const std::function<void(HandshakeObservation&, std::uint64_t)>&
              assign) -> bool {
    ByteView col = cols[id];
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t value = 0;
      if (!ReadVarint(col, pos, value) || value > max) {
        Fail(error, "column " + std::to_string(id) + " value invalid");
        return false;
      }
      assign((*rows)[i], value);
    }
    return ColumnConsumed(col, pos, id, error);
  };

  if (!read_u64_column(kColSuite, 0xffff,
                       [](HandshakeObservation& o, std::uint64_t v) {
                         o.suite = static_cast<tls::CipherSuite>(v);
                       }) ||
      !read_u64_column(kColKexGroup, 0xffff,
                       [](HandshakeObservation& o, std::uint64_t v) {
                         o.kex_group = static_cast<std::uint16_t>(v);
                       }) ||
      !read_u64_column(kColKexValue, ~0ull,
                       [](HandshakeObservation& o, std::uint64_t v) {
                         o.kex_value = v;
                       }) ||
      !read_u64_column(kColSessionId, ~0ull,
                       [](HandshakeObservation& o, std::uint64_t v) {
                         o.session_id = v;
                       }) ||
      !read_u64_column(kColStekId, ~0ull,
                       [](HandshakeObservation& o, std::uint64_t v) {
                         o.stek_id = v;
                       }) ||
      !read_u64_column(kColHint, 0xffffffffull,
                       [](HandshakeObservation& o, std::uint64_t v) {
                         o.ticket_lifetime_hint =
                             static_cast<std::uint32_t>(v);
                       })) {
    return false;
  }

  *day = static_cast<int>(day64);
  return true;
}

Bytes EncodeLifetimeSegment(std::uint8_t experiment,
                            const scanner::ResumptionLifetimeResult& result) {
  Bytes out;
  EmitPrefix(out, kKindLifetime);
  AppendVarint(out, experiment);
  AppendVarint(out, result.lifetimes.size());
  AppendVarint(out, result.trusted_https);
  AppendVarint(out, result.indicated);
  AppendVarint(out, result.resumed_1s);
  AppendVarint(out, kLifetimeColumnCount);

  Bytes col;
  // Domains ascend strictly (the experiment walks ids in order, at most
  // one measurement each), so deltas stay small.
  scanner::DomainIndex prev = 0;
  for (std::size_t i = 0; i < result.lifetimes.size(); ++i) {
    const scanner::DomainIndex domain = result.lifetimes[i].domain;
    AppendVarint(col, i == 0 ? domain : domain - prev);
    prev = domain;
  }
  EmitColumn(out, kColLifetimeDomain, col);

  col.clear();
  for (const auto& m : result.lifetimes) {
    AppendVarint(col, static_cast<std::uint64_t>(m.max_delay));
  }
  EmitColumn(out, kColLifetimeDelay, col);

  col.clear();
  for (const auto& m : result.lifetimes) AppendVarint(col, m.lifetime_hint);
  EmitColumn(out, kColLifetimeHint, col);

  EmitTrailer(out);
  return out;
}

bool DecodeLifetimeSegment(ByteView segment, std::uint8_t* experiment,
                           scanner::ResumptionLifetimeResult* result,
                           std::string* error) {
  std::uint8_t kind = 0;
  ByteView body;
  if (!CheckEnvelope(segment, &kind, &body, error)) return false;
  if (kind != kKindLifetime) {
    Fail(error,
         "not a lifetime segment (kind " + std::to_string(kind) + ")");
    return false;
  }

  std::size_t off = 0;
  std::uint64_t exp = 0, row_count = 0, trusted = 0, indicated = 0,
                resumed = 0, column_count = 0;
  if (!ReadVarint(body, off, exp) || !ReadVarint(body, off, row_count) ||
      !ReadVarint(body, off, trusted) || !ReadVarint(body, off, indicated) ||
      !ReadVarint(body, off, resumed) ||
      !ReadVarint(body, off, column_count)) {
    Fail(error, "segment header truncated");
    return false;
  }
  if (exp > kExperimentTicket) {
    Fail(error, "unknown experiment id " + std::to_string(exp));
    return false;
  }
  if (column_count != kLifetimeColumnCount) {
    Fail(error, "expected " + std::to_string(kLifetimeColumnCount) +
                    " columns, found " + std::to_string(column_count));
    return false;
  }
  if (row_count > body.size()) {
    Fail(error, "row count exceeds segment size");
    return false;
  }
  const std::size_t n = static_cast<std::size_t>(row_count);

  ByteView cols[kLifetimeColumnCount];
  for (int c = 0; c < kLifetimeColumnCount; ++c) {
    if (!ReadColumn(body, off, static_cast<std::uint8_t>(c), &cols[c],
                    error)) {
      return false;
    }
  }
  if (off != body.size()) {
    Fail(error, "trailing bytes after last column");
    return false;
  }

  result->trusted_https = static_cast<std::size_t>(trusted);
  result->indicated = static_cast<std::size_t>(indicated);
  result->resumed_1s = static_cast<std::size_t>(resumed);
  result->lifetimes.assign(n, scanner::LifetimeMeasurement{});

  {
    ByteView col = cols[kColLifetimeDomain];
    std::size_t pos = 0;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t value = 0;
      if (!ReadVarint(col, pos, value)) {
        Fail(error, "lifetime domain column truncated");
        return false;
      }
      const std::uint64_t domain = i == 0 ? value : prev + value;
      if (domain > 0xffffffffull || (i != 0 && value == 0)) {
        Fail(error, "lifetime domains not strictly increasing");
        return false;
      }
      result->lifetimes[i].domain = static_cast<scanner::DomainIndex>(domain);
      prev = domain;
    }
    if (!ColumnConsumed(col, pos, kColLifetimeDomain, error)) return false;
  }
  {
    ByteView col = cols[kColLifetimeDelay];
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t value = 0;
      if (!ReadVarint(col, pos, value) || value > 0x7fffffffffffffffull) {
        Fail(error, "lifetime delay column invalid");
        return false;
      }
      result->lifetimes[i].max_delay = static_cast<SimTime>(value);
    }
    if (!ColumnConsumed(col, pos, kColLifetimeDelay, error)) return false;
  }
  {
    ByteView col = cols[kColLifetimeHint];
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t value = 0;
      if (!ReadVarint(col, pos, value) || value > 0xffffffffull) {
        Fail(error, "lifetime hint column invalid");
        return false;
      }
      result->lifetimes[i].lifetime_hint = static_cast<std::uint32_t>(value);
    }
    if (!ColumnConsumed(col, pos, kColLifetimeHint, error)) return false;
  }

  *experiment = static_cast<std::uint8_t>(exp);
  return true;
}

bool PeekSegmentKind(ByteView segment, std::uint8_t* kind,
                     std::string* error) {
  ByteView body;
  return CheckEnvelope(segment, kind, &body, error);
}

}  // namespace tlsharm::warehouse
