#include "warehouse/query.h"

#include <algorithm>
#include <map>

namespace tlsharm::warehouse {

std::optional<SecretKind> ParseSecretKind(const std::string& name) {
  if (name == "stek") return SecretKind::kStek;
  if (name == "kex") return SecretKind::kKex;
  if (name == "session_id") return SecretKind::kSessionId;
  return std::nullopt;
}

const char* ToString(SecretKind kind) {
  switch (kind) {
    case SecretKind::kStek: return "stek";
    case SecretKind::kKex: return "kex";
    case SecretKind::kSessionId: return "session_id";
  }
  return "?";
}

std::optional<GroupKey> ParseGroupKey(const std::string& name) {
  if (name == "day") return GroupKey::kDay;
  if (name == "failure") return GroupKey::kFailure;
  if (name == "suite") return GroupKey::kSuite;
  if (name == "domain") return GroupKey::kDomain;
  if (name == "kex_group") return GroupKey::kKexGroup;
  return std::nullopt;
}

const char* ToString(GroupKey key) {
  switch (key) {
    case GroupKey::kDay: return "day";
    case GroupKey::kFailure: return "failure";
    case GroupKey::kSuite: return "suite";
    case GroupKey::kDomain: return "domain";
    case GroupKey::kKexGroup: return "kex_group";
  }
  return "?";
}

bool ObsFilter::Matches(const scanner::StoredObservation& stored) const {
  if (stored.day < day_min || stored.day > day_max) return false;
  const scanner::HandshakeObservation& obs = stored.observation;
  if (domain.has_value() && obs.domain != *domain) return false;
  if (failure.has_value() && obs.failure != *failure) return false;
  if (has_secret.has_value()) {
    scanner::SecretId secret = scanner::kNoSecret;
    switch (*has_secret) {
      case SecretKind::kStek: secret = obs.stek_id; break;
      case SecretKind::kKex: secret = obs.kex_value; break;
      case SecretKind::kSessionId: secret = obs.session_id; break;
    }
    if (secret == scanner::kNoSecret) return false;
  }
  return true;
}

namespace {

std::uint64_t KeyOf(GroupKey key, const scanner::StoredObservation& stored) {
  switch (key) {
    case GroupKey::kDay:
      return static_cast<std::uint64_t>(stored.day);
    case GroupKey::kFailure:
      return static_cast<std::uint64_t>(stored.observation.failure);
    case GroupKey::kSuite:
      return static_cast<std::uint64_t>(stored.observation.suite);
    case GroupKey::kDomain:
      return stored.observation.domain;
    case GroupKey::kKexGroup:
      return stored.observation.kex_group;
  }
  return 0;
}

}  // namespace

bool CountObservations(const Warehouse& warehouse, const ObsFilter& filter,
                       std::uint64_t* count, std::string* error) {
  std::uint64_t matched = 0;
  if (!warehouse.ForEachObservation(
          filter.day_min, filter.day_max,
          [&](const scanner::StoredObservation& stored) {
            if (filter.Matches(stored)) ++matched;
          },
          error)) {
    return false;
  }
  *count = matched;
  return true;
}

bool GroupCountObservations(const Warehouse& warehouse,
                            const ObsFilter& filter, GroupKey key,
                            std::vector<GroupCount>* out,
                            std::string* error) {
  std::map<std::uint64_t, std::uint64_t> groups;  // ordered => sorted output
  if (!warehouse.ForEachObservation(
          filter.day_min, filter.day_max,
          [&](const scanner::StoredObservation& stored) {
            if (filter.Matches(stored)) ++groups[KeyOf(key, stored)];
          },
          error)) {
    return false;
  }
  out->clear();
  out->reserve(groups.size());
  for (const auto& [value, count] : groups) {
    out->push_back({value, count});
  }
  return true;
}

}  // namespace tlsharm::warehouse
