// Legacy text store <-> warehouse conversion. Both directions stream:
// text import feeds ObservationReader lines straight into a
// WarehouseWriter (one segment per day, auto-flushed on day change), and
// export replays the warehouse through the same ObservationWriter the
// scanner uses — so for a canonical store, text -> warehouse -> text is
// byte-identical.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "warehouse/warehouse.h"

namespace tlsharm::warehouse {

struct ImportStats {
  std::uint64_t rows = 0;
  std::uint64_t days = 0;           // observation segments written
  std::uint64_t corrupt_lines = 0;  // malformed text lines skipped
  std::uint64_t text_bytes = 0;     // bytes consumed / produced
  std::uint64_t warehouse_bytes = 0;
};

// Converts a text store (one observation per line, store.h format) into a
// warehouse at `dir`, replacing its previous contents. Text days must be
// non-decreasing (they are, for any store a scan engine wrote). False +
// `error` on I/O failure or day-order violations.
bool TextToWarehouse(std::istream& text, const std::string& dir,
                     ImportStats* stats, std::string* error);

// Streams every warehoused observation back out as text-store lines.
bool WarehouseToText(const Warehouse& warehouse, std::ostream& text,
                     ImportStats* stats, std::string* error);

}  // namespace tlsharm::warehouse
