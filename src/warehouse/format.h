// On-disk constants of the columnar observation warehouse.
//
// A warehouse is a directory:
//
//   MANIFEST             text index: format version + one line per segment
//                        (kind, day/experiment, file name, rows, bytes,
//                        whole-file CRC-32)
//   obs-<day>.seg        one columnar segment per scanned day
//   exp-<kind>.seg       one columnar table per recorded lifetime
//                        experiment ("session_id", "ticket")
//   ckpt-<day>.bin       optional incremental-fold checkpoints (fold.h)
//
// Segment layout (all integers varint unless noted; see util/bytes.h):
//
//   magic "TLWH" | version u8 | kind u8
//   kind-specific header varints
//   column_count
//   per column: id u8 | payload_length | payload CRC-32 (4B BE) | payload
//   segment CRC-32 (4B BE) over every preceding byte
//
// Observation segments (kind 0) carry header {day, rows} and nine columns:
// the domain column is dictionary-interned (sorted unique domain ids,
// delta-varint encoded, then one dictionary index per row), flags and
// failure-class are one byte per row, and the remaining numeric columns
// are plain varints. Lifetime segments (kind 1) carry header {experiment,
// rows, trusted_https, indicated, resumed_1s} and three columns with the
// domain column delta-encoded (ascending by construction).
//
// Decoders verify, in order: size, magic, version, segment CRC, then
// structure — so any bit flip is caught by a checksum before field
// validation, and a version bump is rejected explicitly. Every varint read
// is bounds-checked; no decoder ever trusts a length field.
#pragma once

#include <cstdint>

namespace tlsharm::warehouse {

inline constexpr char kSegmentMagic[4] = {'T', 'L', 'W', 'H'};
inline constexpr std::uint8_t kFormatVersion = 1;

inline constexpr std::uint8_t kKindObservations = 0;
inline constexpr std::uint8_t kKindLifetime = 1;
inline constexpr std::uint8_t kKindCapture = 2;

// Observation-segment column ids, in file order.
enum ObsColumn : std::uint8_t {
  kColDomain = 0,
  kColFlags = 1,
  kColFailure = 2,
  kColSuite = 3,
  kColKexGroup = 4,
  kColKexValue = 5,
  kColSessionId = 6,
  kColStekId = 7,
  kColHint = 8,
};
inline constexpr int kObsColumnCount = 9;

// Lifetime-segment column ids, in file order.
enum LifetimeColumn : std::uint8_t {
  kColLifetimeDomain = 0,
  kColLifetimeDelay = 1,
  kColLifetimeHint = 2,
};
inline constexpr int kLifetimeColumnCount = 3;

// Capture-segment column ids, in file order (kind 2; capture.h). Carry
// header {day, rows}. The domain column is dictionary-interned like the
// observation segment's; the byte-string columns (randoms, session ID,
// ticket, kex values) are varint-length-prefixed per row; the traffic
// column packs five varints per row (wire bytes, record counts and bytes
// per direction).
enum CaptureColumn : std::uint8_t {
  kCapColDomain = 0,
  kCapColTime = 1,
  kCapColEndpoint = 2,
  kCapColFlags = 3,      // bit 0 valid, bit 1 abbreviated
  kCapColParseFail = 4,
  kCapColSuite = 5,
  kCapColKexGroup = 6,
  kCapColHint = 7,
  kCapColClientRandom = 8,
  kCapColServerRandom = 9,
  kCapColSessionId = 10,
  kCapColTicket = 11,
  kCapColServerKex = 12,
  kCapColClientKex = 13,
  kCapColTraffic = 14,
};
inline constexpr int kCaptureColumnCount = 15;

// Experiment ids for lifetime segments.
inline constexpr std::uint8_t kExperimentSessionId = 0;
inline constexpr std::uint8_t kExperimentTicket = 1;

inline constexpr char kManifestName[] = "MANIFEST";
inline constexpr char kManifestHeader[] = "tlsharm-warehouse 1";

// The capture tape (capture.h) is its own directory of capture segments
// ("capture-<day>.seg") with the same MANIFEST file name but a distinct
// header line, so a tape can never be mistaken for an observation
// warehouse (or vice versa).
inline constexpr char kCaptureManifestHeader[] = "tlsharm-capture-tape 1";

// Checkpoint files (ckpt-<day>.bin) are "TLWC" | version | payload |
// CRC-32 trailer; their codec lives with the shared aggregate state in
// scanner/aggregates.h so the engine, the fold, and the campaign resume
// path write identical bytes.

}  // namespace tlsharm::warehouse
