// Filtered counting and grouping over warehoused observations — the
// engine behind the `obsq` CLI. Filters compose conjunctively; group-by
// output is sorted by key so every report is byte-stable regardless of
// segment layout or standard library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "warehouse/warehouse.h"

namespace tlsharm::warehouse {

// Which secret-bearing field a `has_secret` filter inspects.
enum class SecretKind : std::uint8_t {
  kStek,       // stek_id       (ticket-issuing servers)
  kKex,        // kex_value     ((EC)DHE server value)
  kSessionId,  // session_id
};

std::optional<SecretKind> ParseSecretKind(const std::string& name);
const char* ToString(SecretKind kind);

// Conjunction of optional predicates; an unset field matches everything.
struct ObsFilter {
  int day_min = 0;
  int day_max = 0x7fffffff;
  std::optional<scanner::DomainIndex> domain;
  std::optional<scanner::ProbeFailure> failure;
  std::optional<SecretKind> has_secret;  // field != kNoSecret

  bool Matches(const scanner::StoredObservation& stored) const;
};

// Group-by dimensions. Keys are the raw numeric values; the CLI renders
// failure classes and suites symbolically.
enum class GroupKey : std::uint8_t {
  kDay,
  kFailure,
  kSuite,
  kDomain,
  kKexGroup,
};

std::optional<GroupKey> ParseGroupKey(const std::string& name);
const char* ToString(GroupKey key);

struct GroupCount {
  std::uint64_t key = 0;
  std::uint64_t count = 0;
};

// Counts observations matching `filter`. Day-range filters prune whole
// segments before any disk read. False + `error` on corruption.
bool CountObservations(const Warehouse& warehouse, const ObsFilter& filter,
                       std::uint64_t* count, std::string* error);

// Counts matching observations per `key` value, sorted by key ascending.
bool GroupCountObservations(const Warehouse& warehouse,
                            const ObsFilter& filter, GroupKey key,
                            std::vector<GroupCount>* out, std::string* error);

}  // namespace tlsharm::warehouse
