#include "warehouse/fold.h"

namespace tlsharm::warehouse {

bool FoldDailyScans(const Warehouse& warehouse, const simnet::Internet& net,
                    const FoldOptions& options,
                    scanner::DailyScanResult* out, std::string* error,
                    FoldStats* stats) {
  ScanFold fold;
  FoldStats local;
  const auto& segments = warehouse.ObservationSegments();
  local.days_total = static_cast<int>(segments.size());

  if (options.use_checkpoints) {
    // Newest checkpoint that loads wins; bad/missing ones mean refold, not
    // failure.
    for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
      ScanFold candidate;
      if (ReadCheckpoint(warehouse.Directory(), it->day, &candidate,
                         nullptr)) {
        fold = std::move(candidate);
        break;
      }
    }
  }
  local.resumed_from = fold.NextDay();

  for (const SegmentInfo& info : segments) {
    if (info.day < fold.NextDay()) continue;  // checkpoint covers it
    const bool streamed = warehouse.ForEachObservation(
        info.day, info.day,
        [&](const scanner::StoredObservation& stored) {
          fold.Fold(stored.day, stored.observation);
        },
        error);
    if (!streamed) return false;
    fold.CompleteDay(info.day);
    ++local.days_folded;
    local.rows_folded += info.rows;
    if (options.write_checkpoints &&
        !WriteCheckpoint(warehouse.Directory(), info.day, fold, error)) {
      return false;
    }
  }

  *out = fold.Finish(net);
  if (stats != nullptr) *stats = local;
  return true;
}

}  // namespace tlsharm::warehouse
