// Columnar segment codec for the observation warehouse (see format.h for
// the byte layout). Encoding is a pure function of the rows, so segments
// written from any thread count — or re-encoded from a text store — are
// byte-identical; decoding validates checksums before structure and never
// trusts a length field.
#pragma once

#include <string>
#include <vector>

#include "scanner/experiments.h"
#include "scanner/observation.h"
#include "util/bytes.h"

namespace tlsharm::warehouse {

// Encodes one day of observations (canonical scan order preserved).
Bytes EncodeObservationSegment(
    int day, const std::vector<scanner::HandshakeObservation>& rows);

// Decodes an observation segment. On success fills `day` and `rows` and
// returns true; on any corruption, truncation or version mismatch returns
// false with a diagnostic in `error` (never crashes on hostile input).
bool DecodeObservationSegment(ByteView segment, int* day,
                              std::vector<scanner::HandshakeObservation>* rows,
                              std::string* error);

// Encodes a resumption-lifetime experiment result (Figures 1 & 2).
// `experiment` is kExperimentSessionId or kExperimentTicket.
Bytes EncodeLifetimeSegment(std::uint8_t experiment,
                            const scanner::ResumptionLifetimeResult& result);

bool DecodeLifetimeSegment(ByteView segment, std::uint8_t* experiment,
                           scanner::ResumptionLifetimeResult* result,
                           std::string* error);

// The segment's kind byte (format.h) without a full decode; false (with
// `error`) if the prefix or the trailing segment CRC is invalid.
bool PeekSegmentKind(ByteView segment, std::uint8_t* kind,
                     std::string* error);

}  // namespace tlsharm::warehouse
