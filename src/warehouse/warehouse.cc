#include "warehouse/warehouse.h"

#include "obs/prof.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "warehouse/format.h"
#include "warehouse/segment.h"
#include "util/crc32.h"
#include "util/durable.h"

namespace tlsharm::warehouse {
namespace {
// Performance-plane sites (obs/prof.h): columnar encode vs durable write
// of each day's observation segment.
const obs::ProfSite kProfSegmentEncode("warehouse.segment.encode");
const obs::ProfSite kProfSegmentCommit("warehouse.segment.commit");
}  // namespace
namespace {

namespace fs = std::filesystem;

std::string ObsFileName(int day) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "obs-%05d.seg", day);
  return buf;
}

std::string ExpFileName(const std::string& kind) {
  return "exp-" + kind + ".seg";
}

bool HasPrefixSuffix(const std::string& name, std::string_view prefix,
                     std::string_view suffix) {
  return name.size() >= prefix.size() + suffix.size() &&
         name.compare(0, prefix.size(), prefix) == 0 &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

// True for files the warehouse owns: segments, checkpoints, the manifest.
bool IsWarehouseFile(const std::string& name) {
  return name == kManifestName || HasPrefixSuffix(name, "obs-", ".seg") ||
         HasPrefixSuffix(name, "exp-", ".seg") ||
         HasPrefixSuffix(name, "ckpt-", ".bin");
}

// An interrupted atomic commit (util/durable.h) leaves `<owned file>.tmp`.
bool IsOrphanedTmp(const std::string& name) {
  constexpr std::string_view kTmp = ".tmp";
  if (name.size() <= kTmp.size() ||
      name.compare(name.size() - kTmp.size(), kTmp.size(), kTmp) != 0) {
    return false;
  }
  return IsWarehouseFile(name.substr(0, name.size() - kTmp.size()));
}

bool ParseU64(std::string_view text, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseHex32(std::string_view text, std::uint32_t* out) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      text.data(), text.data() + text.size(), value, /*base=*/16);
  if (ec != std::errc() || ptr != text.data() + text.size() ||
      value > 0xffffffffull) {
    return false;
  }
  *out = static_cast<std::uint32_t>(value);
  return true;
}

// Day index of an "obs-<day>.seg" / "ckpt-<day>.bin" name, or -1.
int ParseDayFile(const std::string& name, std::string_view prefix,
                 std::string_view suffix) {
  if (!HasPrefixSuffix(name, prefix, suffix)) return -1;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return -1;
  std::uint64_t day = 0;
  if (!ParseU64(digits, &day) || day > 0xffff) return -1;
  return static_cast<int>(day);
}

std::string RenderManifestLine(const SegmentInfo& info, bool experiment) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", info.crc);
  std::ostringstream line;
  if (experiment) {
    line << "exp kind=" << info.kind;
  } else {
    line << "obs day=" << info.day;
  }
  line << " file=" << info.file << " rows=" << info.rows
       << " bytes=" << info.bytes << " crc=" << crc;
  return line.str();
}

}  // namespace

const char* ExperimentKindName(std::uint8_t experiment) {
  switch (experiment) {
    case kExperimentSessionId: return "session_id";
    case kExperimentTicket: return "ticket";
  }
  return "?";
}

std::optional<std::uint8_t> ExperimentKindId(const std::string& kind) {
  if (kind == "session_id") return kExperimentSessionId;
  if (kind == "ticket") return kExperimentTicket;
  return std::nullopt;
}

bool ReadWarehouseFile(const std::string& path, Bytes* out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  const std::string data = content.str();
  out->assign(data.begin(), data.end());
  return true;
}

// --- WarehouseWriter --------------------------------------------------------

WarehouseWriter::WarehouseWriter(std::string dir) : dir_(std::move(dir)) {}

WarehouseWriter::~WarehouseWriter() = default;

std::unique_ptr<WarehouseWriter> WarehouseWriter::Create(
    const std::string& dir, std::string* error, RecoverySweep* sweep) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + dir + ": " + ec.message();
    }
    return nullptr;
  }
  // Reset: a recording must never mix with a previous study's segments —
  // nor with a crashed commit's orphaned temp files.
  RecoverySweep swept;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (IsOrphanedTmp(name)) {
      fs::remove(entry.path(), ec);
      ++swept.tmp_files_removed;
    } else if (IsWarehouseFile(name)) {
      fs::remove(entry.path(), ec);
    }
  }
  if (sweep != nullptr) *sweep = swept;
  return std::unique_ptr<WarehouseWriter>(new WarehouseWriter(dir));
}

std::unique_ptr<WarehouseWriter> WarehouseWriter::Resume(
    const std::string& dir, int last_day, RecoverySweep* sweep,
    std::string* error) {
  std::optional<Warehouse> existing = Warehouse::Open(dir, error);
  if (!existing.has_value()) return nullptr;

  // Verify the committed prefix BEFORE deleting anything: a resume that
  // cannot trust the surviving segments must fail loudly, not truncate.
  std::unique_ptr<WarehouseWriter> writer(new WarehouseWriter(dir));
  for (const SegmentInfo& info : existing->ObservationSegments()) {
    if (info.day > last_day) continue;
    const std::string path = dir + "/" + info.file;
    Bytes bytes;
    if (!ReadWarehouseFile(path, &bytes, error)) return nullptr;
    if (bytes.size() != info.bytes || Crc32(bytes) != info.crc) {
      if (error != nullptr) {
        *error = path + ": committed segment does not match manifest";
      }
      return nullptr;
    }
    writer->obs_segments_.push_back(info);
    writer->rows_written_ += info.rows;
    writer->bytes_written_ += info.bytes;
  }

  RecoverySweep swept;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (IsOrphanedTmp(name)) {
      fs::remove(entry.path(), ec);
      ++swept.tmp_files_removed;
      continue;
    }
    const int obs_day = ParseDayFile(name, "obs-", ".seg");
    if (obs_day > last_day ||
        (obs_day < 0 && HasPrefixSuffix(name, "exp-", ".seg"))) {
      // A partially recorded day the journal never committed, or an
      // experiment table (rewritten when the resumed study finishes).
      fs::remove(entry.path(), ec);
      ++swept.stale_segments_removed;
      continue;
    }
    const int ckpt_day = ParseDayFile(name, "ckpt-", ".bin");
    if (ckpt_day > last_day) {
      fs::remove(entry.path(), ec);
      ++swept.stale_checkpoints_removed;
    }
  }
  if (sweep != nullptr) *sweep = swept;

  // Re-index exactly the committed prefix, durably.
  if (!writer->WriteManifest()) {
    if (error != nullptr) *error = writer->error();
    return nullptr;
  }
  return writer;
}

void WarehouseWriter::Latch(const std::string& message) {
  if (!ok_) return;
  ok_ = false;
  error_ = message;
}

void WarehouseWriter::Append(int day,
                             const scanner::HandshakeObservation& obs) {
  if (!ok_) return;
  if (day < 0) {
    Latch("negative day appended");
    return;
  }
  if (current_day_ == -1) {
    if (!obs_segments_.empty() && day <= obs_segments_.back().day) {
      Latch("append day " + std::to_string(day) + " not after day " +
            std::to_string(obs_segments_.back().day));
      return;
    }
    current_day_ = day;
  } else if (day != current_day_) {
    if (day < current_day_) {
      Latch("append days must be non-decreasing");
      return;
    }
    FlushDay();
    if (!ok_) return;
    current_day_ = day;
  }
  pending_.push_back(obs);
}

void WarehouseWriter::EndDay(int day) {
  if (!ok_) return;
  if (current_day_ == -1) {
    // A scanned day with zero observations still gets its (empty) segment,
    // so the day axis records "scanned, saw nothing".
    if (!obs_segments_.empty() && day <= obs_segments_.back().day) {
      Latch("EndDay " + std::to_string(day) + " out of order");
      return;
    }
    current_day_ = day;
  } else if (day != current_day_) {
    Latch("EndDay " + std::to_string(day) + " while day " +
          std::to_string(current_day_) + " is open");
    return;
  }
  FlushDay();
}

void WarehouseWriter::FlushDay() {
  if (!ok_ || current_day_ == -1) return;
  const Bytes segment = [&] {
    obs::ProfScope span(kProfSegmentEncode);
    return EncodeObservationSegment(current_day_, pending_);
  }();
  SegmentInfo info;
  info.day = current_day_;
  info.file = ObsFileName(current_day_);
  info.rows = pending_.size();
  obs::ProfScope commit_span(kProfSegmentCommit);
  if (WriteSegmentFile(info.file, segment, &info)) {
    obs_segments_.push_back(std::move(info));
    rows_written_ += pending_.size();
    WriteManifest();
  }
  pending_.clear();
  current_day_ = -1;
}

void WarehouseWriter::Finish() {
  if (!ok_) return;
  FlushDay();
  WriteManifest();
}

bool WarehouseWriter::WriteLifetime(
    const std::string& kind, const scanner::ResumptionLifetimeResult& result) {
  if (!ok_) return false;
  const auto id = ExperimentKindId(kind);
  if (!id.has_value()) {
    Latch("unknown experiment kind \"" + kind + "\"");
    return false;
  }
  const Bytes segment = EncodeLifetimeSegment(*id, result);
  SegmentInfo info;
  info.kind = kind;
  info.file = ExpFileName(kind);
  info.rows = result.lifetimes.size();
  if (!WriteSegmentFile(info.file, segment, &info)) return false;
  for (auto& existing : experiments_) {
    if (existing.kind == kind) {
      bytes_written_ -= existing.bytes;
      existing = info;
      return WriteManifest();
    }
  }
  experiments_.push_back(info);
  return WriteManifest();
}

bool WarehouseWriter::WriteSegmentFile(const std::string& name,
                                       const Bytes& bytes,
                                       SegmentInfo* info) {
  info->bytes = bytes.size();
  info->crc = Crc32(bytes);
  const std::string path = dir_ + "/" + name;
  std::string write_error;
  // Atomic temp+fsync+rename commit: a crash leaves either no segment or
  // the complete one, never a torn file the manifest could point at.
  if (!DurableWriteFile(path, bytes, &write_error)) {
    Latch("cannot write " + path + ": " + write_error);
    return false;
  }
  bytes_written_ += bytes.size();
  return true;
}

bool WarehouseWriter::WriteManifest() {
  if (!ok_) return false;
  std::ostringstream manifest;
  manifest << kManifestHeader << "\n";
  for (const SegmentInfo& info : obs_segments_) {
    manifest << RenderManifestLine(info, /*experiment=*/false) << "\n";
  }
  for (const SegmentInfo& info : experiments_) {
    manifest << RenderManifestLine(info, /*experiment=*/true) << "\n";
  }
  const std::string path = dir_ + "/" + kManifestName;
  const std::string text = manifest.str();
  const ByteView bytes(reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size());
  std::string write_error;
  if (!DurableWriteFile(path, bytes, &write_error)) {
    Latch("cannot write " + path + ": " + write_error);
    return false;
  }
  manifest_crc_ = Crc32(bytes);
  return true;
}

// --- Warehouse (reader) -----------------------------------------------------

std::optional<Warehouse> Warehouse::Open(const std::string& dir,
                                         std::string* error) {
  const std::string path = dir + "/" + kManifestName;
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "no warehouse manifest at " + path;
    return std::nullopt;
  }
  Warehouse wh;
  wh.dir_ = dir;
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    if (error != nullptr) {
      *error = path + ": unsupported manifest header \"" + line + "\"";
    }
    return std::nullopt;
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    std::istringstream tokens(line);
    std::string type;
    tokens >> type;
    if (type != "obs" && type != "exp") {
      if (error != nullptr) *error = where + ": unknown entry \"" + type + "\"";
      return std::nullopt;
    }
    SegmentInfo info;
    bool have_day = false, have_kind = false, have_file = false,
         have_rows = false, have_bytes = false, have_crc = false;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) *error = where + ": malformed token";
        return std::nullopt;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      std::uint64_t number = 0;
      if (key == "day" && ParseU64(value, &number) && number <= 0xffff) {
        info.day = static_cast<int>(number);
        have_day = true;
      } else if (key == "kind") {
        info.kind = value;
        have_kind = true;
      } else if (key == "file" && !value.empty() &&
                 value.find('/') == std::string::npos) {
        info.file = value;
        have_file = true;
      } else if (key == "rows" && ParseU64(value, &number)) {
        info.rows = number;
        have_rows = true;
      } else if (key == "bytes" && ParseU64(value, &number)) {
        info.bytes = number;
        have_bytes = true;
      } else if (key == "crc" && ParseHex32(value, &info.crc)) {
        have_crc = true;
      } else {
        if (error != nullptr) {
          *error = where + ": bad field \"" + token + "\"";
        }
        return std::nullopt;
      }
    }
    if (!have_file || !have_rows || !have_bytes || !have_crc) {
      if (error != nullptr) *error = where + ": missing fields";
      return std::nullopt;
    }
    if (type == "obs") {
      if (!have_day) {
        if (error != nullptr) *error = where + ": obs entry without day";
        return std::nullopt;
      }
      if (!wh.obs_segments_.empty() &&
          info.day <= wh.obs_segments_.back().day) {
        if (error != nullptr) {
          *error = where + ": observation days not strictly increasing";
        }
        return std::nullopt;
      }
      wh.obs_segments_.push_back(std::move(info));
    } else {
      if (!have_kind || !ExperimentKindId(info.kind).has_value()) {
        if (error != nullptr) *error = where + ": bad experiment kind";
        return std::nullopt;
      }
      wh.experiments_.push_back(std::move(info));
    }
  }
  return wh;
}

int Warehouse::DayCount() const {
  return obs_segments_.empty() ? 0 : obs_segments_.back().day + 1;
}

std::uint64_t Warehouse::TotalRows() const {
  std::uint64_t total = 0;
  for (const SegmentInfo& info : obs_segments_) total += info.rows;
  return total;
}

std::uint64_t Warehouse::TotalBytes() const {
  std::uint64_t total = 0;
  for (const SegmentInfo& info : obs_segments_) total += info.bytes;
  for (const SegmentInfo& info : experiments_) total += info.bytes;
  return total;
}

bool Warehouse::ForEachObservation(
    int day_min, int day_max,
    const std::function<void(const scanner::StoredObservation&)>& visit,
    std::string* error) const {
  for (const SegmentInfo& info : obs_segments_) {
    if (info.day < day_min || info.day > day_max) continue;  // pruned
    const std::string path = dir_ + "/" + info.file;
    Bytes bytes;
    if (!ReadWarehouseFile(path, &bytes, error)) return false;
    if (bytes.size() != info.bytes || Crc32(bytes) != info.crc) {
      if (error != nullptr) {
        *error = path + ": file does not match manifest (size/crc)";
      }
      return false;
    }
    int day = 0;
    std::vector<scanner::HandshakeObservation> rows;
    std::string decode_error;
    if (!DecodeObservationSegment(bytes, &day, &rows, &decode_error)) {
      if (error != nullptr) *error = path + ": " + decode_error;
      return false;
    }
    if (day != info.day || rows.size() != info.rows) {
      if (error != nullptr) {
        *error = path + ": decoded day/rows disagree with manifest";
      }
      return false;
    }
    scanner::StoredObservation stored;
    stored.day = day;
    for (const auto& row : rows) {
      stored.observation = row;
      visit(stored);
    }
  }
  return true;
}

bool Warehouse::HasExperiment(const std::string& kind) const {
  for (const SegmentInfo& info : experiments_) {
    if (info.kind == kind) return true;
  }
  return false;
}

bool Warehouse::ReadExperiment(const std::string& kind,
                               scanner::ResumptionLifetimeResult* result,
                               std::string* error) const {
  for (const SegmentInfo& info : experiments_) {
    if (info.kind != kind) continue;
    const std::string path = dir_ + "/" + info.file;
    Bytes bytes;
    if (!ReadWarehouseFile(path, &bytes, error)) return false;
    if (bytes.size() != info.bytes || Crc32(bytes) != info.crc) {
      if (error != nullptr) {
        *error = path + ": file does not match manifest (size/crc)";
      }
      return false;
    }
    std::uint8_t experiment = 0;
    std::string decode_error;
    if (!DecodeLifetimeSegment(bytes, &experiment, result, &decode_error)) {
      if (error != nullptr) *error = path + ": " + decode_error;
      return false;
    }
    if (ExperimentKindName(experiment) != kind ||
        result->lifetimes.size() != info.rows) {
      if (error != nullptr) {
        *error = path + ": decoded experiment disagrees with manifest";
      }
      return false;
    }
    return true;
  }
  if (error != nullptr) {
    *error = "warehouse has no \"" + kind + "\" experiment table";
  }
  return false;
}

}  // namespace tlsharm::warehouse
