#include "warehouse/capture.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/prof.h"
#include "util/crc32.h"
#include "util/durable.h"
#include "warehouse/codec_util.h"
#include "warehouse/format.h"

namespace tlsharm::warehouse {
namespace {

namespace fs = std::filesystem;

using attack::CaptureRecord;
using codec::CheckEnvelope;
using codec::ColumnConsumed;
using codec::EmitColumn;
using codec::EmitPrefix;
using codec::EmitTrailer;
using codec::Fail;
using codec::ReadColumn;

// Performance-plane sites: columnar encode vs durable write of each day's
// capture segment.
const obs::ProfSite kProfCaptureEncode("tape.segment.encode");
const obs::ProfSite kProfCaptureCommit("tape.segment.commit");

// Upper bounds the decoder enforces on variable-length fields; far above
// anything the simulation emits, far below anything that could be used to
// make a corrupted length field allocate unbounded memory.
constexpr std::uint64_t kMaxRandomSize = 64;
constexpr std::uint64_t kMaxSessionIdSize = 64;
constexpr std::uint64_t kMaxTicketSize = 1 << 16;
constexpr std::uint64_t kMaxKexSize = 1 << 12;

std::string CaptureFileName(int day) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "capture-%05d.seg", day);
  return buf;
}

bool HasPrefixSuffix(const std::string& name, std::string_view prefix,
                     std::string_view suffix) {
  return name.size() >= prefix.size() + suffix.size() &&
         name.compare(0, prefix.size(), prefix) == 0 &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool IsTapeFile(const std::string& name) {
  return name == kManifestName ||
         HasPrefixSuffix(name, "capture-", ".seg");
}

bool IsOrphanedTmp(const std::string& name) {
  constexpr std::string_view kTmp = ".tmp";
  if (name.size() <= kTmp.size() ||
      name.compare(name.size() - kTmp.size(), kTmp.size(), kTmp) != 0) {
    return false;
  }
  return IsTapeFile(name.substr(0, name.size() - kTmp.size()));
}

bool ParseU64(std::string_view text, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseHex32(std::string_view text, std::uint32_t* out) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      text.data(), text.data() + text.size(), value, /*base=*/16);
  if (ec != std::errc() || ptr != text.data() + text.size() ||
      value > 0xffffffffull) {
    return false;
  }
  *out = static_cast<std::uint32_t>(value);
  return true;
}

std::string RenderManifestLine(const SegmentInfo& info) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", info.crc);
  std::ostringstream line;
  line << "cap day=" << info.day << " file=" << info.file
       << " rows=" << info.rows << " bytes=" << info.bytes << " crc=" << crc;
  return line.str();
}

}  // namespace

// --- Segment codec ----------------------------------------------------------

Bytes EncodeCaptureSegment(int day, const std::vector<CaptureRecord>& rows) {
  Bytes out;
  EmitPrefix(out, kKindCapture);
  AppendVarint(out, static_cast<std::uint64_t>(day));
  AppendVarint(out, rows.size());
  AppendVarint(out, kCaptureColumnCount);

  // Domain dictionary: same interning as the observation segment — the
  // engine records each domain up to three times a day (main + DHE +
  // requeue), so indices beat raw ids even before the delta coding.
  std::vector<std::uint32_t> dict;
  dict.reserve(rows.size());
  for (const auto& row : rows) dict.push_back(row.domain);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const auto dict_index = [&dict](std::uint32_t domain) {
    return static_cast<std::uint64_t>(
        std::lower_bound(dict.begin(), dict.end(), domain) - dict.begin());
  };

  Bytes col;
  col.reserve(rows.size() * 2);

  AppendVarint(col, dict.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < dict.size(); ++i) {
    AppendVarint(col, i == 0 ? dict[i] : dict[i] - prev);
    prev = dict[i];
  }
  for (const auto& row : rows) AppendVarint(col, dict_index(row.domain));
  EmitColumn(out, kCapColDomain, col);

  col.clear();
  for (const auto& row : rows) {
    AppendVarint(col, static_cast<std::uint64_t>(row.time));
  }
  EmitColumn(out, kCapColTime, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.endpoint);
  EmitColumn(out, kCapColEndpoint, col);

  col.clear();
  for (const auto& row : rows) {
    col.push_back(static_cast<std::uint8_t>((row.valid ? 1 : 0) |
                                            (row.abbreviated ? 2 : 0)));
  }
  EmitColumn(out, kCapColFlags, col);

  col.clear();
  for (const auto& row : rows) {
    col.push_back(static_cast<std::uint8_t>(row.parse_fail));
  }
  EmitColumn(out, kCapColParseFail, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.suite);
  EmitColumn(out, kCapColSuite, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.kex_group);
  EmitColumn(out, kCapColKexGroup, col);

  col.clear();
  for (const auto& row : rows) AppendVarint(col, row.ticket_lifetime_hint);
  EmitColumn(out, kCapColHint, col);

  const auto emit_bytes_column = [&](std::uint8_t id,
                                     Bytes CaptureRecord::*field) {
    col.clear();
    for (const auto& row : rows) {
      const Bytes& value = row.*field;
      AppendVarint(col, value.size());
      Append(col, value);
    }
    EmitColumn(out, id, col);
  };
  emit_bytes_column(kCapColClientRandom, &CaptureRecord::client_random);
  emit_bytes_column(kCapColServerRandom, &CaptureRecord::server_random);
  emit_bytes_column(kCapColSessionId, &CaptureRecord::session_id);
  emit_bytes_column(kCapColTicket, &CaptureRecord::ticket);
  emit_bytes_column(kCapColServerKex, &CaptureRecord::server_kex);
  emit_bytes_column(kCapColClientKex, &CaptureRecord::client_kex);

  col.clear();
  for (const auto& row : rows) {
    AppendVarint(col, row.wire_bytes);
    AppendVarint(col, row.client_records);
    AppendVarint(col, row.server_records);
    AppendVarint(col, row.client_record_bytes);
    AppendVarint(col, row.server_record_bytes);
  }
  EmitColumn(out, kCapColTraffic, col);

  EmitTrailer(out);
  return out;
}

bool DecodeCaptureSegment(ByteView segment, int* day,
                          std::vector<CaptureRecord>* rows,
                          std::string* error) {
  std::uint8_t kind = 0;
  ByteView body;
  if (!CheckEnvelope(segment, &kind, &body, error)) return false;
  if (kind != kKindCapture) {
    Fail(error, "not a capture segment (kind " + std::to_string(kind) + ")");
    return false;
  }

  std::size_t off = 0;
  std::uint64_t day64 = 0, row_count = 0, column_count = 0;
  if (!ReadVarint(body, off, day64) || !ReadVarint(body, off, row_count) ||
      !ReadVarint(body, off, column_count)) {
    Fail(error, "segment header truncated");
    return false;
  }
  if (day64 > 0xffff) {
    Fail(error, "implausible day " + std::to_string(day64));
    return false;
  }
  if (column_count != kCaptureColumnCount) {
    Fail(error, "expected " + std::to_string(kCaptureColumnCount) +
                    " columns, found " + std::to_string(column_count));
    return false;
  }
  // Each row occupies at least one byte in the flags column alone.
  if (row_count > body.size()) {
    Fail(error, "row count exceeds segment size");
    return false;
  }
  const std::size_t n = static_cast<std::size_t>(row_count);

  ByteView cols[kCaptureColumnCount];
  for (int c = 0; c < kCaptureColumnCount; ++c) {
    if (!ReadColumn(body, off, static_cast<std::uint8_t>(c), &cols[c],
                    error)) {
      return false;
    }
  }
  if (off != body.size()) {
    Fail(error, "trailing bytes after last column");
    return false;
  }

  rows->assign(n, CaptureRecord{});

  // Domain dictionary + per-row indices.
  {
    ByteView col = cols[kCapColDomain];
    std::size_t pos = 0;
    std::uint64_t dict_count = 0;
    if (!ReadVarint(col, pos, dict_count) || dict_count > col.size()) {
      Fail(error, "domain dictionary truncated");
      return false;
    }
    std::vector<std::uint32_t> dict;
    dict.reserve(static_cast<std::size_t>(dict_count));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < dict_count; ++i) {
      std::uint64_t value = 0;
      if (!ReadVarint(col, pos, value)) {
        Fail(error, "domain dictionary truncated");
        return false;
      }
      const std::uint64_t domain = i == 0 ? value : prev + value;
      if (domain > 0xffffffffull || (i != 0 && value == 0)) {
        Fail(error, "domain dictionary not strictly increasing");
        return false;
      }
      dict.push_back(static_cast<std::uint32_t>(domain));
      prev = domain;
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t index = 0;
      if (!ReadVarint(col, pos, index) || index >= dict.size()) {
        Fail(error, "domain index out of dictionary range");
        return false;
      }
      (*rows)[i].domain = dict[static_cast<std::size_t>(index)];
    }
    if (!ColumnConsumed(col, pos, kCapColDomain, error)) return false;
  }

  // The varint-coded numeric columns.
  const auto read_u64_column =
      [&](CaptureColumn id, std::uint64_t max,
          const std::function<void(CaptureRecord&, std::uint64_t)>& assign)
      -> bool {
    ByteView col = cols[id];
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t value = 0;
      if (!ReadVarint(col, pos, value) || value > max) {
        Fail(error, "column " + std::to_string(id) + " value invalid");
        return false;
      }
      assign((*rows)[i], value);
    }
    return ColumnConsumed(col, pos, id, error);
  };

  if (!read_u64_column(kCapColTime, 0x7fffffffffffffffull,
                       [](CaptureRecord& r, std::uint64_t v) {
                         r.time = static_cast<SimTime>(v);
                       }) ||
      !read_u64_column(kCapColEndpoint, 0xffffffffull,
                       [](CaptureRecord& r, std::uint64_t v) {
                         r.endpoint = static_cast<std::uint32_t>(v);
                       })) {
    return false;
  }

  if (cols[kCapColFlags].size() != n) {
    Fail(error, "flags column row mismatch");
    return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t flags = cols[kCapColFlags][i];
    if (flags > 3) {
      Fail(error, "flags value out of range");
      return false;
    }
    (*rows)[i].valid = (flags & 1) != 0;
    (*rows)[i].abbreviated = (flags & 2) != 0;
  }

  if (cols[kCapColParseFail].size() != n) {
    Fail(error, "parse-fail column row mismatch");
    return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t fail = cols[kCapColParseFail][i];
    if (fail >= attack::kCaptureParseFailCount) {
      Fail(error, "parse-fail class out of range");
      return false;
    }
    (*rows)[i].parse_fail = static_cast<attack::CaptureParseFail>(fail);
  }

  if (!read_u64_column(kCapColSuite, 0xffff,
                       [](CaptureRecord& r, std::uint64_t v) {
                         r.suite = static_cast<std::uint16_t>(v);
                       }) ||
      !read_u64_column(kCapColKexGroup, 0xffff,
                       [](CaptureRecord& r, std::uint64_t v) {
                         r.kex_group = static_cast<std::uint16_t>(v);
                       }) ||
      !read_u64_column(kCapColHint, 0xffffffffull,
                       [](CaptureRecord& r, std::uint64_t v) {
                         r.ticket_lifetime_hint =
                             static_cast<std::uint32_t>(v);
                       })) {
    return false;
  }

  // The length-prefixed byte-string columns.
  const auto read_bytes_column = [&](CaptureColumn id, std::uint64_t max_size,
                                     Bytes CaptureRecord::*field) -> bool {
    ByteView col = cols[id];
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t size = 0;
      if (!ReadVarint(col, pos, size) || size > max_size ||
          size > col.size() - pos) {
        Fail(error, "column " + std::to_string(id) + " string out of bounds");
        return false;
      }
      const ByteView value = col.subspan(pos, static_cast<std::size_t>(size));
      ((*rows)[i].*field).assign(value.begin(), value.end());
      pos += static_cast<std::size_t>(size);
    }
    return ColumnConsumed(col, pos, id, error);
  };

  if (!read_bytes_column(kCapColClientRandom, kMaxRandomSize,
                         &CaptureRecord::client_random) ||
      !read_bytes_column(kCapColServerRandom, kMaxRandomSize,
                         &CaptureRecord::server_random) ||
      !read_bytes_column(kCapColSessionId, kMaxSessionIdSize,
                         &CaptureRecord::session_id) ||
      !read_bytes_column(kCapColTicket, kMaxTicketSize,
                         &CaptureRecord::ticket) ||
      !read_bytes_column(kCapColServerKex, kMaxKexSize,
                         &CaptureRecord::server_kex) ||
      !read_bytes_column(kCapColClientKex, kMaxKexSize,
                         &CaptureRecord::client_kex)) {
    return false;
  }

  {
    ByteView col = cols[kCapColTraffic];
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t wire = 0, crecs = 0, srecs = 0, cbytes = 0, sbytes = 0;
      if (!ReadVarint(col, pos, wire) || !ReadVarint(col, pos, crecs) ||
          !ReadVarint(col, pos, srecs) || !ReadVarint(col, pos, cbytes) ||
          !ReadVarint(col, pos, sbytes) || crecs > 0xffffffffull ||
          srecs > 0xffffffffull) {
        Fail(error, "traffic column invalid");
        return false;
      }
      (*rows)[i].wire_bytes = wire;
      (*rows)[i].client_records = static_cast<std::uint32_t>(crecs);
      (*rows)[i].server_records = static_cast<std::uint32_t>(srecs);
      (*rows)[i].client_record_bytes = cbytes;
      (*rows)[i].server_record_bytes = sbytes;
    }
    if (!ColumnConsumed(col, pos, kCapColTraffic, error)) return false;
  }

  *day = static_cast<int>(day64);
  return true;
}

// --- CaptureTapeWriter ------------------------------------------------------

CaptureTapeWriter::CaptureTapeWriter(std::string dir) : dir_(std::move(dir)) {}

std::unique_ptr<CaptureTapeWriter> CaptureTapeWriter::Create(
    const std::string& dir, std::string* error, RecoverySweep* sweep) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + dir + ": " + ec.message();
    }
    return nullptr;
  }
  // Reset: a recording must never mix with a previous study's segments.
  RecoverySweep swept;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (IsOrphanedTmp(name)) {
      fs::remove(entry.path(), ec);
      ++swept.tmp_files_removed;
    } else if (IsTapeFile(name)) {
      fs::remove(entry.path(), ec);
    }
  }
  if (sweep != nullptr) *sweep = swept;
  return std::unique_ptr<CaptureTapeWriter>(new CaptureTapeWriter(dir));
}

std::unique_ptr<CaptureTapeWriter> CaptureTapeWriter::Resume(
    const std::string& dir, int last_day, RecoverySweep* sweep,
    std::string* error) {
  std::optional<CaptureTape> existing = CaptureTape::Open(dir, error);
  if (!existing.has_value()) return nullptr;

  // Verify the committed prefix BEFORE deleting anything.
  std::unique_ptr<CaptureTapeWriter> writer(new CaptureTapeWriter(dir));
  for (const SegmentInfo& info : existing->Segments()) {
    if (info.day > last_day) continue;
    const std::string path = dir + "/" + info.file;
    Bytes bytes;
    if (!ReadWarehouseFile(path, &bytes, error)) return nullptr;
    if (bytes.size() != info.bytes || Crc32(bytes) != info.crc) {
      if (error != nullptr) {
        *error = path + ": committed segment does not match manifest";
      }
      return nullptr;
    }
    writer->segments_.push_back(info);
    writer->rows_written_ += info.rows;
    writer->bytes_written_ += info.bytes;
  }

  RecoverySweep swept;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (IsOrphanedTmp(name)) {
      fs::remove(entry.path(), ec);
      ++swept.tmp_files_removed;
      continue;
    }
    if (!HasPrefixSuffix(name, "capture-", ".seg")) continue;
    const std::string digits = name.substr(8, name.size() - 8 - 4);
    std::uint64_t day = 0;
    if (!ParseU64(digits, &day) || static_cast<int>(day) > last_day) {
      fs::remove(entry.path(), ec);
      ++swept.stale_segments_removed;
    }
  }
  if (sweep != nullptr) *sweep = swept;

  if (!writer->WriteManifest()) {
    if (error != nullptr) *error = writer->error();
    return nullptr;
  }
  return writer;
}

void CaptureTapeWriter::Latch(const std::string& message) {
  if (!ok_) return;
  ok_ = false;
  error_ = message;
}

void CaptureTapeWriter::Append(int day, const attack::CaptureRecord& record) {
  if (!ok_) return;
  if (day < 0) {
    Latch("negative day appended");
    return;
  }
  if (current_day_ == -1) {
    if (!segments_.empty() && day <= segments_.back().day) {
      Latch("append day " + std::to_string(day) + " not after day " +
            std::to_string(segments_.back().day));
      return;
    }
    current_day_ = day;
  } else if (day != current_day_) {
    if (day < current_day_) {
      Latch("append days must be non-decreasing");
      return;
    }
    FlushDay();
    if (!ok_) return;
    current_day_ = day;
  }
  pending_.push_back(record);
}

void CaptureTapeWriter::EndDay(int day) {
  if (!ok_) return;
  if (current_day_ == -1) {
    // A scanned day that recorded nothing still gets its (empty) segment.
    if (!segments_.empty() && day <= segments_.back().day) {
      Latch("EndDay " + std::to_string(day) + " out of order");
      return;
    }
    current_day_ = day;
  } else if (day != current_day_) {
    Latch("EndDay " + std::to_string(day) + " while day " +
          std::to_string(current_day_) + " is open");
    return;
  }
  FlushDay();
}

void CaptureTapeWriter::FlushDay() {
  if (!ok_ || current_day_ == -1) return;
  const Bytes segment = [&] {
    obs::ProfScope span(kProfCaptureEncode);
    return EncodeCaptureSegment(current_day_, pending_);
  }();
  SegmentInfo info;
  info.day = current_day_;
  info.file = CaptureFileName(current_day_);
  info.rows = pending_.size();
  info.bytes = segment.size();
  info.crc = Crc32(segment);
  const std::string path = dir_ + "/" + info.file;
  obs::ProfScope commit_span(kProfCaptureCommit);
  std::string write_error;
  if (!DurableWriteFile(path, segment, &write_error)) {
    Latch("cannot write " + path + ": " + write_error);
  } else {
    bytes_written_ += segment.size();
    rows_written_ += pending_.size();
    segments_.push_back(std::move(info));
    WriteManifest();
  }
  pending_.clear();
  current_day_ = -1;
}

void CaptureTapeWriter::Finish() {
  if (!ok_) return;
  FlushDay();
  WriteManifest();
}

bool CaptureTapeWriter::WriteManifest() {
  if (!ok_) return false;
  std::ostringstream manifest;
  manifest << kCaptureManifestHeader << "\n";
  for (const SegmentInfo& info : segments_) {
    manifest << RenderManifestLine(info) << "\n";
  }
  const std::string path = dir_ + "/" + kManifestName;
  const std::string text = manifest.str();
  const ByteView bytes(reinterpret_cast<const std::uint8_t*>(text.data()),
                       text.size());
  std::string write_error;
  if (!DurableWriteFile(path, bytes, &write_error)) {
    Latch("cannot write " + path + ": " + write_error);
    return false;
  }
  manifest_crc_ = Crc32(bytes);
  return true;
}

// --- CaptureTape (reader) ---------------------------------------------------

std::optional<CaptureTape> CaptureTape::Open(const std::string& dir,
                                             std::string* error) {
  const std::string path = dir + "/" + kManifestName;
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "no capture-tape manifest at " + path;
    return std::nullopt;
  }
  CaptureTape tape;
  tape.dir_ = dir;
  std::string line;
  if (!std::getline(in, line) || line != kCaptureManifestHeader) {
    if (error != nullptr) {
      *error = path + ": unsupported manifest header \"" + line + "\"";
    }
    return std::nullopt;
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    std::istringstream tokens(line);
    std::string type;
    tokens >> type;
    if (type != "cap") {
      if (error != nullptr) {
        *error = where + ": unknown entry \"" + type + "\"";
      }
      return std::nullopt;
    }
    SegmentInfo info;
    bool have_day = false, have_file = false, have_rows = false,
         have_bytes = false, have_crc = false;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) *error = where + ": malformed token";
        return std::nullopt;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      std::uint64_t number = 0;
      if (key == "day" && ParseU64(value, &number) && number <= 0xffff) {
        info.day = static_cast<int>(number);
        have_day = true;
      } else if (key == "file" && !value.empty() &&
                 value.find('/') == std::string::npos) {
        info.file = value;
        have_file = true;
      } else if (key == "rows" && ParseU64(value, &number)) {
        info.rows = number;
        have_rows = true;
      } else if (key == "bytes" && ParseU64(value, &number)) {
        info.bytes = number;
        have_bytes = true;
      } else if (key == "crc" && ParseHex32(value, &info.crc)) {
        have_crc = true;
      } else {
        if (error != nullptr) *error = where + ": bad field \"" + token + "\"";
        return std::nullopt;
      }
    }
    if (!have_day || !have_file || !have_rows || !have_bytes || !have_crc) {
      if (error != nullptr) *error = where + ": missing fields";
      return std::nullopt;
    }
    if (!tape.segments_.empty() && info.day <= tape.segments_.back().day) {
      if (error != nullptr) {
        *error = where + ": capture days not strictly increasing";
      }
      return std::nullopt;
    }
    tape.segments_.push_back(std::move(info));
  }
  return tape;
}

int CaptureTape::DayCount() const {
  return segments_.empty() ? 0 : segments_.back().day + 1;
}

std::uint64_t CaptureTape::TotalRows() const {
  std::uint64_t total = 0;
  for (const SegmentInfo& info : segments_) total += info.rows;
  return total;
}

bool CaptureTape::ForEachCapture(
    int day_min, int day_max,
    const std::function<void(int day, const attack::CaptureRecord&)>& visit,
    std::string* error) const {
  for (const SegmentInfo& info : segments_) {
    if (info.day < day_min || info.day > day_max) continue;  // pruned
    const std::string path = dir_ + "/" + info.file;
    Bytes bytes;
    if (!ReadWarehouseFile(path, &bytes, error)) return false;
    if (bytes.size() != info.bytes || Crc32(bytes) != info.crc) {
      if (error != nullptr) {
        *error = path + ": file does not match manifest (size/crc)";
      }
      return false;
    }
    int day = 0;
    std::vector<attack::CaptureRecord> rows;
    std::string decode_error;
    if (!DecodeCaptureSegment(bytes, &day, &rows, &decode_error)) {
      if (error != nullptr) *error = path + ": " + decode_error;
      return false;
    }
    if (day != info.day || rows.size() != info.rows) {
      if (error != nullptr) {
        *error = path + ": decoded day/rows disagree with manifest";
      }
      return false;
    }
    for (const auto& row : rows) visit(day, row);
  }
  return true;
}

}  // namespace tlsharm::warehouse
