#include "analysis/groups.h"

#include <algorithm>

namespace tlsharm::analysis {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  for (std::size_t i = 0; i < n; ++i) {
    parent_[i] = static_cast<std::uint32_t>(i);
  }
}

std::uint32_t UnionFind::Find(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void UnionFind::Union(std::uint32_t a, std::uint32_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
}

ServiceGroupBuilder::ServiceGroupBuilder(std::size_t domain_count)
    : uf_(domain_count), is_member_(domain_count, false) {}

void ServiceGroupBuilder::ObserveMember(scanner::DomainIndex domain) {
  if (!is_member_[domain]) {
    is_member_[domain] = true;
    members_.push_back(domain);
  }
}

void ServiceGroupBuilder::ObserveSecret(scanner::SecretId id,
                                        scanner::DomainIndex domain) {
  if (id == scanner::kNoSecret) return;
  ObserveMember(domain);
  const auto [it, inserted] = first_holder_.try_emplace(id, domain);
  if (!inserted) uf_.Union(it->second, domain);
}

void ServiceGroupBuilder::ObserveLink(scanner::DomainIndex a,
                                      scanner::DomainIndex b) {
  ObserveMember(a);
  ObserveMember(b);
  uf_.Union(a, b);
}

std::vector<std::vector<scanner::DomainIndex>> ServiceGroupBuilder::Groups() {
  std::unordered_map<std::uint32_t, std::vector<scanner::DomainIndex>> by_root;
  for (const scanner::DomainIndex member : members_) {
    by_root[uf_.Find(member)].push_back(member);
  }
  std::vector<std::vector<scanner::DomainIndex>> groups;
  groups.reserve(by_root.size());
  for (auto& [root, domains] : by_root) {
    std::sort(domains.begin(), domains.end());
    groups.push_back(std::move(domains));
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();  // deterministic tie-break
            });
  return groups;
}

}  // namespace tlsharm::analysis
