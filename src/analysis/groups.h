// Service-group clustering (§5): domains sharing any secret value are
// transitively grouped, exactly as the paper grows its graph.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "scanner/observation.h"

namespace tlsharm::analysis {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::uint32_t Find(std::uint32_t x);
  void Union(std::uint32_t a, std::uint32_t b);
  bool Connected(std::uint32_t a, std::uint32_t b) {
    return Find(a) == Find(b);
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
};

// Builds service groups from shared-secret observations.
class ServiceGroupBuilder {
 public:
  explicit ServiceGroupBuilder(std::size_t domain_count);

  // Declares that `domain` presented secret `id` (kNoSecret ignored):
  // domains presenting equal ids are unioned.
  void ObserveSecret(scanner::SecretId id, scanner::DomainIndex domain);

  // Direct edge (used by the cross-domain resumption experiment, where
  // success of resuming a's session on b is the sharing signal).
  void ObserveLink(scanner::DomainIndex a, scanner::DomainIndex b);

  // Marks a domain as participating (so single-member groups count).
  void ObserveMember(scanner::DomainIndex domain);

  // All groups among observed members, largest first.
  std::vector<std::vector<scanner::DomainIndex>> Groups();

  std::size_t MemberCount() const { return members_.size(); }

 private:
  UnionFind uf_;
  std::unordered_map<scanner::SecretId, scanner::DomainIndex> first_holder_;
  std::vector<scanner::DomainIndex> members_;
  std::vector<bool> is_member_;
};

}  // namespace tlsharm::analysis
