// Secret-lifetime estimation from daily observations (§4.3's method).
//
// A secret's span for a domain is last-seen − first-seen + 1 days for the
// same (domain, secret-id) pair. Intermediate days where a different id was
// observed do not break the span — that is exactly the paper's tolerance
// for load-balancer and A-record jitter. Memory is bounded by folding
// entries that cannot reappear (outside the reappearance horizon) into a
// per-domain running maximum.
#pragma once

#include <unordered_map>
#include <vector>

#include "scanner/observation.h"
#include "util/bytes.h"

namespace tlsharm::analysis {

using scanner::DomainIndex;
using scanner::SecretId;

class SpanTracker {
 public:
  explicit SpanTracker(int reappearance_horizon_days = 8)
      : horizon_(reappearance_horizon_days) {}

  // Records that `domain` presented secret `id` on `day` (non-decreasing
  // across calls). kNoSecret observations are ignored.
  void Observe(DomainIndex domain, SecretId id, int day);

  // True if the domain ever presented any secret.
  bool EverObserved(DomainIndex domain) const;

  // Longest span (inclusive days) of any single secret for this domain;
  // 0 when never observed. A value of 1 means no id ever recurred across
  // days ("used different STEKs each day").
  int MaxSpanDays(DomainIndex domain) const;

  // Number of days on which the domain presented any secret.
  int DaysObserved(DomainIndex domain) const;

  // The per-domain maximum spans for every observed domain, sorted by
  // DomainIndex. The internal map is unordered, so without the sort the
  // output order would vary across standard libraries — and every report
  // built on it would stop being byte-stable.
  std::vector<std::pair<DomainIndex, int>> AllSpans() const;

  // Serializes the full tracker state (varint-encoded, domains in index
  // order) so the warehouse's incremental fold can checkpoint mid-study
  // and resume from day k without re-reading days 0..k-1.
  void EncodeState(Bytes& out) const;
  // Restores a tracker from EncodeState bytes starting at `off`; advances
  // `off` past the state. False on malformed input (tracker unspecified).
  bool DecodeState(ByteView in, std::size_t& off);

 private:
  struct Entry {
    SecretId id;
    std::uint16_t first;
    std::uint16_t last;
  };
  struct DomainState {
    std::vector<Entry> live;
    int best = 0;
    int days_observed = 0;
    int last_day_counted = -1;
  };

  void Fold(DomainState& state, int day) const;

  int horizon_;
  std::unordered_map<DomainIndex, DomainState> domains_;
};

}  // namespace tlsharm::analysis
