// Combined vulnerability windows (§6.4, Figure 8).
//
// A domain's overall exposure is the longest window any single shortcut
// creates: the measured STEK span, the honoured session-cache window, and
// the (EC)DHE value-reuse span. Windows are expressed in seconds.
#pragma once

#include <optional>
#include <vector>

#include "util/sim_clock.h"
#include "util/stats.h"

namespace tlsharm::analysis {

struct DomainExposure {
  // 0 when the mechanism was never observed for this domain.
  SimTime stek_window = 0;        // STEK span
  SimTime cache_window = 0;       // max honoured session-ID resumption delay
  SimTime ticket_window = 0;      // max honoured ticket resumption delay
  SimTime dh_window = 0;          // (EC)DHE value reuse span

  bool AnyMechanism() const {
    return stek_window > 0 || cache_window > 0 || ticket_window > 0 ||
           dh_window > 0;
  }

  SimTime MaxWindow() const {
    SimTime best = stek_window;
    if (cache_window > best) best = cache_window;
    if (ticket_window > best) best = ticket_window;
    if (dh_window > best) best = dh_window;
    return best;
  }
};

// Builds the Figure 8 CDF over the max windows of domains that exhibited at
// least one mechanism.
EmpiricalDistribution CombinedWindowDistribution(
    const std::vector<DomainExposure>& exposures);

}  // namespace tlsharm::analysis
