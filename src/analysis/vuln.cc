#include "analysis/vuln.h"

namespace tlsharm::analysis {

EmpiricalDistribution CombinedWindowDistribution(
    const std::vector<DomainExposure>& exposures) {
  EmpiricalDistribution dist;
  for (const DomainExposure& exposure : exposures) {
    if (!exposure.AnyMechanism()) continue;
    dist.Add(static_cast<double>(exposure.MaxWindow()));
  }
  return dist;
}

}  // namespace tlsharm::analysis
