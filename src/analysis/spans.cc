#include "analysis/spans.h"

#include <algorithm>

namespace tlsharm::analysis {

void SpanTracker::Fold(DomainState& state, int day) const {
  // Retire entries that can no longer recur (outside the horizon).
  auto it = state.live.begin();
  while (it != state.live.end()) {
    if (static_cast<int>(it->last) + horizon_ < day) {
      state.best = std::max(state.best,
                            static_cast<int>(it->last) -
                                static_cast<int>(it->first) + 1);
      it = state.live.erase(it);
    } else {
      ++it;
    }
  }
}

void SpanTracker::Observe(DomainIndex domain, SecretId id, int day) {
  if (id == scanner::kNoSecret) return;
  DomainState& state = domains_[domain];
  if (day != state.last_day_counted) {
    state.last_day_counted = day;
    ++state.days_observed;
    Fold(state, day);
  }
  for (Entry& entry : state.live) {
    if (entry.id == id) {
      entry.last = static_cast<std::uint16_t>(day);
      return;
    }
  }
  state.live.push_back(Entry{id, static_cast<std::uint16_t>(day),
                             static_cast<std::uint16_t>(day)});
}

bool SpanTracker::EverObserved(DomainIndex domain) const {
  return domains_.count(domain) != 0;
}

int SpanTracker::MaxSpanDays(DomainIndex domain) const {
  const auto it = domains_.find(domain);
  if (it == domains_.end()) return 0;
  int best = it->second.best;
  for (const Entry& entry : it->second.live) {
    best = std::max(best, static_cast<int>(entry.last) -
                              static_cast<int>(entry.first) + 1);
  }
  return best;
}

int SpanTracker::DaysObserved(DomainIndex domain) const {
  const auto it = domains_.find(domain);
  return it == domains_.end() ? 0 : it->second.days_observed;
}

std::vector<std::pair<DomainIndex, int>> SpanTracker::AllSpans() const {
  std::vector<std::pair<DomainIndex, int>> out;
  out.reserve(domains_.size());
  for (const auto& [domain, state] : domains_) {
    out.emplace_back(domain, MaxSpanDays(domain));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SpanTracker::EncodeState(Bytes& out) const {
  AppendVarint(out, static_cast<std::uint64_t>(horizon_));
  AppendVarint(out, domains_.size());
  // Emit domains sorted so the encoding is a pure function of the tracked
  // state, not of unordered_map iteration order.
  std::vector<DomainIndex> order;
  order.reserve(domains_.size());
  for (const auto& [domain, state] : domains_) order.push_back(domain);
  std::sort(order.begin(), order.end());
  for (const DomainIndex domain : order) {
    const DomainState& state = domains_.at(domain);
    AppendVarint(out, domain);
    AppendVarint(out, static_cast<std::uint64_t>(state.best));
    AppendVarint(out, static_cast<std::uint64_t>(state.days_observed));
    // last_day_counted is -1 until the first observation; bias it by one
    // so the varint stays unsigned.
    AppendVarint(out, static_cast<std::uint64_t>(state.last_day_counted + 1));
    AppendVarint(out, state.live.size());
    for (const Entry& entry : state.live) {
      AppendVarint(out, entry.id);
      AppendVarint(out, entry.first);
      AppendVarint(out, entry.last);
    }
  }
}

bool SpanTracker::DecodeState(ByteView in, std::size_t& off) {
  std::uint64_t horizon = 0, count = 0;
  if (!ReadVarint(in, off, horizon) || !ReadVarint(in, off, count)) {
    return false;
  }
  if (horizon > 0xffff || count > in.size()) return false;
  horizon_ = static_cast<int>(horizon);
  domains_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t domain = 0, best = 0, days = 0, last_counted = 0, live = 0;
    if (!ReadVarint(in, off, domain) || !ReadVarint(in, off, best) ||
        !ReadVarint(in, off, days) || !ReadVarint(in, off, last_counted) ||
        !ReadVarint(in, off, live)) {
      return false;
    }
    if (domain > 0xffffffffull || best > 0xffff || days > 0xffff ||
        last_counted > 0x10000 || live > in.size()) {
      return false;
    }
    DomainState& state = domains_[static_cast<DomainIndex>(domain)];
    state.best = static_cast<int>(best);
    state.days_observed = static_cast<int>(days);
    state.last_day_counted = static_cast<int>(last_counted) - 1;
    state.live.reserve(static_cast<std::size_t>(live));
    for (std::uint64_t e = 0; e < live; ++e) {
      std::uint64_t id = 0, first = 0, last = 0;
      if (!ReadVarint(in, off, id) || !ReadVarint(in, off, first) ||
          !ReadVarint(in, off, last)) {
        return false;
      }
      if (first > 0xffff || last > 0xffff || first > last) return false;
      state.live.push_back(Entry{id, static_cast<std::uint16_t>(first),
                                 static_cast<std::uint16_t>(last)});
    }
  }
  return true;
}

}  // namespace tlsharm::analysis
