#include "analysis/spans.h"

#include <algorithm>

namespace tlsharm::analysis {

void SpanTracker::Fold(DomainState& state, int day) const {
  // Retire entries that can no longer recur (outside the horizon).
  auto it = state.live.begin();
  while (it != state.live.end()) {
    if (static_cast<int>(it->last) + horizon_ < day) {
      state.best = std::max(state.best,
                            static_cast<int>(it->last) -
                                static_cast<int>(it->first) + 1);
      it = state.live.erase(it);
    } else {
      ++it;
    }
  }
}

void SpanTracker::Observe(DomainIndex domain, SecretId id, int day) {
  if (id == scanner::kNoSecret) return;
  DomainState& state = domains_[domain];
  if (day != state.last_day_counted) {
    state.last_day_counted = day;
    ++state.days_observed;
    Fold(state, day);
  }
  for (Entry& entry : state.live) {
    if (entry.id == id) {
      entry.last = static_cast<std::uint16_t>(day);
      return;
    }
  }
  state.live.push_back(Entry{id, static_cast<std::uint16_t>(day),
                             static_cast<std::uint16_t>(day)});
}

bool SpanTracker::EverObserved(DomainIndex domain) const {
  return domains_.count(domain) != 0;
}

int SpanTracker::MaxSpanDays(DomainIndex domain) const {
  const auto it = domains_.find(domain);
  if (it == domains_.end()) return 0;
  int best = it->second.best;
  for (const Entry& entry : it->second.live) {
    best = std::max(best, static_cast<int>(entry.last) -
                              static_cast<int>(entry.first) + 1);
  }
  return best;
}

int SpanTracker::DaysObserved(DomainIndex domain) const {
  const auto it = domains_.find(domain);
  return it == domains_.end() ? 0 : it->second.days_observed;
}

std::vector<std::pair<DomainIndex, int>> SpanTracker::AllSpans() const {
  std::vector<std::pair<DomainIndex, int>> out;
  out.reserve(domains_.size());
  for (const auto& [domain, state] : domains_) {
    out.emplace_back(domain, MaxSpanDays(domain));
  }
  return out;
}

}  // namespace tlsharm::analysis
