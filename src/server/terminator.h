// SSL terminator: the server-side endpoint that performs TLS on behalf of
// one or many hosted domains (§5's root cause of cross-domain secret
// sharing).
//
// A terminator owns or shares three pieces of secret state, each of which
// the paper shows can outlive any single connection:
//   - a SessionCache (session-ID resumption),
//   - a StekManager (session tickets),
//   - a KexCache (reused (EC)DHE values).
// Sharing any of these objects between terminators — or hosting many
// domains on one terminator — creates the measured service groups.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/schnorr.h"
#include "pki/ca.h"
#include "pki/certificate.h"
#include "server/config.h"
#include "server/kex_cache.h"
#include "server/session_cache.h"
#include "server/stek_manager.h"
#include "tls/transport.h"

namespace tlsharm::server {

// A certificate chain plus the private key for its leaf.
struct Credential {
  pki::CertificateChain chain;
  Bytes private_key;  // Schnorr private key matching chain[0]
  // Serialized Certificate handshake message, filled in by AddCredential.
  // The chain is static for the credential's lifetime, so the terminator
  // serializes it once instead of per handshake; empty means "serialize on
  // demand" (hand-built credentials, reference mode).
  Bytes cert_msg_body;
};

// The three long-lived secret stores of a terminator, bundled so fleet
// owners (simnet::Internet) can create them once per sharing group and
// install the same objects on every member — including members that are
// materialized lazily, long after the group was formed.
struct SharedSecretState {
  std::shared_ptr<SessionCache> cache;
  std::shared_ptr<StekManager> steks;
  std::shared_ptr<KexCache> kex;
};

class SslTerminator {
 public:
  // `id` names the terminator (diagnostics, grouping); `seed` derives its
  // deterministic randomness stream.
  SslTerminator(std::string id, ServerConfig config, std::uint64_t seed);

  // Like the plain constructor, but installs pre-made secret state instead
  // of creating private instances. This is what makes terminators pure
  // functions of (id, config, seed): the only order-dependent mutable
  // state (the session cache and its shared friends) lives outside the
  // object, so a terminator can be dropped and re-derived at any time
  // without losing resumable sessions.
  SslTerminator(std::string id, ServerConfig config, std::uint64_t seed,
                SharedSecretState state);

  // The secret state the plain constructor would create for (id, config,
  // seed) — the canonical derivation (id + "/stek", id + "/kex" seed
  // material) shared by both construction paths.
  static SharedSecretState MakeSharedSecretState(const std::string& id,
                                                 const ServerConfig& config,
                                                 std::uint64_t seed);

  const std::string& Id() const { return id_; }
  const ServerConfig& Config() const { return config_; }

  // --- provisioning -------------------------------------------------------
  // Adds a credential; returns its index.
  std::size_t AddCredential(Credential credential);
  // Routes SNI `domain` to credential `index`. The first mapped credential
  // is also the default for unknown/absent SNI.
  void MapDomain(const std::string& domain, std::size_t index);

  // Secret-state injection. By default each terminator creates private
  // instances; operators that share state across terminators install the
  // same shared object on each.
  void SetSessionCache(std::shared_ptr<SessionCache> cache);
  void SetStekManager(std::shared_ptr<StekManager> steks);
  void SetKexCache(std::shared_ptr<KexCache> kex_cache);

  SessionCache& Cache() { return *session_cache_; }
  StekManager& Steks() { return *stek_manager_; }
  KexCache& Kex() { return *kex_cache_; }
  std::shared_ptr<SessionCache> SharedCache() { return session_cache_; }
  std::shared_ptr<StekManager> SharedSteks() { return stek_manager_; }
  std::shared_ptr<KexCache> SharedKex() { return kex_cache_; }

  // Simulates a process restart: flushes the session cache and KEX cache,
  // and regenerates per-process STEKs.
  void Restart(SimTime now);

  // Opens a new server-side connection at simulated time `now`. When the
  // terminator lives in an evictable working set, pass `self` so the
  // connection pins the object alive past eviction.
  std::unique_ptr<tls::ServerConnection> NewConnection(SimTime now);
  std::unique_ptr<tls::ServerConnection> NewConnection(
      SimTime now, std::shared_ptr<SslTerminator> self);

  // Approximate resident cost of the provisioning tables (credentials +
  // SNI map) in bytes — the working-set accounting unit for lazy fleets.
  // The secret stores are excluded: they are shared and never evicted.
  std::uint64_t ProvisionedBytes() const { return provisioned_bytes_; }

  // Application payload served to established connections.
  void SetResponseBody(std::string body) { response_body_ = std::move(body); }

 private:
  friend class TerminatorConnection;

  const Credential& CredentialForSni(const std::string& sni) const;

  std::string id_;
  ServerConfig config_;
  // Connections derive their own DRBG from (id_, seed_, time, client
  // random) — see TerminatorConnection — so concurrent handshakes never
  // contend on shared randomness and every handshake's bytes are a pure
  // function of its inputs, independent of probe ordering.
  std::uint64_t seed_;
  std::vector<Credential> credentials_;
  // SNI routing: exact matches through the hash index (terminators serving
  // tens of thousands of SAN names must not pay a linear scan per
  // handshake); the insertion-ordered list keeps the "first mapped wins"
  // default and the CertificateCoversHost fallback order.
  std::vector<std::pair<std::string, std::size_t>> domain_map_;
  std::unordered_map<std::string, std::size_t> domain_index_;
  std::uint64_t provisioned_bytes_ = 0;
  std::shared_ptr<SessionCache> session_cache_;
  std::shared_ptr<StekManager> stek_manager_;
  std::shared_ptr<KexCache> kex_cache_;
  std::string response_body_ = "HTTP/1.1 200 OK\r\n\r\nhello";
};

// Helper used by simnet and tests: builds a credential for `domains` (leaf
// with SANs) issued by `issuer`. `serial` 0 uses the CA's sequential
// counter; pass a nonzero serial when credentials are issued out of order
// (lazy fleet materialization) so the certificate is a pure function of
// (issuer, domains, drbg, serial).
Credential MakeCredential(const pki::CertificateAuthority& issuer,
                          const std::vector<std::string>& domains,
                          pki::SignatureScheme scheme, SimTime not_before,
                          SimTime not_after,
                          const pki::CertificateChain& issuer_chain,
                          crypto::Drbg& drbg, std::uint64_t serial = 0);

}  // namespace tlsharm::server
