// Session-ticket encryption key lifecycle.
//
// A StekManager owns the issuing key and the set of still-accepted previous
// keys, driven by the policy in ServerConfig. Multiple SSL terminators may
// share one manager — that is exactly the synchronized-key-file deployment
// (§4.3) whose theft compromises every domain in the service group at once.
//
// Key history is time-indexed: rotations scheduled at world construction
// (interval rotations, operator-forced rotations, process restarts for
// per-process keys) are applied in one chronologically merged sweep under a
// mutex, and queries select the epoch containing the query time rather than
// "the newest". The set of events at or before any watermark is the same no
// matter which thread advanced it, so concurrent scan shards observe
// byte-identical keys regardless of the order their probes arrive in.
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "crypto/drbg.h"
#include "server/config.h"
#include "tls/ticket.h"

namespace tlsharm::server {

class StekManager {
 public:
  // `seed` personalizes the key stream (e.g. the operator name).
  StekManager(StekPolicy policy, tls::TicketCodecKind codec, ByteView seed);

  // --- scheduled maintenance ----------------------------------------------
  // Registered during world construction, before any concurrent use.
  // Operator-forced rotation at an absolute time (applies to any policy).
  void ScheduleForcedRotation(SimTime when);
  // Recurring process restarts at `first`, `first + every`, ...; rotates
  // only under the kPerProcess policy (other keys live outside the
  // process). Shared managers accumulate one schedule per terminator.
  void ScheduleRestarts(SimTime first, SimTime every);

  // The key used to issue tickets at `now`. Applies all scheduled events up
  // to `now` first. The reference stays valid while concurrent callers
  // advance the manager: epochs live in a deque and are pruned only one
  // full day behind the newest query time.
  const tls::Stek& IssuingStek(SimTime now);

  // Keys accepted for decryption at `now` (newest first): the key issuing
  // at `now` plus previous keys still inside the acceptance overlap.
  std::vector<const tls::Stek*> AcceptableSteks(SimTime now);

  // Manual process restart (tests, the attack module): per-process keys
  // are regenerated; static and interval-managed keys survive.
  void OnProcessRestart(SimTime now);

  // Operator-initiated manual rotation (e.g. the Jack Henry cluster's
  // switch after 59 days).
  void ForceRotate(SimTime now);

  tls::TicketCodecKind Codec() const { return codec_; }
  const StekPolicy& Policy() const { return policy_; }

  // --- observability -------------------------------------------------------
  // Issuing-key changes since construction (the initial key generation is
  // not a rotation). Deterministic for a fixed workload: rotations are
  // applied up to the maximum queried time, which does not depend on the
  // order concurrent shards advanced the watermark.
  std::uint64_t Rotations();
  // Epochs currently retained (issuing + acceptance overlap + prune slack).
  std::size_t LiveEpochs();
  // Start of the epoch issuing at `now` (advances scheduled events first).
  SimTime IssuingEpochStart(SimTime now);

  // Exposes the raw current key for the attack module ("STEK theft").
  const tls::Stek& StealCurrentKey(SimTime now) { return IssuingStek(now); }

 private:
  struct KeyEpoch {
    tls::Stek stek;
    SimTime issued_from;
    SimTime retired_at;  // still issuing if == kNotRetired
  };
  struct RestartSchedule {
    SimTime next;
    SimTime every;
  };
  static constexpr SimTime kNotRetired = -1;

  // All *Locked helpers require mu_ held.
  void AdvanceToLocked(SimTime now);
  void RotateLocked(SimTime now);
  void ForceRotateLocked(SimTime now);
  void PruneLocked();
  const KeyEpoch& EpochAtLocked(SimTime now) const;

  StekPolicy policy_;
  tls::TicketCodecKind codec_;
  crypto::Drbg drbg_;

  std::mutex mu_;
  std::vector<SimTime> forced_;  // absolute times, sorted
  std::size_t next_forced_ = 0;
  std::vector<RestartSchedule> restarts_;
  SimTime watermark_ = 0;  // all events <= watermark_ are applied
  std::deque<KeyEpoch> epochs_;  // newest last; deque: stable references
  std::uint64_t generations_ = 0;  // issuing keys drawn (incl. the first)
};

}  // namespace tlsharm::server
