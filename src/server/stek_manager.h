// Session-ticket encryption key lifecycle.
//
// A StekManager owns the issuing key and the set of still-accepted previous
// keys, driven by the policy in ServerConfig. Multiple SSL terminators may
// share one manager — that is exactly the synchronized-key-file deployment
// (§4.3) whose theft compromises every domain in the service group at once.
#pragma once

#include <memory>
#include <vector>

#include "crypto/drbg.h"
#include "server/config.h"
#include "tls/ticket.h"

namespace tlsharm::server {

class StekManager {
 public:
  // `seed` personalizes the key stream (e.g. the operator name).
  StekManager(StekPolicy policy, tls::TicketCodecKind codec, ByteView seed);

  // The key currently used to issue tickets. Applies any due interval
  // rotations first.
  const tls::Stek& IssuingStek(SimTime now);

  // Keys accepted for decryption at `now`: the issuing key plus previous
  // keys still inside the acceptance overlap.
  std::vector<const tls::Stek*> AcceptableSteks(SimTime now);

  // Process restart: per-process keys are regenerated; static and
  // interval-managed keys survive (they live outside the process).
  void OnProcessRestart(SimTime now);

  // Operator-initiated manual rotation (e.g. the Jack Henry cluster's
  // switch after 59 days).
  void ForceRotate(SimTime now);

  tls::TicketCodecKind Codec() const { return codec_; }
  const StekPolicy& Policy() const { return policy_; }

  // Exposes the raw current key for the attack module ("STEK theft").
  const tls::Stek& StealCurrentKey(SimTime now) { return IssuingStek(now); }

 private:
  void Rotate(SimTime now);
  void MaybeRotate(SimTime now);

  StekPolicy policy_;
  tls::TicketCodecKind codec_;
  crypto::Drbg drbg_;

  struct KeyEpoch {
    tls::Stek stek;
    SimTime issued_from;
    SimTime retired_at;  // still issuing if == kNotRetired
  };
  static constexpr SimTime kNotRetired = -1;
  std::vector<KeyEpoch> epochs_;  // newest last
};

}  // namespace tlsharm::server
