// Server-side configuration knobs.
//
// These map one-to-one onto the behaviours the paper measures: session-cache
// lifetime (§4.1), ticket acceptance window and lifetime hint (§4.2), STEK
// rotation policy (§4.3), and (EC)DHE value reuse (§4.4). The simnet
// operator profiles are just bundles of these values taken from the paper's
// observations of Apache, Nginx, IIS, CloudFlare, Google, and others.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/kex.h"
#include "pki/certificate.h"
#include "tls/constants.h"
#include "tls/ticket.h"
#include "util/sim_clock.h"

namespace tlsharm::server {

// How the terminator manages its STEK over time.
enum class StekRotation : std::uint8_t {
  // Generated at process start, used until restart (Apache/Nginx without a
  // key file). Effective lifetime = process lifetime.
  kPerProcess,
  // Loaded from a synchronized key file that ops never rotate ("static").
  kStatic,
  // Rotated on a fixed interval by custom tooling (Twitter/Google style).
  kInterval,
};

struct StekPolicy {
  StekRotation rotation = StekRotation::kPerProcess;
  // For kInterval: time between rotations.
  SimTime rotation_interval = kDay;
  // Previous keys remain accepted (but no longer issue) for this long after
  // rotation — Google's 14h roll / 28h acceptance is overlap = 14h.
  SimTime previous_key_acceptance = 0;
};

struct SessionCacheConfig {
  bool enabled = true;
  // Server drops cached sessions after this long (Apache/Nginx default 5m).
  SimTime lifetime = 5 * kMinute;
  std::size_t capacity = 100000;
  // Nginx quirk: issue a session ID in ServerHello without caching, so
  // resumption always misses (paper §4.1).
  bool issue_id_without_cache = false;
};

struct TicketConfig {
  bool enabled = true;
  tls::TicketCodecKind codec = tls::TicketCodecKind::kRfc5077;
  // Hint sent in NewSessionTicket. 0 = unspecified (client's policy).
  std::uint32_t lifetime_hint_seconds = 300;
  // How long after issuance the server still honours a ticket.
  SimTime acceptance_window = 5 * kMinute;
  // Reissue a fresh ticket on successful ticket resumption.
  bool reissue_on_resumption = true;
};

struct KexReusePolicy {
  // Fresh value per handshake (OpenSSL post-CVE-2016-0701 for DHE).
  bool reuse = false;
  // When reusing: regenerate after this long. 0 = never (process lifetime).
  SimTime ttl = 0;
};

struct ServerConfig {
  std::string implementation = "generic";  // diagnostic label

  // Suite preference, server-chooses.
  std::vector<tls::CipherSuite> suite_preference = {
      tls::CipherSuite::kEcdheWithAes128CbcSha256,
      tls::CipherSuite::kDheWithAes128CbcSha256,
      tls::CipherSuite::kStaticWithAes128CbcSha256,
  };
  crypto::NamedGroup dhe_group = crypto::NamedGroup::kFfdheSim61;
  crypto::NamedGroup ecdhe_group = crypto::NamedGroup::kSimEc61;
  pki::SignatureScheme cert_scheme = pki::SignatureScheme::kSchnorrSim61;

  SessionCacheConfig session_cache;
  TicketConfig tickets;
  StekPolicy stek;
  KexReusePolicy dhe_reuse;
  KexReusePolicy ecdhe_reuse;
};

}  // namespace tlsharm::server
