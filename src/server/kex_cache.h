// Cached ephemeral key-exchange values — the §4.4 "crypto shortcut".
//
// When reuse is enabled the terminator keeps one (private, public) pair per
// group and serves it to every client until the TTL (or process) expires.
// The cache can also be shared across terminators (§5.3's SquareSpace /
// Jimdo style sharing).
#pragma once

#include <map>
#include <optional>

#include "crypto/drbg.h"
#include "crypto/kex.h"
#include "server/config.h"
#include "util/sim_clock.h"

namespace tlsharm::server {

class KexCache {
 public:
  // Returns the key pair to use for one handshake: a cached pair when the
  // policy allows reuse and the TTL has not lapsed, otherwise a fresh one
  // (cached for next time if reusing).
  const crypto::KexKeyPair& GetKeyPair(crypto::NamedGroup group,
                                       const KexReusePolicy& policy,
                                       SimTime now, crypto::Drbg& drbg);

  // Process restart discards all cached values.
  void Clear();

 private:
  struct Entry {
    crypto::KexKeyPair pair;
    SimTime created = 0;
  };
  std::map<crypto::NamedGroup, Entry> entries_;
  crypto::KexKeyPair scratch_;  // storage for non-reused fresh pairs
};

}  // namespace tlsharm::server
