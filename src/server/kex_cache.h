// Cached ephemeral key-exchange values — the §4.4 "crypto shortcut".
//
// When reuse is enabled the terminator serves one (private, public) pair per
// group to every client until the TTL lapses or the process restarts. The
// cache can also be shared across terminators (§5.3's SquareSpace / Jimdo
// style sharing).
//
// Reused pairs are derived, not stored: the pair for a group is a pure
// function of (cache seed, group, reuse-epoch start, generation), where the
// epoch start is the most recent of the TTL quantization boundary and any
// registered clear event (process restart, forced rotation). Deriving by
// time instead of caching "whatever was generated first" makes the value a
// client observes independent of the order in which connections arrive —
// the property the sharded scan engine's bit-identical replay rests on.
// Clear schedules are registered once at world construction; after that the
// cache is immutable apart from an atomic generation counter, so concurrent
// GetKeyPair calls need no locking.
#pragma once

#include <atomic>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/kex.h"
#include "server/config.h"
#include "util/sim_clock.h"

namespace tlsharm::server {

class KexCache {
 public:
  // `seed` personalizes the derived key stream (terminators that share a
  // cache share the seed, and therefore the reused values).
  explicit KexCache(ByteView seed);

  // Returns the key pair to use for one handshake: a derived reuse pair
  // when the policy allows reuse and, otherwise, a fresh pair drawn from
  // the caller's (per-connection) DRBG. Returned by value: the non-reuse
  // pair is connection-local, and a reference into shared storage would
  // race under concurrent handshakes.
  crypto::KexKeyPair GetKeyPair(crypto::NamedGroup group,
                                const KexReusePolicy& policy, SimTime now,
                                crypto::Drbg& drbg) const;

  // --- scheduled maintenance ----------------------------------------------
  // Registered during world construction, before any concurrent use.
  // A one-shot clear at `when` (operator-forced rotation).
  void ScheduleClearAt(SimTime when);
  // Recurring clears at `first`, `first + every`, ... (process restarts).
  void SchedulePeriodicClear(SimTime first, SimTime every);

  // Manual clear (explicit restart in tests / the attack module): bumps the
  // derivation generation so every reused pair changes. Not for use while
  // scans are running concurrently.
  void Clear() { generation_.fetch_add(1, std::memory_order_relaxed); }

  // --- observability -------------------------------------------------------
  // Handshakes served a reused (epoch-derived) pair vs a fresh one.
  // Relaxed atomics: contention-free under concurrent handshakes, and the
  // totals depend only on the multiset of handshakes, so they are
  // deterministic for a fixed workload. Read after workers join.
  std::uint64_t ReusedServed() const {
    return reused_.load(std::memory_order_relaxed);
  }
  std::uint64_t FreshServed() const {
    return fresh_.load(std::memory_order_relaxed);
  }

 private:
  // Start of the reuse epoch containing `now` under `policy`.
  SimTime EpochStart(const KexReusePolicy& policy, SimTime now) const;

  struct PeriodicClear {
    SimTime first;
    SimTime every;
  };

  Bytes seed_;
  std::vector<SimTime> clears_;  // one-shot clear times, sorted
  std::vector<PeriodicClear> periodic_;
  std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::uint64_t> reused_{0};
  mutable std::atomic<std::uint64_t> fresh_{0};
};

}  // namespace tlsharm::server
