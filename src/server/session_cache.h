// Server-side session cache for session-ID resumption.
//
// Entries expire after the configured lifetime and the cache evicts oldest-
// first at capacity. A cache instance may be shared by every terminator
// behind one load balancer — the cross-domain sharing of §5.1. The cache
// retains the master secrets of past connections for its whole lifetime,
// which is precisely the §6.2 vulnerability window.
#pragma once

#include <list>
#include <map>
#include <mutex>
#include <optional>

#include "tls/constants.h"
#include "util/bytes.h"
#include "util/sim_clock.h"

namespace tlsharm::server {

struct CachedSession {
  std::uint16_t cipher_suite = 0;
  Bytes master_secret;
  SimTime created = 0;
};

class SessionCache {
 public:
  SessionCache(SimTime lifetime, std::size_t capacity)
      : lifetime_(lifetime), capacity_(capacity) {}

  // Stores a session; evicts expired entries opportunistically and the
  // oldest entry when full.
  void Insert(const Bytes& session_id, CachedSession session, SimTime now);

  // Returns the session if present and unexpired.
  std::optional<CachedSession> Lookup(const Bytes& session_id, SimTime now);

  // Drops everything (process restart, explicit flush).
  void Clear();

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  SimTime Lifetime() const { return lifetime_; }

  // --- observability -------------------------------------------------------
  // Cumulative operation counts. These are deterministic for a fixed scan
  // workload (each completed handshake inserts exactly once, each
  // resumption attempt looks up exactly once); live occupancy is NOT
  // exposed as a metric because the lazy restart flush makes it depend on
  // thread interleaving (see DESIGN.md "Observability").
  std::uint64_t Inserts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inserts_;
  }
  std::uint64_t Lookups() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lookups_;
  }
  std::uint64_t Hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  // Exposes the full contents for the attack module (an attacker who dumps
  // the cache obtains every stored master secret). Unsynchronized: only for
  // serial analysis after scanning, never while handshakes are in flight.
  const std::map<Bytes, CachedSession>& Dump() const { return entries_; }

 private:
  void EvictExpired(SimTime now);  // requires mu_ held

  SimTime lifetime_;
  std::size_t capacity_;
  mutable std::mutex mu_;  // guards entries_, insertion_order_, counters
  std::map<Bytes, CachedSession> entries_;
  std::list<Bytes> insertion_order_;  // oldest first
  std::uint64_t inserts_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace tlsharm::server
