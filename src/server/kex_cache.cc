#include "server/kex_cache.h"

#include <algorithm>

namespace tlsharm::server {
namespace {

// Largest multiple of `step` that is <= t (floor, correct for t < 0).
SimTime FloorTo(SimTime t, SimTime step) {
  SimTime q = t / step;
  if (t % step != 0 && t < 0) --q;
  return q * step;
}

}  // namespace

KexCache::KexCache(ByteView seed) : seed_(seed.begin(), seed.end()) {}

void KexCache::ScheduleClearAt(SimTime when) {
  clears_.insert(std::upper_bound(clears_.begin(), clears_.end(), when),
                 when);
}

void KexCache::SchedulePeriodicClear(SimTime first, SimTime every) {
  if (every <= 0) return;
  periodic_.push_back(PeriodicClear{first, every});
}

SimTime KexCache::EpochStart(const KexReusePolicy& policy,
                             SimTime now) const {
  SimTime start = policy.ttl > 0 ? FloorTo(now, policy.ttl) : 0;
  const auto it = std::upper_bound(clears_.begin(), clears_.end(), now);
  if (it != clears_.begin()) start = std::max(start, *(it - 1));
  for (const PeriodicClear& p : periodic_) {
    if (now < p.first) continue;
    start = std::max(start, p.first + FloorTo(now - p.first, p.every));
  }
  return start;
}

crypto::KexKeyPair KexCache::GetKeyPair(crypto::NamedGroup group,
                                        const KexReusePolicy& policy,
                                        SimTime now,
                                        crypto::Drbg& drbg) const {
  const crypto::KexGroup& g = crypto::GetKexGroup(group);
  if (!policy.reuse) {
    fresh_.fetch_add(1, std::memory_order_relaxed);
    return g.GenerateKeyPair(drbg);
  }
  reused_.fetch_add(1, std::memory_order_relaxed);

  Bytes material = ToBytes("kex-epoch");
  Append(material, seed_);
  AppendUint(material, static_cast<std::uint64_t>(group), 2);
  AppendUint(material, static_cast<std::uint64_t>(EpochStart(policy, now)),
             8);
  AppendUint(material, generation_.load(std::memory_order_relaxed), 8);
  crypto::Drbg epoch_drbg(material);
  return g.GenerateKeyPair(epoch_drbg);
}

}  // namespace tlsharm::server
