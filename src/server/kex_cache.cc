#include "server/kex_cache.h"

namespace tlsharm::server {

const crypto::KexKeyPair& KexCache::GetKeyPair(crypto::NamedGroup group,
                                               const KexReusePolicy& policy,
                                               SimTime now,
                                               crypto::Drbg& drbg) {
  const crypto::KexGroup& g = crypto::GetKexGroup(group);
  if (!policy.reuse) {
    scratch_ = g.GenerateKeyPair(drbg);
    return scratch_;
  }
  auto it = entries_.find(group);
  const bool expired =
      it != entries_.end() && policy.ttl > 0 &&
      it->second.created + policy.ttl <= now;
  if (it == entries_.end() || expired) {
    Entry entry{.pair = g.GenerateKeyPair(drbg), .created = now};
    it = entries_.insert_or_assign(group, std::move(entry)).first;
  }
  return it->second.pair;
}

void KexCache::Clear() { entries_.clear(); }

}  // namespace tlsharm::server
