#include "server/terminator.h"

#include <optional>

#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/tuning.h"
#include "tls/keys.h"
#include "tls/messages.h"
#include "tls/record.h"

namespace tlsharm::server {
namespace {

// Server-side transcript (mirrors the client's).
class Transcript {
 public:
  void Add(tls::HandshakeType type, ByteView body) {
    Bytes framed;
    tls::AppendHandshake(framed, type, body);
    hash_.Update(framed);
  }
  Bytes CurrentHash() const {
    crypto::Sha256 copy = hash_;
    const crypto::Sha256Digest d = copy.Finish();
    return Bytes(d.begin(), d.end());
  }

 private:
  crypto::Sha256 hash_;
};

}  // namespace

// One in-flight server connection. Owns no secret state: everything long-
// lived (cache, STEKs, KEX values) belongs to the terminator.
class TerminatorConnection final : public tls::ServerConnection {
 public:
  TerminatorConnection(SslTerminator& server, SimTime now,
                       std::shared_ptr<SslTerminator> pin = nullptr)
      : server_(server), now_(now), pin_(std::move(pin)) {}

  // The connection's private randomness stream, derived once the
  // ClientHello is known: a pure function of (terminator identity, time,
  // client random), so a replayed probe reproduces the handshake
  // byte-for-byte no matter how many other connections run concurrently.
  crypto::Drbg& Rand() { return *drbg_; }

  Bytes OnClientFlight(ByteView flight) override;
  Bytes OnApplicationRecord(ByteView record) override;

  bool Failed() const override { return state_ == State::kFailed; }
  std::string_view ErrorDetail() const override { return error_; }

 private:
  enum class State {
    kAwaitClientHello,
    kAwaitClientKex,
    kAwaitFinished,
    kEstablished,
    kFailed,
  };

  Bytes Abort(std::string_view error) {
    state_ = State::kFailed;
    error_ = std::string(error);
    return {};
  }

  Bytes HandleClientHello(const tls::HandshakeMessage& msg);
  Bytes HandleClientKexFlight(const std::vector<tls::HandshakeMessage>& msgs);
  Bytes HandleClientFinished(const tls::HandshakeMessage& msg);

  // Builds the abbreviated server flight for an accepted resumption.
  Bytes AcceptResumption(const tls::ClientHello& ch, std::uint16_t suite,
                         const Bytes& master_secret, bool via_ticket);

  tls::NewSessionTicket IssueTicket(std::uint16_t suite,
                                    const Bytes& master_secret);

  SslTerminator& server_;
  SimTime now_;
  // Keeps an evictable terminator alive for the connection's lifetime
  // (lazy fleets); null when the owner guarantees the reference outlives
  // the connection.
  std::shared_ptr<SslTerminator> pin_;
  std::optional<crypto::Drbg> drbg_;  // set in HandleClientHello
  State state_ = State::kAwaitClientHello;
  std::string error_;

  Transcript transcript_;
  std::uint16_t suite_ = 0;
  Bytes client_random_;
  Bytes server_random_;
  Bytes session_id_;       // id sent in ServerHello
  bool cache_session_ = false;
  bool issue_ticket_ = false;
  Bytes server_kex_private_;
  crypto::NamedGroup kex_group_{};
  const Credential* credential_ = nullptr;
  Bytes master_secret_;
  tls::SessionKeys keys_;
  Bytes expected_client_verify_;
  std::uint64_t app_recv_seq_ = 0;
  std::uint64_t app_send_seq_ = 0;
};

Bytes TerminatorConnection::OnClientFlight(ByteView flight) {
  const auto msgs = tls::ParseFlight(flight);
  if (!msgs || msgs->empty()) return Abort("malformed flight");
  switch (state_) {
    case State::kAwaitClientHello:
      if (msgs->size() != 1 ||
          (*msgs)[0].type != tls::HandshakeType::kClientHello) {
        return Abort("expected ClientHello");
      }
      return HandleClientHello((*msgs)[0]);
    case State::kAwaitClientKex:
      return HandleClientKexFlight(*msgs);
    case State::kAwaitFinished:
      if (msgs->size() != 1 ||
          (*msgs)[0].type != tls::HandshakeType::kFinished) {
        return Abort("expected Finished");
      }
      return HandleClientFinished((*msgs)[0]);
    case State::kEstablished:
      return Abort("handshake already complete");
    case State::kFailed:
      return {};
  }
  return Abort("bad state");
}

tls::NewSessionTicket TerminatorConnection::IssueTicket(
    std::uint16_t suite, const Bytes& master_secret) {
  const tls::TicketCodec& codec =
      tls::GetTicketCodec(server_.stek_manager_->Codec());
  tls::TicketState state;
  state.cipher_suite = suite;
  state.master_secret = master_secret;
  state.issue_time = now_;
  tls::NewSessionTicket nst;
  nst.lifetime_hint_seconds = server_.config_.tickets.lifetime_hint_seconds;
  nst.ticket = codec.Seal(server_.stek_manager_->IssuingStek(now_), state,
                          Rand());
  return nst;
}

Bytes TerminatorConnection::AcceptResumption(const tls::ClientHello& ch,
                                             std::uint16_t suite,
                                             const Bytes& master_secret,
                                             bool via_ticket) {
  suite_ = suite;
  master_secret_ = master_secret;

  tls::ServerHello sh;
  sh.random = server_random_ = Rand().Generate(tls::kRandomSize);
  sh.session_id = ch.session_id;  // echo = resumption accepted
  sh.cipher_suite = suite;
  const bool reissue = via_ticket &&
                       server_.config_.tickets.reissue_on_resumption &&
                       ch.offer_session_ticket;
  sh.session_ticket_ack = reissue;
  session_id_ = sh.session_id;

  Bytes flight;
  const Bytes sh_body = sh.Serialize();
  transcript_.Add(tls::HandshakeType::kServerHello, sh_body);
  tls::AppendHandshake(flight, tls::HandshakeType::kServerHello, sh_body);

  if (reissue) {
    const tls::NewSessionTicket nst = IssueTicket(suite, master_secret);
    const Bytes nst_body = nst.Serialize();
    transcript_.Add(tls::HandshakeType::kNewSessionTicket, nst_body);
    tls::AppendHandshake(flight, tls::HandshakeType::kNewSessionTicket,
                         nst_body);
  }

  const Bytes server_verify = crypto::ComputeVerifyData(
      master_secret_, "server finished", transcript_.CurrentHash());
  transcript_.Add(tls::HandshakeType::kFinished, server_verify);
  tls::AppendHandshake(flight, tls::HandshakeType::kFinished, server_verify);

  keys_ = tls::DeriveSessionKeys(master_secret_, client_random_,
                                 server_random_);
  expected_client_verify_ = crypto::ComputeVerifyData(
      master_secret_, "client finished", transcript_.CurrentHash());
  state_ = State::kAwaitFinished;
  return flight;
}

Bytes TerminatorConnection::HandleClientHello(
    const tls::HandshakeMessage& msg) {
  const auto ch = tls::ClientHello::Parse(msg.body);
  if (!ch) return Abort("bad ClientHello");
  if (ch->version != tls::kVersionTls12) return Abort("protocol version");
  transcript_.Add(tls::HandshakeType::kClientHello, msg.body);
  client_random_ = ch->random;
  {
    Bytes material = ToBytes(server_.id_);
    AppendUint(material, server_.seed_, 8);
    AppendUint(material, static_cast<std::uint64_t>(now_), 8);
    Append(material, client_random_);
    drbg_.emplace(material);
  }

  auto client_offered = [&ch](std::uint16_t suite) {
    for (std::uint16_t s : ch->cipher_suites) {
      if (s == suite) return true;
    }
    return false;
  };

  const ServerConfig& cfg = server_.config_;

  // --- Session-ID resumption attempt --------------------------------------
  if (cfg.session_cache.enabled && !ch->session_id.empty()) {
    const auto cached =
        server_.session_cache_->Lookup(ch->session_id, now_);
    if (cached && client_offered(cached->cipher_suite)) {
      return AcceptResumption(*ch, cached->cipher_suite,
                              cached->master_secret, /*via_ticket=*/false);
    }
  }

  // --- Ticket resumption attempt ------------------------------------------
  if (cfg.tickets.enabled && !ch->session_ticket.empty()) {
    const tls::TicketCodec& codec =
        tls::GetTicketCodec(server_.stek_manager_->Codec());
    for (const tls::Stek* stek :
         server_.stek_manager_->AcceptableSteks(now_)) {
      const auto state = codec.Open(*stek, ch->session_ticket);
      if (!state) continue;
      const bool fresh =
          state->issue_time + cfg.tickets.acceptance_window > now_;
      if (fresh && client_offered(state->cipher_suite)) {
        return AcceptResumption(*ch, state->cipher_suite,
                                state->master_secret, /*via_ticket=*/true);
      }
      break;  // ticket was ours but stale/unsuitable: full handshake
    }
  }

  // --- Full handshake ------------------------------------------------------
  std::uint16_t suite = 0;
  for (tls::CipherSuite s : cfg.suite_preference) {
    if (client_offered(static_cast<std::uint16_t>(s))) {
      suite = static_cast<std::uint16_t>(s);
      break;
    }
  }
  if (suite == 0) return Abort("no shared cipher suite");
  suite_ = suite;

  credential_ = &server_.CredentialForSni(ch->server_name);
  if (credential_ == nullptr) return Abort("no credential");

  tls::ServerHello sh;
  sh.random = server_random_ = Rand().Generate(tls::kRandomSize);
  cache_session_ = cfg.session_cache.enabled;
  if (cfg.session_cache.enabled || cfg.session_cache.issue_id_without_cache) {
    sh.session_id = Rand().Generate(tls::kMaxSessionIdSize);
  }
  session_id_ = sh.session_id;
  issue_ticket_ = cfg.tickets.enabled && ch->offer_session_ticket;
  sh.cipher_suite = suite;
  sh.session_ticket_ack = issue_ticket_;

  Bytes flight;
  const Bytes sh_body = sh.Serialize();
  transcript_.Add(tls::HandshakeType::kServerHello, sh_body);
  tls::AppendHandshake(flight, tls::HandshakeType::kServerHello, sh_body);

  // The Certificate message depends only on the (static) chain, so the
  // serialization cached by AddCredential is reused across handshakes.
  // Reference mode re-serializes per handshake (the pre-cache behavior).
  Bytes cert_body_storage;
  const Bytes* cert_body = &credential_->cert_msg_body;
  if (cert_body->empty() || crypto::ReferenceCryptoEnabled()) {
    tls::CertificateMsg cert_msg;
    cert_msg.chain = credential_->chain;
    cert_body_storage = cert_msg.Serialize();
    cert_body = &cert_body_storage;
  }
  transcript_.Add(tls::HandshakeType::kCertificate, *cert_body);
  tls::AppendHandshake(flight, tls::HandshakeType::kCertificate, *cert_body);

  if (tls::IsForwardSecret(static_cast<tls::CipherSuite>(suite))) {
    kex_group_ =
        suite == static_cast<std::uint16_t>(
                     tls::CipherSuite::kEcdheWithAes128CbcSha256)
            ? cfg.ecdhe_group
            : cfg.dhe_group;
    const KexReusePolicy& reuse_policy =
        suite == static_cast<std::uint16_t>(
                     tls::CipherSuite::kEcdheWithAes128CbcSha256)
            ? cfg.ecdhe_reuse
            : cfg.dhe_reuse;
    const crypto::KexKeyPair pair = server_.kex_cache_->GetKeyPair(
        kex_group_, reuse_policy, now_, Rand());
    server_kex_private_ = pair.private_key;

    tls::ServerKeyExchange ske;
    ske.group = static_cast<std::uint16_t>(kex_group_);
    ske.public_value = pair.public_value;
    const auto& scheme =
        pki::GetScheme(credential_->chain.front().data.scheme);
    const Bytes signed_blob =
        Concat({client_random_, server_random_, ske.SignedParams()});
    ske.signature = scheme.SerializeSignature(
        scheme.Sign(credential_->private_key, signed_blob, Rand()));
    const Bytes ske_body = ske.Serialize();
    transcript_.Add(tls::HandshakeType::kServerKeyExchange, ske_body);
    tls::AppendHandshake(flight, tls::HandshakeType::kServerKeyExchange,
                         ske_body);
  }

  transcript_.Add(tls::HandshakeType::kServerHelloDone, {});
  tls::AppendHandshake(flight, tls::HandshakeType::kServerHelloDone, {});
  state_ = State::kAwaitClientKex;
  return flight;
}

Bytes TerminatorConnection::HandleClientKexFlight(
    const std::vector<tls::HandshakeMessage>& msgs) {
  if (msgs.size() != 2 ||
      msgs[0].type != tls::HandshakeType::kClientKeyExchange ||
      msgs[1].type != tls::HandshakeType::kFinished) {
    return Abort("expected ClientKeyExchange + Finished");
  }
  const auto cke = tls::ClientKeyExchange::Parse(msgs[0].body);
  if (!cke) return Abort("bad ClientKeyExchange");
  transcript_.Add(tls::HandshakeType::kClientKeyExchange, msgs[0].body);

  Bytes premaster;
  if (tls::IsForwardSecret(static_cast<tls::CipherSuite>(suite_))) {
    const auto& group = crypto::GetKexGroup(kex_group_);
    const auto shared =
        group.SharedSecret(server_kex_private_, cke->public_value);
    if (!shared) return Abort("degenerate client key-exchange value");
    premaster = *shared;
  } else {
    const auto& scheme =
        pki::GetScheme(credential_->chain.front().data.scheme);
    const auto shared =
        scheme.DhShared(credential_->private_key, cke->public_value);
    if (!shared) return Abort("degenerate client key-exchange value");
    premaster = *shared;
  }
  master_secret_ =
      crypto::DeriveMasterSecret(premaster, client_random_, server_random_);
  keys_ = tls::DeriveSessionKeys(master_secret_, client_random_,
                                 server_random_);

  const Bytes expected = crypto::ComputeVerifyData(
      master_secret_, "client finished", transcript_.CurrentHash());
  const auto fin = tls::Finished::Parse(msgs[1].body);
  if (!fin || !ConstantTimeEqual(fin->verify_data, expected)) {
    return Abort("client Finished verification failed");
  }
  transcript_.Add(tls::HandshakeType::kFinished, msgs[1].body);

  // Session becomes resumable state on the server.
  if (cache_session_ && !session_id_.empty()) {
    server_.session_cache_->Insert(
        session_id_,
        CachedSession{.cipher_suite = suite_,
                      .master_secret = master_secret_,
                      .created = now_},
        now_);
  }

  Bytes flight;
  if (issue_ticket_) {
    const tls::NewSessionTicket nst = IssueTicket(suite_, master_secret_);
    const Bytes nst_body = nst.Serialize();
    transcript_.Add(tls::HandshakeType::kNewSessionTicket, nst_body);
    tls::AppendHandshake(flight, tls::HandshakeType::kNewSessionTicket,
                         nst_body);
  }
  const Bytes server_verify = crypto::ComputeVerifyData(
      master_secret_, "server finished", transcript_.CurrentHash());
  tls::AppendHandshake(flight, tls::HandshakeType::kFinished, server_verify);
  state_ = State::kEstablished;
  return flight;
}

Bytes TerminatorConnection::HandleClientFinished(
    const tls::HandshakeMessage& msg) {
  const auto fin = tls::Finished::Parse(msg.body);
  if (!fin || !ConstantTimeEqual(fin->verify_data, expected_client_verify_)) {
    return Abort("client Finished verification failed");
  }
  state_ = State::kEstablished;
  return {};
}

Bytes TerminatorConnection::OnApplicationRecord(ByteView record) {
  if (state_ != State::kEstablished) return Abort("handshake not complete");
  const auto request = tls::UnprotectRecord(
      keys_, tls::Direction::kClientToServer, app_recv_seq_, record);
  if (!request) return Abort("record decryption failed");
  ++app_recv_seq_;
  const Bytes response = tls::ProtectRecord(
      keys_, tls::Direction::kServerToClient, app_send_seq_++,
      ToBytes(server_.response_body_), Rand());
  return response;
}

// ---------------------------------------------------------------------------

SharedSecretState SslTerminator::MakeSharedSecretState(
    const std::string& id, const ServerConfig& config, std::uint64_t seed) {
  Bytes stek_seed = ToBytes(id + "/stek");
  AppendUint(stek_seed, seed, 8);
  Bytes kex_seed = ToBytes(id + "/kex");
  AppendUint(kex_seed, seed, 8);
  SharedSecretState state;
  state.cache = std::make_shared<SessionCache>(config.session_cache.lifetime,
                                               config.session_cache.capacity);
  state.steks = std::make_shared<StekManager>(config.stek,
                                              config.tickets.codec, stek_seed);
  state.kex = std::make_shared<KexCache>(kex_seed);
  return state;
}

SslTerminator::SslTerminator(std::string id, ServerConfig config,
                             std::uint64_t seed)
    : id_(std::move(id)), config_(std::move(config)), seed_(seed) {
  SharedSecretState state = MakeSharedSecretState(id_, config_, seed);
  session_cache_ = std::move(state.cache);
  stek_manager_ = std::move(state.steks);
  kex_cache_ = std::move(state.kex);
}

SslTerminator::SslTerminator(std::string id, ServerConfig config,
                             std::uint64_t seed, SharedSecretState state)
    : id_(std::move(id)),
      config_(std::move(config)),
      seed_(seed),
      session_cache_(std::move(state.cache)),
      stek_manager_(std::move(state.steks)),
      kex_cache_(std::move(state.kex)) {}

std::size_t SslTerminator::AddCredential(Credential credential) {
  if (credential.cert_msg_body.empty()) {
    tls::CertificateMsg cert_msg;
    cert_msg.chain = credential.chain;
    credential.cert_msg_body = cert_msg.Serialize();
  }
  provisioned_bytes_ += credential.cert_msg_body.size() +
                        credential.private_key.size() +
                        credential.chain.size() * 256 + 128;
  credentials_.push_back(std::move(credential));
  return credentials_.size() - 1;
}

void SslTerminator::MapDomain(const std::string& domain, std::size_t index) {
  domain_map_.emplace_back(domain, index);
  domain_index_.emplace(domain, index);
  provisioned_bytes_ += 2 * domain.size() + 128;
}

void SslTerminator::SetSessionCache(std::shared_ptr<SessionCache> cache) {
  session_cache_ = std::move(cache);
}

void SslTerminator::SetStekManager(std::shared_ptr<StekManager> steks) {
  stek_manager_ = std::move(steks);
}

void SslTerminator::SetKexCache(std::shared_ptr<KexCache> kex_cache) {
  kex_cache_ = std::move(kex_cache);
}

const Credential& SslTerminator::CredentialForSni(
    const std::string& sni) const {
  if (!sni.empty()) {
    // Exact SNI match through the hash index (duplicate mappings keep the
    // first insertion, matching the old first-match linear scan).
    const auto it = domain_index_.find(sni);
    if (it != domain_index_.end()) return credentials_[it->second];
    // Fall back to any credential whose chain covers the name.
    for (const auto& credential : credentials_) {
      if (pki::CertificateCoversHost(credential.chain.front(), sni)) {
        return credential;
      }
    }
  }
  return credentials_.front();
}

void SslTerminator::Restart(SimTime now) {
  session_cache_->Clear();
  kex_cache_->Clear();
  stek_manager_->OnProcessRestart(now);
}

std::unique_ptr<tls::ServerConnection> SslTerminator::NewConnection(
    SimTime now) {
  return std::make_unique<TerminatorConnection>(*this, now);
}

std::unique_ptr<tls::ServerConnection> SslTerminator::NewConnection(
    SimTime now, std::shared_ptr<SslTerminator> self) {
  return std::make_unique<TerminatorConnection>(*this, now, std::move(self));
}

Credential MakeCredential(const pki::CertificateAuthority& issuer,
                          const std::vector<std::string>& domains,
                          pki::SignatureScheme scheme, SimTime not_before,
                          SimTime not_after,
                          const pki::CertificateChain& issuer_chain,
                          crypto::Drbg& drbg, std::uint64_t serial) {
  const auto& sig_scheme = pki::GetScheme(scheme);
  const crypto::SchnorrKeyPair key = sig_scheme.GenerateKeyPair(drbg);
  std::vector<std::string> sans(domains.begin() + 1, domains.end());
  const pki::Certificate leaf =
      issuer.IssueLeaf(domains.front(), std::move(sans), key.public_key,
                       not_before, not_after, drbg, serial);
  Credential credential;
  credential.chain.push_back(leaf);
  for (const auto& cert : issuer_chain) credential.chain.push_back(cert);
  credential.private_key = key.private_key;
  return credential;
}

}  // namespace tlsharm::server
