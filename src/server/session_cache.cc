#include "server/session_cache.h"

namespace tlsharm::server {

void SessionCache::EvictExpired(SimTime now) {
  while (!insertion_order_.empty()) {
    const auto it = entries_.find(insertion_order_.front());
    if (it == entries_.end()) {
      // Entry was overwritten or already removed.
      insertion_order_.pop_front();
      continue;
    }
    if (it->second.created + lifetime_ > now) break;
    entries_.erase(it);
    insertion_order_.pop_front();
  }
}

void SessionCache::Insert(const Bytes& session_id, CachedSession session,
                          SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  EvictExpired(now);
  while (entries_.size() >= capacity_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
  entries_[session_id] = std::move(session);
  insertion_order_.push_back(session_id);
  ++inserts_;
}

std::optional<CachedSession> SessionCache::Lookup(const Bytes& session_id,
                                                  SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  EvictExpired(now);
  ++lookups_;
  const auto it = entries_.find(session_id);
  if (it == entries_.end()) return std::nullopt;
  // Exclusive expiry: a 5-minute cache no longer honours a session exactly
  // 5 minutes old (so the paper's 5-minute retry fails, landing the domain
  // in the "< 5 minutes" bucket of Figure 1).
  if (it->second.created + lifetime_ <= now) return std::nullopt;
  ++hits_;
  return it->second;
}

void SessionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

}  // namespace tlsharm::server
