#include "server/stek_manager.h"

#include <algorithm>
#include <limits>

namespace tlsharm::server {

StekManager::StekManager(StekPolicy policy, tls::TicketCodecKind codec,
                         ByteView seed)
    : policy_(policy), codec_(codec), drbg_(seed) {
  RotateLocked(0);
}

void StekManager::ScheduleForcedRotation(SimTime when) {
  std::lock_guard<std::mutex> lock(mu_);
  forced_.insert(std::upper_bound(forced_.begin() +
                                      static_cast<std::ptrdiff_t>(next_forced_),
                                  forced_.end(), when),
                 when);
}

void StekManager::ScheduleRestarts(SimTime first, SimTime every) {
  if (every <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  restarts_.push_back(RestartSchedule{first, every});
}

void StekManager::RotateLocked(SimTime now) {
  if (!epochs_.empty() && epochs_.back().retired_at == kNotRetired) {
    epochs_.back().retired_at = now;
  }
  const std::size_t key_name_size =
      tls::GetTicketCodec(codec_).KeyNameSize();
  epochs_.push_back(KeyEpoch{
      .stek = tls::Stek::Generate(drbg_, key_name_size),
      .issued_from = now,
      .retired_at = kNotRetired,
  });
  ++generations_;
  PruneLocked();
}

void StekManager::PruneLocked() {
  // Keep one day of slack behind the watermark: concurrent shards all work
  // inside the same scan day, so no live query (or reference handed out to
  // one) can be further behind than that.
  const SimTime cutoff = watermark_ - kDay;
  while (epochs_.size() > 1 && epochs_.front().retired_at != kNotRetired &&
         epochs_.front().retired_at + policy_.previous_key_acceptance <
             cutoff) {
    epochs_.pop_front();
  }
}

void StekManager::AdvanceToLocked(SimTime now) {
  if (now <= watermark_) return;
  constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();
  for (;;) {
    // Next due event across every source, applied in chronological order so
    // the epoch sequence is independent of which caller advances the clock.
    SimTime next = kNoEvent;
    if (policy_.rotation == StekRotation::kInterval &&
        policy_.rotation_interval > 0) {
      next = epochs_.back().issued_from + policy_.rotation_interval;
    }
    if (next_forced_ < forced_.size()) {
      next = std::min(next, forced_[next_forced_]);
    }
    if (policy_.rotation == StekRotation::kPerProcess) {
      for (const RestartSchedule& r : restarts_) next = std::min(next, r.next);
    }
    if (next > now) break;
    while (next_forced_ < forced_.size() && forced_[next_forced_] <= next) {
      ++next_forced_;
    }
    if (policy_.rotation == StekRotation::kPerProcess) {
      for (RestartSchedule& r : restarts_) {
        while (r.next <= next) r.next += r.every;
      }
    }
    // Same-instant events coalesce into one rotation.
    if (epochs_.back().issued_from < next) RotateLocked(next);
  }
  watermark_ = now;
  PruneLocked();
}

const StekManager::KeyEpoch& StekManager::EpochAtLocked(SimTime now) const {
  // Last epoch with issued_from <= now; epochs past `now` exist when another
  // thread has advanced the watermark further than this query.
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    if (it->issued_from <= now) return *it;
  }
  return epochs_.front();
}

const tls::Stek& StekManager::IssuingStek(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceToLocked(now);
  return EpochAtLocked(now).stek;
}

std::vector<const tls::Stek*> StekManager::AcceptableSteks(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceToLocked(now);
  std::vector<const tls::Stek*> out;
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    if (it->issued_from > now) continue;  // not yet issuing at `now`
    if (it->retired_at == kNotRetired ||
        it->retired_at + policy_.previous_key_acceptance >= now) {
      out.push_back(&it->stek);
    }
  }
  return out;
}

void StekManager::ForceRotateLocked(SimTime now) {
  if (epochs_.back().issued_from >= now) {
    // An epoch already starts at (or after) `now`: redraw its key in place
    // so the rotation still visibly changes the issuing key.
    const std::size_t key_name_size =
        tls::GetTicketCodec(codec_).KeyNameSize();
    epochs_.back().stek = tls::Stek::Generate(drbg_, key_name_size);
    ++generations_;
    return;
  }
  RotateLocked(now);
}

void StekManager::OnProcessRestart(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceToLocked(now);
  if (policy_.rotation == StekRotation::kPerProcess) ForceRotateLocked(now);
  // kStatic and kInterval keys live outside the process; restart is a no-op.
}

void StekManager::ForceRotate(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceToLocked(now);
  ForceRotateLocked(now);
}

std::uint64_t StekManager::Rotations() {
  std::lock_guard<std::mutex> lock(mu_);
  return generations_ - 1;  // the constructor's initial key is not a rotation
}

std::size_t StekManager::LiveEpochs() {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_.size();
}

SimTime StekManager::IssuingEpochStart(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceToLocked(now);
  return EpochAtLocked(now).issued_from;
}

}  // namespace tlsharm::server
