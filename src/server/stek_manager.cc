#include "server/stek_manager.h"

namespace tlsharm::server {

StekManager::StekManager(StekPolicy policy, tls::TicketCodecKind codec,
                         ByteView seed)
    : policy_(policy), codec_(codec), drbg_(seed) {
  Rotate(0);
}

void StekManager::Rotate(SimTime now) {
  if (!epochs_.empty() && epochs_.back().retired_at == kNotRetired) {
    epochs_.back().retired_at = now;
  }
  const std::size_t key_name_size =
      tls::GetTicketCodec(codec_).KeyNameSize();
  epochs_.push_back(KeyEpoch{
      .stek = tls::Stek::Generate(drbg_, key_name_size),
      .issued_from = now,
      .retired_at = kNotRetired,
  });
  // Drop keys that can never be accepted again to bound memory.
  while (epochs_.size() > 1 &&
         epochs_.front().retired_at != kNotRetired &&
         epochs_.front().retired_at + policy_.previous_key_acceptance < now) {
    epochs_.erase(epochs_.begin());
  }
}

void StekManager::MaybeRotate(SimTime now) {
  if (policy_.rotation != StekRotation::kInterval) return;
  // Catch up on all rotations due since the last one (scans may jump days).
  while (epochs_.back().issued_from + policy_.rotation_interval <= now) {
    Rotate(epochs_.back().issued_from + policy_.rotation_interval);
  }
}

const tls::Stek& StekManager::IssuingStek(SimTime now) {
  MaybeRotate(now);
  return epochs_.back().stek;
}

std::vector<const tls::Stek*> StekManager::AcceptableSteks(SimTime now) {
  MaybeRotate(now);
  std::vector<const tls::Stek*> out;
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    if (it->retired_at == kNotRetired ||
        it->retired_at + policy_.previous_key_acceptance >= now) {
      out.push_back(&it->stek);
    }
  }
  return out;
}

void StekManager::OnProcessRestart(SimTime now) {
  if (policy_.rotation == StekRotation::kPerProcess) {
    Rotate(now);
  }
  // kStatic and kInterval keys live outside the process; restart is a no-op.
}

void StekManager::ForceRotate(SimTime now) { Rotate(now); }

}  // namespace tlsharm::server
