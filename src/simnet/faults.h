// Deterministic fault injection for the simulated Internet.
//
// The paper's nine-week study ran against the real Internet, where
// connections are refused, reset mid-handshake, time out, and return
// garbage; §3 explicitly accounts for unreachable hosts when sizing the
// datasets. This module recreates those failure modes so the scanner
// pipeline can be exercised — and hardened — against them:
//
//   - connection refusal (fast TCP RST at connect time),
//   - slow-host timeouts (the connect never completes),
//   - mid-handshake resets,
//   - truncated or bit-corrupted server flights,
//   - transient multi-hour outages (a whole domain goes dark).
//
// Every decision is a pure function of (seed, domain, time), so a faulty
// study replays bit-for-bit from its seed — the same property the rest of
// the simulation guarantees.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "tls/transport.h"
#include "util/bytes.h"
#include "util/sim_clock.h"

namespace tlsharm::simnet {

struct DomainInfo;  // internet.h; faults.cc includes the full definition

// Per-cohort fault rates; all rates are per connection attempt except the
// outage knobs, which describe whole-domain dark windows.
struct FaultProfile {
  double refuse_rate = 0.0;    // TCP RST at connect time
  double timeout_rate = 0.0;   // slow host: the connect never completes
  double reset_rate = 0.0;     // TCP reset mid-handshake
  double truncate_rate = 0.0;  // server flight cut short on the wire
  double corrupt_rate = 0.0;   // server flight with flipped bits
  // With probability `outage_rate` per (domain, period) the domain is
  // unreachable for one contiguous `outage_duration` window inside that
  // period — day-to-day churn's "host went dark for a few hours".
  double outage_rate = 0.0;
  SimTime outage_period = 7 * kDay;
  SimTime outage_duration = 6 * kHour;
};

// A fault model for a whole population: a base profile plus overrides for
// specific operators (flaky shared-hosting archetypes) or ASes (a troubled
// network).
struct FaultSpec {
  bool enabled = false;
  FaultProfile base;
  std::map<std::string, FaultProfile> operator_overrides;  // by operator_name
  std::map<std::uint32_t, FaultProfile> as_overrides;      // by AS number
};

// The acceptance-test mix: roughly 5% of connection attempts hit a
// refusal/timeout/reset, with a small truncation/corruption and outage
// tail. `scale` multiplies every rate (clamped to [0,1]).
FaultSpec DefaultFaultSpec(double scale = 1.0);

// Reads the TLSHARM_FAULTS environment knob: unset, empty or "0" disables
// faults; any positive number scales DefaultFaultSpec (1 = the ~5% mix).
FaultSpec FaultSpecFromEnv();

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kRefused,
  kTimeout,
  kReset,
  kTruncate,
  kCorrupt,
  kOutage,
};

inline constexpr int kFaultKinds = 7;

std::string_view ToString(FaultKind kind);

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  // Deterministic entropy driving the truncation point / bit flips.
  std::uint64_t payload_seed = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, std::uint64_t seed);

  bool Enabled() const { return spec_.enabled; }

  // The fault (if any) afflicting a connection to `domain` opened at `now`.
  // Pure in (seed, domain name, now): two connects to the same domain at
  // the same instant share one fate, and the whole study replays.
  FaultDecision Decide(const DomainInfo& domain, SimTime now) const;

  // Hot-path variant: every decision depends on the domain only through
  // StableHash64(name) and its resolved profile, so callers that keep both
  // precomputed (the scan engine's Internet does, per domain) skip the
  // per-connect string hash and override-map lookups. Bit-identical to
  // Decide(domain, now).
  FaultDecision Decide(std::uint64_t name_hash, const FaultProfile& profile,
                       SimTime now) const;

  // Whether the domain sits inside one of its dark windows at `now`.
  bool InOutage(const DomainInfo& domain, SimTime now) const;
  bool InOutage(std::uint64_t name_hash, const FaultProfile& profile,
                SimTime now) const;

  // Profile resolution: operator override > AS override > base.
  const FaultProfile& ProfileFor(const DomainInfo& domain) const;
  // Field-wise resolution for callers without a materialized DomainInfo.
  // The returned reference lives as long as the injector.
  const FaultProfile& ResolveProfile(const std::string& operator_name,
                                     std::uint32_t as_number) const;

  // Faults of `kind` decided so far (cumulative over the injector's
  // lifetime). Counted with relaxed atomics so concurrent scan shards never
  // contend; the TOTAL is still deterministic for a fixed workload, because
  // the multiset of (domain, time) connection attempts — and Decide is pure
  // in those — does not depend on thread count. Read only after workers
  // join (the observability merge step).
  std::uint64_t InjectedCount(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

 private:
  FaultSpec spec_;
  std::uint64_t seed_;
  mutable std::array<std::atomic<std::uint64_t>, kFaultKinds> injected_{};
};

// ServerConnection decorator realizing the mid-handshake faults the
// injector decided: a reset consumes the client flight and fails with
// tls::kResetErrorDetail; truncation/corruption mangle the server's first
// flight so the client's parsers must fail closed.
class FaultyConnection final : public tls::ServerConnection {
 public:
  FaultyConnection(std::unique_ptr<tls::ServerConnection> inner,
                   FaultDecision fault)
      : inner_(std::move(inner)), fault_(fault) {}

  Bytes OnClientFlight(ByteView flight) override;
  Bytes OnApplicationRecord(ByteView record) override;
  bool Failed() const override;
  std::string_view ErrorDetail() const override;

 private:
  std::unique_ptr<tls::ServerConnection> inner_;
  FaultDecision fault_;
  bool reset_tripped_ = false;
  bool fault_spent_ = false;  // truncate/corrupt hit only the first flight
};

}  // namespace tlsharm::simnet
