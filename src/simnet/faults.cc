#include "simnet/faults.h"

#include <algorithm>
#include <cstdlib>

#include "simnet/internet.h"
#include "util/rng.h"

namespace tlsharm::simnet {
namespace {

// Domain separation salts for the independent decision streams.
constexpr std::uint64_t kConnectSalt = 0xfa17c011ec7e0ULL;
constexpr std::uint64_t kOutageSalt = 0x07a6e0ff11e5ULL;

std::uint64_t Mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL);
  return SplitMix64(state);
}

double UnitDraw(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

FaultProfile Scaled(double refuse, double timeout, double reset,
                    double truncate, double corrupt, double outage,
                    double scale) {
  FaultProfile p;
  p.refuse_rate = Clamp01(refuse * scale);
  p.timeout_rate = Clamp01(timeout * scale);
  p.reset_rate = Clamp01(reset * scale);
  p.truncate_rate = Clamp01(truncate * scale);
  p.corrupt_rate = Clamp01(corrupt * scale);
  p.outage_rate = Clamp01(outage * scale);
  return p;
}

}  // namespace

FaultSpec DefaultFaultSpec(double scale) {
  FaultSpec spec;
  spec.enabled = scale > 0;
  // ~5% refusal/reset/timeout mix plus a malformed-flight and outage tail.
  spec.base = Scaled(0.020, 0.015, 0.012, 0.004, 0.003, 0.010, scale);
  // Cheap shared hosting is flakier than the big operators.
  spec.operator_overrides["transient-host"] =
      Scaled(0.040, 0.030, 0.020, 0.008, 0.006, 0.030, scale);
  spec.operator_overrides["untrusted-host"] =
      Scaled(0.030, 0.025, 0.015, 0.006, 0.004, 0.020, scale);
  return spec;
}

FaultSpec FaultSpecFromEnv() {
  const char* env = std::getenv("TLSHARM_FAULTS");
  if (env == nullptr || *env == '\0') return {};
  const double scale = std::atof(env);
  if (scale <= 0) return {};
  return DefaultFaultSpec(scale);
}

std::string_view ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kRefused: return "refused";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kReset: return "reset";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kOutage: return "outage";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {}

const FaultProfile& FaultInjector::ResolveProfile(
    const std::string& operator_name, std::uint32_t as_number) const {
  const auto op = spec_.operator_overrides.find(operator_name);
  if (op != spec_.operator_overrides.end()) return op->second;
  const auto as = spec_.as_overrides.find(as_number);
  if (as != spec_.as_overrides.end()) return as->second;
  return spec_.base;
}

const FaultProfile& FaultInjector::ProfileFor(const DomainInfo& domain) const {
  return ResolveProfile(domain.operator_name, domain.as_number);
}

bool FaultInjector::InOutage(std::uint64_t name_hash,
                             const FaultProfile& profile, SimTime now) const {
  if (profile.outage_rate <= 0 || profile.outage_period <= 0 ||
      profile.outage_duration <= 0 || now < 0) {
    return false;
  }
  const auto period = static_cast<std::uint64_t>(profile.outage_period);
  const std::uint64_t window = static_cast<std::uint64_t>(now) / period;
  const std::uint64_t h = Mix(seed_ ^ kOutageSalt, name_hash ^ window);
  if (UnitDraw(h) >= profile.outage_rate) return false;
  // The dark interval starts at a deterministic offset inside the period.
  const auto duration = static_cast<std::uint64_t>(
      std::min(profile.outage_duration, profile.outage_period));
  std::uint64_t offset_state = h;
  const std::uint64_t offset =
      duration >= period ? 0 : SplitMix64(offset_state) % (period - duration);
  const std::uint64_t start = window * period + offset;
  const auto t = static_cast<std::uint64_t>(now);
  return t >= start && t < start + duration;
}

bool FaultInjector::InOutage(const DomainInfo& domain, SimTime now) const {
  return InOutage(StableHash64(domain.name), ProfileFor(domain), now);
}

FaultDecision FaultInjector::Decide(std::uint64_t name_hash,
                                    const FaultProfile& profile,
                                    SimTime now) const {
  FaultDecision decision;
  if (!spec_.enabled) return decision;
  if (InOutage(name_hash, profile, now)) {
    decision.kind = FaultKind::kOutage;
    injected_[static_cast<std::size_t>(decision.kind)].fetch_add(
        1, std::memory_order_relaxed);
    return decision;
  }
  std::uint64_t h = Mix(seed_ ^ kConnectSalt,
                        name_hash ^ static_cast<std::uint64_t>(now));
  const double u = UnitDraw(h);
  double threshold = profile.refuse_rate;
  if (u < threshold) {
    decision.kind = FaultKind::kRefused;
  } else if (u < (threshold += profile.timeout_rate)) {
    decision.kind = FaultKind::kTimeout;
  } else if (u < (threshold += profile.reset_rate)) {
    decision.kind = FaultKind::kReset;
  } else if (u < (threshold += profile.truncate_rate)) {
    decision.kind = FaultKind::kTruncate;
  } else if (u < (threshold += profile.corrupt_rate)) {
    decision.kind = FaultKind::kCorrupt;
  }
  decision.payload_seed = SplitMix64(h);
  if (decision.kind != FaultKind::kNone) {
    injected_[static_cast<std::size_t>(decision.kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return decision;
}

FaultDecision FaultInjector::Decide(const DomainInfo& domain,
                                    SimTime now) const {
  if (!spec_.enabled) return {};
  return Decide(StableHash64(domain.name), ProfileFor(domain), now);
}

Bytes FaultyConnection::OnClientFlight(ByteView flight) {
  if (reset_tripped_) return {};
  if (fault_.kind == FaultKind::kReset) {
    // The server never sees the flight; the client sees a torn-down socket.
    reset_tripped_ = true;
    return {};
  }
  Bytes response = inner_->OnClientFlight(flight);
  if (fault_spent_ || response.empty()) return response;
  fault_spent_ = true;  // wire damage afflicts the first server flight only
  if (fault_.kind == FaultKind::kTruncate) {
    // Cut anywhere strictly inside the flight (possibly to zero bytes).
    response.resize(fault_.payload_seed % response.size());
    if (response.empty()) {
      // A fully-swallowed flight presents as a reset, not a clean close.
      reset_tripped_ = true;
    }
  } else if (fault_.kind == FaultKind::kCorrupt) {
    std::uint64_t state = fault_.payload_seed;
    const int flips = 1 + static_cast<int>(SplitMix64(state) % 8);
    for (int i = 0; i < flips; ++i) {
      const std::uint64_t r = SplitMix64(state);
      response[r % response.size()] ^=
          static_cast<std::uint8_t>(1u << ((r >> 32) % 8));
    }
  }
  return response;
}

Bytes FaultyConnection::OnApplicationRecord(ByteView record) {
  if (reset_tripped_) return {};
  return inner_->OnApplicationRecord(record);
}

bool FaultyConnection::Failed() const {
  return reset_tripped_ || inner_->Failed();
}

std::string_view FaultyConnection::ErrorDetail() const {
  if (reset_tripped_) return tls::kResetErrorDetail;
  return inner_->ErrorDetail();
}

}  // namespace tlsharm::simnet
