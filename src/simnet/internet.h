// The simulated HTTPS Internet: domains, DNS, AS/IP topology, SSL
// terminators, churn, and scheduled maintenance (restarts, manual STEK
// rotations).
//
// Scanners talk to it exactly the way the paper's tool-chain talked to the
// real Internet: resolve a domain, open a connection, run TLS. Everything
// the scanner can observe comes out of real handshakes against the
// terminator fleet.
//
// Scaling (DESIGN.md "Scaling" has the full contract): construction is a
// BLUEPRINT pass — it fixes every random draw (ranks, configs, churn,
// reuse coins) and lays the population out as a struct-of-arrays table
// (one small column per attribute, names regenerated from compact
// patterns) instead of per-domain heap objects. Terminators are pure
// functions of (world seed, terminator id): their secret stores are
// derived once at construction and stay resident (the session cache is
// the only order-dependent mutable state in the system), while the
// expensive part — credentials, SNI maps — is materialized on demand in
// FleetMode::kLazy into a bounded working set and evicted freely. A
// million-domain world therefore costs megabytes until it is probed, and
// a bounded budget thereafter.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pki/ca.h"
#include "pki/root_store.h"
#include "server/terminator.h"
#include "simnet/faults.h"
#include "simnet/spec.h"
#include "tls/transport.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tlsharm::simnet {

using DomainId = std::uint32_t;
using TerminatorId = std::uint32_t;

struct DomainInfo {
  std::string name;
  int rank = 0;                     // average Alexa rank (1-based)
  std::string operator_name;
  std::uint32_t as_number = 0;
  std::vector<TerminatorId> endpoints;  // A records (terminators)
  bool https = false;               // listens on 443 at all
  bool trusted_cert = false;        // chain validates to the root store
  bool stable = true;               // in the Top-N list every day
  double presence_prob = 1.0;       // daily presence for transient domains
  bool mx_google = false;           // MX points at Google's mail servers
};

class Internet {
 public:
  // Builds the world; deterministic in (spec, seed).
  Internet(const PopulationSpec& spec, std::uint64_t seed);
  ~Internet();

  // --- population --------------------------------------------------------
  std::size_t DomainCount() const { return table_.flags.size(); }
  // Materializes the full record for `id`. The table is columnar, so this
  // assembles name/endpoints/operator strings per call — analysis-path
  // convenience, not a hot-path accessor (the scanner uses the column
  // accessors below).
  DomainInfo GetDomain(DomainId id) const;
  std::optional<DomainId> FindDomain(const std::string& name) const;
  const pki::RootStore& NssRootStore() const { return root_store_; }

  // Column accessors: O(1), no allocation.
  bool DomainHttps(DomainId id) const { return (table_.flags[id] & kHttps) != 0; }
  bool DomainTrusted(DomainId id) const {
    return (table_.flags[id] & kTrusted) != 0;
  }
  bool DomainStable(DomainId id) const {
    return (table_.flags[id] & kStable) != 0;
  }
  int DomainRank(DomainId id) const { return table_.rank[id]; }
  std::uint32_t DomainAs(DomainId id) const { return table_.as_number[id]; }
  std::uint64_t DomainNameHash(DomainId id) const {
    return table_.name_hash[id];
  }
  std::size_t DomainEndpointCount(DomainId id) const {
    return table_.endpoint_count[id];
  }
  TerminatorId DomainEndpoint(DomainId id, std::size_t i) const {
    return table_.endpoint_lo[id] + static_cast<TerminatorId>(i);
  }
  const std::string& DomainOperator(DomainId id) const {
    return operator_names_[table_.op[id]];
  }
  // Regenerates the domain's name into `out` (capacity reuse across calls
  // — the per-probe SNI path), or as a fresh string.
  void AssignDomainName(DomainId id, std::string* out) const;
  std::string DomainName(DomainId id) const;

  // Domains present in the simulated Top-N list on `day` (0-based).
  bool InTopListOnDay(DomainId id, int day) const;

  // --- connectivity ------------------------------------------------------
  // How a connection attempt ended before TLS could start. kOk carries a
  // live connection (possibly fault-decorated); everything else is a
  // connect-time failure.
  enum class ConnectStatus : std::uint8_t {
    kOk = 0,
    kNoHttps,  // the domain does not listen on 443 at all
    kRefused,  // fast TCP RST (injected fault)
    kTimeout,  // slow host, the connect never completed (injected fault)
    kOutage,   // the domain is inside a transient dark window
  };

  struct ConnectOutcome {
    std::unique_ptr<tls::ServerConnection> connection;  // set iff kOk
    ConnectStatus status = ConnectStatus::kNoHttps;
  };

  // Opens a TCP/443 connection. Load-balancer selection of the endpoint is
  // deterministic per (domain, day) with occasional off-affinity picks —
  // the scan jitter of §4.3. Applies due maintenance (restarts, manual
  // rotations) lazily. When a fault spec is installed, connect-time faults
  // surface in the status and mid-handshake faults ride along inside a
  // FaultyConnection decorator.
  ConnectOutcome ConnectDetailed(DomainId id, SimTime now);

  // Legacy binary view of ConnectDetailed: nullptr on any failure.
  std::unique_ptr<tls::ServerConnection> Connect(DomainId id, SimTime now);

  // Installs (or, with spec.enabled == false, removes) a fault model. The
  // injector derives its randomness from the world seed, so a faulty study
  // replays bit-for-bit from (spec, seed).
  void SetFaultSpec(const FaultSpec& spec);
  bool FaultsEnabled() const {
    return fault_injector_ != nullptr && fault_injector_->Enabled();
  }
  const FaultInjector* Faults() const { return fault_injector_.get(); }

  // The terminator Connect would use at `now` (for topology queries).
  TerminatorId EndpointFor(DomainId id, SimTime now) const;

  // Direct terminator access (attack module, tests). In lazy mode this
  // materializes the terminator; the reference stays valid while the
  // Internet lives ONLY in materialized mode — lazy-fleet callers that
  // outlive the call must hold TerminatorHandle instead.
  server::SslTerminator& Terminator(TerminatorId id);
  // Pinning accessor: the shared_ptr keeps a lazily materialized
  // terminator alive across evictions.
  std::shared_ptr<server::SslTerminator> TerminatorHandle(TerminatorId id);
  std::size_t TerminatorCount() const { return term_meta_.size(); }

  // Resident per-terminator state — live regardless of fleet mode and of
  // whether the terminator object itself is materialized. These are the
  // accessors the fleet sweep (obs/fleet.cc) and the adversary engine use
  // so an end-of-study pass over a million-domain fleet never forces
  // materialization.
  server::SessionCache& CacheOf(TerminatorId id) { return *shared_[id].cache; }
  server::StekManager& SteksOf(TerminatorId id) { return *shared_[id].steks; }
  server::KexCache& KexOf(TerminatorId id) { return *shared_[id].kex; }
  const server::ServerConfig& TerminatorConfigOf(TerminatorId id) const {
    return term_meta_[id].config;
  }
  const std::string& TerminatorIdOf(TerminatorId id) const {
    return term_meta_[id].id;
  }

  // Lazy-fleet observability: how many terminators are currently
  // materialized, bytes they hold, and cumulative (re)materializations.
  struct FleetStats {
    bool lazy = false;
    std::size_t resident = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t budget_bytes = 0;
    std::uint64_t materializations = 0;
    std::uint64_t evictions = 0;
  };
  FleetStats Fleet() const;

  // IP address (opaque id) of a terminator; co-located domains share it.
  std::uint32_t IpOf(TerminatorId id) const;

  // The terminator's process-restart timetable, fixed at construction:
  // restarts happen at first + k * every for k = 0, 1, ... (every == 0
  // means the process never restarts). This is the schedule the adversary
  // engine replays to model session-cache flushes from the capture archive
  // alone — the live `next_restart` cursor advances lazily with probe
  // traffic, so it is NOT a safe source for offline timeline modeling.
  struct RestartSchedule {
    SimTime first = 0;
    SimTime every = 0;  // 0 = never restarts
  };
  RestartSchedule RestartScheduleOf(TerminatorId id) const;

  // Domains whose A records include an endpoint with this IP.
  std::vector<DomainId> DomainsOnIp(std::uint32_t ip) const;
  std::vector<DomainId> DomainsInAs(std::uint32_t as_number) const;

  // MX lookup: true when mail for the domain is handled by Google (§7.2).
  bool MxPointsAtGoogle(DomainId id) const {
    return (table_.flags[id] & kMxGoogle) != 0;
  }

 private:
  // --- columnar population table -----------------------------------------
  // Domain names follow six generator patterns, all derivable from the
  // domain's interned operator name plus a small ordinal. Regeneration is
  // what keeps a million-domain table at a few dozen bytes per domain
  // instead of a heap string each.
  enum NameKind : std::uint8_t {
    kNamed = 0,   // the operator intern IS the name (hand-named domains)
    kSite,        // "site{num}.{operator}.sim"  (named service groups)
    kWww,         // "www{num}.{operator}.sim"   (operator archetypes)
    kSelf,        // "self{num}.untrusted.sim"
    kPlain,       // "plain{num}.nohttps.sim"
    kTransient,   // "t{num}.transient.sim"
  };
  enum Flag : std::uint8_t {
    kHttps = 1,
    kTrusted = 2,
    kStable = 4,
    kMxGoogle = 8,
  };
  struct DomainTable {
    std::vector<std::uint64_t> name_hash;   // StableHash64(name), precomputed
    std::vector<std::uint32_t> rank;
    std::vector<std::uint32_t> as_number;
    std::vector<std::uint8_t> flags;
    std::vector<double> presence;           // daily presence probability
    std::vector<TerminatorId> endpoint_lo;  // endpoints are a contiguous
    std::vector<std::uint16_t> endpoint_count;  // ... terminator-id range
    std::vector<std::uint16_t> op;          // index into operator_names_
    std::vector<std::uint8_t> name_kind;
    std::vector<std::uint32_t> name_num;
  };

  // --- terminator blueprint ----------------------------------------------
  // One SAN certificate to issue when the terminator materializes: the
  // credential covers domains [domain_lo, domain_lo + count) in table
  // order. Credential randomness is a derived DRBG of (terminator id,
  // world seed, ordinal), so materialization order is irrelevant.
  struct CredPlan {
    DomainId domain_lo = 0;
    std::uint16_t count = 0;
    bool trusted = true;
  };
  struct TermMeta {
    std::string id;
    server::ServerConfig config;
    std::uint32_t plan_lo = 0;    // slice of cred_plans_
    std::uint32_t plan_count = 0;
  };

  // Maintenance bookkeeping per terminator. STEK rotations, KEX clears and
  // their restart-driven counterparts are registered as schedules inside
  // the managers themselves at construction (they apply events
  // time-indexed, safely under concurrency); what remains here is the lazy
  // session-cache flush on process restart, guarded by a per-terminator
  // mutex. Scan observations never depend on cache contents (fresh probes
  // carry no resumption state), so the flush's lazy timing cannot perturb
  // the deterministic scan output.
  struct Maintenance {
    SimTime restart_every = 0;
    SimTime first_restart = 0;  // construction-time phase, never mutated
    SimTime next_restart = 0;
    std::vector<SimTime> forced_stek_rotations;   // absolute times, sorted
    std::vector<SimTime> forced_kex_rotations;
    std::mutex mu;  // guards next_restart after construction
  };

  void ApplyMaintenance(TerminatorId id, SimTime now);
  // Installs the collected maintenance schedules into the STEK managers and
  // KEX caches once every terminator (and shared-state swap) exists.
  void RegisterSchedules();

  std::uint16_t InternOperator(const std::string& name);
  DomainId AddDomainRow(std::uint8_t kind, std::uint32_t num,
                        std::uint64_t hash, int rank, std::uint16_t op,
                        std::uint32_t as_number, std::uint8_t flags,
                        double presence, TerminatorId endpoint_lo,
                        std::uint16_t endpoint_count);

  // Builds (or fetches) the terminator object. Materialized mode resolves
  // to a plain slot read; lazy mode derives the terminator — credentials
  // and all — from the blueprint under a striped lock, charges it against
  // the byte budget, and evicts round-robin past it.
  std::shared_ptr<server::SslTerminator> Materialize(TerminatorId id);
  std::shared_ptr<server::SslTerminator> BuildTerminator(TerminatorId id) const;
  void EvictOverBudget(TerminatorId keep);  // fleet_mu_ held

  // Lazily built topology index (analysis paths only).
  void EnsureTopologyIndex() const;

  DomainTable table_;
  std::vector<std::string> operator_names_;   // interned, kept small

  std::vector<TermMeta> term_meta_;
  std::vector<CredPlan> cred_plans_;
  std::vector<server::SharedSecretState> shared_;  // resident secret state
  std::deque<Maintenance> maintenance_;  // deque: Maintenance is immovable

  // Terminator working set. Materialized mode fills every slot at
  // construction and never touches the locks again; lazy mode populates on
  // demand. Slots are atomic shared_ptrs guarded by striped mutexes for
  // the build path; readers take a shared_ptr copy (their pin).
  bool lazy_ = false;
  std::uint64_t budget_bytes_ = 0;
  std::vector<std::shared_ptr<server::SslTerminator>> slots_;
  mutable std::mutex fleet_mu_;
  // Build stripes: serialize duplicate builds of one terminator without
  // holding fleet_mu_ through credential issuance.
  static constexpr std::size_t kBuildStripes = 64;
  mutable std::array<std::mutex, kBuildStripes> build_mu_;
  std::uint64_t resident_bytes_ = 0;
  std::size_t evict_cursor_ = 0;
  std::atomic<std::uint64_t> materializations_{0};
  std::atomic<std::uint64_t> evictions_{0};

  // CA material kept for on-demand credential issuance (lazy fleets issue
  // certificates long after construction).
  struct Pki;
  std::unique_ptr<Pki> pki_;

  pki::RootStore root_store_;
  std::uint64_t seed_;
  std::unique_ptr<FaultInjector> fault_injector_;
  // Per-domain resolved fault profile (rebuilt by SetFaultSpec): the
  // connect path pays no override-map lookups.
  std::vector<const FaultProfile*> fault_profile_of_;

  // Sorted (key, domain) topology indexes, built on first use — only the
  // co-location analyses need them, and a million-domain scan should not
  // pay their footprint up front.
  mutable std::once_flag topo_once_;
  mutable std::vector<std::pair<std::uint32_t, DomainId>> ip_index_;
  mutable std::vector<std::pair<std::uint32_t, DomainId>> as_index_;
};

}  // namespace tlsharm::simnet
