// The simulated HTTPS Internet: domains, DNS, AS/IP topology, SSL
// terminators, churn, and scheduled maintenance (restarts, manual STEK
// rotations).
//
// Scanners talk to it exactly the way the paper's tool-chain talked to the
// real Internet: resolve a domain, open a connection, run TLS. Everything
// the scanner can observe comes out of real handshakes against the
// terminator fleet.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pki/ca.h"
#include "pki/root_store.h"
#include "server/terminator.h"
#include "simnet/faults.h"
#include "simnet/spec.h"
#include "tls/transport.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tlsharm::simnet {

using DomainId = std::uint32_t;
using TerminatorId = std::uint32_t;

struct DomainInfo {
  std::string name;
  int rank = 0;                     // average Alexa rank (1-based)
  std::string operator_name;
  std::uint32_t as_number = 0;
  std::vector<TerminatorId> endpoints;  // A records (terminators)
  bool https = false;               // listens on 443 at all
  bool trusted_cert = false;        // chain validates to the root store
  bool stable = true;               // in the Top-N list every day
  double presence_prob = 1.0;       // daily presence for transient domains
  bool mx_google = false;           // MX points at Google's mail servers
};

class Internet {
 public:
  // Builds the world; deterministic in (spec, seed).
  Internet(const PopulationSpec& spec, std::uint64_t seed);

  // --- population --------------------------------------------------------
  std::size_t DomainCount() const { return domains_.size(); }
  const DomainInfo& GetDomain(DomainId id) const { return domains_[id]; }
  std::optional<DomainId> FindDomain(const std::string& name) const;
  const pki::RootStore& NssRootStore() const { return root_store_; }

  // Domains present in the simulated Top-N list on `day` (0-based).
  bool InTopListOnDay(DomainId id, int day) const;

  // --- connectivity ------------------------------------------------------
  // How a connection attempt ended before TLS could start. kOk carries a
  // live connection (possibly fault-decorated); everything else is a
  // connect-time failure.
  enum class ConnectStatus : std::uint8_t {
    kOk = 0,
    kNoHttps,  // the domain does not listen on 443 at all
    kRefused,  // fast TCP RST (injected fault)
    kTimeout,  // slow host, the connect never completed (injected fault)
    kOutage,   // the domain is inside a transient dark window
  };

  struct ConnectOutcome {
    std::unique_ptr<tls::ServerConnection> connection;  // set iff kOk
    ConnectStatus status = ConnectStatus::kNoHttps;
  };

  // Opens a TCP/443 connection. Load-balancer selection of the endpoint is
  // deterministic per (domain, day) with occasional off-affinity picks —
  // the scan jitter of §4.3. Applies due maintenance (restarts, manual
  // rotations) lazily. When a fault spec is installed, connect-time faults
  // surface in the status and mid-handshake faults ride along inside a
  // FaultyConnection decorator.
  ConnectOutcome ConnectDetailed(DomainId id, SimTime now);

  // Legacy binary view of ConnectDetailed: nullptr on any failure.
  std::unique_ptr<tls::ServerConnection> Connect(DomainId id, SimTime now);

  // Installs (or, with spec.enabled == false, removes) a fault model. The
  // injector derives its randomness from the world seed, so a faulty study
  // replays bit-for-bit from (spec, seed).
  void SetFaultSpec(const FaultSpec& spec);
  bool FaultsEnabled() const {
    return fault_injector_ != nullptr && fault_injector_->Enabled();
  }
  const FaultInjector* Faults() const { return fault_injector_.get(); }

  // The terminator Connect would use at `now` (for topology queries).
  TerminatorId EndpointFor(DomainId id, SimTime now) const;

  // Direct terminator access (attack module, tests).
  server::SslTerminator& Terminator(TerminatorId id);
  std::size_t TerminatorCount() const { return terminators_.size(); }

  // IP address (opaque id) of a terminator; co-located domains share it.
  std::uint32_t IpOf(TerminatorId id) const;

  // The terminator's process-restart timetable, fixed at construction:
  // restarts happen at first + k * every for k = 0, 1, ... (every == 0
  // means the process never restarts). This is the schedule the adversary
  // engine replays to model session-cache flushes from the capture archive
  // alone — the live `next_restart` cursor advances lazily with probe
  // traffic, so it is NOT a safe source for offline timeline modeling.
  struct RestartSchedule {
    SimTime first = 0;
    SimTime every = 0;  // 0 = never restarts
  };
  RestartSchedule RestartScheduleOf(TerminatorId id) const;

  // Domains whose A records include an endpoint with this IP.
  std::vector<DomainId> DomainsOnIp(std::uint32_t ip) const;
  std::vector<DomainId> DomainsInAs(std::uint32_t as_number) const;

  // MX lookup: true when mail for the domain is handled by Google (§7.2).
  bool MxPointsAtGoogle(DomainId id) const;

 private:
  // Maintenance bookkeeping per terminator. STEK rotations, KEX clears and
  // their restart-driven counterparts are registered as schedules inside
  // the managers themselves at construction (they apply events
  // time-indexed, safely under concurrency); what remains here is the lazy
  // session-cache flush on process restart, guarded by a per-terminator
  // mutex. Scan observations never depend on cache contents (fresh probes
  // carry no resumption state), so the flush's lazy timing cannot perturb
  // the deterministic scan output.
  struct Maintenance {
    SimTime restart_every = 0;
    SimTime first_restart = 0;  // construction-time phase, never mutated
    SimTime next_restart = 0;
    std::vector<SimTime> forced_stek_rotations;   // absolute times, sorted
    std::vector<SimTime> forced_kex_rotations;
    std::mutex mu;  // guards next_restart after construction
  };

  void ApplyMaintenance(TerminatorId id, SimTime now);
  // Installs the collected maintenance schedules into the STEK managers and
  // KEX caches once every terminator (and shared-state swap) exists.
  void RegisterSchedules();

  std::vector<DomainInfo> domains_;
  std::vector<std::unique_ptr<server::SslTerminator>> terminators_;
  std::deque<Maintenance> maintenance_;  // deque: Maintenance is immovable
  std::vector<std::uint32_t> terminator_ips_;
  std::map<std::string, DomainId> by_name_;
  std::multimap<std::uint32_t, DomainId> by_ip_;
  std::multimap<std::uint32_t, DomainId> by_as_;
  pki::RootStore root_store_;
  std::uint64_t seed_;
  std::unique_ptr<FaultInjector> fault_injector_;
};

}  // namespace tlsharm::simnet
