// Paper-calibrated population specification.
//
// Every constant here traces to a specific observation in the paper:
// server-implementation defaults (§4.1–§4.2), STEK rotation behaviour
// (§4.3), ephemeral-value reuse rates (§4.4, Table 1), service-group sizes
// (Tables 5–7), and the named real-world domains of Tables 2–4.
// EXPERIMENTS.md records how well the synthesized ecosystem matches each
// target.
#include <cstdlib>

#include "simnet/spec.h"

namespace tlsharm::simnet {
namespace {

using server::ServerConfig;
using server::StekRotation;
using tls::CipherSuite;

// Suites: ECDHE > DHE > static (the common ordering); some operators
// disable DHE entirely, matching the 57% DHE success rate (§4.4).
std::vector<CipherSuite> AllSuites() {
  return {CipherSuite::kEcdheWithAes128CbcSha256,
          CipherSuite::kDheWithAes128CbcSha256,
          CipherSuite::kStaticWithAes128CbcSha256};
}

std::vector<CipherSuite> NoDheSuites() {
  return {CipherSuite::kEcdheWithAes128CbcSha256,
          CipherSuite::kStaticWithAes128CbcSha256};
}

// Apache mod_ssl defaults: 5-minute session cache, 3-minute (advertised and
// honoured) tickets, per-process STEK.
ServerConfig ApacheDefault() {
  ServerConfig config;
  config.implementation = "apache";
  config.suite_preference = AllSuites();
  config.session_cache.lifetime = 5 * kMinute;
  config.tickets.lifetime_hint_seconds = 180;
  config.tickets.acceptance_window = 3 * kMinute;
  config.stek.rotation = StekRotation::kPerProcess;
  return config;
}

// Nginx default: issues session IDs but never caches them; tickets on with
// a 3-minute window; per-process STEK.
ServerConfig NginxDefault() {
  ServerConfig config = ApacheDefault();
  config.implementation = "nginx";
  config.session_cache.enabled = false;
  config.session_cache.issue_id_without_cache = true;
  return config;
}

// Microsoft IIS: 10-hour session cache (§4.1), SChannel DPAPI-style
// tickets, no DHE.
ServerConfig IisDefault() {
  ServerConfig config;
  config.implementation = "iis";
  config.suite_preference = NoDheSuites();
  config.session_cache.lifetime = 10 * kHour;
  config.tickets.codec = tls::TicketCodecKind::kSChannel;
  config.tickets.lifetime_hint_seconds = 36000;
  config.tickets.acceptance_window = 10 * kHour;
  config.stek.rotation = StekRotation::kPerProcess;
  return config;
}

// Shared-hosting control panels: moderate cache/ticket windows.
ServerConfig SmallHost(SimTime window) {
  ServerConfig config = ApacheDefault();
  config.implementation = "smallhost";
  config.session_cache.lifetime = window;
  config.tickets.lifetime_hint_seconds =
      static_cast<std::uint32_t>(window);
  config.tickets.acceptance_window = window;
  return config;
}

OperatorSpec CloudFlare() {
  OperatorSpec op;
  op.name = "cloudflare";
  // Two session-cache service groups (Table 5: 30,163 + 15,241) under one
  // STEK group (Table 6: 62,176); ~12.5% of trusted HTTPS domains.
  op.trusted_share = 0.155;
  op.instances = 1;
  op.terminators_per_instance = 12;
  op.subfleets = 2;
  op.subfleet_weights = {2.0, 1.0};  // Table 5's 30,163 vs 15,241 groups
  op.share_cache_across_fleet = true;
  op.share_stek_across_fleet = true;
  op.domains_per_cert = 32;  // CloudFlare's SAN-packed free certs
  ServerConfig config;
  config.implementation = "cloudflare";
  config.suite_preference = NoDheSuites();
  config.session_cache.lifetime = 5 * kMinute;
  // Figure 2's 18-hour step: 54,522 CloudFlare domains.
  config.tickets.lifetime_hint_seconds = 18 * 3600;
  config.tickets.acceptance_window = 18 * kHour;
  // Rotated at least daily (§6.1: largest groups reuse < 24h).
  config.stek.rotation = StekRotation::kInterval;
  config.stek.rotation_interval = kDay;
  config.stek.previous_key_acceptance = 18 * kHour;
  op.config = config;
  return op;
}

// Google web properties: 24h+ session caches (86% of the 0.8% of domains
// resuming >= 24h), 28-hour ticket hint, 14h STEK roll with 28h acceptance
// (§7.2). Shares its STEK with Blogspot via the "google" pool.
OperatorSpec GooglePlex() {
  OperatorSpec op;
  op.name = "googleplex";
  op.trusted_share = 0.013;
  op.instances = 1;
  op.terminators_per_instance = 8;
  // One terminator per sub-fleet: per-GFE-pool session caches (no giant
  // Google cache group in Table 5) without load-balancer flapping breaking
  // the 24h+ resumption window of Figure 1.
  op.subfleets = 8;
  op.share_cache_across_fleet = true;
  op.stek_pool = "google";
  op.domains_per_cert = 16;
  ServerConfig config;
  config.implementation = "gfe";
  config.suite_preference = NoDheSuites();
  config.session_cache.lifetime = 25 * kHour;
  config.tickets.lifetime_hint_seconds = 28 * 3600;
  config.tickets.acceptance_window = 28 * kHour;
  config.stek.rotation = StekRotation::kInterval;
  config.stek.rotation_interval = 14 * kHour;
  config.stek.previous_key_acceptance = 14 * kHour;
  op.config = config;
  op.mx_google_fraction = 1.0;
  return op;
}

// Blogspot: five distinct session-cache service groups (Table 5) with
// multi-hour cache lifetimes (§6.2: medians 4.5h–24h).
OperatorSpec Blogspot() {
  OperatorSpec op = GooglePlex();
  op.name = "blogspot";
  op.trusted_share = 0.014;
  op.terminators_per_instance = 10;
  op.subfleets = 5;
  op.config.session_cache.lifetime = 5 * kHour;
  op.mx_google_fraction = 0.0;
  return op;
}

OperatorSpec Automattic() {
  OperatorSpec op;
  op.name = "automattic";
  // Two cache groups (2,247 + 1,552), one STEK group (4,182).
  op.trusted_share = 0.0097;
  op.instances = 1;
  op.terminators_per_instance = 8;
  op.subfleets = 2;
  op.share_cache_across_fleet = true;
  op.share_stek_across_fleet = true;
  op.domains_per_cert = 8;
  ServerConfig config;
  config.implementation = "automattic";
  config.suite_preference = NoDheSuites();
  config.session_cache.lifetime = kHour;
  config.tickets.lifetime_hint_seconds = 3600;
  config.tickets.acceptance_window = kHour;
  config.stek.rotation = StekRotation::kInterval;
  config.stek.rotation_interval = kDay;
  op.config = config;
  return op;
}

OperatorSpec Shopify() {
  OperatorSpec op;
  op.name = "shopify";
  // STEK group 3,247; session-cache group only 593 (Table 5/6): many
  // sub-fleets with private caches under one key file.
  op.trusted_share = 0.0075;
  op.instances = 1;
  op.terminators_per_instance = 10;
  op.subfleets = 5;
  op.share_cache_across_fleet = true;
  op.share_stek_across_fleet = true;
  op.domains_per_cert = 4;
  ServerConfig config;
  config.implementation = "shopify";
  config.suite_preference = NoDheSuites();
  config.session_cache.lifetime = 30 * kMinute;
  config.tickets.lifetime_hint_seconds = 1800;
  config.tickets.acceptance_window = 30 * kMinute;
  config.stek.rotation = StekRotation::kInterval;
  config.stek.rotation_interval = kDay;
  op.config = config;
  return op;
}

OperatorSpec Tumblr() {
  OperatorSpec op;
  op.name = "tumblr";
  // Three separate ~960-domain STEK groups (Table 6).
  op.trusted_share = 0.0067;
  op.instances = 3;
  op.terminators_per_instance = 3;
  op.share_cache_across_fleet = true;
  op.share_stek_across_fleet = true;
  op.domains_per_cert = 8;
  op.config = SmallHost(30 * kMinute);
  op.config.implementation = "tumblr";
  op.config.stek.rotation = StekRotation::kInterval;
  op.config.stek.rotation_interval = kDay;
  return op;
}

OperatorSpec GoDaddy() {
  OperatorSpec op;
  op.name = "godaddy";
  op.trusted_share = 0.0043;
  op.instances = 1;
  op.terminators_per_instance = 6;
  op.share_cache_across_fleet = false;
  op.share_stek_across_fleet = true;
  op.domains_per_cert = 4;
  op.config = SmallHost(10 * kMinute);
  op.config.implementation = "godaddy";
  op.config.stek.rotation = StekRotation::kInterval;
  op.config.stek.rotation_interval = kDay;
  return op;
}

OperatorSpec AmazonElb() {
  OperatorSpec op = GoDaddy();
  op.name = "amazon-elb";
  op.trusted_share = 0.0035;
  op.config.implementation = "elb";
  return op;
}

// SquareSpace: the largest Diffie-Hellman service group (Table 7, 1,627
// domains) — a fleet-shared reused ECDHE value, rotated on deploys.
OperatorSpec SquareSpace() {
  OperatorSpec op;
  op.name = "squarespace";
  op.trusted_share = 0.0038;
  op.instances = 1;
  op.terminators_per_instance = 4;
  op.share_kex_across_fleet = true;
  op.share_stek_across_fleet = true;
  op.domains_per_cert = 4;
  op.config = SmallHost(10 * kMinute);
  op.config.implementation = "squarespace";
  op.config.stek.rotation = StekRotation::kInterval;
  op.config.stek.rotation_interval = kDay;
  op.ecdhe_reuse = {.reuse_fraction = 1.0, .ttl_mix = {{1.0, 4 * kDay}}};
  op.restart_every = 0;
  return op;
}

OperatorSpec LiveJournal() {
  OperatorSpec op = SquareSpace();
  op.name = "livejournal";
  op.trusted_share = 0.0031;
  op.config.implementation = "livejournal";
  op.ecdhe_reuse = {};
  op.dhe_reuse = {.reuse_fraction = 1.0, .ttl_mix = {{1.0, 5 * kDay}}};
  return op;
}

// Jimdo: ~180-domain single-IP hosting servers reusing one ECDHE value for
// ~2.5 weeks (Table 7 + §5.3/§6.3).
OperatorSpec Jimdo() {
  OperatorSpec op;
  op.name = "jimdo";
  op.trusted_share = 0.00083;  // two ~179-domain groups
  op.instances = 2;
  op.terminators_per_instance = 1;
  op.domains_per_cert = 8;
  op.config = SmallHost(10 * kMinute);
  op.config.implementation = "jimdo";
  op.ecdhe_reuse = {.reuse_fraction = 1.0, .ttl_mix = {{1.0, 18 * kDay}}};
  return op;
}

// The main body of the web: default-configured Apache/Nginx/IIS plus
// shared hosting, split by maintenance cadence to produce the paper's STEK
// span distribution (§4.3: 41% daily, 4% 2–6d, 12% 7–29d, 10% 30d+ of
// trusted domains — tuned against Fig. 3/Fig. 8).
std::vector<OperatorSpec> GenericWeb() {
  std::vector<OperatorSpec> ops;

  // Shares are tuned so that, after mixing with the named operators above
  // and the transient tail, Table 1's support rates emerge: ~59% of trusted
  // domains accept a DHE-only offer, ~89% complete ECDHE, ~81% issue
  // tickets (23% of the *stable* cohort never issue, §4.3).
  auto add = [&ops](const char* name, double share, int instances,
                    ServerConfig config, SimTime restart,
                    ReuseMix dhe = {}, ReuseMix ecdhe = {}) {
    OperatorSpec op;
    op.name = name;
    op.trusted_share = share;
    op.instances = instances;
    op.config = std::move(config);
    op.restart_every = restart;
    op.dhe_reuse = std::move(dhe);
    op.ecdhe_reuse = std::move(ecdhe);
    op.mx_google_fraction = 0.09;
    ops.push_back(std::move(op));
  };

  ServerConfig apache_nodhe = ApacheDefault();
  apache_nodhe.suite_preference = NoDheSuites();
  // "apache-old": ECDHE disabled entirely (pre-ECC builds), producing the
  // ~11% of trusted domains that fail an ECDHE-only offer.
  ServerConfig apache_old = ApacheDefault();
  apache_old.suite_preference = {CipherSuite::kDheWithAes128CbcSha256,
                                 CipherSuite::kStaticWithAes128CbcSha256};

  add("apache-daily", 0.17, 1800, ApacheDefault(), 16 * kHour,
      {.reuse_fraction = 0.10, .ttl_mix = {{1.0, 6 * kHour}}},
      {.reuse_fraction = 0.22, .ttl_mix = {{1.0, 8 * kHour}}});
  add("apache-daily-nodhe", 0.03, 400, apache_nodhe, 16 * kHour, {},
      {.reuse_fraction = 0.22, .ttl_mix = {{1.0, 8 * kHour}}});
  add("nginx-daily", 0.068, 900, NginxDefault(), 16 * kHour, {},
      {.reuse_fraction = 0.20, .ttl_mix = {{1.0, 8 * kHour}}});
  add("apache-weekly", 0.05, 700, ApacheDefault(), 4 * kDay,
      {.reuse_fraction = 0.10, .ttl_mix = {{1.0, 6 * kHour}}},
      {.reuse_fraction = 0.22, .ttl_mix = {{1.0, 8 * kHour}}});
  add("apache-weekly-nodhe", 0.02, 300, apache_nodhe, 4 * kDay, {},
      {.reuse_fraction = 0.22, .ttl_mix = {{1.0, 8 * kHour}}});
  // Long-cache boutique hosts fill Figure 1's tail between the IIS 10-hour
  // step and the 24-hour Google plateau.
  add("smallhost-12h", 0.04, 400, SmallHost(12 * kHour), 9 * kDay, {},
      {.reuse_fraction = 0.20, .ttl_mix = {{1.0, 8 * kHour}}});
  add("apache-old", 0.075, 900, apache_old, 16 * kHour,
      {.reuse_fraction = 0.12, .ttl_mix = {{1.0, 6 * kHour}}});
  {
    OperatorSpec op;
    op.name = "iis-monthly";
    op.trusted_share = 0.06;
    op.instances = 600;
    op.terminators_per_instance = 2;
    op.config = IisDefault();
    op.restart_every = 18 * kDay;  // jittered ~11–25 days
    op.mx_google_fraction = 0.05;
    ops.push_back(op);
  }
  ServerConfig smallhost_monthly = SmallHost(30 * kMinute);
  smallhost_monthly.tickets.lifetime_hint_seconds = 0;  // hint unspecified
  add("smallhost-monthly", 0.04, 400, smallhost_monthly, 16 * kDay,
      {.reuse_fraction = 0.10, .ttl_mix = {{1.0, 12 * kHour}}},
      {.reuse_fraction = 0.25, .ttl_mix = {{1.0, 12 * kHour}}});
  // Never maintained: per-process STEKs live for the whole study, and this
  // is where long-lived (EC)DHE reuse concentrates (§4.4's tail).
  ServerConfig smallhost_never = SmallHost(30 * kMinute);
  smallhost_never.tickets.lifetime_hint_seconds = 180;
  smallhost_never.tickets.acceptance_window = 3 * kMinute;
  add("smallhost-never", 0.073, 700, smallhost_never, 0,
      {.reuse_fraction = 0.10,
       .ttl_mix = {{0.05, 2 * kDay}, {0.65, 12 * kDay}, {0.30, 0}}},
      {.reuse_fraction = 0.50,
       .ttl_mix = {{0.20, 8 * kHour},
                   {0.10, 2 * kDay},
                   {0.30, 12 * kDay},
                   {0.40, 0}}});
  // Domains that never issue tickets (23% of the stable trusted cohort,
  // §4.3). Half session-cache-only Apache, half no resumption at all.
  {
    ServerConfig config = ApacheDefault();
    config.tickets.enabled = false;
    add("no-tickets-cache", 0.115, 1200, config, 3 * kDay,
        {.reuse_fraction = 0.08, .ttl_mix = {{1.0, 6 * kHour}}},
        {.reuse_fraction = 0.18, .ttl_mix = {{1.0, 8 * kHour}}});
  }
  {
    // Nginx defaults with tickets off: issues session IDs it will never
    // resume (part of Figure 1's 97%-indicated vs 83%-resumed gap).
    ServerConfig config = NginxDefault();
    config.tickets.enabled = false;
    add("no-tickets-nginx", 0.065, 700, config, 3 * kDay, {},
        {.reuse_fraction = 0.18, .ttl_mix = {{1.0, 8 * kHour}}});
  }
  {
    // No resumption machinery at all: no cache, no ID in ServerHello, no
    // tickets (the ~3% of trusted domains that indicate nothing).
    ServerConfig config = NginxDefault();
    config.tickets.enabled = false;
    config.session_cache.issue_id_without_cache = false;
    config.suite_preference = NoDheSuites();
    add("no-tickets-no-resume", 0.05, 500, config, 3 * kDay, {},
        {.reuse_fraction = 0.18, .ttl_mix = {{1.0, 8 * kHour}}});
  }
  return ops;
}

std::vector<NamedGroupSpec> NamedGroups() {
  std::vector<NamedGroupSpec> groups;

  auto static_stek_group = [](std::string name, int per_million,
                              std::vector<int> rotations = {}) {
    NamedGroupSpec group;
    group.operator_name = std::move(name);
    group.domains_per_million = per_million;
    ServerConfig config;
    config.implementation = group.operator_name;
    config.suite_preference = NoDheSuites();
    config.session_cache.lifetime = 5 * kMinute;
    config.tickets.lifetime_hint_seconds = 3600;
    config.tickets.acceptance_window = kHour;
    config.stek.rotation = StekRotation::kStatic;
    group.config = config;
    group.stek_rotation_days = std::move(rotations);
    return group;
  };

  // Fastly: same STEK for the entire nine weeks (§6.1) — foursquare.com,
  // www.gov.uk, aclu.org et al.
  {
    NamedGroupSpec fastly = static_stek_group("fastly", 700);
    fastly.terminators = 4;
    fastly.share_cache = false;
    groups.push_back(fastly);
  }
  // TMall: large static-STEK group (Table 6: 3,305 domains; Fig. 6 red).
  {
    NamedGroupSpec tmall = static_stek_group("tmall", 3305);
    tmall.terminators = 8;
    tmall.share_cache = false;
    groups.push_back(tmall);
  }
  // Jack Henry & Associates: 79 bank/credit-union domains, one STEK for 59
  // days, then a coordinated rotation to another shared key (§6.1).
  groups.push_back(static_stek_group("jackhenry", 79, {59}));

  // Hostway: the most widely shared DHE value (137 domains, §5.3).
  {
    NamedGroupSpec group;
    group.operator_name = "hostway";
    group.domains_per_million = 137;
    ServerConfig config = ApacheDefault();
    config.implementation = "hostway";
    config.dhe_reuse = {.reuse = true, .ttl = 0};
    config.stek.rotation = StekRotation::kPerProcess;
    group.config = config;
    group.share_kex = true;
    groups.push_back(group);
  }
  // Affinity Internet: one DHE value across 91–146 domains for 62 days.
  {
    NamedGroupSpec group;
    group.operator_name = "affinity";
    group.domains_per_million = 146;
    ServerConfig config = ApacheDefault();
    config.implementation = "affinity";
    config.dhe_reuse = {.reuse = true, .ttl = 0};
    group.config = config;
    group.share_kex = true;
    groups.push_back(group);
  }
  // Smaller named DH groups of Table 7.
  for (const auto& [name, count, ttl_days] :
       std::vector<std::tuple<const char*, int, int>>{
           {"distil", 174, 3},
           {"atypon", 167, 5},
           {"line-corp", 114, 4},
           {"digital-insight", 98, 6},
           {"edgecast", 75, 2}}) {
    NamedGroupSpec group;
    group.operator_name = name;
    group.domains_per_million = count;
    ServerConfig config = SmallHost(10 * kMinute);
    config.implementation = name;
    config.ecdhe_reuse = {.reuse = true, .ttl = ttl_days * kDay};
    group.config = config;
    group.share_kex = true;
    groups.push_back(group);
  }
  return groups;
}

// Rotation days producing a *maximum* observed span of `span` days over a
// 63-day study: rotate every `span` days (the final partial epoch is
// shorter, so the longest epoch is exactly `span`).
std::vector<int> RotationsEvery(int span) {
  std::vector<int> days;
  for (int day = span; day < 63; day += span) days.push_back(day);
  return days;
}

// Named domains of Tables 2–4 plus context domains. A span of S days is
// produced by rotating every S days.
std::vector<NamedDomainSpec> NamedDomains() {
  std::vector<NamedDomainSpec> named;

  ServerConfig default_config = ApacheDefault();
  default_config.tickets.lifetime_hint_seconds = 3600;
  default_config.tickets.acceptance_window = kHour;

  auto add = [&named](const std::string& domain, int rank,
                      ServerConfig config) -> NamedDomainSpec& {
    NamedDomainSpec spec;
    spec.domain = domain;
    spec.rank = rank;
    spec.config = std::move(config);
    named.push_back(std::move(spec));
    return named.back();
  };

  // Head-of-list context: rotate STEKs daily (Google, Twitter, YouTube,
  // Baidu per §4.3), generous session caches for Google/Facebook (§4.1).
  {
    ServerConfig config = default_config;
    config.suite_preference = NoDheSuites();
    config.stek.rotation = StekRotation::kInterval;
    config.stek.rotation_interval = 14 * kHour;
    config.stek.previous_key_acceptance = 14 * kHour;
    config.session_cache.lifetime = 25 * kHour;
    config.tickets.lifetime_hint_seconds = 28 * 3600;
    config.tickets.acceptance_window = 28 * kHour;
    add("google.com", 1, config);
    add("youtube.com", 3, config);
    config.session_cache.lifetime = 25 * kHour;  // Facebook CDN >24h IDs
    config.stek.rotation_interval = kDay;
    add("facebook.com", 2, config);
    config.session_cache.lifetime = 5 * kMinute;
    add("baidu.com", 4, config);
    add("twitter.com", 8, config);
  }

  // Table 2: prolonged STEK reuse (span in days; 63 = never seen rotating).
  auto stek_domain = [&](const std::string& domain, int rank, int span) {
    ServerConfig config = default_config;
    config.stek.rotation = StekRotation::kStatic;
    auto& spec = add(domain, rank, config);
    if (span < 63) spec.stek_rotation_days = RotationsEvery(span);
  };
  stek_domain("yahoo.com", 5, 63);
  stek_domain("qq.com", 19, 56);
  stek_domain("taobao.com", 20, 63);
  stek_domain("pinterest.com", 21, 63);
  stek_domain("imgur.com", 35, 63);
  stek_domain("tmall.com", 41, 63);
  stek_domain("pornhub.com", 55, 29);
  stek_domain("mail.ru", 27, 63);
  stek_domain("slack.com", 430, 18);
  // Yandex: eight TLDs, one static STEK since before the study (§7.2).
  int yandex_rank = 28;
  for (const char* tld :
       {"ru", "com", "com.tr", "ua", "by", "kz", "uz", "net"}) {
    stek_domain(std::string("yandex.") + tld, yandex_rank, 63);
    yandex_rank += 120;
  }

  // fc2.com: 18 days for both STEK and DHE (Tables 2 and 3).
  {
    ServerConfig config = default_config;
    config.stek.rotation = StekRotation::kStatic;
    config.dhe_reuse = {.reuse = true, .ttl = 0};
    auto& spec = add("fc2.com", 53, config);
    spec.stek_rotation_days = RotationsEvery(18);
    spec.dhe_rotation_days = RotationsEvery(18);
  }
  // netflix.com: STEK 54d (Table 2), DHE 59d (Table 3), ECDHE 59d (Table 4).
  {
    ServerConfig config = default_config;
    config.stek.rotation = StekRotation::kStatic;
    config.dhe_reuse = {.reuse = true, .ttl = 0};
    config.ecdhe_reuse = {.reuse = true, .ttl = 0};
    auto& spec = add("netflix.com", 31, config);
    spec.stek_rotation_days = RotationsEvery(54);
    spec.dhe_rotation_days = RotationsEvery(59);
  }

  // Table 3: prolonged DHE reuse.
  auto dhe_domain = [&](const std::string& domain, int rank, int span) {
    ServerConfig config = default_config;
    config.dhe_reuse = {.reuse = true, .ttl = 0};
    config.stek.rotation = StekRotation::kInterval;
    config.stek.rotation_interval = kDay;
    auto& spec = add(domain, rank, config);
    if (span < 63) spec.dhe_rotation_days = RotationsEvery(span);
  };
  dhe_domain("ebay.in", 392, 7);
  dhe_domain("ebay.it", 456, 8);
  dhe_domain("kayak.com", 580, 13);
  dhe_domain("cbssports.com", 592, 60);
  dhe_domain("gamefaqs.com", 626, 12);
  dhe_domain("overstock.com", 633, 17);
  dhe_domain("cookpad.com", 730, 63);
  dhe_domain("commsec.com.au", 4200, 36);
  // kayak country domains with 6-18 day DHE reuse (the paper saw 32;\n  // we embed 8 to limit small-scale distortion of the DHE tail).
  for (int i = 0; i < 8; ++i) {
    dhe_domain("kayak.tld" + std::to_string(i) + ".sim", 5000 + 37 * i,
               6 + (i % 13));
  }

  // bleacherreport.com: 24 days in both Table 3 and Table 4.
  {
    ServerConfig config = default_config;
    config.dhe_reuse = {.reuse = true, .ttl = 0};
    config.ecdhe_reuse = {.reuse = true, .ttl = 0};
    config.stek.rotation = StekRotation::kInterval;
    config.stek.rotation_interval = kDay;
    auto& spec = add("bleacherreport.com", 528, config);
    spec.dhe_rotation_days = RotationsEvery(24);
  }

  // Table 4: prolonged ECDHE reuse.
  auto ecdhe_domain = [&](const std::string& domain, int rank, int span) {
    ServerConfig config = default_config;
    config.suite_preference = NoDheSuites();
    config.ecdhe_reuse = {.reuse = true, .ttl = 0};
    config.stek.rotation = StekRotation::kInterval;
    config.stek.rotation_interval = kDay;
    auto& spec = add(domain, rank, config);
    if (span < 63) spec.ecdhe_rotation_days = RotationsEvery(span);
  };
  ecdhe_domain("whatsapp.com", 74, 62);
  ecdhe_domain("vice.com", 158, 26);
  ecdhe_domain("9gag.com", 221, 31);
  ecdhe_domain("liputan6.com", 322, 28);
  ecdhe_domain("paytm.com", 353, 27);
  ecdhe_domain("playstation.com", 464, 11);
  ecdhe_domain("woot.com", 527, 62);
  ecdhe_domain("leagueoflegends.com", 615, 27);
  ecdhe_domain("betterment.com", 6100, 62);
  ecdhe_domain("mint.com", 1900, 62);
  ecdhe_domain("symantec.com", 1500, 41);
  ecdhe_domain("symanteccloud.com", 8000, 16);
  ecdhe_domain("norton.com", 2600, 19);

  // fantabob*: the 90-day lifetime-hint outliers of §4.2.
  for (const char* domain : {"fantabobworld.com", "fantabobshow.com"}) {
    ServerConfig config = default_config;
    config.tickets.lifetime_hint_seconds = 90 * 86400;
    config.tickets.acceptance_window = 24 * kHour;
    config.stek.rotation = StekRotation::kStatic;
    add(domain, 300000 + (domain[7] == 'w' ? 0 : 1), config);
  }
  return named;
}

}  // namespace

std::size_t DefaultPopulationSize() {
  if (const char* env = std::getenv("TLSHARM_POPULATION")) {
    const long parsed = std::atol(env);
    if (parsed >= 2000) return static_cast<std::size_t>(parsed);
  }
  return 20000;
}

PopulationSpec PaperPopulationSpec(std::size_t top_list_size) {
  PopulationSpec spec;
  spec.top_list_size =
      top_list_size == 0 ? DefaultPopulationSize() : top_list_size;
  spec.https_fraction = 0.68;
  spec.trusted_fraction = 0.54;

  spec.operators.push_back(CloudFlare());
  spec.operators.push_back(GooglePlex());
  spec.operators.push_back(Blogspot());
  spec.operators.push_back(Automattic());
  spec.operators.push_back(Shopify());
  spec.operators.push_back(Tumblr());
  spec.operators.push_back(GoDaddy());
  spec.operators.push_back(AmazonElb());
  spec.operators.push_back(SquareSpace());
  spec.operators.push_back(LiveJournal());
  spec.operators.push_back(Jimdo());
  for (auto& op : GenericWeb()) spec.operators.push_back(std::move(op));

  spec.named_groups = NamedGroups();
  spec.named_domains = NamedDomains();
  return spec;
}

}  // namespace tlsharm::simnet
