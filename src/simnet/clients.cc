#include "simnet/clients.h"

#include <cmath>

#include "tls/client.h"

namespace tlsharm::simnet {
namespace {

// Samples an index in [0, n) with P(i) proportional to 1/(i+1) — the
// classic Zipf(1) popularity curve of personal browsing.
std::size_t SampleZipf(Rng& rng, std::size_t n) {
  // Inverse-CDF over harmonic weights; n is small (working set), so a
  // linear walk is fine.
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) total += 1.0 / static_cast<double>(i + 1);
  double x = rng.UniformDouble() * total;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 1.0 / static_cast<double>(i + 1);
    if (x < w) return i;
    x -= w;
  }
  return n - 1;
}

// Exponential inter-visit gap with the configured mean.
SimTime SampleGap(Rng& rng, SimTime mean) {
  const double u = rng.UniformDouble();
  const double gap = -std::log(1.0 - u) * static_cast<double>(mean);
  return std::max<SimTime>(1, static_cast<SimTime>(gap));
}

}  // namespace

BrowserPool::BrowserPool(Internet& net, BrowserConfig config, int browsers,
                         std::uint64_t seed)
    : net_(net), config_(config), drbg_([&] {
        Bytes s = ToBytes("browser pool");
        AppendUint(s, seed, 8);
        return crypto::Drbg(s);
      }()) {
  Rng rng(seed);
  // Candidate sites: trusted HTTPS stable domains, weighted toward the
  // head of the ranking (browsers visit popular sites).
  std::vector<DomainId> candidates;
  for (DomainId id = 0; id < net.DomainCount(); ++id) {
    const auto& info = net.GetDomain(id);
    if (info.stable && info.https && info.trusted_cert) {
      candidates.push_back(id);
    }
  }
  browsers_.resize(static_cast<std::size_t>(browsers));
  for (int b = 0; b < browsers; ++b) {
    Browser& browser = browsers_[static_cast<std::size_t>(b)];
    browser.rng = rng.Fork("browser-" + std::to_string(b));
    for (int i = 0; i < config.working_set_size; ++i) {
      // Rank-biased pick: square the uniform draw to favour the head.
      const double u = browser.rng.UniformDouble();
      const auto idx = static_cast<std::size_t>(u * u *
                                                static_cast<double>(
                                                    candidates.size()));
      browser.working_set.push_back(
          candidates[std::min(idx, candidates.size() - 1)]);
    }
    browser.next_visit = SampleGap(browser.rng, config.mean_gap);
  }
}

void BrowserPool::Visit(Browser& browser, DomainId domain, SimTime now,
                        TrafficStats& stats) {
  auto conn = net_.Connect(domain, now);
  if (conn == nullptr) return;
  ++stats.connections;

  tls::ClientConfig config;
  config.server_name = net_.GetDomain(domain).name;
  Bytes previous_ticket;
  auto it = browser.sessions.find(domain);
  if (it != browser.sessions.end()) {
    if (it->second.stored_at + config_.client_session_lifetime > now) {
      config.resume_session_id = it->second.session_id;
      config.resume_ticket = it->second.ticket;
      config.resume_master_secret = it->second.master_secret;
      previous_ticket = it->second.ticket;
      ++stats.offered_resumption;
    } else {
      browser.sessions.erase(it);
    }
  }

  tls::TlsClient client(config);
  const auto hs = client.Handshake(*conn, now, drbg_);
  if (!hs.ok) return;
  ++stats.handshake_ok;
  if (hs.resumed) {
    ++stats.resumed;
    if (hs.resumed_via_ticket) ++stats.resumed_via_ticket;
  }
  // Store the freshest session state (browsers keep one per host). When no
  // new ticket was issued, the previous ticket stays valid only if this
  // session resumed (same master secret); after a fresh full handshake the
  // old ticket's master no longer matches and must be dropped.
  StoredClientSession stored;
  stored.session_id = hs.session_id;
  stored.ticket = !hs.ticket.empty() ? hs.ticket
                  : hs.resumed       ? previous_ticket
                                     : Bytes{};
  stored.master_secret = hs.master_secret;
  stored.stored_at = now;
  browser.sessions[domain] = std::move(stored);
}

TrafficStats BrowserPool::Browse(SimTime start, SimTime duration) {
  TrafficStats stats;
  const SimTime end = start + duration;
  for (Browser& browser : browsers_) {
    SimTime now = start + browser.next_visit;
    while (now < end) {
      const std::size_t pick =
          SampleZipf(browser.rng, browser.working_set.size());
      Visit(browser, browser.working_set[pick], now, stats);
      now += SampleGap(browser.rng, config_.mean_gap);
    }
    browser.next_visit = now - end;  // carry phase into the next window
  }
  return stats;
}

}  // namespace tlsharm::simnet
