// Population specification: how to synthesize an Alexa-Top-N HTTPS
// ecosystem.
//
// The default instance (PaperPopulationSpec() in profiles.cc) is calibrated
// so the fractions the paper reports — resumption lifetimes, STEK spans,
// (EC)DHE reuse rates, service-group sizes — emerge from the synthesized
// behaviour. Counts scale linearly with `top_list_size`, so benches compare
// percentages (and rescaled counts) against the paper.
#pragma once

#include <string>
#include <vector>

#include "server/config.h"

namespace tlsharm::simnet {

// Distribution of reuse TTLs for terminators of an archetype that do reuse.
struct ReuseMix {
  // Fraction of this archetype's terminators that reuse at all.
  double reuse_fraction = 0.0;
  // (weight, ttl) choices for reusers; ttl 0 = reuse for process lifetime.
  std::vector<std::pair<double, SimTime>> ttl_mix;
};

// An operator archetype: either one large organization (instances == 1,
// e.g. CloudFlare) or a family of many small independent operators
// (instances >> 1, e.g. default-config Apache hosts).
struct OperatorSpec {
  std::string name;
  // Fraction of the *trusted HTTPS* domain population hosted here.
  double trusted_share = 0.0;
  // Number of independent operator instances of this archetype.
  int instances = 1;
  // SSL terminators per instance (fleet size).
  int terminators_per_instance = 1;
  server::ServerConfig config;

  // Cross-terminator sharing. Caches and KEX values are shared within a
  // sub-fleet; STEKs are shared across the whole instance (the synchronized
  // key file reaches every data center). `stek_pool` additionally shares
  // one STEK manager across *different* operator entries with the same pool
  // name (e.g. Google web + Blogspot present one STEK group, §5.2/§7.2).
  bool share_cache_across_fleet = false;
  bool share_stek_across_fleet = false;
  bool share_kex_across_fleet = false;
  std::string stek_pool;

  // Number of sub-fleets: an instance's terminators are split into this
  // many groups; sharing (cache/KEX) happens per sub-fleet. Models
  // CloudFlare's multiple distinct session-cache groups within one AS.
  int subfleets = 1;
  // Optional relative domain weights per sub-fleet (CloudFlare's cache
  // groups are ~2:1). Empty = uniform.
  std::vector<double> subfleet_weights;

  // Domains per SAN certificate (1 = a dedicated cert per domain).
  int domains_per_cert = 1;

  // Process restart cadence (0 = never restarts). Restarts regenerate
  // per-process STEKs and flush caches/KEX values.
  SimTime restart_every = 0;

  // Ephemeral-value reuse assignment across this archetype's terminators.
  ReuseMix dhe_reuse;
  ReuseMix ecdhe_reuse;

  // Fraction of this archetype's domains whose MX records point at Google
  // (Google-for-Work customers, §7.2).
  double mx_google_fraction = 0.0;
};

// A named real-world domain with hand-specified behaviour, so the paper's
// "top domains" tables reproduce row-for-row.
struct NamedDomainSpec {
  std::string domain;
  int rank = 0;
  server::ServerConfig config;
  // Days (since study start) on which the operator manually rotates the
  // STEK (the Jack Henry cluster's day-59 switch). Spans between rotations
  // are what the scanner should measure.
  std::vector<int> stek_rotation_days;
  // Same for manual (EC)DHE value rotation.
  std::vector<int> dhe_rotation_days;
  std::vector<int> ecdhe_rotation_days;
};

// A named service group: several domains sharing secrets (Jack Henry's 79
// banks, Affinity Internet's 91 domains on one DH value, ...). Counts are
// per-million and scale with the population.
struct NamedGroupSpec {
  std::string operator_name;
  int domains_per_million = 0;
  int min_domains = 2;  // floor after scaling
  // Terminators the group's domains are partitioned across (caches are
  // per-terminator unless share_cache).
  int terminators = 1;
  server::ServerConfig config;
  bool share_cache = true;
  bool share_stek = true;
  bool share_kex = false;
  std::vector<int> stek_rotation_days;
};

struct ChurnSpec {
  // Fraction of the daily list that is always present.
  double stable_fraction = 0.54;
  // Transient pool size as a multiple of the list size.
  double transient_pool_factor = 1.05;
  // Transient presence probability = max_presence * u, u uniform per
  // domain (heterogeneous churn; ~10% of unique domains appear on <= 7
  // days, as in §3).
  double transient_max_presence = 0.9;
};

// How the terminator fleet is held in memory (see DESIGN.md "Scaling").
//   kMaterialized — every terminator (credentials included) is built at
//     construction; Terminator() is a plain array access. The right mode
//     for populations up to a few hundred thousand.
//   kLazy — terminators are derived on demand from (seed, id) into a
//     bounded working set and evicted deterministically-safely (they are
//     pure functions of their identity; the only order-dependent state,
//     the shared secret stores, always stays resident). Million-domain
//     scans run here.
//   kFromEnv — resolve from TLSHARM_FLEET ("lazy" | "materialized",
//     default materialized).
enum class FleetMode : std::uint8_t { kFromEnv = 0, kMaterialized, kLazy };

struct PopulationSpec {
  // Size of the daily "Top N" list (the paper's 1,000,000).
  std::size_t top_list_size = 60000;
  // Fraction of stable domains that support HTTPS at all.
  double https_fraction = 0.68;
  // Fraction of stable domains presenting a browser-trusted certificate.
  double trusted_fraction = 0.54;
  // Terminator materialization strategy; never changes a single observed
  // byte (FleetEquivalenceTest proves it), only memory/time trade-offs.
  FleetMode fleet_mode = FleetMode::kFromEnv;
  // Working-set budget for kLazy, in MiB (0 = TLSHARM_FLEET_BUDGET_MB or
  // the built-in default). Accounting unit: SslTerminator::ProvisionedBytes.
  std::size_t fleet_budget_mb = 0;
  ChurnSpec churn;
  std::vector<OperatorSpec> operators;
  std::vector<NamedGroupSpec> named_groups;
  std::vector<NamedDomainSpec> named_domains;
};

// The paper-calibrated specification. `top_list_size` of 0 selects the
// default (env TLSHARM_POPULATION or 60,000).
PopulationSpec PaperPopulationSpec(std::size_t top_list_size = 0);

// Population size resolution helper shared by benches.
std::size_t DefaultPopulationSize();

}  // namespace tlsharm::simnet
