#include "simnet/internet.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstdlib>
#include <string_view>
#include <unordered_set>

namespace tlsharm::simnet {
namespace {

constexpr SimTime kCertNotBefore = -180 * kDay;
constexpr SimTime kCertNotAfter = 3650 * kDay;
// Default lazy working-set budget. ~384 MiB holds tens of thousands of
// provisioned terminators — far more than one scan shard touches between
// evictions — while a million-domain world stays bounded.
constexpr std::uint64_t kDefaultFleetBudgetMb = 384;

void AppendNum(std::string* out, std::uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

}  // namespace

// CA material outlives construction: lazy fleets issue certificates on
// demand, long after the blueprint pass. The DRBG member only feeds
// construction-time draws (CA keypairs, the intermediate's certificate);
// per-credential issuance uses derived DRBGs and explicit serials so it is
// order-free and thread-safe.
struct Internet::Pki {
  crypto::Drbg ca_drbg{ToBytes("simnet ca")};
  pki::CertificateAuthority root;
  pki::CertificateAuthority trusted_int;
  pki::CertificateAuthority untrusted_ca;
  pki::CertificateChain trusted_chain;
  pki::CertificateChain untrusted_chain;  // untrusted CA signs directly

  Pki()
      : root("SimNSS Root CA", pki::SignatureScheme::kSchnorrSim61, ca_drbg),
        trusted_int("SimDV Intermediate CA",
                    pki::SignatureScheme::kSchnorrSim61, ca_drbg),
        untrusted_ca("SelfSign CA", pki::SignatureScheme::kSchnorrSim61,
                     ca_drbg) {
    trusted_chain = {root.IssueCaCertificate(trusted_int, -365 * kDay,
                                             3650 * kDay, ca_drbg)};
  }
};

Internet::~Internet() = default;

std::uint16_t Internet::InternOperator(const std::string& name) {
  for (std::size_t i = 0; i < operator_names_.size(); ++i) {
    if (operator_names_[i] == name) return static_cast<std::uint16_t>(i);
  }
  operator_names_.push_back(name);
  return static_cast<std::uint16_t>(operator_names_.size() - 1);
}

DomainId Internet::AddDomainRow(std::uint8_t kind, std::uint32_t num,
                                std::uint64_t hash, int rank, std::uint16_t op,
                                std::uint32_t as_number, std::uint8_t flags,
                                double presence, TerminatorId endpoint_lo,
                                std::uint16_t endpoint_count) {
  const DomainId id = static_cast<DomainId>(table_.flags.size());
  table_.name_hash.push_back(hash);
  table_.rank.push_back(static_cast<std::uint32_t>(rank));
  table_.as_number.push_back(as_number);
  table_.flags.push_back(flags);
  table_.presence.push_back(presence);
  table_.endpoint_lo.push_back(endpoint_lo);
  table_.endpoint_count.push_back(endpoint_count);
  table_.op.push_back(op);
  table_.name_kind.push_back(kind);
  table_.name_num.push_back(num);
  return id;
}

Internet::Internet(const PopulationSpec& spec, std::uint64_t seed)
    : pki_(std::make_unique<Pki>()), seed_(seed) {
  // Resolve the fleet mode and working-set budget.
  FleetMode mode = spec.fleet_mode;
  if (mode == FleetMode::kFromEnv) {
    const char* env = std::getenv("TLSHARM_FLEET");
    mode = (env != nullptr && std::string_view(env) == "lazy")
               ? FleetMode::kLazy
               : FleetMode::kMaterialized;
  }
  lazy_ = mode == FleetMode::kLazy;
  std::uint64_t budget_mb = spec.fleet_budget_mb;
  if (budget_mb == 0) {
    const char* env = std::getenv("TLSHARM_FLEET_BUDGET_MB");
    if (env != nullptr) budget_mb = std::strtoull(env, nullptr, 10);
    if (budget_mb == 0) budget_mb = kDefaultFleetBudgetMb;
  }
  budget_bytes_ = budget_mb << 20;

  Rng rng(seed);
  root_store_.AddRoot(pki_->root.Name(), pki_->root.Scheme(),
                      pki_->root.PublicKey());

  // ==== blueprint pass =====================================================
  // Everything below fixes the population — every Rng draw, every rank,
  // every terminator's config and maintenance calendar, every credential's
  // (domains, serial) — without building a single terminator. The draw
  // sequence matches the original materializing constructor exactly;
  // certificate issuance moved onto derived per-credential DRBGs, which is
  // what makes terminators order-free pure functions of the blueprint.

  auto new_terminator = [&](std::string id, const server::ServerConfig& config,
                            SimTime restart_every,
                            std::uint64_t restart_phase_seed) -> TerminatorId {
    const TerminatorId tid = static_cast<TerminatorId>(term_meta_.size());
    shared_.push_back(server::SslTerminator::MakeSharedSecretState(
        id, config, seed ^ StableHash64(id)));
    TermMeta meta;
    meta.id = std::move(id);
    meta.config = config;
    term_meta_.push_back(std::move(meta));
    Maintenance& m = maintenance_.emplace_back();
    m.restart_every = restart_every;
    if (restart_every > 0) {
      std::uint64_t phase_state = restart_phase_seed;
      m.next_restart =
          static_cast<SimTime>(SplitMix64(phase_state) %
                               static_cast<std::uint64_t>(restart_every));
      m.first_restart = m.next_restart;
    }
    return tid;
  };

  // Records one future credential for `tid`. A terminator's plans must be
  // contiguous in cred_plans_ (TermMeta stores a slice).
  auto add_plan = [&](TerminatorId tid, DomainId domain_lo, std::uint16_t count,
                      bool trusted) {
    TermMeta& meta = term_meta_[tid];
    if (meta.plan_count == 0) {
      meta.plan_lo = static_cast<std::uint32_t>(cred_plans_.size());
    }
    assert(meta.plan_lo + meta.plan_count == cred_plans_.size());
    cred_plans_.push_back(CredPlan{domain_lo, count, trusted});
    ++meta.plan_count;
  };

  // Regenerates the name a row (kind, num, op) will carry — used here only
  // to precompute the name hash the runtime paths key on.
  std::string scratch_name;
  auto row_name = [&](std::uint8_t kind, std::uint32_t num,
                      std::uint16_t op) -> const std::string& {
    scratch_name.clear();
    switch (static_cast<NameKind>(kind)) {
      case kNamed:
        scratch_name = operator_names_[op];
        break;
      case kSite:
        scratch_name = "site";
        AppendNum(&scratch_name, num);
        scratch_name += '.';
        scratch_name += operator_names_[op];
        scratch_name += ".sim";
        break;
      case kWww:
        scratch_name = "www";
        AppendNum(&scratch_name, num);
        scratch_name += '.';
        scratch_name += operator_names_[op];
        scratch_name += ".sim";
        break;
      case kSelf:
        scratch_name = "self";
        AppendNum(&scratch_name, num);
        scratch_name += ".untrusted.sim";
        break;
      case kPlain:
        scratch_name = "plain";
        AppendNum(&scratch_name, num);
        scratch_name += ".nohttps.sim";
        break;
      case kTransient:
        scratch_name = "t";
        AppendNum(&scratch_name, num);
        scratch_name += ".transient.sim";
        break;
    }
    return scratch_name;
  };

  // Provisions HTTPS domains (name pattern `kind` with ordinals `nums`, all
  // operated by `op_index`) on a group of terminators with the given
  // sharing flags, recording credential plans and population rows.
  auto provision_group = [&](std::uint8_t kind,
                             const std::vector<std::uint32_t>& nums,
                             const std::vector<TerminatorId>& fleet,
                             bool share_cache, bool share_stek, bool share_kex,
                             int domains_per_cert, bool trusted,
                             std::uint32_t as_number, std::uint16_t op_index,
                             const std::vector<int>* explicit_ranks,
                             bool stable, double presence_prob,
                             double mx_google_fraction, Rng& local_rng) {
    // Share secret state across the fleet as configured.
    if (fleet.size() > 1) {
      for (std::size_t i = 1; i < fleet.size(); ++i) {
        if (share_cache) shared_[fleet[i]].cache = shared_[fleet[0]].cache;
        if (share_stek) shared_[fleet[i]].steks = shared_[fleet[0]].steks;
        if (share_kex) shared_[fleet[i]].kex = shared_[fleet[0]].kex;
      }
    }
    // Endpoint ranges are contiguous by construction; the columnar table
    // depends on it.
    for (std::size_t i = 1; i < fleet.size(); ++i) {
      assert(fleet[i] == fleet[0] + i);
      (void)i;
    }
    // Credential plans: one SAN certificate per batch per terminator.
    const DomainId base_id = static_cast<DomainId>(table_.flags.size());
    for (const TerminatorId tid : fleet) {
      for (std::size_t base = 0; base < nums.size();
           base += static_cast<std::size_t>(domains_per_cert)) {
        const std::size_t end = std::min(
            nums.size(), base + static_cast<std::size_t>(domains_per_cert));
        add_plan(tid, base_id + static_cast<DomainId>(base),
                 static_cast<std::uint16_t>(end - base), trusted);
      }
    }
    for (std::size_t i = 0; i < nums.size(); ++i) {
      const std::uint64_t hash = StableHash64(row_name(kind, nums[i], op_index));
      std::uint8_t flags = kHttps;
      if (trusted) flags |= kTrusted;
      if (stable) flags |= kStable;
      if (local_rng.Bernoulli(mx_google_fraction)) flags |= kMxGoogle;
      AddDomainRow(kind, nums[i], hash,
                   explicit_ranks != nullptr ? (*explicit_ranks)[i] : 0,
                   op_index, as_number, flags, presence_prob,
                   fleet.empty() ? 0 : fleet.front(),
                   static_cast<std::uint16_t>(fleet.size()));
    }
  };

  // --- sizing --------------------------------------------------------------
  const std::size_t n = spec.top_list_size;
  const auto stable_count =
      static_cast<std::size_t>(static_cast<double>(n) *
                               spec.churn.stable_fraction);
  const auto trusted_target = static_cast<std::size_t>(
      static_cast<double>(stable_count) * spec.trusted_fraction);
  const auto https_untrusted_target = static_cast<std::size_t>(
      static_cast<double>(stable_count) *
      (spec.https_fraction - spec.trusted_fraction));
  const double scale = static_cast<double>(n) / 1'000'000.0;

  std::size_t trusted_used = 0;
  // Cross-operator STEK pools (see OperatorSpec::stek_pool).
  std::map<std::string, std::shared_ptr<server::StekManager>> stek_pools;

  // --- named domains -------------------------------------------------------
  for (const auto& named : spec.named_domains) {
    const TerminatorId tid = new_terminator("term/" + named.domain,
                                            named.config, 0,
                                            StableHash64(named.domain));
    auto& maint = maintenance_[tid];
    for (const int day : named.stek_rotation_days) {
      maint.forced_stek_rotations.push_back(day * kDay + 30);
    }
    for (const int day : named.dhe_rotation_days) {
      maint.forced_kex_rotations.push_back(day * kDay + 30);
    }
    for (const int day : named.ecdhe_rotation_days) {
      maint.forced_kex_rotations.push_back(day * kDay + 30);
    }
    std::sort(maint.forced_stek_rotations.begin(),
              maint.forced_stek_rotations.end());
    std::sort(maint.forced_kex_rotations.begin(),
              maint.forced_kex_rotations.end());
    const std::vector<int> ranks = {named.rank};
    Rng domain_rng = rng.Fork("named/" + named.domain);
    provision_group(kNamed, {0}, {tid},
                    /*share_cache=*/false, /*share_stek=*/false,
                    /*share_kex=*/false, /*domains_per_cert=*/1,
                    /*trusted=*/true,
                    /*as_number=*/static_cast<std::uint32_t>(
                        20000 + StableHash64(named.domain) % 40000),
                    InternOperator(named.domain), &ranks, /*stable=*/true,
                    /*presence_prob=*/1.0, /*mx_google=*/0.0, domain_rng);
    ++trusted_used;
  }

  // --- named groups --------------------------------------------------------
  for (const auto& group : spec.named_groups) {
    const int count = std::max(
        group.min_domains,
        static_cast<int>(group.domains_per_million * scale));
    const std::string& base = group.operator_name;
    const int n_terms = std::max(1, group.terminators);
    std::vector<TerminatorId> fleet;
    for (int t = 0; t < n_terms; ++t) {
      const TerminatorId tid = new_terminator(
          "term/" + base + "/" + std::to_string(t), group.config, 0,
          StableHash64(base) + static_cast<std::uint64_t>(t));
      auto& maint = maintenance_[tid];
      for (const int day : group.stek_rotation_days) {
        maint.forced_stek_rotations.push_back(day * kDay + 30);
      }
      std::sort(maint.forced_stek_rotations.begin(),
                maint.forced_stek_rotations.end());
      fleet.push_back(tid);
    }
    // STEK/KEX sharing spans the whole group; caches are per-terminator
    // unless share_cache.
    for (std::size_t t = 1; t < fleet.size(); ++t) {
      if (group.share_stek) shared_[fleet[t]].steks = shared_[fleet[0]].steks;
      if (group.share_kex) shared_[fleet[t]].kex = shared_[fleet[0]].kex;
      if (group.share_cache) shared_[fleet[t]].cache = shared_[fleet[0]].cache;
    }
    Rng group_rng = rng.Fork("group/" + base);
    const std::uint32_t as_number =
        static_cast<std::uint32_t>(30000 + StableHash64(base) % 30000);
    const std::uint16_t op_index = InternOperator(base);
    // Partition domains across the fleet's terminators.
    for (int t = 0; t < n_terms; ++t) {
      std::vector<std::uint32_t> nums;
      for (int i = t; i < count; i += n_terms) {
        nums.push_back(static_cast<std::uint32_t>(i));
      }
      if (nums.empty()) continue;
      provision_group(kSite, nums, {fleet[static_cast<std::size_t>(t)]},
                      false, false, false,
                      /*domains_per_cert=*/std::max<int>(1, count / 4),
                      /*trusted=*/true, as_number, op_index, nullptr,
                      /*stable=*/true, /*presence_prob=*/1.0, 0.0, group_rng);
    }
    trusted_used += static_cast<std::size_t>(count);
  }

  // --- archetype operators ---------------------------------------------------
  double total_share = 0;
  for (const auto& op : spec.operators) total_share += op.trusted_share;
  const std::size_t archetype_budget =
      trusted_target > trusted_used ? trusted_target - trusted_used : 0;

  for (const auto& op : spec.operators) {
    const auto op_domains = static_cast<std::size_t>(
        static_cast<double>(archetype_budget) * op.trusted_share /
        total_share);
    if (op_domains == 0) continue;
    const int instances = std::max(1, op.instances);
    const std::size_t per_instance =
        std::max<std::size_t>(1, op_domains / static_cast<std::size_t>(instances));
    Rng op_rng = rng.Fork("op/" + op.name);

    std::size_t produced = 0;
    for (int inst = 0; inst < instances && produced < op_domains; ++inst) {
      const std::size_t want =
          std::min(per_instance, op_domains - produced);
      if (want == 0) break;
      const std::string inst_name =
          op.name + (instances > 1 ? "-" + std::to_string(inst) : "");
      // AS: one per instance for big orgs; small archetypes pool into a
      // bounded set of hosting ASes so co-AS sampling finds candidates.
      const std::uint32_t as_number =
          instances == 1
              ? static_cast<std::uint32_t>(1000 + StableHash64(op.name) % 9000)
              : static_cast<std::uint32_t>(
                    50000 + StableHash64(op.name) % 1000 +
                    static_cast<std::uint32_t>(inst) % 64);

      // Decide ephemeral-value reuse for this instance.
      server::ServerConfig config = op.config;
      auto apply_reuse = [&op_rng](const ReuseMix& mix,
                                   server::KexReusePolicy& policy) {
        if (mix.reuse_fraction <= 0 || !op_rng.Bernoulli(mix.reuse_fraction)) {
          return;
        }
        policy.reuse = true;
        policy.ttl = 0;
        if (!mix.ttl_mix.empty()) {
          std::vector<double> weights;
          weights.reserve(mix.ttl_mix.size());
          for (const auto& [w, ttl] : mix.ttl_mix) weights.push_back(w);
          policy.ttl = mix.ttl_mix[op_rng.WeightedIndex(weights)].second;
        }
      };
      apply_reuse(op.dhe_reuse, config.dhe_reuse);
      apply_reuse(op.ecdhe_reuse, config.ecdhe_reuse);

      const int subfleets = std::max(1, op.subfleets);
      const int per_fleet =
          std::max(1, op.terminators_per_instance / subfleets);
      // Restart interval jitter: ±40% per instance.
      SimTime restart = op.restart_every;
      if (restart > 0) {
        const double jitter = 0.6 + 0.8 * op_rng.UniformDouble();
        restart = static_cast<SimTime>(static_cast<double>(restart) * jitter);
        restart = std::max<SimTime>(restart, kHour);
      }

      std::vector<std::vector<TerminatorId>> fleets(
          static_cast<std::size_t>(subfleets));
      std::vector<TerminatorId> all_terminators;
      for (int sf = 0; sf < subfleets; ++sf) {
        for (int t = 0; t < per_fleet; ++t) {
          const TerminatorId tid = new_terminator(
              "term/" + inst_name + "/" + std::to_string(sf) + "." +
                  std::to_string(t),
              config, restart,
              StableHash64(inst_name) + static_cast<std::uint64_t>(sf * 131 + t));
          fleets[static_cast<std::size_t>(sf)].push_back(tid);
          all_terminators.push_back(tid);
        }
      }
      // STEK sharing: instance-wide, and optionally via a cross-operator
      // pool (one synchronized key file for the whole organization).
      if (!op.stek_pool.empty()) {
        auto [it, inserted] = stek_pools.try_emplace(
            op.stek_pool, shared_[all_terminators[0]].steks);
        for (const TerminatorId tid : all_terminators) {
          shared_[tid].steks = it->second;
        }
      } else if (op.share_stek_across_fleet && all_terminators.size() > 1) {
        auto shared_steks = shared_[all_terminators[0]].steks;
        for (std::size_t i = 1; i < all_terminators.size(); ++i) {
          shared_[all_terminators[i]].steks = shared_steks;
        }
      }

      // Domain ordinals for this instance, spread across sub-fleets.
      std::vector<std::vector<std::uint32_t>> nums(
          static_cast<std::size_t>(subfleets));
      // Optional weighted split (CloudFlare's ~2:1 cache groups).
      std::vector<double> cumulative;
      if (!op.subfleet_weights.empty()) {
        double total = 0;
        for (double w : op.subfleet_weights) total += w;
        double acc = 0;
        for (double w : op.subfleet_weights) {
          acc += w / total;
          cumulative.push_back(acc);
        }
      }
      for (std::size_t i = 0; i < want; ++i) {
        std::size_t sf;
        if (cumulative.empty()) {
          sf = i % static_cast<std::size_t>(subfleets);
        } else {
          const double f =
              (static_cast<double>(i) + 0.5) / static_cast<double>(want);
          sf = 0;
          while (sf + 1 < cumulative.size() && f > cumulative[sf]) ++sf;
        }
        nums[sf].push_back(static_cast<std::uint32_t>(i));
      }
      const std::uint16_t op_index = InternOperator(inst_name);
      for (int sf = 0; sf < subfleets; ++sf) {
        if (nums[static_cast<std::size_t>(sf)].empty()) continue;
        // Cache/KEX sharing stays within the sub-fleet; STEK sharing was
        // handled instance-wide above.
        provision_group(kWww, nums[static_cast<std::size_t>(sf)],
                        fleets[static_cast<std::size_t>(sf)],
                        op.share_cache_across_fleet,
                        /*share_stek=*/false,
                        op.share_kex_across_fleet,
                        std::max(1, op.domains_per_cert), /*trusted=*/true,
                        as_number, op_index, nullptr,
                        /*stable=*/true, 1.0, op.mx_google_fraction, op_rng);
      }
      produced += want;
    }
    trusted_used += produced;
  }

  // --- HTTPS-but-untrusted stable domains ----------------------------------
  {
    Rng untrusted_rng = rng.Fork("untrusted");
    const std::uint16_t op_index = InternOperator("untrusted-host");
    const std::size_t per_term = 16;
    std::size_t made = 0;
    int batch = 0;
    while (made < https_untrusted_target) {
      const std::size_t count =
          std::min(per_term, https_untrusted_target - made);
      server::ServerConfig config;  // defaults; behaviour barely matters
      config.tickets.enabled = untrusted_rng.Bernoulli(0.7);
      const TerminatorId tid = new_terminator(
          "term/untrusted-" + std::to_string(batch), config, 7 * kDay,
          StableHash64("untrusted") + static_cast<std::uint64_t>(batch));
      std::vector<std::uint32_t> nums;
      for (std::size_t i = 0; i < count; ++i) {
        nums.push_back(static_cast<std::uint32_t>(made + i));
      }
      provision_group(kSelf, nums, {tid}, false, false, false, 4,
                      /*trusted=*/false,
                      static_cast<std::uint32_t>(60000 + batch % 128),
                      op_index, nullptr, true, 1.0, 0.0, untrusted_rng);
      made += count;
      ++batch;
    }
  }

  // --- non-HTTPS stable domains ---------------------------------------------
  {
    const std::size_t no_https = stable_count > trusted_used +
                                        https_untrusted_target
                                     ? stable_count - trusted_used -
                                           https_untrusted_target
                                     : 0;
    const std::uint16_t op_index = InternOperator("no-https");
    for (std::size_t i = 0; i < no_https; ++i) {
      const std::uint64_t hash = StableHash64(
          row_name(kPlain, static_cast<std::uint32_t>(i), op_index));
      std::uint8_t flags = kStable;
      if (hash % 100 < 9) flags |= kMxGoogle;
      AddDomainRow(kPlain, static_cast<std::uint32_t>(i), hash, 0, op_index,
                   static_cast<std::uint32_t>(70000 + i % 512), flags, 1.0, 0,
                   0);
    }
  }

  // --- transient (churning) domains ------------------------------------------
  {
    Rng churn_rng = rng.Fork("churn");
    const auto pool = static_cast<std::size_t>(
        static_cast<double>(n) * spec.churn.transient_pool_factor);
    const std::size_t per_term = 32;
    TerminatorId current_term = 0;
    std::size_t on_current = per_term;
    int batch = 0;
    const std::uint16_t op_index = InternOperator("transient-host");
    // Behaviour templates for the churning tail, mirroring the stable
    // cohort's implementation mix so single-day metrics stay calibrated.
    std::vector<server::ServerConfig> templates;
    {
      server::ServerConfig apache;  // defaults: all suites, 5m cache, 3m t.
      apache.session_cache.lifetime = 5 * kMinute;
      apache.tickets.lifetime_hint_seconds = 180;
      apache.tickets.acceptance_window = 3 * kMinute;
      templates.push_back(apache);                       // 0: apache (DHE)
      server::ServerConfig nodhe = apache;
      nodhe.suite_preference = {tls::CipherSuite::kEcdheWithAes128CbcSha256,
                                tls::CipherSuite::kStaticWithAes128CbcSha256};
      templates.push_back(nodhe);                        // 1: no DHE
      server::ServerConfig old = apache;
      old.suite_preference = {tls::CipherSuite::kDheWithAes128CbcSha256,
                              tls::CipherSuite::kStaticWithAes128CbcSha256};
      templates.push_back(old);                          // 2: no ECDHE
      server::ServerConfig iis = apache;
      iis.suite_preference = nodhe.suite_preference;
      iis.session_cache.lifetime = 10 * kHour;
      iis.tickets.codec = tls::TicketCodecKind::kSChannel;
      iis.tickets.acceptance_window = 10 * kHour;
      templates.push_back(iis);                          // 3: IIS
      server::ServerConfig no_tickets = apache;
      no_tickets.tickets.enabled = false;
      templates.push_back(no_tickets);                   // 4: no tickets
      server::ServerConfig nginx = apache;
      nginx.session_cache.enabled = false;
      nginx.session_cache.issue_id_without_cache = true;
      nginx.suite_preference = nodhe.suite_preference;
      templates.push_back(nginx);                        // 5: id, no cache
      server::ServerConfig smallhost = apache;
      smallhost.session_cache.lifetime = 30 * kMinute;
      smallhost.tickets.lifetime_hint_seconds = 1800;
      smallhost.tickets.acceptance_window = 30 * kMinute;
      templates.push_back(smallhost);                    // 6: 30m windows
    }
    const std::vector<double> template_weights = {0.22, 0.20, 0.10, 0.10,
                                                  0.12, 0.12, 0.14};
    for (std::size_t i = 0; i < pool; ++i) {
      const double u = churn_rng.UniformDouble();
      const double presence = spec.churn.transient_max_presence * u;
      const bool https = churn_rng.Bernoulli(0.55);
      const bool trusted = https && churn_rng.Bernoulli(0.62);
      std::uint8_t flags = 0;
      if (https) flags |= kHttps;
      if (trusted) flags |= kTrusted;
      if (churn_rng.Bernoulli(0.09)) flags |= kMxGoogle;
      TerminatorId endpoint_lo = 0;
      std::uint16_t endpoint_count = 0;
      if (https) {
        if (on_current == per_term) {
          server::ServerConfig config =
              templates[churn_rng.WeightedIndex(template_weights)];
          // A tenth of shared-hosting boxes reuse ECDHE values for hours.
          if (churn_rng.Bernoulli(0.10)) {
            config.ecdhe_reuse = {.reuse = true, .ttl = 8 * kHour};
          }
          if (churn_rng.Bernoulli(0.02)) {
            config.dhe_reuse = {.reuse = true, .ttl = 6 * kHour};
          }
          current_term = new_terminator(
              "term/transient-" + std::to_string(batch++), config, 3 * kDay,
              StableHash64("transient") + i);
          on_current = 0;
        }
        ++on_current;
        add_plan(current_term, static_cast<DomainId>(table_.flags.size()), 1,
                 trusted);
        endpoint_lo = current_term;
        endpoint_count = 1;
      }
      const std::uint64_t hash = StableHash64(
          row_name(kTransient, static_cast<std::uint32_t>(i), op_index));
      AddDomainRow(kTransient, static_cast<std::uint32_t>(i), hash, 0,
                   op_index, static_cast<std::uint32_t>(80000 + i % 1024),
                   flags, presence, endpoint_lo, endpoint_count);
    }
  }

  // --- rank assignment post-pass ---------------------------------------------
  // Named domains carry their real Alexa ranks; everything else is spread
  // uniformly (and deterministically) over the remaining rank space so
  // rank-tier analyses (Figure 4) see a realistic mix at every tier.
  {
    std::unordered_set<int> taken;
    std::vector<DomainId> unranked;
    for (DomainId id = 0; id < table_.rank.size(); ++id) {
      if (table_.rank[id] > 0) {
        taken.insert(static_cast<int>(table_.rank[id]));
      } else {
        unranked.push_back(id);
      }
    }
    Rng rank_rng = rng.Fork("ranks");
    for (std::size_t i = unranked.size(); i > 1; --i) {
      const std::size_t j = rank_rng.UniformInt(i);
      std::swap(unranked[i - 1], unranked[j]);
    }
    int next_rank = 1;
    for (const DomainId id : unranked) {
      while (taken.count(next_rank) != 0) ++next_rank;
      table_.rank[id] = static_cast<std::uint32_t>(next_rank++);
    }
  }

  RegisterSchedules();

  // ==== fleet materialization ==============================================
  slots_.resize(term_meta_.size());
  if (!lazy_) {
    for (TerminatorId tid = 0; tid < term_meta_.size(); ++tid) {
      slots_[tid] = BuildTerminator(tid);
      resident_bytes_ += slots_[tid]->ProvisionedBytes();
    }
    materializations_.store(term_meta_.size(), std::memory_order_relaxed);
  }
}

void Internet::RegisterSchedules() {
  // Hand every terminator's maintenance calendar to its (possibly shared)
  // STEK manager and KEX cache. Shared managers accumulate the schedules of
  // every sharing terminator — time-indexed, so concurrent probes observe
  // the same key epochs regardless of arrival order, and independent of
  // whether the terminator object itself is currently materialized.
  for (TerminatorId tid = 0; tid < term_meta_.size(); ++tid) {
    const Maintenance& m = maintenance_[tid];
    for (const SimTime t : m.forced_stek_rotations) {
      shared_[tid].steks->ScheduleForcedRotation(t);
    }
    for (const SimTime t : m.forced_kex_rotations) {
      shared_[tid].kex->ScheduleClearAt(t);
    }
    if (m.restart_every > 0) {
      shared_[tid].steks->ScheduleRestarts(m.next_restart, m.restart_every);
      shared_[tid].kex->SchedulePeriodicClear(m.next_restart, m.restart_every);
    }
  }
}

std::shared_ptr<server::SslTerminator> Internet::BuildTerminator(
    TerminatorId id) const {
  const TermMeta& meta = term_meta_[id];
  auto term = std::make_shared<server::SslTerminator>(
      meta.id, meta.config, seed_ ^ StableHash64(meta.id), shared_[id]);
  std::vector<std::string> batch;
  for (std::uint32_t k = 0; k < meta.plan_count; ++k) {
    const std::uint32_t global = meta.plan_lo + k;
    const CredPlan& plan = cred_plans_[global];
    batch.clear();
    for (std::uint32_t d = 0; d < plan.count; ++d) {
      batch.push_back(DomainName(plan.domain_lo + d));
    }
    // Per-credential DRBG and serial: issuance is a pure function of the
    // blueprint, so terminators can be (re)built in any order, on any
    // thread, and still present bit-identical certificates.
    Bytes material = ToBytes("cred/");
    Append(material, ToBytes(meta.id));
    AppendUint(material, seed_, 8);
    AppendUint(material, global, 8);
    crypto::Drbg drbg(material);
    server::Credential credential = server::MakeCredential(
        plan.trusted ? pki_->trusted_int : pki_->untrusted_ca, batch,
        pki::SignatureScheme::kSchnorrSim61, kCertNotBefore, kCertNotAfter,
        plan.trusted ? pki_->trusted_chain : pki_->untrusted_chain, drbg,
        /*serial=*/static_cast<std::uint64_t>(global) + 1);
    const std::size_t idx = term->AddCredential(std::move(credential));
    for (std::uint32_t d = 0; d < plan.count; ++d) {
      term->MapDomain(batch[d], idx);
    }
  }
  return term;
}

std::shared_ptr<server::SslTerminator> Internet::Materialize(TerminatorId id) {
  if (!lazy_) return slots_[id];
  {
    std::lock_guard<std::mutex> lock(fleet_mu_);
    if (slots_[id] != nullptr) return slots_[id];
  }
  // Build outside fleet_mu_; the stripe lock stops duplicate builds of the
  // same terminator from racing.
  std::lock_guard<std::mutex> stripe(build_mu_[id % kBuildStripes]);
  {
    std::lock_guard<std::mutex> lock(fleet_mu_);
    if (slots_[id] != nullptr) return slots_[id];
  }
  auto term = BuildTerminator(id);
  const std::uint64_t bytes = term->ProvisionedBytes();
  std::lock_guard<std::mutex> lock(fleet_mu_);
  slots_[id] = term;
  resident_bytes_ += bytes;
  materializations_.fetch_add(1, std::memory_order_relaxed);
  EvictOverBudget(id);
  return term;
}

void Internet::EvictOverBudget(TerminatorId keep) {
  // fleet_mu_ held. Round-robin eviction: which terminators are resident at
  // any instant depends on probe arrival order, but since terminators are
  // pure functions of the blueprint (and the shared secret stores never
  // leave), eviction order cannot perturb a single observed byte.
  const std::size_t n = slots_.size();
  std::size_t scanned = 0;
  while (resident_bytes_ > budget_bytes_ && scanned < n) {
    const std::size_t victim = evict_cursor_;
    evict_cursor_ = (evict_cursor_ + 1) % n;
    ++scanned;
    if (victim == keep || slots_[victim] == nullptr) continue;
    resident_bytes_ -= slots_[victim]->ProvisionedBytes();
    slots_[victim].reset();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

Internet::FleetStats Internet::Fleet() const {
  FleetStats stats;
  stats.lazy = lazy_;
  stats.budget_bytes = budget_bytes_;
  stats.materializations = materializations_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(fleet_mu_);
  stats.resident_bytes = resident_bytes_;
  for (const auto& slot : slots_) {
    if (slot != nullptr) ++stats.resident;
  }
  return stats;
}

void Internet::AssignDomainName(DomainId id, std::string* out) const {
  out->clear();
  const std::uint32_t num = table_.name_num[id];
  switch (static_cast<NameKind>(table_.name_kind[id])) {
    case kNamed:
      out->append(operator_names_[table_.op[id]]);
      return;
    case kSite:
      out->append("site");
      AppendNum(out, num);
      out->push_back('.');
      out->append(operator_names_[table_.op[id]]);
      out->append(".sim");
      return;
    case kWww:
      out->append("www");
      AppendNum(out, num);
      out->push_back('.');
      out->append(operator_names_[table_.op[id]]);
      out->append(".sim");
      return;
    case kSelf:
      out->append("self");
      AppendNum(out, num);
      out->append(".untrusted.sim");
      return;
    case kPlain:
      out->append("plain");
      AppendNum(out, num);
      out->append(".nohttps.sim");
      return;
    case kTransient:
      out->push_back('t');
      AppendNum(out, num);
      out->append(".transient.sim");
      return;
  }
}

std::string Internet::DomainName(DomainId id) const {
  std::string out;
  AssignDomainName(id, &out);
  return out;
}

DomainInfo Internet::GetDomain(DomainId id) const {
  DomainInfo info;
  info.name = DomainName(id);
  info.rank = static_cast<int>(table_.rank[id]);
  info.operator_name = operator_names_[table_.op[id]];
  info.as_number = table_.as_number[id];
  const TerminatorId lo = table_.endpoint_lo[id];
  const std::uint16_t count = table_.endpoint_count[id];
  info.endpoints.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    info.endpoints.push_back(lo + i);
  }
  const std::uint8_t flags = table_.flags[id];
  info.https = (flags & kHttps) != 0;
  info.trusted_cert = (flags & kTrusted) != 0;
  info.stable = (flags & kStable) != 0;
  info.mx_google = (flags & kMxGoogle) != 0;
  info.presence_prob = table_.presence[id];
  return info;
}

std::optional<DomainId> Internet::FindDomain(const std::string& name) const {
  // Cold path (tests, analysis entry points): a name index would cost tens
  // of megabytes at a million domains for no hot-path benefit, so resolve
  // by hash scan + verify instead.
  const std::uint64_t hash = StableHash64(name);
  std::string candidate;
  for (DomainId id = 0; id < table_.name_hash.size(); ++id) {
    if (table_.name_hash[id] != hash) continue;
    AssignDomainName(id, &candidate);
    if (candidate == name) return id;
  }
  return std::nullopt;
}

bool Internet::InTopListOnDay(DomainId id, int day) const {
  if ((table_.flags[id] & kStable) != 0) return true;
  // Deterministic per (domain, day) presence draw.
  std::uint64_t state = seed_ ^ table_.name_hash[id] ^
                        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                     day + 1));
  const double u =
      static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  return u < table_.presence[id];
}

TerminatorId Internet::EndpointFor(DomainId id, SimTime now) const {
  const std::uint16_t count = table_.endpoint_count[id];
  assert(count > 0);
  const TerminatorId lo = table_.endpoint_lo[id];
  if (count == 1) return lo;
  const int day = static_cast<int>(now / kDay);
  std::uint64_t state = seed_ ^ table_.name_hash[id] ^
                        (0xbf58476d1ce4e5b9ULL *
                         static_cast<std::uint64_t>(day + 7));
  std::uint64_t pick = SplitMix64(state);
  // 5% of connections land off-affinity (poorly configured LB).
  std::uint64_t conn_state = state ^ static_cast<std::uint64_t>(now);
  if (SplitMix64(conn_state) % 100 < 5) pick = SplitMix64(conn_state);
  return lo + static_cast<TerminatorId>(pick % count);
}

void Internet::ApplyMaintenance(TerminatorId id, SimTime now) {
  // STEK rotations and KEX clears are schedule-driven inside the managers;
  // the only remaining lazy effect of a restart is flushing the session
  // cache (resumable state does not survive the process). The cache is
  // resident shared state, so no terminator materialization is needed.
  Maintenance& m = maintenance_[id];
  if (m.restart_every <= 0) return;
  std::lock_guard<std::mutex> lock(m.mu);
  if (m.next_restart > now) return;
  // Only the most recent missed restart matters for the cache flush.
  const std::uint64_t periods =
      static_cast<std::uint64_t>(now - m.next_restart) /
          static_cast<std::uint64_t>(m.restart_every) +
      1;
  const SimTime last_restart =
      m.next_restart + static_cast<SimTime>(periods - 1) * m.restart_every;
  shared_[id].cache->Clear();
  m.next_restart = last_restart + m.restart_every;
}

Internet::ConnectOutcome Internet::ConnectDetailed(DomainId id, SimTime now) {
  ConnectOutcome out;
  if ((table_.flags[id] & kHttps) == 0 || table_.endpoint_count[id] == 0) {
    out.status = ConnectStatus::kNoHttps;
    return out;
  }
  FaultDecision fault;
  if (FaultsEnabled()) {
    fault = fault_injector_->Decide(table_.name_hash[id],
                                    *fault_profile_of_[id], now);
    switch (fault.kind) {
      case FaultKind::kOutage:
        out.status = ConnectStatus::kOutage;
        return out;
      case FaultKind::kRefused:
        out.status = ConnectStatus::kRefused;
        return out;
      case FaultKind::kTimeout:
        out.status = ConnectStatus::kTimeout;
        return out;
      default:
        break;  // mid-handshake faults decorate the connection below
    }
  }
  const TerminatorId tid = EndpointFor(id, now);
  ApplyMaintenance(tid, now);
  if (lazy_) {
    auto term = Materialize(tid);
    out.connection = term->NewConnection(now, std::move(term));
  } else {
    out.connection = slots_[tid]->NewConnection(now);
  }
  if (fault.kind != FaultKind::kNone) {
    out.connection =
        std::make_unique<FaultyConnection>(std::move(out.connection), fault);
  }
  out.status = ConnectStatus::kOk;
  return out;
}

std::unique_ptr<tls::ServerConnection> Internet::Connect(DomainId id,
                                                         SimTime now) {
  return ConnectDetailed(id, now).connection;
}

void Internet::SetFaultSpec(const FaultSpec& spec) {
  fault_injector_ = std::make_unique<FaultInjector>(spec, seed_);
  // Resolve each domain's profile once; the references stay valid as long
  // as the injector lives.
  fault_profile_of_.resize(DomainCount());
  for (DomainId id = 0; id < DomainCount(); ++id) {
    fault_profile_of_[id] = &fault_injector_->ResolveProfile(
        operator_names_[table_.op[id]], table_.as_number[id]);
  }
}

server::SslTerminator& Internet::Terminator(TerminatorId id) {
  if (!lazy_) return *slots_[id];
  // Lazy mode: the reference is only guaranteed alive until the next
  // materialization triggers eviction — callers that hold it across probes
  // must use TerminatorHandle instead.
  return *Materialize(id);
}

std::shared_ptr<server::SslTerminator> Internet::TerminatorHandle(
    TerminatorId id) {
  return Materialize(id);
}

std::uint32_t Internet::IpOf(TerminatorId id) const {
  return static_cast<std::uint32_t>(id) + 0x0a000000;
}

Internet::RestartSchedule Internet::RestartScheduleOf(TerminatorId id) const {
  const Maintenance& m = maintenance_[id];
  // Both fields are construction-time constants (only next_restart mutates,
  // under the maintenance mutex), so no locking is needed here.
  return RestartSchedule{m.first_restart, m.restart_every};
}

void Internet::EnsureTopologyIndex() const {
  std::call_once(topo_once_, [&] {
    ip_index_.reserve(term_meta_.size());
    as_index_.reserve(DomainCount());
    for (DomainId id = 0; id < DomainCount(); ++id) {
      const TerminatorId lo = table_.endpoint_lo[id];
      const std::uint16_t count = table_.endpoint_count[id];
      for (std::uint16_t i = 0; i < count; ++i) {
        ip_index_.emplace_back(IpOf(lo + i), id);
      }
      as_index_.emplace_back(table_.as_number[id], id);
    }
    // stable_sort keeps equal keys in generation order — ascending domain
    // id, the order the old insertion-ordered multimap yielded.
    std::stable_sort(ip_index_.begin(), ip_index_.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::stable_sort(as_index_.begin(), as_index_.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  });
}

namespace {

std::vector<DomainId> RangeLookup(
    const std::vector<std::pair<std::uint32_t, DomainId>>& index,
    std::uint32_t key) {
  std::vector<DomainId> out;
  auto it = std::lower_bound(index.begin(), index.end(), key,
                             [](const auto& entry, std::uint32_t k) {
                               return entry.first < k;
                             });
  for (; it != index.end() && it->first == key; ++it) {
    out.push_back(it->second);
  }
  return out;
}

}  // namespace

std::vector<DomainId> Internet::DomainsOnIp(std::uint32_t ip) const {
  EnsureTopologyIndex();
  return RangeLookup(ip_index_, ip);
}

std::vector<DomainId> Internet::DomainsInAs(std::uint32_t as_number) const {
  EnsureTopologyIndex();
  return RangeLookup(as_index_, as_number);
}

}  // namespace tlsharm::simnet
