#include "simnet/internet.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace tlsharm::simnet {

Internet::Internet(const PopulationSpec& spec, std::uint64_t seed)
    : seed_(seed) {
  Rng rng(seed);
  crypto::Drbg ca_drbg(ToBytes("simnet ca"));

  // --- PKI ---------------------------------------------------------------
  pki::CertificateAuthority root("SimNSS Root CA",
                                 pki::SignatureScheme::kSchnorrSim61,
                                 ca_drbg);
  pki::CertificateAuthority trusted_int(
      "SimDV Intermediate CA", pki::SignatureScheme::kSchnorrSim61, ca_drbg);
  pki::CertificateAuthority untrusted_ca(
      "SelfSign CA", pki::SignatureScheme::kSchnorrSim61, ca_drbg);
  root_store_.AddRoot(root.Name(), root.Scheme(), root.PublicKey());
  pki::CertificateChain trusted_chain = {
      root.IssueCaCertificate(trusted_int, -365 * kDay, 3650 * kDay, ca_drbg)};
  pki::CertificateChain untrusted_chain = {};  // untrusted CA signs directly

  const SimTime cert_not_before = -180 * kDay;
  const SimTime cert_not_after = 3650 * kDay;

  // --- helpers -------------------------------------------------------------
  auto new_terminator = [&](const std::string& id,
                            const server::ServerConfig& config,
                            SimTime restart_every,
                            std::uint64_t restart_phase_seed)
      -> TerminatorId {
    const TerminatorId tid = static_cast<TerminatorId>(terminators_.size());
    terminators_.push_back(std::make_unique<server::SslTerminator>(
        id, config, seed ^ StableHash64(id)));
    Maintenance& m = maintenance_.emplace_back();
    m.restart_every = restart_every;
    if (restart_every > 0) {
      std::uint64_t phase_state = restart_phase_seed;
      m.next_restart =
          static_cast<SimTime>(SplitMix64(phase_state) %
                               static_cast<std::uint64_t>(restart_every));
      m.first_restart = m.next_restart;
    }
    terminator_ips_.push_back(static_cast<std::uint32_t>(tid) + 0x0a000000);
    return tid;
  };

  auto add_domain = [&](DomainInfo info) -> DomainId {
    const DomainId id = static_cast<DomainId>(domains_.size());
    by_name_[info.name] = id;
    for (const TerminatorId t : info.endpoints) {
      by_ip_.emplace(terminator_ips_[t], id);
    }
    by_as_.emplace(info.as_number, id);
    domains_.push_back(std::move(info));
    return id;
  };

  // Provisions `domain_names` on a group of terminators with the sharing
  // flags of `op`, and registers the domains.
  auto provision_group = [&](const std::vector<std::string>& domain_names,
                             const std::vector<TerminatorId>& fleet,
                             const server::ServerConfig& config,
                             bool share_cache, bool share_stek,
                             bool share_kex, int domains_per_cert,
                             bool trusted, std::uint32_t as_number,
                             const std::string& op_name, int& rank_cursor,
                             const std::vector<int>* explicit_ranks,
                             bool stable, double presence_prob,
                             double mx_google_fraction, Rng& local_rng) {
    (void)config;
    // Share secret state across the fleet as configured.
    if (fleet.size() > 1) {
      auto& first = *terminators_[fleet[0]];
      for (std::size_t i = 1; i < fleet.size(); ++i) {
        auto& t = *terminators_[fleet[i]];
        if (share_cache) t.SetSessionCache(first.SharedCache());
        if (share_stek) t.SetStekManager(first.SharedSteks());
        if (share_kex) t.SetKexCache(first.SharedKex());
      }
    }
    // Issue certificates in SAN batches and map domains onto every
    // terminator in the fleet.
    for (std::size_t base = 0; base < domain_names.size();
         base += static_cast<std::size_t>(domains_per_cert)) {
      const std::size_t end = std::min(
          domain_names.size(), base + static_cast<std::size_t>(domains_per_cert));
      const std::vector<std::string> batch(domain_names.begin() + base,
                                           domain_names.begin() + end);
      for (const TerminatorId tid : fleet) {
        server::Credential credential = server::MakeCredential(
            trusted ? trusted_int : untrusted_ca, batch,
            pki::SignatureScheme::kSchnorrSim61, cert_not_before,
            cert_not_after, trusted ? trusted_chain : untrusted_chain,
            ca_drbg);
        const std::size_t idx =
            terminators_[tid]->AddCredential(std::move(credential));
        for (const auto& name : batch) {
          terminators_[tid]->MapDomain(name, idx);
        }
      }
    }
    for (std::size_t i = 0; i < domain_names.size(); ++i) {
      DomainInfo info;
      info.name = domain_names[i];
      // Auto-ranked domains get 0 here; a post-pass spreads them
      // uniformly over the full rank range (Figure 4 needs realistic
      // rank tiers), while named domains keep their paper ranks.
      info.rank = explicit_ranks != nullptr ? (*explicit_ranks)[i] : 0;
      (void)rank_cursor;
      info.operator_name = op_name;
      info.as_number = as_number;
      info.endpoints.assign(fleet.begin(), fleet.end());
      info.https = true;
      info.trusted_cert = trusted;
      info.stable = stable;
      info.presence_prob = presence_prob;
      info.mx_google = local_rng.Bernoulli(mx_google_fraction);
      add_domain(std::move(info));
    }
  };

  // --- sizing --------------------------------------------------------------
  const std::size_t n = spec.top_list_size;
  const auto stable_count =
      static_cast<std::size_t>(static_cast<double>(n) *
                               spec.churn.stable_fraction);
  const auto trusted_target = static_cast<std::size_t>(
      static_cast<double>(stable_count) * spec.trusted_fraction);
  const auto https_untrusted_target = static_cast<std::size_t>(
      static_cast<double>(stable_count) *
      (spec.https_fraction - spec.trusted_fraction));
  const double scale = static_cast<double>(n) / 1'000'000.0;

  int rank_cursor = 1;
  std::size_t trusted_used = 0;
  // Cross-operator STEK pools (see OperatorSpec::stek_pool).
  std::map<std::string, std::shared_ptr<server::StekManager>> stek_pools;

  // --- named domains -------------------------------------------------------
  for (const auto& named : spec.named_domains) {
    const std::string term_id = "term/" + named.domain;
    const TerminatorId tid = new_terminator(term_id, named.config, 0,
                                            StableHash64(named.domain));
    auto& maint = maintenance_[tid];
    for (const int day : named.stek_rotation_days) {
      maint.forced_stek_rotations.push_back(day * kDay + 30);
    }
    for (const int day : named.dhe_rotation_days) {
      maint.forced_kex_rotations.push_back(day * kDay + 30);
    }
    for (const int day : named.ecdhe_rotation_days) {
      maint.forced_kex_rotations.push_back(day * kDay + 30);
    }
    std::sort(maint.forced_stek_rotations.begin(),
              maint.forced_stek_rotations.end());
    std::sort(maint.forced_kex_rotations.begin(),
              maint.forced_kex_rotations.end());
    const std::vector<int> ranks = {named.rank};
    Rng domain_rng = rng.Fork("named/" + named.domain);
    provision_group({named.domain}, {tid}, named.config,
                    /*share_cache=*/false, /*share_stek=*/false,
                    /*share_kex=*/false, /*domains_per_cert=*/1,
                    /*trusted=*/true,
                    /*as_number=*/static_cast<std::uint32_t>(
                        20000 + StableHash64(named.domain) % 40000),
                    named.domain, rank_cursor, &ranks, /*stable=*/true,
                    /*presence_prob=*/1.0, /*mx_google=*/0.0, domain_rng);
    ++trusted_used;
  }
  rank_cursor = 1000;  // synthetic domains rank below the named head

  // --- named groups --------------------------------------------------------
  for (const auto& group : spec.named_groups) {
    const int count = std::max(
        group.min_domains,
        static_cast<int>(group.domains_per_million * scale));
    const std::string base = group.operator_name;
    const int n_terms = std::max(1, group.terminators);
    std::vector<TerminatorId> fleet;
    for (int t = 0; t < n_terms; ++t) {
      const TerminatorId tid = new_terminator(
          "term/" + base + "/" + std::to_string(t), group.config, 0,
          StableHash64(base) + static_cast<std::uint64_t>(t));
      auto& maint = maintenance_[tid];
      for (const int day : group.stek_rotation_days) {
        maint.forced_stek_rotations.push_back(day * kDay + 30);
      }
      std::sort(maint.forced_stek_rotations.begin(),
                maint.forced_stek_rotations.end());
      fleet.push_back(tid);
    }
    // STEK/KEX sharing spans the whole group; caches are per-terminator
    // unless share_cache.
    for (std::size_t t = 1; t < fleet.size(); ++t) {
      auto& first = *terminators_[fleet[0]];
      auto& term = *terminators_[fleet[t]];
      if (group.share_stek) term.SetStekManager(first.SharedSteks());
      if (group.share_kex) term.SetKexCache(first.SharedKex());
      if (group.share_cache) term.SetSessionCache(first.SharedCache());
    }
    Rng group_rng = rng.Fork("group/" + base);
    const std::uint32_t as_number =
        static_cast<std::uint32_t>(30000 + StableHash64(base) % 30000);
    // Partition domains across the fleet's terminators.
    for (int t = 0; t < n_terms; ++t) {
      std::vector<std::string> names;
      for (int i = t; i < count; i += n_terms) {
        names.push_back("site" + std::to_string(i) + "." + base + ".sim");
      }
      if (names.empty()) continue;
      provision_group(names, {fleet[static_cast<std::size_t>(t)]},
                      group.config, false, false, false,
                      /*domains_per_cert=*/std::max<int>(1, count / 4),
                      /*trusted=*/true, as_number, base, rank_cursor,
                      nullptr, /*stable=*/true, /*presence_prob=*/1.0, 0.0,
                      group_rng);
    }
    trusted_used += static_cast<std::size_t>(count);
    rank_cursor += count;
  }

  // --- archetype operators ---------------------------------------------------
  double total_share = 0;
  for (const auto& op : spec.operators) total_share += op.trusted_share;
  const std::size_t archetype_budget =
      trusted_target > trusted_used ? trusted_target - trusted_used : 0;

  for (const auto& op : spec.operators) {
    const auto op_domains = static_cast<std::size_t>(
        static_cast<double>(archetype_budget) * op.trusted_share /
        total_share);
    if (op_domains == 0) continue;
    const int instances = std::max(1, op.instances);
    const std::size_t per_instance =
        std::max<std::size_t>(1, op_domains / static_cast<std::size_t>(instances));
    Rng op_rng = rng.Fork("op/" + op.name);

    std::size_t produced = 0;
    for (int inst = 0; inst < instances && produced < op_domains; ++inst) {
      const std::size_t want =
          std::min(per_instance, op_domains - produced);
      if (want == 0) break;
      const std::string inst_name =
          op.name + (instances > 1 ? "-" + std::to_string(inst) : "");
      // AS: one per instance for big orgs; small archetypes pool into a
      // bounded set of hosting ASes so co-AS sampling finds candidates.
      const std::uint32_t as_number =
          instances == 1
              ? static_cast<std::uint32_t>(1000 + StableHash64(op.name) % 9000)
              : static_cast<std::uint32_t>(
                    50000 + StableHash64(op.name) % 1000 +
                    static_cast<std::uint32_t>(inst) % 64);

      // Decide ephemeral-value reuse for this instance.
      server::ServerConfig config = op.config;
      auto apply_reuse = [&op_rng](const ReuseMix& mix,
                                   server::KexReusePolicy& policy) {
        if (mix.reuse_fraction <= 0 || !op_rng.Bernoulli(mix.reuse_fraction)) {
          return;
        }
        policy.reuse = true;
        policy.ttl = 0;
        if (!mix.ttl_mix.empty()) {
          std::vector<double> weights;
          weights.reserve(mix.ttl_mix.size());
          for (const auto& [w, ttl] : mix.ttl_mix) weights.push_back(w);
          policy.ttl = mix.ttl_mix[op_rng.WeightedIndex(weights)].second;
        }
      };
      apply_reuse(op.dhe_reuse, config.dhe_reuse);
      apply_reuse(op.ecdhe_reuse, config.ecdhe_reuse);

      const int subfleets = std::max(1, op.subfleets);
      const int per_fleet =
          std::max(1, op.terminators_per_instance / subfleets);
      // Restart interval jitter: ±40% per instance.
      SimTime restart = op.restart_every;
      if (restart > 0) {
        const double jitter = 0.6 + 0.8 * op_rng.UniformDouble();
        restart = static_cast<SimTime>(static_cast<double>(restart) * jitter);
        restart = std::max<SimTime>(restart, kHour);
      }

      std::vector<std::vector<TerminatorId>> fleets(
          static_cast<std::size_t>(subfleets));
      std::vector<TerminatorId> all_terminators;
      for (int sf = 0; sf < subfleets; ++sf) {
        for (int t = 0; t < per_fleet; ++t) {
          const TerminatorId tid = new_terminator(
              "term/" + inst_name + "/" + std::to_string(sf) + "." +
                  std::to_string(t),
              config, restart,
              StableHash64(inst_name) + static_cast<std::uint64_t>(sf * 131 + t));
          fleets[static_cast<std::size_t>(sf)].push_back(tid);
          all_terminators.push_back(tid);
        }
      }
      // STEK sharing: instance-wide, and optionally via a cross-operator
      // pool (one synchronized key file for the whole organization).
      if (!op.stek_pool.empty()) {
        auto [it, inserted] = stek_pools.try_emplace(
            op.stek_pool, terminators_[all_terminators[0]]->SharedSteks());
        for (const TerminatorId tid : all_terminators) {
          terminators_[tid]->SetStekManager(it->second);
        }
      } else if (op.share_stek_across_fleet && all_terminators.size() > 1) {
        auto shared = terminators_[all_terminators[0]]->SharedSteks();
        for (std::size_t i = 1; i < all_terminators.size(); ++i) {
          terminators_[all_terminators[i]]->SetStekManager(shared);
        }
      }

      // Domain names for this instance, spread across sub-fleets.
      std::vector<std::vector<std::string>> names(
          static_cast<std::size_t>(subfleets));
      // Optional weighted split (CloudFlare's ~2:1 cache groups).
      std::vector<double> cumulative;
      if (!op.subfleet_weights.empty()) {
        double total = 0;
        for (double w : op.subfleet_weights) total += w;
        double acc = 0;
        for (double w : op.subfleet_weights) {
          acc += w / total;
          cumulative.push_back(acc);
        }
      }
      for (std::size_t i = 0; i < want; ++i) {
        std::size_t sf;
        if (cumulative.empty()) {
          sf = i % static_cast<std::size_t>(subfleets);
        } else {
          const double f =
              (static_cast<double>(i) + 0.5) / static_cast<double>(want);
          sf = 0;
          while (sf + 1 < cumulative.size() && f > cumulative[sf]) ++sf;
        }
        names[sf].push_back("www" + std::to_string(i) + "." + inst_name +
                            ".sim");
      }
      for (int sf = 0; sf < subfleets; ++sf) {
        if (names[static_cast<std::size_t>(sf)].empty()) continue;
        // Cache/KEX sharing stays within the sub-fleet; STEK sharing was
        // handled instance-wide above.
        provision_group(names[static_cast<std::size_t>(sf)],
                        fleets[static_cast<std::size_t>(sf)], config,
                        op.share_cache_across_fleet,
                        /*share_stek=*/false,
                        op.share_kex_across_fleet,
                        std::max(1, op.domains_per_cert), /*trusted=*/true,
                        as_number, inst_name, rank_cursor, nullptr,
                        /*stable=*/true, 1.0, op.mx_google_fraction, op_rng);
      }
      produced += want;
    }
    trusted_used += produced;
  }

  // --- HTTPS-but-untrusted stable domains ----------------------------------
  {
    Rng untrusted_rng = rng.Fork("untrusted");
    const std::size_t per_term = 16;
    std::size_t made = 0;
    int batch = 0;
    while (made < https_untrusted_target) {
      const std::size_t count =
          std::min(per_term, https_untrusted_target - made);
      server::ServerConfig config;  // defaults; behaviour barely matters
      config.tickets.enabled = untrusted_rng.Bernoulli(0.7);
      const TerminatorId tid = new_terminator(
          "term/untrusted-" + std::to_string(batch), config, 7 * kDay,
          StableHash64("untrusted") + static_cast<std::uint64_t>(batch));
      std::vector<std::string> names;
      for (std::size_t i = 0; i < count; ++i) {
        names.push_back("self" + std::to_string(made + i) + ".untrusted.sim");
      }
      provision_group(names, {tid}, config, false, false, false, 4,
                      /*trusted=*/false,
                      static_cast<std::uint32_t>(60000 + batch % 128),
                      "untrusted-host", rank_cursor, nullptr, true, 1.0, 0.0,
                      untrusted_rng);
      made += count;
      ++batch;
    }
  }

  // --- non-HTTPS stable domains ---------------------------------------------
  {
    const std::size_t https_total = domains_.size();
    (void)https_total;
    const std::size_t no_https = stable_count > trusted_used +
                                        https_untrusted_target
                                     ? stable_count - trusted_used -
                                           https_untrusted_target
                                     : 0;
    for (std::size_t i = 0; i < no_https; ++i) {
      DomainInfo info;
      info.name = "plain" + std::to_string(i) + ".nohttps.sim";
      info.rank = 0;
      info.mx_google = (StableHash64(info.name) % 100) < 9;
      info.operator_name = "no-https";
      info.as_number = static_cast<std::uint32_t>(70000 + i % 512);
      info.https = false;
      info.stable = true;
      add_domain(std::move(info));
    }
  }

  // --- transient (churning) domains ------------------------------------------
  {
    Rng churn_rng = rng.Fork("churn");
    const auto pool = static_cast<std::size_t>(
        static_cast<double>(n) * spec.churn.transient_pool_factor);
    const std::size_t per_term = 32;
    TerminatorId current_term = 0;
    std::size_t on_current = per_term;
    int batch = 0;
    // Behaviour templates for the churning tail, mirroring the stable
    // cohort's implementation mix so single-day metrics stay calibrated.
    std::vector<server::ServerConfig> templates;
    {
      server::ServerConfig apache;  // defaults: all suites, 5m cache, 3m t.
      apache.session_cache.lifetime = 5 * kMinute;
      apache.tickets.lifetime_hint_seconds = 180;
      apache.tickets.acceptance_window = 3 * kMinute;
      templates.push_back(apache);                       // 0: apache (DHE)
      server::ServerConfig nodhe = apache;
      nodhe.suite_preference = {tls::CipherSuite::kEcdheWithAes128CbcSha256,
                                tls::CipherSuite::kStaticWithAes128CbcSha256};
      templates.push_back(nodhe);                        // 1: no DHE
      server::ServerConfig old = apache;
      old.suite_preference = {tls::CipherSuite::kDheWithAes128CbcSha256,
                              tls::CipherSuite::kStaticWithAes128CbcSha256};
      templates.push_back(old);                          // 2: no ECDHE
      server::ServerConfig iis = apache;
      iis.suite_preference = nodhe.suite_preference;
      iis.session_cache.lifetime = 10 * kHour;
      iis.tickets.codec = tls::TicketCodecKind::kSChannel;
      iis.tickets.acceptance_window = 10 * kHour;
      templates.push_back(iis);                          // 3: IIS
      server::ServerConfig no_tickets = apache;
      no_tickets.tickets.enabled = false;
      templates.push_back(no_tickets);                   // 4: no tickets
      server::ServerConfig nginx = apache;
      nginx.session_cache.enabled = false;
      nginx.session_cache.issue_id_without_cache = true;
      nginx.suite_preference = nodhe.suite_preference;
      templates.push_back(nginx);                        // 5: id, no cache
      server::ServerConfig smallhost = apache;
      smallhost.session_cache.lifetime = 30 * kMinute;
      smallhost.tickets.lifetime_hint_seconds = 1800;
      smallhost.tickets.acceptance_window = 30 * kMinute;
      templates.push_back(smallhost);                    // 6: 30m windows
    }
    const std::vector<double> template_weights = {0.22, 0.20, 0.10, 0.10,
                                                  0.12, 0.12, 0.14};
    for (std::size_t i = 0; i < pool; ++i) {
      const double u = churn_rng.UniformDouble();
      const double presence = spec.churn.transient_max_presence * u;
      const bool https = churn_rng.Bernoulli(0.55);
      const bool trusted = https && churn_rng.Bernoulli(0.62);
      DomainInfo info;
      info.name = "t" + std::to_string(i) + ".transient.sim";
      info.rank = 0;
      info.operator_name = "transient-host";
      info.as_number = static_cast<std::uint32_t>(80000 + i % 1024);
      info.https = https;
      info.trusted_cert = trusted;
      info.stable = false;
      info.presence_prob = presence;
      info.mx_google = churn_rng.Bernoulli(0.09);
      if (https) {
        if (on_current == per_term) {
          server::ServerConfig config =
              templates[churn_rng.WeightedIndex(template_weights)];
          // A tenth of shared-hosting boxes reuse ECDHE values for hours.
          if (churn_rng.Bernoulli(0.10)) {
            config.ecdhe_reuse = {.reuse = true, .ttl = 8 * kHour};
          }
          if (churn_rng.Bernoulli(0.02)) {
            config.dhe_reuse = {.reuse = true, .ttl = 6 * kHour};
          }
          current_term = new_terminator(
              "term/transient-" + std::to_string(batch++), config, 3 * kDay,
              StableHash64("transient") + i);
          on_current = 0;
        }
        ++on_current;
        server::Credential credential = server::MakeCredential(
            trusted ? trusted_int : untrusted_ca, {info.name},
            pki::SignatureScheme::kSchnorrSim61, cert_not_before,
            cert_not_after, trusted ? trusted_chain : untrusted_chain,
            ca_drbg);
        const std::size_t idx = terminators_[current_term]->AddCredential(
            std::move(credential));
        terminators_[current_term]->MapDomain(info.name, idx);
        info.endpoints = {current_term};
        by_ip_.emplace(terminator_ips_[current_term],
                       static_cast<DomainId>(domains_.size()));
      }
      by_as_.emplace(info.as_number, static_cast<DomainId>(domains_.size()));
      by_name_[info.name] = static_cast<DomainId>(domains_.size());
      domains_.push_back(std::move(info));
    }
  }

  // --- rank assignment post-pass ---------------------------------------------
  // Named domains carry their real Alexa ranks; everything else is spread
  // uniformly (and deterministically) over the remaining rank space so
  // rank-tier analyses (Figure 4) see a realistic mix at every tier.
  {
    std::unordered_set<int> taken;
    std::vector<DomainId> unranked;
    for (DomainId id = 0; id < domains_.size(); ++id) {
      if (domains_[id].rank > 0) {
        taken.insert(domains_[id].rank);
      } else {
        unranked.push_back(id);
      }
    }
    Rng rank_rng = rng.Fork("ranks");
    for (std::size_t i = unranked.size(); i > 1; --i) {
      const std::size_t j = rank_rng.UniformInt(i);
      std::swap(unranked[i - 1], unranked[j]);
    }
    int next_rank = 1;
    for (const DomainId id : unranked) {
      while (taken.count(next_rank) != 0) ++next_rank;
      domains_[id].rank = next_rank++;
    }
  }

  RegisterSchedules();
}

void Internet::RegisterSchedules() {
  // Hand every terminator's maintenance calendar to its (possibly shared)
  // STEK manager and KEX cache. Shared managers accumulate the schedules of
  // every sharing terminator, mirroring the old lazy per-terminator
  // application — but time-indexed, so concurrent probes observe the same
  // key epochs regardless of arrival order.
  for (TerminatorId tid = 0; tid < terminators_.size(); ++tid) {
    const Maintenance& m = maintenance_[tid];
    server::SslTerminator& term = *terminators_[tid];
    for (const SimTime t : m.forced_stek_rotations) {
      term.Steks().ScheduleForcedRotation(t);
    }
    for (const SimTime t : m.forced_kex_rotations) {
      term.Kex().ScheduleClearAt(t);
    }
    if (m.restart_every > 0) {
      term.Steks().ScheduleRestarts(m.next_restart, m.restart_every);
      term.Kex().SchedulePeriodicClear(m.next_restart, m.restart_every);
    }
  }
}

std::optional<DomainId> Internet::FindDomain(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

bool Internet::InTopListOnDay(DomainId id, int day) const {
  const DomainInfo& d = domains_[id];
  if (d.stable) return true;
  // Deterministic per (domain, day) presence draw.
  std::uint64_t state = seed_ ^ StableHash64(d.name) ^
                        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                     day + 1));
  const double u =
      static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  return u < d.presence_prob;
}

TerminatorId Internet::EndpointFor(DomainId id, SimTime now) const {
  const DomainInfo& d = domains_[id];
  assert(!d.endpoints.empty());
  if (d.endpoints.size() == 1) return d.endpoints[0];
  const int day = static_cast<int>(now / kDay);
  std::uint64_t state = seed_ ^ StableHash64(d.name) ^
                        (0xbf58476d1ce4e5b9ULL *
                         static_cast<std::uint64_t>(day + 7));
  std::uint64_t pick = SplitMix64(state);
  // 5% of connections land off-affinity (poorly configured LB).
  std::uint64_t conn_state = state ^ static_cast<std::uint64_t>(now);
  if (SplitMix64(conn_state) % 100 < 5) pick = SplitMix64(conn_state);
  return d.endpoints[pick % d.endpoints.size()];
}

void Internet::ApplyMaintenance(TerminatorId id, SimTime now) {
  // STEK rotations and KEX clears are schedule-driven inside the managers;
  // the only remaining lazy effect of a restart is flushing the session
  // cache (resumable state does not survive the process).
  Maintenance& m = maintenance_[id];
  if (m.restart_every <= 0) return;
  std::lock_guard<std::mutex> lock(m.mu);
  if (m.next_restart > now) return;
  // Only the most recent missed restart matters for the cache flush.
  const std::uint64_t periods =
      static_cast<std::uint64_t>(now - m.next_restart) /
          static_cast<std::uint64_t>(m.restart_every) +
      1;
  const SimTime last_restart =
      m.next_restart + static_cast<SimTime>(periods - 1) * m.restart_every;
  terminators_[id]->Cache().Clear();
  m.next_restart = last_restart + m.restart_every;
}

Internet::ConnectOutcome Internet::ConnectDetailed(DomainId id, SimTime now) {
  ConnectOutcome out;
  const DomainInfo& d = domains_[id];
  if (!d.https || d.endpoints.empty()) {
    out.status = ConnectStatus::kNoHttps;
    return out;
  }
  FaultDecision fault;
  if (FaultsEnabled()) {
    fault = fault_injector_->Decide(d, now);
    switch (fault.kind) {
      case FaultKind::kOutage:
        out.status = ConnectStatus::kOutage;
        return out;
      case FaultKind::kRefused:
        out.status = ConnectStatus::kRefused;
        return out;
      case FaultKind::kTimeout:
        out.status = ConnectStatus::kTimeout;
        return out;
      default:
        break;  // mid-handshake faults decorate the connection below
    }
  }
  const TerminatorId tid = EndpointFor(id, now);
  ApplyMaintenance(tid, now);
  out.connection = terminators_[tid]->NewConnection(now);
  if (fault.kind != FaultKind::kNone) {
    out.connection =
        std::make_unique<FaultyConnection>(std::move(out.connection), fault);
  }
  out.status = ConnectStatus::kOk;
  return out;
}

std::unique_ptr<tls::ServerConnection> Internet::Connect(DomainId id,
                                                         SimTime now) {
  return ConnectDetailed(id, now).connection;
}

void Internet::SetFaultSpec(const FaultSpec& spec) {
  fault_injector_ = std::make_unique<FaultInjector>(spec, seed_);
}

server::SslTerminator& Internet::Terminator(TerminatorId id) {
  return *terminators_[id];
}

std::uint32_t Internet::IpOf(TerminatorId id) const {
  return terminator_ips_[id];
}

Internet::RestartSchedule Internet::RestartScheduleOf(TerminatorId id) const {
  const Maintenance& m = maintenance_[id];
  // Both fields are construction-time constants (only next_restart mutates,
  // under the maintenance mutex), so no locking is needed here.
  return RestartSchedule{m.first_restart, m.restart_every};
}

std::vector<DomainId> Internet::DomainsOnIp(std::uint32_t ip) const {
  std::vector<DomainId> out;
  const auto [lo, hi] = by_ip_.equal_range(ip);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<DomainId> Internet::DomainsInAs(std::uint32_t as_number) const {
  std::vector<DomainId> out;
  const auto [lo, hi] = by_as_.equal_range(as_number);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

bool Internet::MxPointsAtGoogle(DomainId id) const {
  return domains_[id].mx_google;
}

}  // namespace tlsharm::simnet
