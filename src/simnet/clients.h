// Browser-population model (§2.2's context statistic).
//
// The paper motivates resumption's ubiquity with Mozilla telemetry: 50% of
// Firefox TLS sessions are resumptions. This module simulates a population
// of browsers — each with a per-host session store (one ticket/ID per host,
// like real browsers), a revisit process over a Zipf-ish site popularity
// distribution, and a session-store lifetime — and measures what fraction
// of their handshakes end up abbreviated against the simulated Internet.
//
// It doubles as the "victim traffic" generator for attack studies: every
// connection a BrowserPool makes can be tapped like any other.
#pragma once

#include <map>
#include <vector>

#include "crypto/drbg.h"
#include "simnet/internet.h"
#include "util/rng.h"

namespace tlsharm::simnet {

struct BrowserConfig {
  // Hosts a user browses regularly; visits are Zipf(1.0)-distributed over
  // this personal working set.
  int working_set_size = 12;
  // Mean think time between page visits while active.
  SimTime mean_gap = 10 * kMinute;
  // Browsers drop stored sessions after this long (client-side policy).
  SimTime client_session_lifetime = 24 * kHour;
};

struct TrafficStats {
  std::size_t connections = 0;
  std::size_t handshake_ok = 0;
  std::size_t resumed = 0;
  std::size_t resumed_via_ticket = 0;
  std::size_t offered_resumption = 0;  // had client-side state to offer

  double ResumptionRate() const {
    return handshake_ok == 0
               ? 0.0
               : static_cast<double>(resumed) /
                     static_cast<double>(handshake_ok);
  }
};

// A population of simulated browsers visiting the simulated Internet.
class BrowserPool {
 public:
  BrowserPool(Internet& net, BrowserConfig config, int browsers,
              std::uint64_t seed);

  // Advances all browsers through `duration` of simulated activity
  // starting at `start`, performing their visits. Returns aggregate stats.
  TrafficStats Browse(SimTime start, SimTime duration);

 private:
  struct StoredClientSession {
    Bytes session_id;
    Bytes ticket;
    Bytes master_secret;
    SimTime stored_at = 0;
  };

  struct Browser {
    std::vector<DomainId> working_set;
    std::map<DomainId, StoredClientSession> sessions;
    SimTime next_visit = 0;
    Rng rng{0};
  };

  // One visit by one browser; updates its session store.
  void Visit(Browser& browser, DomainId domain, SimTime now,
             TrafficStats& stats);

  Internet& net_;
  BrowserConfig config_;
  std::vector<Browser> browsers_;
  crypto::Drbg drbg_;
};

}  // namespace tlsharm::simnet
