#include "crypto/hkdf.h"

#include <cassert>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace tlsharm::crypto {

Bytes HkdfExtract(ByteView salt, ByteView ikm) {
  const Bytes zero_salt(kSha256DigestSize, 0);
  return HmacSha256Bytes(salt.empty() ? ByteView(zero_salt) : salt, ikm);
}

Bytes HkdfExpand(ByteView prk, ByteView info, std::size_t length) {
  assert(length <= 255 * kSha256DigestSize);
  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 mac(prk);
    mac.Update(t);
    mac.Update(info);
    mac.Update(ByteView(&counter, 1));
    const Sha256Digest digest = mac.Finish();
    t.assign(digest.begin(), digest.end());
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return out;
}

Bytes HkdfExpandLabel(ByteView secret, std::string_view label,
                      ByteView context, std::size_t length) {
  Bytes info;
  AppendUint(info, length, 2);
  const std::string full_label = "tls13 " + std::string(label);
  AppendUint(info, full_label.size(), 1);
  Append(info, ToBytes(full_label));
  AppendUint(info, context.size(), 1);
  Append(info, context);
  return HkdfExpand(secret, info, length);
}

Bytes DeriveSecret(ByteView secret, std::string_view label,
                   ByteView transcript_hash) {
  return HkdfExpandLabel(secret, label, transcript_hash, kSha256DigestSize);
}

}  // namespace tlsharm::crypto
