// HKDF (RFC 5869) with HMAC-SHA-256, plus the TLS 1.3 HKDF-Expand-Label
// construction (RFC 8446 §7.1) used by the TLS 1.3 PSK extension module.
#pragma once

#include <string_view>

#include "util/bytes.h"

namespace tlsharm::crypto {

// HKDF-Extract(salt, IKM) -> PRK (32 bytes).
Bytes HkdfExtract(ByteView salt, ByteView ikm);

// HKDF-Expand(PRK, info, L).
Bytes HkdfExpand(ByteView prk, ByteView info, std::size_t length);

// HKDF-Expand-Label(secret, label, context, L) with the "tls13 " prefix.
Bytes HkdfExpandLabel(ByteView secret, std::string_view label,
                      ByteView context, std::size_t length);

// Derive-Secret(secret, label, transcript) = Expand-Label over the
// transcript hash.
Bytes DeriveSecret(ByteView secret, std::string_view label,
                   ByteView transcript_hash);

}  // namespace tlsharm::crypto
