// TLS 1.2 pseudo-random function (RFC 5246 §5), P_SHA256 only.
//
// Derives the master secret from the premaster secret and the key block from
// the master secret — both for full handshakes and for abbreviated
// (resumption) handshakes, which rerun the key-block derivation with fresh
// randoms over the *original* master secret.
#pragma once

#include <string_view>

#include "util/bytes.h"

namespace tlsharm::crypto {

// PRF(secret, label, seed)[0..out_len)
Bytes Tls12Prf(ByteView secret, std::string_view label, ByteView seed,
               std::size_t out_len);

// Standard derivations, kept here so client/server/attacker share one code
// path (the attacker must derive exactly what the endpoints derived).
Bytes DeriveMasterSecret(ByteView premaster, ByteView client_random,
                         ByteView server_random);
Bytes DeriveKeyBlock(ByteView master_secret, ByteView server_random,
                     ByteView client_random, std::size_t out_len);
Bytes ComputeVerifyData(ByteView master_secret, std::string_view label,
                        ByteView transcript_hash);

}  // namespace tlsharm::crypto
