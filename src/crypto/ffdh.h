// Finite-field Diffie-Hellman over safe-prime groups (the "DHE" in TLS).
//
// Groups are safe primes p = 2q + 1 with generator g = 2; private keys are
// sampled in [2, q). The 256-bit group's prime was generated offline with a
// deterministic Miller-Rabin search (seeded with the study's start date) and
// both groups' parameters are re-validated by tests via ProbablyPrime().
#pragma once

#include "crypto/biguint.h"
#include "crypto/kex.h"

namespace tlsharm::crypto {

struct FfdhParams {
  std::string_view name;
  NamedGroup id;
  std::string_view p_hex;  // safe prime
  std::string_view q_hex;  // (p-1)/2, prime
  std::uint64_t g;         // generator of the full group
};

// The embedded parameter sets.
const FfdhParams& FfdhSim61Params();
const FfdhParams& FfdhSim256Params();

class FfdhGroup final : public KexGroup {
 public:
  explicit FfdhGroup(const FfdhParams& params);

  std::string_view Name() const override { return params_.name; }
  NamedGroup Id() const override { return params_.id; }
  KexKind Kind() const override { return KexKind::kDhe; }
  std::size_t PublicValueSize() const override { return value_width_; }

  KexKeyPair GenerateKeyPair(Drbg& drbg) const override;
  std::optional<Bytes> SharedSecret(ByteView private_key,
                                    ByteView peer_public) const override;

  const BigUInt& Prime() const { return p_; }
  const BigUInt& SubgroupOrder() const { return q_; }

 private:
  FfdhParams params_;
  BigUInt p_;
  BigUInt q_;
  BigUInt g_;
  Montgomery mont_p_;
  // Generator-powers table: private exponents live in [2, q), so the table
  // covers q's bit length and keygen needs no squarings at all. Built once
  // at group construction, immutable afterwards (thread-safe to share).
  Montgomery::FixedBaseTable g_table_;
  std::size_t value_width_;
};

}  // namespace tlsharm::crypto
