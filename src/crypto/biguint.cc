#include "crypto/biguint.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "crypto/tuning.h"

namespace tlsharm::crypto {

using u128 = unsigned __int128;

namespace {
// Scratch buffers for moduli up to this many limbs live on the stack; the
// shipped groups use 1 (sim61) or 4 (sim256) limbs, so the heap fallback
// only triggers for outsized test moduli.
constexpr std::size_t kStackLimbs = 64;
}  // namespace

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::FromU64(std::uint64_t v) {
  BigUInt out;
  if (v != 0) out.limbs_.push_back(v);
  return out;
}

BigUInt BigUInt::FromHex(std::string_view hex) {
  if (hex.substr(0, 2) == "0x") hex.remove_prefix(2);
  BigUInt out;
  out.limbs_.assign((hex.size() * 4 + 63) / 64, 0);
  std::size_t bit = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it, bit += 4) {
    const char c = *it;
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else std::abort();
    out.limbs_[bit / 64] |= static_cast<std::uint64_t>(v) << (bit % 64);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::FromBytes(ByteView big_endian) {
  BigUInt out;
  out.limbs_.assign((big_endian.size() + 7) / 8, 0);
  std::size_t byte_idx = 0;
  for (auto it = big_endian.rbegin(); it != big_endian.rend();
       ++it, ++byte_idx) {
    out.limbs_[byte_idx / 8] |= static_cast<std::uint64_t>(*it)
                                << (8 * (byte_idx % 8));
  }
  out.Normalize();
  return out;
}

Bytes BigUInt::ToBytes(std::size_t width) const {
  Bytes out;
  const std::size_t min_width = (BitLength() + 7) / 8;
  const std::size_t w = width == 0 ? std::max<std::size_t>(min_width, 1)
                                   : width;
  assert(w >= min_width);
  out.assign(w, 0);
  for (std::size_t byte_idx = 0; byte_idx < min_width; ++byte_idx) {
    out[w - 1 - byte_idx] = static_cast<std::uint8_t>(
        limbs_[byte_idx / 8] >> (8 * (byte_idx % 8)));
  }
  return out;
}

std::string BigUInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      out.push_back(digits[(limbs_[i] >> (4 * nib)) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::size_t BigUInt::BitLength() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 64;
  std::uint64_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::Bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUInt::Compare(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt BigUInt::Add(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(a.Limb(i)) + b.Limb(i) + carry;
    out.limbs_.push_back(static_cast<std::uint64_t>(sum));
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  if (carry) out.limbs_.push_back(carry);
  out.Normalize();
  return out;
}

BigUInt BigUInt::Sub(const BigUInt& a, const BigUInt& b) {
  assert(Compare(a, b) >= 0);
  BigUInt out;
  out.limbs_.reserve(a.limbs_.size());
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t ai = a.limbs_[i];
    const std::uint64_t bi = b.Limb(i);
    const std::uint64_t diff = ai - bi - borrow;
    borrow = (ai < bi + borrow) || (bi == UINT64_MAX && borrow) ? 1 : 0;
    out.limbs_.push_back(diff);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::Mul(const BigUInt& a, const BigUInt& b) {
  if (a.IsZero() || b.IsZero()) return {};
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftLeft1() const {
  BigUInt out;
  out.limbs_.reserve(limbs_.size() + 1);
  std::uint64_t carry = 0;
  for (std::uint64_t limb : limbs_) {
    out.limbs_.push_back((limb << 1) | carry);
    carry = limb >> 63;
  }
  if (carry) out.limbs_.push_back(carry);
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftRight1() const {
  BigUInt out;
  out.limbs_.resize(limbs_.size());
  std::uint64_t carry = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out.limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
    carry = limbs_[i] & 1;
  }
  out.Normalize();
  return out;
}

// ---------------------------------------------------------------------------
// Montgomery

Montgomery::Montgomery(const BigUInt& modulus) : n_(modulus) {
  assert(n_.IsOdd() && !n_.IsZero());
  k_ = n_.limbs_.size();
  // n0inv = -n^{-1} mod 2^64 via Newton iteration.
  const std::uint64_t n0 = n_.limbs_[0];
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n0inv_ = ~inv + 1;  // -inv mod 2^64

  // R mod n by 64k doubling steps from 1, then R^2 mod n by 64k more.
  BigUInt x = BigUInt::FromU64(1);
  for (std::size_t i = 0; i < 64 * k_; ++i) {
    x = x.ShiftLeft1();
    if (BigUInt::Compare(x, n_) >= 0) x = BigUInt::Sub(x, n_);
  }
  r_mod_n_ = x;
  for (std::size_t i = 0; i < 64 * k_; ++i) {
    x = x.ShiftLeft1();
    if (BigUInt::Compare(x, n_) >= 0) x = BigUInt::Sub(x, n_);
  }
  rr_ = x;
  // 2^64 mod n.
  BigUInt t = BigUInt::FromU64(1);
  for (int i = 0; i < 64; ++i) {
    t = t.ShiftLeft1();
    if (BigUInt::Compare(t, n_) >= 0) t = BigUInt::Sub(t, n_);
  }
  t64_ = t;
}

std::uint64_t Montgomery::MontMul64(std::uint64_t a, std::uint64_t b) const {
  // One-limb REDC: r = a*b*R^{-1} mod n with R = 2^64. The low 64 bits of
  // t + m*n are zero by construction, so the carry out of them is 1 exactly
  // when low64(t) is nonzero.
  const std::uint64_t n = n_.limbs_[0];
  const u128 t = static_cast<u128>(a) * b;
  const std::uint64_t m = static_cast<std::uint64_t>(t) * n0inv_;
  const u128 mn = static_cast<u128>(m) * n;
  u128 r = (t >> 64) + (mn >> 64) +
           (static_cast<std::uint64_t>(t) != 0 ? 1 : 0);
  if (r >= n) r -= n;
  return static_cast<std::uint64_t>(r);
}

void Montgomery::MontMul(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out) const {
  if (k_ == 1) {
    out[0] = MontMul64(a[0], b[0]);
    return;
  }
  // CIOS: t has k_+2 limbs. Stack scratch keeps the per-multiply cost free
  // of allocations (this is the exponentiation inner loop).
  std::uint64_t t_stack[kStackLimbs + 2];
  std::vector<std::uint64_t> t_heap;
  std::uint64_t* t = t_stack;
  if (k_ > kStackLimbs) {
    t_heap.assign(k_ + 2, 0);
    t = t_heap.data();
  } else {
    std::fill(t, t + k_ + 2, 0);
  }
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<std::uint64_t>(s);
    t[k_ + 1] += static_cast<std::uint64_t>(s >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; then shift right one limb.
    const std::uint64_t m = t[0] * n0inv_;
    carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(m) * n_.limbs_[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<std::uint64_t>(s);
    t[k_ + 1] += static_cast<std::uint64_t>(s >> 64);

    for (std::size_t j = 0; j <= k_; ++j) t[j] = t[j + 1];
    t[k_ + 1] = 0;
  }
  for (std::size_t j = 0; j < k_; ++j) out[j] = t[j];
  // Conditional subtract if out >= n (t[k_] can be 0 or 1).
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t j = k_; j-- > 0;) {
      if (out[j] != n_.limbs_[j]) {
        ge = out[j] > n_.limbs_[j];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t nj = n_.limbs_[j];
      const std::uint64_t oj = out[j];
      out[j] = oj - nj - borrow;
      borrow = (oj < nj + borrow) || (nj == UINT64_MAX && borrow) ? 1 : 0;
    }
  }
}

namespace {
std::vector<std::uint64_t> PadLimbs(const BigUInt& a, std::size_t k) {
  std::vector<std::uint64_t> out(k, 0);
  for (std::size_t i = 0; i < k; ++i) out[i] = a.Limb(i);
  return out;
}
BigUInt FromLimbs(const std::vector<std::uint64_t>& limbs) {
  Bytes be;
  be.reserve(limbs.size() * 8);
  for (std::size_t i = limbs.size(); i-- > 0;) {
    for (int b = 7; b >= 0; --b) {
      be.push_back(static_cast<std::uint8_t>(limbs[i] >> (8 * b)));
    }
  }
  return BigUInt::FromBytes(be);
}
}  // namespace

BigUInt Montgomery::ToMont(const BigUInt& a) const {
  return MontMulBig(a, rr_);
}

// Helper defined out-of-line to keep MontMul limb-oriented.
BigUInt Montgomery::FromMont(const BigUInt& a) const {
  return MontMulBig(a, BigUInt::FromU64(1));
}

BigUInt Montgomery::MulMod(const BigUInt& a, const BigUInt& b) const {
  if (k_ == 1) {
    const u128 prod = static_cast<u128>(a.Limb(0)) * b.Limb(0);
    return BigUInt::FromU64(
        static_cast<std::uint64_t>(prod % n_.limbs_[0]));
  }
  // mont(aR, bR) = abR; convert only once.
  const BigUInt am = MontMulBig(a, rr_);  // aR
  return MontMulBig(am, b);               // abR * R^{-1} = ab
}

BigUInt Montgomery::AddMod(const BigUInt& a, const BigUInt& b) const {
  return CondSub(BigUInt::Add(a, b));
}

BigUInt Montgomery::SubMod(const BigUInt& a, const BigUInt& b) const {
  if (BigUInt::Compare(a, b) >= 0) return BigUInt::Sub(a, b);
  return BigUInt::Sub(BigUInt::Add(a, n_), b);
}

BigUInt Montgomery::CondSub(BigUInt a) const {
  if (BigUInt::Compare(a, n_) >= 0) return BigUInt::Sub(a, n_);
  return a;
}

std::uint64_t Montgomery::PowModU64(std::uint64_t base,
                                    const BigUInt& exp) const {
  const std::uint64_t n = n_.limbs_[0];
  std::uint64_t result = 1 % n;
  std::uint64_t b = base % n;
  for (std::size_t limb = 0; limb < exp.LimbCount(); ++limb) {
    std::uint64_t word = exp.Limb(limb);
    // Full 64 squarings per limb except the top one, where we can stop at
    // the highest set bit; simpler to run all bits (squaring past the top
    // multiplies by 1 implicitly since word bits are 0).
    for (int bit = 0; bit < 64; ++bit) {
      if (word & 1) {
        result = static_cast<std::uint64_t>(
            (static_cast<u128>(result) * b) % n);
      }
      word >>= 1;
      if (word == 0 && limb + 1 == exp.LimbCount()) break;
      b = static_cast<std::uint64_t>((static_cast<u128>(b) * b) % n);
    }
  }
  return result;
}

std::uint64_t Montgomery::PowModU64Windowed(std::uint64_t base,
                                            const BigUInt& exp) const {
  const std::uint64_t n = n_.limbs_[0];
  const std::uint64_t one_m = r_mod_n_.Limb(0);  // 1 in Montgomery domain
  const std::uint64_t b = MontMul64(base % n, rr_.Limb(0));
  std::uint64_t table[8];  // b^1, b^3, ..., b^15 (Montgomery domain)
  table[0] = b;
  const std::uint64_t sq = MontMul64(b, b);
  for (int i = 1; i < 8; ++i) table[i] = MontMul64(table[i - 1], sq);
  // Inline bit access: BigUInt::Bit is an out-of-line call, too slow to
  // invoke once per exponent bit on this sub-microsecond path.
  const auto bit = [&exp](std::size_t j) {
    return (exp.Limb(j >> 6) >> (j & 63)) & 1;
  };
  std::uint64_t acc = one_m;
  bool started = false;
  std::size_t i = exp.BitLength();
  while (i > 0) {
    if (!bit(i - 1)) {
      if (started) acc = MontMul64(acc, acc);
      --i;
      continue;
    }
    // Window [i-1 .. l] ending at a set bit, so the digit is odd.
    std::size_t l = i >= 4 ? i - 4 : 0;
    while (!bit(l)) ++l;
    int digit = 0;
    for (std::size_t j = i; j-- > l;) {
      if (started) acc = MontMul64(acc, acc);
      digit = (digit << 1) | static_cast<int>(bit(j));
    }
    acc = started ? MontMul64(acc, table[digit >> 1])
                  : table[digit >> 1];
    started = true;
    i = l;
  }
  return MontMul64(started ? acc : one_m, 1);  // out of the Montgomery domain
}

BigUInt Montgomery::PowModReference(const BigUInt& base,
                                    const BigUInt& exp) const {
  if (k_ == 1) {
    const std::uint64_t b =
        base.LimbCount() <= 1 ? base.Limb(0)
                              : Reduce(base).Limb(0);
    return BigUInt::FromU64(PowModU64(b, exp));
  }
  BigUInt result = r_mod_n_;          // 1 in Montgomery domain
  const BigUInt base_m =
      ToMont(BigUInt::Compare(base, n_) < 0 ? base : Reduce(base));
  const std::size_t bits = exp.BitLength();
  for (std::size_t i = bits; i-- > 0;) {
    result = MontMulBig(result, result);
    if (exp.Bit(i)) result = MontMulBig(result, base_m);
  }
  return FromMont(result);
}

BigUInt Montgomery::PowMod(const BigUInt& base, const BigUInt& exp) const {
  if (ReferenceCryptoEnabled()) return PowModReference(base, exp);
  if (k_ == 1) {
    const std::uint64_t b =
        base.LimbCount() <= 1 ? base.Limb(0) : Reduce(base).Limb(0);
    return BigUInt::FromU64(PowModU64Windowed(b, exp));
  }
  if (BigUInt::Compare(base, n_) < 0) {
    return PowModWindowed(PrecomputeOddPowers(base), exp);
  }
  return PowModWindowed(PrecomputeOddPowers(Reduce(base)), exp);
}

// --- windowed exponentiation ------------------------------------------------
//
// All table entries and accumulators below are k_-limb values in the
// Montgomery domain. MontMul tolerates out aliasing an input (it reads
// operand limbs before the final copy-out), so squarings run in place.

void Montgomery::ToMontLimbs(const BigUInt& a, std::uint64_t* out) const {
  std::uint64_t stack[2 * kStackLimbs];
  std::vector<std::uint64_t> heap;
  std::uint64_t* buf = stack;
  if (k_ > kStackLimbs) {
    heap.assign(2 * k_, 0);
    buf = heap.data();
  }
  std::uint64_t* al = buf;
  std::uint64_t* rl = buf + k_;
  for (std::size_t i = 0; i < k_; ++i) {
    al[i] = a.Limb(i);
    rl[i] = rr_.Limb(i);
  }
  MontMul(al, rl, out);
}

BigUInt Montgomery::FromMontLimbs(const std::uint64_t* a) const {
  std::uint64_t stack[2 * kStackLimbs];
  std::vector<std::uint64_t> heap;
  std::uint64_t* buf = stack;
  if (k_ > kStackLimbs) {
    heap.assign(2 * k_, 0);
    buf = heap.data();
  }
  std::uint64_t* one = buf;
  std::uint64_t* out = buf + k_;
  std::fill(one, one + k_, 0);
  one[0] = 1;
  MontMul(a, one, out);
  BigUInt r;
  r.limbs_.assign(out, out + k_);
  r.Normalize();
  return r;
}

Montgomery::OddPowers Montgomery::PrecomputeOddPowers(
    const BigUInt& base) const {
  OddPowers t;
  t.limbs_.assign(8 * k_, 0);
  std::uint64_t sq_stack[kStackLimbs];
  std::vector<std::uint64_t> sq_heap;
  std::uint64_t* sq = sq_stack;
  if (k_ > kStackLimbs) {
    sq_heap.assign(k_, 0);
    sq = sq_heap.data();
  }
  ToMontLimbs(base, t.limbs_.data());             // base^1
  MontMul(t.limbs_.data(), t.limbs_.data(), sq);  // base^2
  for (std::size_t i = 1; i < 8; ++i) {           // base^(2i+1)
    MontMul(&t.limbs_[(i - 1) * k_], sq, &t.limbs_[i * k_]);
  }
  return t;
}

Montgomery::WindowTable Montgomery::PrecomputeWindowTable(
    const BigUInt& base) const {
  WindowTable t;
  t.limbs_.assign(15 * k_, 0);
  ToMontLimbs(base, t.limbs_.data());  // base^1
  for (std::size_t d = 2; d <= 15; ++d) {
    MontMul(&t.limbs_[(d - 2) * k_], t.limbs_.data(),
            &t.limbs_[(d - 1) * k_]);
  }
  return t;
}

Montgomery::FixedBaseTable Montgomery::PrecomputeFixedBase(
    const BigUInt& base, std::size_t max_exp_bits) const {
  FixedBaseTable t;
  t.windows_ = (max_exp_bits + 3) / 4;
  t.limbs_.assign(t.windows_ * 15 * k_, 0);
  std::uint64_t cur_stack[kStackLimbs];
  std::vector<std::uint64_t> cur_heap;
  std::uint64_t* cur = cur_stack;
  if (k_ > kStackLimbs) {
    cur_heap.assign(k_, 0);
    cur = cur_heap.data();
  }
  ToMontLimbs(base, cur);  // base^(16^0)
  for (std::size_t w = 0; w < t.windows_; ++w) {
    std::uint64_t* window = &t.limbs_[w * 15 * k_];
    std::copy(cur, cur + k_, window);  // d = 1
    for (std::size_t d = 2; d <= 15; ++d) {
      MontMul(&window[(d - 2) * k_], cur, &window[(d - 1) * k_]);
    }
    if (w + 1 < t.windows_) {
      MontMul(&window[14 * k_], cur, cur);  // base^(16^(w+1))
    }
  }
  return t;
}

BigUInt Montgomery::PowModWindowed(const OddPowers& table,
                                   const BigUInt& exp) const {
  assert(table.limbs_.size() == 8 * k_);
  std::uint64_t acc_stack[kStackLimbs];
  std::vector<std::uint64_t> acc_heap;
  std::uint64_t* acc = acc_stack;
  if (k_ > kStackLimbs) {
    acc_heap.assign(k_, 0);
    acc = acc_heap.data();
  }
  bool started = false;
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(exp.BitLength()) - 1;
  while (i >= 0) {
    if (!exp.Bit(static_cast<std::size_t>(i))) {
      MontMul(acc, acc, acc);  // started is implied: the top bit is set
      --i;
      continue;
    }
    // Widest window [i, l] with an odd value (bit l set), at most 4 bits.
    std::ptrdiff_t l = i >= 3 ? i - 3 : 0;
    while (!exp.Bit(static_cast<std::size_t>(l))) ++l;
    int digit = 0;
    for (std::ptrdiff_t j = i; j >= l; --j) {
      digit = (digit << 1) | (exp.Bit(static_cast<std::size_t>(j)) ? 1 : 0);
    }
    const std::uint64_t* entry = &table.limbs_[(digit >> 1) * k_];
    if (started) {
      for (std::ptrdiff_t j = i; j >= l; --j) MontMul(acc, acc, acc);
      MontMul(acc, entry, acc);
    } else {
      std::copy(entry, entry + k_, acc);
      started = true;
    }
    i = l - 1;
  }
  if (!started) {
    for (std::size_t j = 0; j < k_; ++j) acc[j] = r_mod_n_.Limb(j);
  }
  return FromMontLimbs(acc);
}

BigUInt Montgomery::PowModFixedBase(const FixedBaseTable& table,
                                    const BigUInt& exp) const {
  assert(exp.BitLength() <= table.MaxExpBits());
  const std::size_t windows = (exp.BitLength() + 3) / 4;
  if (k_ == 1) {
    std::uint64_t acc64 = 0;
    bool started64 = false;
    for (std::size_t i = 0; i < windows; ++i) {
      const int d = Nibble(exp, i);
      if (d == 0) continue;
      const std::uint64_t entry =
          table.limbs_[i * 15 + static_cast<std::size_t>(d) - 1];
      acc64 = started64 ? MontMul64(acc64, entry) : entry;
      started64 = true;
    }
    if (!started64) acc64 = r_mod_n_.Limb(0);
    return BigUInt::FromU64(MontMul64(acc64, 1));
  }
  std::uint64_t acc_stack[kStackLimbs];
  std::vector<std::uint64_t> acc_heap;
  std::uint64_t* acc = acc_stack;
  if (k_ > kStackLimbs) {
    acc_heap.assign(k_, 0);
    acc = acc_heap.data();
  }
  bool started = false;
  for (std::size_t i = 0; i < windows; ++i) {
    const int d = Nibble(exp, i);
    if (d == 0) continue;
    const std::uint64_t* entry =
        &table.limbs_[(i * 15 + static_cast<std::size_t>(d) - 1) * k_];
    if (started) {
      MontMul(acc, entry, acc);
    } else {
      std::copy(entry, entry + k_, acc);
      started = true;
    }
  }
  if (!started) {
    for (std::size_t j = 0; j < k_; ++j) acc[j] = r_mod_n_.Limb(j);
  }
  return FromMontLimbs(acc);
}

BigUInt Montgomery::PowModDouble(const WindowTable& a, const BigUInt& ea,
                                 const WindowTable& b,
                                 const BigUInt& eb) const {
  assert(a.limbs_.size() == 15 * k_ && b.limbs_.size() == 15 * k_);
  std::uint64_t acc_stack[kStackLimbs];
  std::vector<std::uint64_t> acc_heap;
  std::uint64_t* acc = acc_stack;
  if (k_ > kStackLimbs) {
    acc_heap.assign(k_, 0);
    acc = acc_heap.data();
  }
  bool started = false;
  const std::size_t windows =
      (std::max(ea.BitLength(), eb.BitLength()) + 3) / 4;
  for (std::size_t i = windows; i-- > 0;) {
    if (started) {
      for (int s = 0; s < 4; ++s) MontMul(acc, acc, acc);
    }
    const int da = Nibble(ea, i);
    if (da != 0) {
      const std::uint64_t* entry =
          &a.limbs_[(static_cast<std::size_t>(da) - 1) * k_];
      if (started) {
        MontMul(acc, entry, acc);
      } else {
        std::copy(entry, entry + k_, acc);
        started = true;
      }
    }
    const int db = Nibble(eb, i);
    if (db != 0) {
      const std::uint64_t* entry =
          &b.limbs_[(static_cast<std::size_t>(db) - 1) * k_];
      if (started) {
        MontMul(acc, entry, acc);
      } else {
        std::copy(entry, entry + k_, acc);
        started = true;
      }
    }
  }
  if (!started) {
    for (std::size_t j = 0; j < k_; ++j) acc[j] = r_mod_n_.Limb(j);
  }
  return FromMontLimbs(acc);
}

BigUInt Montgomery::Reduce(const BigUInt& a) const {
  return ReduceBytes(a.ToBytes());
}

BigUInt Montgomery::ReduceBytes(ByteView b) const {
  // Process big-endian 8-byte digits: r = (r * 2^64 + digit) mod n.
  // When n fits in one limb a digit reduces with native modulo; otherwise
  // n >= 2^64 > digit and the digit is already reduced.
  const auto reduce_digit = [this](std::uint64_t d) {
    if (k_ == 1) d %= n_.limbs_[0];
    return BigUInt::FromU64(d);
  };
  BigUInt r;
  std::size_t off = 0;
  const std::size_t lead = b.size() % 8;
  if (lead != 0) {
    std::uint64_t d = 0;
    for (; off < lead; ++off) d = (d << 8) | b[off];
    r = reduce_digit(d);
  }
  for (; off + 8 <= b.size(); off += 8) {
    const std::uint64_t d = ReadUint(b, off, 8);
    r = MulMod(r, t64_);
    r = AddMod(r, reduce_digit(d));
  }
  return r;
}

BigUInt Montgomery::MontMulBig(const BigUInt& a, const BigUInt& b) const {
  const auto al = PadLimbs(a, k_);
  const auto bl = PadLimbs(b, k_);
  std::vector<std::uint64_t> out(k_, 0);
  MontMul(al.data(), bl.data(), out.data());
  return FromLimbs(out);
}

// ---------------------------------------------------------------------------

bool ProbablyPrime(const BigUInt& n) {
  if (n.IsZero()) return false;
  const BigUInt one = BigUInt::FromU64(1);
  const BigUInt two = BigUInt::FromU64(2);
  if (BigUInt::Compare(n, two) < 0) return false;
  if (n == two) return true;
  if (!n.IsOdd()) return false;

  const Montgomery mont(n);
  const BigUInt n_minus_1 = BigUInt::Sub(n, one);
  BigUInt d = n_minus_1;
  int r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight1();
    ++r;
  }
  static const std::uint64_t kBases[] = {2,  3,  5,  7,  11, 13,
                                         17, 19, 23, 29, 31, 37};
  for (std::uint64_t base : kBases) {
    const BigUInt a = mont.Reduce(BigUInt::FromU64(base));
    if (a.IsZero() || a == one) continue;
    BigUInt x = mont.PowMod(a, d);
    if (x == one || x == n_minus_1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mont.MulMod(x, x);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace tlsharm::crypto
