#include "crypto/biguint.h"

#include <cassert>
#include <cstdlib>

namespace tlsharm::crypto {

using u128 = unsigned __int128;

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::FromU64(std::uint64_t v) {
  BigUInt out;
  if (v != 0) out.limbs_.push_back(v);
  return out;
}

BigUInt BigUInt::FromHex(std::string_view hex) {
  if (hex.substr(0, 2) == "0x") hex.remove_prefix(2);
  BigUInt out;
  out.limbs_.assign((hex.size() * 4 + 63) / 64, 0);
  std::size_t bit = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it, bit += 4) {
    const char c = *it;
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else std::abort();
    out.limbs_[bit / 64] |= static_cast<std::uint64_t>(v) << (bit % 64);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::FromBytes(ByteView big_endian) {
  BigUInt out;
  out.limbs_.assign((big_endian.size() + 7) / 8, 0);
  std::size_t byte_idx = 0;
  for (auto it = big_endian.rbegin(); it != big_endian.rend();
       ++it, ++byte_idx) {
    out.limbs_[byte_idx / 8] |= static_cast<std::uint64_t>(*it)
                                << (8 * (byte_idx % 8));
  }
  out.Normalize();
  return out;
}

Bytes BigUInt::ToBytes(std::size_t width) const {
  Bytes out;
  const std::size_t min_width = (BitLength() + 7) / 8;
  const std::size_t w = width == 0 ? std::max<std::size_t>(min_width, 1)
                                   : width;
  assert(w >= min_width);
  out.assign(w, 0);
  for (std::size_t byte_idx = 0; byte_idx < min_width; ++byte_idx) {
    out[w - 1 - byte_idx] = static_cast<std::uint8_t>(
        limbs_[byte_idx / 8] >> (8 * (byte_idx % 8)));
  }
  return out;
}

std::string BigUInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      out.push_back(digits[(limbs_[i] >> (4 * nib)) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::size_t BigUInt::BitLength() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 64;
  std::uint64_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::Bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUInt::Compare(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt BigUInt::Add(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(a.Limb(i)) + b.Limb(i) + carry;
    out.limbs_.push_back(static_cast<std::uint64_t>(sum));
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  if (carry) out.limbs_.push_back(carry);
  out.Normalize();
  return out;
}

BigUInt BigUInt::Sub(const BigUInt& a, const BigUInt& b) {
  assert(Compare(a, b) >= 0);
  BigUInt out;
  out.limbs_.reserve(a.limbs_.size());
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t ai = a.limbs_[i];
    const std::uint64_t bi = b.Limb(i);
    const std::uint64_t diff = ai - bi - borrow;
    borrow = (ai < bi + borrow) || (bi == UINT64_MAX && borrow) ? 1 : 0;
    out.limbs_.push_back(diff);
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::Mul(const BigUInt& a, const BigUInt& b) {
  if (a.IsZero() || b.IsZero()) return {};
  BigUInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftLeft1() const {
  BigUInt out;
  out.limbs_.reserve(limbs_.size() + 1);
  std::uint64_t carry = 0;
  for (std::uint64_t limb : limbs_) {
    out.limbs_.push_back((limb << 1) | carry);
    carry = limb >> 63;
  }
  if (carry) out.limbs_.push_back(carry);
  out.Normalize();
  return out;
}

BigUInt BigUInt::ShiftRight1() const {
  BigUInt out;
  out.limbs_.resize(limbs_.size());
  std::uint64_t carry = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out.limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
    carry = limbs_[i] & 1;
  }
  out.Normalize();
  return out;
}

// ---------------------------------------------------------------------------
// Montgomery

Montgomery::Montgomery(const BigUInt& modulus) : n_(modulus) {
  assert(n_.IsOdd() && !n_.IsZero());
  k_ = n_.limbs_.size();
  // n0inv = -n^{-1} mod 2^64 via Newton iteration.
  const std::uint64_t n0 = n_.limbs_[0];
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n0inv_ = ~inv + 1;  // -inv mod 2^64

  // R mod n by 64k doubling steps from 1, then R^2 mod n by 64k more.
  BigUInt x = BigUInt::FromU64(1);
  for (std::size_t i = 0; i < 64 * k_; ++i) {
    x = x.ShiftLeft1();
    if (BigUInt::Compare(x, n_) >= 0) x = BigUInt::Sub(x, n_);
  }
  r_mod_n_ = x;
  for (std::size_t i = 0; i < 64 * k_; ++i) {
    x = x.ShiftLeft1();
    if (BigUInt::Compare(x, n_) >= 0) x = BigUInt::Sub(x, n_);
  }
  rr_ = x;
  // 2^64 mod n.
  BigUInt t = BigUInt::FromU64(1);
  for (int i = 0; i < 64; ++i) {
    t = t.ShiftLeft1();
    if (BigUInt::Compare(t, n_) >= 0) t = BigUInt::Sub(t, n_);
  }
  t64_ = t;
}

void Montgomery::MontMul(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out) const {
  // CIOS: t has k_+2 limbs.
  std::vector<std::uint64_t> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<std::uint64_t>(s);
    t[k_ + 1] += static_cast<std::uint64_t>(s >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; then shift right one limb.
    const std::uint64_t m = t[0] * n0inv_;
    carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(m) * n_.limbs_[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<std::uint64_t>(s);
    t[k_ + 1] += static_cast<std::uint64_t>(s >> 64);

    for (std::size_t j = 0; j <= k_; ++j) t[j] = t[j + 1];
    t[k_ + 1] = 0;
  }
  for (std::size_t j = 0; j < k_; ++j) out[j] = t[j];
  // Conditional subtract if out >= n (t[k_] can be 0 or 1).
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t j = k_; j-- > 0;) {
      if (out[j] != n_.limbs_[j]) {
        ge = out[j] > n_.limbs_[j];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t nj = n_.limbs_[j];
      const std::uint64_t oj = out[j];
      out[j] = oj - nj - borrow;
      borrow = (oj < nj + borrow) || (nj == UINT64_MAX && borrow) ? 1 : 0;
    }
  }
}

namespace {
std::vector<std::uint64_t> PadLimbs(const BigUInt& a, std::size_t k) {
  std::vector<std::uint64_t> out(k, 0);
  for (std::size_t i = 0; i < k; ++i) out[i] = a.Limb(i);
  return out;
}
BigUInt FromLimbs(const std::vector<std::uint64_t>& limbs) {
  Bytes be;
  be.reserve(limbs.size() * 8);
  for (std::size_t i = limbs.size(); i-- > 0;) {
    for (int b = 7; b >= 0; --b) {
      be.push_back(static_cast<std::uint8_t>(limbs[i] >> (8 * b)));
    }
  }
  return BigUInt::FromBytes(be);
}
}  // namespace

BigUInt Montgomery::ToMont(const BigUInt& a) const {
  return MontMulBig(a, rr_);
}

// Helper defined out-of-line to keep MontMul limb-oriented.
BigUInt Montgomery::FromMont(const BigUInt& a) const {
  return MontMulBig(a, BigUInt::FromU64(1));
}

BigUInt Montgomery::MulMod(const BigUInt& a, const BigUInt& b) const {
  if (k_ == 1) {
    const u128 prod = static_cast<u128>(a.Limb(0)) * b.Limb(0);
    return BigUInt::FromU64(
        static_cast<std::uint64_t>(prod % n_.limbs_[0]));
  }
  // mont(aR, bR) = abR; convert only once.
  const BigUInt am = MontMulBig(a, rr_);  // aR
  return MontMulBig(am, b);               // abR * R^{-1} = ab
}

BigUInt Montgomery::AddMod(const BigUInt& a, const BigUInt& b) const {
  return CondSub(BigUInt::Add(a, b));
}

BigUInt Montgomery::SubMod(const BigUInt& a, const BigUInt& b) const {
  if (BigUInt::Compare(a, b) >= 0) return BigUInt::Sub(a, b);
  return BigUInt::Sub(BigUInt::Add(a, n_), b);
}

BigUInt Montgomery::CondSub(BigUInt a) const {
  if (BigUInt::Compare(a, n_) >= 0) return BigUInt::Sub(a, n_);
  return a;
}

std::uint64_t Montgomery::PowModU64(std::uint64_t base,
                                    const BigUInt& exp) const {
  const std::uint64_t n = n_.limbs_[0];
  std::uint64_t result = 1 % n;
  std::uint64_t b = base % n;
  for (std::size_t limb = 0; limb < exp.LimbCount(); ++limb) {
    std::uint64_t word = exp.Limb(limb);
    // Full 64 squarings per limb except the top one, where we can stop at
    // the highest set bit; simpler to run all bits (squaring past the top
    // multiplies by 1 implicitly since word bits are 0).
    for (int bit = 0; bit < 64; ++bit) {
      if (word & 1) {
        result = static_cast<std::uint64_t>(
            (static_cast<u128>(result) * b) % n);
      }
      word >>= 1;
      if (word == 0 && limb + 1 == exp.LimbCount()) break;
      b = static_cast<std::uint64_t>((static_cast<u128>(b) * b) % n);
    }
  }
  return result;
}

BigUInt Montgomery::PowMod(const BigUInt& base, const BigUInt& exp) const {
  if (k_ == 1) {
    const std::uint64_t b =
        base.LimbCount() <= 1 ? base.Limb(0)
                              : Reduce(base).Limb(0);
    return BigUInt::FromU64(PowModU64(b, exp));
  }
  BigUInt result = r_mod_n_;          // 1 in Montgomery domain
  const BigUInt base_m =
      ToMont(BigUInt::Compare(base, n_) < 0 ? base : Reduce(base));
  const std::size_t bits = exp.BitLength();
  for (std::size_t i = bits; i-- > 0;) {
    result = MontMulBig(result, result);
    if (exp.Bit(i)) result = MontMulBig(result, base_m);
  }
  return FromMont(result);
}

BigUInt Montgomery::Reduce(const BigUInt& a) const {
  return ReduceBytes(a.ToBytes());
}

BigUInt Montgomery::ReduceBytes(ByteView b) const {
  // Process big-endian 8-byte digits: r = (r * 2^64 + digit) mod n.
  // When n fits in one limb a digit reduces with native modulo; otherwise
  // n >= 2^64 > digit and the digit is already reduced.
  const auto reduce_digit = [this](std::uint64_t d) {
    if (k_ == 1) d %= n_.limbs_[0];
    return BigUInt::FromU64(d);
  };
  BigUInt r;
  std::size_t off = 0;
  const std::size_t lead = b.size() % 8;
  if (lead != 0) {
    std::uint64_t d = 0;
    for (; off < lead; ++off) d = (d << 8) | b[off];
    r = reduce_digit(d);
  }
  for (; off + 8 <= b.size(); off += 8) {
    const std::uint64_t d = ReadUint(b, off, 8);
    r = MulMod(r, t64_);
    r = AddMod(r, reduce_digit(d));
  }
  return r;
}

BigUInt Montgomery::MontMulBig(const BigUInt& a, const BigUInt& b) const {
  const auto al = PadLimbs(a, k_);
  const auto bl = PadLimbs(b, k_);
  std::vector<std::uint64_t> out(k_, 0);
  MontMul(al.data(), bl.data(), out.data());
  return FromLimbs(out);
}

// ---------------------------------------------------------------------------

bool ProbablyPrime(const BigUInt& n) {
  if (n.IsZero()) return false;
  const BigUInt one = BigUInt::FromU64(1);
  const BigUInt two = BigUInt::FromU64(2);
  if (BigUInt::Compare(n, two) < 0) return false;
  if (n == two) return true;
  if (!n.IsOdd()) return false;

  const Montgomery mont(n);
  const BigUInt n_minus_1 = BigUInt::Sub(n, one);
  BigUInt d = n_minus_1;
  int r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight1();
    ++r;
  }
  static const std::uint64_t kBases[] = {2,  3,  5,  7,  11, 13,
                                         17, 19, 23, 29, 31, 37};
  for (std::uint64_t base : kBases) {
    const BigUInt a = mont.Reduce(BigUInt::FromU64(base));
    if (a.IsZero() || a == one) continue;
    BigUInt x = mont.PowMod(a, d);
    if (x == one || x == n_minus_1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mont.MulMod(x, x);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace tlsharm::crypto
