#include "crypto/schnorr.h"

#include "crypto/sha256.h"
#include "crypto/tuning.h"
#include "obs/prof.h"

namespace tlsharm::crypto {
namespace {
// Histogram-only performance-plane sites (obs/prof.h).
const obs::ProfSite kProfSign("crypto.sign", obs::kProfNoTrace);
const obs::ProfSite kProfVerify("crypto.verify", obs::kProfNoTrace);
}  // namespace

SchnorrScheme::SchnorrScheme(const FfdhParams& params)
    : p_(BigUInt::FromHex(params.p_hex)),
      q_(BigUInt::FromHex(params.q_hex)),
      h_(BigUInt::FromU64(params.g * params.g)),
      mont_p_(p_),
      mont_q_(q_),
      h_table_(mont_p_.PrecomputeFixedBase(h_, q_.BitLength())),
      h_window_(mont_p_.PrecomputeWindowTable(h_)),
      p_width_((p_.BitLength() + 7) / 8),
      q_width_((q_.BitLength() + 7) / 8) {}

BigUInt SchnorrScheme::FixedBasePow(const BigUInt& e) const {
  if (ReferenceCryptoEnabled() || e.BitLength() > h_table_.MaxExpBits()) {
    return mont_p_.PowMod(h_, e);
  }
  return mont_p_.PowModFixedBase(h_table_, e);
}

BigUInt SchnorrScheme::HashToScalar(ByteView r_bytes, ByteView message) const {
  Sha256 hash;
  hash.Update(r_bytes);
  hash.Update(message);
  const Sha256Digest digest = hash.Finish();
  return mont_q_.ReduceBytes(ByteView(digest.data(), digest.size()));
}

SchnorrKeyPair SchnorrScheme::GenerateKeyPair(Drbg& drbg) const {
  BigUInt x;
  const BigUInt one = BigUInt::FromU64(1);
  do {
    x = BigUInt::FromBytes(drbg.Generate(q_width_));
    x = mont_q_.Reduce(x);
  } while (BigUInt::Compare(x, one) <= 0);
  const BigUInt y = FixedBasePow(x);
  return SchnorrKeyPair{.private_key = x.ToBytes(q_width_),
                        .public_key = y.ToBytes(p_width_)};
}

SchnorrSignature SchnorrScheme::Sign(ByteView private_key, ByteView message,
                                     Drbg& drbg) const {
  obs::ProfScope prof_span(kProfSign);
  const BigUInt x = BigUInt::FromBytes(private_key);
  BigUInt k, e;
  const BigUInt zero;
  do {
    do {
      k = mont_q_.Reduce(BigUInt::FromBytes(drbg.Generate(q_width_)));
    } while (k.IsZero());
    const BigUInt r = FixedBasePow(k);
    e = HashToScalar(r.ToBytes(p_width_), message);
  } while (e.IsZero());
  // s = k + e*x mod q
  const BigUInt s = mont_q_.AddMod(k, mont_q_.MulMod(e, mont_q_.Reduce(x)));
  return SchnorrSignature{.e = e.ToBytes(q_width_), .s = s.ToBytes(q_width_)};
}

bool SchnorrScheme::Verify(ByteView public_key, ByteView message,
                           const SchnorrSignature& sig) const {
  obs::ProfScope prof_span(kProfVerify);
  if (public_key.size() != p_width_ || sig.e.size() != q_width_ ||
      sig.s.size() != q_width_) {
    return false;
  }
  const BigUInt y = BigUInt::FromBytes(public_key);
  const BigUInt one = BigUInt::FromU64(1);
  if (BigUInt::Compare(y, one) <= 0 || BigUInt::Compare(y, p_) >= 0) {
    return false;
  }
  const BigUInt e = BigUInt::FromBytes(sig.e);
  const BigUInt s = BigUInt::FromBytes(sig.s);
  if (e.IsZero() || BigUInt::Compare(e, q_) >= 0) return false;
  if (BigUInt::Compare(s, q_) >= 0) return false;
  // r' = h^s * y^(q - e) mod p  (y has order q, so y^(q-e) = y^{-e}).
  BigUInt r;
  if (ReferenceCryptoEnabled()) {
    const BigUInt r1 = mont_p_.PowMod(h_, s);
    const BigUInt r2 = mont_p_.PowMod(y, BigUInt::Sub(q_, e));
    r = mont_p_.MulMod(r1, r2);
  } else {
    // Shamir's trick: both exponents ride one squaring chain, with the
    // cached h window table and a per-call table for y.
    const Montgomery::WindowTable y_window =
        mont_p_.PrecomputeWindowTable(y);
    r = mont_p_.PowModDouble(h_window_, s, y_window, BigUInt::Sub(q_, e));
  }
  const BigUInt e_check = HashToScalar(r.ToBytes(p_width_), message);
  return e_check == e;
}

Bytes SchnorrScheme::SerializeSignature(const SchnorrSignature& sig) const {
  return Concat({sig.e, sig.s});
}

std::optional<SchnorrSignature> SchnorrScheme::ParseSignature(
    ByteView data) const {
  if (data.size() != 2 * q_width_) return std::nullopt;
  return SchnorrSignature{
      .e = Bytes(data.begin(), data.begin() + q_width_),
      .s = Bytes(data.begin() + q_width_, data.end()),
  };
}

Bytes SchnorrScheme::DhPublic(ByteView private_scalar) const {
  const BigUInt b = BigUInt::FromBytes(private_scalar);
  return FixedBasePow(b).ToBytes(p_width_);
}

std::optional<Bytes> SchnorrScheme::DhShared(ByteView private_scalar,
                                             ByteView peer_public) const {
  if (peer_public.size() != p_width_) return std::nullopt;
  const BigUInt peer = BigUInt::FromBytes(peer_public);
  const BigUInt one = BigUInt::FromU64(1);
  if (BigUInt::Compare(peer, one) <= 0 ||
      BigUInt::Compare(peer, BigUInt::Sub(p_, one)) >= 0) {
    return std::nullopt;
  }
  const BigUInt b = BigUInt::FromBytes(private_scalar);
  return mont_p_.PowMod(peer, b).ToBytes(p_width_);
}

Bytes SchnorrScheme::GenerateDhScalar(Drbg& drbg) const {
  BigUInt b;
  const BigUInt one = BigUInt::FromU64(1);
  do {
    b = mont_q_.Reduce(BigUInt::FromBytes(drbg.Generate(q_width_)));
  } while (BigUInt::Compare(b, one) <= 0);
  return b.ToBytes(q_width_);
}

const SchnorrScheme& SchnorrSim61() {
  static const SchnorrScheme* scheme = new SchnorrScheme(FfdhSim61Params());
  return *scheme;
}

const SchnorrScheme& SchnorrSim256() {
  static const SchnorrScheme* scheme = new SchnorrScheme(FfdhSim256Params());
  return *scheme;
}

}  // namespace tlsharm::crypto
