// HMAC-SHA-256 (RFC 2104 / FIPS 198-1), from scratch.
//
// Used for session-ticket integrity (RFC 5077 recommends HMAC-SHA-256 with a
// 256-bit key), record MACs, the TLS 1.2 PRF and the HMAC-DRBG.
//
// The context precomputes the SHA-256 midstates reached after compressing
// the ipad and opad key blocks, once per key. Each message then clones the
// inner midstate instead of rehashing the key block, and Finish() clones the
// outer midstate instead of rebuilding the outer hash — so a context that
// MACs many messages under one key (the PRF's A(i) chain, the DRBG, ticket
// MACs) pays the key schedule exactly once. ReferenceHmacSha256Mac keeps
// the naive construction as the differential-test baseline; both produce
// identical bytes for every (key, message).
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace tlsharm::crypto {

class HmacSha256 {
 public:
  // An unkeyed context (equivalent to an empty key); call SetKey before use
  // for anything else.
  HmacSha256() { SetKey({}); }
  explicit HmacSha256(ByteView key) { SetKey(key); }

  // Re-keys the context, recomputing both midstates, and resets it.
  void SetKey(ByteView key);

  void Update(ByteView data);
  Sha256Digest Finish();

  // Restarts with the same key (midstate clone; no key-block rehash).
  void Reset();

 private:
  Sha256 inner_mid_;  // state after compressing key ^ ipad
  Sha256 outer_mid_;  // state after compressing key ^ opad
  Sha256 inner_;      // working copy for the current message
};

// One-shot convenience.
Sha256Digest HmacSha256Mac(ByteView key, ByteView data);
Bytes HmacSha256Bytes(ByteView key, ByteView data);

// The pre-optimization construction (fresh key-block hashing per call),
// kept as the reference implementation for differential tests.
Sha256Digest ReferenceHmacSha256Mac(ByteView key, ByteView data);

}  // namespace tlsharm::crypto
