// HMAC-SHA-256 (RFC 2104 / FIPS 198-1), from scratch.
//
// Used for session-ticket integrity (RFC 5077 recommends HMAC-SHA-256 with a
// 256-bit key), record MACs, the TLS 1.2 PRF and the HMAC-DRBG.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace tlsharm::crypto {

class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void Update(ByteView data);
  Sha256Digest Finish();

  // Restarts with the same key.
  void Reset();

 private:
  std::array<std::uint8_t, kSha256BlockSize> ipad_key_;
  std::array<std::uint8_t, kSha256BlockSize> opad_key_;
  Sha256 inner_;
};

// One-shot convenience.
Sha256Digest HmacSha256Mac(ByteView key, ByteView data);
Bytes HmacSha256Bytes(ByteView key, ByteView data);

}  // namespace tlsharm::crypto
