// Schnorr signatures over the prime-order subgroup of a safe-prime field
// group, from scratch.
//
// These authenticate servers: the simulated PKI signs certificates with
// them, standing in for the RSA/ECDSA signatures of the real web (see the
// substitution table in DESIGN.md — the study needs *a* real signature, not
// a particular algorithm). Generator h = g^2 = 4 has order q = (p-1)/2.
//
// Signature form: (e, s) with r = h^k, e = H(r || m) mod q, s = k + e*x
// mod q. Verification recomputes r' = h^s * y^(q-e) and checks
// H(r' || m) mod q == e.
#pragma once

#include "crypto/biguint.h"
#include "crypto/drbg.h"
#include "crypto/ffdh.h"

namespace tlsharm::crypto {

struct SchnorrKeyPair {
  Bytes private_key;  // x, big-endian
  Bytes public_key;   // y = h^x mod p, big-endian (p-width)
};

struct SchnorrSignature {
  Bytes e;  // challenge, q-width
  Bytes s;  // response, q-width
};

class SchnorrScheme {
 public:
  // `params` names the underlying safe-prime group (sim61 or sim256).
  explicit SchnorrScheme(const FfdhParams& params);

  SchnorrKeyPair GenerateKeyPair(Drbg& drbg) const;
  SchnorrSignature Sign(ByteView private_key, ByteView message,
                        Drbg& drbg) const;
  bool Verify(ByteView public_key, ByteView message,
              const SchnorrSignature& sig) const;

  std::size_t PublicKeySize() const { return p_width_; }
  std::size_t ScalarSize() const { return q_width_; }

  // Static Diffie-Hellman against a Schnorr key: the certificate public key
  // y = h^x doubles as a DH value in the same group. This backs the
  // non-forward-secret "static" cipher suite (the RSA-key-transport
  // stand-in): anyone who later obtains x recomputes every premaster.
  Bytes DhPublic(ByteView private_scalar) const;          // h^b mod p
  std::optional<Bytes> DhShared(ByteView private_scalar,
                                ByteView peer_public) const;  // peer^b mod p
  Bytes GenerateDhScalar(Drbg& drbg) const;

  // Serialized signature is e || s.
  Bytes SerializeSignature(const SchnorrSignature& sig) const;
  std::optional<SchnorrSignature> ParseSignature(ByteView data) const;

 private:
  BigUInt HashToScalar(ByteView r_bytes, ByteView message) const;
  // h^e via the cached generator table, falling back to a generic powmod
  // for exponents wider than the table (DhPublic accepts raw bytes).
  BigUInt FixedBasePow(const BigUInt& e) const;

  BigUInt p_;
  BigUInt q_;
  BigUInt h_;  // subgroup generator
  Montgomery mont_p_;
  Montgomery mont_q_;
  // Cached powers of h, built once per scheme (immutable, thread-safe):
  // the positional table serves keygen/signing/DH (exponents < q, zero
  // squarings), the window table is the h side of verification's Shamir
  // double exponentiation h^s * y^(q-e).
  Montgomery::FixedBaseTable h_table_;
  Montgomery::WindowTable h_window_;
  std::size_t p_width_;
  std::size_t q_width_;
};

// Process-wide scheme instances.
const SchnorrScheme& SchnorrSim61();
const SchnorrScheme& SchnorrSim256();

}  // namespace tlsharm::crypto
