#include "crypto/ffdh.h"

#include "crypto/tuning.h"
#include "obs/prof.h"

namespace tlsharm::crypto {
namespace {
// Histogram-only performance-plane sites (obs/prof.h).
const obs::ProfSite kProfKeygen("crypto.ffdh.keygen", obs::kProfNoTrace);
const obs::ProfSite kProfShared("crypto.ffdh.shared", obs::kProfNoTrace);
}  // namespace

const FfdhParams& FfdhSim61Params() {
  static const FfdhParams params{
      .name = "ffdhe-sim61",
      .id = NamedGroup::kFfdheSim61,
      .p_hex = "11c575d30bfa78ff",
      .q_hex = "8e2bae985fd3c7f",
      .g = 2,
  };
  return params;
}

const FfdhParams& FfdhSim256Params() {
  static const FfdhParams params{
      .name = "ffdhe-sim256",
      .id = NamedGroup::kFfdheSim256,
      .p_hex = "fbb557b1a3b5cdd3ef0adacabd9ae4fddaf1cae7f02e4e3b5bd727d58524cfe7",
      .q_hex = "7ddaabd8d1dae6e9f7856d655ecd727eed78e573f817271dadeb93eac29267f3",
      .g = 2,
  };
  return params;
}

FfdhGroup::FfdhGroup(const FfdhParams& params)
    : params_(params),
      p_(BigUInt::FromHex(params.p_hex)),
      q_(BigUInt::FromHex(params.q_hex)),
      g_(BigUInt::FromU64(params.g)),
      mont_p_(p_),
      g_table_(mont_p_.PrecomputeFixedBase(g_, q_.BitLength())),
      value_width_((p_.BitLength() + 7) / 8) {}

KexKeyPair FfdhGroup::GenerateKeyPair(Drbg& drbg) const {
  obs::ProfScope prof_span(kProfKeygen);
  // x uniform in [2, q): rejection-sample q's bit width (mask the top byte
  // so the acceptance rate stays >= 50%).
  const std::size_t q_width = (q_.BitLength() + 7) / 8;
  const std::uint8_t top_mask = static_cast<std::uint8_t>(
      0xff >> (8 * q_width - q_.BitLength()));
  BigUInt x;
  const BigUInt two = BigUInt::FromU64(2);
  for (;;) {
    Bytes raw = drbg.Generate(q_width);
    raw[0] &= top_mask;
    x = BigUInt::FromBytes(raw);
    if (BigUInt::Compare(x, two) >= 0 && BigUInt::Compare(x, q_) < 0) break;
  }
  const BigUInt pub = ReferenceCryptoEnabled()
                          ? mont_p_.PowMod(g_, x)
                          : mont_p_.PowModFixedBase(g_table_, x);
  return KexKeyPair{.private_key = x.ToBytes(q_width),
                    .public_value = pub.ToBytes(value_width_)};
}

std::optional<Bytes> FfdhGroup::SharedSecret(ByteView private_key,
                                             ByteView peer_public) const {
  obs::ProfScope prof_span(kProfShared);
  if (peer_public.size() != value_width_) return std::nullopt;
  const BigUInt peer = BigUInt::FromBytes(peer_public);
  const BigUInt one = BigUInt::FromU64(1);
  // Reject degenerate values: y <= 1 or y >= p - 1.
  if (BigUInt::Compare(peer, one) <= 0) return std::nullopt;
  if (BigUInt::Compare(peer, BigUInt::Sub(p_, one)) >= 0) return std::nullopt;
  const BigUInt x = BigUInt::FromBytes(private_key);
  const BigUInt shared = mont_p_.PowMod(peer, x);
  return shared.ToBytes(value_width_);
}

}  // namespace tlsharm::crypto
