// Runtime selection between the optimized crypto hot paths and the naive
// reference implementations they replaced.
//
// Every optimization in this library (windowed Montgomery exponentiation,
// fixed-base generator tables, HMAC midstate caching, memoized AES key
// schedules) is required to be output-identical to the reference path: the
// flag exists so the differential-test harness and scripts/check.sh can run
// the same binary both ways and diff the bytes, and so bench_crypto can time
// old-vs-new in one process.
//
// Selection order: SetReferenceCrypto() overrides everything; otherwise the
// TLSHARM_REFERENCE_CRYPTO environment variable (any non-empty value other
// than "0") enables the reference paths; default is optimized.
#pragma once

namespace tlsharm::crypto {

// True when the naive reference implementations should be used.
bool ReferenceCryptoEnabled();

// Programmatic override (benches/tests toggling in-process). Thread
// caveat: flip only while no other thread is running crypto — the flag is
// a plain relaxed atomic and the two paths share no state, so a mid-flight
// flip is benign for correctness but makes timings meaningless.
void SetReferenceCrypto(bool reference);

}  // namespace tlsharm::crypto
