#include "crypto/x25519.h"

#include <algorithm>
#include <cassert>

#include "crypto/biguint.h"

namespace tlsharm::crypto {
namespace {

const Montgomery& FieldCtx() {
  static const Montgomery* ctx = new Montgomery(BigUInt::FromHex(
      "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"));
  return *ctx;
}

BigUInt DecodeLittleEndian(ByteView b, bool mask_high_bit) {
  Bytes be(b.begin(), b.end());
  std::reverse(be.begin(), be.end());
  if (mask_high_bit && !be.empty()) be[0] &= 0x7f;
  return BigUInt::FromBytes(be);
}

Bytes EncodeLittleEndian(const BigUInt& v) {
  Bytes be = v.ToBytes(kX25519KeySize);
  std::reverse(be.begin(), be.end());
  return be;
}

}  // namespace

Bytes X25519ScalarMult(ByteView scalar, ByteView u_coordinate) {
  assert(scalar.size() == kX25519KeySize);
  assert(u_coordinate.size() == kX25519KeySize);
  const Montgomery& f = FieldCtx();
  const BigUInt one = BigUInt::FromU64(1);
  const BigUInt a24 = BigUInt::FromU64(121665);

  Bytes k(scalar.begin(), scalar.end());
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;

  const BigUInt x1 = f.Reduce(DecodeLittleEndian(u_coordinate, true));
  BigUInt x2 = one, z2, x3 = x1, z3 = one;
  bool swap = false;
  for (int i = 254; i >= 0; --i) {
    const bool bit = (k[static_cast<std::size_t>(i) / 8] >> (i % 8)) & 1;
    if (swap != bit) {
      std::swap(x2, x3);
      std::swap(z2, z3);
    }
    swap = bit;
    const BigUInt a = f.AddMod(x2, z2);
    const BigUInt aa = f.MulMod(a, a);
    const BigUInt b = f.SubMod(x2, z2);
    const BigUInt bb = f.MulMod(b, b);
    const BigUInt e = f.SubMod(aa, bb);
    const BigUInt c = f.AddMod(x3, z3);
    const BigUInt d = f.SubMod(x3, z3);
    const BigUInt da = f.MulMod(d, a);
    const BigUInt cb = f.MulMod(c, b);
    const BigUInt t0 = f.AddMod(da, cb);
    x3 = f.MulMod(t0, t0);
    const BigUInt t1 = f.SubMod(da, cb);
    z3 = f.MulMod(x1, f.MulMod(t1, t1));
    x2 = f.MulMod(aa, bb);
    // RFC 7748: z2 = E * (AA + a24 * E), a24 = (486662 - 2) / 4.
    z2 = f.MulMod(e, f.AddMod(aa, f.MulMod(a24, e)));
  }
  if (swap) {
    std::swap(x2, x3);
    std::swap(z2, z3);
  }
  // x2 / z2 = x2 * z2^(p-2).
  const BigUInt p_minus_2 = BigUInt::Sub(f.Modulus(), BigUInt::FromU64(2));
  const BigUInt result = f.MulMod(x2, f.PowMod(z2, p_minus_2));
  return EncodeLittleEndian(result);
}

KexKeyPair X25519Group::GenerateKeyPair(Drbg& drbg) const {
  Bytes priv = drbg.Generate(kX25519KeySize);
  Bytes base(kX25519KeySize, 0);
  base[0] = 9;
  Bytes pub = X25519ScalarMult(priv, base);
  return KexKeyPair{.private_key = std::move(priv),
                    .public_value = std::move(pub)};
}

std::optional<Bytes> X25519Group::SharedSecret(ByteView private_key,
                                               ByteView peer_public) const {
  if (private_key.size() != kX25519KeySize ||
      peer_public.size() != kX25519KeySize) {
    return std::nullopt;
  }
  Bytes shared = X25519ScalarMult(private_key, peer_public);
  // RFC 7748 §6.1: reject all-zero shared secrets (low-order inputs).
  bool all_zero = true;
  for (std::uint8_t b : shared) all_zero &= (b == 0);
  if (all_zero) return std::nullopt;
  return shared;
}

}  // namespace tlsharm::crypto
