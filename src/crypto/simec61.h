// Simulation-grade elliptic-curve Diffie-Hellman: an x-only Montgomery
// ladder over the Mersenne prime field F_p, p = 2^61 - 1, on the curve
// y^2 = x^3 + A x^2 + x with A = 486662 (curve25519's coefficient reused
// over the small field).
//
// This is real elliptic-curve scalar multiplication — the ladder, the field
// arithmetic and the DH commutativity are all genuine — but the 61-bit field
// makes it fast enough to run ~10^7 handshakes per bench. Group-order
// validation is deliberately omitted (a 61-bit curve offers no security
// anyway); the full-strength counterpart is X25519.
#pragma once

#include "crypto/kex.h"

namespace tlsharm::crypto {

class SimEc61Group final : public KexGroup {
 public:
  std::string_view Name() const override { return "simec61"; }
  NamedGroup Id() const override { return NamedGroup::kSimEc61; }
  KexKind Kind() const override { return KexKind::kEcdhe; }
  std::size_t PublicValueSize() const override { return 8; }

  KexKeyPair GenerateKeyPair(Drbg& drbg) const override;
  std::optional<Bytes> SharedSecret(ByteView private_key,
                                    ByteView peer_public) const override;

  // Exposed for tests: x-coordinate of scalar * point(x).
  static std::uint64_t Ladder(std::uint64_t scalar, std::uint64_t x1);
};

}  // namespace tlsharm::crypto
