#include "crypto/simec61.h"

namespace tlsharm::crypto {
namespace {

using u128 = unsigned __int128;

constexpr std::uint64_t kP = (1ULL << 61) - 1;  // Mersenne prime
constexpr std::uint64_t kA24 = 121666;          // (A + 2) / 4 for A = 486662
constexpr std::uint64_t kBaseX = 9;

std::uint64_t Reduce(std::uint64_t x) {
  x = (x & kP) + (x >> 61);
  if (x >= kP) x -= kP;
  return x;
}

std::uint64_t FAdd(std::uint64_t a, std::uint64_t b) { return Reduce(a + b); }

std::uint64_t FSub(std::uint64_t a, std::uint64_t b) {
  return Reduce(a + kP - b);
}

std::uint64_t FMul(std::uint64_t a, std::uint64_t b) {
  const u128 t = static_cast<u128>(a) * b;
  // Fold twice: values below 2^122 reduce to < 2^62 after one fold.
  std::uint64_t lo = static_cast<std::uint64_t>(t & kP);
  std::uint64_t hi = static_cast<std::uint64_t>(t >> 61);
  return Reduce(lo + Reduce(hi));
}

std::uint64_t FInv(std::uint64_t a) {
  // a^(p-2) by square-and-multiply.
  std::uint64_t result = 1;
  std::uint64_t base = Reduce(a);
  std::uint64_t e = kP - 2;
  while (e != 0) {
    if (e & 1) result = FMul(result, base);
    base = FMul(base, base);
    e >>= 1;
  }
  return result;
}

}  // namespace

std::uint64_t SimEc61Group::Ladder(std::uint64_t scalar, std::uint64_t x1) {
  x1 = Reduce(x1);
  std::uint64_t x2 = 1, z2 = 0, x3 = x1, z3 = 1;
  bool swap = false;
  for (int i = 60; i >= 0; --i) {
    const bool bit = (scalar >> i) & 1;
    if (swap != bit) {
      std::swap(x2, x3);
      std::swap(z2, z3);
    }
    swap = bit;
    const std::uint64_t a = FAdd(x2, z2);
    const std::uint64_t aa = FMul(a, a);
    const std::uint64_t b = FSub(x2, z2);
    const std::uint64_t bb = FMul(b, b);
    const std::uint64_t e = FSub(aa, bb);
    const std::uint64_t c = FAdd(x3, z3);
    const std::uint64_t d = FSub(x3, z3);
    const std::uint64_t da = FMul(d, a);
    const std::uint64_t cb = FMul(c, b);
    const std::uint64_t t0 = FAdd(da, cb);
    x3 = FMul(t0, t0);
    const std::uint64_t t1 = FSub(da, cb);
    z3 = FMul(x1, FMul(t1, t1));
    x2 = FMul(aa, bb);
    z2 = FMul(e, FAdd(bb, FMul(kA24, e)));
  }
  if (swap) {
    std::swap(x2, x3);
    std::swap(z2, z3);
  }
  if (z2 == 0) return 0;
  return FMul(x2, FInv(z2));
}

KexKeyPair SimEc61Group::GenerateKeyPair(Drbg& drbg) const {
  // Scalars in [2, 2^61).
  std::uint64_t scalar;
  do {
    const Bytes b = drbg.Generate(8);
    scalar = ReadUint(b, 0, 8) & ((1ULL << 61) - 1);
  } while (scalar < 2);
  const std::uint64_t pub = Ladder(scalar, kBaseX);
  Bytes priv, pub_bytes;
  AppendUint(priv, scalar, 8);
  AppendUint(pub_bytes, pub, 8);
  return KexKeyPair{.private_key = std::move(priv),
                    .public_value = std::move(pub_bytes)};
}

std::optional<Bytes> SimEc61Group::SharedSecret(ByteView private_key,
                                                ByteView peer_public) const {
  if (private_key.size() != 8 || peer_public.size() != 8) return std::nullopt;
  const std::uint64_t scalar = ReadUint(private_key, 0, 8);
  const std::uint64_t peer_x = ReadUint(peer_public, 0, 8);
  if (peer_x == 0 || peer_x >= kP) return std::nullopt;
  const std::uint64_t shared = Ladder(scalar, peer_x);
  if (shared == 0) return std::nullopt;
  Bytes out;
  AppendUint(out, shared, 8);
  return out;
}

}  // namespace tlsharm::crypto
