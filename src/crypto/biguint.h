// Arbitrary-precision unsigned integers and Montgomery modular arithmetic,
// from scratch.
//
// This backs the finite-field Diffie-Hellman groups and the Schnorr
// signatures used for certificate authentication. Division is avoided
// entirely: all modular work goes through Montgomery multiplication (CIOS)
// plus shift-and-conditionally-subtract reduction, which keeps the code
// small and auditable.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace tlsharm::crypto {

class BigUInt {
 public:
  BigUInt() = default;  // zero
  static BigUInt FromU64(std::uint64_t v);
  static BigUInt FromHex(std::string_view hex);      // aborts on bad input
  static BigUInt FromBytes(ByteView big_endian);

  // Big-endian byte serialization, left-padded to `width` (0 = minimal).
  Bytes ToBytes(std::size_t width = 0) const;
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t BitLength() const;
  std::size_t LimbCount() const { return limbs_.size(); }
  std::uint64_t Limb(std::size_t i) const {
    return i < limbs_.size() ? limbs_[i] : 0;
  }
  bool Bit(std::size_t i) const;

  // -1 / 0 / +1
  static int Compare(const BigUInt& a, const BigUInt& b);
  bool operator==(const BigUInt& o) const { return Compare(*this, o) == 0; }
  bool operator<(const BigUInt& o) const { return Compare(*this, o) < 0; }

  static BigUInt Add(const BigUInt& a, const BigUInt& b);
  // Precondition: a >= b.
  static BigUInt Sub(const BigUInt& a, const BigUInt& b);
  static BigUInt Mul(const BigUInt& a, const BigUInt& b);
  BigUInt ShiftLeft1() const;
  BigUInt ShiftRight1() const;

 private:
  void Normalize();

  // Little-endian limbs; empty means zero.
  std::vector<std::uint64_t> limbs_;

  friend class Montgomery;
};

// Montgomery context over an odd modulus n. All public operations take and
// return values in the ordinary (non-Montgomery) domain.
class Montgomery {
 public:
  explicit Montgomery(const BigUInt& modulus);

  const BigUInt& Modulus() const { return n_; }

  // (a * b) mod n; a, b < n.
  BigUInt MulMod(const BigUInt& a, const BigUInt& b) const;
  // (a + b) mod n; a, b < n.
  BigUInt AddMod(const BigUInt& a, const BigUInt& b) const;
  // (a - b) mod n; a, b < n.
  BigUInt SubMod(const BigUInt& a, const BigUInt& b) const;
  // base^exp mod n; base < n.
  BigUInt PowMod(const BigUInt& base, const BigUInt& exp) const;
  // Reduces an arbitrary-size value mod n by processing 64-bit digits.
  BigUInt Reduce(const BigUInt& a) const;
  // Reduces a big-endian byte string mod n (hash-to-scalar).
  BigUInt ReduceBytes(ByteView b) const;

 private:
  // Single-limb fast paths (the 61-bit simulation groups): native
  // __int128 arithmetic, no allocation.
  std::uint64_t PowModU64(std::uint64_t base, const BigUInt& exp) const;

  // Core CIOS Montgomery multiply of two k-limb mont-domain values.
  void MontMul(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* out) const;
  // Montgomery multiply with BigUInt operands (padded to k limbs).
  BigUInt MontMulBig(const BigUInt& a, const BigUInt& b) const;
  BigUInt ToMont(const BigUInt& a) const;
  BigUInt FromMont(const BigUInt& a) const;
  BigUInt CondSub(BigUInt a) const;  // a in [0, 2n) -> a mod n

  BigUInt n_;
  std::size_t k_ = 0;          // limb count of n
  std::uint64_t n0inv_ = 0;    // -n^{-1} mod 2^64
  BigUInt r_mod_n_;            // R mod n, R = 2^(64k)
  BigUInt rr_;                 // R^2 mod n
  BigUInt t64_;                // 2^64 mod n (for digitwise reduction)
};

// Miller-Rabin probabilistic primality test with fixed deterministic bases;
// sufficient for validating embedded group parameters in tests.
bool ProbablyPrime(const BigUInt& n);

}  // namespace tlsharm::crypto
