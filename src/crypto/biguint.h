// Arbitrary-precision unsigned integers and Montgomery modular arithmetic,
// from scratch.
//
// This backs the finite-field Diffie-Hellman groups and the Schnorr
// signatures used for certificate authentication. Division is avoided
// entirely: all modular work goes through Montgomery multiplication (CIOS)
// plus shift-and-conditionally-subtract reduction, which keeps the code
// small and auditable.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace tlsharm::crypto {

class BigUInt {
 public:
  BigUInt() = default;  // zero
  static BigUInt FromU64(std::uint64_t v);
  static BigUInt FromHex(std::string_view hex);      // aborts on bad input
  static BigUInt FromBytes(ByteView big_endian);

  // Big-endian byte serialization, left-padded to `width` (0 = minimal).
  Bytes ToBytes(std::size_t width = 0) const;
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t BitLength() const;
  std::size_t LimbCount() const { return limbs_.size(); }
  std::uint64_t Limb(std::size_t i) const {
    return i < limbs_.size() ? limbs_[i] : 0;
  }
  bool Bit(std::size_t i) const;

  // -1 / 0 / +1
  static int Compare(const BigUInt& a, const BigUInt& b);
  bool operator==(const BigUInt& o) const { return Compare(*this, o) == 0; }
  bool operator<(const BigUInt& o) const { return Compare(*this, o) < 0; }

  static BigUInt Add(const BigUInt& a, const BigUInt& b);
  // Precondition: a >= b.
  static BigUInt Sub(const BigUInt& a, const BigUInt& b);
  static BigUInt Mul(const BigUInt& a, const BigUInt& b);
  BigUInt ShiftLeft1() const;
  BigUInt ShiftRight1() const;

 private:
  void Normalize();

  // Little-endian limbs; empty means zero.
  std::vector<std::uint64_t> limbs_;

  friend class Montgomery;
};

// Montgomery context over an odd modulus n. All public operations take and
// return values in the ordinary (non-Montgomery) domain.
//
// Exponentiation runs one of two ways. The reference path (PowModReference,
// selected globally by crypto::ReferenceCryptoEnabled()) is the original
// MSB-first square-and-multiply ladder, kept verbatim as the differential
// baseline. The optimized path uses w=4 windowing: a sliding window over a
// precomputed odd-powers table for one-off bases, and — for bases that are
// fixed for the lifetime of a group (DH generators, Schnorr subgroup
// generators) — caller-cached tables that eliminate the squaring chain
// (FixedBaseTable) or share it between two exponents (Shamir's trick via
// WindowTable). Both paths compute the same mathematical function, so
// their outputs are byte-identical.
class Montgomery {
 public:
  // Precomputed odd powers base^1, base^3, ..., base^15 in the Montgomery
  // domain: the table behind sliding-window (w=4) exponentiation.
  class OddPowers {
   public:
    bool Empty() const { return limbs_.empty(); }

   private:
    friend class Montgomery;
    std::vector<std::uint64_t> limbs_;  // 8 entries x k limbs
  };

  // Full window table base^1 .. base^15 (Montgomery domain), for fixed-
  // window exponentiation where every digit needs a table entry — in
  // particular Shamir's double exponentiation, which interleaves two
  // exponents over one shared squaring chain.
  class WindowTable {
   public:
    bool Empty() const { return limbs_.empty(); }

   private:
    friend class Montgomery;
    std::vector<std::uint64_t> limbs_;  // 15 entries x k limbs
  };

  // Positional table for a constant base: entry (i, d) holds
  // base^(d * 16^i) in the Montgomery domain, so base^e is a product of
  // one entry per nonzero exponent nibble — no squarings at all.
  class FixedBaseTable {
   public:
    bool Empty() const { return limbs_.empty(); }
    // Largest exponent bit length the table covers.
    std::size_t MaxExpBits() const { return 4 * windows_; }

   private:
    friend class Montgomery;
    std::size_t windows_ = 0;
    std::vector<std::uint64_t> limbs_;  // windows x 15 entries x k limbs
  };

  explicit Montgomery(const BigUInt& modulus);

  const BigUInt& Modulus() const { return n_; }

  // (a * b) mod n; a, b < n.
  BigUInt MulMod(const BigUInt& a, const BigUInt& b) const;
  // (a + b) mod n; a, b < n.
  BigUInt AddMod(const BigUInt& a, const BigUInt& b) const;
  // (a - b) mod n; a, b < n.
  BigUInt SubMod(const BigUInt& a, const BigUInt& b) const;
  // base^exp mod n. Dispatches to PowModReference when the global
  // reference-crypto flag is on, else to the sliding-window path.
  BigUInt PowMod(const BigUInt& base, const BigUInt& exp) const;
  // The original square-and-multiply ladder (naive baseline).
  BigUInt PowModReference(const BigUInt& base, const BigUInt& exp) const;
  // Reduces an arbitrary-size value mod n by processing 64-bit digits.
  BigUInt Reduce(const BigUInt& a) const;
  // Reduces a big-endian byte string mod n (hash-to-scalar).
  BigUInt ReduceBytes(ByteView b) const;

  // Table construction; base must be < n (Reduce() it first otherwise).
  OddPowers PrecomputeOddPowers(const BigUInt& base) const;
  WindowTable PrecomputeWindowTable(const BigUInt& base) const;
  FixedBaseTable PrecomputeFixedBase(const BigUInt& base,
                                     std::size_t max_exp_bits) const;

  // base^exp via a precomputed table. The table must come from this
  // Montgomery instance. PowModFixedBase requires
  // exp.BitLength() <= table.MaxExpBits().
  BigUInt PowModWindowed(const OddPowers& table, const BigUInt& exp) const;
  BigUInt PowModFixedBase(const FixedBaseTable& table,
                          const BigUInt& exp) const;
  // a^ea * b^eb mod n with one shared squaring chain (Shamir/Straus).
  BigUInt PowModDouble(const WindowTable& a, const BigUInt& ea,
                       const WindowTable& b, const BigUInt& eb) const;

 private:
  // Single-limb fast paths (the 61-bit simulation groups): native
  // __int128 arithmetic, no allocation.
  std::uint64_t PowModU64(std::uint64_t base, const BigUInt& exp) const;
  // Its optimized counterpart: sliding-window (w=4) exponentiation with an
  // on-stack odd-powers table, entirely in u64 Montgomery arithmetic.
  std::uint64_t PowModU64Windowed(std::uint64_t base, const BigUInt& exp) const;
  // Montgomery product of single-limb values a, b < n (REDC).
  std::uint64_t MontMul64(std::uint64_t a, std::uint64_t b) const;

  // Core CIOS Montgomery multiply of two k-limb mont-domain values.
  void MontMul(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* out) const;
  // Montgomery multiply with BigUInt operands (padded to k limbs).
  BigUInt MontMulBig(const BigUInt& a, const BigUInt& b) const;
  BigUInt ToMont(const BigUInt& a) const;
  BigUInt FromMont(const BigUInt& a) const;
  BigUInt CondSub(BigUInt a) const;  // a in [0, 2n) -> a mod n

  // Limb-buffer helpers for the windowed paths (all k_ limbs wide, values
  // in the Montgomery domain unless noted).
  void ToMontLimbs(const BigUInt& a, std::uint64_t* out) const;
  BigUInt FromMontLimbs(const std::uint64_t* a) const;
  static int Nibble(const BigUInt& e, std::size_t i) {
    return static_cast<int>((e.Limb(i / 16) >> (4 * (i % 16))) & 0xF);
  }

  BigUInt n_;
  std::size_t k_ = 0;          // limb count of n
  std::uint64_t n0inv_ = 0;    // -n^{-1} mod 2^64
  BigUInt r_mod_n_;            // R mod n, R = 2^(64k)
  BigUInt rr_;                 // R^2 mod n
  BigUInt t64_;                // 2^64 mod n (for digitwise reduction)
};

// Miller-Rabin probabilistic primality test with fixed deterministic bases;
// sufficient for validating embedded group parameters in tests.
bool ProbablyPrime(const BigUInt& n);

}  // namespace tlsharm::crypto
