// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA-256 instantiation), from scratch.
//
// All "cryptographic" randomness in the TLS stack (hello randoms, session
// IDs, STEKs, ephemeral exponents, IVs) is drawn from a Drbg. Simulation
// runs seed it deterministically so studies replay; nothing in the stack
// depends on the seed source.
#pragma once

#include "crypto/hmac.h"
#include "util/bytes.h"

namespace tlsharm::crypto {

class Drbg {
 public:
  // Instantiates from seed material (entropy || nonce || personalization).
  explicit Drbg(ByteView seed_material);

  // Generates `n` pseudorandom bytes.
  Bytes Generate(std::size_t n);

  // Mixes additional entropy into the state.
  void Reseed(ByteView seed_material);

  // Uniform integer in [0, bound), bound > 0; rejection-sampled.
  std::uint64_t UniformInt(std::uint64_t bound);

 private:
  void Update(ByteView provided);
  // Returns the keyed context, (re)keying it with key_ first if a
  // reference-mode call changed the key behind its back.
  HmacSha256& KeyedHmac();

  Bytes key_;  // K, 32 bytes
  Bytes v_;    // V, 32 bytes
  // Midstate-cached HMAC keyed with key_ (optimized path): Generate's
  // V = HMAC(K, V) chain reuses it instead of rehashing K per call.
  HmacSha256 hmac_;
  bool hmac_keyed_ = false;
};

}  // namespace tlsharm::crypto
