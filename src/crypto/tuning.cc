#include "crypto/tuning.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace tlsharm::crypto {
namespace {

bool EnvDefault() {
  const char* env = std::getenv("TLSHARM_REFERENCE_CRYPTO");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool>& Flag() {
  static std::atomic<bool> flag{EnvDefault()};
  return flag;
}

}  // namespace

bool ReferenceCryptoEnabled() {
  return Flag().load(std::memory_order_relaxed);
}

void SetReferenceCrypto(bool reference) {
  Flag().store(reference, std::memory_order_relaxed);
}

}  // namespace tlsharm::crypto
