#include "crypto/hmac.h"

#include <cstring>

#include "crypto/tuning.h"
#include "obs/prof.h"

namespace tlsharm::crypto {
namespace {

const obs::ProfSite kProfHmac("crypto.hmac", obs::kProfNoTrace);

// Expands `key` to one block (hashing it down first if longer, per the
// RFC) and XORs in the pad byte.
std::array<std::uint8_t, kSha256BlockSize> PadKey(ByteView key,
                                                  std::uint8_t pad) {
  std::array<std::uint8_t, kSha256BlockSize> block_key{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest hashed = Sha256Hash(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  for (auto& b : block_key) b ^= pad;
  return block_key;
}

}  // namespace

void HmacSha256::SetKey(ByteView key) {
  const auto ipad_key = PadKey(key, 0x36);
  const auto opad_key = PadKey(key, 0x5c);
  inner_mid_.Reset();
  inner_mid_.Update(ByteView(ipad_key.data(), ipad_key.size()));
  outer_mid_.Reset();
  outer_mid_.Update(ByteView(opad_key.data(), opad_key.size()));
  inner_ = inner_mid_;
}

void HmacSha256::Reset() { inner_ = inner_mid_; }

void HmacSha256::Update(ByteView data) { inner_.Update(data); }

Sha256Digest HmacSha256::Finish() {
  const Sha256Digest inner_digest = inner_.Finish();
  Sha256 outer = outer_mid_;
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest ReferenceHmacSha256Mac(ByteView key, ByteView data) {
  std::array<std::uint8_t, kSha256BlockSize> block_key{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest hashed = Sha256Hash(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, kSha256BlockSize> ipad_key;
  std::array<std::uint8_t, kSha256BlockSize> opad_key;
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad_key[i] = block_key[i] ^ 0x36;
    opad_key[i] = block_key[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ByteView(ipad_key.data(), ipad_key.size()));
  inner.Update(data);
  const Sha256Digest inner_digest = inner.Finish();
  Sha256 outer;
  outer.Update(ByteView(opad_key.data(), opad_key.size()));
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest HmacSha256Mac(ByteView key, ByteView data) {
  obs::ProfScope prof_span(kProfHmac);
  if (ReferenceCryptoEnabled()) return ReferenceHmacSha256Mac(key, data);
  HmacSha256 ctx(key);
  ctx.Update(data);
  return ctx.Finish();
}

Bytes HmacSha256Bytes(ByteView key, ByteView data) {
  const Sha256Digest d = HmacSha256Mac(key, data);
  return Bytes(d.begin(), d.end());
}

}  // namespace tlsharm::crypto
