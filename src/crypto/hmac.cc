#include "crypto/hmac.h"

#include <cstring>

namespace tlsharm::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::array<std::uint8_t, kSha256BlockSize> block_key{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest hashed = Sha256Hash(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad_key_[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
  Reset();
}

void HmacSha256::Reset() {
  inner_.Reset();
  inner_.Update(ByteView(ipad_key_.data(), ipad_key_.size()));
}

void HmacSha256::Update(ByteView data) { inner_.Update(data); }

Sha256Digest HmacSha256::Finish() {
  const Sha256Digest inner_digest = inner_.Finish();
  Sha256 outer;
  outer.Update(ByteView(opad_key_.data(), opad_key_.size()));
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest HmacSha256Mac(ByteView key, ByteView data) {
  HmacSha256 ctx(key);
  ctx.Update(data);
  return ctx.Finish();
}

Bytes HmacSha256Bytes(ByteView key, ByteView data) {
  const Sha256Digest d = HmacSha256Mac(key, data);
  return Bytes(d.begin(), d.end());
}

}  // namespace tlsharm::crypto
