#include "crypto/kex.h"

#include <cstdlib>

#include "crypto/ffdh.h"
#include "crypto/simec61.h"
#include "crypto/x25519.h"

namespace tlsharm::crypto {

const KexGroup& GetKexGroup(NamedGroup id) {
  static const FfdhGroup* sim61 = new FfdhGroup(FfdhSim61Params());
  static const FfdhGroup* sim256 = new FfdhGroup(FfdhSim256Params());
  static const SimEc61Group* simec = new SimEc61Group();
  static const X25519Group* x25519 = new X25519Group();
  switch (id) {
    case NamedGroup::kFfdheSim61:
      return *sim61;
    case NamedGroup::kFfdheSim256:
      return *sim256;
    case NamedGroup::kSimEc61:
      return *simec;
    case NamedGroup::kX25519:
      return *x25519;
  }
  std::abort();
}

bool IsKnownGroup(std::uint16_t id) {
  switch (static_cast<NamedGroup>(id)) {
    case NamedGroup::kFfdheSim61:
    case NamedGroup::kFfdheSim256:
    case NamedGroup::kSimEc61:
    case NamedGroup::kX25519:
      return true;
  }
  return false;
}

}  // namespace tlsharm::crypto
