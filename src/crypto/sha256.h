// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the HMAC, the TLS 1.2 PRF, handshake transcript hashing, Schnorr
// certificate signatures, and STEK-identifier derivation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace tlsharm::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Incremental hashing context.
class Sha256 {
 public:
  Sha256();

  void Update(ByteView data);

  // Finalizes and returns the digest. The context must not be reused after
  // Finish() without Reset().
  Sha256Digest Finish();

  void Reset();

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// One-shot convenience.
Sha256Digest Sha256Hash(ByteView data);
Bytes Sha256HashBytes(ByteView data);

}  // namespace tlsharm::crypto
