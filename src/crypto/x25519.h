// X25519 (RFC 7748), the full-strength ECDHE group.
//
// Built on the project's Montgomery bignum arithmetic rather than a
// hand-tuned field implementation: correctness and auditability matter more
// than speed here, since the bulk simulation path uses SimEc61. Verified
// against the RFC 7748 test vectors in tests/crypto/x25519_test.cc.
#pragma once

#include "crypto/kex.h"

namespace tlsharm::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

class X25519Group final : public KexGroup {
 public:
  std::string_view Name() const override { return "x25519"; }
  NamedGroup Id() const override { return NamedGroup::kX25519; }
  KexKind Kind() const override { return KexKind::kEcdhe; }
  std::size_t PublicValueSize() const override { return kX25519KeySize; }

  KexKeyPair GenerateKeyPair(Drbg& drbg) const override;
  std::optional<Bytes> SharedSecret(ByteView private_key,
                                    ByteView peer_public) const override;
};

// RFC 7748 scalar multiplication: X25519(k, u), both 32-byte little-endian.
Bytes X25519ScalarMult(ByteView scalar, ByteView u_coordinate);

}  // namespace tlsharm::crypto
