// AES-128 (FIPS 197) block cipher plus CBC mode with PKCS#7 padding
// (NIST SP 800-38A), from scratch.
//
// RFC 5077's recommended ticket construction encrypts the serialized session
// state with AES-128-CBC; the simulated record layer uses the same primitive
// for application data so that stolen STEKs genuinely decrypt captured
// traffic in the attack benches.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace tlsharm::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAes128KeySize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using Aes128Key = std::array<std::uint8_t, kAes128KeySize>;

// Expanded-key AES-128 context.
class Aes128 {
 public:
  explicit Aes128(const Aes128Key& key);

  void EncryptBlock(const std::uint8_t* in, std::uint8_t* out) const;
  void DecryptBlock(const std::uint8_t* in, std::uint8_t* out) const;

 private:
  std::array<std::uint32_t, 44> round_keys_;
};

// CBC with PKCS#7 padding. The IV is prepended by callers (the ticket codec
// and record layer carry the IV explicitly per their formats).
Bytes Aes128CbcEncrypt(const Aes128Key& key, const AesBlock& iv,
                       ByteView plaintext);

// Returns nullopt on malformed length or bad padding.
std::optional<Bytes> Aes128CbcDecrypt(const Aes128Key& key, const AesBlock& iv,
                                      ByteView ciphertext);

// Same modes over an already-expanded cipher context, so callers that
// encrypt many payloads under one key (a STEK epoch) pay the key schedule
// once instead of per call. Identical output to the key-taking overloads.
Bytes Aes128CbcEncrypt(const Aes128& cipher, const AesBlock& iv,
                       ByteView plaintext);
std::optional<Bytes> Aes128CbcDecrypt(const Aes128& cipher, const AesBlock& iv,
                                      ByteView ciphertext);

// Helpers to adapt Bytes-typed key/IV material (asserts on size mismatch).
Aes128Key ToAesKey(ByteView b);
AesBlock ToAesBlock(ByteView b);

}  // namespace tlsharm::crypto
