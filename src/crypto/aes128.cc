#include "crypto/aes128.h"

#include <cassert>
#include <cstring>

namespace tlsharm::crypto {
namespace {

// S-box and inverse S-box from FIPS 197.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

std::uint8_t Xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    a = Xtime(a);
    b >>= 1;
  }
  return result;
}

}  // namespace

Aes128::Aes128(const Aes128Key& key) {
  for (int i = 0; i < 4; ++i) {
    round_keys_[i] = (static_cast<std::uint32_t>(key[4 * i]) << 24) |
                     (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
                     (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
                     static_cast<std::uint32_t>(key[4 * i + 3]);
  }
  std::uint8_t rcon = 0x01;
  for (int i = 4; i < 44; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % 4 == 0) {
      temp = (temp << 8) | (temp >> 24);  // RotWord
      temp = (static_cast<std::uint32_t>(kSbox[(temp >> 24) & 0xff]) << 24) |
             (static_cast<std::uint32_t>(kSbox[(temp >> 16) & 0xff]) << 16) |
             (static_cast<std::uint32_t>(kSbox[(temp >> 8) & 0xff]) << 8) |
             static_cast<std::uint32_t>(kSbox[temp & 0xff]);
      temp ^= static_cast<std::uint32_t>(rcon) << 24;
      rcon = Xtime(rcon);
    }
    round_keys_[i] = round_keys_[i - 4] ^ temp;
  }
}

void Aes128::EncryptBlock(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t rk = round_keys_[4 * round + c];
      s[4 * c] ^= static_cast<std::uint8_t>(rk >> 24);
      s[4 * c + 1] ^= static_cast<std::uint8_t>(rk >> 16);
      s[4 * c + 2] ^= static_cast<std::uint8_t>(rk >> 8);
      s[4 * c + 3] ^= static_cast<std::uint8_t>(rk);
    }
  };
  add_round_key(0);
  for (int round = 1; round <= 10; ++round) {
    // SubBytes
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: s[4c + r])
    std::uint8_t t;
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
    if (round != 10) {
      // MixColumns
      for (int c = 0; c < 4; ++c) {
        const std::uint8_t a0 = s[4 * c], a1 = s[4 * c + 1];
        const std::uint8_t a2 = s[4 * c + 2], a3 = s[4 * c + 3];
        s[4 * c] = static_cast<std::uint8_t>(Xtime(a0) ^ Xtime(a1) ^ a1 ^ a2 ^ a3);
        s[4 * c + 1] = static_cast<std::uint8_t>(a0 ^ Xtime(a1) ^ Xtime(a2) ^ a2 ^ a3);
        s[4 * c + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ Xtime(a2) ^ Xtime(a3) ^ a3);
        s[4 * c + 3] = static_cast<std::uint8_t>(Xtime(a0) ^ a0 ^ a1 ^ a2 ^ Xtime(a3));
      }
    }
    add_round_key(round);
  }
  std::memcpy(out, s, 16);
}

void Aes128::DecryptBlock(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t rk = round_keys_[4 * round + c];
      s[4 * c] ^= static_cast<std::uint8_t>(rk >> 24);
      s[4 * c + 1] ^= static_cast<std::uint8_t>(rk >> 16);
      s[4 * c + 2] ^= static_cast<std::uint8_t>(rk >> 8);
      s[4 * c + 3] ^= static_cast<std::uint8_t>(rk);
    }
  };
  add_round_key(10);
  for (int round = 9; round >= 0; --round) {
    // InvShiftRows
    std::uint8_t t;
    t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
    t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
    // InvSubBytes
    for (auto& b : s) b = kInvSbox[b];
    add_round_key(round);
    if (round != 0) {
      // InvMixColumns
      for (int c = 0; c < 4; ++c) {
        const std::uint8_t a0 = s[4 * c], a1 = s[4 * c + 1];
        const std::uint8_t a2 = s[4 * c + 2], a3 = s[4 * c + 3];
        s[4 * c] = static_cast<std::uint8_t>(GfMul(a0, 14) ^ GfMul(a1, 11) ^
                                             GfMul(a2, 13) ^ GfMul(a3, 9));
        s[4 * c + 1] = static_cast<std::uint8_t>(GfMul(a0, 9) ^ GfMul(a1, 14) ^
                                                 GfMul(a2, 11) ^ GfMul(a3, 13));
        s[4 * c + 2] = static_cast<std::uint8_t>(GfMul(a0, 13) ^ GfMul(a1, 9) ^
                                                 GfMul(a2, 14) ^ GfMul(a3, 11));
        s[4 * c + 3] = static_cast<std::uint8_t>(GfMul(a0, 11) ^ GfMul(a1, 13) ^
                                                 GfMul(a2, 9) ^ GfMul(a3, 14));
      }
    }
  }
  std::memcpy(out, s, 16);
}

Bytes Aes128CbcEncrypt(const Aes128Key& key, const AesBlock& iv,
                       ByteView plaintext) {
  return Aes128CbcEncrypt(Aes128(key), iv, plaintext);
}

Bytes Aes128CbcEncrypt(const Aes128& cipher, const AesBlock& iv,
                       ByteView plaintext) {
  const std::size_t pad =
      kAesBlockSize - (plaintext.size() % kAesBlockSize);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  AesBlock chain = iv;
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    AesBlock block;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      block[i] = padded[off + i] ^ chain[i];
    }
    cipher.EncryptBlock(block.data(), out.data() + off);
    std::memcpy(chain.data(), out.data() + off, kAesBlockSize);
  }
  return out;
}

std::optional<Bytes> Aes128CbcDecrypt(const Aes128Key& key, const AesBlock& iv,
                                      ByteView ciphertext) {
  return Aes128CbcDecrypt(Aes128(key), iv, ciphertext);
}

std::optional<Bytes> Aes128CbcDecrypt(const Aes128& cipher, const AesBlock& iv,
                                      ByteView ciphertext) {
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0) {
    return std::nullopt;
  }
  Bytes out(ciphertext.size());
  AesBlock chain = iv;
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    AesBlock block;
    cipher.DecryptBlock(ciphertext.data() + off, block.data());
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      out[off + i] = block[i] ^ chain[i];
    }
    std::memcpy(chain.data(), ciphertext.data() + off, kAesBlockSize);
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) return std::nullopt;
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return std::nullopt;
  }
  out.resize(out.size() - pad);
  return out;
}

Aes128Key ToAesKey(ByteView b) {
  assert(b.size() == kAes128KeySize);
  Aes128Key key;
  std::memcpy(key.data(), b.data(), kAes128KeySize);
  return key;
}

AesBlock ToAesBlock(ByteView b) {
  assert(b.size() == kAesBlockSize);
  AesBlock block;
  std::memcpy(block.data(), b.data(), kAesBlockSize);
  return block;
}

}  // namespace tlsharm::crypto
