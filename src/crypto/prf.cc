#include "crypto/prf.h"

#include <string>
#include <unordered_map>

#include "crypto/hmac.h"
#include "crypto/tuning.h"
#include "obs/prof.h"

namespace tlsharm::crypto {
namespace {

// Histogram-only span sites (too hot for per-call trace events); file
// scope so the disabled path pays no static-init guard.
const obs::ProfSite kProfPrf("crypto.prf", obs::kProfNoTrace);

// The original P_SHA256: a fresh HMAC instantiation (and key-block hash)
// per call. Kept as the naive baseline for the differential harness.
Bytes Tls12PrfReference(ByteView secret, ByteView label_seed,
                        std::size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  Bytes a = HmacSha256Bytes(secret, label_seed);
  while (out.size() < out_len) {
    const Bytes chunk = HmacSha256Bytes(secret, Concat({a, label_seed}));
    const std::size_t take = std::min(chunk.size(), out_len - out.size());
    out.insert(out.end(), chunk.begin(), chunk.begin() + take);
    a = HmacSha256Bytes(secret, a);
  }
  return out;
}

}  // namespace

Bytes Tls12Prf(ByteView secret, std::string_view label, ByteView seed,
               std::size_t out_len) {
  // The span covers the reference and the memoized path alike so the
  // tuning switch's effect is visible in the wall-clock report.
  obs::ProfScope prof_span(kProfPrf);
  // P_SHA256(secret, label || seed): A(0) = label||seed,
  // A(i) = HMAC(secret, A(i-1)), output = HMAC(secret, A(i) || label||seed).
  const Bytes label_seed = Concat({ByteView(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()),
      seed});
  if (ReferenceCryptoEnabled()) {
    return Tls12PrfReference(secret, label_seed, out_len);
  }
  // Cross-call memoization. The PRF is a pure function, and the simulated
  // client and terminator each derive the same master secret and key block
  // from the same inputs within one process — the second derivation is a
  // cache hit. Purity means cache state can never change an output, so
  // results stay byte-identical at any thread count; the cache is
  // thread-local (no synchronization) and bounded (cleared when full).
  thread_local std::unordered_map<std::string, Bytes> memo;
  std::string memo_key;
  memo_key.reserve(secret.size() + label_seed.size() + 6);
  const auto append_field = [&memo_key](const std::uint8_t* p, std::size_t n) {
    memo_key.push_back(static_cast<char>(n >> 8));
    memo_key.push_back(static_cast<char>(n));
    if (n > 0) memo_key.append(reinterpret_cast<const char*>(p), n);
  };
  append_field(secret.data(), secret.size());
  append_field(label_seed.data(), label_seed.size());
  memo_key.push_back(static_cast<char>(out_len >> 8));
  memo_key.push_back(static_cast<char>(out_len));
  if (const auto it = memo.find(memo_key); it != memo.end()) {
    return it->second;
  }
  // One keyed context for the whole A(i) chain: the ipad/opad midstates are
  // computed once and cloned per HMAC invocation.
  HmacSha256 hmac(secret);
  Bytes out;
  out.reserve(out_len);
  hmac.Update(label_seed);
  Sha256Digest a = hmac.Finish();
  for (;;) {
    hmac.Reset();
    hmac.Update(ByteView(a.data(), a.size()));
    hmac.Update(label_seed);
    const Sha256Digest chunk = hmac.Finish();
    const std::size_t take = std::min(chunk.size(), out_len - out.size());
    out.insert(out.end(), chunk.begin(), chunk.begin() + take);
    if (out.size() >= out_len) break;
    hmac.Reset();
    hmac.Update(ByteView(a.data(), a.size()));
    a = hmac.Finish();
  }
  if (memo.size() >= 4096) memo.clear();
  memo.emplace(std::move(memo_key), out);
  return out;
}

Bytes DeriveMasterSecret(ByteView premaster, ByteView client_random,
                         ByteView server_random) {
  return Tls12Prf(premaster, "master secret",
                  Concat({client_random, server_random}), 48);
}

Bytes DeriveKeyBlock(ByteView master_secret, ByteView server_random,
                     ByteView client_random, std::size_t out_len) {
  // Note RFC 5246 orders the seed server_random || client_random here.
  return Tls12Prf(master_secret, "key expansion",
                  Concat({server_random, client_random}), out_len);
}

Bytes ComputeVerifyData(ByteView master_secret, std::string_view label,
                        ByteView transcript_hash) {
  return Tls12Prf(master_secret, label, transcript_hash, 12);
}

}  // namespace tlsharm::crypto
