#include "crypto/prf.h"

#include "crypto/hmac.h"

namespace tlsharm::crypto {

Bytes Tls12Prf(ByteView secret, std::string_view label, ByteView seed,
               std::size_t out_len) {
  // P_SHA256(secret, label || seed): A(0) = label||seed,
  // A(i) = HMAC(secret, A(i-1)), output = HMAC(secret, A(i) || label||seed).
  const Bytes label_seed = Concat({ByteView(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()),
      seed});
  Bytes out;
  out.reserve(out_len);
  Bytes a = HmacSha256Bytes(secret, label_seed);
  while (out.size() < out_len) {
    const Bytes chunk = HmacSha256Bytes(secret, Concat({a, label_seed}));
    const std::size_t take = std::min(chunk.size(), out_len - out.size());
    out.insert(out.end(), chunk.begin(), chunk.begin() + take);
    a = HmacSha256Bytes(secret, a);
  }
  return out;
}

Bytes DeriveMasterSecret(ByteView premaster, ByteView client_random,
                         ByteView server_random) {
  return Tls12Prf(premaster, "master secret",
                  Concat({client_random, server_random}), 48);
}

Bytes DeriveKeyBlock(ByteView master_secret, ByteView server_random,
                     ByteView client_random, std::size_t out_len) {
  // Note RFC 5246 orders the seed server_random || client_random here.
  return Tls12Prf(master_secret, "key expansion",
                  Concat({server_random, client_random}), out_len);
}

Bytes ComputeVerifyData(ByteView master_secret, std::string_view label,
                        ByteView transcript_hash) {
  return Tls12Prf(master_secret, label, transcript_hash, 12);
}

}  // namespace tlsharm::crypto
