// Key-exchange group abstraction.
//
// TLS cipher suites in this stack negotiate one of these named groups. Two
// "full-strength" groups (a 256-bit safe-prime FFDH group and RFC 7748
// X25519) are provided for tests, examples and micro-benchmarks, and two
// "sim-grade" 61-bit groups provide the identical code path at the speed
// needed to replay nine weeks of Top-Million scanning in-process. The
// distinction is a simulation-scale parameter (see DESIGN.md): every group
// performs a real Diffie-Hellman computation, and reuse of the server's
// private value has exactly the paper's consequence — anyone holding it can
// recompute the premaster secret of any recorded handshake that used it.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace tlsharm::crypto {

enum class KexKind : std::uint8_t {
  kDhe,    // finite-field ephemeral Diffie-Hellman
  kEcdhe,  // elliptic-curve ephemeral Diffie-Hellman
};

enum class NamedGroup : std::uint16_t {
  kFfdheSim61 = 0x01f0,   // 61-bit safe-prime FFDH (simulation grade)
  kFfdheSim256 = 0x01f1,  // 256-bit safe-prime FFDH
  kSimEc61 = 0x01f2,      // x-only Montgomery-curve ladder over 2^61-1
  kX25519 = 0x001d,       // RFC 7748
};

struct KexKeyPair {
  Bytes private_key;
  Bytes public_value;
};

class KexGroup {
 public:
  virtual ~KexGroup() = default;

  virtual std::string_view Name() const = 0;
  virtual NamedGroup Id() const = 0;
  virtual KexKind Kind() const = 0;
  virtual std::size_t PublicValueSize() const = 0;

  virtual KexKeyPair GenerateKeyPair(Drbg& drbg) const = 0;

  // Returns nullopt when the peer value is malformed or degenerate.
  virtual std::optional<Bytes> SharedSecret(ByteView private_key,
                                            ByteView peer_public) const = 0;
};

// Returns the singleton implementation for a named group; aborts on an
// unknown id (the handshake layer validates ids before lookup).
const KexGroup& GetKexGroup(NamedGroup id);

// True if this process knows the group id.
bool IsKnownGroup(std::uint16_t id);

}  // namespace tlsharm::crypto
