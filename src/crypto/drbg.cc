#include "crypto/drbg.h"

#include <cassert>

namespace tlsharm::crypto {

Drbg::Drbg(ByteView seed_material)
    : key_(kSha256DigestSize, 0x00), v_(kSha256DigestSize, 0x01) {
  Update(seed_material);
}

void Drbg::Update(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Bytes data = Concat({v_, Bytes{0x00}, provided});
  key_ = HmacSha256Bytes(key_, data);
  v_ = HmacSha256Bytes(key_, v_);
  if (!provided.empty()) {
    data = Concat({v_, Bytes{0x01}, provided});
    key_ = HmacSha256Bytes(key_, data);
    v_ = HmacSha256Bytes(key_, v_);
  }
}

void Drbg::Reseed(ByteView seed_material) { Update(seed_material); }

Bytes Drbg::Generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = HmacSha256Bytes(key_, v_);
    const std::size_t take = std::min(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + take);
  }
  Update({});
  return out;
}

std::uint64_t Drbg::UniformInt(std::uint64_t bound) {
  assert(bound > 0);
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const Bytes b = Generate(8);
    const std::uint64_t r = ReadUint(b, 0, 8);
    if (r >= threshold) return r % bound;
  }
}

}  // namespace tlsharm::crypto
