#include "crypto/drbg.h"

#include <cassert>

#include "crypto/tuning.h"

namespace tlsharm::crypto {

Drbg::Drbg(ByteView seed_material)
    : key_(kSha256DigestSize, 0x00), v_(kSha256DigestSize, 0x01) {
  Update(seed_material);
}

HmacSha256& Drbg::KeyedHmac() {
  if (!hmac_keyed_) {
    hmac_.SetKey(key_);
    hmac_keyed_ = true;
  }
  return hmac_;
}

void Drbg::Update(ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  if (ReferenceCryptoEnabled()) {
    Bytes data = Concat({v_, Bytes{0x00}, provided});
    key_ = HmacSha256Bytes(key_, data);
    v_ = HmacSha256Bytes(key_, v_);
    if (!provided.empty()) {
      data = Concat({v_, Bytes{0x01}, provided});
      key_ = HmacSha256Bytes(key_, data);
      v_ = HmacSha256Bytes(key_, v_);
    }
    hmac_keyed_ = false;  // key_ changed without re-keying hmac_
    return;
  }
  const std::uint8_t rounds = provided.empty() ? 1 : 2;
  for (std::uint8_t round = 0; round < rounds; ++round) {
    HmacSha256& hmac = KeyedHmac();
    hmac.Reset();
    hmac.Update(v_);
    const std::uint8_t sep[1] = {round};
    hmac.Update(ByteView(sep, 1));
    hmac.Update(provided);
    const Sha256Digest k = hmac.Finish();
    key_.assign(k.begin(), k.end());
    hmac_.SetKey(key_);
    hmac_.Update(v_);
    const Sha256Digest v = hmac_.Finish();
    v_.assign(v.begin(), v.end());
    hmac_.Reset();
  }
}

void Drbg::Reseed(ByteView seed_material) { Update(seed_material); }

Bytes Drbg::Generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  if (ReferenceCryptoEnabled()) {
    while (out.size() < n) {
      v_ = HmacSha256Bytes(key_, v_);
      const std::size_t take = std::min(v_.size(), n - out.size());
      out.insert(out.end(), v_.begin(), v_.begin() + take);
    }
    Update({});
    return out;
  }
  HmacSha256& hmac = KeyedHmac();
  while (out.size() < n) {
    hmac.Reset();
    hmac.Update(v_);
    const Sha256Digest v = hmac.Finish();
    v_.assign(v.begin(), v.end());
    const std::size_t take = std::min(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + take);
  }
  Update({});
  return out;
}

std::uint64_t Drbg::UniformInt(std::uint64_t bound) {
  assert(bound > 0);
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const Bytes b = Generate(8);
    const std::uint64_t r = ReadUint(b, 0, 8);
    if (r >= threshold) return r % bound;
  }
}

}  // namespace tlsharm::crypto
