// Simulated browser root store and chain verification.
//
// Mirrors the paper's trust criterion: a domain counts as "browser-trusted"
// when its presented chain validates to the (simulated) NSS root store at
// scan time. Verification checks, leaf to root: name coverage (leaf only),
// validity windows, CA bits on non-leaf certificates, signature of each
// certificate by its parent, and that the final parent key is in the store.
#pragma once

#include <map>
#include <string>

#include "pki/certificate.h"

namespace tlsharm::pki {

enum class VerifyStatus {
  kOk,
  kEmptyChain,
  kNameMismatch,
  kExpired,
  kNotYetValid,
  kBadSignature,
  kNotCa,             // an intermediate lacks the CA bit
  kUntrustedRoot,
};

const char* ToString(VerifyStatus status);

class RootStore {
 public:
  // Registers a trusted root by name and public key.
  void AddRoot(const std::string& name, SignatureScheme scheme,
               ByteView public_key);

  bool IsTrustedRoot(const std::string& name, ByteView public_key) const;

  // Verifies `chain` (leaf first) for `host` at time `now`.
  VerifyStatus Verify(const CertificateChain& chain, const std::string& host,
                      SimTime now) const;

  std::size_t Size() const { return roots_.size(); }

 private:
  struct RootEntry {
    SignatureScheme scheme;
    Bytes public_key;
  };
  std::map<std::string, RootEntry> roots_;
};

}  // namespace tlsharm::pki
