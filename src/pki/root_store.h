// Simulated browser root store and chain verification.
//
// Mirrors the paper's trust criterion: a domain counts as "browser-trusted"
// when its presented chain validates to the (simulated) NSS root store at
// scan time. Verification checks, leaf to root: name coverage (leaf only),
// validity windows, CA bits on non-leaf certificates, signature of each
// certificate by its parent, and that the final parent key is in the store.
#pragma once

#include <map>
#include <string>

#include "crypto/sha256.h"
#include "pki/certificate.h"

namespace tlsharm::pki {

// Memoizes certificate-signature checks. The verdict for a given
// (scheme, issuer key, TBS bytes, signature) tuple never changes, so a
// chain already verified for one host resolves by map lookup when the same
// intermediates/leaf reappear under another host or on a later scan day —
// the dominant cost of RootStore::Verify is the Schnorr exponentiations.
// Keys are SHA-256 over the length-prefixed inputs, so memoization is exact
// and independent of probe order. Not thread-safe: use one per scan thread
// (each Prober owns one).
class SignatureVerifyCache {
 public:
  // Parse+verify `signature` over `tbs` under `public_key`, memoized.
  bool VerifyCert(SignatureScheme scheme, ByteView public_key, ByteView tbs,
                  ByteView signature);

  std::size_t Size() const { return cache_.size(); }
  std::uint64_t Hits() const { return hits_; }
  // Drops all memoized verdicts (hit statistics persist). Entries are pure
  // functions of the key, so callers may clear to bound memory at any time.
  void Clear() { cache_.clear(); }

 private:
  std::map<crypto::Sha256Digest, bool> cache_;
  std::uint64_t hits_ = 0;
};

enum class VerifyStatus {
  kOk,
  kEmptyChain,
  kNameMismatch,
  kExpired,
  kNotYetValid,
  kBadSignature,
  kNotCa,             // an intermediate lacks the CA bit
  kUntrustedRoot,
};

const char* ToString(VerifyStatus status);

class RootStore {
 public:
  // Registers a trusted root by name and public key.
  void AddRoot(const std::string& name, SignatureScheme scheme,
               ByteView public_key);

  bool IsTrustedRoot(const std::string& name, ByteView public_key) const;

  // Verifies `chain` (leaf first) for `host` at time `now`. The overload
  // taking a SignatureVerifyCache memoizes the per-certificate signature
  // checks through it (ignored in reference-crypto mode or when null);
  // verdicts are identical either way.
  VerifyStatus Verify(const CertificateChain& chain, const std::string& host,
                      SimTime now) const;
  VerifyStatus Verify(const CertificateChain& chain, const std::string& host,
                      SimTime now, SignatureVerifyCache* cache) const;

  std::size_t Size() const { return roots_.size(); }

 private:
  struct RootEntry {
    SignatureScheme scheme;
    Bytes public_key;
  };
  std::map<std::string, RootEntry> roots_;
};

}  // namespace tlsharm::pki
