#include "pki/ca.h"

namespace tlsharm::pki {

CertificateAuthority::CertificateAuthority(std::string name,
                                           SignatureScheme scheme,
                                           crypto::Drbg& drbg)
    : name_(std::move(name)),
      scheme_(scheme),
      key_pair_(GetScheme(scheme).GenerateKeyPair(drbg)) {}

Certificate CertificateAuthority::Issue(CertificateData data,
                                        crypto::Drbg& drbg) const {
  data.issuer = name_;
  if (data.serial == 0) data.serial = next_serial_++;
  Certificate cert;
  cert.data = std::move(data);
  const Bytes tbs = SerializeTbs(cert.data);
  cert.signature = GetScheme(scheme_).SerializeSignature(
      GetScheme(scheme_).Sign(key_pair_.private_key, tbs, drbg));
  return cert;
}

Certificate CertificateAuthority::SelfSigned(SimTime not_before,
                                             SimTime not_after,
                                             crypto::Drbg& drbg) const {
  CertificateData data;
  data.subject_cn = name_;
  data.not_before = not_before;
  data.not_after = not_after;
  data.scheme = scheme_;
  data.public_key = key_pair_.public_key;
  data.is_ca = true;
  return Issue(std::move(data), drbg);
}

Certificate CertificateAuthority::IssueLeaf(const std::string& subject_cn,
                                            std::vector<std::string> sans,
                                            ByteView public_key,
                                            SimTime not_before,
                                            SimTime not_after, crypto::Drbg& drbg,
                                            std::uint64_t serial) const {
  CertificateData data;
  data.serial = serial;
  data.subject_cn = subject_cn;
  data.sans = std::move(sans);
  data.not_before = not_before;
  data.not_after = not_after;
  data.scheme = scheme_;
  data.public_key = Bytes(public_key.begin(), public_key.end());
  data.is_ca = false;
  return Issue(std::move(data), drbg);
}

Certificate CertificateAuthority::IssueCaCertificate(
    const CertificateAuthority& subordinate, SimTime not_before,
    SimTime not_after, crypto::Drbg& drbg) const {
  CertificateData data;
  data.subject_cn = subordinate.Name();
  data.not_before = not_before;
  data.not_after = not_after;
  data.scheme = subordinate.Scheme();
  data.public_key = subordinate.PublicKey();
  data.is_ca = true;
  return Issue(std::move(data), drbg);
}

}  // namespace tlsharm::pki
