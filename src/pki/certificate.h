// Structural certificates.
//
// The study classifies domains by whether they present a browser-trusted
// certificate chaining to the NSS root store. We model exactly the fields
// that classification needs — subject, SANs (with wildcards), issuer,
// validity window, subject public key, and an issuer signature over the
// to-be-signed serialization — and sign with the project's Schnorr scheme
// (see the substitution table in DESIGN.md). DER is deliberately not
// reproduced; the serialization is a simple deterministic length-prefixed
// format, since no experiment depends on ASN.1 itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/schnorr.h"
#include "util/bytes.h"
#include "util/sim_clock.h"

namespace tlsharm::pki {

// Which Schnorr parameter set signed/keys this certificate.
enum class SignatureScheme : std::uint8_t {
  kSchnorrSim61 = 1,
  kSchnorrSim256 = 2,
};

const crypto::SchnorrScheme& GetScheme(SignatureScheme scheme);

struct CertificateData {
  std::string subject_cn;          // primary domain, may be a wildcard
  std::vector<std::string> sans;   // additional names (each may be wildcard)
  std::string issuer;              // issuing CA's name
  std::uint64_t serial = 0;
  SimTime not_before = 0;
  SimTime not_after = 0;
  SignatureScheme scheme = SignatureScheme::kSchnorrSim61;
  Bytes public_key;                // subject's Schnorr public key
  bool is_ca = false;              // may issue further certificates
};

struct Certificate {
  CertificateData data;
  Bytes signature;  // issuer's Schnorr signature over SerializeTbs(data)

  // Stable identifier (hash of the full certificate), used as a wire
  // stand-in for the DER blob and as a map key.
  Bytes Fingerprint() const;
};

// Leaf-first chain, ending at (or just below) a root.
using CertificateChain = std::vector<Certificate>;

// Deterministic to-be-signed serialization.
Bytes SerializeTbs(const CertificateData& data);

// Full certificate serialization (TBS || signature) and its inverse.
Bytes SerializeCertificate(const Certificate& cert);
std::optional<Certificate> ParseCertificate(ByteView wire);

// RFC 6125-style name matching: exact match, or single-label wildcard
// ("*.example.com" matches "a.example.com" but not "example.com" nor
// "a.b.example.com").
bool NameMatches(const std::string& pattern, const std::string& host);

// True if any of the certificate's names (CN or SAN) covers `host`.
bool CertificateCoversHost(const Certificate& cert, const std::string& host);

}  // namespace tlsharm::pki
